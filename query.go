package tripoll

import (
	"tripoll/internal/engine"
	"tripoll/internal/serialize"
)

// QuerySpec is a serializable (JSON) query: a named analysis plus the
// declarative plan restricting it — δ-window, sliding time window, mode.
// Specs are what make queries wire-shippable: cmd/tripolld accepts them as
// request bodies, the CLI compiles its flags into them, and the Engine's
// coalescer and result cache key on their canonical parts. See Engine for
// execution semantics.
//
//	spec := tripoll.QuerySpec{Analysis: "count", Delta: tripoll.OptUint64(3600)}
//	job, _ := eng.Submit(ctx, spec)
//	res, _ := job.Wait(ctx)
type QuerySpec = engine.Spec

// OptUint64 builds an optional QuerySpec field (Delta/From/Until) in place.
var OptUint64 = engine.Uint64

// QueryRegistry maps analysis names to factories, making them addressable
// from QuerySpecs. Build one with NewQueryRegistry for custom metadata
// types, or use TemporalQueryRegistry for the stock temporal configuration.
type QueryRegistry[VM, EM any] = engine.Registry[VM, EM]

// QueryAnalysisInstance is one compiled occurrence of a registry analysis:
// an attached analysis to fuse into the traversal plus a reader for its
// finalized result.
type QueryAnalysisInstance[VM, EM any] = engine.Instance[VM, EM]

// QueryAnalysisFactory compiles a QuerySpec's analysis against a concrete
// graph; register factories on a QueryRegistry.
type QueryAnalysisFactory[VM, EM any] = engine.Factory[VM, EM]

// NewQueryRegistry returns an empty registry for graphs with VM vertex and
// EM edge metadata.
func NewQueryRegistry[VM, EM any]() *QueryRegistry[VM, EM] {
	return engine.NewRegistry[VM, EM]()
}

// TemporalQueryRegistry returns the stock registry for BuildTemporal
// graphs (Unit vertex metadata, uint64 timestamps): count, closure,
// localcounts, edgecounts, labels, cc and sweep.
func TemporalQueryRegistry() *QueryRegistry[serialize.Unit, uint64] {
	return engine.TemporalRegistry()
}

// QueryJSONValue converts a stock analysis result into a faithfully
// JSON-marshalable form (Joint2D grids become sorted cell lists, EdgeKey
// maps become sorted edge lists); tripolld applies it to every result.
var QueryJSONValue = engine.JSONValue
