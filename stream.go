package tripoll

import (
	"tripoll/internal/core"
	"tripoll/internal/graph"
)

// Streaming survey maintenance: OpenStream turns a built Graph into the
// seed of a mutating, timestamped edge set and keeps any number of fused
// stream analyses continuously correct as batches arrive and the window
// slides — without re-surveying the whole graph per batch. Each batch runs
// a delta-scoped dry run/push/pull over only the changed edges (the
// triangles containing edge {u,v} are exactly N(u) ∩ N(v)), reusing the
// survey-plan pushdown filters and the fused-analysis accumulator
// discipline; `tripoll-bench -exp stream` measures the saving against
// per-batch full recomputes.
//
//	var total uint64
//	s, _ := tripoll.OpenStream(g,
//	    tripoll.StreamOptions[uint64]{MergeEdgeMeta: keepFirst},
//	    tripoll.NewTemporalPlan(),
//	    tripoll.StreamCountAnalysis[tripoll.Unit, uint64]().Bind(&total))
//	s.Ingest(batch)          // observe the triangles the batch created
//	s.Advance(now - window)  // retire old edges, reverse their triangles
//	s.Snapshot()             // publish current results into bound outputs
//
// Analyses declare an optional Unobserve (and Clone); invertible analyses
// are maintained through expiry, non-invertible ones fall back to a
// windowed epoch rebuild. See DESIGN.md §9 for the delta traversal, the
// expiry semantics and the invertibility contract.

// EdgeStreamBatch is one batch of undirected timestamped edge insertions.
type EdgeStreamBatch[EM any] = []graph.Edge[EM]

// StreamEdge is one undirected edge insertion with metadata.
type StreamEdge[EM any] = graph.Edge[EM]

// Stream maintains fused analyses over a mutating timestamped edge set;
// open one with OpenStream.
type Stream[VM, EM any] = core.Stream[VM, EM]

// StreamOptions configures a stream: the delta traversal's survey options
// and the multigraph metadata merge.
type StreamOptions[EM any] = core.StreamOptions[EM]

// StreamStats are a stream's cumulative counters.
type StreamStats = core.StreamStats

// StreamAnalysis is an Analysis plus the hooks incremental maintenance
// needs: an optional Unobserve reversing one Observe (invertibility) and a
// Clone for snapshot isolation.
type StreamAnalysis[VM, EM, T any] = core.StreamAnalysis[VM, EM, T]

// AttachedStreamAnalysis is a StreamAnalysis bound to its output via Bind,
// ready for OpenStream.
type AttachedStreamAnalysis[VM, EM any] = core.StreamAttached[VM, EM]

// ErrStreamNoTimestamps is returned by Stream.Advance when the stream's
// plan has no Timestamps accessor to read expiry times from.
var ErrStreamNoTimestamps = core.ErrStreamNoTimestamps

// StreamSink is a maintained structure kept continuously consistent with a
// stream's live window: where an analysis folds triangles into an
// accumulator, a sink keeps an index (e.g. NewTrussIndex). Sinks attach at
// open via OpenStreamSinks.
type StreamSink[VM, EM any] = core.StreamSink[VM, EM]

// OpenStream opens a stream over g's world, partitioning and ordering,
// seeded with g's edges and vertex metadata: the attached analyses start
// out holding exactly what a fused Run over g would produce, and every
// Ingest/Advance batch maintains them incrementally from there. A non-nil
// plan restricts the analyses to plan-matching triangles with its
// predicates pushed into the delta traversal (and its Timestamps accessor
// is what Advance expires by). Call outside Parallel regions.
func OpenStream[VM, EM any](g *Graph[VM, EM], opts StreamOptions[EM], plan *SurveyPlan[EM], analyses ...AttachedStreamAnalysis[VM, EM]) (*Stream[VM, EM], error) {
	return core.OpenStream(g, opts, plan, analyses...)
}

// OpenStreamSinks is OpenStream with maintained sinks attached: each sink
// observes the seed graph's edges and triangles before the first batch and
// is kept consistent through every Ingest/Advance thereafter. Sinks must
// attach at open — attached later they would have missed the seed events.
func OpenStreamSinks[VM, EM any](g *Graph[VM, EM], opts StreamOptions[EM], plan *SurveyPlan[EM], sinks []StreamSink[VM, EM], analyses ...AttachedStreamAnalysis[VM, EM]) (*Stream[VM, EM], error) {
	return core.OpenStreamSinks(g, opts, plan, sinks, analyses...)
}

// Stock invertible analyses — the streaming counterparts of the stock
// Analysis values, with Unobserve/Clone filled in.

// StreamCountAnalysis is CountAnalysis with the obvious inverse.
func StreamCountAnalysis[VM, EM any]() StreamAnalysis[VM, EM, uint64] {
	return core.StreamCountAnalysis[VM, EM]()
}

// StreamVertexCountAnalysis is VertexCountAnalysis with per-vertex
// decrements as the inverse.
func StreamVertexCountAnalysis[VM, EM any]() StreamAnalysis[VM, EM, map[uint64]uint64] {
	return core.StreamVertexCountAnalysis[VM, EM]()
}

// StreamClosureTimeAnalysis is ClosureTimeAnalysis with bucket decrements
// as the inverse.
func StreamClosureTimeAnalysis[VM any]() StreamAnalysis[VM, uint64, *Joint2D] {
	return core.StreamClosureTimeAnalysis[VM]()
}

// StreamMaxEdgeLabelAnalysis is MaxEdgeLabelAnalysis with label decrements
// as the inverse.
func StreamMaxEdgeLabelAnalysis[VM comparable](distinctLabels bool) StreamAnalysis[VM, uint64, map[uint64]uint64] {
	return core.StreamMaxEdgeLabelAnalysis[VM](distinctLabels)
}
