package tripoll_test

import (
	"math"
	"testing"

	"tripoll"
	"tripoll/datagen"
)

func TestPublicDirectedCensus(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	b := tripoll.NewGraphBuilder(w,
		tripoll.UnitCodec(),
		tripoll.DirectedCodec(tripoll.UnitCodec()),
		tripoll.BuilderOptions[tripoll.DirectedMeta[tripoll.Unit]]{
			MergeEdgeMeta: tripoll.MergeDirected[tripoll.Unit](nil),
		})
	var g *tripoll.Graph[tripoll.Unit, tripoll.DirectedMeta[tripoll.Unit]]
	w.Parallel(func(r *tripoll.Rank) {
		if r.ID() == 0 {
			// Directed 3-cycle plus a transitive triangle.
			tripoll.AddArc(b, r, 0, 1, tripoll.Unit{})
			tripoll.AddArc(b, r, 1, 2, tripoll.Unit{})
			tripoll.AddArc(b, r, 2, 0, tripoll.Unit{})
			tripoll.AddArc(b, r, 5, 6, tripoll.Unit{})
			tripoll.AddArc(b, r, 5, 7, tripoll.Unit{})
			tripoll.AddArc(b, r, 6, 7, tripoll.Unit{})
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	census, res := tripoll.SurveyDirectedCensus(g, tripoll.SurveyOptions{})
	if res.Triangles != 2 || census.Cyclic != 1 || census.Transitive != 1 {
		t.Errorf("census = %+v (triangles %d)", census, res.Triangles)
	}
	// Direction helpers.
	m := tripoll.ArcMeta[tripoll.Unit](3, 1, tripoll.Unit{})
	if !tripoll.HasArc(m, 3, 1) || tripoll.HasArc(m, 1, 3) {
		t.Error("ArcMeta/HasArc")
	}
}

func TestPublicLabelIndex(t *testing.T) {
	w := tripoll.NewWorld(2)
	defer w.Close()
	b := tripoll.NewGraphBuilder(w, tripoll.StringCodec(), tripoll.UnitCodec(),
		tripoll.BuilderOptions[tripoll.Unit]{})
	var g *tripoll.Graph[string, tripoll.Unit]
	w.Parallel(func(r *tripoll.Rank) {
		if r.ID() == 0 {
			b.AddEdge(r, 0, 1, tripoll.Unit{})
			b.AddEdge(r, 1, 2, tripoll.Unit{})
			b.AddEdge(r, 0, 2, tripoll.Unit{})
			b.SetVertexMeta(r, 0, "red")
			b.SetVertexMeta(r, 1, "blue")
			b.SetVertexMeta(r, 2, "red")
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	ix, res := tripoll.BuildLabelIndex(g, tripoll.SurveyOptions{}, tripoll.StringCodec())
	if res.Triangles != 1 {
		t.Fatalf("triangles = %d", res.Triangles)
	}
	if ix.Query(0, 1, "red") != 1 || ix.Query(0, 2, "blue") != 1 || ix.Query(1, 2, "red") != 1 {
		t.Errorf("label index: %v", ix)
	}
}

func TestPublicAlgos(t *testing.T) {
	w := tripoll.NewWorld(4)
	defer w.Close()
	edges := datagen.WattsStrogatz(500, 3, 0.05, 2)
	g := tripoll.BuildAdj(w, edges)

	depths := tripoll.NewBFS(g).Run(edges[0][0])
	if len(depths) < 400 {
		t.Errorf("BFS reached only %d vertices", len(depths))
	}
	comp := tripoll.NewConnectedComponents(g).Run()
	if len(comp) == 0 {
		t.Fatal("no components")
	}
	pr := tripoll.NewPageRank(g).Run(20, 0.85)
	var sum float64
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("PageRank sums to %v", sum)
	}
}

func TestPublicSnapshotRoundTrip(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	edges := datagen.BarabasiAlbert(800, 5, 13)
	g := tripoll.BuildSimple(w, edges)
	before := tripoll.Count(g, tripoll.SurveyOptions{})

	dir := t.TempDir() + "/snap"
	if err := tripoll.SaveGraph(g, dir); err != nil {
		t.Fatal(err)
	}
	g2, err := tripoll.LoadGraph(w, dir, tripoll.UnitCodec(), tripoll.UnitCodec())
	if err != nil {
		t.Fatal(err)
	}
	after := tripoll.Count(g2, tripoll.SurveyOptions{})
	if after.Triangles != before.Triangles {
		t.Errorf("count after reload = %d, want %d", after.Triangles, before.Triangles)
	}
	if tripoll.Info(g2) != tripoll.Info(g) {
		t.Errorf("info drifted: %+v vs %+v", tripoll.Info(g2), tripoll.Info(g))
	}
}

func TestPublicTemporalWindows(t *testing.T) {
	w := tripoll.NewWorld(2)
	defer w.Close()
	g := tripoll.BuildTemporal(w, []tripoll.TemporalEdge{
		{U: 0, V: 1, Time: 10}, {U: 1, V: 2, Time: 20}, {U: 0, V: 2, Time: 30},
	})
	within, total, _ := tripoll.TemporalWindowCount(g, 20, tripoll.SurveyOptions{})
	if total != 1 || within != 1 {
		t.Errorf("window 20: within=%d total=%d", within, total)
	}
	counts, _ := tripoll.TemporalWindowSweep(g, []uint64{5, 25}, tripoll.SurveyOptions{})
	if counts[5] != 0 || counts[25] != 1 {
		t.Errorf("sweep = %v", counts)
	}
}

func TestPublicGroupedWorld(t *testing.T) {
	w, err := tripoll.NewWorldWith(4, tripoll.WorldOptions{GroupSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	g := tripoll.BuildSimple(w, datagen.Complete(8))
	if res := tripoll.Count(g, tripoll.SurveyOptions{}); res.Triangles != 56 {
		t.Errorf("grouped-world count = %d, want 56", res.Triangles)
	}
}
