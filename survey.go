package tripoll

import (
	"tripoll/internal/core"
	"tripoll/internal/stats"
)

// TriangleSurvey is a reusable prepared survey; construct with NewSurvey
// outside Parallel regions and Run as many times as desired.
type TriangleSurvey[VM, EM any] = core.Survey[VM, EM]

// NewSurvey prepares a reusable triangle survey of g, invoking cb on every
// triangle with all six metadata items colocated.
func NewSurvey[VM, EM any](g *Graph[VM, EM], opts SurveyOptions, cb Callback[VM, EM]) *TriangleSurvey[VM, EM] {
	return core.NewSurvey(g, opts, cb)
}

// Count runs the simple triangle-counting survey of Alg. 2 (a survey with
// no callback).
//
// Deprecated: equivalent to Run(g, opts, nil); kept as the conventional
// name for the bare count.
func Count[VM, EM any](g *Graph[VM, EM], opts SurveyOptions) Result {
	return core.Count(g, opts)
}

// SurveyPlan declares which triangles a survey cares about — edge-metadata
// predicates (WhereEdge), temporal δ-windows (CloseWithin) and sliding
// time windows (From/Until/Window) — and compiles them into filters pushed
// into the survey's communication phases: wedge batches whose known
// metadata already violates a predicate are never enqueued, and pull
// replies omit adjacency entries that cannot complete a matching triangle.
// Results are identical to surveying unplanned and post-filtering with
// MatchEdges in the callback (property-tested); the difference is the
// traffic, which Result's phase stats and Pruned* counters quantify and
// `tripoll-bench -exp pushdown` measures.
type SurveyPlan[EM any] = core.Plan[EM]

// NewSurveyPlan returns an empty plan over the graph's edge-metadata type;
// add constraints fluently. Temporal constraints need a Timestamps
// accessor — for uint64-timestamp metadata use NewTemporalPlan.
func NewSurveyPlan[EM any]() *SurveyPlan[EM] { return core.NewPlan[EM]() }

// NewTemporalPlan returns a plan for uint64-timestamp edge metadata (the
// BuildTemporal configuration) with the timestamp accessor pre-installed:
//
//	plan := tripoll.NewTemporalPlan().CloseWithin(3600) // δ-window: 1h
//	res, _ := tripoll.WindowedCount(g, plan, tripoll.SurveyOptions{})
func NewTemporalPlan() *SurveyPlan[uint64] { return core.TemporalPlan() }

// ErrPlanNoTimestamps is returned when a plan sets a temporal constraint
// without a Timestamps accessor.
var ErrPlanNoTimestamps = core.ErrNoTimestamps

// NewPlannedSurvey prepares a reusable survey restricted to plan-matching
// triangles, with the plan's predicates pushed down into every phase. A
// nil or empty plan degenerates to NewSurvey.
func NewPlannedSurvey[VM, EM any](g *Graph[VM, EM], opts SurveyOptions, plan *SurveyPlan[EM], cb Callback[VM, EM]) (*TriangleSurvey[VM, EM], error) {
	return core.NewPlannedSurvey(g, opts, plan, cb)
}

// WindowedCount counts plan-matching triangles — the δ-windowed /
// time-windowed / metadata-filtered analog of Count. Result.Triangles is
// the matching count.
//
// Deprecated: equivalent to Run(g, opts, plan); kept as the conventional
// name for the bare windowed count.
func WindowedCount[VM, EM any](g *Graph[VM, EM], plan *SurveyPlan[EM], opts SurveyOptions) (Result, error) {
	return core.WindowedCount(g, plan, opts)
}

// WindowedClosureTimes is ClosureTimes restricted to plan-matching
// triangles, with the plan pushed down into the communication phases.
//
// Deprecated: use Run with ClosureTimeAnalysis and a plan, which fuses
// with other analyses in one traversal.
func WindowedClosureTimes[VM any](g *Graph[VM, uint64], plan *SurveyPlan[uint64], opts SurveyOptions) (*Joint2D, Result, error) {
	return core.WindowedClosureTimes(g, plan, opts)
}

// WindowedMaxEdgeLabelDistribution is MaxEdgeLabelDistribution restricted
// to plan-matching triangles; the plan's predicates range over edge labels.
//
// Deprecated: use Run with MaxEdgeLabelAnalysis and a plan, which fuses
// with other analyses in one traversal.
func WindowedMaxEdgeLabelDistribution[VM comparable](g *Graph[VM, uint64], plan *SurveyPlan[uint64], opts SurveyOptions) (map[uint64]uint64, Result, error) {
	return core.WindowedMaxEdgeLabelDistribution(g, plan, opts)
}

// LocalVertexCounts computes per-vertex triangle participation counts and
// gathers the global map — the primitive behind truss decomposition and
// clustering coefficients (§5.3).
//
// Deprecated: use Run with VertexCountAnalysis, which fuses with other
// analyses in one traversal.
func LocalVertexCounts[VM, EM any](g *Graph[VM, EM], opts SurveyOptions) (map[uint64]uint64, Result) {
	return core.LocalVertexCounts(g, opts)
}

// ClusteringStats summarizes clustering coefficients.
type ClusteringStats = core.ClusteringStats

// ClusteringCoefficients derives average and global clustering
// coefficients from local triangle counts.
//
// Deprecated: use Run with ClusteringAnalysis, which fuses with other
// analyses in one traversal.
func ClusteringCoefficients[VM, EM any](g *Graph[VM, EM], opts SurveyOptions) (ClusteringStats, Result) {
	return core.ClusteringCoefficients(g, opts)
}

// MaxEdgeLabelDistribution is Alg. 3: among triangles with pairwise
// distinct vertex labels, the distribution of the maximum edge label.
//
// Deprecated: use Run with MaxEdgeLabelAnalysis, which fuses with other
// analyses in one traversal.
func MaxEdgeLabelDistribution[VM comparable](g *Graph[VM, uint64], opts SurveyOptions) (map[uint64]uint64, Result) {
	return core.MaxEdgeLabelDistribution(g, opts)
}

// Joint2D is a two-dimensional bucket histogram (the Fig. 6 artifact).
type Joint2D = stats.Joint2D

// ClosureTimes is Alg. 4 (the §5.7 Reddit survey): for each triangle with
// edge timestamps t1 ≤ t2 ≤ t3, counts the joint ceil-log₂ bucket pair of
// the wedge opening time (t2−t1) and triangle closing time (t3−t1).
//
// Deprecated: use Run with ClosureTimeAnalysis, which fuses with other
// analyses in one traversal.
func ClosureTimes[VM any](g *Graph[VM, uint64], opts SurveyOptions) (*Joint2D, Result) {
	return core.ClosureTimes(g, opts)
}

// DegreeTriple is a log₂-bucketed degree 3-tuple (§5.9).
type DegreeTriple = core.DegreeTriple

// DegreeTriples counts log₂-bucketed degree triples across all triangles;
// vertex metadata must hold each vertex's degree (§5.9's configuration).
//
// Deprecated: use Run with DegreeTripleAnalysis, which fuses with other
// analyses in one traversal.
func DegreeTriples[EM any](g *Graph[uint64, EM], opts SurveyOptions) (map[DegreeTriple]uint64, Result) {
	return core.DegreeTriples(g, opts)
}

// GraphInfo is the Tab. 1 row for a built graph.
type GraphInfo struct {
	Vertices      uint64
	DirectedEdges uint64 // symmetrized directed edge count (Tab. 1's |E|)
	PlusEdges     uint64 // edges of G⁺ (undirected count)
	Wedges        uint64 // |W⁺|
	MaxDegree     uint32
	MaxOutDegree  uint32
	Ordering      string // vertex-ordering strategy the graph was built with
	Degeneracy    uint32 // k-core bound; 0 unless built with OrderDegeneracy
}

// Info summarizes a built graph.
func Info[VM, EM any](g *Graph[VM, EM]) GraphInfo {
	return GraphInfo{
		Vertices:      g.NumVertices(),
		DirectedEdges: g.NumDirectedEdges(),
		PlusEdges:     g.NumUndirectedEdges(),
		Wedges:        g.NumWedges(),
		MaxDegree:     g.MaxDegree(),
		MaxOutDegree:  g.MaxOutDegree(),
		Ordering:      g.Ordering().String(),
		Degeneracy:    g.Degeneracy(),
	}
}

// BuildSimple is a convenience constructor for metadata-free graphs: it
// distributes the given undirected edges across ranks and builds the
// DODGr in one call.
func BuildSimple(w *World, edges [][2]uint64) *Graph[Unit, Unit] {
	b := NewGraphBuilder(w, UnitCodec(), UnitCodec(), BuilderOptions[Unit]{})
	var g *Graph[Unit, Unit]
	first, count := w.LocalSpan()
	w.Parallel(func(r *Rank) {
		// Stride over the local span only: in a multi-process world the
		// edge list lives in the driver process and remote ranks see an
		// empty slice, so the local ranks must cover it between them.
		for i := r.ID() - first; i < len(edges); i += count {
			b.AddEdge(r, edges[i][0], edges[i][1], Unit{})
		}
		gg := b.Build(r)
		if r.ID() == w.LeaderID() {
			g = gg
		}
	})
	return g
}

// BuildTemporal is a convenience constructor for timestamped multigraphs:
// duplicate edges keep the chronologically first timestamp, the §5.2
// reduction.
func BuildTemporal(w *World, edges []TemporalEdge) *Graph[Unit, uint64] {
	b := NewGraphBuilder(w, UnitCodec(), Uint64Codec(), BuilderOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	})
	var g *Graph[Unit, uint64]
	first, count := w.LocalSpan()
	w.Parallel(func(r *Rank) {
		for i := r.ID() - first; i < len(edges); i += count {
			b.AddEdge(r, edges[i].U, edges[i].V, edges[i].Time)
		}
		gg := b.Build(r)
		if r.ID() == w.LeaderID() {
			g = gg
		}
	})
	return g
}
