// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5) at benchmark scale. Each benchmark wraps the corresponding driver in
// internal/exp; run a single artifact with e.g.
//
//	go test -bench 'BenchmarkTable2$' -benchtime 1x
//
// The rendered tables/figures are printed once per benchmark via b.Log at
// -v, and cmd/tripoll-bench prints them unconditionally.
package tripoll_test

import (
	"testing"

	"tripoll"
	"tripoll/internal/exp"
	"tripoll/internal/ygm"
)

// benchConfig keeps per-iteration cost low enough for -bench . while still
// exercising distributed codepaths on real rank counts.
func benchConfig() exp.Config {
	return exp.Config{Scale: 0.1, MaxRanks: 4}
}

func runExp(b *testing.B, id string) {
	b.Helper()
	r, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := r.Run(cfg)
		if i == 0 {
			b.Log("\n" + rep.Render())
		}
	}
}

// BenchmarkTable1 regenerates the dataset-overview table (Tab. 1).
func BenchmarkTable1(b *testing.B) { runExp(b, "table1") }

// BenchmarkFig4 regenerates the push-pull strong-scaling study (Fig. 4).
func BenchmarkFig4(b *testing.B) { runExp(b, "fig4") }

// BenchmarkFig5 regenerates the R-MAT weak-scaling study (Fig. 5).
func BenchmarkFig5(b *testing.B) { runExp(b, "fig5") }

// BenchmarkTable2 regenerates the related-work comparison (Tab. 2).
func BenchmarkTable2(b *testing.B) { runExp(b, "table2") }

// BenchmarkFig6 regenerates the Reddit closure-time distributions (Fig. 6).
func BenchmarkFig6(b *testing.B) { runExp(b, "fig6") }

// BenchmarkFig7 regenerates closure-survey strong scaling + Tab. 3 pulls.
func BenchmarkFig7(b *testing.B) { runExp(b, "fig7") }

// BenchmarkFig8 regenerates the FQDN survey (Fig. 8).
func BenchmarkFig8(b *testing.B) { runExp(b, "fig8") }

// BenchmarkFig9 regenerates the metadata-impact study (Fig. 9).
func BenchmarkFig9(b *testing.B) { runExp(b, "fig9") }

// BenchmarkTable4 regenerates the push-only vs push-pull table (Tab. 4).
func BenchmarkTable4(b *testing.B) { runExp(b, "table4") }

// BenchmarkAblationPullFactor sweeps the §4.4 pull-decision threshold.
func BenchmarkAblationPullFactor(b *testing.B) { runExp(b, "pullfactor") }

// BenchmarkAblationBuffer sweeps the §4.1.1 message-buffer size.
func BenchmarkAblationBuffer(b *testing.B) { runExp(b, "buffer") }

// BenchmarkAblationTransport compares channel and TCP transports.
func BenchmarkAblationTransport(b *testing.B) { runExp(b, "transport") }

// BenchmarkAblationGrouping measures node-level message aggregation
// (§5.4's proposed remedy).
func BenchmarkAblationGrouping(b *testing.B) { runExp(b, "grouping") }

// BenchmarkAblationPartition compares hash and cyclic vertex partitioning
// (§4.2).
func BenchmarkAblationPartition(b *testing.B) { runExp(b, "partition") }

// --- Micro-benchmarks of the core operations -----------------------------

// BenchmarkSurveyPushOnly measures the raw push-only survey over a fixed
// scale-free graph on 4 ranks.
func BenchmarkSurveyPushOnly(b *testing.B) { benchSurvey(b, true) }

// BenchmarkSurveyPushPull measures the push-pull survey on the same graph.
func BenchmarkSurveyPushPull(b *testing.B) { benchSurvey(b, false) }

func benchSurvey(b *testing.B, pushOnly bool) {
	b.Helper()
	cfg := exp.Config{Scale: 0.1, MaxRanks: 4, Transport: ygm.TransportChannel}
	ds := exp.Datasets(cfg)
	w, g := exp.BuildUnit(cfg, 4, ds[1].Edges)
	defer w.Close()
	mode := tripoll.PushPull
	if pushOnly {
		mode = tripoll.PushOnly
	}
	var triangles uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tripoll.Count(g, tripoll.SurveyOptions{Mode: mode})
		triangles = res.Triangles
	}
	b.StopTimer()
	if triangles == 0 {
		b.Fatal("no triangles found")
	}
	b.SetBytes(int64(g.NumWedges()))
}
