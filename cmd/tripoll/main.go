// tripoll is the command-line front end for running triangle surveys on
// edge-list files or generated graphs.
//
// Usage:
//
//	tripoll -input graph.txt -survey count
//	tripoll -gen reddit -survey closure -ranks 8
//	tripoll -gen ba -survey cc -mode push-only
//	tripoll -gen reddit -survey count,closure,labels   # one fused pass
//	tripoll -gen reddit -survey windowed -delta 3600
//	tripoll -gen reddit -survey wclosure -from 1000 -until 500000
//	tripoll -help   # lists surveys, generators and bench experiments
//
// -survey accepts a comma-separated list: all listed surveys run as one
// fused traversal (one dry run, one push, one pull — see DESIGN.md §8).
// The plan flags -delta/-from/-until restrict every listed survey and push
// their predicates into the communication phases.
//
// Input files are whitespace edge lists: "u v [timestamp]", '#' comments.
// (The max-edge-label survey of Alg. 3 needs distinct vertex labels, which
// plain edge lists don't carry; -survey labels therefore reports the
// distribution over all triangles.)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tripoll"
	"tripoll/datagen"
	"tripoll/internal/exp"
	"tripoll/internal/stats"
)

// surveys maps each -survey value to a one-line description; keep the
// listing in Usage in sync by construction.
var surveys = []struct{ name, desc string }{
	{"count", "triangle count (Alg. 2)"},
	{"closure", "joint wedge-open/triangle-close time distribution (Alg. 4, §5.7)"},
	{"cc", "average clustering coefficient and global transitivity"},
	{"localcounts", "per-vertex triangle participation counts (§5.3)"},
	{"edgecounts", "per-edge triangle participation counts (truss input, §5.3)"},
	{"labels", "distribution of each triangle's maximum edge label/timestamp (Alg. 3 sans vertex labels)"},
	{"windowed", "plan-restricted count: -delta δ-window, -from/-until sliding window (predicate pushdown)"},
	{"wclosure", "closure-time distribution restricted to the same plan flags"},
}

var generators = []struct{ name, desc string }{
	{"reddit", "temporal comment stream (bursty timestamps, triadic closure)"},
	{"webhost", "planted host-communities web graph"},
	{"ba", "Barabási–Albert preferential attachment"},
	{"er", "Erdős–Rényi"},
	{"ws", "Watts–Strogatz small world"},
	{"rmat", "R-MAT scale 14"},
}

func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "tripoll runs triangle surveys on edge-list files or generated graphs.\n\nusage: tripoll [flags]\n\nflags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, "\nsurveys (-survey; comma-separate to fuse several into one traversal):\n")
	for _, s := range surveys {
		fmt.Fprintf(out, "  %-12s %s\n", s.name, s.desc)
	}
	fmt.Fprintf(out, "\ngenerators (-gen):\n")
	for _, g := range generators {
		fmt.Fprintf(out, "  %-12s %s\n", g.name, g.desc)
	}
	fmt.Fprintf(out, "\nbench experiments (go run ./cmd/tripoll-bench -exp <id>):\n")
	for _, r := range exp.All() {
		fmt.Fprintf(out, "  %-12s %s\n", r.ID, r.Desc)
	}
}

func main() {
	var (
		input     = flag.String("input", "", "edge list file (u v [timestamp])")
		genModel  = flag.String("gen", "", "generate instead of reading (see generator list below)")
		survey    = flag.String("survey", "count", "comma-separated surveys to fuse into one pass (see survey list below)")
		ranks     = flag.Int("ranks", 4, "simulated rank count")
		mode      = flag.String("mode", "push-pull", "algorithm: push-pull|push-only")
		transport = flag.String("transport", "channel", "transport: channel|tcp")
		seed      = flag.Int64("seed", 42, "generator seed")
		size      = flag.Int("size", 100_000, "generated edge budget / events")
		delta     = flag.Int64("delta", -1, "survey plan: keep triangles whose timestamps span ≤ delta (-1 = off)")
		from      = flag.Int64("from", -1, "survey plan: keep triangles with all timestamps ≥ from (-1 = off)")
		until     = flag.Int64("until", -1, "survey plan: keep triangles with all timestamps ≤ until (-1 = off)")
	)
	flag.Usage = usage
	flag.Parse()

	opts := tripoll.SurveyOptions{}
	switch *mode {
	case "push-pull":
		opts.Mode = tripoll.PushPull
	case "push-only":
		opts.Mode = tripoll.PushOnly
	default:
		fail("unknown mode %q", *mode)
	}
	wopts := tripoll.WorldOptions{}
	switch *transport {
	case "channel":
		wopts.Transport = tripoll.TransportChannel
	case "tcp":
		wopts.Transport = tripoll.TransportTCP
	default:
		fail("unknown transport %q", *transport)
	}

	edges := loadEdges(*input, *genModel, *seed, *size)
	w, err := tripoll.NewWorldWith(*ranks, wopts)
	if err != nil {
		fail("world: %v", err)
	}
	defer w.Close()

	g := tripoll.BuildTemporal(w, edges)
	info := tripoll.Info(g)
	fmt.Printf("graph: |V|=%s |E|=%s (directed, symmetrized) |W+|=%s dmax=%d dmax+=%d\n",
		stats.FormatCount(info.Vertices), stats.FormatCount(info.DirectedEdges),
		stats.FormatCount(info.Wedges), info.MaxDegree, info.MaxOutDegree)

	plan := tripoll.NewTemporalPlan()
	if *delta >= 0 {
		plan.CloseWithin(uint64(*delta))
	}
	if *from >= 0 {
		plan.From(uint64(*from))
	}
	if *until >= 0 {
		plan.Until(uint64(*until))
	}

	// Each requested survey contributes one attached analysis and one
	// printer; everything runs as a single fused traversal.
	var attached []tripoll.AttachedAnalysis[tripoll.Unit, uint64]
	var printers []func()
	var requested []string
	attach := func(a tripoll.AttachedAnalysis[tripoll.Unit, uint64], print func()) {
		attached = append(attached, a)
		printers = append(printers, print)
	}
	for _, name := range strings.Split(*survey, ",") {
		name = strings.TrimSpace(name)
		requested = append(requested, name)
		switch name {
		case "count", "windowed":
			if name == "windowed" && plan.IsEmpty() {
				fail("-survey windowed needs at least one of -delta, -from, -until")
			}
			// Nothing to attach: the engine maintains the count itself and
			// printResult's "triangles:" line reports it.
		case "closure", "wclosure":
			if name == "wclosure" && plan.IsEmpty() {
				fail("-survey wclosure needs at least one of -delta, -from, -until")
			}
			joint := new(*tripoll.Joint2D)
			attach(tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(joint), func() {
				fmt.Println((*joint).MarginalY().Render("closing time distribution", "log2(dt_close)", 48))
				fmt.Println((*joint).Render("joint open/close distribution", "log2(dt_open)", "log2(dt_close)"))
			})
		case "cc":
			acc := new(tripoll.ClusteringAccum)
			attach(tripoll.ClusteringAnalysis[tripoll.Unit, uint64](g).Bind(acc), func() {
				// Under plan flags only matching triangles count toward
				// t(v) and |T|; say so instead of mislabeling the output
				// as the unrestricted coefficients.
				restricted := ""
				if !plan.IsEmpty() {
					restricted = " (plan-restricted triangles)"
				}
				fmt.Printf("average clustering coefficient%s: %.5f\nglobal transitivity%s: %.5f\n",
					restricted, acc.Stats.Average, restricted, acc.Stats.Global)
			})
		case "localcounts":
			counts := new(map[uint64]uint64)
			attach(tripoll.VertexCountAnalysis[tripoll.Unit, uint64]().Bind(counts), func() {
				fmt.Println("top triangle-participating vertices:")
				printTop(*counts, lessUint64, func(v uint64) string { return fmt.Sprintf("v%d", v) })
			})
		case "edgecounts":
			counts := new(map[tripoll.EdgeKey]uint64)
			attach(tripoll.EdgeCountAnalysis[tripoll.Unit, uint64]().Bind(counts), func() {
				fmt.Println("top triangle-participating edges:")
				printTop(*counts, func(a, b tripoll.EdgeKey) bool {
					if a.First != b.First {
						return a.First < b.First
					}
					return a.Second < b.Second
				}, func(e tripoll.EdgeKey) string {
					return fmt.Sprintf("{%d,%d}", e.First, e.Second)
				})
			})
		case "labels":
			dist := new(map[uint64]uint64)
			attach(tripoll.MaxEdgeLabelAnalysis[tripoll.Unit](false).Bind(dist), func() {
				fmt.Println("max edge label/timestamp distribution (most frequent):")
				printTop(*dist, lessUint64, func(l uint64) string { return fmt.Sprintf("label %d", l) })
			})
		default:
			fail("unknown survey %q (run with -help for the list)", name)
		}
	}
	var p *tripoll.SurveyPlan[uint64]
	if !plan.IsEmpty() {
		p = plan
	}
	res, err := tripoll.Run(g, opts, p, attached...)
	if err != nil {
		fail("survey: %v", err)
	}
	printResult(res, requested)
	for _, print := range printers {
		print()
	}
}

// printTop renders the ten largest entries of a counter map; less orders
// keys naturally (numerically, not by rendered string) to break count ties
// deterministically.
func printTop[K comparable](counts map[K]uint64, less func(a, b K) bool, keyName func(K) string) {
	type kc struct {
		k K
		c uint64
	}
	var top []kc
	for k, c := range counts {
		top = append(top, kc{k, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].c != top[j].c {
			return top[i].c > top[j].c
		}
		return less(top[i].k, top[j].k)
	})
	for i, t := range top {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-16s %s\n", keyName(t.k), stats.FormatCount(t.c))
	}
}

func lessUint64(a, b uint64) bool { return a < b }

func printResult(res tripoll.Result, requested []string) {
	fmt.Printf("triangles: %s\n", stats.FormatCount(res.Triangles))
	if len(requested) > 1 {
		fmt.Printf("fused surveys (one traversal): %s\n", strings.Join(requested, ", "))
	}
	fmt.Printf("mode %s  total %s (dry-run %s, push %s, pull %s)\n",
		res.Mode, stats.FormatDuration(res.Total),
		stats.FormatDuration(res.DryRun.Duration),
		stats.FormatDuration(res.Push.Duration),
		stats.FormatDuration(res.Pull.Duration))
	bytes := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
	fmt.Printf("communication: %s in %s messages; pulls granted %s (%.1f/rank)\n",
		stats.FormatBytes(bytes),
		stats.FormatCount(uint64(res.DryRun.Messages+res.Push.Messages+res.Pull.Messages)),
		stats.FormatCount(res.PullsGranted), res.AvgPullsPerRank)
	if res.Planned {
		fmt.Printf("pushdown: %s wedge batches, %s candidates and %s pull entries pruned before enqueue\n",
			stats.FormatCount(res.PrunedBatches),
			stats.FormatCount(res.PrunedCandidates),
			stats.FormatCount(res.PrunedPullEntries))
	}
}

func loadEdges(input, model string, seed int64, size int) []tripoll.TemporalEdge {
	if input != "" {
		edges, err := tripoll.ReadEdgeListFile(input)
		if err != nil {
			fail("read %s: %v", input, err)
		}
		return edges
	}
	switch model {
	case "reddit":
		p := datagen.DefaultRedditParams()
		p.Seed = seed
		p.Events = size
		p.Users = uint64(size / 8)
		return datagen.RedditLike(p)
	case "webhost":
		p := datagen.DefaultWebHostParams()
		p.Seed = seed
		p.IntraEdges = size * 2 / 5
		p.InterEdges = size * 3 / 5
		return datagen.ToTemporal(datagen.WebHostLike(p).Edges)
	case "ba":
		return datagen.ToTemporal(datagen.BarabasiAlbert(uint64(size/8), 8, seed))
	case "er":
		return datagen.ToTemporal(datagen.ErdosRenyi(uint64(size/16), size, seed))
	case "ws":
		return datagen.ToTemporal(datagen.WattsStrogatz(uint64(size/6), 3, 0.1, seed))
	case "rmat":
		p := datagen.RMATParams{Scale: 14, Seed: seed, Scramble: true}
		edges := make([]tripoll.TemporalEdge, 0, p.NumEdges())
		p.Generate(0, p.NumEdges(), func(u, v uint64) {
			edges = append(edges, tripoll.TemporalEdge{U: u, V: v})
		})
		return edges
	case "":
		fail("need -input or -gen (run with -help for the generator list)")
	default:
		fail("unknown generator %q (run with -help for the list)", model)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
