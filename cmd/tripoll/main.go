// tripoll is the command-line front end for running triangle surveys on
// edge-list files or generated graphs.
//
// Usage:
//
//	tripoll -input graph.txt -survey count
//	tripoll -gen reddit -survey closure -ranks 8
//	tripoll -gen ba -survey cc -mode push-only
//	tripoll -gen reddit -survey windowed -delta 3600
//	tripoll -gen reddit -survey wclosure -from 1000 -until 500000
//	tripoll -help   # lists surveys, generators and bench experiments
//
// Input files are whitespace edge lists: "u v [timestamp]", '#' comments.
// (The max-edge-label survey of Alg. 3 needs distinct vertex labels, which
// plain edge lists don't carry; see examples/max-edge-label.)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tripoll"
	"tripoll/datagen"
	"tripoll/internal/exp"
	"tripoll/internal/stats"
)

// surveys maps each -survey value to a one-line description; keep the
// listing in Usage in sync by construction.
var surveys = []struct{ name, desc string }{
	{"count", "triangle count (Alg. 2)"},
	{"closure", "joint wedge-open/triangle-close time distribution (Alg. 4, §5.7)"},
	{"cc", "average clustering coefficient and global transitivity"},
	{"localcounts", "per-vertex triangle participation counts (§5.3)"},
	{"windowed", "plan-restricted count: -delta δ-window, -from/-until sliding window (predicate pushdown)"},
	{"wclosure", "closure-time distribution restricted to the same plan flags"},
}

var generators = []struct{ name, desc string }{
	{"reddit", "temporal comment stream (bursty timestamps, triadic closure)"},
	{"webhost", "planted host-communities web graph"},
	{"ba", "Barabási–Albert preferential attachment"},
	{"er", "Erdős–Rényi"},
	{"ws", "Watts–Strogatz small world"},
	{"rmat", "R-MAT scale 14"},
}

func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "tripoll runs triangle surveys on edge-list files or generated graphs.\n\nusage: tripoll [flags]\n\nflags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, "\nsurveys (-survey):\n")
	for _, s := range surveys {
		fmt.Fprintf(out, "  %-12s %s\n", s.name, s.desc)
	}
	fmt.Fprintf(out, "\ngenerators (-gen):\n")
	for _, g := range generators {
		fmt.Fprintf(out, "  %-12s %s\n", g.name, g.desc)
	}
	fmt.Fprintf(out, "\nbench experiments (go run ./cmd/tripoll-bench -exp <id>):\n")
	for _, r := range exp.All() {
		fmt.Fprintf(out, "  %-12s %s\n", r.ID, r.Desc)
	}
}

func main() {
	var (
		input     = flag.String("input", "", "edge list file (u v [timestamp])")
		genModel  = flag.String("gen", "", "generate instead of reading (see generator list below)")
		survey    = flag.String("survey", "count", "survey to run (see survey list below)")
		ranks     = flag.Int("ranks", 4, "simulated rank count")
		mode      = flag.String("mode", "push-pull", "algorithm: push-pull|push-only")
		transport = flag.String("transport", "channel", "transport: channel|tcp")
		seed      = flag.Int64("seed", 42, "generator seed")
		size      = flag.Int("size", 100_000, "generated edge budget / events")
		delta     = flag.Int64("delta", -1, "survey plan: keep triangles whose timestamps span ≤ delta (-1 = off)")
		from      = flag.Int64("from", -1, "survey plan: keep triangles with all timestamps ≥ from (-1 = off)")
		until     = flag.Int64("until", -1, "survey plan: keep triangles with all timestamps ≤ until (-1 = off)")
	)
	flag.Usage = usage
	flag.Parse()

	opts := tripoll.SurveyOptions{}
	switch *mode {
	case "push-pull":
		opts.Mode = tripoll.PushPull
	case "push-only":
		opts.Mode = tripoll.PushOnly
	default:
		fail("unknown mode %q", *mode)
	}
	wopts := tripoll.WorldOptions{}
	switch *transport {
	case "channel":
		wopts.Transport = tripoll.TransportChannel
	case "tcp":
		wopts.Transport = tripoll.TransportTCP
	default:
		fail("unknown transport %q", *transport)
	}

	edges := loadEdges(*input, *genModel, *seed, *size)
	w, err := tripoll.NewWorldWith(*ranks, wopts)
	if err != nil {
		fail("world: %v", err)
	}
	defer w.Close()

	g := tripoll.BuildTemporal(w, edges)
	info := tripoll.Info(g)
	fmt.Printf("graph: |V|=%s |E|=%s (directed, symmetrized) |W+|=%s dmax=%d dmax+=%d\n",
		stats.FormatCount(info.Vertices), stats.FormatCount(info.DirectedEdges),
		stats.FormatCount(info.Wedges), info.MaxDegree, info.MaxOutDegree)

	plan := tripoll.NewTemporalPlan()
	if *delta >= 0 {
		plan.CloseWithin(uint64(*delta))
	}
	if *from >= 0 {
		plan.From(uint64(*from))
	}
	if *until >= 0 {
		plan.Until(uint64(*until))
	}
	if !plan.IsEmpty() && *survey != "windowed" && *survey != "wclosure" {
		fail("-delta/-from/-until only apply to -survey windowed|wclosure, not %q", *survey)
	}

	switch *survey {
	case "count":
		res := tripoll.Count(g, opts)
		printResult(res)
	case "windowed":
		if plan.IsEmpty() {
			fail("-survey windowed needs at least one of -delta, -from, -until")
		}
		res, err := tripoll.WindowedCount(g, plan, opts)
		if err != nil {
			fail("windowed: %v", err)
		}
		printResult(res)
	case "closure", "wclosure":
		var joint *tripoll.Joint2D
		var res tripoll.Result
		if *survey == "wclosure" {
			if plan.IsEmpty() {
				fail("-survey wclosure needs at least one of -delta, -from, -until")
			}
			var err error
			joint, res, err = tripoll.WindowedClosureTimes(g, plan, opts)
			if err != nil {
				fail("wclosure: %v", err)
			}
		} else {
			joint, res = tripoll.ClosureTimes(g, opts)
		}
		printResult(res)
		fmt.Println(joint.MarginalY().Render("closing time distribution", "log2(dt_close)", 48))
		fmt.Println(joint.Render("joint open/close distribution", "log2(dt_open)", "log2(dt_close)"))
	case "cc":
		cs, res := tripoll.ClusteringCoefficients(g, opts)
		printResult(res)
		fmt.Printf("average clustering coefficient: %.5f\nglobal transitivity: %.5f\n", cs.Average, cs.Global)
	case "localcounts":
		counts, res := tripoll.LocalVertexCounts(g, opts)
		printResult(res)
		type vc struct {
			v uint64
			c uint64
		}
		var top []vc
		for v, c := range counts {
			top = append(top, vc{v, c})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].c != top[j].c {
				return top[i].c > top[j].c
			}
			return top[i].v < top[j].v
		})
		fmt.Println("top triangle-participating vertices:")
		for i, t := range top {
			if i >= 10 {
				break
			}
			fmt.Printf("  v%-12d %s\n", t.v, stats.FormatCount(t.c))
		}
	default:
		fail("unknown survey %q (run with -help for the list)", *survey)
	}
}

func printResult(res tripoll.Result) {
	fmt.Printf("triangles: %s\n", stats.FormatCount(res.Triangles))
	fmt.Printf("mode %s  total %s (dry-run %s, push %s, pull %s)\n",
		res.Mode, stats.FormatDuration(res.Total),
		stats.FormatDuration(res.DryRun.Duration),
		stats.FormatDuration(res.Push.Duration),
		stats.FormatDuration(res.Pull.Duration))
	bytes := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
	fmt.Printf("communication: %s in %s messages; pulls granted %s (%.1f/rank)\n",
		stats.FormatBytes(bytes),
		stats.FormatCount(uint64(res.DryRun.Messages+res.Push.Messages+res.Pull.Messages)),
		stats.FormatCount(res.PullsGranted), res.AvgPullsPerRank)
	if res.Planned {
		fmt.Printf("pushdown: %s wedge batches, %s candidates and %s pull entries pruned before enqueue\n",
			stats.FormatCount(res.PrunedBatches),
			stats.FormatCount(res.PrunedCandidates),
			stats.FormatCount(res.PrunedPullEntries))
	}
}

func loadEdges(input, model string, seed int64, size int) []tripoll.TemporalEdge {
	if input != "" {
		edges, err := tripoll.ReadEdgeListFile(input)
		if err != nil {
			fail("read %s: %v", input, err)
		}
		return edges
	}
	switch model {
	case "reddit":
		p := datagen.DefaultRedditParams()
		p.Seed = seed
		p.Events = size
		p.Users = uint64(size / 8)
		return datagen.RedditLike(p)
	case "webhost":
		p := datagen.DefaultWebHostParams()
		p.Seed = seed
		p.IntraEdges = size * 2 / 5
		p.InterEdges = size * 3 / 5
		return datagen.ToTemporal(datagen.WebHostLike(p).Edges)
	case "ba":
		return datagen.ToTemporal(datagen.BarabasiAlbert(uint64(size/8), 8, seed))
	case "er":
		return datagen.ToTemporal(datagen.ErdosRenyi(uint64(size/16), size, seed))
	case "ws":
		return datagen.ToTemporal(datagen.WattsStrogatz(uint64(size/6), 3, 0.1, seed))
	case "rmat":
		p := datagen.RMATParams{Scale: 14, Seed: seed, Scramble: true}
		edges := make([]tripoll.TemporalEdge, 0, p.NumEdges())
		p.Generate(0, p.NumEdges(), func(u, v uint64) {
			edges = append(edges, tripoll.TemporalEdge{U: u, V: v})
		})
		return edges
	case "":
		fail("need -input or -gen (run with -help for the generator list)")
	default:
		fail("unknown generator %q (run with -help for the list)", model)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
