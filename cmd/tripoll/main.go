// tripoll is the command-line front end for running triangle surveys on
// edge-list files or generated graphs.
//
// Usage:
//
//	tripoll -input graph.txt -survey count
//	tripoll -gen reddit -survey closure -ranks 8
//	tripoll -gen ba -survey cc -mode push-only
//
// Input files are whitespace edge lists: "u v [timestamp]", '#' comments.
// (The max-edge-label survey of Alg. 3 needs distinct vertex labels, which
// plain edge lists don't carry; see examples/max-edge-label.)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tripoll"
	"tripoll/datagen"
	"tripoll/internal/stats"
)

func main() {
	var (
		input     = flag.String("input", "", "edge list file (u v [timestamp])")
		genModel  = flag.String("gen", "", "generate instead of reading: reddit|webhost|ba|er|ws|rmat")
		survey    = flag.String("survey", "count", "survey: count|closure|cc|localcounts")
		ranks     = flag.Int("ranks", 4, "simulated rank count")
		mode      = flag.String("mode", "push-pull", "algorithm: push-pull|push-only")
		transport = flag.String("transport", "channel", "transport: channel|tcp")
		seed      = flag.Int64("seed", 42, "generator seed")
		size      = flag.Int("size", 100_000, "generated edge budget / events")
	)
	flag.Parse()

	opts := tripoll.SurveyOptions{}
	switch *mode {
	case "push-pull":
		opts.Mode = tripoll.PushPull
	case "push-only":
		opts.Mode = tripoll.PushOnly
	default:
		fail("unknown mode %q", *mode)
	}
	wopts := tripoll.WorldOptions{}
	switch *transport {
	case "channel":
		wopts.Transport = tripoll.TransportChannel
	case "tcp":
		wopts.Transport = tripoll.TransportTCP
	default:
		fail("unknown transport %q", *transport)
	}

	edges := loadEdges(*input, *genModel, *seed, *size)
	w, err := tripoll.NewWorldWith(*ranks, wopts)
	if err != nil {
		fail("world: %v", err)
	}
	defer w.Close()

	g := tripoll.BuildTemporal(w, edges)
	info := tripoll.Info(g)
	fmt.Printf("graph: |V|=%s |E|=%s (directed, symmetrized) |W+|=%s dmax=%d dmax+=%d\n",
		stats.FormatCount(info.Vertices), stats.FormatCount(info.DirectedEdges),
		stats.FormatCount(info.Wedges), info.MaxDegree, info.MaxOutDegree)

	switch *survey {
	case "count":
		res := tripoll.Count(g, opts)
		printResult(res)
	case "closure":
		joint, res := tripoll.ClosureTimes(g, opts)
		printResult(res)
		fmt.Println(joint.MarginalY().Render("closing time distribution", "log2(dt_close)", 48))
		fmt.Println(joint.Render("joint open/close distribution", "log2(dt_open)", "log2(dt_close)"))
	case "cc":
		cs, res := tripoll.ClusteringCoefficients(g, opts)
		printResult(res)
		fmt.Printf("average clustering coefficient: %.5f\nglobal transitivity: %.5f\n", cs.Average, cs.Global)
	case "localcounts":
		counts, res := tripoll.LocalVertexCounts(g, opts)
		printResult(res)
		type vc struct {
			v uint64
			c uint64
		}
		var top []vc
		for v, c := range counts {
			top = append(top, vc{v, c})
		}
		sort.Slice(top, func(i, j int) bool {
			if top[i].c != top[j].c {
				return top[i].c > top[j].c
			}
			return top[i].v < top[j].v
		})
		fmt.Println("top triangle-participating vertices:")
		for i, t := range top {
			if i >= 10 {
				break
			}
			fmt.Printf("  v%-12d %s\n", t.v, stats.FormatCount(t.c))
		}
	default:
		fail("unknown survey %q", *survey)
	}
}

func printResult(res tripoll.Result) {
	fmt.Printf("triangles: %s\n", stats.FormatCount(res.Triangles))
	fmt.Printf("mode %s  total %s (dry-run %s, push %s, pull %s)\n",
		res.Mode, stats.FormatDuration(res.Total),
		stats.FormatDuration(res.DryRun.Duration),
		stats.FormatDuration(res.Push.Duration),
		stats.FormatDuration(res.Pull.Duration))
	bytes := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
	fmt.Printf("communication: %s in %s messages; pulls granted %s (%.1f/rank)\n",
		stats.FormatBytes(bytes),
		stats.FormatCount(uint64(res.DryRun.Messages+res.Push.Messages+res.Pull.Messages)),
		stats.FormatCount(res.PullsGranted), res.AvgPullsPerRank)
}

func loadEdges(input, model string, seed int64, size int) []tripoll.TemporalEdge {
	if input != "" {
		edges, err := tripoll.ReadEdgeListFile(input)
		if err != nil {
			fail("read %s: %v", input, err)
		}
		return edges
	}
	switch model {
	case "reddit":
		p := datagen.DefaultRedditParams()
		p.Seed = seed
		p.Events = size
		p.Users = uint64(size / 8)
		return datagen.RedditLike(p)
	case "webhost":
		p := datagen.DefaultWebHostParams()
		p.Seed = seed
		p.IntraEdges = size * 2 / 5
		p.InterEdges = size * 3 / 5
		return datagen.ToTemporal(datagen.WebHostLike(p).Edges)
	case "ba":
		return datagen.ToTemporal(datagen.BarabasiAlbert(uint64(size/8), 8, seed))
	case "er":
		return datagen.ToTemporal(datagen.ErdosRenyi(uint64(size/16), size, seed))
	case "ws":
		return datagen.ToTemporal(datagen.WattsStrogatz(uint64(size/6), 3, 0.1, seed))
	case "rmat":
		p := datagen.RMATParams{Scale: 14, Seed: seed, Scramble: true}
		edges := make([]tripoll.TemporalEdge, 0, p.NumEdges())
		p.Generate(0, p.NumEdges(), func(u, v uint64) {
			edges = append(edges, tripoll.TemporalEdge{U: u, V: v})
		})
		return edges
	case "":
		fail("need -input or -gen")
	default:
		fail("unknown generator %q", model)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
