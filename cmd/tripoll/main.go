// tripoll is the command-line front end for running triangle surveys on
// edge-list files or generated graphs.
//
// Usage:
//
//	tripoll -input graph.txt -survey count
//	tripoll -gen reddit -survey closure -ranks 8
//	tripoll -gen ba -survey cc -mode push-only
//	tripoll -gen reddit -survey count,closure,labels   # one fused pass
//	tripoll -gen reddit -survey windowed -delta 3600
//	tripoll -gen reddit -survey wclosure -from 1000 -until 500000
//	tripoll -gen reddit -survey count,closure -stream 8 -window 200000
//	tripoll -help   # lists surveys, generators and bench experiments
//
// -survey accepts a comma-separated list: all listed surveys run as one
// fused traversal (one dry run, one push, one pull — see DESIGN.md §8).
// The plan flags -delta/-from/-until restrict every listed survey and push
// their predicates into the communication phases.
//
// -stream N replays the input as N chronological batches through the
// streaming maintenance path (DESIGN.md §9): each batch is ingested
// incrementally, -window W slides the expiry watermark W time units
// behind each batch, and the listed surveys are maintained as invertible
// stream analyses (count, closure, localcounts, labels and their windowed
// variants; cc and edgecounts have no streaming counterpart).
//
// Input files are whitespace edge lists: "u v [timestamp]", '#' comments.
// (The max-edge-label survey of Alg. 3 needs distinct vertex labels, which
// plain edge lists don't carry; -survey labels therefore reports the
// distribution over all triangles.)
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tripoll"
	"tripoll/datagen"
	"tripoll/internal/exp"
	"tripoll/internal/stats"
)

// surveys maps each -survey value to a one-line description; keep the
// listing in Usage in sync by construction.
var surveys = []struct {
	name, desc string
	streamable bool
}{
	{"count", "triangle count (Alg. 2)", true},
	{"closure", "joint wedge-open/triangle-close time distribution (Alg. 4, §5.7)", true},
	{"cc", "average clustering coefficient and global transitivity", false},
	{"localcounts", "per-vertex triangle participation counts (§5.3)", true},
	{"edgecounts", "per-edge triangle participation counts (truss input, §5.3)", false},
	{"labels", "distribution of each triangle's maximum edge label/timestamp (Alg. 3 sans vertex labels)", true},
	{"windowed", "plan-restricted count: -delta δ-window, -from/-until sliding window (predicate pushdown)", true},
	{"wclosure", "closure-time distribution restricted to the same plan flags", true},
	{"trussness", "per-edge trussness via support peeling over the fused traversal (§15)", false},
	{"maxtruss", "maximum trussness and per-k truss sizes", false},
	{"spantruss", "maximal k-truss per time span: -truss-k order, -spans windows", false},
}

var generators = []struct{ name, desc string }{
	{"reddit", "temporal comment stream (bursty timestamps, triadic closure)"},
	{"webhost", "planted host-communities web graph"},
	{"ba", "Barabási–Albert preferential attachment"},
	{"er", "Erdős–Rényi"},
	{"ws", "Watts–Strogatz small world"},
	{"rmat", "R-MAT scale 14"},
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// exitCode aborts run through fail; see app.fail.
type exitCode int

// app carries the CLI's output streams so tests can drive run in-process.
type app struct {
	out, errOut io.Writer
}

func (a *app) fail(format string, args ...any) {
	fmt.Fprintf(a.errOut, format+"\n", args...)
	panic(exitCode(2))
}

func (a *app) printf(format string, args ...any) {
	fmt.Fprintf(a.out, format, args...)
}

func usage(fs *flag.FlagSet, out io.Writer) func() {
	return func() {
		fmt.Fprintf(out, "tripoll runs triangle surveys on edge-list files or generated graphs.\n\nusage: tripoll [flags]\n\nflags:\n")
		fs.SetOutput(out)
		fs.PrintDefaults()
		fmt.Fprintf(out, "\nsurveys (-survey; comma-separate to fuse several into one traversal; * = streamable with -stream):\n")
		for _, s := range surveys {
			mark := " "
			if s.streamable {
				mark = "*"
			}
			fmt.Fprintf(out, "  %-12s %s %s\n", s.name, mark, s.desc)
		}
		fmt.Fprintf(out, "\ngenerators (-gen):\n")
		for _, g := range generators {
			fmt.Fprintf(out, "  %-12s %s\n", g.name, g.desc)
		}
		fmt.Fprintf(out, "\nbench experiments (go run ./cmd/tripoll-bench -exp <id>):\n")
		for _, r := range exp.All() {
			fmt.Fprintf(out, "  %-12s %s\n", r.ID, r.Desc)
		}
	}
}

func run(args []string, stdout, stderr io.Writer) (code int) {
	a := &app{out: stdout, errOut: stderr}
	defer func() {
		if p := recover(); p != nil {
			if c, ok := p.(exitCode); ok {
				code = int(c)
				return
			}
			panic(p)
		}
	}()

	fs := flag.NewFlagSet("tripoll", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input     = fs.String("input", "", "edge list file (u v [timestamp])")
		genModel  = fs.String("gen", "", "generate instead of reading (see generator list below)")
		survey    = fs.String("survey", "count", "comma-separated surveys to fuse into one pass (see survey list below)")
		ranks     = fs.Int("ranks", 4, "simulated rank count")
		mode      = fs.String("mode", "push-pull", "algorithm: push-pull|push-only")
		transport = fs.String("transport", "channel", "transport: channel|tcp")
		seed      = fs.Int64("seed", 42, "generator seed")
		size      = fs.Int("size", 100_000, "generated edge budget / events")
		delta     = fs.Int64("delta", -1, "survey plan: keep triangles whose timestamps span ≤ delta (-1 = off)")
		from      = fs.Int64("from", -1, "survey plan: keep triangles with all timestamps ≥ from (-1 = off)")
		until     = fs.Int64("until", -1, "survey plan: keep triangles with all timestamps ≤ until (-1 = off)")
		stream    = fs.Int("stream", 0, "replay the input as N chronological batches through streaming maintenance (0 = off)")
		window    = fs.Int64("window", -1, "with -stream: retire edges more than W time units behind each batch (-1 = keep everything)")
		trussK    = fs.Int("truss-k", 0, "spantruss: truss order k (0 = default 3)")
		spansArg  = fs.String("spans", "", "spantruss: comma-separated from:until windows, e.g. 0:1000,500:1500 (default: the -from/-until window)")
	)
	fs.Usage = usage(fs, stderr)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0 // -help prints usage and succeeds, as ExitOnError did
		}
		return 2
	}

	// Plan flags use -1 as the "off" sentinel; anything else negative is a
	// contradiction the survey would silently turn into an empty or
	// undefined plan, so reject it loudly.
	for _, f := range []struct {
		name string
		v    int64
	}{{"-delta", *delta}, {"-from", *from}, {"-until", *until}, {"-window", *window}} {
		if f.v < -1 {
			a.fail("%s %d is negative: timestamps are unsigned (use -1 to disable)", f.name, f.v)
		}
	}
	if *from >= 0 && *until >= 0 && *from > *until {
		a.fail("contradictory window: -from %d > -until %d matches nothing", *from, *until)
	}
	// An explicit -stream 0 (or below) is a contradiction, not "off": the
	// user asked for streaming replay with no batches, which would silently
	// run the one-shot path. Only the untouched default means off.
	streamSet := false
	fs.Visit(func(f *flag.Flag) { streamSet = streamSet || f.Name == "stream" })
	if streamSet && *stream <= 0 {
		a.fail("-stream %d: streaming replay needs a positive batch count (omit -stream for a one-shot survey)", *stream)
	}
	if *window >= 0 && *stream == 0 {
		a.fail("-window needs -stream: there is no expiry watermark without batches")
	}

	opts := tripoll.SurveyOptions{}
	switch *mode {
	case "push-pull":
		opts.Mode = tripoll.PushPull
	case "push-only":
		opts.Mode = tripoll.PushOnly
	default:
		a.fail("unknown mode %q", *mode)
	}
	wopts := tripoll.WorldOptions{}
	switch *transport {
	case "channel":
		wopts.Transport = tripoll.TransportChannel
	case "tcp":
		wopts.Transport = tripoll.TransportTCP
	default:
		a.fail("unknown transport %q", *transport)
	}

	edges := a.loadEdges(*input, *genModel, *seed, *size)
	w, err := tripoll.NewWorldWith(*ranks, wopts)
	if err != nil {
		a.fail("world: %v", err)
	}
	defer w.Close()

	plan := tripoll.NewTemporalPlan()
	if *delta >= 0 {
		plan.CloseWithin(uint64(*delta))
	}
	if *from >= 0 {
		plan.From(uint64(*from))
	}
	if *until >= 0 {
		plan.Until(uint64(*until))
	}
	names := strings.Split(*survey, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	for _, name := range names {
		if name == "windowed" || name == "wclosure" {
			if plan.IsEmpty() {
				a.fail("-survey %s needs at least one of -delta, -from, -until", name)
			}
		}
	}

	if *stream > 0 {
		a.runStream(w, edges, opts, plan, names, *stream, *window)
		return 0
	}
	tmpl := tripoll.QuerySpec{Mode: *mode}
	if *delta >= 0 {
		tmpl.Delta = tripoll.OptUint64(uint64(*delta))
	}
	if *from >= 0 {
		tmpl.From = tripoll.OptUint64(uint64(*from))
	}
	if *until >= 0 {
		tmpl.Until = tripoll.OptUint64(uint64(*until))
	}
	a.runFused(w, edges, tmpl, names, *trussK, *spansArg)
	return 0
}

// parseSpans parses the -spans flag: comma-separated from:until pairs.
func (a *app) parseSpans(s string) []tripoll.TrussWindow {
	if s == "" {
		return nil
	}
	var out []tripoll.TrussWindow
	for _, part := range strings.Split(s, ",") {
		var wn tripoll.TrussWindow
		if n, err := fmt.Sscanf(strings.TrimSpace(part), "%d:%d", &wn.From, &wn.Until); n != 2 || err != nil {
			a.fail("bad -spans entry %q: want from:until", part)
		}
		out = append(out, wn)
	}
	return out
}

// runFused is the one-shot path, routed through the query engine: build
// the graph, register it, submit every requested survey as one QuerySpec
// batch — the engine coalesces the whole batch into a single fused
// traversal (and dedupes identical specs) — then print each answer.
func (a *app) runFused(w *tripoll.World, edges []tripoll.TemporalEdge, tmpl tripoll.QuerySpec, names []string, trussK int, spansArg string) {
	g := tripoll.BuildTemporal(w, edges)
	info := tripoll.Info(g)
	a.printf("graph: |V|=%s |E|=%s (directed, symmetrized) |W+|=%s dmax=%d dmax+=%d\n",
		stats.FormatCount(info.Vertices), stats.FormatCount(info.DirectedEdges),
		stats.FormatCount(info.Wedges), info.MaxDegree, info.MaxOutDegree)

	eng := tripoll.NewTemporalQueryEngine()
	defer eng.Close()
	if err := eng.Register("cli", g); err != nil {
		a.fail("engine: %v", err)
	}

	// Each requested survey becomes one spec and one printer over its
	// job's answer; nil printers (count) are covered by printResult's
	// "triangles:" line.
	var specs []tripoll.QuerySpec
	var printers []func(v any)
	for _, name := range names {
		spec := tmpl
		switch name {
		case "count", "windowed":
			spec.Analysis = "count"
			printers = append(printers, nil)
		case "closure", "wclosure":
			spec.Analysis = "closure"
			printers = append(printers, a.closurePrinter())
		case "cc":
			spec.Analysis = "cc"
			restricted := ""
			if tmpl.HasPlan() {
				// Under plan flags only matching triangles count toward t(v)
				// and |T|; say so instead of mislabeling the output as the
				// unrestricted coefficients.
				restricted = " (plan-restricted triangles)"
			}
			printers = append(printers, func(v any) {
				acc := v.(tripoll.ClusteringAccum)
				a.printf("average clustering coefficient%s: %.5f\nglobal transitivity%s: %.5f\n",
					restricted, acc.Stats.Average, restricted, acc.Stats.Global)
			})
		case "localcounts":
			spec.Analysis = "localcounts"
			printers = append(printers, a.vertexCountPrinter())
		case "edgecounts":
			spec.Analysis = "edgecounts"
			printers = append(printers, func(v any) {
				a.printf("top triangle-participating edges:\n")
				printTop(a, v.(map[tripoll.EdgeKey]uint64), func(x, y tripoll.EdgeKey) bool {
					if x.First != y.First {
						return x.First < y.First
					}
					return x.Second < y.Second
				}, func(e tripoll.EdgeKey) string {
					return fmt.Sprintf("{%d,%d}", e.First, e.Second)
				})
			})
		case "labels":
			spec.Analysis = "labels"
			printers = append(printers, a.labelPrinter())
		case "trussness":
			spec.Analysis = "trussness"
			printers = append(printers, func(v any) {
				d := v.(tripoll.TrussnessResult)
				a.printf("trussness: %s edges in triangles, max k=%d\n",
					stats.FormatCount(uint64(len(d.Edges))), d.Max)
				a.printf("highest-trussness edges:\n")
				top := make(map[tripoll.EdgeKey]uint64, len(d.Edges))
				for _, e := range d.Edges {
					top[tripoll.EdgeKey{First: e.U, Second: e.V}] = uint64(e.K)
				}
				printTop(a, top, func(x, y tripoll.EdgeKey) bool {
					if x.First != y.First {
						return x.First < y.First
					}
					return x.Second < y.Second
				}, func(e tripoll.EdgeKey) string {
					return fmt.Sprintf("{%d,%d} k", e.First, e.Second)
				})
			})
		case "maxtruss":
			spec.Analysis = "maxtruss"
			printers = append(printers, func(v any) {
				m := v.(tripoll.MaxTrussResult)
				a.printf("max trussness: %d\n", m.Max)
				for _, sz := range m.Sizes {
					a.printf("  %d-truss: %s edges\n", sz.K, stats.FormatCount(uint64(sz.Edges)))
				}
			})
		case "spantruss":
			spec.Analysis = "spantruss"
			args, err := json.Marshal(tripoll.SpanTrussQueryArgs{K: trussK, Spans: a.parseSpans(spansArg)})
			if err != nil {
				a.fail("spantruss args: %v", err)
			}
			spec.Args = args
			printers = append(printers, func(v any) {
				r := v.(tripoll.SpanTrussResult)
				a.printf("span %d-trusses:\n", r.K)
				for _, sp := range r.Spans {
					a.printf("  [%d, %d]: %s edges\n", sp.From, sp.Until, stats.FormatCount(uint64(sp.Size)))
				}
			})
		default:
			a.fail("unknown survey %q (run with -help for the list)", name)
		}
		specs = append(specs, spec)
	}
	jobs, err := eng.SubmitAll(context.Background(), specs...)
	if err != nil {
		a.fail("submit: %v", err)
	}
	values := make([]any, len(jobs))
	var res tripoll.Result
	for i, j := range jobs {
		qr, err := j.Wait(context.Background())
		if err != nil {
			a.fail("survey: %v", err)
		}
		values[i] = qr.Value
		if i == 0 {
			res = qr.Survey
		}
	}
	a.printResult(res, names)
	for i, print := range printers {
		if print != nil {
			print(values[i])
		}
	}
}

// runStream is the streaming path: time-sorted batches through OpenStream,
// a per-batch maintenance line, then the final snapshot of every analysis.
func (a *app) runStream(w *tripoll.World, edges []tripoll.TemporalEdge, opts tripoll.SurveyOptions, plan *tripoll.SurveyPlan[uint64], names []string, batches int, window int64) {
	var attached []tripoll.AttachedStreamAnalysis[tripoll.Unit, uint64]
	var printers []func()
	for _, name := range names {
		switch name {
		case "count", "windowed":
			// The stream maintains the net count itself.
		case "closure", "wclosure":
			joint := new(*tripoll.Joint2D)
			attached = append(attached, tripoll.StreamClosureTimeAnalysis[tripoll.Unit]().Bind(joint))
			print := a.closurePrinter()
			printers = append(printers, func() { print(*joint) })
		case "localcounts":
			counts := new(map[uint64]uint64)
			attached = append(attached, tripoll.StreamVertexCountAnalysis[tripoll.Unit, uint64]().Bind(counts))
			print := a.vertexCountPrinter()
			printers = append(printers, func() { print(*counts) })
		case "labels":
			dist := new(map[uint64]uint64)
			attached = append(attached, tripoll.StreamMaxEdgeLabelAnalysis[tripoll.Unit](false).Bind(dist))
			print := a.labelPrinter()
			printers = append(printers, func() { print(*dist) })
		case "cc", "edgecounts", "trussness", "maxtruss", "spantruss":
			a.fail("-survey %s has no streaming counterpart (see the survey list: streamable surveys are marked *)", name)
		default:
			a.fail("unknown survey %q (run with -help for the list)", name)
		}
	}

	// Chronological replay: sort by timestamp and cut into equal batches.
	sorted := make([]tripoll.TemporalEdge, len(edges))
	copy(sorted, edges)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	keepFirst := func(x, y uint64) uint64 {
		if x < y {
			return x
		}
		return y
	}
	seedG := tripoll.BuildTemporal(w, nil) // empty seed: everything arrives as batches
	// The plan is passed even when empty: Advance expires by its
	// Timestamps accessor.
	s, err := tripoll.OpenStream(seedG, tripoll.StreamOptions[uint64]{Survey: opts, MergeEdgeMeta: keepFirst}, plan, attached...)
	if err != nil {
		a.fail("stream: %v", err)
	}
	a.printf("streaming %s edges in %d chronological batches (%s)\n",
		stats.FormatCount(uint64(len(sorted))), batches, opts.Mode)
	cutoff := uint64(0)
	for b := 0; b < batches; b++ {
		lo, hi := b*len(sorted)/batches, (b+1)*len(sorted)/batches
		if lo >= hi {
			continue
		}
		if window >= 0 && b > 0 {
			start := sorted[lo].Time
			if c := start - uint64(window); start > uint64(window) && c > cutoff {
				cutoff = c
				ares, err := s.Advance(cutoff)
				if err != nil {
					a.fail("advance: %v", err)
				}
				a.printf("  advance to t>=%d: retired %s edges, -%s triangles%s\n",
					cutoff, stats.FormatCount(ares.DeltaEdges), stats.FormatCount(ares.Triangles),
					rebuiltTag(ares))
			}
		}
		batch := make([]tripoll.StreamEdge[uint64], 0, hi-lo)
		for _, e := range sorted[lo:hi] {
			batch = append(batch, tripoll.StreamEdge[uint64]{U: e.U, V: e.V, Meta: e.Time})
		}
		res, err := s.Ingest(batch)
		if err != nil {
			a.fail("ingest: %v", err)
		}
		msgs := res.Mutate.Messages + res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
		bytes := res.Mutate.Bytes + res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
		a.printf("  batch %d: %s edges (%s new), +%s triangles, %s in %s msgs, %s%s\n",
			b, stats.FormatCount(uint64(len(batch))), stats.FormatCount(res.DeltaEdges),
			stats.FormatCount(res.Triangles), stats.FormatBytes(bytes),
			stats.FormatCount(uint64(msgs)), stats.FormatDuration(res.Total), rebuiltTag(res))
	}
	st := s.Snapshot()
	a.printf("stream: %s live triangles after %d batches (%s inserted, %s merged, %s retired, %d rebuilds)\n",
		stats.FormatCount(st.Triangles), st.Batches,
		stats.FormatCount(st.Inserted), stats.FormatCount(st.Merged),
		stats.FormatCount(st.Retired), st.Rebuilds)
	for _, print := range printers {
		print()
	}
}

func rebuiltTag(res tripoll.Result) string {
	if res.Rebuilt {
		return " [epoch rebuild]"
	}
	return ""
}

func (a *app) closurePrinter() func(v any) {
	return func(v any) {
		joint := v.(*tripoll.Joint2D)
		a.printf("%s\n", joint.MarginalY().Render("closing time distribution", "log2(dt_close)", 48))
		a.printf("%s\n", joint.Render("joint open/close distribution", "log2(dt_open)", "log2(dt_close)"))
	}
}

func (a *app) vertexCountPrinter() func(v any) {
	return func(v any) {
		a.printf("top triangle-participating vertices:\n")
		printTop(a, v.(map[uint64]uint64), lessUint64, func(v uint64) string { return fmt.Sprintf("v%d", v) })
	}
}

func (a *app) labelPrinter() func(v any) {
	return func(v any) {
		a.printf("max edge label/timestamp distribution (most frequent):\n")
		printTop(a, v.(map[uint64]uint64), lessUint64, func(l uint64) string { return fmt.Sprintf("label %d", l) })
	}
}

// printTop renders the ten largest entries of a counter map; less orders
// keys naturally (numerically, not by rendered string) to break count ties
// deterministically.
func printTop[K comparable](a *app, counts map[K]uint64, less func(x, y K) bool, keyName func(K) string) {
	type kc struct {
		k K
		c uint64
	}
	var top []kc
	for k, c := range counts {
		top = append(top, kc{k, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].c != top[j].c {
			return top[i].c > top[j].c
		}
		return less(top[i].k, top[j].k)
	})
	for i, t := range top {
		if i >= 10 {
			break
		}
		a.printf("  %-16s %s\n", keyName(t.k), stats.FormatCount(t.c))
	}
}

func lessUint64(a, b uint64) bool { return a < b }

func (a *app) printResult(res tripoll.Result, requested []string) {
	a.printf("triangles: %s\n", stats.FormatCount(res.Triangles))
	if len(requested) > 1 {
		a.printf("fused surveys (one traversal): %s\n", strings.Join(requested, ", "))
	}
	a.printf("mode %s  total %s (dry-run %s, push %s, pull %s)\n",
		res.Mode, stats.FormatDuration(res.Total),
		stats.FormatDuration(res.DryRun.Duration),
		stats.FormatDuration(res.Push.Duration),
		stats.FormatDuration(res.Pull.Duration))
	bytes := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
	a.printf("communication: %s in %s messages; pulls granted %s (%.1f/rank)\n",
		stats.FormatBytes(bytes),
		stats.FormatCount(uint64(res.DryRun.Messages+res.Push.Messages+res.Pull.Messages)),
		stats.FormatCount(res.PullsGranted), res.AvgPullsPerRank)
	if res.Planned {
		a.printf("pushdown: %s wedge batches, %s candidates and %s pull entries pruned before enqueue\n",
			stats.FormatCount(res.PrunedBatches),
			stats.FormatCount(res.PrunedCandidates),
			stats.FormatCount(res.PrunedPullEntries))
	}
}

func (a *app) loadEdges(input, model string, seed int64, size int) []tripoll.TemporalEdge {
	if input != "" {
		edges, err := tripoll.ReadEdgeListFile(input)
		if err != nil {
			a.fail("read %s: %v", input, err)
		}
		return edges
	}
	switch model {
	case "reddit":
		p := datagen.DefaultRedditParams()
		p.Seed = seed
		p.Events = size
		p.Users = uint64(size / 8)
		return datagen.RedditLike(p)
	case "webhost":
		p := datagen.DefaultWebHostParams()
		p.Seed = seed
		p.IntraEdges = size * 2 / 5
		p.InterEdges = size * 3 / 5
		return datagen.ToTemporal(datagen.WebHostLike(p).Edges)
	case "ba":
		return datagen.ToTemporal(datagen.BarabasiAlbert(uint64(size/8), 8, seed))
	case "er":
		return datagen.ToTemporal(datagen.ErdosRenyi(uint64(size/16), size, seed))
	case "ws":
		return datagen.ToTemporal(datagen.WattsStrogatz(uint64(size/6), 3, 0.1, seed))
	case "rmat":
		p := datagen.RMATParams{Scale: 14, Seed: seed, Scramble: true}
		edges := make([]tripoll.TemporalEdge, 0, p.NumEdges())
		p.Generate(0, p.NumEdges(), func(u, v uint64) {
			edges = append(edges, tripoll.TemporalEdge{U: u, V: v})
		})
		return edges
	case "":
		a.fail("need -input or -gen (run with -help for the generator list)")
	default:
		a.fail("unknown generator %q (run with -help for the list)", model)
	}
	return nil
}
