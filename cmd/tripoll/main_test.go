package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestHelpExitsZero(t *testing.T) {
	// flag.ExitOnError used to os.Exit(0) on -help; the testable FlagSet
	// must preserve that contract.
	code, _, errOut := runCLI(t, "-help")
	if code != 0 {
		t.Fatalf("-help exit code = %d, want 0", code)
	}
	if !strings.Contains(errOut, "surveys (-survey") {
		t.Errorf("-help did not print the survey listing: %q", errOut)
	}
}

func TestRejectsContradictoryWindow(t *testing.T) {
	// -from > -until describes an empty window; the old CLI silently ran a
	// survey that could match nothing.
	code, _, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "windowed", "-from", "100", "-until", "50")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errOut, "contradictory window") {
		t.Errorf("stderr does not explain the contradiction: %q", errOut)
	}
}

func TestRejectsNegativePlanFlags(t *testing.T) {
	// Timestamps are unsigned; -1 is the only legal "off" sentinel. Other
	// negatives used to be silently treated as "off".
	for _, flagName := range []string{"-delta", "-from", "-until"} {
		code, _, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "count", flagName, "-5")
		if code != 2 {
			t.Fatalf("%s -5: exit code = %d, want 2", flagName, code)
		}
		if !strings.Contains(errOut, flagName) || !strings.Contains(errOut, "-1 to disable") {
			t.Errorf("%s -5: stderr unhelpful: %q", flagName, errOut)
		}
	}
	if code, _, _ := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "count", "-stream", "-3"); code != 2 {
		t.Fatalf("-stream -3: exit code = %d, want 2", code)
	}
	if code, _, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "count", "-window", "10"); code != 2 || !strings.Contains(errOut, "-window needs -stream") {
		t.Fatalf("-window without -stream: code=%d stderr=%q", code, errOut)
	}
}

func TestRejectsExplicitZeroStream(t *testing.T) {
	// An explicit -stream 0 used to silently fall through to the one-shot
	// path; asking for streaming replay with no batches is an error.
	code, _, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "count", "-stream", "0")
	if code != 2 {
		t.Fatalf("-stream 0: exit code = %d, want 2 (stderr %q)", code, errOut)
	}
	if !strings.Contains(errOut, "positive batch count") {
		t.Errorf("-stream 0: stderr unhelpful: %q", errOut)
	}
	// The untouched default still means "off" and runs one-shot.
	if code, out, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "count"); code != 0 || !strings.Contains(out, "triangles:") {
		t.Fatalf("default (no -stream): code=%d out=%q stderr=%q", code, out, errOut)
	}
}

func TestFusedPlanFlagsThroughEngine(t *testing.T) {
	// Plan flags must restrict every listed survey on the engine path.
	code, out, errOut := runCLI(t,
		"-gen", "reddit", "-size", "3000", "-ranks", "2",
		"-survey", "windowed,wclosure", "-delta", "50000")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut)
	}
	for _, want := range []string{"triangles:", "pushdown:", "closing time distribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestFusedSurveyRuns(t *testing.T) {
	code, out, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-ranks", "2", "-survey", "count,localcounts")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut)
	}
	for _, want := range []string{"triangles:", "fused surveys (one traversal): count, localcounts", "top triangle-participating vertices:"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

func TestStreamModeRuns(t *testing.T) {
	code, out, errOut := runCLI(t,
		"-gen", "reddit", "-size", "3000", "-ranks", "2",
		"-survey", "count,closure", "-stream", "3", "-window", "100000")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr = %q", code, errOut)
	}
	for _, want := range []string{"streaming", "batch 0:", "batch 2:", "live triangles after 3 batches", "closing time distribution"} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "epoch rebuild") {
		t.Errorf("chronological replay should not rebuild:\n%s", out)
	}
}

func TestStreamModeRejectsNonStreamableSurvey(t *testing.T) {
	code, _, errOut := runCLI(t, "-gen", "ba", "-size", "2000", "-survey", "cc", "-stream", "2")
	if code != 2 || !strings.Contains(errOut, "no streaming counterpart") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}
