// tripolld serves TriPoll triangle queries over HTTP: it loads (or
// generates) a temporal graph, registers it with a query Engine, and
// exposes submit/poll/result endpoints speaking serializable QuerySpecs.
// Concurrent requests against the same graph coalesce into shared fused
// traversals and repeated questions are answered from the epoch-keyed
// result cache (DESIGN.md §10).
//
// Usage:
//
//	tripolld -gen reddit -size 200000 -addr :8372
//	tripolld -input graph.txt -graph web
//	tripolld -workers 2 -worker-cmd ./tripoll-worker -ranks 6 -gen reddit
//
// With -workers N the world spans N worker processes plus this one
// (DESIGN.md §13): tripolld runs the rendezvous, hosts the first rank
// span, and fans every fused traversal out to the workers. -worker-cmd
// auto-launches them; without it, start tripoll-worker processes against
// the logged rendezvous address. -wal composes with -workers: mutations
// are WAL-logged here, then broadcast for a collective apply on every
// process, two-phase committed (DESIGN.md §14). -replicas N builds N
// read-only copies of the graph on disjoint rank spans and round-robins
// queries across them.
//
// Endpoints:
//
//	GET  /healthz                 liveness
//	GET  /metrics                 engine/WAL/HTTP counters as one JSON doc
//	GET  /v1/graphs               registered graphs with sizes and epochs
//	GET  /v1/analyses             analyses QuerySpecs may name
//	POST /v1/query                submit a QuerySpec; ?wait=1 blocks for the
//	                              result, otherwise returns a job id to poll
//	GET  /v1/jobs/{id}            job status (+ result once done)
//	GET  /v1/jobs/{id}/result     just the result (202 while pending)
//	POST /v1/ingest               (-wal) ingest timestamped edges into the stream
//	POST /v1/advance              (-wal) advance the stream's expiry watermark
//
// With -wal DIR the graph is served as a durable stream: every ingest and
// advance is written ahead to a crash-recoverable log under DIR, and a
// restart with the same flags resumes at the acknowledged epoch. -rate
// and -max-pending bound hostile traffic with 429 responses. See
// README.md "Running tripolld in production".
//
// Example (count triangles closing within an hour, waiting inline):
//
//	curl -s localhost:8372/v1/query?wait=1 \
//	     -d '{"analysis":"count","delta":3600}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tripoll"
	"tripoll/datagen"
	"tripoll/internal/dist"
)

func main() {
	var (
		addr      = flag.String("addr", ":8372", "listen address")
		input     = flag.String("input", "", "edge list file (u v [timestamp])")
		genModel  = flag.String("gen", "", "generate instead of reading: reddit|webhost|ba|er|ws")
		graphName = flag.String("graph", "default", "name to register the graph under")
		ranks     = flag.Int("ranks", 4, "simulated rank count")
		transport = flag.String("transport", "channel", "transport: channel|tcp")
		seed      = flag.Int64("seed", 42, "generator seed")
		size      = flag.Int("size", 100_000, "generated edge budget / events")

		workers    = flag.Int("workers", 0, "span the world across this many worker processes (multi-process mode; forces tcp)")
		rendezvous = flag.String("rendezvous", "127.0.0.1:0", "control-plane listen address for -workers rendezvous")
		workerCmd  = flag.String("worker-cmd", "", "auto-launch -workers copies of this binary with -join (default: wait for external tripoll-worker processes)")
		replicas   = flag.Int("replicas", 1, "build this many read-only copies of the graph, each confined to its own rank span; queries round-robin across them (incompatible with -wal)")

		walDir     = flag.String("wal", "", "durability directory: serve the graph as a WAL-backed stream (enables /v1/ingest, /v1/advance)")
		trussIx    = flag.Bool("truss-index", false, "maintain a triangle-span index on the stream and answer truss queries (trussness/maxtruss/spantruss) from it without traversing (requires -wal)")
		walSync    = flag.String("wal-sync", "always", "WAL fsync policy: always|never")
		walSegment = flag.Int64("wal-segment", 0, "WAL segment rotation size in bytes (0 = default)")
		checkpoint = flag.Uint64("checkpoint", 0, "snapshot+truncate the WAL every N mutations (0 = default)")
		rate       = flag.Float64("rate", 0, "per-client request rate limit in requests/second (0 = unlimited)")
		burst      = flag.Float64("burst", 10, "per-client burst allowance for -rate")
		maxPending = flag.Int("max-pending", 1024, "shed work with 429 once this many jobs are queued (0 = unbounded)")
		retain     = flag.Int("retain", 1024, "finished jobs retained for polling before GC")
	)
	flag.Parse()

	edges, err := loadEdges(*input, *genModel, *seed, *size)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	wopts := tripoll.WorldOptions{}
	switch *transport {
	case "channel":
		wopts.Transport = tripoll.TransportChannel
	case "tcp":
		wopts.Transport = tripoll.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}
	var (
		w       *tripoll.World
		cluster *dist.Cluster
	)
	if *replicas < 1 {
		*replicas = 1
	}
	if *replicas > 1 {
		if *walDir != "" {
			fmt.Fprintln(os.Stderr, "-replicas with -wal: replicated graphs are read-only (mutations would have to reach every copy)")
			os.Exit(2)
		}
		if *ranks%*replicas != 0 {
			fmt.Fprintf(os.Stderr, "-ranks %d is not divisible by -replicas %d (each copy owns an equal rank span)\n", *ranks, *replicas)
			os.Exit(2)
		}
	}
	if *workers > 0 {
		procs := *workers + 1
		if *ranks%procs != 0 {
			fmt.Fprintf(os.Stderr, "-ranks %d is not divisible by %d processes (%d workers + driver)\n", *ranks, procs, *workers)
			os.Exit(2)
		}
		// Process-spanning worlds only exist over the TCP transport; the
		// rendezvous forces it regardless of -transport.
		wopts.Transport = tripoll.TransportTCP
		*transport = "tcp"
		co, err := dist.Listen(dist.Config{
			Procs:        procs,
			RanksPerProc: *ranks / procs,
			ControlAddr:  *rendezvous,
			Opts:         wopts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rendezvous: %v\n", err)
			os.Exit(2)
		}
		log.Printf("rendezvous on %s: waiting for %d workers (%d ranks each)", co.Addr(), *workers, *ranks/procs)
		var launched []*exec.Cmd
		if *workerCmd != "" {
			if launched, err = dist.Launch(*workerCmd, []string{"-join", co.Addr()}, *workers); err != nil {
				co.Close()
				fmt.Fprintf(os.Stderr, "launch workers: %v\n", err)
				os.Exit(2)
			}
		}
		if cluster, err = co.Accept(); err != nil {
			dist.KillAll(launched)
			fmt.Fprintf(os.Stderr, "rendezvous: %v\n", err)
			os.Exit(2)
		}
		w = cluster.World()
		defer cluster.Close()
		// SIGTERM/SIGINT: deregister the workers (they drain and exit 0)
		// before this process goes away, so auto-launched fleets don't leak.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
		go func() {
			s := <-sig
			log.Printf("%v: closing %d-process world", s, procs)
			cluster.Close()
			dist.StopAll(launched, 5*time.Second)
			os.Exit(0)
		}()
		log.Printf("world spans %d processes: %d workers x %d ranks + driver", procs, *workers, *ranks/procs)
	} else {
		w, err = tripoll.NewWorldWith(*ranks, wopts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "world: %v\n", err)
			os.Exit(2)
		}
		defer w.Close()
	}

	// Build the graph — one collective build per replica (plain graphs are
	// one replica). With a cluster, each build job is broadcast before this
	// process's ranks enter their side: both sides must be inside
	// Builder.Build for the shuffle to complete.
	var copies []*tripoll.Graph[tripoll.Unit, uint64]
	span := *ranks / *replicas
	for i := 0; i < *replicas; i++ {
		if cluster != nil {
			if err := cluster.Build(*graphName, dist.BuildSpec{Policy: "temporal", Replica: i, Replicas: *replicas}); err != nil {
				fmt.Fprintf(os.Stderr, "broadcast build: %v\n", err)
				os.Exit(2)
			}
		}
		if *replicas == 1 {
			copies = append(copies, tripoll.BuildTemporal(w, edges))
		} else {
			copies = append(copies, buildTemporalReplica(w, edges, i*span, span))
		}
	}
	g := copies[0]
	info := tripoll.Info(g)
	log.Printf("graph %q: |V|=%d |E|=%d (directed) |W+|=%d", *graphName, info.Vertices, info.DirectedEdges, info.Wedges)

	eopts := tripoll.QueryEngineOptions[uint64]{
		Timestamps: func(t uint64) uint64 { return t },
		MaxPending: *maxPending,
	}
	if cluster != nil {
		// A typed-nil *Cluster in the interface would read as "fanout set";
		// only a real cluster gets wired in. The same cluster is the
		// mutation seam: with -wal, every logged mutation broadcasts to the
		// workers for a collective apply (DESIGN.md §14).
		eopts.Fanout = cluster
		eopts.Mutator = cluster
	}
	eng := tripoll.NewQueryEngine(tripoll.TemporalQueryRegistry(), eopts)
	defer eng.Close()
	var ix *tripoll.TrussIndex[tripoll.Unit]
	if *trussIx && *walDir == "" {
		fmt.Fprintln(os.Stderr, "-truss-index requires -wal: the index is maintained by the stream's mutation path")
		os.Exit(2)
	}
	if *walDir != "" {
		sync := tripoll.WALSyncAlways
		switch *walSync {
		case "always":
		case "never":
			sync = tripoll.WALSyncNever
		default:
			fmt.Fprintf(os.Stderr, "unknown -wal-sync %q\n", *walSync)
			os.Exit(2)
		}
		// The policy name tells tripoll-worker's OpenStream hook whether to
		// attach its side of the index sink — the sink's commit collective
		// must run on every process of the world, in lockstep.
		policy := "temporal"
		var sinks []tripoll.StreamSink[tripoll.Unit, uint64]
		if *trussIx {
			policy = "temporal+truss"
			ix = tripoll.NewTrussIndex[tripoll.Unit](minTimestamp)
			sinks = []tripoll.StreamSink[tripoll.Unit, uint64]{ix}
		}
		_, epoch, err := eng.OpenDurableStreamSinks(*graphName, g,
			tripoll.StreamOptions[uint64]{MergeEdgeMeta: minTimestamp},
			tripoll.NewTemporalPlan(),
			tripoll.DurableStreamOptions{Dir: *walDir, Sync: sync, SegmentBytes: *walSegment, CheckpointEvery: *checkpoint, Policy: policy},
			sinks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "open durable stream: %v\n", err)
			os.Exit(2)
		}
		if ix != nil {
			if err := eng.AttachIndex(*graphName, ix); err != nil {
				fmt.Fprintf(os.Stderr, "attach truss index: %v\n", err)
				os.Exit(2)
			}
			st := ix.Stats()
			log.Printf("truss index on %q: %d edges, %d span buckets (epoch %d)", *graphName, st.Edges, st.Buckets, st.Epoch)
		}
		log.Printf("durable stream %q: wal=%s sync=%s epoch=%d", *graphName, *walDir, *walSync, epoch)
	} else if *replicas > 1 {
		if err := eng.RegisterReplicated(*graphName, copies); err != nil {
			fmt.Fprintf(os.Stderr, "register: %v\n", err)
			os.Exit(2)
		}
		log.Printf("graph %q: %d replicas x %d-rank spans, queries round-robin", *graphName, *replicas, span)
	} else if err := eng.Register(*graphName, g); err != nil {
		fmt.Fprintf(os.Stderr, "register: %v\n", err)
		os.Exit(2)
	}
	srv := newServer(eng, map[string]tripoll.GraphInfo{*graphName: info}, serverConfig{
		world:   w,
		cluster: cluster,
		limiter: newLimiter(*rate, *burst),
		retain:  *retain,
		trussIx: ix,
	})
	log.Printf("tripolld listening on %s (%d ranks, %s transport)", *addr, *ranks, *transport)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		log.Fatal(err)
	}
}

// minTimestamp is the stream's multigraph reduction: keep the earliest
// timestamp of a repeated edge (the §5.2 Reddit reduction).
func minTimestamp(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// buildTemporalReplica is BuildTemporal confined to one replica's rank
// span: SpanPartition places every vertex on ranks [first, first+count),
// so each copy's traversals exchange messages only among its own ranks.
// tripoll-worker's Build hook runs the same construction with no edges.
func buildTemporalReplica(w *tripoll.World, edges []tripoll.TemporalEdge, first, count int) *tripoll.Graph[tripoll.Unit, uint64] {
	b := tripoll.NewGraphBuilder(w, tripoll.UnitCodec(), tripoll.Uint64Codec(), tripoll.BuilderOptions[uint64]{
		Partitioner:   tripoll.SpanPartition{First: first, Count: count},
		MergeEdgeMeta: minTimestamp,
	})
	var g *tripoll.Graph[tripoll.Unit, uint64]
	lf, lc := w.LocalSpan()
	w.Parallel(func(r *tripoll.Rank) {
		for i := r.ID() - lf; i < len(edges); i += lc {
			b.AddEdge(r, edges[i].U, edges[i].V, edges[i].Time)
		}
		gg := b.Build(r)
		if r.ID() == w.LeaderID() {
			g = gg
		}
	})
	return g
}

func loadEdges(input, model string, seed int64, size int) ([]tripoll.TemporalEdge, error) {
	if input != "" {
		edges, err := tripoll.ReadEdgeListFile(input)
		if err != nil {
			return nil, fmt.Errorf("read %s: %w", input, err)
		}
		return edges, nil
	}
	switch model {
	case "reddit":
		p := datagen.DefaultRedditParams()
		p.Seed = seed
		p.Events = size
		p.Users = uint64(size / 8)
		return datagen.RedditLike(p), nil
	case "webhost":
		p := datagen.DefaultWebHostParams()
		p.Seed = seed
		p.IntraEdges = size * 2 / 5
		p.InterEdges = size * 3 / 5
		return datagen.ToTemporal(datagen.WebHostLike(p).Edges), nil
	case "ba":
		return datagen.ToTemporal(datagen.BarabasiAlbert(uint64(size/8), 8, seed)), nil
	case "er":
		return datagen.ToTemporal(datagen.ErdosRenyi(uint64(size/16), size, seed)), nil
	case "ws":
		return datagen.ToTemporal(datagen.WattsStrogatz(uint64(size/6), 3, 0.1, seed)), nil
	case "":
		return nil, fmt.Errorf("need -input or -gen")
	default:
		return nil, fmt.Errorf("unknown generator %q", model)
	}
}

// defaultRetainedJobs bounds the poll window: once exceeded, the oldest
// *finished* jobs are forgotten (a 404 on a long-finished job beats
// unbounded growth — map-valued results can be large, and a static
// graph's engine cache additionally retains distinct answers).
const defaultRetainedJobs = 1024

// serverConfig is the production knobs of a server; the zero value means
// no rate limiting, no world metrics and the default retention.
type serverConfig struct {
	world   *tripoll.World // for /metrics transport counters; may be nil
	cluster *dist.Cluster  // for /metrics mutation-path counters; nil single-process
	limiter *limiter       // per-client rate limiter; nil = unlimited
	retain  int            // finished-job retention cap; 0 = defaultRetainedJobs
	// trussIx, when -truss-index is on, surfaces the maintained index's
	// counters under /metrics "truss_index".
	trussIx *tripoll.TrussIndex[tripoll.Unit]
}

// server is the HTTP front end over one Engine. Job handles are retained
// for polling until the retention cap pushes finished ones out.
type server struct {
	eng    *tripoll.Engine[tripoll.Unit, uint64]
	info   map[string]tripoll.GraphInfo
	mux    *http.ServeMux
	world     *tripoll.World
	cluster   *dist.Cluster
	lim       *limiter
	retainMax int
	trussIx   *tripoll.TrussIndex[tripoll.Unit]

	requests    atomic.Uint64 // all requests served
	rateLimited atomic.Uint64 // 429s from the per-client limiter
	overloaded  atomic.Uint64 // 429s from engine admission (ErrEngineOverloaded)

	mu    sync.Mutex
	jobs  map[uint64]*tripoll.QueryJob
	order []uint64 // insertion order, for eviction
}

// retain registers a job for polling, evicting the oldest finished jobs
// beyond the cap (in-flight jobs are never evicted).
func (s *server) retain(j *tripoll.QueryJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID()] = j
	s.order = append(s.order, j.ID())
	for i := 0; len(s.jobs) > s.retainMax && i < len(s.order); i++ {
		old := s.jobs[s.order[i]]
		if old == nil {
			s.order = append(s.order[:i], s.order[i+1:]...)
			i--
			continue
		}
		if st := old.Status(); st == tripoll.QueryJobDone || st == tripoll.QueryJobFailed {
			delete(s.jobs, s.order[i])
			s.order = append(s.order[:i], s.order[i+1:]...)
			i--
		}
	}
}

func newServer(eng *tripoll.Engine[tripoll.Unit, uint64], info map[string]tripoll.GraphInfo, cfg serverConfig) *server {
	if cfg.retain <= 0 {
		cfg.retain = defaultRetainedJobs
	}
	s := &server{
		eng: eng, info: info,
		world: cfg.world, cluster: cfg.cluster, lim: cfg.limiter, retainMax: cfg.retain,
		trussIx: cfg.trussIx,
		jobs:    make(map[uint64]*tripoll.QueryJob), mux: http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	s.mux.HandleFunc("GET /v1/analyses", s.handleAnalyses)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	return s
}

// ServeHTTP counts the request and applies the per-client rate limit to
// the /v1 API (liveness and metrics stay reachable from a throttled
// client — an operator debugging an overload needs exactly those two).
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if s.lim != nil && strings.HasPrefix(r.URL.Path, "/v1/") {
		if ok, retryAfter := s.lim.allow(clientKey(r)); !ok {
			s.rateLimited.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			writeError(w, http.StatusTooManyRequests, "rate limit exceeded; retry after %ds", retryAfter)
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleGraphs(w http.ResponseWriter, _ *http.Request) {
	type graphStatus struct {
		Name  string `json:"name"`
		Epoch uint64 `json:"epoch"`
		tripoll.GraphInfo
	}
	var out []graphStatus
	for _, name := range s.eng.Graphs() {
		ep, _ := s.eng.Epoch(name)
		out = append(out, graphStatus{Name: name, Epoch: ep, GraphInfo: s.info[name]})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleAnalyses(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.AnalysisInfos())
}

// jobStatus is the wire form of a job's state; Result is present once the
// job is done, Error once it failed.
type jobStatus struct {
	Job    uint64               `json:"job"`
	Status string               `json:"status"`
	Result *tripoll.QueryResult `json:"result,omitempty"`
	Error  string               `json:"error,omitempty"`
}

func statusOf(j *tripoll.QueryJob) jobStatus {
	st := jobStatus{Job: j.ID(), Status: j.Status().String()}
	res, err := j.Result()
	switch {
	case err == nil:
		res.Value = tripoll.QueryJSONValue(res.Value)
		st.Result = &res
	case err != tripoll.ErrJobNotDone:
		st.Error = err.Error()
	}
	return st
}

// decodeBody decodes a JSON request body into v with a size cap,
// answering 400 for malformed JSON and 413 for an oversized body. Returns
// false when a response was already written.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body over %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "decode body: %v", err)
		return false
	}
	return true
}

// shed answers an ErrEngineOverloaded admission failure with 429 and a
// Retry-After; returns false for other errors.
func (s *server) shed(w http.ResponseWriter, err error) bool {
	if !errors.Is(err, tripoll.ErrEngineOverloaded) {
		return false
	}
	s.overloaded.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, "%v", err)
	return true
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var spec tripoll.QuerySpec
	if !decodeBody(w, r, 1<<20, &spec) {
		return
	}
	// Admission uses the background context: the job must survive this
	// request returning (async polling is the point). Only an inline wait
	// is bounded by the request context.
	j, err := s.eng.Submit(context.Background(), spec)
	if err != nil {
		if !s.shed(w, err) {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.retain(j)

	if r.URL.Query().Get("wait") != "" {
		if _, err := j.Wait(r.Context()); err != nil && err == r.Context().Err() {
			writeError(w, http.StatusRequestTimeout, "wait: %v", err)
			return
		}
		st := statusOf(j)
		if st.Error != "" {
			// Dispatch-time failures here are bad requests the submit-side
			// validation cannot see (e.g. malformed analysis Args, which
			// only the factory parses); don't report them as success.
			writeJSON(w, http.StatusBadRequest, st)
			return
		}
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusAccepted, jobStatus{Job: j.ID(), Status: j.Status().String()})
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *tripoll.QueryJob {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return nil
	}
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job %d", id)
		return nil
	}
	return j
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, statusOf(j))
	}
}

func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	res, err := j.Result()
	switch {
	case err == nil:
		res.Value = tripoll.QueryJSONValue(res.Value)
		writeJSON(w, http.StatusOK, res)
	case err == tripoll.ErrJobNotDone:
		writeJSON(w, http.StatusAccepted, statusOf(j))
	default:
		// Job failures are almost always spec-side (args the factory
		// rejected, a graph unregistered between submit and dispatch) —
		// a client error, not a server fault.
		writeJSON(w, http.StatusBadRequest, statusOf(j))
	}
}

// resolveGraph defaults an absent graph name when exactly one is
// registered, mirroring QuerySpec resolution.
func (s *server) resolveGraph(name string) string {
	if name != "" {
		return name
	}
	if gs := s.eng.Graphs(); len(gs) == 1 {
		return gs[0]
	}
	return name
}

// mutationReply is the wire form of an applied Ingest/Advance.
type mutationReply struct {
	Graph  string         `json:"graph"`
	Epoch  uint64         `json:"epoch"`
	Survey tripoll.Result `json:"survey"`
}

// ingestRequest is POST /v1/ingest's body: timestamped edges for a
// stream-backed graph.
type ingestRequest struct {
	Graph string `json:"graph,omitempty"`
	Edges []struct {
		U uint64 `json:"u"`
		V uint64 `json:"v"`
		T uint64 `json:"t"`
	} `json:"edges"`
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !decodeBody(w, r, 8<<20, &req) {
		return
	}
	if len(req.Edges) == 0 {
		writeError(w, http.StatusBadRequest, "empty edge batch")
		return
	}
	batch := make([]tripoll.StreamEdge[uint64], len(req.Edges))
	for i, e := range req.Edges {
		batch[i] = tripoll.StreamEdge[uint64]{U: e.U, V: e.V, Meta: e.T}
	}
	name := s.resolveGraph(req.Graph)
	res, err := s.eng.Ingest(r.Context(), name, batch)
	if err != nil {
		if !s.shed(w, err) {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	epoch, _ := s.eng.Epoch(name)
	writeJSON(w, http.StatusOK, mutationReply{Graph: name, Epoch: epoch, Survey: res})
}

// advanceRequest is POST /v1/advance's body: the new expiry watermark.
type advanceRequest struct {
	Graph  string `json:"graph,omitempty"`
	Cutoff uint64 `json:"cutoff"`
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req advanceRequest
	if !decodeBody(w, r, 1<<16, &req) {
		return
	}
	name := s.resolveGraph(req.Graph)
	res, err := s.eng.Advance(r.Context(), name, req.Cutoff)
	if err != nil {
		if !s.shed(w, err) {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	epoch, _ := s.eng.Epoch(name)
	writeJSON(w, http.StatusOK, mutationReply{Graph: name, Epoch: epoch, Survey: res})
}
