package main

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// limiter is a per-client token-bucket rate limiter keyed by the client's
// host (RemoteAddr without the port, so one misbehaving client cannot
// starve the rest by cycling source ports). Buckets refill continuously at
// rate tokens/second up to burst; a request costs one token. Hand-rolled
// because the admission decision must also compute a Retry-After.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the client table; past it the stalest buckets (the
// ones longest past a full refill, i.e. idle clients) are dropped.
// Dropping a bucket forgets at most `burst` tokens of debt, which only
// ever errs in the client's favor.
const maxBuckets = 4096

func newLimiter(rate, burst float64) *limiter {
	if rate <= 0 {
		return nil // disabled
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: burst, buckets: make(map[string]*bucket), now: time.Now}
}

// clientKey extracts the bucket key from a request.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// allow spends one token from key's bucket. When the bucket is dry it
// returns false and the seconds until a token will be available — the
// Retry-After value, always ≥ 1.
func (l *limiter) allow(key string) (ok bool, retryAfter int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.evict(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / l.rate
	return false, int(math.Ceil(math.Max(wait, 1)))
}

// evict drops the quarter of buckets that have gone longest without
// activity. Called with l.mu held.
func (l *limiter) evict(now time.Time) {
	cutoff := now.Add(-time.Duration(l.burst/l.rate*float64(time.Second))) // idle past a full refill
	for k, b := range l.buckets {
		if b.last.Before(cutoff) {
			delete(l.buckets, k)
		}
	}
	if len(l.buckets) < maxBuckets {
		return
	}
	// Everyone is active; shed an arbitrary quarter rather than grow
	// without bound (the limiter is a protection, not an accounting
	// ledger).
	drop := maxBuckets / 4
	for k := range l.buckets {
		delete(l.buckets, k)
		if drop--; drop <= 0 {
			return
		}
	}
}
