package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tripoll"
	"tripoll/datagen"
)

// newTestServer builds a server over a small generated temporal graph and
// returns it with the underlying graph for baseline comparisons.
func newTestServer(t *testing.T) (*httptest.Server, *tripoll.Graph[tripoll.Unit, uint64]) {
	t.Helper()
	p := datagen.DefaultRedditParams()
	p.Events = 4000
	p.Users = 500
	edges := datagen.RedditLike(p)
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, edges)
	eng := tripoll.NewTemporalQueryEngine()
	if err := eng.Register("default", g); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}, serverConfig{world: w}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		w.Close()
	})
	return srv, g
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthGraphsAnalyses(t *testing.T) {
	srv, _ := newTestServer(t)
	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Errorf("healthz: code=%d body=%v", code, health)
	}
	var graphs []map[string]any
	if code := getJSON(t, srv.URL+"/v1/graphs", &graphs); code != 200 || len(graphs) != 1 {
		t.Fatalf("graphs: code=%d body=%v", code, graphs)
	}
	if graphs[0]["name"] != "default" || graphs[0]["Vertices"].(float64) <= 0 {
		t.Errorf("graphs entry: %v", graphs[0])
	}
	var analyses []tripoll.AnalysisInfo
	if code := getJSON(t, srv.URL+"/v1/analyses", &analyses); code != 200 {
		t.Fatalf("analyses: code=%d", code)
	}
	byName := map[string]tripoll.AnalysisInfo{}
	for _, a := range analyses {
		byName[a.Name] = a
	}
	for _, want := range []string{"count", "closure", "cc", "trussness", "maxtruss", "spantruss"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("analyses missing %q: %v", want, analyses)
		}
	}
}

// TestAnalysesSchema is the /v1/analyses golden test: every analysis ships
// a description, a result shape, and its argument schema, so clients can
// discover what a QuerySpec may carry without reading the source.
func TestAnalysesSchema(t *testing.T) {
	srv, _ := newTestServer(t)
	var analyses []tripoll.AnalysisInfo
	if code := getJSON(t, srv.URL+"/v1/analyses", &analyses); code != 200 {
		t.Fatalf("analyses: code=%d", code)
	}
	byName := map[string]tripoll.AnalysisInfo{}
	for i, a := range analyses {
		if a.Name == "" || a.Doc == "" || a.Result == "" {
			t.Errorf("analysis %d incomplete: %+v", i, a)
		}
		if i > 0 && analyses[i-1].Name >= a.Name {
			t.Errorf("analyses not sorted: %q then %q", analyses[i-1].Name, a.Name)
		}
		byName[a.Name] = a
	}
	args := func(name string) map[string]tripoll.AnalysisArgSpec {
		t.Helper()
		a, ok := byName[name]
		if !ok {
			t.Fatalf("analysis %q not listed", name)
		}
		out := map[string]tripoll.AnalysisArgSpec{}
		for _, sp := range a.Args {
			if sp.Name == "" || sp.Type == "" || sp.Doc == "" {
				t.Errorf("%s: incomplete arg spec: %+v", name, sp)
			}
			out[sp.Name] = sp
		}
		return out
	}
	// Argless analyses advertise no schema.
	for _, name := range []string{"count", "closure", "cc", "trussness", "maxtruss"} {
		if a := args(name); len(a) != 0 {
			t.Errorf("%s must take no args: %v", name, a)
		}
	}
	// sweep requires its deltas; labels' distinct and spantruss's k/spans
	// are optional.
	sweep := args("sweep")
	if sp, ok := sweep["deltas"]; !ok || !sp.Required || sp.Type != "[]uint" {
		t.Errorf("sweep deltas spec: %+v", sweep)
	}
	labels := args("labels")
	if sp, ok := labels["distinct"]; !ok || sp.Required || sp.Type != "bool" {
		t.Errorf("labels distinct spec: %+v", labels)
	}
	span := args("spantruss")
	if sp, ok := span["k"]; !ok || sp.Required || sp.Type != "uint" {
		t.Errorf("spantruss k spec: %+v", span)
	}
	if sp, ok := span["spans"]; !ok || sp.Required {
		t.Errorf("spantruss spans spec: %+v", span)
	}
}

func TestSubmitWaitCountMatchesRun(t *testing.T) {
	srv, g := newTestServer(t)
	want, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st)
	if code != 200 || st.Status != "done" || st.Result == nil {
		t.Fatalf("wait submit: code=%d status=%+v", code, st)
	}
	got, ok := st.Result.Value.(float64) // JSON numbers decode as float64
	if !ok || uint64(got) != want.Triangles {
		t.Errorf("count = %v, want %d", st.Result.Value, want.Triangles)
	}
	if st.Result.Analysis != "count" || st.Result.Graph != "default" {
		t.Errorf("result provenance: %+v", st.Result)
	}

	// The same question again is a cache hit.
	var st2 jobStatus
	postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st2)
	if st2.Result == nil || !st2.Result.Cached {
		t.Errorf("repeat query not cached: %+v", st2.Result)
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	srv, _ := newTestServer(t)
	var st jobStatus
	code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"closure","delta":100000}`, &st)
	if code != http.StatusAccepted || st.Job == 0 {
		t.Fatalf("submit: code=%d %+v", code, st)
	}
	url := srv.URL + "/v1/jobs/" + jsonNum(st.Job)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var poll jobStatus
		if code := getJSON(t, url, &poll); code != 200 {
			t.Fatalf("poll: code=%d", code)
		}
		if poll.Status == "done" {
			if poll.Result == nil || poll.Result.Analysis != "closure" {
				t.Fatalf("done without result: %+v", poll)
			}
			break
		}
		if poll.Status == "failed" {
			t.Fatalf("job failed: %+v", poll)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck %q", poll.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The dedicated result endpoint serves the bare result.
	var res tripoll.QueryResult
	if code := getJSON(t, url+"/result", &res); code != 200 || res.Analysis != "closure" {
		t.Errorf("result endpoint: code=%d %+v", code, res)
	}
	if _, ok := res.Value.([]any); !ok {
		t.Errorf("closure value did not ship as a cell list: %T", res.Value)
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"nope"}`, &e); code != 400 || e["error"] == "" {
		t.Errorf("unknown analysis: code=%d %v", code, e)
	}
	if code := postJSON(t, srv.URL+"/v1/query", `{analysis}`, &e); code != 400 {
		t.Errorf("bad json: code=%d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"count","bogus":1}`, &e); code != 400 {
		t.Errorf("unknown field: code=%d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"count","graph":"missing"}`, &e); code != 400 {
		t.Errorf("unknown graph: code=%d", code)
	}
	var st jobStatus
	if code := getJSON(t, srv.URL+"/v1/jobs/99999", &st); code != 404 {
		t.Errorf("unknown job: code=%d", code)
	}
	// Args only the factory can validate fail at dispatch; a waited
	// submit must still surface that as a client error, not a 200.
	var failed jobStatus
	if code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"sweep"}`, &failed); code != 400 || failed.Status != "failed" || failed.Error == "" {
		t.Errorf("sweep without deltas: code=%d status=%+v", code, failed)
	}
}

func jsonNum(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// postRaw is postJSON when the test needs the response itself (headers,
// status of bodies that may not decode).
func postRaw(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestRateLimit429WithRetryAfter(t *testing.T) {
	p := datagen.DefaultRedditParams()
	p.Events = 1000
	p.Users = 200
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, datagen.RedditLike(p))
	eng := tripoll.NewTemporalQueryEngine()
	if err := eng.Register("default", g); err != nil {
		t.Fatal(err)
	}
	lim := newLimiter(1, 2) // 1 rps, burst 2
	clock := time.Unix(1000, 0)
	lim.now = func() time.Time { return clock }
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}, serverConfig{limiter: lim}))
	t.Cleanup(func() { srv.Close(); eng.Close(); w.Close() })

	for i := 0; i < 2; i++ {
		var into []tripoll.AnalysisInfo
		if code := getJSON(t, srv.URL+"/v1/analyses", &into); code != 200 {
			t.Fatalf("request %d within burst: code=%d", i, code)
		}
	}
	resp := postRaw(t, srv.URL+"/v1/query", `{"analysis":"count"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over burst: code=%d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	// The limiter never throttles liveness or metrics.
	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 {
		t.Errorf("healthz throttled: code=%d", code)
	}
	var m metricsPayload
	if code := getJSON(t, srv.URL+"/metrics", &m); code != 200 {
		t.Errorf("metrics throttled: code=%d", code)
	}
	if m.HTTP.RateLimited == 0 {
		t.Errorf("rate_limited counter = 0 after a 429")
	}
	// Honoring Retry-After restores service: advance the clock by it.
	clock = clock.Add(time.Duration(ra) * time.Second)
	var into []tripoll.AnalysisInfo
	if code := getJSON(t, srv.URL+"/v1/analyses", &into); code != 200 {
		t.Errorf("after Retry-After: code=%d, want 200", code)
	}
}

// TestMetricsSchema is the /metrics golden test: every documented field
// must be present with the documented JSON type.
func TestMetricsSchema(t *testing.T) {
	srv, _ := newTestServer(t)
	// Put traffic through first so counters are live: one query twice (the
	// second is a cache hit).
	var st jobStatus
	postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st)
	postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st)

	var raw map[string]json.RawMessage
	if code := getJSON(t, srv.URL+"/metrics", &raw); code != 200 {
		t.Fatalf("metrics: code=%d", code)
	}
	for _, key := range []string{"engine", "queue_depth", "cache_hit_rate", "coalesce_ratio", "graphs", "http", "world"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, raw)
		}
	}
	var eng map[string]float64
	if err := json.Unmarshal(raw["engine"], &eng); err != nil {
		t.Fatalf("engine section: %v", err)
	}
	for _, key := range []string{"submitted", "completed", "failed", "shed", "cache_hits", "index_served", "deduped", "coalesced", "traversals", "mutations", "traversal_messages", "traversal_bytes"} {
		if _, ok := eng[key]; !ok {
			t.Errorf("engine section missing %q: %v", key, eng)
		}
	}
	if eng["submitted"] < 2 || eng["cache_hits"] < 1 {
		t.Errorf("counters not live: %v", eng)
	}
	var graphs []map[string]any
	if err := json.Unmarshal(raw["graphs"], &graphs); err != nil || len(graphs) != 1 {
		t.Fatalf("graphs section: %v (%v)", graphs, err)
	}
	if graphs[0]["name"] != "default" {
		t.Errorf("graphs[0] = %v", graphs[0])
	}
	if _, ok := graphs[0]["durable"]; ok {
		t.Errorf("static graph reports a durable section: %v", graphs[0])
	}
	var httpSec map[string]float64
	if err := json.Unmarshal(raw["http"], &httpSec); err != nil {
		t.Fatalf("http section: %v", err)
	}
	for _, key := range []string{"requests", "rate_limited", "overloaded", "jobs_retained"} {
		if _, ok := httpSec[key]; !ok {
			t.Errorf("http section missing %q: %v", key, httpSec)
		}
	}
	if httpSec["requests"] < 3 || httpSec["jobs_retained"] < 2 {
		t.Errorf("http counters not live: %v", httpSec)
	}
	var world map[string]float64
	if err := json.Unmarshal(raw["world"], &world); err != nil {
		t.Fatalf("world section: %v", err)
	}
	if world["messages_sent"] <= 0 {
		t.Errorf("world.messages_sent = %v, want > 0 after traversals", world["messages_sent"])
	}
	// The dist section exists only under -workers; a single-process server
	// must omit it rather than serve zeros.
	if _, ok := raw["dist"]; ok {
		t.Errorf("single-process metrics report a dist section: %v", raw)
	}
	// Its wire shape is pinned here anyway: the mutation counters the
	// multiproc smoke test reads by these names.
	distJSON, err := json.Marshal(distMetrics{})
	if err != nil {
		t.Fatalf("marshal dist section: %v", err)
	}
	var distSec map[string]json.RawMessage
	if err := json.Unmarshal(distJSON, &distSec); err != nil {
		t.Fatalf("dist section: %v", err)
	}
	for _, key := range []string{"procs", "mutation"} {
		if _, ok := distSec[key]; !ok {
			t.Errorf("dist section missing %q: %s", key, distJSON)
		}
	}
	var mut map[string]json.RawMessage
	if err := json.Unmarshal(distSec["mutation"], &mut); err != nil {
		t.Fatalf("dist.mutation section: %v", err)
	}
	for _, key := range []string{"mutations", "broadcast_ns_total", "commit_ns_total", "worker_applied"} {
		if _, ok := mut[key]; !ok {
			t.Errorf("dist.mutation missing %q: %s", key, distSec["mutation"])
		}
	}
}

func TestMalformedAndOversizedBodies(t *testing.T) {
	srv, _ := newTestServer(t)
	// Oversized: the query body cap is 1 MiB.
	big := `{"analysis":"` + strings.Repeat("a", 2<<20) + `"}`
	if resp := postRaw(t, srv.URL+"/v1/query", big); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized query body: code=%d, want 413", resp.StatusCode)
	}
	// Malformed and invalid ingest/advance bodies on a static graph.
	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/ingest", `{nope`, &e); code != 400 {
		t.Errorf("malformed ingest: code=%d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/ingest", `{"edges":[]}`, &e); code != 400 {
		t.Errorf("empty ingest batch: code=%d", code)
	}
	// A well-formed ingest against a non-stream graph is a client error.
	if code := postJSON(t, srv.URL+"/v1/ingest", `{"edges":[{"u":1,"v":2,"t":3}]}`, &e); code != 400 || !strings.Contains(e["error"], "not stream-backed") {
		t.Errorf("ingest into static graph: code=%d err=%v", code, e)
	}
	if code := postJSON(t, srv.URL+"/v1/advance", `{"cutoff":"NaN"}`, &e); code != 400 {
		t.Errorf("malformed advance: code=%d", code)
	}
}

// TestJobGCAfterRetention: finished jobs beyond the retention cap are
// forgotten oldest-first; polling one answers 404.
func TestJobGCAfterRetention(t *testing.T) {
	p := datagen.DefaultRedditParams()
	p.Events = 1000
	p.Users = 200
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, datagen.RedditLike(p))
	eng := tripoll.NewTemporalQueryEngine()
	if err := eng.Register("default", g); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}, serverConfig{retain: 4}))
	t.Cleanup(func() { srv.Close(); eng.Close(); w.Close() })

	var ids []uint64
	for i := 0; i < 6; i++ {
		var st jobStatus
		body := `{"analysis":"count","delta":` + jsonNum(uint64(1000+i)) + `}`
		if code := postJSON(t, srv.URL+"/v1/query?wait=1", body, &st); code != 200 {
			t.Fatalf("query %d: code=%d", i, code)
		}
		ids = append(ids, st.Job)
	}
	var st jobStatus
	if code := getJSON(t, srv.URL+"/v1/jobs/"+jsonNum(ids[0]), &st); code != 404 {
		t.Errorf("oldest job survived retention: code=%d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/v1/jobs/"+jsonNum(ids[5]), &st); code != 200 {
		t.Errorf("newest job evicted: code=%d, want 200", code)
	}
	var m metricsPayload
	getJSON(t, srv.URL+"/metrics", &m)
	if m.HTTP.JobsRetained > 4 {
		t.Errorf("jobs_retained = %d, want ≤ 4", m.HTTP.JobsRetained)
	}
}

// durableHarness is a tripolld over a WAL-backed stream with an explicit
// stop, so restart tests can cycle the whole process-equivalent.
type durableHarness struct {
	srv *httptest.Server
	eng *tripoll.Engine[tripoll.Unit, uint64]
	w   *tripoll.World
}

func startDurable(t *testing.T, dir string) *durableHarness {
	t.Helper()
	p := datagen.DefaultRedditParams()
	p.Events = 1500
	p.Users = 250
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, datagen.RedditLike(p))
	eng := tripoll.NewQueryEngine(tripoll.TemporalQueryRegistry(), tripoll.QueryEngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
	})
	_, _, err := eng.OpenDurableStream("default", g,
		tripoll.StreamOptions[uint64]{MergeEdgeMeta: minTimestamp},
		tripoll.NewTemporalPlan(),
		tripoll.DurableStreamOptions{Dir: dir, CheckpointEvery: 3})
	if err != nil {
		eng.Close()
		w.Close()
		t.Fatalf("OpenDurableStream: %v", err)
	}
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}, serverConfig{world: w}))
	return &durableHarness{srv: srv, eng: eng, w: w}
}

func (h *durableHarness) stop() {
	h.srv.Close()
	h.eng.Close()
	h.w.Close()
}

func TestDurableIngestAdvanceOverHTTP(t *testing.T) {
	dir := t.TempDir()
	h := startDurable(t, dir)

	var rep mutationReply
	if code := postJSON(t, h.srv.URL+"/v1/ingest", `{"edges":[{"u":9001,"v":9002,"t":50},{"u":9002,"v":9003,"t":60},{"u":9001,"v":9003,"t":70}]}`, &rep); code != 200 {
		t.Fatalf("ingest: code=%d %+v", code, rep)
	}
	if rep.Epoch != 1 || rep.Graph != "default" {
		t.Errorf("ingest reply: %+v", rep)
	}
	if code := postJSON(t, h.srv.URL+"/v1/advance", `{"cutoff":10}`, &rep); code != 200 || rep.Epoch != 2 {
		t.Fatalf("advance: code=%d %+v", code, rep)
	}
	// Backwards advance is rejected by preflight and leaves no WAL record.
	var e map[string]string
	if code := postJSON(t, h.srv.URL+"/v1/advance", `{"cutoff":5}`, &e); code != 400 {
		t.Errorf("backwards advance: code=%d", code)
	}
	var m metricsPayload
	if code := getJSON(t, h.srv.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: code=%d", code)
	}
	if len(m.Graphs) != 1 || m.Graphs[0].Durable == nil {
		t.Fatalf("durable graph metrics missing: %+v", m.Graphs)
	}
	if got := m.Graphs[0].Durable.WAL.LastSeq; got != 2 {
		t.Errorf("WAL last_seq = %d, want 2", got)
	}
	if got := m.Graphs[0].Durable.ReplayRebroadcasts; got != 0 {
		t.Errorf("replay_rebroadcasts = %d single-process, want 0 (re-broadcasts need a Mutator)", got)
	}
	// The triangle the ingested edges closed is queryable.
	var st jobStatus
	if code := postJSON(t, h.srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st); code != 200 || st.Result == nil {
		t.Fatalf("query: code=%d %+v", code, st)
	}
	countBefore := st.Result.Value.(float64)
	h.stop()

	// Restart over the same directory: the acknowledged epoch and the
	// analysis state both survive.
	h2 := startDurable(t, dir)
	defer h2.stop()
	if code := getJSON(t, h2.srv.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics after restart: code=%d", code)
	}
	if m.Graphs[0].Epoch != 2 {
		t.Errorf("epoch after restart = %d, want 2", m.Graphs[0].Epoch)
	}
	if code := postJSON(t, h2.srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st); code != 200 || st.Result == nil {
		t.Fatalf("query after restart: code=%d %+v", code, st)
	}
	if got := st.Result.Value.(float64); got != countBefore {
		t.Errorf("count after restart = %v, want %v", got, countBefore)
	}
	// And the stream still accepts work at the next sequence.
	if code := postJSON(t, h2.srv.URL+"/v1/ingest", `{"edges":[{"u":9101,"v":9102,"t":500}]}`, &rep); code != 200 || rep.Epoch != 3 {
		t.Errorf("post-restart ingest: code=%d %+v", code, rep)
	}
}

// TestTrussIndexServedOverHTTP wires the -truss-index path by hand: a
// WAL-backed stream with the index attached as a sink, the index attached
// to the engine. Truss queries must answer from the index (index_served
// on the result, engine counter live, truss_index metrics section), agree
// with the traversal path, and stay correct across ingest over HTTP.
func TestTrussIndexServedOverHTTP(t *testing.T) {
	p := datagen.DefaultRedditParams()
	p.Events = 1500
	p.Users = 250
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, datagen.RedditLike(p))
	eng := tripoll.NewQueryEngine(tripoll.TemporalQueryRegistry(), tripoll.QueryEngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
	})
	ix := tripoll.NewTrussIndex[tripoll.Unit](minTimestamp)
	_, _, err := eng.OpenDurableStreamSinks("default", g,
		tripoll.StreamOptions[uint64]{MergeEdgeMeta: minTimestamp},
		tripoll.NewTemporalPlan(),
		tripoll.DurableStreamOptions{Dir: t.TempDir(), CheckpointEvery: 8},
		[]tripoll.StreamSink[tripoll.Unit, uint64]{ix})
	if err != nil {
		t.Fatalf("OpenDurableStreamSinks: %v", err)
	}
	if err := eng.AttachIndex("default", ix); err != nil {
		t.Fatalf("AttachIndex: %v", err)
	}
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}, serverConfig{world: w, trussIx: ix}))
	t.Cleanup(func() { srv.Close(); eng.Close(); w.Close() })

	// The reference is the traversal path over the same graph.
	ref, err := tripoll.WindowTrussness(g, tripoll.WholeTrussWindow(), tripoll.SurveyOptions{})
	if err != nil {
		t.Fatalf("WindowTrussness: %v", err)
	}

	var st jobStatus
	if code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"maxtruss","nocache":true}`, &st); code != 200 || st.Result == nil {
		t.Fatalf("maxtruss: code=%d %+v", code, st)
	}
	if !st.Result.IndexServed {
		t.Errorf("maxtruss not index-served: %+v", st.Result)
	}
	val, ok := st.Result.Value.(map[string]any)
	if !ok || uint64(val["max"].(float64)) != uint64(ref.Max) {
		t.Errorf("index maxtruss = %v, traversal max = %d", st.Result.Value, ref.Max)
	}
	// Non-truss analyses still go through the traversal path. (A fresh
	// jobStatus: index_served is omitempty, so re-decoding into st would
	// keep the previous true.)
	var cnt jobStatus
	if code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &cnt); code != 200 || cnt.Result == nil {
		t.Fatalf("count: code=%d %+v", code, cnt)
	}
	if cnt.Result.IndexServed {
		t.Errorf("count must not be index-served: %+v", cnt.Result)
	}

	var m metricsPayload
	if code := getJSON(t, srv.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: code=%d", code)
	}
	if m.Engine.IndexServed < 1 {
		t.Errorf("engine.index_served = %d, want ≥ 1", m.Engine.IndexServed)
	}
	if m.TrussIndex == nil || m.TrussIndex.Served < 1 || m.TrussIndex.Edges == 0 {
		t.Errorf("truss_index section dead: %+v", m.TrussIndex)
	}

	// Ingest over HTTP reaches the index through the stream's sink seam;
	// the next query reflects the mutation and is still index-served.
	var rep mutationReply
	if code := postJSON(t, srv.URL+"/v1/ingest", `{"edges":[{"u":9001,"v":9002,"t":50},{"u":9002,"v":9003,"t":60},{"u":9001,"v":9003,"t":70}]}`, &rep); code != 200 {
		t.Fatalf("ingest: code=%d %+v", code, rep)
	}
	// The seed graph g doesn't see the ingest — the stream (and index) do.
	// The fresh triangle is vertex-disjoint from the generated graph, so
	// it adds exactly its three edges at trussness 3 and changes nothing
	// else relative to the pre-ingest traversal reference.
	var after jobStatus
	if code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"trussness","nocache":true}`, &after); code != 200 || after.Result == nil {
		t.Fatalf("trussness after ingest: code=%d %+v", code, after)
	}
	if !after.Result.IndexServed {
		t.Errorf("trussness after ingest not index-served: %+v", after.Result)
	}
	got, ok := after.Result.Value.(map[string]any)
	if !ok || len(got["edges"].([]any)) != len(ref.Edges)+3 || uint64(got["max"].(float64)) != uint64(ref.Max) {
		t.Errorf("index trussness after ingest: %d edges max %v, want %d edges max %d",
			len(got["edges"].([]any)), got["max"], len(ref.Edges)+3, ref.Max)
	}
}

// TestOverloadShedsWith429: with a tiny admission queue and a scheduler
// busy on a traversal, submissions overflow and must shed with 429 +
// Retry-After rather than queue without bound.
func TestOverloadShedsWith429(t *testing.T) {
	p := datagen.DefaultRedditParams()
	p.Events = 4000
	p.Users = 500
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, datagen.RedditLike(p))
	eng := tripoll.NewQueryEngine(tripoll.TemporalQueryRegistry(), tripoll.QueryEngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
		MaxPending: 2,
	})
	if err := eng.Register("default", g); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}, serverConfig{}))
	t.Cleanup(func() { srv.Close(); eng.Close(); w.Close() })

	// Fire concurrent bursts of async submissions with distinct deltas (no
	// cache hits, no dedupe): with the queue bounded at 2, a 32-wide burst
	// overflows admission unless the scheduler drains between every two
	// arrivals. Repeat until a shed is observed.
	deadline := time.Now().Add(30 * time.Second)
	var next atomic.Uint64
	for !t.Failed() {
		var (
			wg       sync.WaitGroup
			shed     atomic.Bool
			noHeader atomic.Bool
		)
		for j := 0; j < 32; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body := `{"analysis":"closure","delta":` + jsonNum(1000+next.Add(1)) + `}`
				resp, err := http.Post(srv.URL+"/v1/query", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				defer resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					shed.Store(true)
					if resp.Header.Get("Retry-After") == "" {
						noHeader.Store(true)
					}
				case http.StatusAccepted:
				default:
					t.Errorf("submit: code=%d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
		if noHeader.Load() {
			t.Errorf("429 without Retry-After")
		}
		if shed.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never shed after %d submissions", next.Load())
		}
	}
	var m metricsPayload
	getJSON(t, srv.URL+"/metrics", &m)
	if m.Engine.Shed == 0 || m.HTTP.Overloaded == 0 {
		t.Errorf("shed counters dead after a 429: engine.shed=%d http.overloaded=%d", m.Engine.Shed, m.HTTP.Overloaded)
	}
}
