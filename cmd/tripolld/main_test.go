package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tripoll"
	"tripoll/datagen"
)

// newTestServer builds a server over a small generated temporal graph and
// returns it with the underlying graph for baseline comparisons.
func newTestServer(t *testing.T) (*httptest.Server, *tripoll.Graph[tripoll.Unit, uint64]) {
	t.Helper()
	p := datagen.DefaultRedditParams()
	p.Events = 4000
	p.Users = 500
	edges := datagen.RedditLike(p)
	w := tripoll.NewWorld(2)
	g := tripoll.BuildTemporal(w, edges)
	eng := tripoll.NewTemporalQueryEngine()
	if err := eng.Register("default", g); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(eng, map[string]tripoll.GraphInfo{"default": tripoll.Info(g)}))
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
		w.Close()
	})
	return srv, g
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthGraphsAnalyses(t *testing.T) {
	srv, _ := newTestServer(t)
	var health map[string]string
	if code := getJSON(t, srv.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Errorf("healthz: code=%d body=%v", code, health)
	}
	var graphs []map[string]any
	if code := getJSON(t, srv.URL+"/v1/graphs", &graphs); code != 200 || len(graphs) != 1 {
		t.Fatalf("graphs: code=%d body=%v", code, graphs)
	}
	if graphs[0]["name"] != "default" || graphs[0]["Vertices"].(float64) <= 0 {
		t.Errorf("graphs entry: %v", graphs[0])
	}
	var analyses []string
	if code := getJSON(t, srv.URL+"/v1/analyses", &analyses); code != 200 {
		t.Fatalf("analyses: code=%d", code)
	}
	for _, want := range []string{"count", "closure", "cc"} {
		found := false
		for _, a := range analyses {
			found = found || a == want
		}
		if !found {
			t.Errorf("analyses missing %q: %v", want, analyses)
		}
	}
}

func TestSubmitWaitCountMatchesRun(t *testing.T) {
	srv, g := newTestServer(t)
	want, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var st jobStatus
	code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st)
	if code != 200 || st.Status != "done" || st.Result == nil {
		t.Fatalf("wait submit: code=%d status=%+v", code, st)
	}
	got, ok := st.Result.Value.(float64) // JSON numbers decode as float64
	if !ok || uint64(got) != want.Triangles {
		t.Errorf("count = %v, want %d", st.Result.Value, want.Triangles)
	}
	if st.Result.Analysis != "count" || st.Result.Graph != "default" {
		t.Errorf("result provenance: %+v", st.Result)
	}

	// The same question again is a cache hit.
	var st2 jobStatus
	postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"count"}`, &st2)
	if st2.Result == nil || !st2.Result.Cached {
		t.Errorf("repeat query not cached: %+v", st2.Result)
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	srv, _ := newTestServer(t)
	var st jobStatus
	code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"closure","delta":100000}`, &st)
	if code != http.StatusAccepted || st.Job == 0 {
		t.Fatalf("submit: code=%d %+v", code, st)
	}
	url := srv.URL + "/v1/jobs/" + jsonNum(st.Job)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var poll jobStatus
		if code := getJSON(t, url, &poll); code != 200 {
			t.Fatalf("poll: code=%d", code)
		}
		if poll.Status == "done" {
			if poll.Result == nil || poll.Result.Analysis != "closure" {
				t.Fatalf("done without result: %+v", poll)
			}
			break
		}
		if poll.Status == "failed" {
			t.Fatalf("job failed: %+v", poll)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck %q", poll.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The dedicated result endpoint serves the bare result.
	var res tripoll.QueryResult
	if code := getJSON(t, url+"/result", &res); code != 200 || res.Analysis != "closure" {
		t.Errorf("result endpoint: code=%d %+v", code, res)
	}
	if _, ok := res.Value.([]any); !ok {
		t.Errorf("closure value did not ship as a cell list: %T", res.Value)
	}
}

func TestBadRequests(t *testing.T) {
	srv, _ := newTestServer(t)
	var e map[string]string
	if code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"nope"}`, &e); code != 400 || e["error"] == "" {
		t.Errorf("unknown analysis: code=%d %v", code, e)
	}
	if code := postJSON(t, srv.URL+"/v1/query", `{analysis}`, &e); code != 400 {
		t.Errorf("bad json: code=%d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"count","bogus":1}`, &e); code != 400 {
		t.Errorf("unknown field: code=%d", code)
	}
	if code := postJSON(t, srv.URL+"/v1/query", `{"analysis":"count","graph":"missing"}`, &e); code != 400 {
		t.Errorf("unknown graph: code=%d", code)
	}
	var st jobStatus
	if code := getJSON(t, srv.URL+"/v1/jobs/99999", &st); code != 404 {
		t.Errorf("unknown job: code=%d", code)
	}
	// Args only the factory can validate fail at dispatch; a waited
	// submit must still surface that as a client error, not a 200.
	var failed jobStatus
	if code := postJSON(t, srv.URL+"/v1/query?wait=1", `{"analysis":"sweep"}`, &failed); code != 400 || failed.Status != "failed" || failed.Error == "" {
		t.Errorf("sweep without deltas: code=%d status=%+v", code, failed)
	}
}

func jsonNum(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}
