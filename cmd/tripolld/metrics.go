// The /metrics endpoint: one JSON document (expvar-style, not Prometheus
// text) with everything the engine, WAL and HTTP front end already count.
// Schema (asserted by TestMetricsSchema):
//
//	{
//	  "engine":         engine.Stats (submitted/completed/shed/cache_hits/...),
//	  "queue_depth":    jobs awaiting the scheduler's next admission batch,
//	  "cache_hit_rate": cache_hits / completed,
//	  "coalesce_ratio": coalesced / completed,
//	  "graphs":         [{"name", "epoch", "durable": {"wal": wal.Stats, ...}}],
//	  "http":           {"requests", "rate_limited", "overloaded", "jobs_retained"},
//	  "world":          {"messages_sent", "messages_processed"},
//	  "dist":           (-workers only) {"procs", "mutation": dist.MutationStats},
//	  "truss_index":    (-truss-index only) tripoll.TrussIndexStats
//	}
package main

import (
	"net/http"

	"tripoll"
	"tripoll/internal/dist"
)

type graphMetrics struct {
	Name  string `json:"name"`
	Epoch uint64 `json:"epoch"`
	// Durable is present for WAL-backed streams only.
	Durable *tripoll.DurableStreamStatus `json:"durable,omitempty"`
}

type httpMetrics struct {
	Requests     uint64 `json:"requests"`
	RateLimited  uint64 `json:"rate_limited"`
	Overloaded   uint64 `json:"overloaded"`
	JobsRetained int    `json:"jobs_retained"`
}

type worldMetrics struct {
	MessagesSent      int64 `json:"messages_sent"`
	MessagesProcessed int64 `json:"messages_processed"`
}

// distMetrics is the multi-process section: the mutation broadcast
// seam's counters (fan-out and commit latency, per-worker applied
// counts). Present only under -workers.
type distMetrics struct {
	Procs    int                `json:"procs"`
	Mutation dist.MutationStats `json:"mutation"`
}

type metricsPayload struct {
	Engine     tripoll.EngineStats `json:"engine"`
	QueueDepth int                 `json:"queue_depth"`
	// CacheHitRate and CoalesceRatio are completed-job fractions (0 when
	// nothing has completed).
	CacheHitRate  float64        `json:"cache_hit_rate"`
	CoalesceRatio float64        `json:"coalesce_ratio"`
	Graphs        []graphMetrics `json:"graphs"`
	HTTP          httpMetrics    `json:"http"`
	World         *worldMetrics  `json:"world,omitempty"`
	Dist          *distMetrics   `json:"dist,omitempty"`
	// TrussIndex is present under -truss-index: the maintained index's
	// size and serving counters.
	TrussIndex *tripoll.TrussIndexStats `json:"truss_index,omitempty"`
}

func ratio(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	m := metricsPayload{
		Engine:        st,
		QueueDepth:    s.eng.QueueDepth(),
		CacheHitRate:  ratio(st.CacheHits, st.Completed),
		CoalesceRatio: ratio(st.Coalesced, st.Completed),
		HTTP: httpMetrics{
			Requests:    s.requests.Load(),
			RateLimited: s.rateLimited.Load(),
			Overloaded:  s.overloaded.Load(),
		},
	}
	for _, name := range s.eng.Graphs() {
		gm := graphMetrics{Name: name}
		gm.Epoch, _ = s.eng.Epoch(name)
		if ds, ok := s.eng.DurableStatus(name); ok {
			gm.Durable = &ds
		}
		m.Graphs = append(m.Graphs, gm)
	}
	s.mu.Lock()
	m.HTTP.JobsRetained = len(s.jobs)
	s.mu.Unlock()
	if s.world != nil {
		sent, proc := s.world.TransportCounters()
		m.World = &worldMetrics{MessagesSent: sent, MessagesProcessed: proc}
	}
	if s.cluster != nil {
		m.Dist = &distMetrics{Procs: s.cluster.Procs(), Mutation: s.cluster.MutationStats()}
	}
	if s.trussIx != nil {
		st := s.trussIx.Stats()
		m.TrussIndex = &st
	}
	writeJSON(w, http.StatusOK, m)
}
