// Command tripoll-worker is one worker process of a multi-process tripoll
// world. It joins a coordinator (tripolld -workers, or any dist.Listen
// caller), hosts its assigned rank span, participates in collective graph
// builds, fused traversals and broadcast stream mutations (tripolld -wal
// -workers), and drains out gracefully on SIGTERM: a job in flight —
// traversal or mutation, acknowledgement and all — completes, the worker
// deregisters from the coordinator, and the process exits 0.
//
// Usage:
//
//	tripoll-worker -join 127.0.0.1:9123 [-listen 127.0.0.1:0]
//
// The join address may also come from the TRIPOLL_DIST_JOIN environment
// variable (the self-launch convention).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tripoll"
	"tripoll/internal/core"
	"tripoll/internal/dist"
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

func main() {
	var (
		join    = flag.String("join", "", "coordinator control address (or TRIPOLL_DIST_JOIN)")
		listen  = flag.String("listen", "", "data-plane bind address for this process's ranks (default 127.0.0.1:0)")
		timeout = flag.Duration("timeout", 60*time.Second, "rendezvous timeout")
	)
	flag.Parse()
	log.SetPrefix("tripoll-worker: ")

	addr := *join
	if addr == "" {
		addr = dist.JoinAddrFromEnv()
	}
	if addr == "" {
		fmt.Fprintln(os.Stderr, "tripoll-worker: need -join <addr> or TRIPOLL_DIST_JOIN")
		os.Exit(2)
	}

	wk, err := dist.Join(addr, *listen, *timeout)
	if err != nil {
		log.Fatalf("join %s: %v", addr, err)
	}
	first, count := wk.World().LocalSpan()
	log.Printf("joined %s as process %d: ranks [%d, %d) of %d",
		addr, wk.Proc(), first, first+count, wk.World().Size())

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		s := <-sig
		log.Printf("%v: draining (in-flight traversal completes, then deregister)", s)
		close(stop)
	}()

	if err := dist.Serve(wk, temporalHooks(), stop); err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("departed cleanly")
}

// temporalHooks is the worker side of tripolld's configuration: unit
// vertex metadata, uint64 timestamp edge metadata, the stock temporal
// analysis registry, and the §5.2 min-timestamp multigraph reduction.
// Driver and worker must agree on this mapping — both ship in this repo.
func temporalHooks() dist.Hooks[tripoll.Unit, uint64] {
	return dist.Hooks[tripoll.Unit, uint64]{
		Registry:   tripoll.TemporalQueryRegistry(),
		Timestamps: func(ts uint64) uint64 { return ts },
		Build: func(w *ygm.World, name string, spec dist.BuildSpec) (*graph.DODGr[tripoll.Unit, uint64], error) {
			if spec.Policy != "" && spec.Policy != "temporal" {
				return nil, fmt.Errorf("unknown build policy %q", spec.Policy)
			}
			if graph.Ordering(spec.Ordering) != graph.OrderDegree {
				return nil, fmt.Errorf("build ordering %d not supported by this worker", spec.Ordering)
			}
			if spec.Replicas > 1 {
				// One copy per rank span, the exact construction tripolld's
				// buildTemporalReplica runs driver-side (with the edges).
				span := w.Size() / spec.Replicas
				log.Printf("building graph %q replica %d/%d (collective, ranks [%d, %d))",
					name, spec.Replica, spec.Replicas, spec.Replica*span, (spec.Replica+1)*span)
				return buildTemporalReplica(w, spec.Replica*span, span), nil
			}
			log.Printf("building graph %q (collective)", name)
			return tripoll.BuildTemporal(w, nil), nil
		},
		// The worker's side of tripolld's OpenDurableStream: same stream
		// options and plan, no WAL (durability is driver-side; DESIGN.md
		// §14). Broadcast mutations keep every process's stream identical.
		// The "temporal+truss" policy additionally attaches a triangle-span
		// index sink (tripolld -truss-index); the sink's commit collective
		// runs on every process of the world, so driver and workers must
		// agree on attachment or the world deadlocks — the policy name is
		// that agreement.
		OpenStream: func(g *graph.DODGr[tripoll.Unit, uint64], policy string) (*core.Stream[tripoll.Unit, uint64], error) {
			switch policy {
			case "", "temporal":
				log.Printf("opening stream (collective)")
				return tripoll.OpenStream(g, tripoll.StreamOptions[uint64]{MergeEdgeMeta: minTimestamp}, tripoll.NewTemporalPlan())
			case "temporal+truss":
				log.Printf("opening stream with truss index (collective)")
				ix := tripoll.NewTrussIndex[tripoll.Unit](minTimestamp)
				return tripoll.OpenStreamSinks(g, tripoll.StreamOptions[uint64]{MergeEdgeMeta: minTimestamp}, tripoll.NewTemporalPlan(),
					[]tripoll.StreamSink[tripoll.Unit, uint64]{ix})
			default:
				return nil, fmt.Errorf("unknown stream policy %q", policy)
			}
		},
	}
}

// minTimestamp mirrors tripolld's multigraph reduction: keep the earliest
// timestamp of a repeated edge (the §5.2 Reddit reduction).
func minTimestamp(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// buildTemporalReplica is the worker's side of one replica's collective
// build: SpanPartition confines the copy to its rank span; the driver's
// ranks feed all the edges.
func buildTemporalReplica(w *ygm.World, first, count int) *graph.DODGr[tripoll.Unit, uint64] {
	b := tripoll.NewGraphBuilder(w, tripoll.UnitCodec(), tripoll.Uint64Codec(), tripoll.BuilderOptions[uint64]{
		Partitioner:   tripoll.SpanPartition{First: first, Count: count},
		MergeEdgeMeta: minTimestamp,
	})
	var g *graph.DODGr[tripoll.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		gg := b.Build(r)
		if r.ID() == w.LeaderID() {
			g = gg
		}
	})
	return g
}
