// tripoll-bench regenerates the paper's tables and figures on synthetic
// stand-in datasets.
//
// Usage:
//
//	tripoll-bench                         # run everything at default scale
//	tripoll-bench -exp table2,fig6        # selected artifacts
//	tripoll-bench -exp pushdown           # predicate-pushdown ablation
//	tripoll-bench -scale 0.2 -max-ranks 4 # smaller and faster
//	tripoll-bench -transport tcp          # loopback-TCP transport
//	tripoll-bench -list                   # show available experiments
//	tripoll-bench -json BENCH_PR1.json    # also write the machine-readable
//	                                      # trajectory point (see DESIGN.md §6)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"tripoll/internal/exp"
	"tripoll/internal/ygm"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier")
		maxRanks  = flag.Int("max-ranks", 8, "largest simulated rank count in scaling sweeps")
		transport = flag.String("transport", "channel", "transport: channel or tcp")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonOut   = flag.String("json", "", "write a BENCH_*.json trajectory point to this path")
	)
	flag.Parse()

	if *list {
		for _, r := range exp.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Desc)
		}
		return
	}

	cfg := exp.Config{Scale: *scale, MaxRanks: *maxRanks}
	switch *transport {
	case "channel":
		cfg.Transport = ygm.TransportChannel
	case "tcp":
		cfg.Transport = ygm.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	var runners []exp.Runner
	if *expFlag == "all" {
		runners = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			r, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failed := false
	var reports []*exp.Report
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(cfg)
		elapsed := time.Since(start)
		rep.Metrics = append(rep.Metrics, exp.Metric{
			Name:  r.ID + "/wall_ns",
			Value: float64(elapsed.Nanoseconds()),
			Unit:  "ns/op",
			Extra: fmt.Sprintf("scale=%g max-ranks=%d transport=%s", *scale, *maxRanks, *transport),
		})
		reports = append(reports, rep)
		fmt.Println(rep.Render())
		fmt.Printf("(%s completed in %s)\n\n", r.ID, elapsed.Round(time.Millisecond))
		if strings.Contains(rep.Render(), "MISMATCH") || strings.Contains(rep.Render(), "UNEXPECTED") {
			failed = true
		}
	}
	if *jsonOut != "" {
		rec := exp.NewBenchRecord(gitCommit(), time.Now().UnixMilli(), reports)
		if err := exp.WriteBenchFile(*jsonOut, rec); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if _, err := exp.ReadBenchFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "round-trip validation of %s failed: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics to %s\n", len(rec.Benches), *jsonOut)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "one or more experiments reported verification failures")
		os.Exit(1)
	}
}

// gitCommit identifies the working tree's HEAD, best effort: trajectory
// points stay writable outside a git checkout (commit id "unknown").
func gitCommit() exp.BenchCommit {
	c := exp.BenchCommit{ID: "unknown"}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if id := strings.TrimSpace(string(out)); id != "" {
			c.ID = id
		}
	}
	if out, err := exec.Command("git", "log", "-1", "--format=%s").Output(); err == nil {
		c.Message = strings.TrimSpace(string(out))
	}
	if out, err := exec.Command("git", "log", "-1", "--format=%cI").Output(); err == nil {
		c.Timestamp = strings.TrimSpace(string(out))
	}
	return c
}
