// tripoll-bench regenerates the paper's tables and figures on synthetic
// stand-in datasets.
//
// Usage:
//
//	tripoll-bench                         # run everything at default scale
//	tripoll-bench -exp table2,fig6        # selected artifacts
//	tripoll-bench -exp pushdown           # predicate-pushdown ablation
//	tripoll-bench -scale 0.2 -max-ranks 4 # smaller and faster
//	tripoll-bench -transport tcp          # loopback-TCP transport
//	tripoll-bench -list                   # show available experiments
//	tripoll-bench -json BENCH_PR1.json    # also write the machine-readable
//	                                      # trajectory point (see DESIGN.md §6)
//	tripoll-bench -compare old.json new.json
//	                                      # regression-gate new against old;
//	                                      # exits 1 on any regression. Add
//	                                      # -skip-wall when the records come
//	                                      # from different machines.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"tripoll/internal/dist"
	"tripoll/internal/exp"
	"tripoll/internal/ygm"
)

func main() {
	// The multiproc ablation self-launches copies of this binary as worker
	// processes; a copy asked to join a world serves it instead of
	// benchmarking.
	if addr := dist.JoinAddrFromEnv(); addr != "" {
		os.Exit(exp.MultiprocServeWorker(addr))
	}
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier")
		maxRanks  = flag.Int("max-ranks", 8, "largest simulated rank count in scaling sweeps")
		transport = flag.String("transport", "channel", "transport: channel or tcp")
		list      = flag.Bool("list", false, "list experiments and exit")
		jsonOut   = flag.String("json", "", "write a BENCH_*.json trajectory point to this path")

		compare    = flag.Bool("compare", false, "compare two trajectory points: -compare old.json new.json")
		skipWall   = flag.Bool("skip-wall", false, "with -compare: ignore wall-clock numbers (cross-machine records)")
		wallRatio  = flag.Float64("wall-ratio", 0, "with -compare: allowed new/old wall-clock ratio (default 1.5)")
		allocRatio = flag.Float64("alloc-ratio", 0, "with -compare: allowed allocs/alloc_bytes ratio (default 1.10)")
		countRatio = flag.Float64("count-ratio", 0, "with -compare: allowed counter-value ratio (default 1.05)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: tripoll-bench -compare [-skip-wall] old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), exp.CompareOptions{
			SkipWall:   *skipWall,
			WallRatio:  *wallRatio,
			AllocRatio: *allocRatio,
			CountRatio: *countRatio,
		}))
	}

	if *list {
		for _, r := range exp.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Desc)
		}
		return
	}

	cfg := exp.Config{Scale: *scale, MaxRanks: *maxRanks}
	switch *transport {
	case "channel":
		cfg.Transport = ygm.TransportChannel
	case "tcp":
		cfg.Transport = ygm.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	var runners []exp.Runner
	if *expFlag == "all" {
		runners = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			r, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failed := false
	var reports []*exp.Report
	for _, r := range runners {
		start := time.Now()
		span := exp.BeginMeasure()
		rep := r.Run(cfg)
		m := span.End()
		elapsed := time.Since(start)
		rep.Metrics = append(rep.Metrics, exp.Metric{
			Name:   r.ID + "/wall_ns",
			Value:  float64(elapsed.Nanoseconds()),
			Unit:   "ns/op",
			WallNs: m.WallNs, Allocs: m.Allocs, AllocBytes: m.AllocBytes,
			Extra: fmt.Sprintf("scale=%g max-ranks=%d transport=%s", *scale, *maxRanks, *transport),
		})
		reports = append(reports, rep)
		fmt.Println(rep.Render())
		fmt.Printf("(%s completed in %s)\n\n", r.ID, elapsed.Round(time.Millisecond))
		if strings.Contains(rep.Render(), "MISMATCH") || strings.Contains(rep.Render(), "UNEXPECTED") {
			failed = true
		}
	}
	if *jsonOut != "" {
		rec := exp.NewBenchRecord(gitCommit(), time.Now().UnixMilli(), reports)
		if err := exp.WriteBenchFile(*jsonOut, rec); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if _, err := exp.ReadBenchFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "round-trip validation of %s failed: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d metrics to %s\n", len(rec.Benches), *jsonOut)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "one or more experiments reported verification failures")
		os.Exit(1)
	}
}

// runCompare diffs newPath against oldPath and reports every regression;
// its return value is the process exit code.
func runCompare(oldPath, newPath string, opts exp.CompareOptions) int {
	oldRec, err := exp.ReadBenchFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	newRec, err := exp.ReadBenchFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if !opts.SkipWall && oldRec.Env != nil && newRec.Env != nil && *oldRec.Env != *newRec.Env {
		fmt.Fprintf(os.Stderr, "note: records come from different environments (%+v vs %+v); wall-clock comparisons may be meaningless — consider -skip-wall\n",
			*oldRec.Env, *newRec.Env)
	}
	regs := exp.CompareRecords(oldRec, newRec, opts)
	if len(regs) == 0 {
		fmt.Printf("no regressions: %s vs %s (%d baseline metrics)\n", newPath, oldPath, len(oldRec.Benches))
		return 0
	}
	fmt.Fprintf(os.Stderr, "%d regression(s) in %s vs %s:\n", len(regs), newPath, oldPath)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	return 1
}

// gitCommit identifies the working tree's HEAD, best effort: trajectory
// points stay writable outside a git checkout (commit id "unknown").
func gitCommit() exp.BenchCommit {
	c := exp.BenchCommit{ID: "unknown"}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if id := strings.TrimSpace(string(out)); id != "" {
			c.ID = id
		}
	}
	if out, err := exec.Command("git", "log", "-1", "--format=%s").Output(); err == nil {
		c.Message = strings.TrimSpace(string(out))
	}
	if out, err := exec.Command("git", "log", "-1", "--format=%cI").Output(); err == nil {
		c.Timestamp = strings.TrimSpace(string(out))
	}
	return c
}
