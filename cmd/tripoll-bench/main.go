// tripoll-bench regenerates the paper's tables and figures on synthetic
// stand-in datasets.
//
// Usage:
//
//	tripoll-bench                         # run everything at default scale
//	tripoll-bench -exp table2,fig6        # selected artifacts
//	tripoll-bench -scale 0.2 -max-ranks 4 # smaller and faster
//	tripoll-bench -transport tcp          # loopback-TCP transport
//	tripoll-bench -list                   # show available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tripoll/internal/exp"
	"tripoll/internal/ygm"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale     = flag.Float64("scale", 1.0, "dataset size multiplier")
		maxRanks  = flag.Int("max-ranks", 8, "largest simulated rank count in scaling sweeps")
		transport = flag.String("transport", "channel", "transport: channel or tcp")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range exp.All() {
			fmt.Printf("  %-12s %s\n", r.ID, r.Desc)
		}
		return
	}

	cfg := exp.Config{Scale: *scale, MaxRanks: *maxRanks}
	switch *transport {
	case "channel":
		cfg.Transport = ygm.TransportChannel
	case "tcp":
		cfg.Transport = ygm.TransportTCP
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}

	var runners []exp.Runner
	if *expFlag == "all" {
		runners = exp.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			r, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	failed := false
	for _, r := range runners {
		start := time.Now()
		rep := r.Run(cfg)
		fmt.Println(rep.Render())
		fmt.Printf("(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		if strings.Contains(rep.Render(), "MISMATCH") || strings.Contains(rep.Render(), "UNEXPECTED") {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "one or more experiments reported verification failures")
		os.Exit(1)
	}
}
