// graphgen writes synthetic edge lists to disk in the text format the
// tripoll CLI reads ("u v [timestamp]").
//
// Usage:
//
//	graphgen -model reddit -size 200000 -out reddit.txt
//	graphgen -model rmat -scale 16 -out rmat16.txt
//	graphgen -model ba -size 100000 -out ba.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"tripoll"
	"tripoll/datagen"
)

func main() {
	var (
		model = flag.String("model", "rmat", "rmat|ba|er|ws|reddit|webhost")
		out   = flag.String("out", "", "output path (required)")
		seed  = flag.Int64("seed", 42, "generator seed")
		size  = flag.Int("size", 100_000, "edge budget / event count (non-rmat models)")
		scale = flag.Int("scale", 14, "R-MAT scale (rmat model)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "need -out")
		os.Exit(2)
	}

	var edges []tripoll.TemporalEdge
	switch *model {
	case "rmat":
		p := datagen.RMATParams{Scale: *scale, Seed: *seed, Scramble: true}
		if err := p.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		edges = make([]tripoll.TemporalEdge, 0, p.NumEdges())
		p.Generate(0, p.NumEdges(), func(u, v uint64) {
			edges = append(edges, tripoll.TemporalEdge{U: u, V: v})
		})
	case "ba":
		edges = datagen.ToTemporal(datagen.BarabasiAlbert(uint64(*size/8), 8, *seed))
	case "er":
		edges = datagen.ToTemporal(datagen.ErdosRenyi(uint64(*size/16), *size, *seed))
	case "ws":
		edges = datagen.ToTemporal(datagen.WattsStrogatz(uint64(*size/6), 3, 0.1, *seed))
	case "reddit":
		p := datagen.DefaultRedditParams()
		p.Seed = *seed
		p.Events = *size
		p.Users = uint64(*size / 8)
		edges = datagen.RedditLike(p)
	case "webhost":
		p := datagen.DefaultWebHostParams()
		p.Seed = *seed
		p.IntraEdges = *size * 2 / 5
		p.InterEdges = *size * 3 / 5
		edges = datagen.ToTemporal(datagen.WebHostLike(p).Edges)
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}

	if err := tripoll.WriteEdgeListFile(*out, edges); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d edges to %s\n", len(edges), *out)
}
