package tripoll_test

import (
	"sync/atomic"
	"testing"

	"tripoll"
	"tripoll/internal/baseline"
	"tripoll/internal/gen"
)

func TestQuickstartCount(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	g := tripoll.BuildSimple(w, [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	res := tripoll.Count(g, tripoll.SurveyOptions{})
	if res.Triangles != 1 {
		t.Errorf("triangles = %d, want 1", res.Triangles)
	}
	info := tripoll.Info(g)
	if info.Vertices != 4 || info.PlusEdges != 4 {
		t.Errorf("info = %+v", info)
	}
}

func TestPublicSurveyWithCallback(t *testing.T) {
	w := tripoll.NewWorld(2)
	defer w.Close()
	g := tripoll.BuildSimple(w, gen.Complete(6))
	var fired atomic.Int64
	s := tripoll.NewSurvey(g, tripoll.SurveyOptions{Mode: tripoll.PushOnly},
		func(r *tripoll.Rank, tri *tripoll.Triangle[tripoll.Unit, tripoll.Unit]) {
			fired.Add(1)
		})
	res := s.Run()
	want := baseline.SerialCount(gen.Complete(6))
	if res.Triangles != want || fired.Load() != int64(want) {
		t.Errorf("triangles = %d, callbacks = %d, want %d", res.Triangles, fired.Load(), want)
	}
}

func TestPublicTemporalClosure(t *testing.T) {
	w := tripoll.NewWorld(2)
	defer w.Close()
	edges := []tripoll.TemporalEdge{
		{U: 0, V: 1, Time: 100},
		{U: 1, V: 2, Time: 108},
		{U: 0, V: 2, Time: 228},
		{U: 0, V: 1, Time: 50}, // duplicate — keeps the earlier timestamp
	}
	g := tripoll.BuildTemporal(w, edges)
	joint, res := tripoll.ClosureTimes(g, tripoll.SurveyOptions{})
	if res.Triangles != 1 {
		t.Fatalf("triangles = %d", res.Triangles)
	}
	// With the duplicate reduced to t=50: times 50,108,228 → open = 58 →
	// ceil log2 = 6; close = 178 → ceil log2 = 8.
	if joint.Count(6, 8) != 1 {
		t.Errorf("joint distribution missing (6,8); total=%d", joint.Total())
	}
}

func TestPublicCounterInCallback(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	g := tripoll.BuildSimple(w, gen.Complete(5))
	counter := tripoll.NewCounter[uint64](w, tripoll.Uint64Codec(), tripoll.CounterOptions{})
	s := tripoll.NewSurvey(g, tripoll.SurveyOptions{},
		func(r *tripoll.Rank, tri *tripoll.Triangle[tripoll.Unit, tripoll.Unit]) {
			counter.Inc(r, tri.P) // pivot participation counts
		})
	res := s.Run()
	var total uint64
	w.Parallel(func(r *tripoll.Rank) {
		counter.Barrier(r)
		total = tripoll.AllReduceSum(r, func() uint64 {
			var s uint64
			for _, v := range counter.LocalShard(r) {
				s += v
			}
			return s
		}())
	})
	if total != res.Triangles {
		t.Errorf("pivot counts %d != triangles %d", total, res.Triangles)
	}
}

func TestPublicClusteringAndLocalCounts(t *testing.T) {
	w := tripoll.NewWorld(2)
	defer w.Close()
	g := tripoll.BuildSimple(w, gen.Complete(5))
	counts, _ := tripoll.LocalVertexCounts(g, tripoll.SurveyOptions{})
	for v := uint64(0); v < 5; v++ {
		if counts[v] != 6 { // each K5 vertex is in C(4,2) = 6 triangles
			t.Errorf("t(%d) = %d, want 6", v, counts[v])
		}
	}
	cs, _ := tripoll.ClusteringCoefficients(g, tripoll.SurveyOptions{})
	if cs.Average != 1 || cs.Global != 1 {
		t.Errorf("K5 clustering = %+v", cs)
	}
}

func TestPublicWorldOptions(t *testing.T) {
	w, err := tripoll.NewWorldWith(2, tripoll.WorldOptions{Transport: tripoll.TransportTCP})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	g := tripoll.BuildSimple(w, gen.Complete(4))
	if res := tripoll.Count(g, tripoll.SurveyOptions{}); res.Triangles != 4 {
		t.Errorf("tcp world count = %d", res.Triangles)
	}
	if _, err := tripoll.NewWorldWith(0, tripoll.WorldOptions{}); err == nil {
		t.Error("expected error for 0 ranks")
	}
}

func TestPublicEdgeListIO(t *testing.T) {
	path := t.TempDir() + "/g.txt"
	edges := []tripoll.TemporalEdge{{U: 0, V: 1, Time: 3}, {U: 1, V: 2, Time: 4}}
	if err := tripoll.WriteEdgeListFile(path, edges); err != nil {
		t.Fatal(err)
	}
	got, err := tripoll.ReadEdgeListFile(path)
	if err != nil || len(got) != 2 {
		t.Fatalf("read: %v %v", got, err)
	}
}

func TestPublicWindowedSurveys(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	edges := []tripoll.TemporalEdge{
		// A tight triangle (spread 10) and a slow one (spread 500).
		{U: 0, V: 1, Time: 100}, {U: 1, V: 2, Time: 105}, {U: 0, V: 2, Time: 110},
		{U: 3, V: 4, Time: 100}, {U: 4, V: 5, Time: 300}, {U: 3, V: 5, Time: 600},
	}
	g := tripoll.BuildTemporal(w, edges)

	res, err := tripoll.WindowedCount(g, tripoll.NewTemporalPlan().CloseWithin(50), tripoll.SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != 1 {
		t.Errorf("δ=50 count = %d, want 1", res.Triangles)
	}
	if !res.Planned || res.PrunedBatches+res.PrunedCandidates == 0 {
		t.Errorf("pushdown inactive: planned=%v pruned=%d/%d", res.Planned, res.PrunedBatches, res.PrunedCandidates)
	}

	joint, cres, err := tripoll.WindowedClosureTimes(g, tripoll.NewTemporalPlan().Window(100, 400), tripoll.SurveyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cres.Triangles != 1 || joint.Total() != 1 {
		t.Errorf("window [100,400]: triangles=%d joint=%d, want 1/1", cres.Triangles, joint.Total())
	}

	// Temporal constraints without a Timestamps accessor are rejected.
	if _, err := tripoll.WindowedCount(g, tripoll.NewSurveyPlan[uint64]().CloseWithin(1), tripoll.SurveyOptions{}); err != tripoll.ErrPlanNoTimestamps {
		t.Errorf("invalid plan error = %v", err)
	}
}

func TestPublicFusedRun(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	edges := []tripoll.TemporalEdge{
		{U: 0, V: 1, Time: 100}, {U: 1, V: 2, Time: 105}, {U: 0, V: 2, Time: 110},
		{U: 3, V: 4, Time: 100}, {U: 4, V: 5, Time: 300}, {U: 3, V: 5, Time: 600},
		{U: 2, V: 3, Time: 200},
	}
	g := tripoll.BuildTemporal(w, edges)

	// The README two-analysis quickstart: count and closure times in one
	// fused traversal.
	var total uint64
	var joint *tripoll.Joint2D
	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
		tripoll.CountAnalysis[tripoll.Unit, uint64]().Bind(&total),
		tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(&joint))
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || res.Triangles != 2 || joint.Total() != 2 {
		t.Errorf("fused count=%d triangles=%d joint=%d, want 2/2/2", total, res.Triangles, joint.Total())
	}
	if len(res.Analyses) != 2 || res.Analyses[0] != "count" || res.Analyses[1] != "closure" {
		t.Errorf("Analyses = %v", res.Analyses)
	}

	// A fused run restricted by a plan: both analyses see only matching
	// triangles.
	var wtotal uint64
	var wjoint *tripoll.Joint2D
	wres, err := tripoll.Run(g, tripoll.SurveyOptions{}, tripoll.NewTemporalPlan().CloseWithin(50),
		tripoll.CountAnalysis[tripoll.Unit, uint64]().Bind(&wtotal),
		tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(&wjoint))
	if err != nil {
		t.Fatal(err)
	}
	if wtotal != 1 || wjoint.Total() != 1 || !wres.Planned {
		t.Errorf("planned fused: count=%d joint=%d planned=%v, want 1/1/true", wtotal, wjoint.Total(), wres.Planned)
	}
}
