package datagen

import (
	"testing"
)

func TestReexportsProduceData(t *testing.T) {
	if len(ErdosRenyi(50, 100, 1)) != 100 {
		t.Error("ErdosRenyi")
	}
	if len(BarabasiAlbert(100, 3, 1)) == 0 {
		t.Error("BarabasiAlbert")
	}
	if len(WattsStrogatz(50, 2, 0.1, 1)) == 0 {
		t.Error("WattsStrogatz")
	}
	if len(Complete(4)) != 6 {
		t.Error("Complete")
	}
	if len(ToTemporal(Complete(3))) != 3 {
		t.Error("ToTemporal")
	}
}

func TestRedditReexport(t *testing.T) {
	p := DefaultRedditParams()
	p.Users = 200
	p.Events = 1000
	edges := RedditLike(p)
	if len(edges) < 1000 {
		t.Errorf("events = %d", len(edges))
	}
}

func TestWebHostReexport(t *testing.T) {
	p := DefaultWebHostParams()
	p.Pages = 500
	p.IntraEdges = 1000
	p.InterEdges = 1000
	wh := WebHostLike(p)
	if len(wh.Edges) == 0 || len(wh.FQDN) != 500 {
		t.Error("WebHostLike")
	}
	if HubFQDNs[0] != "amazon.example" {
		t.Error("HubFQDNs")
	}
}

func TestRMATReexport(t *testing.T) {
	p := RMATParams{Scale: 8, Seed: 1}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	p.Generate(0, 100, func(u, v uint64) { count++ })
	if count != 100 {
		t.Errorf("generated %d", count)
	}
}
