// Package datagen exposes the synthetic workload generators as public API:
// classic random-graph models plus the Reddit-like temporal multigraph and
// the Web-Data-Commons-like host graph used by the paper reproduction (see
// DESIGN.md §2 for the substitution rationale).
package datagen

import (
	"tripoll/internal/gen"
	"tripoll/internal/rmat"
)

// ErdosRenyi, BarabasiAlbert, WattsStrogatz and Complete generate classic
// topologies as undirected edge lists.
var (
	ErdosRenyi     = gen.ErdosRenyi
	BarabasiAlbert = gen.BarabasiAlbert
	WattsStrogatz  = gen.WattsStrogatz
	Complete       = gen.Complete
	ToTemporal     = gen.ToTemporal
)

// RedditParams shapes the Reddit-like temporal multigraph generator.
type RedditParams = gen.RedditParams

// DefaultRedditParams returns a fast, triangle-rich configuration.
var DefaultRedditParams = gen.DefaultRedditParams

// RedditLike simulates a comment stream: preferential attachment, triadic
// closure, heavy-tailed inter-event times, repeat interactions.
var RedditLike = gen.RedditLike

// WebHostParams shapes the web host graph generator.
type WebHostParams = gen.WebHostParams

// WebHost is the generated host graph with per-vertex FQDN strings.
type WebHost = gen.WebHost

// DefaultWebHostParams returns a hub-heavy configuration.
var DefaultWebHostParams = gen.DefaultWebHostParams

// WebHostLike generates the host graph.
var WebHostLike = gen.WebHostLike

// HubFQDNs names the hub domains; index 0 plays Fig. 8's "amazon.com".
var HubFQDNs = gen.HubFQDNs

// RMATParams configures the R-MAT generator (Graph500 defaults).
type RMATParams = rmat.Params
