package tripoll

import (
	"tripoll/internal/analysis"
	"tripoll/internal/core"
	"tripoll/internal/engine"
)

// The unified analysis API: every triangle survey is an Analysis value —
// an accumulator factory, a per-triangle Observe, a commutative Merge and
// a Finalize — and Run executes any number of them in a single fused
// traversal (one dry run, one push, one pull). k fused analyses move the
// enumeration traffic once instead of k times; `tripoll-bench -exp fusion`
// measures the saving.
//
//	var total uint64
//	var joint *tripoll.Joint2D
//	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
//	    tripoll.CountAnalysis[tripoll.Unit, uint64]().Bind(&total),
//	    tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(&joint))
//
// The legacy free functions (Count, ClosureTimes, LocalVertexCounts, …)
// remain as thin wrappers over Run with the matching stock analysis.

// Analysis describes one triangle analysis as a first-class value; see
// the stock constructors below and core.Analysis for the contract each
// field must satisfy. Bind it to an output destination to attach it to a
// Run.
type Analysis[VM, EM, T any] = core.Analysis[VM, EM, T]

// AttachedAnalysis is an Analysis bound to its output via Bind, ready to
// fuse into a Run.
type AttachedAnalysis[VM, EM any] = core.Attached[VM, EM]

// Run executes every attached analysis in one fused traversal of g,
// optionally restricted (and communication-pruned) by a survey plan; pass
// nil for an unrestricted survey. Result.Analyses names the fused
// analyses; with none attached, Run degenerates to a pure count.
//
// Run is the single-shot form of the query engine: one ephemeral Engine,
// one traversal, no scheduler or cache. Long-lived services that answer
// many (possibly concurrent) questions of the same graphs should hold an
// Engine instead — concurrently submitted compatible queries then share
// traversals and repeated queries hit the result cache (DESIGN.md §10).
func Run[VM, EM any](g *Graph[VM, EM], opts SurveyOptions, plan *SurveyPlan[EM], analyses ...AttachedAnalysis[VM, EM]) (Result, error) {
	return engine.Once(g, opts, plan, analyses...)
}

// Stock analyses — the paper's surveys as fusable values.

// CountAnalysis counts observed triangles (Alg. 2 as an attachable value).
func CountAnalysis[VM, EM any]() Analysis[VM, EM, uint64] {
	return core.CountAnalysis[VM, EM]()
}

// VertexCountAnalysis accumulates per-vertex triangle participation
// counts (§5.3).
func VertexCountAnalysis[VM, EM any]() Analysis[VM, EM, map[uint64]uint64] {
	return core.VertexCountAnalysis[VM, EM]()
}

// EdgeKey canonically names an undirected edge (smaller endpoint first).
type EdgeKey = core.EdgeKey

// CanonEdge returns the canonical key for {u, v}.
var CanonEdge = core.CanonEdge

// EdgeCountAnalysis accumulates per-edge triangle participation counts,
// keyed by canonical edge — the truss decomposition input (§5.3).
func EdgeCountAnalysis[VM, EM any]() Analysis[VM, EM, map[EdgeKey]uint64] {
	return core.EdgeCountAnalysis[VM, EM]()
}

// LocalEdgeCounts computes per-edge triangle participation counts — the
// input to truss decomposition (§5.3).
//
// Deprecated: use Run with EdgeCountAnalysis, which fuses with other
// analyses in one traversal.
func LocalEdgeCounts[VM, EM any](g *Graph[VM, EM], opts SurveyOptions) (map[EdgeKey]uint64, Result) {
	return core.LocalEdgeCounts(g, opts)
}

// ClusteringAccum is ClusteringAnalysis's accumulator/result: per-vertex
// counts plus the derived statistics.
type ClusteringAccum = core.ClusteringAccum

// ClusteringAnalysis derives average and global clustering coefficients
// from fused per-vertex counts.
func ClusteringAnalysis[VM, EM any](g *Graph[VM, EM]) Analysis[VM, EM, ClusteringAccum] {
	return core.ClusteringAnalysis(g)
}

// MaxEdgeLabelAnalysis is Alg. 3: the distribution of the maximum edge
// label across triangles. distinctLabels applies the algorithm's guard
// that the three vertex labels be pairwise distinct; pass false on graphs
// whose vertices carry no labels.
func MaxEdgeLabelAnalysis[VM comparable](distinctLabels bool) Analysis[VM, uint64, map[uint64]uint64] {
	return core.MaxEdgeLabelAnalysis[VM](distinctLabels)
}

// ClosureTimeAnalysis is Alg. 4 (the §5.7 Reddit survey): the joint
// ceil-log₂ distribution of wedge opening and triangle closing times.
func ClosureTimeAnalysis[VM any]() Analysis[VM, uint64, *Joint2D] {
	return core.ClosureTimeAnalysis[VM]()
}

// DegreeTripleAnalysis counts log₂-bucketed degree triples (§5.9); vertex
// metadata must hold each vertex's degree.
func DegreeTripleAnalysis[EM any]() Analysis[uint64, EM, map[DegreeTriple]uint64] {
	return core.DegreeTripleAnalysis[EM]()
}

// DirectedCensusAnalysis classifies triangles of a directed input graph
// as cyclic, transitive, reciprocal-containing or undirected-containing.
func DirectedCensusAnalysis[VM, EM any]() Analysis[VM, DirectedMeta[EM], DirectedCensus] {
	return core.DirectedCensusAnalysis[VM, EM]()
}

// LabelIndexAnalysis builds the labeled triangle index of Reza et al.
// [45]: per-edge counts of triangles closing with each vertex label.
func LabelIndexAnalysis[VM comparable, EM any]() Analysis[VM, EM, LabelIndex[VM]] {
	return core.LabelIndexAnalysis[VM, EM]()
}

// TemporalWindowAnalysis counts triangles whose edge timestamps span at
// most delta. For a lone δ-window prefer a plan with CloseWithin, which
// also prunes the communication.
func TemporalWindowAnalysis[VM any](delta uint64) Analysis[VM, uint64, uint64] {
	return core.TemporalWindowAnalysis[VM](delta)
}

// TemporalSweepAnalysis evaluates every δ threshold in one pass; the
// result is one within-window count per delta, indexed like deltas.
func TemporalSweepAnalysis[VM any](deltas []uint64) Analysis[VM, uint64, []uint64] {
	return core.TemporalSweepAnalysis[VM](deltas)
}

// --- Truss analysis post-processing --------------------------------------

// TrussEdge is an undirected edge in canonical form for truss analysis.
type TrussEdge = analysis.Edge

// Truss analysis post-processing (single-machine peeling over
// survey-produced edge counts), the [15] application of local counts.
var (
	TrussDecomposition  = analysis.TrussDecomposition
	TrussFromEdgeCounts = analysis.TrussFromEdgeCounts
	TrussSizes          = analysis.TrussSizes
	MaxTruss            = analysis.MaxTruss
)
