package tripoll

import (
	"tripoll/internal/analysis"
	"tripoll/internal/core"
)

// EdgeKey canonically names an undirected edge (smaller endpoint first).
type EdgeKey = core.EdgeKey

// CanonEdge returns the canonical key for {u, v}.
var CanonEdge = core.CanonEdge

// LocalEdgeCounts computes per-edge triangle participation counts with a
// counting-set callback — the input to truss decomposition (§5.3).
func LocalEdgeCounts[VM, EM any](g *Graph[VM, EM], opts SurveyOptions) (map[EdgeKey]uint64, Result) {
	return core.LocalEdgeCounts(g, opts)
}

// TrussEdge is an undirected edge in canonical form for truss analysis.
type TrussEdge = analysis.Edge

// Truss analysis post-processing (single-machine peeling over
// survey-produced edge counts), the [15] application of local counts.
var (
	TrussDecomposition  = analysis.TrussDecomposition
	TrussFromEdgeCounts = analysis.TrussFromEdgeCounts
	TrussSizes          = analysis.TrussSizes
	MaxTruss            = analysis.MaxTruss
)
