package tripoll_test

import (
	"testing"

	"tripoll"
)

// TestStreamQuickstart exercises the public streaming surface end to end:
// seed, ingest, slide, snapshot — the README's streaming quickstart shape.
func TestStreamQuickstart(t *testing.T) {
	w := tripoll.NewWorld(3)
	defer w.Close()
	g := tripoll.BuildTemporal(w, []tripoll.TemporalEdge{
		{U: 0, V: 1, Time: 10}, {U: 1, V: 2, Time: 20}, {U: 0, V: 2, Time: 30},
	})

	keepFirst := func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	var total uint64
	var verts map[uint64]uint64
	s, err := tripoll.OpenStream(g,
		tripoll.StreamOptions[uint64]{MergeEdgeMeta: keepFirst},
		tripoll.NewTemporalPlan(),
		tripoll.StreamCountAnalysis[tripoll.Unit, uint64]().Bind(&total),
		tripoll.StreamVertexCountAnalysis[tripoll.Unit, uint64]().Bind(&verts),
	)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if s.Snapshot(); total != 1 {
		t.Fatalf("seed count = %d, want 1", total)
	}

	// One batch closes a second triangle {1,2,3} and opens a wedge.
	res, err := s.Ingest([]tripoll.StreamEdge[uint64]{
		{U: 1, V: 3, Meta: 40}, {U: 2, V: 3, Meta: 50}, {U: 3, V: 4, Meta: 60},
	})
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if !res.Delta || res.DeltaEdges != 3 || res.Triangles != 1 {
		t.Fatalf("batch result: Delta=%v DeltaEdges=%d Triangles=%d", res.Delta, res.DeltaEdges, res.Triangles)
	}
	if s.Snapshot(); total != 2 || verts[2] != 2 {
		t.Fatalf("after batch: total=%d verts=%v", total, verts)
	}

	// Sliding the window past t=15 retires {0,1}, destroying the seed
	// triangle ({1,2,3} survives: its oldest edge is t=20).
	ares, err := s.Advance(15)
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if ares.Rebuilt || ares.DeltaEdges != 1 || ares.Triangles != 1 {
		t.Fatalf("advance result: Rebuilt=%v DeltaEdges=%d Triangles=%d", ares.Rebuilt, ares.DeltaEdges, ares.Triangles)
	}
	st := s.Snapshot()
	if total != 1 || s.Triangles() != 1 {
		t.Fatalf("after expiry: total=%d net=%d", total, s.Triangles())
	}
	if st.Retired != 1 || st.Batches != 1 || st.Advances != 1 {
		t.Fatalf("stream stats: %+v", st)
	}

	// The materialized window snapshot agrees with a full survey.
	g2 := s.Materialize()
	if res := tripoll.Count(g2, tripoll.SurveyOptions{}); res.Triangles != 1 {
		t.Fatalf("materialized window count = %d, want 1", res.Triangles)
	}
}
