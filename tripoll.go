// Package tripoll is a Go implementation of TriPoll (Steil et al., SC
// 2021): distributed surveys of triangles in massive-scale temporal graphs
// with metadata.
//
// A survey enumerates every triangle of an undirected graph whose vertices
// and edges carry arbitrary metadata, and applies a user-defined callback
// to each triangle's six metadata items (three vertex metas, three edge
// metas), guaranteed colocated at the executing rank. Counting, closure-
// time analysis, label distributions and custom analyses are all callbacks
// over the same engine.
//
// The runtime simulates MPI ranks as goroutines exchanging serialized,
// buffered messages (optionally over loopback TCP); see DESIGN.md for the
// fidelity argument and internal/ygm for the communication layer.
//
// Quick start:
//
//	w := tripoll.NewWorld(4)
//	defer w.Close()
//	b := tripoll.NewGraphBuilder(w, tripoll.UnitCodec(), tripoll.UnitCodec(), tripoll.BuilderOptions[tripoll.Unit]{})
//	var g *tripoll.Graph[tripoll.Unit, tripoll.Unit]
//	w.Parallel(func(r *tripoll.Rank) {
//	    if r.ID() == 0 {
//	        b.AddEdge(r, 0, 1, tripoll.Unit{})
//	        b.AddEdge(r, 1, 2, tripoll.Unit{})
//	        b.AddEdge(r, 0, 2, tripoll.Unit{})
//	    }
//	    gg := b.Build(r)
//	    if r.ID() == 0 { g = gg }
//	})
//	res := tripoll.Count(g, tripoll.SurveyOptions{})
//	fmt.Println(res.Triangles) // 1
//
// Surveys can carry a SurveyPlan — edge-metadata predicates, temporal
// δ-windows and sliding time windows compiled into filters that prune
// communication before it leaves the rank (predicate pushdown; DESIGN.md
// §7). See NewTemporalPlan, WindowedCount and friends.
//
// Every stock survey is also available as an Analysis value; Run fuses any
// number of them into a single traversal, so asking k questions costs one
// enumeration instead of k (DESIGN.md §8):
//
//	var total uint64
//	var joint *tripoll.Joint2D
//	res, _ := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
//	    tripoll.CountAnalysis[tripoll.Unit, uint64]().Bind(&total),
//	    tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(&joint))
//
// When edges arrive as a timestamped stream, OpenStream maintains fused
// analyses incrementally over edge batches and a sliding window, without
// re-surveying per batch (DESIGN.md §9): see Stream, StreamAnalysis and
// the stock Stream*Analysis constructors in stream.go.
//
// Services answering many (possibly concurrent) questions hold a query
// Engine: graphs and streams register by name, clients submit
// serializable QuerySpecs from any goroutine, compatible concurrent
// queries coalesce into shared fused traversals, and repeated questions
// hit an epoch-keyed result cache (DESIGN.md §10); cmd/tripolld serves
// the same API over HTTP. See Engine, QuerySpec and NewTemporalQueryEngine.
package tripoll

import (
	"tripoll/internal/container"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// World is the communicator owning the simulated ranks.
type World = ygm.World

// Rank is one simulated MPI rank; SPMD code receives it in Parallel.
type Rank = ygm.Rank

// WorldOptions configures transports and buffering.
type WorldOptions = ygm.Options

// WorldStats aggregates transport traffic across a World's ranks
// (World.Stats; surfaced by tripolld's /metrics).
type WorldStats = ygm.Stats

// TransportChannel and TransportTCP select the batch transport.
const (
	TransportChannel = ygm.TransportChannel
	TransportTCP     = ygm.TransportTCP
)

// NewWorld creates a communicator with n ranks and default options,
// panicking on invalid configuration (n < 1).
func NewWorld(n int) *World { return ygm.MustWorld(n, ygm.Options{}) }

// NewWorldWith creates a communicator with explicit options.
func NewWorldWith(n int, opts WorldOptions) (*World, error) { return ygm.NewWorld(n, opts) }

// Codec serializes a metadata type across rank boundaries.
type Codec[T any] = serialize.Codec[T]

// Unit is the zero-byte dummy metadata for plain topology surveys.
type Unit = serialize.Unit

// Re-exported codec constructors for common metadata types.
var (
	UnitCodec    = serialize.UnitCodec
	BoolCodec    = serialize.BoolCodec
	Uint64Codec  = serialize.Uint64Codec
	Int64Codec   = serialize.Int64Codec
	Float64Codec = serialize.Float64Codec
	StringCodec  = serialize.StringCodec
	BytesCodec   = serialize.BytesCodec
)

// Pair and Triple are composite metadata/key types with codec combinators.
type (
	Pair[A, B any]      = serialize.Pair[A, B]
	Triple[A, B, C any] = serialize.Triple[A, B, C]
)

// PairCodec and TripleCodec compose element codecs.
func PairCodec[A, B any](a Codec[A], b Codec[B]) Codec[Pair[A, B]] {
	return serialize.PairCodec(a, b)
}

// TripleCodec composes three element codecs.
func TripleCodec[A, B, C any](a Codec[A], b Codec[B], c Codec[C]) Codec[Triple[A, B, C]] {
	return serialize.TripleCodec(a, b, c)
}

// Graph is the distributed degree-ordered graph with inlined metadata
// (DODGr); build one with a GraphBuilder, then survey it any number of
// times.
type Graph[VM, EM any] = graph.DODGr[VM, EM]

// GraphBuilder ingests undirected edges (and optional vertex metadata)
// from all ranks and assembles the Graph.
type GraphBuilder[VM, EM any] = graph.Builder[VM, EM]

// BuilderOptions configures partitioning and multi-edge merging.
type BuilderOptions[EM any] = graph.BuilderOptions[EM]

// Partitioners for vertex placement. SpanPartition confines a graph to a
// rank span — the placement replicated graphs (Engine.RegisterReplicated)
// build each copy with.
type (
	HashPartition   = graph.HashPartition
	CyclicPartition = graph.CyclicPartition
	SpanPartition   = graph.SpanPartition
)

// OrderingStrategy selects the vertex order <+ that orients the input into
// the directed survey graph: set it on BuilderOptions.Ordering.
type OrderingStrategy = graph.Ordering

// OrderDegree is the paper's degree-based order (the default);
// OrderDegeneracy runs a distributed k-core peel during Build, bounding
// every out-degree — and so every pushed wedge batch — by the graph's
// degeneracy.
const (
	OrderDegree     = graph.OrderDegree
	OrderDegeneracy = graph.OrderDegeneracy
)

// NewGraphBuilder creates a distributed graph builder. Call outside
// Parallel regions.
func NewGraphBuilder[VM, EM any](w *World, vm Codec[VM], em Codec[EM], opts BuilderOptions[EM]) *GraphBuilder[VM, EM] {
	return graph.NewBuilder(w, vm, em, opts)
}

// TemporalEdge is the on-disk edge representation of the CLI tools.
type TemporalEdge = graph.TemporalEdge

// ReadEdgeListFile and WriteEdgeListFile move edge lists to/from the
// whitespace text format ("u v [timestamp]").
var (
	ReadEdgeListFile  = graph.ReadEdgeListFile
	WriteEdgeListFile = graph.WriteEdgeListFile
)

// Counter is the distributed counting set of §4.1.4 — the standard
// accumulator for survey callbacks.
type Counter[K comparable] = container.Counter[K]

// CounterOptions tunes the counting set's per-rank cache.
type CounterOptions = container.CounterOptions

// NewCounter creates a distributed counting set. Call outside Parallel
// regions.
func NewCounter[K comparable](w *World, codec Codec[K], opts CounterOptions) *Counter[K] {
	return container.NewCounter(w, codec, opts)
}

// Map and Bag re-export the remaining YGM-style containers for custom
// survey pipelines.
type (
	Map[K comparable, V any] = container.Map[K, V]
	Bag[T any]               = container.Bag[T]
	Set[K comparable]        = container.Set[K]
)

// AllReduceSum and friends are the collective operations available between
// survey phases (Alg. 2's all_reduce).
var (
	AllReduceSum = ygm.AllReduceSum
	AllReduceMax = ygm.AllReduceMax
)

// Triangle is one discovered triangle with vertices in pivot order
// P <+ Q <+ R and all six metadata items.
type Triangle[VM, EM any] = core.Triangle[VM, EM]

// Callback is the survey operation executed once per triangle.
type Callback[VM, EM any] = core.Callback[VM, EM]

// SurveyOptions selects the algorithm (push-pull by default) and its
// tuning knobs.
type SurveyOptions = core.Options

// Mode selects Push-Only (Alg. 1) or Push-Pull (§4.4).
type Mode = core.Mode

// PushPull and PushOnly are the two survey algorithms.
const (
	PushPull = core.PushPull
	PushOnly = core.PushOnly
)

// Result reports triangle totals, per-phase times and communication.
type Result = core.Result

// PhaseStats is one phase's duration and traffic.
type PhaseStats = core.PhaseStats
