// FQDN survey: the §5.8 analysis on a web-host graph with string vertex
// metadata. Strings travel unpadded through the serialization layer; the
// survey counts 3-tuples of distinct FQDNs over all triangles with a
// custom Analysis value — rank-local map accumulators tree-reduced after
// one traversal, no distributed container traffic — then inspects the hub
// domain's co-occurrences.
package main

import (
	"fmt"
	"sort"

	"tripoll"
	"tripoll/datagen"
)

type fqdnTriple = tripoll.Triple[string, string, string]

// fqdnTripleAnalysis is a custom analysis on the unified API: count each
// sorted 3-tuple of pairwise distinct FQDNs. Observe runs on the
// discovering rank with all six metadata items colocated; Merge folds the
// per-rank maps during the lg(n)-level tree reduction.
func fqdnTripleAnalysis() tripoll.Analysis[string, tripoll.Unit, map[fqdnTriple]uint64] {
	return tripoll.Analysis[string, tripoll.Unit, map[fqdnTriple]uint64]{
		Name:     "fqdn-triples",
		NewAccum: func() map[fqdnTriple]uint64 { return map[fqdnTriple]uint64{} },
		Observe: func(_ *tripoll.Rank, acc map[fqdnTriple]uint64, t *tripoll.Triangle[string, tripoll.Unit]) map[fqdnTriple]uint64 {
			a, b, c := t.MetaP, t.MetaQ, t.MetaR
			if a == b || b == c || a == c {
				return acc
			}
			if a > b {
				a, b = b, a
			}
			if b > c {
				b, c = c, b
			}
			if a > b {
				a, b = b, a
			}
			acc[fqdnTriple{First: a, Second: b, Third: c}]++
			return acc
		},
		Merge: func(x, y map[fqdnTriple]uint64) map[fqdnTriple]uint64 {
			for k, v := range y {
				x[k] += v
			}
			return x
		},
	}
}

func main() {
	p := datagen.DefaultWebHostParams()
	p.Pages = 10_000
	p.IntraEdges = 40_000
	p.InterEdges = 60_000
	wh := datagen.WebHostLike(p)
	fmt.Printf("generated host graph: %d pages, %d links, hub=%q\n",
		p.Pages, len(wh.Edges), datagen.HubFQDNs[0])

	w := tripoll.NewWorld(4)
	defer w.Close()

	// Build with FQDN strings as vertex metadata.
	b := tripoll.NewGraphBuilder(w, tripoll.StringCodec(), tripoll.UnitCodec(),
		tripoll.BuilderOptions[tripoll.Unit]{})
	var g *tripoll.Graph[string, tripoll.Unit]
	w.Parallel(func(r *tripoll.Rank) {
		for i := r.ID(); i < len(wh.Edges); i += r.Size() {
			b.AddEdge(r, wh.Edges[i][0], wh.Edges[i][1], tripoll.Unit{})
		}
		for v := r.ID(); v < len(wh.FQDN); v += r.Size() {
			b.SetVertexMeta(r, uint64(v), wh.FQDN[v])
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})

	var triples map[fqdnTriple]uint64
	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil, fqdnTripleAnalysis().Bind(&triples))
	if err != nil {
		panic(err)
	}

	// Post-process "on a single machine": hub co-occurrence ranking.
	hub := datagen.HubFQDNs[0]
	co := map[string]uint64{}
	var hubTriples uint64
	for t, c := range triples {
		names := []string{t.First, t.Second, t.Third}
		isHub := false
		for _, n := range names {
			if n == hub {
				isHub = true
			}
		}
		if !isHub {
			continue
		}
		hubTriples += c
		for _, n := range names {
			if n != hub {
				co[n] += c
			}
		}
	}
	fmt.Printf("triangles: %d; distinct-FQDN 3-tuples: %d; involving hub: %d\n\n",
		res.Triangles, len(triples), hubTriples)

	type nc struct {
		name string
		c    uint64
	}
	var ranked []nc
	for n, c := range co {
		ranked = append(ranked, nc{n, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].name < ranked[j].name
	})
	fmt.Printf("FQDNs most frequently in triangles with %q:\n", hub)
	for i, r := range ranked {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-24s %d\n", r.name, r.c)
	}
}
