// FQDN survey: the §5.8 analysis on a web-host graph with string vertex
// metadata. Strings travel unpadded through the serialization layer; the
// survey counts 3-tuples of distinct FQDNs over all triangles with a
// distributed counting set, then inspects the hub domain's co-occurrences.
package main

import (
	"fmt"
	"sort"

	"tripoll"
	"tripoll/datagen"
)

type fqdnTriple = tripoll.Triple[string, string, string]

func main() {
	p := datagen.DefaultWebHostParams()
	p.Pages = 10_000
	p.IntraEdges = 40_000
	p.InterEdges = 60_000
	wh := datagen.WebHostLike(p)
	fmt.Printf("generated host graph: %d pages, %d links, hub=%q\n",
		p.Pages, len(wh.Edges), datagen.HubFQDNs[0])

	w := tripoll.NewWorld(4)
	defer w.Close()

	// Build with FQDN strings as vertex metadata.
	b := tripoll.NewGraphBuilder(w, tripoll.StringCodec(), tripoll.UnitCodec(),
		tripoll.BuilderOptions[tripoll.Unit]{})
	var g *tripoll.Graph[string, tripoll.Unit]
	w.Parallel(func(r *tripoll.Rank) {
		for i := r.ID(); i < len(wh.Edges); i += r.Size() {
			b.AddEdge(r, wh.Edges[i][0], wh.Edges[i][1], tripoll.Unit{})
		}
		for v := r.ID(); v < len(wh.FQDN); v += r.Size() {
			b.SetVertexMeta(r, uint64(v), wh.FQDN[v])
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})

	// Count 3-tuples of distinct FQDNs with a distributed counting set.
	tripleCodec := tripoll.TripleCodec(tripoll.StringCodec(), tripoll.StringCodec(), tripoll.StringCodec())
	counter := tripoll.NewCounter[fqdnTriple](w, tripleCodec, tripoll.CounterOptions{})
	s := tripoll.NewSurvey(g, tripoll.SurveyOptions{},
		func(r *tripoll.Rank, t *tripoll.Triangle[string, tripoll.Unit]) {
			a, b, c := t.MetaP, t.MetaQ, t.MetaR
			if a == b || b == c || a == c {
				return
			}
			if a > b {
				a, b = b, a
			}
			if b > c {
				b, c = c, b
			}
			if a > b {
				a, b = b, a
			}
			counter.Inc(r, fqdnTriple{First: a, Second: b, Third: c})
		})
	res := s.Run()

	var triples map[fqdnTriple]uint64
	w.Parallel(func(r *tripoll.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			triples = m
		}
	})

	// Post-process "on a single machine": hub co-occurrence ranking.
	hub := datagen.HubFQDNs[0]
	co := map[string]uint64{}
	var hubTriples uint64
	for t, c := range triples {
		names := []string{t.First, t.Second, t.Third}
		isHub := false
		for _, n := range names {
			if n == hub {
				isHub = true
			}
		}
		if !isHub {
			continue
		}
		hubTriples += c
		for _, n := range names {
			if n != hub {
				co[n] += c
			}
		}
	}
	fmt.Printf("triangles: %d; distinct-FQDN 3-tuples: %d; involving hub: %d\n\n",
		res.Triangles, len(triples), hubTriples)

	type nc struct {
		name string
		c    uint64
	}
	var ranked []nc
	for n, c := range co {
		ranked = append(ranked, nc{n, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].name < ranked[j].name
	})
	fmt.Printf("FQDNs most frequently in triangles with %q:\n", hub)
	for i, r := range ranked {
		if i >= 10 {
			break
		}
		fmt.Printf("  %-24s %d\n", r.name, r.c)
	}
}
