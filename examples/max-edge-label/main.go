// Max edge label: Alg. 3 of the paper — among triangles whose three vertex
// labels are pairwise distinct, the distribution of the maximum edge label.
// Vertex labels model user categories (buyer/seller/moderator); edge labels
// model interaction types. The survey runs as a MaxEdgeLabelAnalysis value
// attached to a Run.
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"tripoll"
	"tripoll/datagen"
)

func main() {
	w := tripoll.NewWorld(4)
	defer w.Close()

	topo := datagen.BarabasiAlbert(5_000, 6, 11)
	rng := rand.New(rand.NewSource(99))

	// Vertex label = category 0..3; edge label = interaction type 1..5.
	label := func(v uint64) uint64 { return v % 4 }
	b := tripoll.NewGraphBuilder(w, tripoll.Uint64Codec(), tripoll.Uint64Codec(),
		tripoll.BuilderOptions[uint64]{})
	var g *tripoll.Graph[uint64, uint64]
	edgeLabels := make([]uint64, len(topo))
	for i := range edgeLabels {
		edgeLabels[i] = uint64(1 + rng.Intn(5))
	}
	w.Parallel(func(r *tripoll.Rank) {
		vset := map[uint64]bool{}
		for i, e := range topo {
			vset[e[0]] = true
			vset[e[1]] = true
			if i%r.Size() == r.ID() {
				b.AddEdge(r, e[0], e[1], edgeLabels[i])
			}
		}
		for v := range vset {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, label(v))
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})

	// Alg. 3 as an analysis value: distinctLabels=true applies the guard
	// that the three vertex labels be pairwise distinct.
	var dist map[uint64]uint64
	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
		tripoll.MaxEdgeLabelAnalysis[uint64](true).Bind(&dist))
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangles: %d\n", res.Triangles)
	fmt.Println("max-edge-label distribution over distinct-vertex-label triangles:")
	var labels []uint64
	var total uint64
	for l, c := range dist {
		labels = append(labels, l)
		total += c
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	for _, l := range labels {
		fmt.Printf("  label %d: %d\n", l, dist[l])
	}
	fmt.Printf("triangles with all-distinct vertex labels: %d of %d\n", total, res.Triangles)
}
