// Distributed graph algorithms on the same runtime TriPoll runs on:
// BFS, connected components and PageRank over an AdjGraph, combined with
// a triangle survey — the "use the substrate for the whole analysis
// pipeline" workflow.
package main

import (
	"fmt"
	"sort"

	"tripoll"
	"tripoll/datagen"
)

func main() {
	w := tripoll.NewWorld(4)
	defer w.Close()

	// A social-like graph with hubs plus a detached community.
	edges := datagen.BarabasiAlbert(3_000, 4, 17)
	for i := uint64(0); i < 30; i++ { // detached ring 100000..100029
		edges = append(edges, [2]uint64{100000 + i, 100000 + (i+1)%30})
	}

	ag := tripoll.BuildAdj(w, edges)
	fmt.Printf("graph: |V|=%d |E|=%d\n", ag.NumVertices(), ag.NumEdges())

	comp := tripoll.NewConnectedComponents(ag).Run()
	sizes := map[uint64]int{}
	for _, c := range comp {
		sizes[c]++
	}
	fmt.Printf("connected components: %d (giant=%d vertices)\n", len(sizes), maxV(sizes))

	depths := tripoll.NewBFS(ag).Run(0)
	maxDepth := uint32(0)
	for _, d := range depths {
		if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Printf("BFS from 0: reached %d vertices, eccentricity %d\n", len(depths), maxDepth)

	pr := tripoll.NewPageRank(ag).Run(30, 0.85)
	type vr struct {
		v uint64
		r float64
	}
	var ranked []vr
	for v, r := range pr {
		ranked = append(ranked, vr{v, r})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].r > ranked[j].r })
	fmt.Println("top PageRank vertices (early BA vertices = hubs):")
	for i := 0; i < 5 && i < len(ranked); i++ {
		fmt.Printf("  v%-6d %.5f\n", ranked[i].v, ranked[i].r)
	}

	// Same substrate, triangle survey: triangles live in the giant
	// component; the ring contributes none.
	g := tripoll.BuildSimple(w, edges)
	res := tripoll.Count(g, tripoll.SurveyOptions{})
	fmt.Printf("triangles: %d\n", res.Triangles)
}

func maxV(m map[uint64]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
