// Truss decomposition: per-edge triangle counts from a distributed survey
// feed the k-truss peeling post-process — the truss application of local
// triangle counting the paper cites ([15], §5.3).
package main

import (
	"fmt"
	"sort"

	"tripoll"
	"tripoll/datagen"
)

func main() {
	w := tripoll.NewWorld(4)
	defer w.Close()

	// A community-structured graph: dense groups produce deep trusses.
	p := datagen.DefaultWebHostParams()
	p.Pages = 4_000
	p.IntraEdges = 30_000
	p.InterEdges = 20_000
	wh := datagen.WebHostLike(p)

	g := tripoll.BuildSimple(w, wh.Edges)
	info := tripoll.Info(g)
	fmt.Printf("graph: |V|=%d undirected |E|=%d\n", info.Vertices, info.PlusEdges)

	// Distributed survey → per-edge triangle counts.
	counts, res := tripoll.LocalEdgeCounts(g, tripoll.SurveyOptions{})
	fmt.Printf("triangles: %d; edges with triangle support: %d\n", res.Triangles, len(counts))

	// Single-machine peeling, seeded and verified by the survey's counts.
	var edges []tripoll.TrussEdge
	seen := map[tripoll.TrussEdge]bool{}
	for _, e := range wh.Edges {
		if e[0] == e[1] {
			continue
		}
		c := tripoll.TrussEdge{U: min64(e[0], e[1]), V: max64(e[0], e[1])}
		if !seen[c] {
			seen[c] = true
			edges = append(edges, c)
		}
	}
	countsByEdge := map[tripoll.TrussEdge]uint64{}
	for k, c := range counts {
		countsByEdge[tripoll.TrussEdge{U: k.First, V: k.Second}] = c
	}
	tr, disagreements := tripoll.TrussFromEdgeCounts(edges, countsByEdge)
	fmt.Printf("survey counts vs topology disagreements: %d (must be 0)\n\n", disagreements)

	sizes := tripoll.TrussSizes(tr)
	var ks []int
	for k := range sizes {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	fmt.Println("k-truss sizes (edges in each k-truss):")
	for _, k := range ks {
		fmt.Printf("  %2d-truss: %d edges\n", k, sizes[k])
	}
	fmt.Printf("max trussness: %d\n", tripoll.MaxTruss(tr))
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
