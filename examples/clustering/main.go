// Clustering: local triangle participation counts and clustering
// coefficients — the downstream consumers of per-vertex counting the paper
// cites (truss decomposition, clustering coefficient computation, §5.3) —
// computed as fused analyses: the Barabási–Albert graph answers both
// questions in a single traversal.
package main

import (
	"fmt"
	"sort"

	"tripoll"
	"tripoll/datagen"
)

func main() {
	w := tripoll.NewWorld(4)
	defer w.Close()

	// Compare a small-world lattice (locally clustered) against a rewired
	// one (clustering destroyed) — the classic Watts–Strogatz contrast.
	for _, beta := range []float64{0.0, 1.0} {
		edges := datagen.WattsStrogatz(3_000, 4, beta, 7)
		g := tripoll.BuildSimple(w, edges)
		var cs tripoll.ClusteringAccum
		res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
			tripoll.ClusteringAnalysis(g).Bind(&cs))
		if err != nil {
			panic(err)
		}
		fmt.Printf("Watts-Strogatz beta=%.1f: triangles=%d  avg cc=%.4f  transitivity=%.4f\n",
			beta, res.Triangles, cs.Stats.Average, cs.Stats.Global)
	}

	// Per-vertex counts on a hub-dominated graph: hubs accumulate the most
	// triangles. Both analyses fuse into one traversal — asking the second
	// question costs no additional enumeration.
	edges := datagen.BarabasiAlbert(4_000, 5, 3)
	g := tripoll.BuildSimple(w, edges)
	var counts map[uint64]uint64
	var cs tripoll.ClusteringAccum
	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
		tripoll.VertexCountAnalysis[tripoll.Unit, tripoll.Unit]().Bind(&counts),
		tripoll.ClusteringAnalysis(g).Bind(&cs))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nBarabasi-Albert: %d triangles across %d vertices (avg cc=%.4f, one fused traversal: %v)\n",
		res.Triangles, len(counts), cs.Stats.Average, res.Analyses)

	type vc struct{ v, c uint64 }
	var top []vc
	for v, c := range counts {
		top = append(top, vc{v, c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].c != top[j].c {
			return top[i].c > top[j].c
		}
		return top[i].v < top[j].v
	})
	fmt.Println("top triangle-participating vertices (early BA vertices = hubs):")
	for i, t := range top {
		if i >= 8 {
			break
		}
		fmt.Printf("  v%-6d t(v)=%d\n", t.v, t.c)
	}
}
