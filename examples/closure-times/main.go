// Closure times: the §5.7 Reddit survey (Alg. 4) on a generated temporal
// interaction multigraph. Duplicate interactions are reduced to the
// chronologically first edge during graph construction, then every
// triangle's wedge-opening and triangle-closing times are bucketed into a
// joint log₂ distribution — here as a ClosureTimeAnalysis fused into one
// Run together with the triangle count.
package main

import (
	"fmt"

	"tripoll"
	"tripoll/datagen"
)

func main() {
	p := datagen.DefaultRedditParams()
	p.Users = 10_000
	p.Events = 100_000
	events := datagen.RedditLike(p)
	fmt.Printf("simulated %d comment events among up to %d users\n", len(events), p.Users)

	w := tripoll.NewWorld(4)
	defer w.Close()
	g := tripoll.BuildTemporal(w, events) // keep-first multigraph reduction

	info := tripoll.Info(g)
	fmt.Printf("reduced graph: |V|=%d  undirected |E|=%d\n", info.Vertices, info.PlusEdges)

	// Alg. 4 as an attachable analysis: one traversal, the joint grid
	// tree-reduced across ranks afterwards. Attaching more analyses to
	// this Run would reuse the same enumeration.
	var joint *tripoll.Joint2D
	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil,
		tripoll.ClosureTimeAnalysis[tripoll.Unit]().Bind(&joint))
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangles surveyed: %d  (pulls granted: %d, %.1f per rank)\n\n",
		res.Triangles, res.PullsGranted, res.AvgPullsPerRank)

	fmt.Println(joint.MarginalY().Render("closing time distribution (log2 buckets)", "log2(dt_close)", 48))
	fmt.Println(joint.Render("joint distribution: wedge open vs triangle close", "log2(dt_open)", "log2(dt_close)"))
}
