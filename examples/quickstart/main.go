// Quickstart: build a small graph across simulated ranks and count its
// triangles — the Alg. 2 workflow on the public API.
package main

import (
	"fmt"

	"tripoll"
)

func main() {
	// Four simulated MPI ranks in one process.
	w := tripoll.NewWorld(4)
	defer w.Close()

	// A bowtie: two triangles sharing vertex 2.
	edges := [][2]uint64{
		{0, 1}, {1, 2}, {0, 2},
		{2, 3}, {3, 4}, {2, 4},
	}
	g := tripoll.BuildSimple(w, edges)

	info := tripoll.Info(g)
	fmt.Printf("|V|=%d  |E|=%d (directed)  |W+|=%d  dmax=%d\n",
		info.Vertices, info.DirectedEdges, info.Wedges, info.MaxDegree)

	// Simple global count (no callback).
	res := tripoll.Count(g, tripoll.SurveyOptions{})
	fmt.Printf("triangles: %d (mode %s, %v total)\n", res.Triangles, res.Mode, res.Total)

	// The same count as an explicit survey callback — the TriPoll pattern:
	// any analysis is a callback over triangle metadata.
	perRank := make([]int, w.Size())
	s := tripoll.NewSurvey(g, tripoll.SurveyOptions{Mode: tripoll.PushOnly},
		func(r *tripoll.Rank, t *tripoll.Triangle[tripoll.Unit, tripoll.Unit]) {
			perRank[r.ID()]++
			fmt.Printf("  rank %d found triangle (%d, %d, %d)\n", r.ID(), t.P, t.Q, t.R)
		})
	s.Run()
	fmt.Printf("callback firings per rank: %v\n", perRank)
}
