// Quickstart: build a small graph across simulated ranks and count its
// triangles — the Alg. 2 workflow on the unified analysis API — then ask
// the same question through the query engine's serializable QuerySpec
// surface.
package main

import (
	"context"
	"fmt"

	"tripoll"
)

func main() {
	// Four simulated MPI ranks in one process.
	w := tripoll.NewWorld(4)
	defer w.Close()

	// A bowtie: two triangles sharing vertex 2.
	edges := [][2]uint64{
		{0, 1}, {1, 2}, {0, 2},
		{2, 3}, {3, 4}, {2, 4},
	}
	g := tripoll.BuildSimple(w, edges)

	info := tripoll.Info(g)
	fmt.Printf("|V|=%d  |E|=%d (directed)  |W+|=%d  dmax=%d\n",
		info.Vertices, info.DirectedEdges, info.Wedges, info.MaxDegree)

	// Simple global count: a Run with no attached analyses degenerates to
	// Alg. 2 — and any number of analyses would fuse into this same
	// traversal (see examples/clustering).
	res, err := tripoll.Run(g, tripoll.SurveyOptions{}, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("triangles: %d (mode %s, %v total)\n", res.Triangles, res.Mode, res.Total)

	// The same count as an explicit survey callback — the TriPoll pattern:
	// any analysis is a callback over triangle metadata.
	perRank := make([]int, w.Size())
	s := tripoll.NewSurvey(g, tripoll.SurveyOptions{Mode: tripoll.PushOnly},
		func(r *tripoll.Rank, t *tripoll.Triangle[tripoll.Unit, tripoll.Unit]) {
			perRank[r.ID()]++
			fmt.Printf("  rank %d found triangle (%d, %d, %d)\n", r.ID(), t.P, t.Q, t.R)
		})
	s.Run()
	fmt.Printf("callback firings per rank: %v\n", perRank)

	// Services answering many questions hold a query Engine instead:
	// queries arrive as serializable specs, concurrent compatible
	// submissions coalesce into shared traversals, and repeated questions
	// hit the result cache. (Timestamped graphs get the full temporal spec
	// surface; see the README's "serving queries" section and
	// cmd/tripolld.)
	eng := tripoll.NewQueryEngine(countRegistry(), tripoll.QueryEngineOptions[tripoll.Unit]{})
	defer eng.Close()
	if err := eng.Register("bowtie", g); err != nil {
		panic(err)
	}
	job, err := eng.Submit(context.Background(), tripoll.QuerySpec{Analysis: "count"})
	if err != nil {
		panic(err)
	}
	qr, err := job.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Printf("engine answer: %v triangles (epoch %d, cached=%v)\n", qr.Value, qr.Epoch, qr.Cached)
}

// countRegistry shows how an analysis becomes spec-addressable: a registry
// entry binds a stock (or custom) Analysis value and reads its result
// back. Temporal graphs can use the prebuilt TemporalQueryRegistry.
func countRegistry() *tripoll.QueryRegistry[tripoll.Unit, tripoll.Unit] {
	reg := tripoll.NewQueryRegistry[tripoll.Unit, tripoll.Unit]()
	reg.Register("count", func(_ *tripoll.Graph[tripoll.Unit, tripoll.Unit], _ tripoll.QuerySpec) (tripoll.QueryAnalysisInstance[tripoll.Unit, tripoll.Unit], error) {
		out := new(uint64)
		return tripoll.QueryAnalysisInstance[tripoll.Unit, tripoll.Unit]{
			Attached: tripoll.CountAnalysis[tripoll.Unit, tripoll.Unit]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	return reg
}
