package tripoll

import (
	"tripoll/internal/engine"
	"tripoll/internal/serialize"
	"tripoll/internal/wal"
)

// Engine is the long-lived query engine (DESIGN.md §10): graphs and
// streams are registered by name, any goroutine submits QuerySpecs, and an
// admission scheduler coalesces compatible concurrently-pending queries —
// same graph and traversal options, union-able plans — into one fused
// traversal, re-restricting each job to its own plan at the callback so
// every job gets exactly its solo answer. An epoch-keyed result cache
// makes repeated questions free; stream mutations through the engine bump
// the epoch and invalidate precisely.
//
//	eng := tripoll.NewQueryEngine(tripoll.TemporalQueryRegistry(),
//	    tripoll.QueryEngineOptions[uint64]{Timestamps: func(t uint64) uint64 { return t }})
//	defer eng.Close()
//	eng.Register("web", g)
//	jobs, _ := eng.SubmitAll(ctx,
//	    tripoll.QuerySpec{Analysis: "count", Delta: tripoll.OptUint64(3600)},
//	    tripoll.QuerySpec{Analysis: "closure", Delta: tripoll.OptUint64(7200)})
//	for _, j := range jobs {
//	    res, err := j.Wait(ctx) // both answered by ONE traversal
//	    ...
//	}
//
// cmd/tripolld serves this API over HTTP; the legacy Run free function is
// a single-shot engine.
type Engine[VM, EM any] = engine.Engine[VM, EM]

// QueryEngineOptions configures an Engine; Timestamps enables the
// temporal constraints of QuerySpecs.
type QueryEngineOptions[EM any] = engine.EngineOptions[EM]

// QueryJob is the handle Submit returns: a one-shot future for a
// QueryResult.
type QueryJob = engine.Job

// QueryJobStatus is a job's lifecycle state.
type QueryJobStatus = engine.JobStatus

// Job lifecycle states.
const (
	QueryJobPending = engine.JobPending
	QueryJobRunning = engine.JobRunning
	QueryJobDone    = engine.JobDone
	QueryJobFailed  = engine.JobFailed
)

// QueryResult is one job's answer: the analysis value, the epoch it
// describes, cache/coalescing provenance and the shared traversal's
// statistics.
type QueryResult = engine.QueryResult

// EngineStats counts submissions, cache hits, dedupes, coalesced jobs,
// traversals and their traffic.
type EngineStats = engine.Stats

// AnalysisInfo describes one registered analysis — name, doc, argument
// schema and result shape — as reported by Engine.AnalysisInfos and
// tripolld's GET /v1/analyses.
type AnalysisInfo = engine.AnalysisInfo

// AnalysisArgSpec describes one JSON argument of a registered analysis.
type AnalysisArgSpec = engine.ArgSpec

// QueryIndexServer is a maintained index the engine consults before
// traversing: Engine.AttachIndex binds one to a registered graph, and
// queries the index can answer skip snapshot materialization and traversal
// entirely (QueryResult.IndexServed). NewTrussIndex implements it.
type QueryIndexServer = engine.IndexServer

// DurableStreamOptions configures Engine.OpenDurableStream: the WAL
// directory, fsync policy, segment rotation size and checkpoint cadence
// (DESIGN.md §11) — and, in a multi-process world, the Policy name the
// worker processes map back to their side of the stream configuration
// (DESIGN.md §14).
type DurableStreamOptions = engine.DurableOptions

// StreamMutator is the mutation-path counterpart of
// QueryEngineOptions.Fanout (DESIGN.md §14): when set, every durable
// stream mutation is WAL-logged driver-side and then broadcast to the
// worker processes for a collective apply, two-phase committed.
// dist.Cluster implements it.
type StreamMutator = engine.Mutator

// DurableStreamStatus reports a durable stream's WAL and checkpoint state
// (Engine.DurableStatus; surfaced by tripolld's /metrics).
type DurableStreamStatus = engine.DurableStatus

// WALStats counts a write-ahead log's extent and lifetime activity.
type WALStats = wal.Stats

// WAL fsync policies for DurableStreamOptions.Sync.
const (
	// WALSyncAlways fsyncs every appended mutation before it is applied —
	// an acknowledged batch survives any crash.
	WALSyncAlways = wal.SyncAlways
	// WALSyncNever leaves flushing to the OS; a crash may lose the most
	// recently acknowledged batches.
	WALSyncNever = wal.SyncNever
)

// ErrEngineClosed is returned by Submit and friends after Close.
var ErrEngineClosed = engine.ErrClosed

// ErrJobNotDone is returned by QueryJob.Result while the job is in flight.
var ErrJobNotDone = engine.ErrNotDone

// ErrEngineOverloaded is returned at admission when the pending queue is
// at QueryEngineOptions.MaxPending; retrying after a backoff is always
// safe (a shed job had no effect).
var ErrEngineOverloaded = engine.ErrOverloaded

// ErrWALCorrupt is the base class of unrecoverable write-ahead log damage
// (errors.Is).
var ErrWALCorrupt = wal.ErrCorrupt

// NewQueryEngine creates an engine over the given analysis registry and
// starts its scheduler. Register graphs, Submit from any goroutine, Close
// when done (registered graphs and their Worlds remain the caller's).
func NewQueryEngine[VM, EM any](reg *QueryRegistry[VM, EM], opts QueryEngineOptions[EM]) *Engine[VM, EM] {
	return engine.New(reg, opts)
}

// NewTemporalQueryEngine is the stock temporal configuration in one call:
// the TemporalQueryRegistry over identity timestamps — the engine behind
// cmd/tripoll and cmd/tripolld.
func NewTemporalQueryEngine() *Engine[serialize.Unit, uint64] {
	return engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(t uint64) uint64 { return t },
	})
}
