package gen

import (
	"fmt"
	"math/rand"
)

// WebHostParams shapes the Web-Data-Commons stand-in (§5.8): a hyperlink
// host graph whose vertices carry FQDN strings as metadata. The real graph
// has 3.56B pages / 224B edges; the generator reproduces its structural
// traits at small scale — Zipf-sized domain communities, dense intra-domain
// linking, a handful of hub domains (the "amazon.com" of Fig. 8) that are
// linked from everywhere, and hub-correlated co-citation (sites linking to
// a hub product page also link to the competing retailer), which is what
// makes the hub-conditioned pair distribution of Fig. 8 interesting.
type WebHostParams struct {
	// Pages is the number of vertices.
	Pages uint64
	// Domains is the number of FQDN communities.
	Domains int
	// Hubs is how many domains are global hubs (domain ids 0..Hubs-1).
	Hubs int
	// IntraEdges and InterEdges set the edge budget of each flavor.
	IntraEdges int
	InterEdges int
	// ZipfS is the Zipf exponent of the domain-size distribution.
	ZipfS float64
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultWebHostParams returns a configuration with pronounced hub
// structure at laptop scale.
func DefaultWebHostParams() WebHostParams {
	return WebHostParams{
		Pages:      40_000,
		Domains:    400,
		Hubs:       5,
		IntraEdges: 150_000,
		InterEdges: 250_000,
		ZipfS:      1.3,
		Seed:       7,
	}
}

// HubFQDNs names the hub domains; index 0 plays the "amazon.com" role of
// Fig. 8 and the rest are its satellite/competitor domains.
var HubFQDNs = []string{
	"amazon.example",
	"amazon-uk.example",
	"audible.example",
	"abebooks.example",
	"books-lib.example",
}

// WebHost is the generated host graph: edges plus per-vertex FQDN strings.
type WebHost struct {
	Edges [][2]uint64
	// FQDN[v] is vertex v's fully qualified domain name.
	FQDN []string
	// DomainOf[v] is the community index of vertex v.
	DomainOf []int
}

// FQDNOfDomain renders the metadata string of a domain index.
func FQDNOfDomain(d, hubs int) string {
	if d < hubs && d < len(HubFQDNs) {
		return HubFQDNs[d]
	}
	return fmt.Sprintf("site%04d.example", d)
}

// WebHostLike generates the host graph.
func WebHostLike(p WebHostParams) *WebHost {
	rng := rand.New(rand.NewSource(p.Seed))
	if p.Hubs > len(HubFQDNs) {
		p.Hubs = len(HubFQDNs)
	}
	if p.Domains < p.Hubs+1 {
		p.Domains = p.Hubs + 1
	}

	// Assign pages to domains: hubs get a fixed small share; the rest
	// follow a Zipf distribution over non-hub domains.
	domainOf := make([]int, p.Pages)
	zipf := rand.NewZipf(rng, p.ZipfS, 1, uint64(p.Domains-p.Hubs-1))
	for v := range domainOf {
		if rng.Float64() < 0.02*float64(p.Hubs) {
			domainOf[v] = rng.Intn(p.Hubs)
		} else {
			domainOf[v] = p.Hubs + int(zipf.Uint64())
		}
	}
	// Bucket pages by domain for intra-domain edge sampling.
	pagesOf := make([][]uint64, p.Domains)
	for v, d := range domainOf {
		pagesOf[d] = append(pagesOf[d], uint64(v))
	}

	edges := make([][2]uint64, 0, p.IntraEdges+p.InterEdges)

	// Intra-domain edges: pick a domain weighted by size (endpoint-list
	// style via uniform page pick), then a second page of the same domain.
	for i := 0; i < p.IntraEdges; i++ {
		u := uint64(rng.Int63n(int64(p.Pages)))
		peers := pagesOf[domainOf[u]]
		if len(peers) < 2 {
			continue
		}
		v := peers[rng.Intn(len(peers))]
		edges = append(edges, [2]uint64{u, v})
	}

	// Inter-domain edges: a page links to a hub page with high
	// probability; when it does, with probability 0.5 it also links to a
	// page of a *different* hub (co-citation — the Fig. 8 competitor rows).
	hubPages := make([][]uint64, p.Hubs)
	for d := 0; d < p.Hubs; d++ {
		hubPages[d] = pagesOf[d]
	}
	for i := 0; i < p.InterEdges; i++ {
		u := uint64(rng.Int63n(int64(p.Pages)))
		if rng.Float64() < 0.6 && p.Hubs > 0 {
			hd := rng.Intn(p.Hubs)
			if len(hubPages[hd]) == 0 {
				continue
			}
			h := hubPages[hd][rng.Intn(len(hubPages[hd]))]
			edges = append(edges, [2]uint64{u, h})
			if rng.Float64() < 0.5 && p.Hubs > 1 {
				hd2 := rng.Intn(p.Hubs - 1)
				if hd2 >= hd {
					hd2++
				}
				if len(hubPages[hd2]) > 0 {
					h2 := hubPages[hd2][rng.Intn(len(hubPages[hd2]))]
					edges = append(edges, [2]uint64{u, h2})
				}
			}
		} else {
			v := uint64(rng.Int63n(int64(p.Pages)))
			edges = append(edges, [2]uint64{u, v})
		}
	}

	fqdn := make([]string, p.Pages)
	for v := range fqdn {
		fqdn[v] = FQDNOfDomain(domainOf[v], p.Hubs)
	}
	return &WebHost{Edges: edges, FQDN: fqdn, DomainOf: domainOf}
}
