package gen

import (
	"math"
	"math/rand"

	"tripoll/internal/baseline"
	"tripoll/internal/graph"
)

// RedditParams shapes the Reddit stand-in (§5.2 of the paper): a temporal
// interaction multigraph between comment authors. The real dataset is 835M
// authors / 9.4B edges scraped from pushshift.io; this generator reproduces
// the mechanisms that give that graph its closure-time structure —
// preferential attachment (heavy-tailed degrees), triadic closure (replies
// inside an existing thread neighborhood close wedges), bursty heavy-tailed
// inter-event times, and repeated interaction (multi-edges, reduced to the
// chronologically first by the builder).
type RedditParams struct {
	// Users is the maximum author population.
	Users uint64
	// Events is the number of comment events (edge insertions).
	Events int
	// PJoin is the probability an event introduces a new author.
	PJoin float64
	// PClosure is the probability a comment goes to a
	// neighbor-of-a-neighbor (closing a wedge) rather than a
	// degree-preferential stranger.
	PClosure float64
	// MeanGap is the mean inter-event time in seconds; gaps are drawn from
	// a Pareto-like heavy tail so some wedges take much longer to close.
	MeanGap float64
	// Seed makes the stream reproducible.
	Seed int64
}

// DefaultRedditParams returns a configuration that produces a connected,
// triangle-rich temporal graph quickly.
func DefaultRedditParams() RedditParams {
	return RedditParams{
		Users:    50_000,
		Events:   400_000,
		PJoin:    0.05,
		PClosure: 0.35,
		MeanGap:  30,
		Seed:     42,
	}
}

// RedditLike simulates the comment stream and returns the temporal
// multigraph (one edge per event; duplicates intended — the DODGr builder's
// min-timestamp merge performs the §5.2 reduction).
func RedditLike(p RedditParams) []graph.TemporalEdge {
	if p.Users < 2 || p.Events < 1 {
		return nil
	}
	rng := rand.New(rand.NewSource(p.Seed))
	edges := make([]graph.TemporalEdge, 0, p.Events)

	// Adjacency is tracked to sample wedge closures; endpoint list powers
	// degree-preferential sampling.
	adj := make(map[uint64][]uint64)
	var endpoints []uint64
	now := uint64(1)

	addEdge := func(a, b uint64) {
		edges = append(edges, graph.TemporalEdge{U: a, V: b, Time: now})
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
		endpoints = append(endpoints, a, b)
	}

	nextUser := uint64(2)
	addEdge(0, 1)

	for len(edges) < p.Events {
		// Heavy-tailed gap: Pareto with xm chosen to match MeanGap at
		// alpha = 1.5 (mean = alpha·xm/(alpha−1) = 3·xm).
		alpha := 1.5
		xm := p.MeanGap / 3
		gap := xm / math.Pow(rng.Float64(), 1/alpha)
		if gap > 1e7 {
			gap = 1e7 // clamp pathological tail draws
		}
		now += uint64(gap) + 1

		if nextUser < p.Users && rng.Float64() < p.PJoin {
			// A new author replies to a degree-preferential target.
			target := endpoints[rng.Intn(len(endpoints))]
			addEdge(nextUser, target)
			nextUser++
			continue
		}
		// An existing author acts; pick them degree-preferentially.
		a := endpoints[rng.Intn(len(endpoints))]
		if rng.Float64() < p.PClosure {
			// Triadic closure: reply to a neighbor's neighbor.
			na := adj[a]
			b := na[rng.Intn(len(na))]
			nb := adj[b]
			c := nb[rng.Intn(len(nb))]
			if c != a {
				addEdge(a, c)
				continue
			}
		}
		// Preferential stranger.
		c := endpoints[rng.Intn(len(endpoints))]
		if c != a {
			addEdge(a, c)
		}
	}
	return edges
}

// RedditReference computes, serially, the exact joint closure-time bucket
// distribution the distributed ClosureTimes survey must reproduce. It
// mirrors the paper's Alg. 4 over the reduced (min-timestamp) simple graph.
// Returned map keys are (⌈log₂ Δt_open⌉, ⌈log₂ Δt_close⌉) pairs.
func RedditReference(edges []graph.TemporalEdge) map[[2]int]uint64 {
	// Reduce the multigraph: chronologically-first edge per pair.
	type pair = [2]uint64
	first := make(map[pair]uint64)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		k := pair{e.U, e.V}
		if k[0] > k[1] {
			k[0], k[1] = k[1], k[0]
		}
		if t, ok := first[k]; !ok || e.Time < t {
			first[k] = e.Time
		}
	}
	flat := make([][2]uint64, 0, len(first))
	times := make(map[pair]uint64, len(first))
	for k, t := range first {
		flat = append(flat, k)
		times[k] = t
	}
	out := make(map[[2]int]uint64)
	for _, tri := range baseline.SerialTriangles(flat) {
		t1 := times[normPair(tri[0], tri[1])]
		t2 := times[normPair(tri[0], tri[2])]
		t3 := times[normPair(tri[1], tri[2])]
		a, b, c := sort3(t1, t2, t3)
		out[[2]int{ceilLog2(b - a), ceilLog2(c - a)}]++
	}
	return out
}

func normPair(a, b uint64) [2]uint64 {
	if a > b {
		a, b = b, a
	}
	return [2]uint64{a, b}
}

func sort3(a, b, c uint64) (uint64, uint64, uint64) {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return a, b, c
}

func ceilLog2(x uint64) int {
	if x == 0 {
		return -1
	}
	n := 0
	for v := x - 1; v > 0; v >>= 1 {
		n++
	}
	return n
}
