package gen

import (
	"strings"
	"testing"

	"tripoll/internal/baseline"
	"tripoll/internal/stats"
)

func TestErdosRenyiShape(t *testing.T) {
	edges := ErdosRenyi(100, 500, 1)
	if len(edges) != 500 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, e := range edges {
		if e[0] >= 100 || e[1] >= 100 {
			t.Fatalf("edge out of range: %v", e)
		}
	}
	// Determinism.
	again := ErdosRenyi(100, 500, 1)
	for i := range edges {
		if edges[i] != again[i] {
			t.Fatal("not deterministic")
		}
	}
	other := ErdosRenyi(100, 500, 2)
	same := 0
	for i := range edges {
		if edges[i] == other[i] {
			same++
		}
	}
	if same > 50 {
		t.Errorf("seeds too correlated: %d identical", same)
	}
}

func TestBarabasiAlbertHeavyTail(t *testing.T) {
	edges := BarabasiAlbert(2000, 4, 3)
	deg := map[uint64]int{}
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	var max, total int
	for _, d := range deg {
		total += d
		if d > max {
			max = d
		}
	}
	mean := float64(total) / float64(len(deg))
	if float64(max) < 8*mean {
		t.Errorf("BA max degree %d vs mean %.1f: no hub", max, mean)
	}
	if BarabasiAlbert(1, 3, 1) != nil {
		t.Error("n<2 should return nil")
	}
}

func TestWattsStrogatzTriangleRich(t *testing.T) {
	// beta = 0 keeps the lattice: k=3 ring has many triangles.
	edges := WattsStrogatz(300, 3, 0, 1)
	if baseline.SerialCount(edges) == 0 {
		t.Error("WS lattice should be triangle-rich")
	}
	// Full rewire keeps edge count but destroys most structure.
	rew := WattsStrogatz(300, 3, 1.0, 1)
	if len(rew) == 0 {
		t.Error("rewired WS empty")
	}
}

func TestComplete(t *testing.T) {
	k5 := Complete(5)
	if len(k5) != 10 {
		t.Fatalf("K5 edges = %d", len(k5))
	}
	if baseline.SerialCount(k5) != 10 {
		t.Errorf("K5 triangles = %d", baseline.SerialCount(k5))
	}
}

func TestToTemporal(t *testing.T) {
	te := ToTemporal([][2]uint64{{1, 2}})
	if len(te) != 1 || te[0].U != 1 || te[0].V != 2 || te[0].Time != 0 {
		t.Errorf("ToTemporal = %v", te)
	}
}

func TestRedditLikeProperties(t *testing.T) {
	p := DefaultRedditParams()
	p.Users = 2000
	p.Events = 20000
	edges := RedditLike(p)
	if len(edges) < p.Events {
		t.Fatalf("events = %d, want >= %d", len(edges), p.Events)
	}
	// Timestamps strictly ordered by event (monotonically increasing).
	for i := 1; i < len(edges); i++ {
		if edges[i].Time < edges[i-1].Time {
			t.Fatal("timestamps not monotone")
		}
	}
	// Multigraph: duplicates must exist (repeat interactions).
	seen := map[[2]uint64]int{}
	for _, e := range edges {
		k := normPair(e.U, e.V)
		seen[k]++
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Error("no repeated interactions — not a multigraph")
	}
	// Triangle-rich once reduced.
	flat := make([][2]uint64, 0, len(seen))
	for k := range seen {
		flat = append(flat, k)
	}
	if baseline.SerialCount(flat) < 100 {
		t.Errorf("reduced graph has too few triangles: %d", baseline.SerialCount(flat))
	}
	// Determinism.
	again := RedditLike(p)
	if len(again) != len(edges) || again[100] != edges[100] {
		t.Error("not deterministic")
	}
	if RedditLike(RedditParams{Users: 1, Events: 5}) != nil {
		t.Error("degenerate params should return nil")
	}
}

func TestRedditReferenceAgreesWithDirectComputation(t *testing.T) {
	p := DefaultRedditParams()
	p.Users = 300
	p.Events = 3000
	edges := RedditLike(p)
	ref := RedditReference(edges)
	var total uint64
	for _, c := range ref {
		total += c
	}
	// Total closure pairs == triangle count of the reduced graph.
	seen := map[[2]uint64]bool{}
	for _, e := range edges {
		seen[normPair(e.U, e.V)] = true
	}
	flat := make([][2]uint64, 0, len(seen))
	for k := range seen {
		flat = append(flat, k)
	}
	if want := baseline.SerialCount(flat); total != want {
		t.Errorf("reference total %d != triangles %d", total, want)
	}
	// Buckets must use the shared CeilLog2 convention.
	for k := range ref {
		if k[0] > k[1] {
			t.Errorf("open bucket %d > close bucket %d", k[0], k[1])
		}
	}
}

func TestCeilLog2MatchesStats(t *testing.T) {
	for x := uint64(0); x < 1000; x++ {
		if ceilLog2(x) != stats.CeilLog2(x) {
			t.Fatalf("ceilLog2(%d) = %d, stats = %d", x, ceilLog2(x), stats.CeilLog2(x))
		}
	}
}

func TestWebHostLikeProperties(t *testing.T) {
	p := DefaultWebHostParams()
	p.Pages = 5000
	p.IntraEdges = 20000
	p.InterEdges = 30000
	wh := WebHostLike(p)
	if len(wh.FQDN) != int(p.Pages) || len(wh.DomainOf) != int(p.Pages) {
		t.Fatal("metadata arrays wrong length")
	}
	for v, f := range wh.FQDN {
		if f == "" {
			t.Fatalf("vertex %d has empty FQDN", v)
		}
		if wh.DomainOf[v] < 0 || wh.DomainOf[v] >= p.Domains {
			t.Fatalf("vertex %d bad domain %d", v, wh.DomainOf[v])
		}
		if !strings.HasSuffix(f, ".example") {
			t.Fatalf("FQDN %q not in .example", f)
		}
	}
	// The hub domain must be far better connected than the median domain.
	hubTouches := 0
	for _, e := range wh.Edges {
		if wh.FQDN[e[0]] == HubFQDNs[0] || wh.FQDN[e[1]] == HubFQDNs[0] {
			hubTouches++
		}
	}
	if hubTouches < len(wh.Edges)/50 {
		t.Errorf("hub domain touches only %d/%d edges", hubTouches, len(wh.Edges))
	}
	// Triangle-rich (co-citation plus intra-domain density).
	if baseline.SerialCount(wh.Edges) < 1000 {
		t.Errorf("webhost too few triangles: %d", baseline.SerialCount(wh.Edges))
	}
	// Determinism.
	again := WebHostLike(p)
	if len(again.Edges) != len(wh.Edges) || again.Edges[10] != wh.Edges[10] {
		t.Error("not deterministic")
	}
}

func TestFQDNOfDomain(t *testing.T) {
	if FQDNOfDomain(0, 5) != "amazon.example" {
		t.Error("hub 0 must be the amazon analog")
	}
	if FQDNOfDomain(7, 5) != "site0007.example" {
		t.Errorf("non-hub FQDN = %q", FQDNOfDomain(7, 5))
	}
}
