// Package gen provides synthetic dataset generators: classic random-graph
// models for testing (Erdős–Rényi, Barabási–Albert, Watts–Strogatz) and the
// two dataset stand-ins the experiments need — a Reddit-like temporal
// interaction multigraph (§5.2/§5.7) and a Web-Data-Commons-like host graph
// with FQDN string metadata (§5.8). All generators are deterministic in
// their seed.
package gen

import (
	"math/rand"

	"tripoll/internal/graph"
)

// ErdosRenyi generates m undirected edges drawn uniformly from n vertices
// (duplicates and self-loops possible, as in G(n, m) sampling with
// replacement; the builder deduplicates).
func ErdosRenyi(n uint64, m int, seed int64) [][2]uint64 {
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]uint64, m)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Int63n(int64(n))), uint64(rng.Int63n(int64(n)))}
	}
	return edges
}

// BarabasiAlbert generates a preferential-attachment graph: n vertices,
// each new vertex attaching m edges to existing vertices with probability
// proportional to degree. Produces the heavy-tailed degree distribution of
// social graphs (a LiveJournal/Friendster-shaped topology at small scale).
func BarabasiAlbert(n uint64, m int, seed int64) [][2]uint64 {
	if n < 2 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	// endpoint list: every edge endpoint appears once, so uniform sampling
	// from it is degree-proportional sampling.
	endpoints := make([]uint64, 0, 2*int(n)*m)
	edges := make([][2]uint64, 0, int(n)*m)
	endpoints = append(endpoints, 0, 1)
	edges = append(edges, [2]uint64{0, 1})
	for v := uint64(2); v < n; v++ {
		attach := m
		if int(v) < m {
			attach = int(v)
		}
		seen := map[uint64]bool{}
		for k := 0; k < attach; k++ {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == v || seen[u] {
				continue // skip rather than resample: keeps loop bounded
			}
			seen[u] = true
			edges = append(edges, [2]uint64{v, u})
			endpoints = append(endpoints, v, u)
		}
	}
	return edges
}

// WattsStrogatz generates a small-world ring lattice of n vertices with k
// neighbors per side, rewiring each edge with probability beta.
func WattsStrogatz(n uint64, k int, beta float64, seed int64) [][2]uint64 {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]uint64
	for v := uint64(0); v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + uint64(j)) % n
			if rng.Float64() < beta {
				u = uint64(rng.Int63n(int64(n)))
			}
			if u != v {
				edges = append(edges, [2]uint64{v, u})
			}
		}
	}
	return edges
}

// Complete returns K_n; handy for tests with known triangle counts.
func Complete(n uint64) [][2]uint64 {
	var edges [][2]uint64
	for u := uint64(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, [2]uint64{u, v})
		}
	}
	return edges
}

// ToTemporal attaches zero timestamps to a topology-only edge list.
func ToTemporal(edges [][2]uint64) []graph.TemporalEdge {
	out := make([]graph.TemporalEdge, len(edges))
	for i, e := range edges {
		out[i] = graph.TemporalEdge{U: e[0], V: e[1]}
	}
	return out
}
