package container

import (
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Bag is a distributed multiset of items with no placement semantics:
// items land on a rank chosen round-robin by the sender, which spreads load
// for later ForAllLocal processing. It is the standard YGM staging
// container for distributed ingestion (edge lists stream through a Bag in
// the graph builder's tests and tools).
type Bag[T any] struct {
	w      *ygm.World
	codec  serialize.Codec[T]
	shards [][]T
	next   []int // per-rank round-robin cursor
	hAdd   ygm.HandlerID
}

// NewBag creates a distributed bag.
func NewBag[T any](w *ygm.World, codec serialize.Codec[T]) *Bag[T] {
	b := &Bag[T]{
		w:      w,
		codec:  codec,
		shards: make([][]T, w.Size()),
		next:   make([]int, w.Size()),
	}
	b.hAdd = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := b.codec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt bag add: " + d.Err().Error())
		}
		b.shards[r.ID()] = append(b.shards[r.ID()], v)
	})
	return b
}

// Add places item on the next rank in round-robin order.
func (b *Bag[T]) Add(r *ygm.Rank, item T) {
	dest := b.next[r.ID()]
	b.next[r.ID()] = (dest + 1) % r.Size()
	e := r.Enc()
	b.codec.Encode(e, item)
	r.Async(dest, b.hAdd, e)
}

// AddLocal appends item to the local shard with no communication.
func (b *Bag[T]) AddLocal(r *ygm.Rank, item T) {
	b.shards[r.ID()] = append(b.shards[r.ID()], item)
}

// Local returns the local shard; read between barriers.
func (b *Bag[T]) Local(r *ygm.Rank) []T { return b.shards[r.ID()] }

// GlobalSize returns the total number of items (collective call).
func (b *Bag[T]) GlobalSize(r *ygm.Rank) uint64 {
	return ygm.AllReduceSum(r, uint64(len(b.shards[r.ID()])))
}

// ForAllLocal applies fn to every local item.
func (b *Bag[T]) ForAllLocal(r *ygm.Rank, fn func(item T)) {
	for _, v := range b.shards[r.ID()] {
		fn(v)
	}
}
