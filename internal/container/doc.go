// Package container provides the YGM-style distributed containers of
// §4.1.4 — the building blocks survey callbacks accumulate into when an
// answer must live across ranks rather than rank-local.
//
// Counter is the paper's counting set: Inc routes increments to the
// owning rank through the async runtime, with a per-rank write-back cache
// that batches hot keys before they cross the transport (the §4.1.4
// optimization that makes skewed label distributions affordable). Map,
// Set and Bag are the remaining general-purpose containers: hash-
// partitioned key/value storage with owner-side visitation, a distributed
// membership set, and an unordered spill bag for load-balanced collection.
//
// All containers follow the same discipline as the rest of the runtime:
// construct outside parallel regions (handler registration), mutate from
// any rank inside them, and reconcile at a Barrier — after which Gather
// (or visitation) sees a consistent global state. Since the unified
// analysis API (DESIGN.md §8), stock analyses accumulate rank-locally and
// tree-reduce instead, so these containers are for custom survey
// pipelines whose state genuinely must be distributed rather than merged
// once at the end.
package container
