package container

import (
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Map is the distributed hash map of §4.1.4: key→value pairs stored at
// deterministic ranks chosen by key hash. Mutations and visits are
// fire-and-forget RPCs with the visit pattern TriPoll's graph storage is
// built around: rather than fetching a value, computation is shipped to it.
type Map[K comparable, V any] struct {
	w      *ygm.World
	kCodec serialize.Codec[K]
	shards []map[K]V

	hInsert ygm.HandlerID
	hUpsert ygm.HandlerID
	hVisit  ygm.HandlerID

	insertCodec serialize.Codec[V]
	mergeFn     func(old, new V) V
	visitors    []VisitFunc[K, V]
}

// VisitFunc runs at the owning rank with the key, the value (present
// reports whether the key exists), and the argument stream of the visit
// message. It returns the new value and whether to store it.
type VisitFunc[K comparable, V any] func(r *ygm.Rank, key K, value V, present bool, args *serialize.Decoder) (V, bool)

// NewMap creates a distributed map. Visitor functions are registered up
// front (deterministically on all ranks) and referenced by index in visit
// messages, mirroring how YGM ships lambda offsets.
func NewMap[K comparable, V any](w *ygm.World, kCodec serialize.Codec[K], vCodec serialize.Codec[V], merge func(old, new V) V, visitors ...VisitFunc[K, V]) *Map[K, V] {
	m := &Map[K, V]{
		w:           w,
		kCodec:      kCodec,
		shards:      make([]map[K]V, w.Size()),
		insertCodec: vCodec,
		mergeFn:     merge,
		visitors:    visitors,
	}
	for i := range m.shards {
		m.shards[i] = make(map[K]V)
	}
	m.hInsert = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		k := m.kCodec.Decode(d)
		v := m.insertCodec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt map insert: " + d.Err().Error())
		}
		m.shards[r.ID()][k] = v
	})
	m.hUpsert = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		k := m.kCodec.Decode(d)
		v := m.insertCodec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt map upsert: " + d.Err().Error())
		}
		shard := m.shards[r.ID()]
		if old, ok := shard[k]; ok && m.mergeFn != nil {
			shard[k] = m.mergeFn(old, v)
		} else {
			shard[k] = v
		}
	})
	m.hVisit = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		idx := d.Uvarint()
		k := m.kCodec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt map visit: " + d.Err().Error())
		}
		shard := m.shards[r.ID()]
		v, ok := shard[k]
		nv, store := m.visitors[idx](r, k, v, ok, d)
		if store {
			shard[k] = nv
		}
	})
	return m
}

// Owner returns the rank that stores key.
func (m *Map[K, V]) Owner(key K) int {
	var e serialize.Encoder
	m.kCodec.Encode(&e, key)
	return ownerOfBytes(e.Bytes(), m.w.Size())
}

// Insert stores key→value, overwriting any existing value.
func (m *Map[K, V]) Insert(r *ygm.Rank, key K, value V) {
	e := r.Enc()
	m.kCodec.Encode(e, key)
	owner := ownerOfBytes(e.Bytes(), r.Size())
	m.insertCodec.Encode(e, value)
	r.Async(owner, m.hInsert, e)
}

// Upsert stores key→value, combining with the existing value through the
// merge function supplied at construction.
func (m *Map[K, V]) Upsert(r *ygm.Rank, key K, value V) {
	e := r.Enc()
	m.kCodec.Encode(e, key)
	owner := ownerOfBytes(e.Bytes(), r.Size())
	m.insertCodec.Encode(e, value)
	r.Async(owner, m.hUpsert, e)
}

// Visit ships computation to the key's owner: visitor (by registration
// index) runs there with the args encoded by fill. This is the
// DODGr.visit(v, func, args) primitive of §4.2.
func (m *Map[K, V]) Visit(r *ygm.Rank, key K, visitor int, fill func(e *serialize.Encoder)) {
	ke := r.Enc()
	m.kCodec.Encode(ke, key)
	owner := ownerOfBytes(ke.Bytes(), r.Size())
	r.ReleaseEnc(ke)

	e := r.Enc()
	e.PutUvarint(uint64(visitor))
	m.kCodec.Encode(e, key)
	if fill != nil {
		fill(e)
	}
	r.Async(owner, m.hVisit, e)
}

// LocalShard returns the pairs owned by rank r; read between barriers.
func (m *Map[K, V]) LocalShard(r *ygm.Rank) map[K]V { return m.shards[r.ID()] }

// GlobalSize returns the number of keys across all ranks (collective call).
func (m *Map[K, V]) GlobalSize(r *ygm.Rank) uint64 {
	return ygm.AllReduceSum(r, uint64(len(m.shards[r.ID()])))
}

// ForAllLocal applies fn to every locally owned pair.
func (m *Map[K, V]) ForAllLocal(r *ygm.Rank, fn func(key K, value V)) {
	for k, v := range m.shards[r.ID()] {
		fn(k, v)
	}
}
