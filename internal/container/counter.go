// Package container provides the composable distributed containers built on
// top of the ygm communication layer (§4.1.4 of the TriPoll paper). Each
// container hash-partitions its items across ranks; mutating operations are
// fire-and-forget RPCs that interleave freely with other message traffic,
// which is what lets survey callbacks increment counters on remote ranks
// without interfering with triangle identification messages.
package container

import (
	"hash/maphash"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

var containerSeed = maphash.MakeSeed()

// ownerOfBytes maps a serialized key to its owning rank.
func ownerOfBytes(b []byte, n int) int {
	return int(maphash.Bytes(containerSeed, b) % uint64(n))
}

// Counter is the distributed counting set of §4.1.4: it keeps one global
// count per key, sharded across ranks by key hash. Each rank holds a small
// write-back cache of recently incremented keys; cache entries are flushed
// to their owning rank when the cache grows past a threshold or at
// FlushCache/Barrier time. Counts are exact once a barrier has completed.
type Counter[K comparable] struct {
	w      *ygm.World
	codec  serialize.Codec[K]
	shards []map[K]uint64 // authoritative counts, indexed by owner rank
	caches []counterCache[K]
	hInc   ygm.HandlerID
	limit  int
}

type counterCache[K comparable] struct {
	pending map[K]uint64
}

// CounterOptions tunes the per-rank cache.
type CounterOptions struct {
	// CacheEntries is the flush threshold for each rank's write-back cache.
	// Zero selects the default (4096).
	CacheEntries int
}

// NewCounter creates a distributed counting set. Must be called outside a
// parallel region (it registers a handler).
func NewCounter[K comparable](w *ygm.World, codec serialize.Codec[K], opts CounterOptions) *Counter[K] {
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	c := &Counter[K]{
		w:      w,
		codec:  codec,
		shards: make([]map[K]uint64, w.Size()),
		caches: make([]counterCache[K], w.Size()),
		limit:  opts.CacheEntries,
	}
	for i := range c.shards {
		c.shards[i] = make(map[K]uint64)
		c.caches[i].pending = make(map[K]uint64)
	}
	c.hInc = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		k := c.codec.Decode(d)
		delta := d.Uvarint()
		if d.Err() != nil {
			panic("container: corrupt counter increment: " + d.Err().Error())
		}
		c.shards[r.ID()][k] += delta
	})
	return c
}

// Add increments key by delta. The increment lands in the local cache; it
// becomes globally visible after the cache flushes and a barrier completes.
func (c *Counter[K]) Add(r *ygm.Rank, key K, delta uint64) {
	cache := &c.caches[r.ID()]
	cache.pending[key] += delta
	if len(cache.pending) >= c.limit {
		c.FlushCache(r)
	}
}

// Inc increments key by one (the counters.increment of Alg. 3/4).
func (c *Counter[K]) Inc(r *ygm.Rank, key K) { c.Add(r, key, 1) }

// FlushCache sends all cached increments to their owning ranks.
func (c *Counter[K]) FlushCache(r *ygm.Rank) {
	cache := &c.caches[r.ID()]
	if len(cache.pending) == 0 {
		return
	}
	for k, delta := range cache.pending {
		e := r.Enc()
		c.codec.Encode(e, k)
		owner := ownerOfBytes(e.Bytes(), r.Size())
		e.PutUvarint(delta)
		r.Async(owner, c.hInc, e)
	}
	clear(cache.pending)
}

// Barrier flushes every rank's cache and waits for global quiescence. All
// ranks must call it collectively; afterwards counts are exact.
func (c *Counter[K]) Barrier(r *ygm.Rank) {
	c.FlushCache(r)
	r.Barrier()
	// Handlers triggered by other ranks' flushes may have run during the
	// barrier; a second flush is unnecessary because handlers write straight
	// to shards, never to caches.
}

// LocalShard returns the authoritative counts owned by rank r. The map must
// only be read between barriers.
func (c *Counter[K]) LocalShard(r *ygm.Rank) map[K]uint64 { return c.shards[r.ID()] }

// LocalSize returns the number of distinct keys owned by rank r.
func (c *Counter[K]) LocalSize(r *ygm.Rank) int { return len(c.shards[r.ID()]) }

// GlobalSize returns the number of distinct keys across all ranks
// (collective call).
func (c *Counter[K]) GlobalSize(r *ygm.Rank) uint64 {
	return ygm.AllReduceSum(r, uint64(len(c.shards[r.ID()])))
}

// GlobalTotal returns the sum of all counts (collective call).
func (c *Counter[K]) GlobalTotal(r *ygm.Rank) uint64 {
	var local uint64
	for _, v := range c.shards[r.ID()] {
		local += v
	}
	return ygm.AllReduceSum(r, local)
}

// Gather returns the full key→count map on every rank (collective call).
// Intended for post-processing of survey results; keys must be modest in
// number.
func (c *Counter[K]) Gather(r *ygm.Rank) map[K]uint64 {
	shards := ygm.AllGather(r, c.shards[r.ID()])
	out := make(map[K]uint64)
	for _, m := range shards {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// Reset clears all shards and caches (collective call between regions is
// the intended usage; within a region all ranks must call it together).
func (c *Counter[K]) Reset(r *ygm.Rank) {
	ygm.Rendezvous(r)
	clear(c.shards[r.ID()])
	clear(c.caches[r.ID()].pending)
	ygm.Rendezvous(r)
}
