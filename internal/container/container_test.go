package container

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func TestCounterBasic(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	c := NewCounter[uint64](w, serialize.Uint64Codec(), CounterOptions{})
	w.Parallel(func(r *ygm.Rank) {
		for k := 0; k < 100; k++ {
			c.Inc(r, uint64(k%10))
		}
		c.Barrier(r)
		total := c.GlobalTotal(r)
		if total != 400 {
			t.Errorf("total = %d, want 400", total)
		}
		if size := c.GlobalSize(r); size != 10 {
			t.Errorf("distinct = %d, want 10", size)
		}
		g := c.Gather(r)
		for k := uint64(0); k < 10; k++ {
			if g[k] != 40 {
				t.Errorf("key %d count = %d, want 40", k, g[k])
			}
		}
	})
}

func TestCounterCacheFlushThreshold(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	c := NewCounter[uint64](w, serialize.Uint64Codec(), CounterOptions{CacheEntries: 8})
	w.Parallel(func(r *ygm.Rank) {
		// Write more distinct keys than the cache holds; threshold flushes
		// must preserve exact totals.
		for k := 0; k < 1000; k++ {
			c.Add(r, uint64(k), 2)
		}
		c.Barrier(r)
		if total := c.GlobalTotal(r); total != 4000 {
			t.Errorf("total = %d, want 4000", total)
		}
		if size := c.GlobalSize(r); size != 1000 {
			t.Errorf("distinct = %d, want 1000", size)
		}
	})
}

func TestCounterStringKeys(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	c := NewCounter[string](w, serialize.StringCodec(), CounterOptions{})
	w.Parallel(func(r *ygm.Rank) {
		c.Inc(r, "amazon.example")
		c.Inc(r, fmt.Sprintf("site%d.example", r.ID()))
		c.Barrier(r)
		g := c.Gather(r)
		if g["amazon.example"] != 3 {
			t.Errorf(`count["amazon.example"] = %d, want 3`, g["amazon.example"])
		}
		if g["site1.example"] != 1 {
			t.Errorf(`count["site1.example"] = %d, want 1`, g["site1.example"])
		}
	})
}

func TestCounterPairKeys(t *testing.T) {
	// The Alg. 4 use case: counting (open, close) bucket pairs.
	type bucketPair = serialize.Pair[int64, int64]
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	c := NewCounter[bucketPair](w, serialize.PairCodec(serialize.Int64Codec(), serialize.Int64Codec()), CounterOptions{})
	w.Parallel(func(r *ygm.Rank) {
		c.Inc(r, bucketPair{First: 3, Second: 7})
		c.Barrier(r)
		g := c.Gather(r)
		if g[bucketPair{First: 3, Second: 7}] != 2 {
			t.Errorf("pair count = %v", g)
		}
	})
}

func TestCounterReset(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	c := NewCounter[uint64](w, serialize.Uint64Codec(), CounterOptions{})
	w.Parallel(func(r *ygm.Rank) {
		c.Inc(r, 1)
		c.Barrier(r)
		c.Reset(r)
		if got := c.GlobalTotal(r); got != 0 {
			t.Errorf("total after reset = %d", got)
		}
		c.Inc(r, 2)
		c.Barrier(r)
		if got := c.GlobalTotal(r); got != 2 {
			t.Errorf("total after reuse = %d", got)
		}
	})
}

func TestCounterMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		keys := 1 + rng.Intn(30)
		w := ygm.MustWorld(n, ygm.Options{})
		defer w.Close()
		c := NewCounter[uint64](w, serialize.Uint64Codec(), CounterOptions{CacheEntries: 1 + rng.Intn(16)})

		// Pre-generate per-rank increment scripts and a sequential reference.
		scripts := make([][][2]uint64, n)
		want := map[uint64]uint64{}
		for i := 0; i < n; i++ {
			ops := rng.Intn(300)
			for j := 0; j < ops; j++ {
				k, d := uint64(rng.Intn(keys)), uint64(1+rng.Intn(5))
				scripts[i] = append(scripts[i], [2]uint64{k, d})
				want[k] += d
			}
		}
		var got map[uint64]uint64
		w.Parallel(func(r *ygm.Rank) {
			for _, op := range scripts[r.ID()] {
				c.Add(r, op[0], op[1])
			}
			c.Barrier(r)
			if r.ID() == 0 {
				got = c.Gather(r)
			} else {
				c.Gather(r)
			}
		})
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMapInsertAndGlobalSize(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	m := NewMap[uint64, string](w, serialize.Uint64Codec(), serialize.StringCodec(), nil)
	w.Parallel(func(r *ygm.Rank) {
		for k := 0; k < 50; k++ {
			// All ranks write the same keys; last write wins, values agree.
			m.Insert(r, uint64(k), fmt.Sprintf("v%d", k))
		}
		r.Barrier()
		if got := m.GlobalSize(r); got != 50 {
			t.Errorf("GlobalSize = %d, want 50", got)
		}
		m.ForAllLocal(r, func(k uint64, v string) {
			if v != fmt.Sprintf("v%d", k) {
				t.Errorf("key %d has value %q", k, v)
			}
		})
	})
}

func TestMapUpsertMerges(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	m := NewMap[string, uint64](w, serialize.StringCodec(), serialize.Uint64Codec(),
		func(old, new uint64) uint64 { return old + new })
	w.Parallel(func(r *ygm.Rank) {
		m.Upsert(r, "k", 10)
		r.Barrier()
		if got := m.GlobalSize(r); got != 1 {
			t.Errorf("GlobalSize = %d", got)
		}
	})
	// Sum of three upserts of 10.
	var sum uint64
	w.Parallel(func(r *ygm.Rank) {
		m.ForAllLocal(r, func(k string, v uint64) {
			if r.ID() == m.Owner("k") {
				sum = v
			}
		})
	})
	if sum != 30 {
		t.Errorf("merged value = %d, want 30", sum)
	}
}

func TestMapVisitShipsComputation(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	touched := make([]int, 4)
	m := NewMap(w, serialize.Uint64Codec(), serialize.Uint64Codec(), nil,
		func(r *ygm.Rank, key uint64, value uint64, present bool, args *serialize.Decoder) (uint64, bool) {
			add := args.Uvarint()
			touched[r.ID()]++
			if !present {
				return add, true
			}
			return value + add, true
		})
	w.Parallel(func(r *ygm.Rank) {
		for k := 0; k < 20; k++ {
			m.Visit(r, uint64(k), 0, func(e *serialize.Encoder) { e.PutUvarint(1) })
		}
		r.Barrier()
	})
	sums := make([]uint64, 4)
	w.Parallel(func(r *ygm.Rank) {
		m.ForAllLocal(r, func(_ uint64, v uint64) { sums[r.ID()] += v })
	})
	var sum uint64
	for _, s := range sums {
		sum += s
	}
	if sum != 80 { // 4 ranks × 20 visits, each adding 1
		t.Errorf("sum = %d, want 80", sum)
	}
	total := 0
	for _, c := range touched {
		total += c
	}
	if total != 80 {
		t.Errorf("visits executed = %d, want 80", total)
	}
}

func TestSetInsertRemoveVisit(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	var hits, misses int
	s := NewSet(w, serialize.Uint64Codec(),
		func(r *ygm.Rank, key uint64, member bool, args *serialize.Decoder) {
			if member {
				hits++
			} else {
				misses++
			}
		})
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			for k := 0; k < 10; k++ {
				s.Insert(r, uint64(k))
			}
		}
		r.Barrier()
		if got := s.GlobalSize(r); got != 10 {
			t.Errorf("size = %d, want 10", got)
		}
		if r.ID() == 1 {
			s.Remove(r, 3)
			s.Remove(r, 4)
		}
		r.Barrier()
		if got := s.GlobalSize(r); got != 8 {
			t.Errorf("size after remove = %d, want 8", got)
		}
		if r.ID() == 2 {
			s.VisitIfMember(r, 5, 0, nil)  // hit
			s.VisitIfMember(r, 3, 0, nil)  // removed → miss
			s.VisitIfMember(r, 99, 0, nil) // never inserted → miss
		}
		r.Barrier()
	})
	if hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestBagRoundRobinAndGather(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	b := NewBag[uint64](w, serialize.Uint64Codec())
	w.Parallel(func(r *ygm.Rank) {
		for k := 0; k < 100; k++ {
			b.Add(r, uint64(r.ID()*1000+k))
		}
		b.AddLocal(r, 42)
		r.Barrier()
		if got := b.GlobalSize(r); got != 404 {
			t.Errorf("size = %d, want 404", got)
		}
		// Round-robin should spread items perfectly here.
		if got := len(b.Local(r)); got != 101 {
			t.Errorf("rank %d local = %d, want 101", r.ID(), got)
		}
		var sum uint64
		b.ForAllLocal(r, func(v uint64) { sum += v })
		if sum == 0 {
			t.Error("empty local sum")
		}
	})
}

func TestContainersShareWorldTraffic(t *testing.T) {
	// §4.1.4: counting-set flushes interleave with other message kinds on
	// the same world without interference.
	w := ygm.MustWorld(4, ygm.Options{BufferBytes: 64})
	defer w.Close()
	c := NewCounter[uint64](w, serialize.Uint64Codec(), CounterOptions{CacheEntries: 4})
	b := NewBag[string](w, serialize.StringCodec())
	m := NewMap[uint64, uint64](w, serialize.Uint64Codec(), serialize.Uint64Codec(),
		func(old, new uint64) uint64 { return old + new })
	w.Parallel(func(r *ygm.Rank) {
		for k := 0; k < 200; k++ {
			c.Inc(r, uint64(k%13))
			b.Add(r, "item")
			m.Upsert(r, uint64(k%7), 1)
		}
		c.Barrier(r)
		if got := c.GlobalTotal(r); got != 800 {
			t.Errorf("counter total = %d, want 800", got)
		}
		if got := b.GlobalSize(r); got != 800 {
			t.Errorf("bag size = %d, want 800", got)
		}
		var mapSum uint64
		m.ForAllLocal(r, func(_, v uint64) { mapSum += v })
		if got := ygm.AllReduceSum(r, mapSum); got != 800 {
			t.Errorf("map sum = %d, want 800", got)
		}
	})
}
