package container

import (
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Set is a distributed set of keys, hash-partitioned like Map. It supports
// the asynchronous operations that fit the fire-and-forget model: insert,
// remove, and visit-if-member (membership tests that need an answer are
// expressed as a continuation message rather than a reply).
type Set[K comparable] struct {
	w        *ygm.World
	codec    serialize.Codec[K]
	shards   []map[K]struct{}
	hInsert  ygm.HandlerID
	hRemove  ygm.HandlerID
	hIfIn    ygm.HandlerID
	visitors []func(r *ygm.Rank, key K, member bool, args *serialize.Decoder)
}

// NewSet creates a distributed set. Visitors run at the key's owner with
// the membership verdict; they are registered up front like Map visitors.
func NewSet[K comparable](w *ygm.World, codec serialize.Codec[K], visitors ...func(r *ygm.Rank, key K, member bool, args *serialize.Decoder)) *Set[K] {
	s := &Set[K]{
		w:        w,
		codec:    codec,
		shards:   make([]map[K]struct{}, w.Size()),
		visitors: visitors,
	}
	for i := range s.shards {
		s.shards[i] = make(map[K]struct{})
	}
	s.hInsert = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		k := s.codec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt set insert: " + d.Err().Error())
		}
		s.shards[r.ID()][k] = struct{}{}
	})
	s.hRemove = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		k := s.codec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt set remove: " + d.Err().Error())
		}
		delete(s.shards[r.ID()], k)
	})
	s.hIfIn = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		idx := d.Uvarint()
		k := s.codec.Decode(d)
		if d.Err() != nil {
			panic("container: corrupt set visit: " + d.Err().Error())
		}
		_, member := s.shards[r.ID()][k]
		s.visitors[idx](r, k, member, d)
	})
	return s
}

func (s *Set[K]) ownerOf(r *ygm.Rank, key K) int {
	e := r.Enc()
	s.codec.Encode(e, key)
	owner := ownerOfBytes(e.Bytes(), r.Size())
	r.ReleaseEnc(e)
	return owner
}

// Insert adds key to the set.
func (s *Set[K]) Insert(r *ygm.Rank, key K) {
	e := r.Enc()
	s.codec.Encode(e, key)
	owner := ownerOfBytes(e.Bytes(), r.Size())
	r.Async(owner, s.hInsert, e)
}

// Remove deletes key from the set.
func (s *Set[K]) Remove(r *ygm.Rank, key K) {
	e := r.Enc()
	s.codec.Encode(e, key)
	owner := ownerOfBytes(e.Bytes(), r.Size())
	r.Async(owner, s.hRemove, e)
}

// VisitIfMember runs visitor (by index) at key's owner with the membership
// verdict and the extra args encoded by fill.
func (s *Set[K]) VisitIfMember(r *ygm.Rank, key K, visitor int, fill func(e *serialize.Encoder)) {
	owner := s.ownerOf(r, key)
	e := r.Enc()
	e.PutUvarint(uint64(visitor))
	s.codec.Encode(e, key)
	if fill != nil {
		fill(e)
	}
	r.Async(owner, s.hIfIn, e)
}

// LocalShard returns the locally owned members; read between barriers.
func (s *Set[K]) LocalShard(r *ygm.Rank) map[K]struct{} { return s.shards[r.ID()] }

// GlobalSize returns the set cardinality (collective call).
func (s *Set[K]) GlobalSize(r *ygm.Rank) uint64 {
	return ygm.AllReduceSum(r, uint64(len(s.shards[r.ID()])))
}
