package analysis

import (
	"math/rand"
	"testing"

	"tripoll/internal/gen"
)

func edgesOf(raw [][2]uint64) []Edge {
	out := make([]Edge, 0, len(raw))
	for _, e := range raw {
		out = append(out, Edge{U: e[0], V: e[1]})
	}
	return out
}

func TestCanon(t *testing.T) {
	if Canon(5, 2) != (Edge{U: 2, V: 5}) || Canon(2, 5) != (Edge{U: 2, V: 5}) {
		t.Error("Canon")
	}
}

func TestTrussK4(t *testing.T) {
	// K4 is a 4-truss: every edge supports 2 triangles.
	tr := TrussDecomposition(edgesOf(gen.Complete(4)))
	if len(tr) != 6 {
		t.Fatalf("edges = %d", len(tr))
	}
	for e, k := range tr {
		if k != 4 {
			t.Errorf("edge %v trussness %d, want 4", e, k)
		}
	}
	if MaxTruss(tr) != 4 {
		t.Errorf("max truss = %d", MaxTruss(tr))
	}
}

func TestTrussK5(t *testing.T) {
	tr := TrussDecomposition(edgesOf(gen.Complete(5)))
	for e, k := range tr {
		if k != 5 {
			t.Errorf("edge %v trussness %d, want 5", e, k)
		}
	}
}

func TestTrussTriangleWithTail(t *testing.T) {
	// Triangle {0,1,2} is a 3-truss; pendant edge (2,3) is 2-truss only.
	tr := TrussDecomposition(edgesOf([][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}}))
	if tr[Canon(0, 1)] != 3 || tr[Canon(1, 2)] != 3 || tr[Canon(0, 2)] != 3 {
		t.Errorf("triangle edges: %v", tr)
	}
	if tr[Canon(2, 3)] != 2 {
		t.Errorf("pendant edge trussness = %d, want 2", tr[Canon(2, 3)])
	}
}

func TestTrussK4PlusTriangle(t *testing.T) {
	// K4 on {0..3} plus a triangle {3,4,5} sharing one vertex: the K4
	// stays a 4-truss, the extra triangle is a 3-truss.
	raw := append(gen.Complete(4), [][2]uint64{{3, 4}, {4, 5}, {3, 5}}...)
	tr := TrussDecomposition(edgesOf(raw))
	if tr[Canon(0, 1)] != 4 {
		t.Errorf("K4 edge trussness = %d", tr[Canon(0, 1)])
	}
	if tr[Canon(4, 5)] != 3 {
		t.Errorf("triangle edge trussness = %d", tr[Canon(4, 5)])
	}
	sizes := TrussSizes(tr)
	if sizes[4] != 6 { // exactly the K4's edges survive at k=4
		t.Errorf("4-truss size = %d, want 6", sizes[4])
	}
	if sizes[3] != 9 { // all 9 edges are in the 3-truss
		t.Errorf("3-truss size = %d, want 9", sizes[3])
	}
}

func TestTrussMonotoneProperty(t *testing.T) {
	// Trussness is sandwiched: 2 ≤ k(e) ≤ support(e)+2, and the k-truss
	// subgraphs are nested. Verify on random graphs.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		raw := gen.ErdosRenyi(30, 200, int64(trial))
		tr := TrussDecomposition(edgesOf(raw))
		for e, k := range tr {
			if k < 2 {
				t.Fatalf("edge %v trussness %d < 2", e, k)
			}
		}
		// Nestedness: recompute the (k=3)-truss subgraph directly; every
		// edge with trussness ≥ 4 must be inside it.
		var k3 []Edge
		for e, k := range tr {
			if k >= 3 {
				k3 = append(k3, e)
			}
		}
		tr3 := TrussDecomposition(k3)
		for e, k := range tr {
			if k >= 4 && tr3[e] < 4 {
				t.Fatalf("trial %d: edge %v has trussness %d overall but %d in 3-truss", trial, e, k, tr3[e])
			}
		}
	}
	_ = rng
}

func TestTrussHandlesDuplicatesAndLoops(t *testing.T) {
	tr := TrussDecomposition(edgesOf([][2]uint64{{0, 1}, {1, 0}, {1, 1}, {1, 2}, {0, 2}}))
	if len(tr) != 3 {
		t.Fatalf("edges = %d, want 3", len(tr))
	}
	if tr[Canon(0, 1)] != 3 {
		t.Errorf("trussness = %v", tr)
	}
}

func TestTrussEmpty(t *testing.T) {
	if len(TrussDecomposition(nil)) != 0 {
		t.Error("empty graph")
	}
	if MaxTruss(map[Edge]int{}) != 0 {
		t.Error("empty max truss")
	}
}

func TestTrussFromEdgeCountsVerifies(t *testing.T) {
	raw := gen.Complete(4)
	edges := edgesOf(raw)
	good := map[Edge]uint64{}
	for _, e := range edges {
		good[Canon(e.U, e.V)] = 2 // every K4 edge supports 2 triangles
	}
	tr, bad := TrussFromEdgeCounts(edges, good)
	if bad != 0 {
		t.Errorf("disagreements = %d with correct counts", bad)
	}
	if tr[Canon(0, 1)] != 4 {
		t.Errorf("trussness = %v", tr)
	}
	// Corrupt counts are detected.
	good[Canon(0, 1)] = 99
	_, bad = TrussFromEdgeCounts(edges, good)
	if bad != 1 {
		t.Errorf("disagreements = %d, want 1", bad)
	}
}
