// Package analysis implements downstream consumers of triangle surveys —
// the applications the paper cites as motivation for local triangle
// counting (§1, §5.3): k-truss decomposition [15] and triangle-based graph
// summaries. The distributed survey produces the per-edge counts; the
// decomposition itself is the standard single-machine peeling
// post-processing step.
package analysis

import (
	"sort"
)

// Edge is an undirected edge with canonical ordering (U < V).
type Edge struct {
	U, V uint64
}

// Canon returns the canonical form of {u, v}.
func Canon(u, v uint64) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// TrussDecomposition computes the trussness of every edge: the largest k
// such that the edge belongs to the k-truss (the maximal subgraph where
// every edge supports at least k−2 triangles). Input is the undirected
// simple edge set. Uses the standard peeling algorithm: repeatedly remove
// the edge with minimum support, decrementing the support of the edges it
// formed triangles with.
//
// Returns trussness per edge; isolated (triangle-free) edges have
// trussness 2.
func TrussDecomposition(edges []Edge) map[Edge]int {
	adj, uniq := buildAdj(edges)

	// Initial support: triangles through each edge.
	support := make(map[Edge]int, len(uniq))
	for _, e := range uniq {
		support[e] = countCommon(adj, e.U, e.V)
	}
	return peel(adj, uniq, support)
}

// TrussFromSupports peels with externally supplied initial supports (e.g.
// the per-edge triangle counts a distributed survey observed, or a
// maintained triangle-span index's window sums) instead of recounting
// common neighborhoods. When the supports equal the topology's true
// triangle counts the result is identical to TrussDecomposition — the peel
// itself is shared — which is what lets the distributed truss analyses and
// the incremental index skip the serial recount entirely.
func TrussFromSupports(edges []Edge, counts map[Edge]uint64) map[Edge]int {
	adj, uniq := buildAdj(edges)
	support := make(map[Edge]int, len(uniq))
	for _, e := range uniq {
		support[e] = int(counts[e])
	}
	return peel(adj, uniq, support)
}

// buildAdj canonicalizes and dedupes an edge list (self-loops dropped)
// into adjacency sets plus the unique edge list.
func buildAdj(edges []Edge) (map[uint64]map[uint64]bool, []Edge) {
	adj := make(map[uint64]map[uint64]bool)
	addDir := func(a, b uint64) {
		m, ok := adj[a]
		if !ok {
			m = make(map[uint64]bool)
			adj[a] = m
		}
		m[b] = true
	}
	seen := make(map[Edge]bool, len(edges))
	uniq := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		c := Canon(e.U, e.V)
		if seen[c] {
			continue
		}
		seen[c] = true
		uniq = append(uniq, c)
		addDir(c.U, c.V)
		addDir(c.V, c.U)
	}
	return adj, uniq
}

// peel runs the bucket-queue peeling over the given adjacency (consumed —
// edges are deleted as they peel) and initial supports. The peeled set per
// level k is order-invariant, so the result is deterministic regardless of
// map iteration order; the queue is still sorted per level so intermediate
// states are reproducible too.
func peel(adj map[uint64]map[uint64]bool, uniq []Edge, support map[Edge]int) map[Edge]int {
	trussness := make(map[Edge]int, len(uniq))
	alive := make(map[Edge]bool, len(uniq))
	for _, e := range uniq {
		alive[e] = true
	}
	remaining := len(uniq)
	k := 2
	for remaining > 0 {
		// Find the minimum support among alive edges.
		min := 1 << 30
		for e, ok := range alive {
			if ok && support[e] < min {
				min = support[e]
			}
		}
		if min+2 > k {
			k = min + 2
		}
		// Peel every alive edge with support ≤ k−2.
		var queue []Edge
		for e, ok := range alive {
			if ok && support[e] <= k-2 {
				queue = append(queue, e)
			}
		}
		sort.Slice(queue, func(i, j int) bool {
			if queue[i].U != queue[j].U {
				return queue[i].U < queue[j].U
			}
			return queue[i].V < queue[j].V
		})
		for len(queue) > 0 {
			e := queue[0]
			queue = queue[1:]
			if !alive[e] {
				continue
			}
			alive[e] = false
			trussness[e] = k
			remaining--
			// Each triangle (e.U, e.V, w) loses this edge; decrement the
			// other two edges' support.
			for w := range adj[e.U] {
				if w == e.V || !adj[e.V][w] {
					continue
				}
				for _, other := range []Edge{Canon(e.U, w), Canon(e.V, w)} {
					if alive[other] {
						support[other]--
						if support[other] <= k-2 {
							queue = append(queue, other)
						}
					}
				}
			}
			delete(adj[e.U], e.V)
			delete(adj[e.V], e.U)
		}
	}
	return trussness
}

func countCommon(adj map[uint64]map[uint64]bool, u, v uint64) int {
	a, b := adj[u], adj[v]
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for w := range a {
		if b[w] {
			n++
		}
	}
	return n
}

// MaxTruss returns the largest trussness value present.
func MaxTruss(trussness map[Edge]int) int {
	max := 0
	for _, k := range trussness {
		if k > max {
			max = k
		}
	}
	return max
}

// TrussSizes returns, for each k, how many edges have trussness ≥ k (the
// size of the k-truss).
func TrussSizes(trussness map[Edge]int) map[int]int {
	out := map[int]int{}
	maxK := MaxTruss(trussness)
	for k := 2; k <= maxK; k++ {
		for _, t := range trussness {
			if t >= k {
				out[k]++
			}
		}
	}
	return out
}

// TrussFromEdgeCounts seeds the peeling with externally computed per-edge
// triangle counts (e.g. from the distributed LocalEdgeCounts survey) and
// verifies them against the topology, returning an error count of
// disagreements. This is the integration point between the distributed
// survey and the decomposition.
func TrussFromEdgeCounts(edges []Edge, counts map[Edge]uint64) (map[Edge]int, int) {
	adj := make(map[uint64]map[uint64]bool)
	addDir := func(a, b uint64) {
		m, ok := adj[a]
		if !ok {
			m = make(map[uint64]bool)
			adj[a] = m
		}
		m[b] = true
	}
	seen := make(map[Edge]bool)
	var uniq []Edge
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		c := Canon(e.U, e.V)
		if seen[c] {
			continue
		}
		seen[c] = true
		uniq = append(uniq, c)
		addDir(c.U, c.V)
		addDir(c.V, c.U)
	}
	disagreements := 0
	for _, e := range uniq {
		if int(counts[e]) != countCommon(adj, e.U, e.V) {
			disagreements++
		}
	}
	return TrussDecomposition(uniq), disagreements
}
