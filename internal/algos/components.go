package algos

import (
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// ConnectedComponents labels every vertex with the minimum vertex id of
// its component via asynchronous label propagation: whenever a vertex's
// label shrinks, the new label is pushed to its neighbors; rounds continue
// until a global all-reduce sees no change. Returns {vertex → component}.
type ConnectedComponents struct {
	g     *AdjGraph
	hProp ygm.HandlerID
	state []ccState
}

type ccState struct {
	label   []uint64
	dirty   []int32
	inDirty []bool
}

// NewConnectedComponents prepares the algorithm (call outside regions).
func NewConnectedComponents(g *AdjGraph) *ConnectedComponents {
	c := &ConnectedComponents{g: g, state: make([]ccState, g.w.Size())}
	c.hProp = g.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		label := d.Uvarint()
		if d.Err() != nil {
			panic("algos: corrupt CC message: " + d.Err().Error())
		}
		rl := &g.local[r.ID()]
		i, ok := rl.index[v]
		if !ok {
			panic("algos: CC message for vertex not stored at its owner")
		}
		st := &c.state[r.ID()]
		if label < st.label[i] {
			st.label[i] = label
			if !st.inDirty[i] {
				st.inDirty[i] = true
				st.dirty = append(st.dirty, i)
			}
		}
	})
	return c
}

// Run executes label propagation collectively and returns the gathered
// component map.
func (c *ConnectedComponents) Run() map[uint64]uint64 {
	var out map[uint64]uint64
	c.g.w.Parallel(func(r *ygm.Rank) {
		rl := &c.g.local[r.ID()]
		st := &c.state[r.ID()]
		st.label = make([]uint64, len(rl.ids))
		st.inDirty = make([]bool, len(rl.ids))
		st.dirty = st.dirty[:0]
		for i, id := range rl.ids {
			st.label[i] = id
			st.inDirty[i] = true
			st.dirty = append(st.dirty, int32(i))
		}
		for {
			work := st.dirty
			st.dirty = nil
			for _, i := range work {
				st.inDirty[i] = false
			}
			for _, i := range work {
				label := st.label[i]
				for _, nbr := range rl.adj[i] {
					if nbr > label { // only shrinkable neighbors need the update
						e := r.Enc()
						e.PutUvarint(nbr)
						e.PutUvarint(label)
						r.Async(c.g.Owner(nbr), c.hProp, e)
					}
				}
			}
			r.Barrier()
			if ygm.AllReduceSum(r, uint64(len(st.dirty))) == 0 {
				break
			}
		}
		local := map[uint64]uint64{}
		for i, l := range st.label {
			local[rl.ids[i]] = l
		}
		gathered := ygm.AllGather(r, local)
		if r.ID() == 0 {
			out = map[uint64]uint64{}
			for _, m := range gathered {
				for v, l := range m {
					out[v] = l
				}
			}
		}
	})
	return out
}
