package algos

import (
	"math"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Unreached marks vertices not reached by a traversal.
const Unreached = math.MaxUint32

// BFS computes single-source shortest hop distances with a
// level-synchronous distributed traversal: each level's frontier sends
// asynchronous visit messages to neighbor owners; the termination-
// detecting barrier ends the level, and an all-reduce decides global
// convergence. Returns each rank's local {vertex → depth} map gathered
// into one map (Unreached vertices omitted).
type BFS struct {
	g      *AdjGraph
	hVisit ygm.HandlerID
	state  []bfsState
}

type bfsState struct {
	depth []uint32
	next  []int32 // local indices discovered this level
}

// NewBFS prepares a reusable BFS over g (registers handlers; call outside
// parallel regions).
func NewBFS(g *AdjGraph) *BFS {
	b := &BFS{g: g, state: make([]bfsState, g.w.Size())}
	b.hVisit = g.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		depth := uint32(d.Uvarint())
		if d.Err() != nil {
			panic("algos: corrupt BFS visit: " + d.Err().Error())
		}
		rl := &g.local[r.ID()]
		i, ok := rl.index[v]
		if !ok {
			panic("algos: BFS visit for vertex not stored at its owner")
		}
		st := &b.state[r.ID()]
		if depth < st.depth[i] {
			st.depth[i] = depth
			st.next = append(st.next, i)
		}
	})
	return b
}

// Run executes a BFS from source collectively and returns the gathered
// distance map on every rank.
func (b *BFS) Run(source uint64) map[uint64]uint32 {
	var out map[uint64]uint32
	b.g.w.Parallel(func(r *ygm.Rank) {
		rl := &b.g.local[r.ID()]
		st := &b.state[r.ID()]
		st.depth = make([]uint32, len(rl.ids))
		for i := range st.depth {
			st.depth[i] = Unreached
		}
		st.next = st.next[:0]
		if b.g.Owner(source) == r.ID() {
			if i, ok := rl.index[source]; ok {
				st.depth[i] = 0
				st.next = append(st.next, i)
			}
		}
		r.Barrier()

		for depth := uint32(1); ; depth++ {
			frontier := st.next
			st.next = nil
			for _, i := range frontier {
				for _, nbr := range rl.adj[i] {
					e := r.Enc()
					e.PutUvarint(nbr)
					e.PutUvarint(uint64(depth))
					r.Async(b.g.Owner(nbr), b.hVisit, e)
				}
			}
			r.Barrier() // level settled; st.next holds the new frontier
			if ygm.AllReduceSum(r, uint64(len(st.next))) == 0 {
				break
			}
		}

		local := map[uint64]uint32{}
		for i, d := range st.depth {
			if d != Unreached {
				local[rl.ids[i]] = d
			}
		}
		gathered := ygm.AllGather(r, local)
		if r.ID() == 0 {
			out = map[uint64]uint32{}
			for _, m := range gathered {
				for v, d := range m {
					out[v] = d
				}
			}
		}
	})
	return out
}
