package algos

import (
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// PageRank runs synchronous power iterations distributed over the ranks:
// every round each vertex scatters rank/degree to its neighbors' owners,
// a barrier settles the round, and the new ranks incorporate the damping
// term plus the uniformly redistributed dangling mass. Vertices here are
// those present in the AdjGraph; isolated vertices (degree 0) contribute
// dangling mass.
type PageRank struct {
	g     *AdjGraph
	hScat ygm.HandlerID
	state []prState
}

type prState struct {
	rank []float64
	acc  []float64
}

// NewPageRank prepares the algorithm (call outside regions).
func NewPageRank(g *AdjGraph) *PageRank {
	p := &PageRank{g: g, state: make([]prState, g.w.Size())}
	p.hScat = g.w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		share := d.Float64()
		if d.Err() != nil {
			panic("algos: corrupt PageRank message: " + d.Err().Error())
		}
		rl := &g.local[r.ID()]
		i, ok := rl.index[v]
		if !ok {
			panic("algos: PageRank message for vertex not stored at its owner")
		}
		p.state[r.ID()].acc[i] += share
	})
	return p
}

// Run executes iters damped power iterations (damping d, typically 0.85)
// and returns the gathered {vertex → rank} map, summing to 1.
func (p *PageRank) Run(iters int, damping float64) map[uint64]float64 {
	var out map[uint64]float64
	n := float64(p.g.NumVertices())
	p.g.w.Parallel(func(r *ygm.Rank) {
		rl := &p.g.local[r.ID()]
		st := &p.state[r.ID()]
		st.rank = make([]float64, len(rl.ids))
		st.acc = make([]float64, len(rl.ids))
		for i := range st.rank {
			st.rank[i] = 1 / n
		}
		r.Barrier()

		for it := 0; it < iters; it++ {
			var dangling float64
			for i := range st.rank {
				deg := len(rl.adj[i])
				if deg == 0 {
					dangling += st.rank[i]
					continue
				}
				share := st.rank[i] / float64(deg)
				for _, nbr := range rl.adj[i] {
					e := r.Enc()
					e.PutUvarint(nbr)
					e.PutFloat64(share)
					r.Async(p.g.Owner(nbr), p.hScat, e)
				}
			}
			r.Barrier()
			totalDangling := ygm.AllReduce(r, dangling, func(a, b float64) float64 { return a + b })
			for i := range st.rank {
				st.rank[i] = (1-damping)/n + damping*(st.acc[i]+totalDangling/n)
				st.acc[i] = 0
			}
			ygm.Rendezvous(r) // ranks settled before the next scatter reads them
		}

		local := map[uint64]float64{}
		for i, rv := range st.rank {
			local[rl.ids[i]] = rv
		}
		gathered := ygm.AllGather(r, local)
		if r.ID() == 0 {
			out = map[uint64]float64{}
			for _, m := range gathered {
				for v, rv := range m {
					out[v] = rv
				}
			}
		}
	})
	return out
}
