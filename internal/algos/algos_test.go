package algos

import (
	"math"
	"math/rand"
	"testing"

	"tripoll/internal/gen"
	"tripoll/internal/ygm"
)

func buildAdjGraph(t testing.TB, nranks int, edges [][2]uint64) (*ygm.World, *AdjGraph) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := NewAdjBuilder(w)
	var g *AdjGraph
	w.Parallel(func(r *ygm.Rank) {
		for i, e := range edges {
			if i%r.Size() == r.ID() {
				b.AddEdge(r, e[0], e[1])
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

// serialBFS is the reference implementation.
func serialBFS(edges [][2]uint64, source uint64) map[uint64]uint32 {
	adj := map[uint64][]uint64{}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	depth := map[uint64]uint32{source: 0}
	if _, ok := adj[source]; !ok {
		return depth
	}
	queue := []uint64{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, n := range adj[v] {
			if _, seen := depth[n]; !seen {
				depth[n] = depth[v] + 1
				queue = append(queue, n)
			}
		}
	}
	return depth
}

func TestAdjGraphBuild(t *testing.T) {
	w, g := buildAdjGraph(t, 3, [][2]uint64{{0, 1}, {1, 2}, {1, 2}, {2, 2}, {2, 0}})
	defer w.Close()
	if g.NumVertices() != 3 {
		t.Errorf("|V| = %d", g.NumVertices())
	}
	if g.NumEdges() != 3 { // dedup + dropped self-loop
		t.Errorf("|E| = %d", g.NumEdges())
	}
}

func TestBFSPath(t *testing.T) {
	w, g := buildAdjGraph(t, 2, [][2]uint64{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	defer w.Close()
	got := NewBFS(g).Run(0)
	for v, want := range map[uint64]uint32{0: 0, 1: 1, 2: 2, 3: 3, 4: 4} {
		if got[v] != want {
			t.Errorf("depth(%d) = %d, want %d", v, got[v], want)
		}
	}
}

func TestBFSMatchesSerialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		edges := gen.ErdosRenyi(60, 150, int64(trial))
		want := serialBFS(edges, edges[0][0])
		w, g := buildAdjGraph(t, 1+trial%4, edges)
		b := NewBFS(g)
		got := b.Run(edges[0][0])
		if len(got) != len(want) {
			t.Fatalf("trial %d: reached %d, want %d", trial, len(got), len(want))
		}
		for v, d := range want {
			if got[v] != d {
				t.Errorf("trial %d: depth(%d) = %d, want %d", trial, v, got[v], d)
			}
		}
		// Reusable across sources.
		src2 := edges[1][1]
		want2 := serialBFS(edges, src2)
		got2 := b.Run(src2)
		if len(got2) != len(want2) {
			t.Errorf("trial %d rerun: reached %d, want %d", trial, len(got2), len(want2))
		}
		w.Close()
	}
	_ = rng
}

func TestBFSDisconnected(t *testing.T) {
	w, g := buildAdjGraph(t, 2, [][2]uint64{{0, 1}, {5, 6}})
	defer w.Close()
	got := NewBFS(g).Run(0)
	if len(got) != 2 {
		t.Errorf("reached = %v", got)
	}
	if _, ok := got[5]; ok {
		t.Error("crossed components")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Three components: {0,1,2}, {10,11}, {20}... isolated vertices only
	// exist if they have edges, so {20,21}.
	w, g := buildAdjGraph(t, 3, [][2]uint64{{0, 1}, {1, 2}, {10, 11}, {20, 21}})
	defer w.Close()
	comp := NewConnectedComponents(g).Run()
	if comp[0] != 0 || comp[1] != 0 || comp[2] != 0 {
		t.Errorf("component A: %v", comp)
	}
	if comp[10] != 10 || comp[11] != 10 {
		t.Errorf("component B: %v", comp)
	}
	if comp[20] != 20 || comp[21] != 20 {
		t.Errorf("component C: %v", comp)
	}
}

func TestConnectedComponentsMatchesBFS(t *testing.T) {
	edges := gen.ErdosRenyi(80, 90, 9) // sparse → several components
	w, g := buildAdjGraph(t, 4, edges)
	defer w.Close()
	comp := NewConnectedComponents(g).Run()
	// Two vertices share a component iff BFS from one reaches the other.
	bfs := NewBFS(g)
	seeds := []uint64{edges[0][0], edges[1][0], edges[2][1]}
	for _, s := range seeds {
		reach := bfs.Run(s)
		for v := range reach {
			if comp[v] != comp[s] {
				t.Errorf("BFS reaches %d from %d but components differ (%d vs %d)", v, s, comp[v], comp[s])
			}
		}
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a cycle (2-regular), PageRank is exactly uniform.
	var edges [][2]uint64
	const n = 20
	for i := uint64(0); i < n; i++ {
		edges = append(edges, [2]uint64{i, (i + 1) % n})
	}
	w, g := buildAdjGraph(t, 3, edges)
	defer w.Close()
	pr := NewPageRank(g).Run(30, 0.85)
	for v, r := range pr {
		if math.Abs(r-1.0/n) > 1e-9 {
			t.Errorf("rank(%d) = %v, want %v", v, r, 1.0/n)
		}
	}
}

func TestPageRankSumsToOneAndRanksHubs(t *testing.T) {
	edges := gen.BarabasiAlbert(500, 3, 5)
	w, g := buildAdjGraph(t, 4, edges)
	defer w.Close()
	pr := NewPageRank(g).Run(40, 0.85)
	var sum float64
	for _, r := range pr {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %v", sum)
	}
	// The max-degree vertex must outrank the median vertex decisively.
	deg := map[uint64]int{}
	for _, e := range edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	var hub uint64
	for v, d := range deg {
		if d > deg[hub] {
			hub = v
		}
	}
	above := 0
	for _, r := range pr {
		if pr[hub] >= r {
			above++
		}
	}
	if float64(above) < 0.99*float64(len(pr)) {
		t.Errorf("hub rank %v not near top (above %d/%d)", pr[hub], above, len(pr))
	}
}

func TestPageRankMatchesSerial(t *testing.T) {
	edges := gen.ErdosRenyi(40, 200, 21)
	w, g := buildAdjGraph(t, 3, edges)
	defer w.Close()
	got := NewPageRank(g).Run(25, 0.85)

	// Serial reference with identical dangling handling.
	adj := map[uint64][]uint64{}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	// Dedup neighbor lists like the builder does.
	for v := range adj {
		seen := map[uint64]bool{}
		out := adj[v][:0]
		for _, n := range adj[v] {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
		adj[v] = out
	}
	n := float64(len(adj))
	rank := map[uint64]float64{}
	for v := range adj {
		rank[v] = 1 / n
	}
	for it := 0; it < 25; it++ {
		acc := map[uint64]float64{}
		var dangling float64
		for v, r := range rank {
			if len(adj[v]) == 0 {
				dangling += r
				continue
			}
			share := r / float64(len(adj[v]))
			for _, nb := range adj[v] {
				acc[nb] += share
			}
		}
		for v := range rank {
			rank[v] = (1-0.85)/n + 0.85*(acc[v]+dangling/n)
		}
	}
	for v, want := range rank {
		if math.Abs(got[v]-want) > 1e-9 {
			t.Errorf("rank(%d) = %v, want %v", v, got[v], want)
		}
	}
}
