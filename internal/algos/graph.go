// Package algos provides classic distributed graph algorithms — BFS,
// connected components, PageRank — on the ygm substrate. TriPoll itself is
// triangle-specific, but its communication layer is general (YGM ships
// comparable utilities); these algorithms double as stress tests of the
// runtime's async/barrier semantics and as building blocks for survey
// post-processing (e.g. restricting a closure-time survey to the giant
// component).
package algos

import (
	"sort"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// AdjGraph is a distributed full-adjacency undirected graph (unlike the
// DODGr, both directions of every edge are stored), hash-partitioned by
// vertex.
type AdjGraph struct {
	w     *ygm.World
	local []adjLocal
	hEdge ygm.HandlerID

	numVertices uint64
	numEdges    uint64 // undirected count
}

type adjLocal struct {
	index map[uint64]int32
	ids   []uint64
	adj   [][]uint64
}

// Owner returns the rank storing vertex v.
func (g *AdjGraph) Owner(v uint64) int { return int(graph.Mix64(v) % uint64(g.w.Size())) }

// World returns the communicator.
func (g *AdjGraph) World() *ygm.World { return g.w }

// NumVertices returns |V|.
func (g *AdjGraph) NumVertices() uint64 { return g.numVertices }

// NumEdges returns the undirected edge count after deduplication.
func (g *AdjGraph) NumEdges() uint64 { return g.numEdges }

// AdjBuilder ingests undirected edges; create outside parallel regions.
type AdjBuilder struct {
	g *AdjGraph
}

// NewAdjBuilder creates a builder over w.
func NewAdjBuilder(w *ygm.World) *AdjBuilder {
	g := &AdjGraph{w: w, local: make([]adjLocal, w.Size())}
	for i := range g.local {
		g.local[i].index = make(map[uint64]int32)
	}
	g.hEdge = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		u := d.Uvarint()
		v := d.Uvarint()
		if d.Err() != nil {
			panic("algos: corrupt edge message: " + d.Err().Error())
		}
		rl := &g.local[r.ID()]
		i, ok := rl.index[u]
		if !ok {
			i = int32(len(rl.ids))
			rl.index[u] = i
			rl.ids = append(rl.ids, u)
			rl.adj = append(rl.adj, nil)
		}
		rl.adj[i] = append(rl.adj[i], v)
	})
	return &AdjBuilder{g: g}
}

// AddEdge inserts the undirected edge {u, v}; self-loops are dropped.
func (b *AdjBuilder) AddEdge(r *ygm.Rank, u, v uint64) {
	if u == v {
		return
	}
	for _, half := range [2][2]uint64{{u, v}, {v, u}} {
		e := r.Enc()
		e.PutUvarint(half[0])
		e.PutUvarint(half[1])
		r.Async(b.g.Owner(half[0]), b.g.hEdge, e)
	}
}

// Build finalizes the graph collectively: dedups and sorts adjacency,
// reduces global figures.
func (b *AdjBuilder) Build(r *ygm.Rank) *AdjGraph {
	r.Barrier()
	g := b.g
	rl := &g.local[r.ID()]
	var localHalf uint64
	for i := range rl.adj {
		a := rl.adj[i]
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		out := a[:0]
		for _, v := range a {
			if n := len(out); n == 0 || out[n-1] != v {
				out = append(out, v)
			}
		}
		rl.adj[i] = out
		localHalf += uint64(len(out))
	}
	nv := ygm.AllReduceSum(r, uint64(len(rl.ids)))
	nh := ygm.AllReduceSum(r, localHalf)
	if r.ID() == 0 {
		g.numVertices = nv
		g.numEdges = nh / 2
	}
	ygm.Rendezvous(r)
	return g
}
