package community

import (
	"math/rand"
	"testing"
)

// twoCliques builds two k-cliques joined by a single bridge edge.
func twoCliques(k int) *Graph {
	g := NewGraph(2 * k)
	for off := 0; off < 2; off++ {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(off*k+i, off*k+j, 1)
			}
		}
	}
	g.AddEdge(0, k, 1)
	return g
}

// ringOfCliques builds r cliques of size k arranged in a ring.
func ringOfCliques(r, k int) *Graph {
	g := NewGraph(r * k)
	for c := 0; c < r; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(base+i, base+j, 1)
			}
		}
		next := ((c + 1) % r) * k
		g.AddEdge(base, next, 1)
	}
	return g
}

func sameCommunity(comm []int, a, b int) bool { return comm[a] == comm[b] }

func TestLouvainSeparatesTwoCliques(t *testing.T) {
	g := twoCliques(6)
	comm := Louvain(g, 1)
	for i := 1; i < 6; i++ {
		if !sameCommunity(comm, 0, i) {
			t.Errorf("clique A split: node %d", i)
		}
		if !sameCommunity(comm, 6, 6+i) {
			t.Errorf("clique B split: node %d", 6+i)
		}
	}
	if sameCommunity(comm, 0, 6) {
		t.Error("cliques merged")
	}
}

func TestLouvainRingOfCliques(t *testing.T) {
	g := ringOfCliques(8, 5)
	comm := Louvain(g, 3)
	// Every clique must be internally cohesive.
	for c := 0; c < 8; c++ {
		base := c * 5
		for i := 1; i < 5; i++ {
			if comm[base] != comm[base+i] {
				t.Fatalf("clique %d split", c)
			}
		}
	}
	// Modularity should be high (the planted partition scores ~0.8).
	if q := Modularity(g, comm); q < 0.6 {
		t.Errorf("modularity = %v, want > 0.6", q)
	}
}

func TestLouvainImprovesModularityOverSingletons(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGraph(60)
	// Planted partition: 3 groups of 20, dense inside, sparse across.
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			sameGroup := i/20 == j/20
			if sameGroup && rng.Float64() < 0.4 {
				g.AddEdge(i, j, 1)
			} else if !sameGroup && rng.Float64() < 0.02 {
				g.AddEdge(i, j, 1)
			}
		}
	}
	singletons := make([]int, 60)
	for i := range singletons {
		singletons[i] = i
	}
	comm := Louvain(g, 7)
	if Modularity(g, comm) <= Modularity(g, singletons) {
		t.Errorf("Louvain Q=%v did not beat singleton Q=%v",
			Modularity(g, comm), Modularity(g, singletons))
	}
}

func TestLouvainDeterministicInSeed(t *testing.T) {
	g := ringOfCliques(5, 4)
	a := Louvain(g, 42)
	b := Louvain(g, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Louvain not deterministic for fixed seed")
		}
	}
}

func TestLouvainEmptyAndTiny(t *testing.T) {
	g := NewGraph(3) // no edges
	comm := Louvain(g, 1)
	if len(comm) != 3 {
		t.Fatal("assignment length")
	}
	g2 := NewGraph(2)
	g2.AddEdge(0, 1, 1)
	comm2 := Louvain(g2, 1)
	if comm2[0] != comm2[1] {
		t.Error("single edge should merge both nodes")
	}
}

func TestModularityBounds(t *testing.T) {
	g := twoCliques(5)
	comm := Louvain(g, 1)
	q := Modularity(g, comm)
	if q < -0.5 || q > 1 {
		t.Errorf("modularity out of range: %v", q)
	}
	if Modularity(NewGraph(4), []int{0, 1, 2, 3}) != 0 {
		t.Error("empty graph modularity should be 0")
	}
}

func TestSelfLoopsHandled(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0, 5)
	g.AddEdge(0, 1, 1)
	comm := Louvain(g, 1)
	if len(comm) != 2 {
		t.Fatal("assignment length")
	}
	_ = Modularity(g, comm) // must not panic or NaN
}

func TestLabelPropagationTwoCliques(t *testing.T) {
	g := twoCliques(8)
	comm := LabelPropagation(g, 2, 0)
	for i := 1; i < 8; i++ {
		if comm[0] != comm[i] {
			t.Errorf("clique A split at %d", i)
		}
		if comm[8] != comm[8+i] {
			t.Errorf("clique B split at %d", 8+i)
		}
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := ringOfCliques(4, 5)
	a := LabelPropagation(g, 9, 0)
	b := LabelPropagation(g, 9, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("label propagation not deterministic")
		}
	}
}

func TestRenumberDense(t *testing.T) {
	out := renumber([]int{7, 7, 3, 7, 9})
	want := []int{0, 0, 1, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("renumber = %v", out)
		}
	}
}
