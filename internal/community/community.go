// Package community implements single-machine community detection for the
// post-processing step of the Fig. 8 FQDN analysis: the paper orders the
// hub-conditioned FQDN×FQDN distribution "based on communities identified
// by the Louvain method". Louvain (modularity optimization with graph
// aggregation) is provided along with label propagation as a cheaper
// alternative.
package community

import (
	"math/rand"
)

// WEdge is a weighted half-edge.
type WEdge struct {
	To     int
	Weight float64
}

// Graph is a small weighted undirected multigraph on nodes 0..N-1.
type Graph struct {
	n    int
	adj  [][]WEdge
	self []float64 // self-loop weight (appears once)
	m2   float64   // 2m: total incident weight, self-loops counted twice
}

// NewGraph creates a graph with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]WEdge, n), self: make([]float64, n)}
}

// N returns the node count.
func (g *Graph) N() int { return g.n }

// AddEdge adds an undirected edge of the given weight; u == v adds a
// self-loop.
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		g.self[u] += w
		g.m2 += 2 * w
		return
	}
	g.adj[u] = append(g.adj[u], WEdge{To: v, Weight: w})
	g.adj[v] = append(g.adj[v], WEdge{To: u, Weight: w})
	g.m2 += 2 * w
}

// strength returns the total weight incident to node u (self-loops twice).
func (g *Graph) strength(u int) float64 {
	s := 2 * g.self[u]
	for _, e := range g.adj[u] {
		s += e.Weight
	}
	return s
}

// Modularity computes Newman modularity Q of a node→community assignment.
func Modularity(g *Graph, comm []int) float64 {
	if g.m2 == 0 {
		return 0
	}
	in := map[int]float64{}  // intra-community edge weight ×2
	tot := map[int]float64{} // community total strength
	for u := 0; u < g.n; u++ {
		tot[comm[u]] += g.strength(u)
		in[comm[u]] += 2 * g.self[u]
		for _, e := range g.adj[u] {
			if comm[e.To] == comm[u] {
				in[comm[u]] += e.Weight
			}
		}
	}
	var q float64
	for c, w := range tot {
		q += in[c]/g.m2 - (w/g.m2)*(w/g.m2)
	}
	return q
}

// Louvain runs the two-phase Louvain method: greedy local moving to a local
// modularity optimum, then aggregation into a community graph, repeated
// until no level improves. Returns the community id of every original node
// (ids are dense but arbitrary). Deterministic in seed.
func Louvain(g *Graph, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	// node→community through all levels so far.
	assign := make([]int, g.n)
	for i := range assign {
		assign[i] = i
	}
	cur := g
	for level := 0; level < 32; level++ {
		comm, moved := localMove(cur, rng)
		if !moved && level > 0 {
			break
		}
		comm = renumber(comm)
		// Fold this level's assignment into the global one.
		for i := range assign {
			assign[i] = comm[assign[i]]
		}
		next := aggregate(cur, comm)
		if next.n == cur.n {
			break // no merge happened; fixed point
		}
		cur = next
		if !moved {
			break
		}
	}
	return renumber(assign)
}

// localMove is Louvain phase 1: repeatedly move nodes to the neighboring
// community with the highest positive modularity gain.
func localMove(g *Graph, rng *rand.Rand) (comm []int, movedAny bool) {
	comm = make([]int, g.n)
	tot := make([]float64, g.n)
	for i := range comm {
		comm[i] = i
		tot[i] = g.strength(i)
	}
	order := rng.Perm(g.n)
	if g.m2 == 0 {
		return comm, false
	}
	for pass := 0; pass < 64; pass++ {
		moved := false
		for _, u := range order {
			cu := comm[u]
			ku := g.strength(u)
			// Weight from u to each neighboring community.
			wTo := map[int]float64{}
			for _, e := range g.adj[u] {
				wTo[comm[e.To]] += e.Weight
			}
			// Remove u from its community.
			tot[cu] -= ku
			best, bestGain := cu, wTo[cu]-tot[cu]*ku/g.m2
			for c, w := range wTo {
				gain := w - tot[c]*ku/g.m2
				if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < best) {
					best, bestGain = c, gain
				}
			}
			tot[best] += ku
			if best != cu {
				comm[u] = best
				moved = true
			}
		}
		if !moved {
			break
		}
		movedAny = true
	}
	return comm, movedAny
}

// aggregate is Louvain phase 2: collapse each community into a super-node.
func aggregate(g *Graph, comm []int) *Graph {
	nc := 0
	for _, c := range comm {
		if c+1 > nc {
			nc = c + 1
		}
	}
	out := NewGraph(nc)
	type pair struct{ a, b int }
	acc := map[pair]float64{}
	for u := 0; u < g.n; u++ {
		cu := comm[u]
		if g.self[u] > 0 {
			acc[pair{cu, cu}] += g.self[u]
		}
		for _, e := range g.adj[u] {
			cv := comm[e.To]
			if cu < cv {
				acc[pair{cu, cv}] += e.Weight
			} else if cu == cv {
				acc[pair{cu, cu}] += e.Weight / 2
			}
		}
	}
	for p, w := range acc {
		out.AddEdge(p.a, p.b, w)
	}
	return out
}

// renumber maps community ids onto 0..k-1 preserving first-appearance
// order.
func renumber(comm []int) []int {
	next := 0
	m := map[int]int{}
	out := make([]int, len(comm))
	for i, c := range comm {
		id, ok := m[c]
		if !ok {
			id = next
			m[c] = id
			next++
		}
		out[i] = id
	}
	return out
}

// LabelPropagation assigns communities by iterative majority vote of
// neighbor labels — the cheap alternative ordering. Deterministic in seed.
func LabelPropagation(g *Graph, seed int64, maxIters int) []int {
	rng := rand.New(rand.NewSource(seed))
	label := make([]int, g.n)
	for i := range label {
		label[i] = i
	}
	if maxIters <= 0 {
		maxIters = 64
	}
	for it := 0; it < maxIters; it++ {
		changed := false
		for _, u := range rng.Perm(g.n) {
			if len(g.adj[u]) == 0 {
				continue
			}
			votes := map[int]float64{}
			for _, e := range g.adj[u] {
				votes[label[e.To]] += e.Weight
			}
			best, bestW := label[u], votes[label[u]]
			for l, w := range votes {
				if w > bestW+1e-12 || (w > bestW-1e-12 && l < best) {
					best, bestW = l, w
				}
			}
			if best != label[u] {
				label[u] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return renumber(label)
}
