package engine

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// testEdges generates a deterministic timestamped graph with plenty of
// triangles: a dense-ish random graph over n vertices, horizon 1<<16.
func testEdges(n int, m int, seed int64) []graph.TemporalEdge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.TemporalEdge, 0, m)
	for len(edges) < m {
		u := rng.Uint64() % uint64(n)
		v := rng.Uint64() % uint64(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.TemporalEdge{U: u, V: v, Time: uint64(rng.Intn(1 << 16))})
	}
	return edges
}

func buildTemporal(w *ygm.World, edges []graph.TemporalEdge) *graph.DODGr[serialize.Unit, uint64] {
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(edges); i += r.Size() {
			b.AddEdge(r, edges[i].U, edges[i].V, edges[i].Time)
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return g
}

func newTestEngine(t *testing.T, g *graph.DODGr[serialize.Unit, uint64]) *Engine[serialize.Unit, uint64] {
	t.Helper()
	e := New(TemporalRegistry(), EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }})
	if err := e.Register("g", g); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// solo answers a spec without the engine: a fresh instance from the same
// registry, run under exactly the spec's own plan — the reference the
// coalesce ≡ solo property compares against.
func solo(t *testing.T, g *graph.DODGr[serialize.Unit, uint64], spec Spec) any {
	t.Helper()
	reg := TemporalRegistry()
	factory, ok := reg.Lookup(spec.Analysis)
	if !ok {
		t.Fatalf("unknown analysis %q", spec.Analysis)
	}
	inst, err := factory(g, spec)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	plan, err := compilePlan[uint64](&spec, func(ts uint64) uint64 { return ts })
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	opts, err := spec.options()
	if err != nil {
		t.Fatalf("opts: %v", err)
	}
	if _, err := core.Run(g, opts, plan, inst.Attached); err != nil {
		t.Fatalf("solo run: %v", err)
	}
	return inst.Result()
}

func asJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(JSONValue(v))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestCoalescedBatchSharesOneTraversal(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	g := buildTemporal(w, testEdges(200, 2400, 1))
	e := newTestEngine(t, g)

	specs := []Spec{
		{Analysis: "count", Delta: Uint64(1 << 13)},
		{Analysis: "closure", Delta: Uint64(1 << 14)},
		{Analysis: "localcounts"},
	}
	jobs, err := e.SubmitAll(context.Background(), specs...)
	if err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	for i, j := range jobs {
		qr, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if qr.CoalescedWith != 3 {
			t.Errorf("job %d CoalescedWith = %d, want 3", i, qr.CoalescedWith)
		}
		if got, want := asJSON(t, qr.Value), asJSON(t, solo(t, g, specs[i])); got != want {
			t.Errorf("job %d (%s): coalesced result differs from solo:\n got %s\nwant %s",
				i, specs[i].Analysis, got, want)
		}
	}
	st := e.Stats()
	if st.Traversals != 1 {
		t.Errorf("Traversals = %d, want 1 (one fused run for the whole batch)", st.Traversals)
	}
	if st.Coalesced != 3 {
		t.Errorf("Coalesced = %d, want 3", st.Coalesced)
	}
}

func TestIdenticalSpecsDedupeAndCache(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	g := buildTemporal(w, testEdges(120, 1200, 2))
	e := newTestEngine(t, g)
	ctx := context.Background()

	spec := Spec{Analysis: "count", Delta: Uint64(1 << 13)}
	jobs, err := e.SubmitAll(ctx, spec, spec, spec)
	if err != nil {
		t.Fatalf("SubmitAll: %v", err)
	}
	var first QueryResult
	for i, j := range jobs {
		qr, err := j.Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if i == 0 {
			first = qr
		} else if !reflect.DeepEqual(qr.Value, first.Value) {
			t.Errorf("job %d value %v != job 0 value %v", i, qr.Value, first.Value)
		}
	}
	st := e.Stats()
	if st.Traversals != 1 {
		t.Errorf("Traversals = %d, want 1", st.Traversals)
	}
	if st.Deduped != 2 {
		t.Errorf("Deduped = %d, want 2", st.Deduped)
	}

	// A later identical submission must be a pure cache hit: no traversal.
	j, err := e.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	qr, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if !qr.Cached {
		t.Errorf("repeat query not served from cache")
	}
	if !reflect.DeepEqual(qr.Value, first.Value) {
		t.Errorf("cached value %v != original %v", qr.Value, first.Value)
	}
	if st := e.Stats(); st.Traversals != 1 || st.CacheHits != 1 {
		t.Errorf("Traversals = %d CacheHits = %d, want 1 and 1", st.Traversals, st.CacheHits)
	}

	// NoCache forces a fresh traversal.
	nospec := spec
	nospec.NoCache = true
	j2, err := e.Submit(ctx, nospec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if qr2, err := j2.Wait(ctx); err != nil || qr2.Cached {
		t.Errorf("NoCache job: err=%v cached=%v, want fresh run", err, qr2.Cached)
	}
	if st := e.Stats(); st.Traversals != 2 {
		t.Errorf("Traversals = %d after NoCache, want 2", st.Traversals)
	}

	// A different mode is a different traversal: the cache must not hand a
	// push-only client a push-pull run's Survey.
	pushOnly := spec
	pushOnly.Mode = "push-only"
	j3, err := e.Submit(ctx, pushOnly)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	qr3, err := j3.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if qr3.Cached {
		t.Errorf("push-only query served the push-pull cache entry")
	}
	if qr3.Survey.Mode != core.PushOnly {
		t.Errorf("Survey.Mode = %v, want push-only", qr3.Survey.Mode)
	}
	if !reflect.DeepEqual(qr3.Value, first.Value) {
		t.Errorf("push-only value %v != push-pull value %v", qr3.Value, first.Value)
	}

	// An explicit PullFactor equal to the clamped default shares the
	// default's cache slot (options are normalized before keying).
	pf := spec
	pf.PullFactor = 1.0
	j4, err := e.Submit(ctx, pf)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if qr4, err := j4.Wait(ctx); err != nil || !qr4.Cached {
		t.Errorf("PullFactor=1.0 did not hit the default's cache entry: err=%v cached=%v", err, qr4.Cached)
	}
}

// TestCoalescedEqualsSoloProperty is the coalesce ≡ solo property: random
// batches of mixed specs (modes split the batch; differing plans union and
// leave residuals) must each produce byte-identical results to solo runs.
func TestCoalescedEqualsSoloProperty(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	g := buildTemporal(w, testEdges(160, 2000, 3))
	rng := rand.New(rand.NewSource(7))
	analyses := []string{"count", "closure", "localcounts", "labels", "edgecounts", "cc"}
	modes := []string{"push-pull", "push-only"}

	for round := 0; round < 4; round++ {
		e := newTestEngine(t, g)
		var specs []Spec
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			spec := Spec{
				Analysis: analyses[rng.Intn(len(analyses))],
				Mode:     modes[rng.Intn(len(modes))],
			}
			switch rng.Intn(4) {
			case 0: // unrestricted
			case 1:
				spec.Delta = Uint64(uint64(1) << (11 + rng.Intn(5)))
			case 2:
				spec.From = Uint64(uint64(rng.Intn(1 << 15)))
				spec.Until = Uint64(uint64(1<<15 + rng.Intn(1<<15)))
			default:
				spec.Delta = Uint64(uint64(1) << (11 + rng.Intn(5)))
				spec.Until = Uint64(uint64(rng.Intn(1 << 16)))
			}
			specs = append(specs, spec)
		}
		jobs, err := e.SubmitAll(context.Background(), specs...)
		if err != nil {
			t.Fatalf("round %d SubmitAll: %v", round, err)
		}
		// Collect every result before running solo baselines: the batch may
		// span several mode groups, and a solo run must not share the world
		// with a traversal still executing for a later group.
		results := make([]QueryResult, len(jobs))
		for i, j := range jobs {
			qr, err := j.Wait(context.Background())
			if err != nil {
				t.Fatalf("round %d job %d (%+v): %v", round, i, specs[i], err)
			}
			results[i] = qr
		}
		for i, qr := range results {
			got, want := asJSON(t, qr.Value), asJSON(t, solo(t, g, specs[i]))
			if got != want {
				t.Errorf("round %d job %d (%+v): coalesced != solo\n got %s\nwant %s",
					round, i, specs[i], got, want)
			}
		}
		e.Close()
	}
}

func TestStreamEpochInvalidation(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	seedEdges := testEdges(100, 900, 4)
	g := buildTemporal(w, seedEdges)
	plan := core.TemporalPlan()
	s, err := core.OpenStream(g, core.StreamOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	}, plan)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	e := New(TemporalRegistry(), EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }})
	defer e.Close()
	if err := e.RegisterStream("s", s); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	ctx := context.Background()

	spec := Spec{Graph: "s", Analysis: "count"}
	j, err := e.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	qr0, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if qr0.Epoch != 0 {
		t.Errorf("epoch = %d, want 0", qr0.Epoch)
	}

	// Ingest a batch of fresh edges through the engine: epoch bumps, the
	// cache entry dies, and the next query answers against the new state.
	var batch []graph.Edge[uint64]
	for _, te := range testEdges(100, 300, 5) {
		batch = append(batch, graph.Edge[uint64]{U: te.U, V: te.V, Meta: te.Time})
	}
	if _, err := e.Ingest(ctx, "s", batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if ep, _ := e.Epoch("s"); ep != 1 {
		t.Errorf("epoch after Ingest = %d, want 1", ep)
	}
	j2, err := e.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	qr1, err := j2.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if qr1.Cached {
		t.Errorf("post-mutation query served from cache: epoch invalidation failed")
	}
	if qr1.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", qr1.Epoch)
	}
	// The new answer must match a solo run over the materialized new state.
	want := solo(t, s.Materialize(), Spec{Analysis: "count"})
	if !reflect.DeepEqual(qr1.Value, want) {
		t.Errorf("post-mutation value %v, want %v", qr1.Value, want)
	}
	if reflect.DeepEqual(qr0.Value, qr1.Value) {
		t.Logf("note: ingest did not change the count (possible but unlikely); values %v", qr0.Value)
	}
	if st := e.Stats(); st.Mutations != 1 {
		t.Errorf("Mutations = %d, want 1", st.Mutations)
	}
}

func TestSubmitValidation(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	g := buildTemporal(w, testEdges(40, 200, 6))
	ctx := context.Background()

	e := newTestEngine(t, g)
	if _, err := e.Submit(ctx, Spec{Analysis: "nope"}); err == nil {
		t.Error("unknown analysis accepted")
	}
	if _, err := e.Submit(ctx, Spec{Analysis: "count", Graph: "missing"}); err == nil {
		t.Error("unknown graph accepted")
	}
	if _, err := e.Submit(ctx, Spec{Analysis: "count", Mode: "pushy"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := e.Submit(ctx, Spec{Analysis: "sweep"}); err == nil {
		// sweep requires args; the factory rejects at dispatch, so the job
		// fails rather than Submit.
		j, err := e.Submit(ctx, Spec{Analysis: "sweep"})
		if err != nil {
			t.Fatalf("Submit sweep: %v", err)
		}
		if _, err := j.Wait(ctx); err == nil {
			t.Error("sweep without deltas succeeded")
		}
	}

	// No Timestamps accessor: temporal specs must be rejected at Submit.
	e2 := New(TemporalRegistry(), EngineOptions[uint64]{})
	defer e2.Close()
	if err := e2.Register("g", g); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := e2.Submit(ctx, Spec{Analysis: "count", Delta: Uint64(5)}); err == nil {
		t.Error("temporal spec accepted without a Timestamps accessor")
	}

	// Ambiguous default graph.
	if err := e.Register("g2", g); err != nil {
		t.Fatalf("Register g2: %v", err)
	}
	if _, err := e.Submit(ctx, Spec{Analysis: "count"}); err == nil {
		t.Error("empty graph name accepted with two graphs registered")
	}

	// Closed engine.
	e3 := New(TemporalRegistry(), EngineOptions[uint64]{})
	if err := e3.Register("g", g); err != nil {
		t.Fatalf("Register: %v", err)
	}
	e3.Close()
	if _, err := e3.Submit(ctx, Spec{Analysis: "count", Graph: "g"}); err != ErrClosed {
		t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func TestOnceMatchesCoreRun(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	g := buildTemporal(w, testEdges(80, 700, 8))
	var a, b uint64
	res1, err := core.Run(g, core.Options{}, nil, core.CountAnalysis[serialize.Unit, uint64]().Bind(&a))
	if err != nil {
		t.Fatalf("core.Run: %v", err)
	}
	res2, err := Once(g, core.Options{}, nil, core.CountAnalysis[serialize.Unit, uint64]().Bind(&b))
	if err != nil {
		t.Fatalf("Once: %v", err)
	}
	if a != b || res1.Triangles != res2.Triangles {
		t.Errorf("Once count %d/%d != core.Run %d/%d", b, res2.Triangles, a, res1.Triangles)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	in := Spec{
		Graph:    "web",
		Analysis: "sweep",
		Args:     json.RawMessage(`{"deltas":[60,3600]}`),
		Mode:     "push-only",
		Delta:    Uint64(7200),
		From:     Uint64(10),
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Spec
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.Graph != in.Graph || out.Analysis != in.Analysis || out.Mode != in.Mode ||
		*out.Delta != *in.Delta || *out.From != *in.From || out.Until != nil ||
		string(out.Args) != string(in.Args) {
		t.Errorf("round trip mismatch: %+v -> %s -> %+v", in, b, out)
	}
	if in.analysisID() != out.analysisID() {
		t.Errorf("analysisID not stable across round trip: %q vs %q", in.analysisID(), out.analysisID())
	}
}

func TestCanonicalAndUnionPlans(t *testing.T) {
	tp := func() *core.Plan[uint64] { return core.TemporalPlan() }
	a := tp().CloseWithin(100)
	b := tp().CloseWithin(400).From(50)
	c := tp().From(10).Until(900)

	ka, ok := a.Canonical()
	if !ok || ka == "" {
		t.Fatalf("Canonical(a) = %q, %v", ka, ok)
	}
	if kb, _ := tp().CloseWithin(100).Canonical(); kb != ka {
		t.Errorf("equal plans canonicalize differently: %q vs %q", ka, kb)
	}
	if kp, ok := core.NewPlan[uint64]().WhereEdge(func(uint64) bool { return true }).Canonical(); ok {
		t.Errorf("predicate plan reported canonical key %q", kp)
	}

	// Union of {δ100} and {δ400, from50}: δ survives weakened to 400; from
	// is dropped (a carries none).
	u, ok := core.UnionPlans([]*core.Plan[uint64]{a, b})
	if !ok || u == nil {
		t.Fatalf("UnionPlans: %v, %v", u, ok)
	}
	if key, _ := u.Canonical(); key != "d400;" {
		t.Errorf("union key = %q, want d400;", key)
	}
	// Union with an unrestricted member is unrestricted.
	if u2, ok := core.UnionPlans([]*core.Plan[uint64]{a, nil}); !ok || u2 != nil {
		t.Errorf("union with nil member = %v, %v; want nil, true", u2, ok)
	}
	// {from10,until900} ∪ {δ400,from50} = from10, until dropped, δ dropped.
	u3, ok := core.UnionPlans([]*core.Plan[uint64]{c, b})
	if !ok {
		t.Fatalf("UnionPlans: not ok")
	}
	if key, _ := u3.Canonical(); key != "f10;" {
		t.Errorf("union key = %q, want f10;", key)
	}
}
