package engine

import (
	"errors"
	"fmt"

	"tripoll/internal/core"
	"tripoll/internal/graph"
)

// The remote execution path. In a multi-process world the engine's
// scheduler runs only in the driver process, but every traversal is a
// collective over the whole world: the worker processes must enter the
// same parallel regions, with the same fused analyses under the same plan
// union, at the same time. The seam is deliberately narrow — the driver
// broadcasts the post-cache work item (graph name, traversal options, the
// ordered leader specs of an admission group) through a Fanout just before
// executing it, and each worker compiles that item with ExecuteFused, the
// exact compile path runGroup uses. Broadcasting specs rather than raw
// admission batches keeps the replicas deterministic: cache hits, dedup
// and factory rejections are resolved once, on the driver, and the workers
// see only the surviving traversal work.

// Fanout mirrors fused traversals onto the worker processes of a
// multi-process world. Traverse is called by the scheduler goroutine after
// admission (cache hits and dedup already resolved), immediately before
// the driver enters the traversal's parallel regions; it must deliver the
// work item to every worker and return without waiting for the traversal
// (the traversal's own collectives synchronize the processes). replica
// selects which copy of a replicated graph (RegisterReplicated) the
// traversal reads; 0 for plain graphs.
type Fanout interface {
	Traverse(graph string, replica int, opts core.Options, specs []Spec) error
}

// ExecuteFused compiles and runs one fused traversal from its wire form:
// per-spec instances and plans, the plan union, residual filters for
// stricter members — exactly mirroring the scheduler's runGroup so a
// worker process traverses in lockstep with the driver. It returns the
// survey result and each spec's result value in spec order.
//
// The driver resolves factory errors before fanning out, so a compile
// error here means the replicas have diverged (mismatched registries or
// builds); callers should treat it as fatal for the world, not the job.
func ExecuteFused[VM, EM any](reg *Registry[VM, EM], timeOf func(EM) uint64, g *graph.DODGr[VM, EM], opts core.Options, specs []Spec) (core.Result, []any, error) {
	if len(specs) == 0 {
		return core.Result{}, nil, errors.New("engine: fused work item with no specs")
	}
	insts := make([]Instance[VM, EM], len(specs))
	plans := make([]*core.Plan[EM], len(specs))
	keys := make([]string, len(specs))
	for i := range specs {
		s := specs[i]
		factory, ok := reg.Lookup(s.Analysis)
		if !ok {
			return core.Result{}, nil, fmt.Errorf("engine: unknown analysis %q", s.Analysis)
		}
		inst, err := factory(g, s)
		if err != nil {
			return core.Result{}, nil, fmt.Errorf("engine: analysis %q: %w", s.Analysis, err)
		}
		insts[i] = inst
		plan, err := compilePlan[EM](&s, timeOf)
		if err != nil {
			return core.Result{}, nil, err
		}
		plans[i] = plan
		key, ok := plan.Canonical()
		if !ok {
			return core.Result{}, nil, fmt.Errorf("engine: spec %q compiled a non-canonical plan", s.Analysis)
		}
		keys[i] = key
	}
	union, ok := core.UnionPlans(plans)
	if !ok {
		return core.Result{}, nil, errors.New("engine: non-unionable plans in one work item")
	}
	unionKey, _ := union.Canonical()
	attached := make([]core.Attached[VM, EM], len(specs))
	for i := range specs {
		att := insts[i].Attached
		if plans[i] != nil && keys[i] != unionKey {
			plan := plans[i]
			att = core.WithResidual(att, func(t *core.Triangle[VM, EM]) bool {
				return plan.MatchEdges(t.MetaPQ, t.MetaPR, t.MetaQR)
			})
		}
		attached[i] = att
	}
	res, err := core.Run(g, opts, union, attached...)
	if err != nil {
		return res, nil, err
	}
	vals := make([]any, len(insts))
	for i := range insts {
		vals[i] = insts[i].Result()
	}
	return res, vals, nil
}
