package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// TestConcurrentSubmitStress is the engine's race-mode stress test: many
// client goroutines submit mixed specs against a stream-backed graph while
// the main goroutine ingests batches and slides the expiry watermark
// mid-flight. Every job's answer must be byte-identical to a solo Run of
// its own spec against the graph state of the epoch the engine says it
// answered for — i.e. coalescing, dedup, caching and epoch invalidation
// may reorder and share work but never change any answer. Run with -race.
func TestConcurrentSubmitStress(t *testing.T) {
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	keepFirst := func(a, c uint64) uint64 {
		if a < c {
			return a
		}
		return c
	}

	// Three graph states: the seed, seed+batch1, (seed+batch1 advanced past
	// cutoff)+nothing. Epoch e's queries must match state[e].
	seed := testEdges(90, 700, 11)
	batch1 := testEdges(90, 260, 12)
	const cutoff = 1 << 14 // retires roughly a quarter of the horizon

	g := buildTemporal(w, seed)
	plan := core.TemporalPlan()
	s, err := core.OpenStream(g, core.StreamOptions[uint64]{MergeEdgeMeta: keepFirst}, plan)
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}

	e := New(TemporalRegistry(), EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }})
	defer e.Close()
	if err := e.RegisterStream("s", s); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	ctx := context.Background()

	specFor := func(i int) Spec {
		spec := Spec{Graph: "s"}
		switch i % 4 {
		case 0:
			spec.Analysis = "count"
		case 1:
			spec.Analysis = "count"
			spec.Delta = Uint64(1 << 13)
		case 2:
			spec.Analysis = "closure"
			spec.Delta = Uint64(1 << 14)
		default:
			spec.Analysis = "localcounts"
		}
		if i%2 == 1 {
			spec.Mode = "push-only"
		}
		return spec
	}

	type outcome struct {
		spec  Spec
		epoch uint64
		json  string
	}
	const clients, perClient = 8, 6
	outcomes := make([][]outcome, clients)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				spec := specFor(c*perClient + k)
				j, err := e.Submit(ctx, spec)
				if err != nil {
					errCh <- fmt.Errorf("client %d submit: %w", c, err)
					return
				}
				qr, err := j.Wait(ctx)
				if err != nil {
					errCh <- fmt.Errorf("client %d wait: %w", c, err)
					return
				}
				outcomes[c] = append(outcomes[c], outcome{spec: spec, epoch: qr.Epoch, json: mustJSON(qr.Value)})
			}
		}(c)
	}

	// Mutations race the submissions: one ingest, one advance.
	var b1 []graph.Edge[uint64]
	for _, te := range batch1 {
		b1 = append(b1, graph.Edge[uint64]{U: te.U, V: te.V, Meta: te.Time})
	}
	if _, err := e.Ingest(ctx, "s", b1); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	if _, err := e.Advance(ctx, "s", cutoff); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Rebuild each epoch's graph state independently of the engine and
	// verify every recorded answer against a solo run on its epoch.
	states := map[uint64]*graph.DODGr[serialize.Unit, uint64]{
		0: buildTemporal(w, seed),
		1: buildTemporal(w, append(append([]graph.TemporalEdge{}, seed...), batch1...)),
	}
	{
		// The stream merges duplicate edges keep-first on ingest and only
		// then expires by the merged timestamp, so dedupe before filtering
		// (an edge re-sent with a late timestamp still dies with its first).
		merged := map[[2]uint64]uint64{}
		for _, te := range append(append([]graph.TemporalEdge{}, seed...), batch1...) {
			u, v := te.U, te.V
			if u > v {
				u, v = v, u
			}
			k := [2]uint64{u, v}
			if t0, ok := merged[k]; !ok || te.Time < t0 {
				merged[k] = te.Time
			}
		}
		var live []graph.TemporalEdge
		for k, tm := range merged {
			if tm >= cutoff {
				live = append(live, graph.TemporalEdge{U: k[0], V: k[1], Time: tm})
			}
		}
		states[2] = buildTemporal(w, live)
	}
	baseline := map[string]string{}
	checked := 0
	for c := range outcomes {
		for _, o := range outcomes[c] {
			st, ok := states[o.epoch]
			if !ok {
				t.Fatalf("job answered for unexpected epoch %d", o.epoch)
			}
			bk := fmt.Sprintf("%d|%s|%s", o.epoch, o.spec.analysisID(), o.spec.Mode)
			want, ok := baseline[bk]
			if !ok {
				want = mustJSON(solo(t, st, o.spec))
				baseline[bk] = want
			}
			if o.json != want {
				t.Errorf("spec %+v at epoch %d: engine answer differs from solo run\n got %s\nwant %s",
					o.spec, o.epoch, o.json, want)
			}
			checked++
		}
	}
	if checked != clients*perClient {
		t.Fatalf("checked %d answers, want %d", checked, clients*perClient)
	}

	// Epoch bookkeeping: two mutations happened.
	if ep, _ := e.Epoch("s"); ep != 2 {
		t.Errorf("final epoch = %d, want 2", ep)
	}
	st := e.Stats()
	if st.Mutations != 2 {
		t.Errorf("Mutations = %d, want 2", st.Mutations)
	}
	if st.Completed != uint64(clients*perClient)+2 {
		t.Errorf("Completed = %d, want %d", st.Completed, clients*perClient+2)
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(JSONValue(v))
	if err != nil {
		panic(err)
	}
	return string(b)
}
