package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
)

// Instance is one compiled occurrence of a registry analysis: the bound
// attached analysis to fuse into a traversal, and a reader that extracts
// the finalized result afterwards. A factory must return a fresh Instance
// per call — the bound accumulator is single-use.
type Instance[VM, EM any] struct {
	// Attached is the analysis bound to an output, ready for core.Run.
	Attached core.Attached[VM, EM]
	// Result reads the bound output after the run completes. The returned
	// value is shared verbatim with every job the traversal or the cache
	// serves; treat it as immutable.
	Result func() any
}

// Factory compiles a Spec's analysis against a concrete graph. Factories
// run at dispatch time (the spec's graph may be a stream materialized just
// before the traversal) and may reject malformed Args.
type Factory[VM, EM any] func(g *graph.DODGr[VM, EM], spec Spec) (Instance[VM, EM], error)

// Registry maps analysis names to factories — the table that makes specs
// wire-shippable: a client names an analysis, the engine compiles it.
// Register all analyses before handing the registry to New; the engine
// reads it from its dispatcher goroutine without locking.
type Registry[VM, EM any] struct {
	factories map[string]Factory[VM, EM]
}

// NewRegistry returns an empty registry.
func NewRegistry[VM, EM any]() *Registry[VM, EM] {
	return &Registry[VM, EM]{factories: make(map[string]Factory[VM, EM])}
}

// Register adds (or replaces) a named analysis factory and returns the
// registry for chaining.
func (r *Registry[VM, EM]) Register(name string, f Factory[VM, EM]) *Registry[VM, EM] {
	r.factories[name] = f
	return r
}

// Lookup returns the factory for name.
func (r *Registry[VM, EM]) Lookup(name string) (Factory[VM, EM], bool) {
	f, ok := r.factories[name]
	return f, ok
}

// Names lists the registered analyses, sorted.
func (r *Registry[VM, EM]) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TemporalRegistry returns the stock registry for the BuildTemporal graph
// configuration (Unit vertex metadata, uint64 timestamp edge metadata) —
// the configuration cmd/tripoll and cmd/tripolld serve. Registered
// analyses:
//
//	count        triangle count (Alg. 2)                        -> uint64
//	closure      joint open/close time distribution (Alg. 4)    -> *stats.Joint2D
//	localcounts  per-vertex triangle participation counts       -> map[uint64]uint64
//	edgecounts   per-edge triangle participation counts         -> map[core.EdgeKey]uint64
//	labels       max edge label/timestamp distribution (Alg. 3) -> map[uint64]uint64
//	cc           clustering coefficients                        -> core.ClusteringAccum
//	sweep        δ-sweep counts; Args {"deltas":[...]}          -> []uint64
func TemporalRegistry() *Registry[serialize.Unit, uint64] {
	type U = serialize.Unit
	r := NewRegistry[U, uint64]()
	r.Register("count", func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(uint64)
		return Instance[U, uint64]{
			Attached: core.CountAnalysis[U, uint64]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.Register("closure", func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(*stats.Joint2D)
		return Instance[U, uint64]{
			Attached: core.ClosureTimeAnalysis[U]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.Register("localcounts", func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(map[uint64]uint64)
		return Instance[U, uint64]{
			Attached: core.VertexCountAnalysis[U, uint64]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.Register("edgecounts", func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(map[core.EdgeKey]uint64)
		return Instance[U, uint64]{
			Attached: core.EdgeCountAnalysis[U, uint64]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.Register("labels", func(_ *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		var args struct {
			Distinct bool `json:"distinct"`
		}
		if err := unmarshalArgs(spec, &args); err != nil {
			return Instance[U, uint64]{}, err
		}
		out := new(map[uint64]uint64)
		return Instance[U, uint64]{
			Attached: core.MaxEdgeLabelAnalysis[U](args.Distinct).Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.Register("cc", func(g *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(core.ClusteringAccum)
		return Instance[U, uint64]{
			Attached: core.ClusteringAnalysis(g).Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.Register("sweep", func(_ *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		var args struct {
			Deltas []uint64 `json:"deltas"`
		}
		if err := unmarshalArgs(spec, &args); err != nil {
			return Instance[U, uint64]{}, err
		}
		if len(args.Deltas) == 0 {
			return Instance[U, uint64]{}, fmt.Errorf(`engine: analysis "sweep" needs args {"deltas":[...]}`)
		}
		out := new([]uint64)
		return Instance[U, uint64]{
			Attached: core.TemporalSweepAnalysis[U](args.Deltas).Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	return r
}

func unmarshalArgs(spec Spec, into any) error {
	if len(spec.Args) == 0 {
		return nil
	}
	if err := json.Unmarshal(spec.Args, into); err != nil {
		return fmt.Errorf("engine: analysis %q args: %w", spec.Analysis, err)
	}
	return nil
}

// EdgeCount is the wire form of one per-edge triangle count (map keys
// that are structs cannot cross encoding/json).
type EdgeCount struct {
	U     uint64 `json:"u"`
	V     uint64 `json:"v"`
	Count uint64 `json:"count"`
}

// JSONValue converts a stock analysis result into a form encoding/json
// can marshal faithfully: Joint2D grids become sorted cell lists and
// EdgeKey-keyed maps become sorted edge lists; everything else passes
// through unchanged. tripolld applies it to every result it ships, and the
// coalesce ablation uses it to compare per-job results byte-for-byte.
func JSONValue(v any) any {
	switch t := v.(type) {
	case *stats.Joint2D:
		if t == nil {
			return []stats.JointCell{}
		}
		return t.Cells()
	case map[core.EdgeKey]uint64:
		out := make([]EdgeCount, 0, len(t))
		for k, c := range t {
			out = append(out, EdgeCount{U: k.First, V: k.Second, Count: c})
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].U != out[b].U {
				return out[a].U < out[b].U
			}
			return out[a].V < out[b].V
		})
		return out
	default:
		return v
	}
}
