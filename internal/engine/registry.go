package engine

import (
	"encoding/json"
	"fmt"
	"sort"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/truss"
)

// Instance is one compiled occurrence of a registry analysis: the bound
// attached analysis to fuse into a traversal, and a reader that extracts
// the finalized result afterwards. A factory must return a fresh Instance
// per call — the bound accumulator is single-use.
type Instance[VM, EM any] struct {
	// Attached is the analysis bound to an output, ready for core.Run.
	Attached core.Attached[VM, EM]
	// Result reads the bound output after the run completes. The returned
	// value is shared verbatim with every job the traversal or the cache
	// serves; treat it as immutable.
	Result func() any
}

// Factory compiles a Spec's analysis against a concrete graph. Factories
// run at dispatch time (the spec's graph may be a stream materialized just
// before the traversal) and may reject malformed Args.
type Factory[VM, EM any] func(g *graph.DODGr[VM, EM], spec Spec) (Instance[VM, EM], error)

// ArgSpec documents one JSON argument an analysis accepts.
type ArgSpec struct {
	// Name is the JSON key inside Spec.Args.
	Name string `json:"name"`
	// Type is the JSON type ("bool", "uint", "[]uint", "[]window", ...).
	Type string `json:"type"`
	// Doc is a one-line description, including any default.
	Doc string `json:"doc"`
	// Required marks arguments the factory rejects when absent.
	Required bool `json:"required,omitempty"`
}

// AnalysisInfo is the discoverable schema of one registered analysis —
// what GET /v1/analyses reports so clients can build Specs without
// reading the registry source.
type AnalysisInfo struct {
	// Name is the registry key QuerySpecs use.
	Name string `json:"name"`
	// Doc is a one-line description of the analysis.
	Doc string `json:"doc"`
	// Args documents the accepted Spec.Args keys; empty means the
	// analysis takes no arguments.
	Args []ArgSpec `json:"args,omitempty"`
	// Result names the shape of QueryResult.Value (after JSONValue).
	Result string `json:"result"`
}

// Registry maps analysis names to factories — the table that makes specs
// wire-shippable: a client names an analysis, the engine compiles it.
// Register all analyses before handing the registry to New; the engine
// reads it from its dispatcher goroutine without locking.
type Registry[VM, EM any] struct {
	factories map[string]Factory[VM, EM]
	infos     map[string]AnalysisInfo
}

// NewRegistry returns an empty registry.
func NewRegistry[VM, EM any]() *Registry[VM, EM] {
	return &Registry[VM, EM]{
		factories: make(map[string]Factory[VM, EM]),
		infos:     make(map[string]AnalysisInfo),
	}
}

// Register adds (or replaces) a named analysis factory and returns the
// registry for chaining. The analysis is listed with an empty schema; use
// RegisterInfo to document it.
func (r *Registry[VM, EM]) Register(name string, f Factory[VM, EM]) *Registry[VM, EM] {
	r.factories[name] = f
	if _, ok := r.infos[name]; !ok {
		r.infos[name] = AnalysisInfo{Name: name}
	}
	return r
}

// RegisterInfo adds (or replaces) a named analysis factory together with
// its discoverable schema. info.Name is the registry key.
func (r *Registry[VM, EM]) RegisterInfo(info AnalysisInfo, f Factory[VM, EM]) *Registry[VM, EM] {
	r.factories[info.Name] = f
	r.infos[info.Name] = info
	return r
}

// Lookup returns the factory for name.
func (r *Registry[VM, EM]) Lookup(name string) (Factory[VM, EM], bool) {
	f, ok := r.factories[name]
	return f, ok
}

// Names lists the registered analyses, sorted.
func (r *Registry[VM, EM]) Names() []string {
	out := make([]string, 0, len(r.factories))
	for n := range r.factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe lists every registered analysis's schema, sorted by name.
func (r *Registry[VM, EM]) Describe() []AnalysisInfo {
	out := make([]AnalysisInfo, 0, len(r.infos))
	for _, n := range r.Names() {
		out = append(out, r.infos[n])
	}
	return out
}

// TemporalRegistry returns the stock registry for the BuildTemporal graph
// configuration (Unit vertex metadata, uint64 timestamp edge metadata) —
// the configuration cmd/tripoll and cmd/tripolld serve. Registered
// analyses:
//
//	count        triangle count (Alg. 2)                        -> uint64
//	closure      joint open/close time distribution (Alg. 4)    -> *stats.Joint2D
//	localcounts  per-vertex triangle participation counts       -> map[uint64]uint64
//	edgecounts   per-edge triangle participation counts         -> map[core.EdgeKey]uint64
//	labels       max edge label/timestamp distribution (Alg. 3) -> map[uint64]uint64
//	cc           clustering coefficients                        -> core.ClusteringAccum
//	sweep        δ-sweep counts; Args {"deltas":[...]}          -> []uint64
//	trussness    per-edge trussness of the window subgraph      -> truss.Decomp
//	maxtruss     max trussness + k-truss sizes                  -> truss.MaxResult
//	spantruss    maximal k-truss per span; Args {"k","spans"}   -> truss.SpanResult
func TemporalRegistry() *Registry[serialize.Unit, uint64] {
	type U = serialize.Unit
	r := NewRegistry[U, uint64]()
	r.RegisterInfo(AnalysisInfo{
		Name: "count", Doc: "triangle count (Alg. 2)", Result: "uint64",
	}, func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(uint64)
		return Instance[U, uint64]{
			Attached: core.CountAnalysis[U, uint64]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "closure", Doc: "joint wedge-open/triangle-close time distribution (Alg. 4)",
		Result: "[]{open, close, count}",
	}, func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(*stats.Joint2D)
		return Instance[U, uint64]{
			Attached: core.ClosureTimeAnalysis[U]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "localcounts", Doc: "per-vertex triangle participation counts",
		Result: "map[vertex]count",
	}, func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(map[uint64]uint64)
		return Instance[U, uint64]{
			Attached: core.VertexCountAnalysis[U, uint64]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "edgecounts", Doc: "per-edge triangle participation counts",
		Result: "[]{u, v, count}",
	}, func(_ *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(map[core.EdgeKey]uint64)
		return Instance[U, uint64]{
			Attached: core.EdgeCountAnalysis[U, uint64]().Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "labels", Doc: "max edge label/timestamp distribution across triangles (Alg. 3)",
		Args: []ArgSpec{
			{Name: "distinct", Type: "bool", Doc: "require pairwise-distinct vertex labels (default false)"},
		},
		Result: "map[label]count",
	}, func(_ *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		var args struct {
			Distinct bool `json:"distinct"`
		}
		if err := unmarshalArgs(spec, &args); err != nil {
			return Instance[U, uint64]{}, err
		}
		out := new(map[uint64]uint64)
		return Instance[U, uint64]{
			Attached: core.MaxEdgeLabelAnalysis[U](args.Distinct).Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "cc", Doc: "clustering coefficients (average, global transitivity)",
		Result: "{Counts, Stats}",
	}, func(g *graph.DODGr[U, uint64], _ Spec) (Instance[U, uint64], error) {
		out := new(core.ClusteringAccum)
		return Instance[U, uint64]{
			Attached: core.ClusteringAnalysis(g).Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "sweep", Doc: "triangle counts for each close-within δ in one traversal",
		Args: []ArgSpec{
			{Name: "deltas", Type: "[]uint", Doc: "δ thresholds to count under", Required: true},
		},
		Result: "[]uint64",
	}, func(_ *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		var args struct {
			Deltas []uint64 `json:"deltas"`
		}
		if err := unmarshalArgs(spec, &args); err != nil {
			return Instance[U, uint64]{}, err
		}
		if len(args.Deltas) == 0 {
			return Instance[U, uint64]{}, fmt.Errorf(`engine: analysis "sweep" needs args {"deltas":[...]}`)
		}
		out := new([]uint64)
		return Instance[U, uint64]{
			Attached: core.TemporalSweepAnalysis[U](args.Deltas).Bind(out),
			Result:   func() any { return *out },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "trussness", Doc: "per-edge trussness of the query window's subgraph (support peeling)",
		Result: "{edges: []{u, v, k}, max}",
	}, func(g *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		out := new(*truss.Accum)
		return Instance[U, uint64]{
			Attached: truss.TrussnessAnalysis(g, specWindow(spec)).Bind(out),
			Result:   func() any { return (*out).Outcome() },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "maxtruss", Doc: "maximum trussness and k-truss sizes of the query window's subgraph",
		Result: "{max, sizes: []{k, edges}}",
	}, func(g *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		out := new(*truss.Accum)
		return Instance[U, uint64]{
			Attached: truss.MaxTrussAnalysis(g, specWindow(spec)).Bind(out),
			Result:   func() any { return (*out).Outcome() },
		}, nil
	})
	r.RegisterInfo(AnalysisInfo{
		Name: "spantruss", Doc: "maximal k-truss per time span (Lotito-style), spans clipped to the query window",
		Args: []ArgSpec{
			{Name: "k", Type: "uint", Doc: "which k-truss to report (default 3, min 2)"},
			{Name: "spans", Type: "[]{from, until}", Doc: "closed time spans to decompose (default: the whole query window)"},
		},
		Result: "{k, spans: []{from, until, size, edges}}",
	}, func(g *graph.DODGr[U, uint64], spec Spec) (Instance[U, uint64], error) {
		var args truss.SpanTrussArgs
		if err := unmarshalArgs(spec, &args); err != nil {
			return Instance[U, uint64]{}, err
		}
		env := specWindow(spec)
		k, spans, err := args.Normalize(env)
		if err != nil {
			return Instance[U, uint64]{}, err
		}
		out := new(*truss.Accum)
		return Instance[U, uint64]{
			Attached: truss.SpanTrussAnalysis(g, env, k, spans).Bind(out),
			Result:   func() any { return (*out).Outcome() },
		}, nil
	})
	return r
}

// specWindow reads the spec's closed query window; absent bounds widen to
// the whole axis. It must mirror compilePlan's From/Until handling — the
// truss analyses define their edge set by this window while the plan
// filters their triangles by the same bounds.
func specWindow(spec Spec) truss.Window {
	win := truss.WholeWindow()
	if spec.From != nil {
		win.From = *spec.From
	}
	if spec.Until != nil {
		win.Until = *spec.Until
	}
	return win
}

func unmarshalArgs(spec Spec, into any) error {
	if len(spec.Args) == 0 {
		return nil
	}
	if err := json.Unmarshal(spec.Args, into); err != nil {
		return fmt.Errorf("engine: analysis %q args: %w", spec.Analysis, err)
	}
	return nil
}

// EdgeCount is the wire form of one per-edge triangle count (map keys
// that are structs cannot cross encoding/json).
type EdgeCount struct {
	U     uint64 `json:"u"`
	V     uint64 `json:"v"`
	Count uint64 `json:"count"`
}

// JSONValue converts a stock analysis result into a form encoding/json
// can marshal faithfully: Joint2D grids become sorted cell lists and
// EdgeKey-keyed maps become sorted edge lists; everything else passes
// through unchanged. tripolld applies it to every result it ships, and the
// coalesce ablation uses it to compare per-job results byte-for-byte.
func JSONValue(v any) any {
	switch t := v.(type) {
	case *stats.Joint2D:
		if t == nil {
			return []stats.JointCell{}
		}
		return t.Cells()
	case map[core.EdgeKey]uint64:
		out := make([]EdgeCount, 0, len(t))
		for k, c := range t {
			out = append(out, EdgeCount{U: k.First, V: k.Second, Count: c})
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].U != out[b].U {
				return out[a].U < out[b].U
			}
			return out[a].V < out[b].V
		})
		return out
	default:
		return v
	}
}
