// Durable streams: the engine side of the write-ahead log (internal/wal).
//
// OpenDurableStream wraps a stream-backed graph in a durability directory:
//
//	<dir>/wal/wal-*.tpw   the write-ahead log segments
//	<dir>/MANIFEST        checkpoint pointer (CRC-framed, replaced atomically)
//	<dir>/snap-<seq hex>  TPDG2 graph snapshot of the checkpointed state
//
// Every Ingest/Advance through the engine is validated, appended to the
// log (fsynced under SyncAlways), and only then applied; the mutation's
// WAL sequence number becomes the graph's epoch, so epochs are stable
// across restarts. Every CheckpointEvery mutations the scheduler
// materializes the stream, saves a TPDG2 snapshot, atomically repoints the
// manifest and truncates the log — recovery cost and log size stay
// bounded. Recovery is OpenDurableStream again: load the manifest's
// snapshot (or the seed graph), re-open the stream over it, restore the
// expiry watermark, and re-apply every logged record past the checkpoint.
package engine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/wal"
)

// DurableOptions configures OpenDurableStream.
type DurableOptions struct {
	// Dir is the durability directory (created if needed). One directory
	// belongs to one stream; sharing it is undefined.
	Dir string
	// Sync is the WAL fsync policy; the zero value is wal.SyncAlways.
	Sync wal.SyncPolicy
	// SegmentBytes is the WAL segment rotation size; 0 = wal's default.
	SegmentBytes int64
	// CheckpointEvery snapshots the stream and truncates the log every
	// this many mutations; 0 means 64. Checkpoint failures are recorded in
	// DurableStatus and retried after the next mutation — the log keeps
	// everything until one succeeds, so durability never regresses. In a
	// multi-process world (EngineOptions.Mutator) checkpointing is
	// disabled: TPDG2 snapshots capture only the driver's shards.
	CheckpointEvery uint64
	// Policy names the stream configuration for the worker processes of a
	// multi-process world (Mutator.OpenStream); the worker binary maps it
	// back to the same StreamOptions/plan/analyses this open uses.
	// Ignored without a Mutator.
	Policy string
}

const defaultCheckpointEvery = 64

// ErrSnapshotNotPortable reports a durability directory whose checkpoint
// snapshot was written by a single-process run and cannot seed a
// multi-process world.
var ErrSnapshotNotPortable = errors.New("engine: checkpoint snapshot is not portable to a multi-process world")

// DurableStatus reports a durable stream's WAL and checkpoint state.
type DurableStatus struct {
	WAL             wal.Stats `json:"wal"`
	CheckpointEvery uint64    `json:"checkpoint_every"`
	SinceCheckpoint uint64    `json:"since_checkpoint"`
	// ReplayRebroadcasts counts WAL records that recovery re-broadcast to
	// the worker processes of a multi-process world (always 0 in a
	// single-process engine).
	ReplayRebroadcasts uint64 `json:"replay_rebroadcasts"`
	// CheckpointError is the most recent checkpoint failure, empty once a
	// checkpoint has succeeded again.
	CheckpointError string `json:"checkpoint_error,omitempty"`
}

// durable is the per-entry durability state. The scheduler goroutine is
// the only writer; mu exists so DurableStatus can read concurrently.
type durable[VM, EM any] struct {
	dir  string
	opts DurableOptions

	mu           sync.Mutex
	log          *wal.Log[EM]
	since        uint64 // mutations since the last successful checkpoint
	rebroadcasts uint64 // WAL records re-broadcast to workers at recovery
	lastErr      error  // last checkpoint failure, nil after a success
}

func (d *durable[VM, EM]) append(f func(l *wal.Log[EM]) (uint64, error)) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return f(d.log)
}

func (d *durable[VM, EM]) status() DurableStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DurableStatus{
		WAL:                d.log.Stats(),
		CheckpointEvery:    d.opts.CheckpointEvery,
		SinceCheckpoint:    d.since,
		ReplayRebroadcasts: d.rebroadcasts,
	}
	if d.lastErr != nil {
		st.CheckpointError = d.lastErr.Error()
	}
	return st
}

func (d *durable[VM, EM]) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Close()
}

// OpenDurableStream opens (or recovers) a WAL-backed stream and registers
// it under name. On a fresh directory it behaves like core.OpenStream +
// RegisterStream with durability attached; on a directory left by a crash
// it reloads the last checkpoint snapshot, replays the log's surviving
// records, and registers the stream at the epoch the crashed process had
// acknowledged. The seed graph supplies the world, codecs and (on first
// open) the initial edge set; it must be the same graph on every open of
// one directory, or replay diverges. Returns the stream and its epoch.
// Like OpenStream, collective: call outside parallel regions.
func (e *Engine[VM, EM]) OpenDurableStream(name string, seed *graph.DODGr[VM, EM], sopts core.StreamOptions[EM], plan *core.Plan[EM], dopts DurableOptions, analyses ...core.StreamAttached[VM, EM]) (*core.Stream[VM, EM], uint64, error) {
	return e.OpenDurableStreamSinks(name, seed, sopts, plan, dopts, nil, analyses...)
}

// OpenDurableStreamSinks is OpenDurableStream with maintained sinks
// (core.StreamSink) attached at open. Because sinks attach before the seed
// traversal and before WAL replay, recovery re-seeds an index from the
// checkpoint snapshot and then replays the surviving mutations through it
// — the recovered index is identical to one maintained through the
// original run.
func (e *Engine[VM, EM]) OpenDurableStreamSinks(name string, seed *graph.DODGr[VM, EM], sopts core.StreamOptions[EM], plan *core.Plan[EM], dopts DurableOptions, sinks []core.StreamSink[VM, EM], analyses ...core.StreamAttached[VM, EM]) (*core.Stream[VM, EM], uint64, error) {
	if seed == nil {
		return nil, 0, fmt.Errorf("engine: OpenDurableStream(%q): nil seed graph", name)
	}
	if dopts.Dir == "" {
		return nil, 0, fmt.Errorf("engine: OpenDurableStream(%q): empty Dir", name)
	}
	if dopts.CheckpointEvery == 0 {
		dopts.CheckpointEvery = defaultCheckpointEvery
	}
	if err := os.MkdirAll(dopts.Dir, 0o755); err != nil {
		return nil, 0, err
	}
	man, err := readManifest(dopts.Dir)
	if err != nil {
		return nil, 0, err
	}
	if e.opts.Mutator != nil && man.Snapshot != "" {
		// A TPDG2 checkpoint snapshot captures only the shards of the
		// process that wrote it, so a multi-process world cannot reload it
		// (and never writes one — checkpointing is disabled under a
		// Mutator). Refusing beats replaying a partial graph.
		return nil, 0, fmt.Errorf("engine: OpenDurableStream(%q): %s holds checkpoint snapshot %s from a single-process run; recover it single-process first, then serve the fresh directory multi-process: %w",
			name, dopts.Dir, man.Snapshot, ErrSnapshotNotPortable)
	}
	base := seed
	if man.Snapshot != "" {
		g, err := graph.Load(seed.World(), filepath.Join(dopts.Dir, man.Snapshot), seed.VertexCodec(), seed.EdgeCodec())
		if err != nil {
			return nil, 0, fmt.Errorf("engine: load checkpoint snapshot %s: %w", man.Snapshot, err)
		}
		base = g
	}

	walDir := filepath.Join(dopts.Dir, "wal")
	wopts := wal.Options{Sync: dopts.Sync, SegmentBytes: dopts.SegmentBytes, BaseSeq: man.Seq + 1}
	log, recs, err := wal.Open(walDir, seed.EdgeCodec(), wopts)
	if err != nil {
		return nil, 0, err
	}
	if log.LastSeq() < man.Seq {
		// Under SyncNever a crash can lose log records the checkpoint had
		// already captured. Every surviving record is ≤ man.Seq and thus in
		// the snapshot, so the log is pure redundancy — restart it empty at
		// the checkpoint sequence rather than letting new appends reuse
		// sequence numbers the next recovery would skip.
		log.Close()
		if err := os.RemoveAll(walDir); err != nil {
			return nil, 0, err
		}
		if log, recs, err = wal.Open(walDir, seed.EdgeCodec(), wopts); err != nil {
			return nil, 0, err
		}
	}

	if e.opts.Mutator != nil {
		// The workers open their side of the stream before the driver's
		// core.OpenStream below enters the construction collective.
		if err := e.opts.Mutator.OpenStream(name, dopts.Policy); err != nil {
			log.Close()
			return nil, 0, fmt.Errorf("engine: stream-open broadcast for %q: %w", name, err)
		}
	}
	s, err := core.OpenStreamSinks(base, sopts, plan, sinks, analyses...)
	if err != nil {
		log.Close()
		return nil, 0, err
	}
	if man.HasCutoff {
		// Reinstate the expiry watermark without an expiry pass: live
		// edges below it are late arrivals the snapshot legitimately
		// holds (see Stream.RestoreCutoff). Never taken in a multi-process
		// world: a cutoff is only manifested by a checkpoint, and those
		// directories are rejected above.
		s.RestoreCutoff(man.Cutoff)
	}
	dur := &durable[VM, EM]{dir: dopts.Dir, opts: dopts, log: log}
	for _, rec := range recs {
		if rec.Seq <= man.Seq {
			continue // captured by the checkpoint snapshot
		}
		if e.opts.Mutator != nil {
			// Replay is a re-broadcast: the fresh workers never saw the
			// lost run's mutations, so every surviving record ships and
			// two-phase-commits exactly as its original apply did.
			switch rec.Kind {
			case wal.KindIngest:
				err = e.opts.Mutator.Ingest(name, rec.Seq, wal.EncodeBatch(seed.EdgeCodec(), rec.Batch))
			case wal.KindAdvance:
				err = e.opts.Mutator.Advance(name, rec.Seq, rec.Cutoff)
			}
			if err != nil {
				log.Close()
				return nil, 0, fmt.Errorf("engine: re-broadcast WAL record %d: %w", rec.Seq, err)
			}
			dur.rebroadcasts++
		}
		switch rec.Kind {
		case wal.KindIngest:
			_, err = s.Ingest(rec.Batch)
		case wal.KindAdvance:
			_, err = s.Advance(rec.Cutoff)
		default:
			err = fmt.Errorf("unknown record kind %d", rec.Kind)
		}
		if err != nil {
			log.Close()
			return nil, 0, fmt.Errorf("engine: replay WAL record %d: %w", rec.Seq, err)
		}
		if e.opts.Mutator != nil {
			if err := e.opts.Mutator.Commit(name, rec.Seq); err != nil {
				log.Close()
				return nil, 0, fmt.Errorf("engine: re-broadcast commit for record %d: %w", rec.Seq, err)
			}
		}
	}

	epoch := log.LastSeq()
	entry := &graphEntry[VM, EM]{
		name:   name,
		stream: s,
		stale:  true,
		epoch:  epoch,
		codec:  seed.EdgeCodec(),
		dur:    dur,
	}
	if err := e.register(entry); err != nil {
		log.Close()
		return nil, 0, err
	}
	return s, epoch, nil
}

// DurableStatus reports the WAL and checkpoint state of a durable stream;
// ok is false for unknown or non-durable graphs.
func (e *Engine[VM, EM]) DurableStatus(name string) (DurableStatus, bool) {
	e.mu.Lock()
	entry, ok := e.graphs[name]
	e.mu.Unlock()
	if !ok || entry.dur == nil {
		return DurableStatus{}, false
	}
	return entry.dur.status(), true
}

// maybeCheckpoint runs on the scheduler goroutine after a durable
// mutation: every CheckpointEvery mutations it snapshots the stream,
// repoints the manifest and truncates the log. A failure is recorded and
// the counter left due, so the next mutation retries; the WAL still holds
// everything since the last successful checkpoint, so a failed one costs
// recovery time, not durability.
func (e *Engine[VM, EM]) maybeCheckpoint(entry *graphEntry[VM, EM]) {
	if e.opts.Mutator != nil {
		// TPDG2 snapshots hold only the driver's shards; a multi-process
		// world keeps the whole log instead (recovery re-broadcasts it).
		return
	}
	d := entry.dur
	d.mu.Lock()
	d.since++
	due := d.since >= d.opts.CheckpointEvery
	d.mu.Unlock()
	if !due {
		return
	}
	if err := e.checkpoint(entry); err != nil {
		d.mu.Lock()
		d.lastErr = err
		d.mu.Unlock()
		return
	}
	d.mu.Lock()
	d.since = 0
	d.lastErr = nil
	d.mu.Unlock()
}

// checkpoint snapshots entry's stream at its current epoch and truncates
// the WAL behind it. Collective (Materialize and Save run traversals);
// scheduler goroutine only.
func (e *Engine[VM, EM]) checkpoint(entry *graphEntry[VM, EM]) error {
	d := entry.dur
	e.mu.Lock()
	epoch := entry.epoch
	e.mu.Unlock()

	g := entry.stream.Materialize()
	// The checkpoint snapshot doubles as the query snapshot: the stream
	// has not mutated since the epoch bump that triggered this call.
	e.mu.Lock()
	entry.g = g
	entry.stale = false
	e.mu.Unlock()

	snapName := fmt.Sprintf("snap-%016x", epoch)
	snapDir := filepath.Join(d.dir, snapName)
	if err := os.RemoveAll(snapDir); err != nil {
		return err
	}
	if err := g.Save(snapDir); err != nil {
		return err
	}
	cutoff, hasCutoff := entry.stream.Cutoff()
	if err := writeManifest(d.dir, manifest{Seq: epoch, HasCutoff: hasCutoff, Cutoff: cutoff, Snapshot: snapName}); err != nil {
		return err
	}
	// Old snapshots (and orphans from checkpoints that crashed before the
	// manifest repoint) are garbage once the manifest moved.
	ents, err := os.ReadDir(d.dir)
	if err == nil {
		for _, ent := range ents {
			if ent.IsDir() && strings.HasPrefix(ent.Name(), "snap-") && ent.Name() != snapName {
				_ = os.RemoveAll(filepath.Join(d.dir, ent.Name()))
			}
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Truncate(epoch)
}

// --- Manifest ------------------------------------------------------------

// manifest is the checkpoint pointer: the newest WAL sequence whose
// effects the Snapshot directory captures, plus the stream's expiry
// watermark at that point. Replaced atomically (write temp + rename) so a
// crash mid-checkpoint leaves the previous manifest intact.
type manifest struct {
	Seq       uint64
	HasCutoff bool
	Cutoff    uint64
	Snapshot  string // snapshot directory name, "" = none (fresh log)
}

const (
	manifestName  = "MANIFEST"
	manifestMagic = "TPWM1"
)

var manCRC = crc32.MakeTable(crc32.Castagnoli)

func writeManifest(dir string, m manifest) error {
	var enc serialize.Encoder
	enc.PutUvarint(m.Seq)
	enc.PutBool(m.HasCutoff)
	enc.PutUvarint(m.Cutoff)
	enc.PutString(m.Snapshot)
	payload := enc.Bytes()

	buf := make([]byte, 0, len(manifestMagic)+8+len(payload))
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, manCRC))
	buf = append(buf, payload...)

	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	if df, err := os.Open(dir); err == nil {
		_ = df.Sync()
		df.Close()
	}
	return nil
}

// readManifest returns the zero manifest when none exists yet. A manifest
// that exists but cannot be parsed is damage — recovery cannot know which
// snapshot is current — and is a typed error, never a silent fresh start.
func readManifest(dir string) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, nil
	}
	if err != nil {
		return manifest{}, err
	}
	corrupt := func(reason string) error {
		return fmt.Errorf("engine: corrupt checkpoint manifest %s: %s: %w", path, reason, wal.ErrCorrupt)
	}
	hdr := len(manifestMagic) + 8
	if len(data) < hdr || string(data[:len(manifestMagic)]) != manifestMagic {
		return manifest{}, corrupt("bad header")
	}
	n := int(binary.LittleEndian.Uint32(data[len(manifestMagic):]))
	sum := binary.LittleEndian.Uint32(data[len(manifestMagic)+4:])
	if n < 0 || hdr+n != len(data) {
		return manifest{}, corrupt("bad payload length")
	}
	payload := data[hdr:]
	if crc32.Checksum(payload, manCRC) != sum {
		return manifest{}, corrupt("CRC mismatch")
	}
	d := serialize.NewDecoder(payload)
	var m manifest
	m.Seq = d.Uvarint()
	m.HasCutoff = d.Bool()
	m.Cutoff = d.Uvarint()
	m.Snapshot = d.String()
	if d.Err() != nil {
		return manifest{}, corrupt(d.Err().Error())
	}
	if d.Remaining() != 0 {
		return manifest{}, corrupt("trailing bytes")
	}
	if m.Snapshot != "" && (strings.ContainsAny(m.Snapshot, "/\\") || !strings.HasPrefix(m.Snapshot, "snap-")) {
		return manifest{}, corrupt(fmt.Sprintf("implausible snapshot name %q", m.Snapshot))
	}
	return m, nil
}
