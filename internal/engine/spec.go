package engine

import (
	"bytes"
	"encoding/json"
	"fmt"

	"tripoll/internal/core"
)

// Spec is a serializable query: one named analysis plus the declarative
// plan restricting it. A Spec is the wire form of "ask this question of
// that graph" — cmd/tripolld accepts it as the JSON body of a submit
// request, the CLI compiles its flags into one, and the engine's cache and
// coalescer key on its canonical parts. Because a Spec carries no function
// values (predicates are windows and δ-bounds, analyses are registry
// names), every Spec is comparable, union-able with its peers, and
// cacheable.
type Spec struct {
	// Graph names the registered graph to survey; empty selects the
	// engine's sole registered graph (an error when several are).
	Graph string `json:"graph,omitempty"`
	// Analysis names a registry entry ("count", "closure", ...).
	Analysis string `json:"analysis"`
	// Args carries analysis-specific arguments as raw JSON; each factory
	// documents its own shape (e.g. {"deltas":[...]} for "sweep").
	Args json.RawMessage `json:"args,omitempty"`
	// Mode selects the traversal algorithm: "push-pull" (default) or
	// "push-only". Queries with different modes never coalesce.
	Mode string `json:"mode,omitempty"`
	// PullFactor scales the dry-run pull inequality; 0 means the default.
	PullFactor float64 `json:"pull_factor,omitempty"`

	// Delta, From and Until are the declarative plan: keep triangles whose
	// timestamps span at most Delta, and all of whose timestamps lie in
	// [From, Until]. nil disables a constraint. They require the engine to
	// have a Timestamps accessor (EngineOptions).
	Delta *uint64 `json:"delta,omitempty"`
	From  *uint64 `json:"from,omitempty"`
	Until *uint64 `json:"until,omitempty"`

	// NoCache skips the result cache for this job, both lookup and
	// insertion (the job still coalesces).
	NoCache bool `json:"nocache,omitempty"`
}

// Uint64 is a convenience for building optional Spec fields in place.
func Uint64(v uint64) *uint64 { return &v }

// HasPlan reports whether the spec carries any plan constraint.
func (s *Spec) HasPlan() bool { return s.Delta != nil || s.From != nil || s.Until != nil }

// mode parses the spec's Mode field.
func (s *Spec) mode() (core.Mode, error) {
	switch s.Mode {
	case "", "push-pull":
		return core.PushPull, nil
	case "push-only":
		return core.PushOnly, nil
	default:
		return 0, fmt.Errorf("engine: unknown mode %q (want push-pull or push-only)", s.Mode)
	}
}

// options compiles the traversal options the spec asks for. PullFactor
// is normalized exactly as the survey layer clamps it (non-positive and
// NaN become 1.0) so that semantically identical specs land in the same
// dispatch group and cache slot — an unnormalized NaN would even be
// unequal to itself as a map key, giving every such job a singleton
// group and silently defeating coalescing.
func (s *Spec) options() (core.Options, error) {
	m, err := s.mode()
	if err != nil {
		return core.Options{}, err
	}
	pf := s.PullFactor
	if !(pf > 0) {
		pf = 1.0
	}
	return core.Options{Mode: m, PullFactor: pf}, nil
}

// compilePlan builds the spec's survey plan over the engine's timestamp
// accessor. A spec without constraints compiles to nil (unrestricted).
func compilePlan[EM any](s *Spec, timeOf func(EM) uint64) (*core.Plan[EM], error) {
	if !s.HasPlan() {
		return nil, nil
	}
	if timeOf == nil {
		return nil, fmt.Errorf("engine: spec %q has temporal constraints but the engine has no Timestamps accessor", s.Analysis)
	}
	p := core.NewPlan[EM]().Timestamps(timeOf)
	if s.Delta != nil {
		p.CloseWithin(*s.Delta)
	}
	if s.From != nil {
		p.From(*s.From)
	}
	if s.Until != nil {
		p.Until(*s.Until)
	}
	return p, nil
}

// analysisID is the cache identity of the spec's analysis: the registry
// name plus its compacted Args bytes. Two specs with equal analysisID and
// equal canonical plans on the same graph epoch may share one result.
func (s *Spec) analysisID() string {
	if len(s.Args) == 0 {
		return s.Analysis
	}
	var buf bytes.Buffer
	if err := json.Compact(&buf, s.Args); err != nil {
		// Malformed args never reach the cache: Submit validates them
		// against the factory first, which rejects unparsable JSON. Keep
		// the raw bytes as the identity regardless.
		return s.Analysis + "?" + string(s.Args)
	}
	return s.Analysis + "?" + buf.String()
}
