// Package engine is TriPoll's query engine: a long-lived execution surface
// that turns the one-caller, one-blocking-call Run API into a service.
// Graphs (and mutable streams) are registered by name; any goroutine
// submits serializable QuerySpecs and gets back a Job handle; a single
// admission scheduler drains concurrently pending jobs and batches
// compatible ones — same graph, same traversal options, union-able
// declarative plans — into one fused traversal of the PR 3 analysis
// machinery, re-restricting each job to its own plan at the callback
// (core.WithResidual) so every job receives exactly the answer a solo run
// would have produced. An epoch-keyed result cache (graph epoch, canonical
// plan, analysis id) makes repeated queries free; stream mutations run
// through the same scheduler, bump the epoch, and so invalidate precisely.
//
// The scheduler is deliberately a single goroutine: the ygm runtime
// forbids nested parallel regions, so traversals must serialize anyway —
// which is exactly what makes admission batching profitable. While one
// traversal runs, newly submitted jobs pile up; the next drain coalesces
// them. Identical jobs (equal analysis id and canonical plan) are deduped
// within a batch, and jobs equal to an already-cached question never
// traverse at all, so k concurrent identical queries cost one traversal
// regardless of arrival timing (`tripoll-bench -exp coalesce` measures the
// general case).
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/wal"
)

// ErrClosed is returned by Submit and friends after Close, and delivered
// to jobs still pending when the engine shut down.
var ErrClosed = errors.New("engine: engine is closed")

// ErrNotDone is returned by Job.Result while the job is still queued or
// running.
var ErrNotDone = errors.New("engine: job has not finished")

// ErrOverloaded is returned by Submit, SubmitAll, Ingest and Advance when
// the admission queue is at EngineOptions.MaxPending: the engine sheds the
// job instead of queuing it forever. Servers translate it to 429 with a
// Retry-After; the shed job had no effect, so retrying is always safe.
var ErrOverloaded = errors.New("engine: admission queue is full")

// EngineOptions configures an Engine.
type EngineOptions[EM any] struct {
	// Timestamps extracts a timestamp from edge metadata, enabling the
	// temporal constraints of QuerySpecs (Delta/From/Until). All specs are
	// compiled with this one accessor, which is what makes their canonical
	// plan keys comparable. nil rejects temporal specs.
	Timestamps func(EM) uint64
	// MaxPending bounds the admission queue: a Submit/Ingest/Advance that
	// would push the pending count past it fails with ErrOverloaded
	// instead of queuing unboundedly. 0 means unbounded (the pre-PR 6
	// behavior). Shedding happens before enqueue, so a shed mutation was
	// never logged or left applied.
	MaxPending int
	// Fanout, when non-nil, mirrors each fused traversal onto the worker
	// processes of a multi-process world before the driver executes it
	// (see remote.go). Traversal panics are then converted to job errors
	// rather than crashing the server: a dead worker poisons the world
	// mid-region, which surfaces as a panic in the driver's ranks.
	Fanout Fanout
	// Mutator, when non-nil, mirrors stream mutations onto the worker
	// processes the same way (see mutator.go), lifting the multi-process
	// restriction on durable streams: Ingest/Advance broadcast their WAL
	// record to every worker and two-phase-commit the collective apply.
	// Requires Fanout from the same world; streams must be opened with
	// OpenDurableStream (the WAL stays driver-side).
	Mutator Mutator
}

// Stats counts what the engine has done since New. Traversal* fields
// accumulate the enumeration traffic of fused runs only (mutations and
// materializations are accounted by their own Results). The JSON shape is
// part of tripolld's /metrics surface.
type Stats struct {
	Submitted         uint64 `json:"submitted"`          // jobs accepted: Submit/SubmitAll queries and Ingest/Advance mutations
	Completed         uint64 `json:"completed"`          // jobs (incl. mutations) finished with a result
	Failed            uint64 `json:"failed"`             // jobs (incl. mutations) finished with an error or cancellation
	Shed              uint64 `json:"shed"`               // jobs refused with ErrOverloaded at admission
	CacheHits         uint64 `json:"cache_hits"`         // jobs served entirely from the result cache
	IndexServed       uint64 `json:"index_served"`       // jobs answered by an attached index — no snapshot, no traversal
	Deduped           uint64 `json:"deduped"`            // jobs served by an identical twin in the same batch
	Coalesced         uint64 `json:"coalesced"`          // jobs that shared a fused traversal with ≥ 1 other job
	Traversals        uint64 `json:"traversals"`         // fused traversals executed
	Mutations         uint64 `json:"mutations"`          // stream mutations executed
	TraversalMessages int64  `json:"traversal_messages"` // transport messages across all traversals
	TraversalBytes    int64  `json:"traversal_bytes"`    // transport bytes across all traversals
}

// QueryResult is one job's answer.
type QueryResult struct {
	// Graph and Analysis echo the resolved spec.
	Graph    string `json:"graph"`
	Analysis string `json:"analysis"`
	// Epoch is the graph epoch the answer describes; a later mutation of
	// the same graph bumps the epoch and invalidates cache entries.
	Epoch uint64 `json:"epoch"`
	// Value is the analysis result. It may be shared with other jobs (the
	// cache, and twins deduped in the same batch, return the same value);
	// treat it as immutable. Use JSONValue before marshaling.
	Value any `json:"value"`
	// Cached reports the answer came from the result cache; Survey then
	// describes the traversal that originally produced it.
	Cached bool `json:"cached"`
	// IndexServed reports the answer came from an attached maintained
	// index (AttachIndex): no traversal ran and Survey is zero.
	IndexServed bool `json:"index_served,omitempty"`
	// CoalescedWith counts the jobs that shared this result's fused
	// traversal, including this one (1 = solo).
	CoalescedWith int `json:"coalesced_with"`
	// Survey is the shared traversal's statistics. Under a coalesced run
	// its Triangles and Pruned* counters describe the union plan, not this
	// job's own (Value is always this job's own answer).
	Survey core.Result `json:"survey"`
}

// JobStatus is a job's lifecycle state.
type JobStatus int

// Pending jobs sit in the admission queue; Running jobs are in the current
// dispatch batch; Done and Failed are terminal.
const (
	JobPending JobStatus = iota
	JobRunning
	JobDone
	JobFailed
)

func (s JobStatus) String() string {
	switch s {
	case JobPending:
		return "pending"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	default:
		return fmt.Sprintf("JobStatus(%d)", int(s))
	}
}

// Job is the handle Submit returns: a one-shot future for a QueryResult.
type Job struct {
	id   uint64
	spec Spec // graph name resolved
	ctx  context.Context

	payload any // *queryPayload[VM, EM] or *mutation[VM, EM]

	mu     sync.Mutex
	status JobStatus
	res    QueryResult
	err    error
	done   chan struct{}
}

// ID returns the engine-unique job id.
func (j *Job) ID() uint64 { return j.id }

// Spec returns the submitted spec with its graph name resolved.
func (j *Job) Spec() Spec { return j.spec }

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's answer, ErrNotDone while it is still in
// flight, or the job's failure.
func (j *Job) Result() (QueryResult, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.status {
	case JobDone:
		return j.res, nil
	case JobFailed:
		return QueryResult{}, j.err
	default:
		return QueryResult{}, ErrNotDone
	}
}

// Wait blocks until the job finishes or ctx is done. A ctx expiry does not
// cancel the job — it keeps running (a collective traversal cannot be
// interrupted) and its eventual result still lands in the cache.
func (j *Job) Wait(ctx context.Context) (QueryResult, error) {
	select {
	case <-j.done:
		return j.Result()
	case <-ctx.Done():
		return QueryResult{}, ctx.Err()
	}
}

// queryPayload is the compiled, typed half of a query job.
type queryPayload[VM, EM any] struct {
	opts       core.Options
	plan       *core.Plan[EM] // nil = unrestricted
	planKey    string         // canonical plan key ("" = unrestricted)
	analysisID string         // registry name + compacted args
}

// shareKey identifies jobs that may share one answer.
func (p *queryPayload[VM, EM]) shareKey() string { return p.planKey + "\x00" + p.analysisID }

// graphEntry is one registered graph or stream.
type graphEntry[VM, EM any] struct {
	name   string
	g      *graph.DODGr[VM, EM] // current queryable snapshot (nil until a stream materializes)
	stream *core.Stream[VM, EM] // nil for static graphs
	epoch  uint64
	stale  bool             // stream mutated since g was materialized
	dur    *durable[VM, EM] // non-nil for WAL-backed streams (OpenDurableStream)

	// codec is the stream's edge-metadata codec, kept so the scheduler can
	// encode mutation broadcasts exactly as the WAL encodes records; set by
	// OpenDurableStream (the only entry point for multi-process streams).
	codec serialize.Codec[EM]

	// index, when non-nil, is a maintained index structure (AttachIndex)
	// asked first for every query on this graph: analyses it handles are
	// answered without materializing or traversing.
	index IndexServer

	// replicas holds the copies of a read-only replicated graph
	// (RegisterReplicated), each partitioned over its own rank span; rr is
	// the round-robin cursor snapshot() ticks to spread query groups across
	// them. g is replicas[0] so the entry also behaves as a plain graph.
	replicas []*graph.DODGr[VM, EM]
	rr       uint64
}

// cacheKey is the result cache's identity: epoch-keyed, so a mutation
// never serves stale answers — entries of dead epochs are also garbage-
// collected eagerly when the epoch bumps. Traversal options are part of
// the key: analysis values are mode-independent, but QueryResult.Survey
// is not, and serving a push-only client a cached push-pull traversal
// would silently misattribute its statistics.
type cacheKey struct {
	graph  string
	epoch  uint64
	iepoch uint64 // attached index's commit epoch (0 when no index)
	opts   core.Options
	share  string // canonical plan key + analysis id
}

// maxCacheEntries bounds the result cache. Static graphs never bump
// their epoch, so without a bound every distinct question ever asked
// would stay resident; at the cap an arbitrary ~1/8 of entries is
// evicted (the cache is a cost saver, not a correctness structure).
const maxCacheEntries = 4096

// Engine is the long-lived query engine. Construct with New, register
// graphs and streams, Submit from any goroutine, Close when done. All
// traversals and mutations execute on one internal scheduler goroutine;
// every exported method is safe for concurrent use.
type Engine[VM, EM any] struct {
	reg  *Registry[VM, EM]
	opts EngineOptions[EM]

	mu      sync.Mutex
	cond    *sync.Cond
	graphs  map[string]*graphEntry[VM, EM]
	pending []*Job
	cache   map[cacheKey]QueryResult
	stats   Stats
	nextID  uint64
	closed  bool

	loopDone chan struct{}
}

// New creates an engine over the given analysis registry and starts its
// scheduler. The registry must be fully populated before New; the engine
// reads it without locking.
func New[VM, EM any](reg *Registry[VM, EM], opts EngineOptions[EM]) *Engine[VM, EM] {
	e := &Engine[VM, EM]{
		reg:      reg,
		opts:     opts,
		graphs:   make(map[string]*graphEntry[VM, EM]),
		cache:    make(map[cacheKey]QueryResult),
		loopDone: make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	go e.loop()
	return e
}

// Register adds a static graph under name. Static graphs stay at epoch 0:
// their cached answers never expire.
func (e *Engine[VM, EM]) Register(name string, g *graph.DODGr[VM, EM]) error {
	if g == nil {
		return fmt.Errorf("engine: Register(%q): nil graph", name)
	}
	return e.register(&graphEntry[VM, EM]{name: name, g: g})
}

// RegisterStream adds a stream-backed graph under name. Queries run
// against a materialized snapshot of the stream's live edge set, built
// lazily once per epoch; Ingest and Advance through the engine mutate the
// stream, bump the epoch and invalidate that graph's cached answers. After
// registration the stream must only be mutated through the engine —
// direct Ingest/Advance calls would race the scheduler's traversals.
func (e *Engine[VM, EM]) RegisterStream(name string, s *core.Stream[VM, EM]) error {
	if s == nil {
		return fmt.Errorf("engine: RegisterStream(%q): nil stream", name)
	}
	return e.register(&graphEntry[VM, EM]{name: name, stream: s, stale: true})
}

// RegisterReplicated adds a read-only graph under name with multiple
// replicas: copies of the same logical graph, each partitioned over its
// own rank span (graph.SpanPartition), all byte-identical in content. The
// scheduler serves each admitted query group from the next replica round-
// robin, so coalesced read traffic spreads across the rank spans instead
// of always traversing the same shard group. Replicated graphs stay at
// epoch 0 and cannot be mutated; their cached answers are shared across
// replicas (analysis values are partition-independent, property-tested by
// the cross-process equivalence suite).
func (e *Engine[VM, EM]) RegisterReplicated(name string, replicas []*graph.DODGr[VM, EM]) error {
	if len(replicas) == 0 {
		return fmt.Errorf("engine: RegisterReplicated(%q): no replicas", name)
	}
	for i, g := range replicas {
		if g == nil {
			return fmt.Errorf("engine: RegisterReplicated(%q): nil replica %d", name, i)
		}
	}
	return e.register(&graphEntry[VM, EM]{name: name, g: replicas[0], replicas: replicas})
}

func (e *Engine[VM, EM]) register(entry *graphEntry[VM, EM]) error {
	if entry.name == "" {
		return errors.New("engine: empty graph name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if _, dup := e.graphs[entry.name]; dup {
		return fmt.Errorf("engine: graph %q already registered", entry.name)
	}
	e.graphs[entry.name] = entry
	return nil
}

// Graphs lists the registered graph names, sorted.
func (e *Engine[VM, EM]) Graphs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.graphs))
	for n := range e.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Epoch returns the current epoch of a registered graph.
func (e *Engine[VM, EM]) Epoch(name string) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	entry, ok := e.graphs[name]
	if !ok {
		return 0, false
	}
	return entry.epoch, true
}

// Analyses lists the names QuerySpecs may use with this engine, sorted —
// the engine's own registry, not the stock one.
func (e *Engine[VM, EM]) Analyses() []string {
	if e.reg == nil {
		return nil
	}
	return e.reg.Names()
}

// AnalysisInfos lists the argument schema and description of every
// analysis QuerySpecs may use with this engine, sorted by name.
func (e *Engine[VM, EM]) AnalysisInfos() []AnalysisInfo {
	if e.reg == nil {
		return nil
	}
	return e.reg.Describe()
}

// IndexServer is a maintained index structure the engine can attach to a
// graph (AttachIndex): a query whose analysis the index handles is
// answered directly — no stream materialization, no traversal, zero
// transport messages — with a value byte-identical to what the traversal
// path would have produced. The interface is structural so index
// implementations (internal/truss) need not import the engine.
//
// ServeQuery receives the spec's analysis name, raw Args and temporal
// window; handled=false falls the query through to the traversal path.
// IndexEpoch is a commit counter the engine mixes into its cache keys.
// Both methods are called only from the scheduler goroutine, serialized
// with the mutations that update the index.
type IndexServer interface {
	IndexEpoch() uint64
	ServeQuery(analysis string, args json.RawMessage, from, until, delta *uint64) (value any, handled bool, err error)
}

// AttachIndex attaches a maintained index to a registered graph. The
// index must be kept consistent with the graph by its own machinery
// (e.g. a truss.Index attached to the stream's sinks at open); the
// engine only routes queries to it and keys caches on its epoch.
func (e *Engine[VM, EM]) AttachIndex(name string, ix IndexServer) error {
	if ix == nil {
		return fmt.Errorf("engine: AttachIndex(%q): nil index", name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	entry, ok := e.graphs[name]
	if !ok {
		return fmt.Errorf("engine: unknown graph %q", name)
	}
	entry.index = ix
	return nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine[VM, EM]) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Submit validates and enqueues one query, returning its Job immediately.
// The job runs when the scheduler next drains the queue — possibly fused
// with other compatible pending jobs, possibly served from the cache. ctx
// only gates admission: a job whose ctx is done before dispatch fails with
// ctx.Err(); once its traversal starts it runs to completion.
func (e *Engine[VM, EM]) Submit(ctx context.Context, spec Spec) (*Job, error) {
	j, err := e.prepare(ctx, spec)
	if err != nil {
		return nil, err
	}
	return j, e.enqueue(j)
}

// SubmitAll validates every spec, then enqueues all of them atomically: the
// jobs are guaranteed to land in the same admission batch, so compatible
// specs coalesce deterministically (the CLI submits its fused survey list
// this way). On any validation error nothing is enqueued.
func (e *Engine[VM, EM]) SubmitAll(ctx context.Context, specs ...Spec) ([]*Job, error) {
	jobs := make([]*Job, 0, len(specs))
	for i := range specs {
		j, err := e.prepare(ctx, specs[i])
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	return jobs, e.enqueue(jobs...)
}

// prepare validates a spec and compiles its type-erased payload.
func (e *Engine[VM, EM]) prepare(ctx context.Context, spec Spec) (*Job, error) {
	if e.reg == nil {
		return nil, errors.New("engine: no analysis registry (single-shot engines cannot Submit)")
	}
	if _, ok := e.reg.Lookup(spec.Analysis); !ok {
		return nil, fmt.Errorf("engine: unknown analysis %q (registered: %v)", spec.Analysis, e.reg.Names())
	}
	opts, err := spec.options()
	if err != nil {
		return nil, err
	}
	plan, err := compilePlan[EM](&spec, e.opts.Timestamps)
	if err != nil {
		return nil, err
	}
	planKey, ok := plan.Canonical()
	if !ok {
		// Unreachable from a Spec (no predicate fields exist), kept as a
		// guard for future spec growth.
		return nil, fmt.Errorf("engine: spec %q compiled a non-canonical plan", spec.Analysis)
	}
	e.mu.Lock()
	if spec.Graph == "" {
		if len(e.graphs) != 1 {
			n := len(e.graphs)
			e.mu.Unlock()
			return nil, fmt.Errorf("engine: spec names no graph and %d are registered", n)
		}
		for name := range e.graphs {
			spec.Graph = name
		}
	} else if _, ok := e.graphs[spec.Graph]; !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("engine: unknown graph %q", spec.Graph)
	}
	e.nextID++
	id := e.nextID
	e.mu.Unlock()

	return &Job{
		id:   id,
		spec: spec,
		ctx:  ctx,
		done: make(chan struct{}),
		payload: &queryPayload[VM, EM]{
			opts:       opts,
			plan:       plan,
			planKey:    planKey,
			analysisID: spec.analysisID(),
		},
	}, nil
}

// enqueue appends jobs to the pending queue in one critical section (one
// admission batch) and wakes the scheduler — or sheds the whole batch with
// ErrOverloaded when it would push the queue past MaxPending (all-or-
// nothing, so SubmitAll's same-batch guarantee survives shedding).
func (e *Engine[VM, EM]) enqueue(jobs ...*Job) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if e.opts.MaxPending > 0 && len(e.pending)+len(jobs) > e.opts.MaxPending {
		e.stats.Shed += uint64(len(jobs))
		return ErrOverloaded
	}
	e.pending = append(e.pending, jobs...)
	e.stats.Submitted += uint64(len(jobs))
	e.cond.Signal()
	return nil
}

// QueueDepth returns the number of jobs waiting for the scheduler's next
// admission batch.
func (e *Engine[VM, EM]) QueueDepth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// Ingest routes a batch of edge insertions to the named stream-backed
// graph through the scheduler (serialized with traversals), bumps its
// epoch and invalidates its cached answers. Blocks until the mutation ran.
//
// An enqueued mutation always applies, even if ctx expires first: a ctx
// error from Ingest/Advance means only that the caller stopped waiting,
// never that the batch may or may not have landed — retrying it would
// double-apply. Observe completion through Epoch if needed.
func (e *Engine[VM, EM]) Ingest(ctx context.Context, name string, batch []graph.Edge[EM]) (core.Result, error) {
	return e.mutate(ctx, name, &mutation[VM, EM]{kind: wal.KindIngest, batch: batch})
}

// Advance slides the named stream's expiry watermark (see Stream.Advance)
// through the scheduler, bumping the epoch like Ingest.
func (e *Engine[VM, EM]) Advance(ctx context.Context, name string, cutoff uint64) (core.Result, error) {
	return e.mutate(ctx, name, &mutation[VM, EM]{kind: wal.KindAdvance, cutoff: cutoff})
}

func (e *Engine[VM, EM]) mutate(ctx context.Context, name string, m *mutation[VM, EM]) (core.Result, error) {
	if e.opts.Fanout != nil && e.opts.Mutator == nil {
		// Without a mutation seam, a multi-process engine serves static
		// graphs only: the workers would never see the batch and every
		// subsequent traversal would diverge.
		return core.Result{}, errors.New("engine: stream mutations are not supported in a multi-process world yet")
	}
	e.mu.Lock()
	entry, ok := e.graphs[name]
	if !ok {
		e.mu.Unlock()
		return core.Result{}, fmt.Errorf("engine: unknown graph %q", name)
	}
	if entry.stream == nil {
		e.mu.Unlock()
		return core.Result{}, fmt.Errorf("engine: graph %q is not stream-backed", name)
	}
	if e.opts.Mutator != nil && entry.dur == nil {
		// The broadcast re-uses the WAL's record encoding and recovery
		// re-broadcasts from the log, so multi-process streams exist only
		// behind OpenDurableStream.
		e.mu.Unlock()
		return core.Result{}, fmt.Errorf("engine: graph %q: multi-process stream mutations require OpenDurableStream", name)
	}
	e.nextID++
	id := e.nextID
	e.mu.Unlock()
	m.entry = entry
	j := &Job{
		id:      id,
		spec:    Spec{Graph: name},
		ctx:     ctx,
		done:    make(chan struct{}),
		payload: m,
	}
	if err := e.enqueue(j); err != nil {
		return core.Result{}, err
	}
	qr, err := j.Wait(ctx)
	return qr.Survey, err
}

// Close shuts the engine down: still-pending jobs fail with ErrClosed, the
// in-flight dispatch batch (if any) completes, and Close returns once the
// scheduler has exited. Registered graphs and their worlds are the
// caller's to close; Close does not touch them — but write-ahead logs the
// engine opened itself (OpenDurableStream) are synced and closed here.
func (e *Engine[VM, EM]) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.loopDone
		return nil
	}
	e.closed = true
	e.cond.Signal()
	e.mu.Unlock()
	<-e.loopDone
	var err error
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, entry := range e.graphs {
		if entry.dur != nil {
			if cerr := entry.dur.close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}
	return err
}

// --- Scheduler -----------------------------------------------------------

// loop is the scheduler: drain everything pending, dispatch it as one
// admission batch, repeat. Jobs that arrive while a batch executes pile up
// and form the next batch — that admission window is where coalescing
// comes from.
func (e *Engine[VM, EM]) loop() {
	defer close(e.loopDone)
	for {
		e.mu.Lock()
		for len(e.pending) == 0 && !e.closed {
			e.cond.Wait()
		}
		batch := e.pending
		e.pending = nil
		closed := e.closed
		e.mu.Unlock()
		if closed {
			for _, j := range batch {
				e.fail(j, ErrClosed)
			}
			return
		}
		e.dispatch(batch)
	}
}

// dispatch executes one admission batch: queries grouped by (graph,
// traversal options) run first — each group as one fused traversal — then
// mutations in arrival order. Everything in a batch was pending
// concurrently, so no ordering between its members is owed; jobs
// submitted after a mutation returns always see the new epoch.
func (e *Engine[VM, EM]) dispatch(batch []*Job) {
	type groupKey struct {
		graph string
		opts  core.Options
	}
	groups := make(map[groupKey][]*Job)
	var order []groupKey
	var muts []*Job
	for _, j := range batch {
		j.mu.Lock()
		j.status = JobRunning
		j.mu.Unlock()
		if _, isMut := j.payload.(*mutation[VM, EM]); !isMut && j.ctx != nil && j.ctx.Err() != nil {
			// Queries whose admission ctx died are dropped here; mutations
			// are exempt — once enqueued they always apply, so Ingest and
			// Advance have deterministic effects (see mutate).
			e.fail(j, j.ctx.Err())
			continue
		}
		switch p := j.payload.(type) {
		case *mutation[VM, EM]:
			muts = append(muts, j)
		case *queryPayload[VM, EM]:
			k := groupKey{graph: j.spec.Graph, opts: p.opts}
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], j)
		default:
			e.fail(j, fmt.Errorf("engine: job %d has unknown payload %T", j.id, j.payload))
		}
	}
	for _, k := range order {
		e.runGroup(k.graph, k.opts, groups[k])
	}
	for _, j := range muts {
		e.runMutation(j)
	}
}

// share is one distinct question inside a group: a leader job compiled to
// an instance, plus followers with the identical share key that receive
// the leader's answer.
type share[VM, EM any] struct {
	leader    *Job
	followers []*Job
	pay       *queryPayload[VM, EM]
	inst      Instance[VM, EM]
	key       cacheKey
}

// runGroup answers every job of one (graph, options) group with at most
// one fused traversal: cache hits complete immediately, identical
// questions dedupe onto one instance, and the remaining distinct questions
// run fused under their plans' union with per-job residual filters.
func (e *Engine[VM, EM]) runGroup(name string, opts core.Options, jobs []*Job) {
	// Index-backed analyses are answered before anything else: serving
	// from a maintained index needs neither the (possibly stale) snapshot
	// nor a traversal, so a group whose every member the index handles
	// skips materialization entirely — that is where the index's message
	// savings come from.
	e.mu.Lock()
	var ix IndexServer
	var ixEpoch, gEpoch uint64
	if entry, ok := e.graphs[name]; ok && entry.index != nil {
		ix, gEpoch = entry.index, entry.epoch
		ixEpoch = ix.IndexEpoch()
	}
	e.mu.Unlock()
	if ix != nil {
		rest := jobs[:0]
		for _, j := range jobs {
			val, handled, err := ix.ServeQuery(j.spec.Analysis, j.spec.Args, j.spec.From, j.spec.Until, j.spec.Delta)
			if err != nil {
				e.fail(j, err)
				continue
			}
			if !handled {
				rest = append(rest, j)
				continue
			}
			e.complete(j, QueryResult{
				Graph:         name,
				Analysis:      j.spec.Analysis,
				Epoch:         gEpoch,
				Value:         val,
				IndexServed:   true,
				CoalescedWith: 1,
			}, false)
			e.bump(func(st *Stats) { st.IndexServed++ })
		}
		jobs = rest
		if len(jobs) == 0 {
			return
		}
	}

	g, epoch, replica, err := e.snapshot(name)
	if err != nil {
		for _, j := range jobs {
			e.fail(j, err)
		}
		return
	}

	var shares []*share[VM, EM]
	byKey := make(map[string]*share[VM, EM])
	for _, j := range jobs {
		pay := j.payload.(*queryPayload[VM, EM])
		key := cacheKey{graph: name, epoch: epoch, iepoch: ixEpoch, opts: opts, share: pay.shareKey()}
		if !j.spec.NoCache {
			if qr, ok := e.cacheGet(key); ok {
				qr.Cached = true
				e.complete(j, qr, true)
				continue
			}
		}
		if s, ok := byKey[key.share]; ok {
			s.followers = append(s.followers, j)
			continue
		}
		s := &share[VM, EM]{leader: j, pay: pay, key: key}
		byKey[key.share] = s
		shares = append(shares, s)
	}
	if len(shares) == 0 {
		return
	}

	// Compile each distinct question against the current snapshot; a bad
	// factory (malformed Args) fails only its own jobs.
	live := shares[:0]
	for _, s := range shares {
		factory, _ := e.reg.Lookup(s.leader.spec.Analysis)
		inst, err := factory(g, s.leader.spec)
		if err != nil {
			e.fail(s.leader, err)
			for _, f := range s.followers {
				e.fail(f, err)
			}
			continue
		}
		s.inst = inst
		live = append(live, s)
	}
	if len(live) == 0 {
		return
	}

	// The fused traversal runs under the union of the member plans — the
	// weakest plan no member could be hurt by — and members whose own plan
	// is stricter observe through a residual filter.
	plans := make([]*core.Plan[EM], len(live))
	for i, s := range live {
		plans[i] = s.pay.plan
	}
	union, ok := core.UnionPlans(plans)
	if !ok {
		// Unreachable: spec plans never carry opaque predicates. Guard by
		// failing loudly rather than running a wrong plan.
		for _, s := range live {
			e.fail(s.leader, errors.New("engine: non-unionable plans in one group"))
			for _, f := range s.followers {
				e.fail(f, errors.New("engine: non-unionable plans in one group"))
			}
		}
		return
	}
	unionKey, _ := union.Canonical()
	attached := make([]core.Attached[VM, EM], len(live))
	for i, s := range live {
		att := s.inst.Attached
		if s.pay.plan != nil && s.pay.planKey != unionKey {
			plan := s.pay.plan
			att = core.WithResidual(att, func(t *core.Triangle[VM, EM]) bool {
				return plan.MatchEdges(t.MetaPQ, t.MetaPR, t.MetaQR)
			})
		}
		attached[i] = att
	}

	// A multi-process world runs this traversal everywhere: ship the
	// surviving work item (leader specs in share order — the workers
	// recompile them with ExecuteFused) before entering the regions.
	if e.opts.Fanout != nil {
		specs := make([]Spec, len(live))
		for i, s := range live {
			specs[i] = s.leader.spec
		}
		if err := e.opts.Fanout.Traverse(name, replica, opts, specs); err != nil {
			for _, s := range live {
				e.fail(s.leader, err)
				for _, f := range s.followers {
					e.fail(f, err)
				}
			}
			return
		}
	}

	res, err := e.execute(g, opts, union, attached)
	if err != nil {
		for _, s := range live {
			e.fail(s.leader, err)
			for _, f := range s.followers {
				e.fail(f, err)
			}
		}
		return
	}

	njobs := 0
	for _, s := range live {
		njobs += 1 + len(s.followers)
	}
	for _, s := range live {
		qr := QueryResult{
			Graph:         name,
			Analysis:      s.leader.spec.Analysis,
			Epoch:         epoch,
			Value:         s.inst.Result(),
			CoalescedWith: njobs,
			Survey:        res,
		}
		e.complete(s.leader, qr, false)
		wantCache := !s.leader.spec.NoCache
		for _, f := range s.followers {
			e.complete(f, qr, false)
			e.bump(func(st *Stats) { st.Deduped++ })
			// A cache-willing follower deduped onto a NoCache leader still
			// wants the answer cached; NoCache only opts out its own job.
			wantCache = wantCache || !f.spec.NoCache
		}
		if wantCache {
			e.cachePut(s.key, qr)
		}
	}
	if njobs > 1 {
		e.bump(func(st *Stats) { st.Coalesced += uint64(njobs) })
	}
}

// execute runs one fused traversal and accounts its traffic. This is the
// only place the engine touches core.Run; the public Run free function is
// a single-shot engine calling it directly (Once).
func (e *Engine[VM, EM]) execute(g *graph.DODGr[VM, EM], opts core.Options, plan *core.Plan[EM], attached []core.Attached[VM, EM]) (res core.Result, err error) {
	if e.opts.Fanout != nil {
		// With workers in the loop a traversal can die mid-region (a peer
		// process exits, the world poisons, the driver's ranks panic). The
		// server must survive that as a failed batch, not a crash.
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("engine: distributed traversal failed: %v", p)
			}
		}()
	}
	res, err = core.Run(g, opts, plan, attached...)
	if err != nil {
		return res, err
	}
	e.bump(func(st *Stats) {
		st.Traversals++
		st.TraversalMessages += res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
		st.TraversalBytes += res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
	})
	return res, nil
}

// Once is the single-shot engine behind the public Run wrapper: one
// ephemeral engine, one direct traversal, no scheduler, no cache. It
// exists so every traversal in the system flows through Engine.execute.
func Once[VM, EM any](g *graph.DODGr[VM, EM], opts core.Options, plan *core.Plan[EM], analyses ...core.Attached[VM, EM]) (core.Result, error) {
	e := &Engine[VM, EM]{}
	return e.execute(g, opts, plan, analyses)
}

// snapshot returns the queryable graph, epoch and replica index for name,
// materializing a stale stream first (lazily, once per epoch). For
// replicated graphs it ticks the round-robin cursor, so consecutive query
// groups traverse different replicas.
func (e *Engine[VM, EM]) snapshot(name string) (*graph.DODGr[VM, EM], uint64, int, error) {
	e.mu.Lock()
	entry, ok := e.graphs[name]
	if !ok {
		e.mu.Unlock()
		return nil, 0, 0, fmt.Errorf("engine: unknown graph %q", name)
	}
	replica := 0
	if len(entry.replicas) > 1 {
		replica = int(entry.rr % uint64(len(entry.replicas)))
		entry.rr++
		entry.g = entry.replicas[replica]
	}
	g, epoch, stale, stream := entry.g, entry.epoch, entry.stale, entry.stream
	e.mu.Unlock()
	if stale && stream != nil {
		// Materialize outside the lock: it is a collective operation. Only
		// the scheduler goroutine materializes, so there is no race on
		// entry.g/stale. In a multi-process world the workers must enter
		// the same collective, so the materialize is broadcast first.
		var err error
		g, err = e.materialize(name, stream)
		if err != nil {
			return nil, 0, 0, err
		}
		e.mu.Lock()
		entry.g = g
		entry.stale = false
		e.mu.Unlock()
	}
	if g == nil {
		return nil, 0, 0, fmt.Errorf("engine: graph %q has no queryable snapshot", name)
	}
	return g, epoch, replica, nil
}

// materialize runs a stream's collective Materialize, broadcasting it to
// the workers of a multi-process world first and converting a mid-region
// world failure to an error (as execute does for traversals).
func (e *Engine[VM, EM]) materialize(name string, stream *core.Stream[VM, EM]) (g *graph.DODGr[VM, EM], err error) {
	if e.opts.Mutator != nil {
		if err := e.opts.Mutator.Materialize(name); err != nil {
			return nil, fmt.Errorf("engine: materialize broadcast for %q: %w", name, err)
		}
		defer func() {
			if p := recover(); p != nil {
				g, err = nil, fmt.Errorf("engine: distributed materialize failed: %v", p)
			}
		}()
	}
	return stream.Materialize(), nil
}

// runMutation applies one stream mutation, bumps the epoch and drops the
// dead epoch's cache entries. On durable streams the mutation is validated
// (preflight), then logged and fsynced, then applied — the write-ahead
// order — and the epoch is the record's WAL sequence number, so epochs
// survive restarts and stay aligned with the log.
func (e *Engine[VM, EM]) runMutation(j *Job) {
	m := j.payload.(*mutation[VM, EM])
	var res core.Result
	var seq uint64
	var err error
	if e.opts.Mutator != nil {
		res, seq, err = e.applyDist(m)
	} else {
		res, seq, err = e.applyLocal(m)
	}
	if err != nil {
		e.fail(j, err)
		return
	}
	e.mu.Lock()
	if seq != 0 {
		m.entry.epoch = seq
	} else {
		m.entry.epoch++
	}
	m.entry.stale = true
	epoch := m.entry.epoch
	e.stats.Mutations++
	for k := range e.cache {
		if k.graph == m.entry.name && k.epoch < epoch {
			delete(e.cache, k)
		}
	}
	e.mu.Unlock()
	e.complete(j, QueryResult{Graph: m.entry.name, Epoch: epoch, Survey: res}, false)
	if m.entry.dur != nil {
		e.maybeCheckpoint(m.entry)
	}
}

func (e *Engine[VM, EM]) cacheGet(k cacheKey) (QueryResult, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	qr, ok := e.cache[k]
	return qr, ok
}

func (e *Engine[VM, EM]) cachePut(k cacheKey, qr QueryResult) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.cache) >= maxCacheEntries {
		drop := maxCacheEntries / 8
		for old := range e.cache {
			delete(e.cache, old)
			if drop--; drop <= 0 {
				break
			}
		}
	}
	e.cache[k] = qr
}

func (e *Engine[VM, EM]) bump(f func(*Stats)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f(&e.stats)
}

func (e *Engine[VM, EM]) complete(j *Job, qr QueryResult, fromCache bool) {
	j.mu.Lock()
	j.status = JobDone
	j.res = qr
	j.mu.Unlock()
	close(j.done)
	e.bump(func(st *Stats) {
		st.Completed++
		if fromCache {
			st.CacheHits++
		}
	})
}

func (e *Engine[VM, EM]) fail(j *Job, err error) {
	j.mu.Lock()
	j.status = JobFailed
	j.err = err
	j.mu.Unlock()
	close(j.done)
	e.bump(func(st *Stats) { st.Failed++ })
}
