package engine

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/wal"
	"tripoll/internal/ygm"
)

// durableMutation is one scripted Ingest or Advance, shared between the
// reference run and the durable run.
type durableMutation struct {
	batch  []graph.Edge[uint64] // nil = advance
	cutoff uint64
}

// durableScript builds a deterministic mutation sequence: ingest batches
// of fresh timestamped edges with two watermark advances mixed in.
func durableScript(n int, seed int64) []durableMutation {
	rng := rand.New(rand.NewSource(seed))
	muts := make([]durableMutation, 0, n)
	cutoff := uint64(0)
	for i := 0; i < n; i++ {
		if i > 0 && i%4 == 3 {
			cutoff += uint64(rng.Intn(1<<12) + 1)
			muts = append(muts, durableMutation{cutoff: cutoff})
			continue
		}
		var batch []graph.Edge[uint64]
		for _, te := range testEdges(60, 40, seed+int64(i)+100) {
			batch = append(batch, graph.Edge[uint64]{U: te.U, V: te.V, Meta: te.Time})
		}
		muts = append(muts, durableMutation{batch: batch})
	}
	return muts
}

func minMergeU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// applyMutation routes one scripted mutation through an engine.
func applyMutation(t *testing.T, e *Engine[serialize.Unit, uint64], name string, m durableMutation) {
	t.Helper()
	var err error
	if m.batch != nil {
		_, err = e.Ingest(context.Background(), name, m.batch)
	} else {
		_, err = e.Advance(context.Background(), name, m.cutoff)
	}
	if err != nil {
		t.Fatalf("apply mutation: %v", err)
	}
}

// queryJSON answers the given specs through the engine and returns their
// values as canonical JSON, one string per spec.
func queryJSON(t *testing.T, e *Engine[serialize.Unit, uint64], name string, specs []Spec) []string {
	t.Helper()
	out := make([]string, len(specs))
	for i, spec := range specs {
		spec.Graph = name
		j, err := e.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("Submit %v: %v", spec, err)
		}
		qr, err := j.Wait(context.Background())
		if err != nil {
			t.Fatalf("Wait %v: %v", spec, err)
		}
		out[i] = asJSON(t, qr.Value)
	}
	return out
}

// openDurable stands up a world, a seed graph and an engine with one
// durable stream over dir, all from the same deterministic inputs — the
// restart primitive of the crash-recovery tests.
func openDurable(t *testing.T, nranks int, dir string, dopts DurableOptions) (*ygm.World, *Engine[serialize.Unit, uint64], uint64) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	seed := buildTemporal(w, testEdges(60, 300, 42))
	e := New(TemporalRegistry(), EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }})
	_, epoch, err := e.OpenDurableStream("s", seed, core.StreamOptions[uint64]{MergeEdgeMeta: minMergeU64}, core.TemporalPlan(), dopts)
	if err != nil {
		e.Close()
		w.Close()
		t.Fatalf("OpenDurableStream: %v", err)
	}
	return w, e, epoch
}

// lastWALSegment returns the path of the newest segment in dir's WAL.
func lastWALSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.tpw"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no WAL segments in %s (err %v)", dir, err)
	}
	sort.Strings(names)
	return names[len(names)-1]
}

// TestDurableCrashRecoveryProperty is the kill-at-a-boundary /
// kill-mid-record property test: a reference engine applies the whole
// mutation script uninterrupted while the durable engine is crashed twice
// along the way — once cleanly at a record boundary, once with a torn
// partial record appended to the WAL tail (a crash mid-append of the next
// record). After every mutation, on both sides of every recovery, every
// fused analysis must be byte-identical to the reference at that epoch.
func TestDurableCrashRecoveryProperty(t *testing.T) {
	const nranks = 2
	specs := []Spec{
		{Analysis: "count"},
		{Analysis: "closure"},
		{Analysis: "localcounts", Args: json.RawMessage(`{"top":8}`)},
	}
	muts := durableScript(10, 7)
	rng := rand.New(rand.NewSource(99))

	// Reference: same seed, same script, no durability, no interruptions.
	refW := ygm.MustWorld(nranks, ygm.Options{})
	defer refW.Close()
	refSeed := buildTemporal(refW, testEdges(60, 300, 42))
	refStream, err := core.OpenStream(refSeed, core.StreamOptions[uint64]{MergeEdgeMeta: minMergeU64}, core.TemporalPlan())
	if err != nil {
		t.Fatalf("reference OpenStream: %v", err)
	}
	refEng := New(TemporalRegistry(), EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }})
	defer refEng.Close()
	if err := refEng.RegisterStream("s", refStream); err != nil {
		t.Fatalf("RegisterStream: %v", err)
	}
	want := make([][]string, len(muts))
	for i, m := range muts {
		applyMutation(t, refEng, "s", m)
		want[i] = queryJSON(t, refEng, "s", specs)
	}

	dir := t.TempDir()
	// CheckpointEvery 3 forces several snapshot+truncate cycles inside a
	// 10-mutation script, so recovery exercises snapshot loading too.
	dopts := DurableOptions{Dir: dir, CheckpointEvery: 3}
	crashAfter := map[int]bool{2: true, 6: true} // mutation indices to crash behind
	tornTail := map[int]bool{6: true}            // crash #2 tears a partial record

	w, e, epoch := openDurable(t, nranks, dir, dopts)
	if epoch != 0 {
		t.Fatalf("fresh durable stream at epoch %d, want 0", epoch)
	}
	for i, m := range muts {
		applyMutation(t, e, "s", m)
		if ep, _ := e.Epoch("s"); ep != uint64(i+1) {
			t.Fatalf("after mutation %d: epoch %d, want %d", i, ep, i+1)
		}
		if got := queryJSON(t, e, "s", specs); !equalStrings(got, want[i]) {
			t.Fatalf("pre-crash epoch %d: durable != reference\n got %v\nwant %v", i+1, got, want[i])
		}
		if !crashAfter[i] {
			continue
		}
		// "Crash": drop the engine and world. Every acknowledged mutation
		// is fsynced (SyncAlways default), so a clean Close of the file
		// handles loses nothing a real kill would have kept.
		e.Close()
		w.Close()
		if tornTail[i] {
			// A crash mid-append of the next record: a frame header
			// claiming more payload than follows.
			f, err := os.OpenFile(lastWALSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
			if err != nil {
				t.Fatalf("open tail: %v", err)
			}
			junk := make([]byte, 1+rng.Intn(12))
			junk[0] = 0xFF
			if _, err := f.Write(junk); err != nil {
				t.Fatalf("tear tail: %v", err)
			}
			f.Close()
		}
		w, e, epoch = openDurable(t, nranks, dir, dopts)
		if epoch != uint64(i+1) {
			t.Fatalf("recovered at epoch %d, want %d", epoch, i+1)
		}
		if got := queryJSON(t, e, "s", specs); !equalStrings(got, want[i]) {
			t.Fatalf("post-recovery epoch %d: durable != reference\n got %v\nwant %v", i+1, got, want[i])
		}
	}
	e.Close()
	w.Close()

	// One final restart at the script's end: the fully-replayed state must
	// still match, and the WAL must have been checkpoint-truncated at
	// least once (the script crossed CheckpointEvery several times).
	w, e, epoch = openDurable(t, nranks, dir, dopts)
	defer w.Close()
	defer e.Close()
	if epoch != uint64(len(muts)) {
		t.Fatalf("final recovery at epoch %d, want %d", epoch, len(muts))
	}
	if got := queryJSON(t, e, "s", specs); !equalStrings(got, want[len(muts)-1]) {
		t.Fatalf("final recovery: durable != reference\n got %v\nwant %v", got, want[len(muts)-1])
	}
	st, ok := e.DurableStatus("s")
	if !ok {
		t.Fatalf("DurableStatus: not durable")
	}
	// Checkpoints truncated the log in an earlier process life, so this
	// fresh Open must have replayed far fewer records than the script ran
	// while still resuming at the script's final sequence.
	if st.WAL.LastSeq != uint64(len(muts)) {
		t.Errorf("WAL LastSeq = %d, want %d", st.WAL.LastSeq, len(muts))
	}
	if st.WAL.Records >= uint64(len(muts)) {
		t.Errorf("WAL holds %d records after %d mutations: checkpoint truncation never ran", st.WAL.Records, len(muts))
	}
	if st.CheckpointError != "" {
		t.Errorf("checkpoint error: %s", st.CheckpointError)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDurableAdvancePreflight: a backwards Advance on a durable stream
// must fail without leaving a record in the WAL — otherwise replay would
// deterministically fail on it.
func TestDurableAdvancePreflight(t *testing.T) {
	dir := t.TempDir()
	w, e, _ := openDurable(t, 2, dir, DurableOptions{Dir: dir})
	defer w.Close()
	defer e.Close()

	ctx := context.Background()
	if _, err := e.Advance(ctx, "s", 1000); err != nil {
		t.Fatalf("Advance(1000): %v", err)
	}
	if _, err := e.Advance(ctx, "s", 10); err == nil {
		t.Fatalf("backwards Advance succeeded")
	}
	st, _ := e.DurableStatus("s")
	if st.WAL.LastSeq != 1 {
		t.Errorf("WAL LastSeq = %d after rejected Advance, want 1 (no record logged)", st.WAL.LastSeq)
	}
}

// TestDurableCorruptManifestIsTypedError: an unreadable manifest must be
// surfaced as corruption, never treated as a fresh start (that would
// silently drop the whole checkpoint).
func TestDurableCorruptManifestIsTypedError(t *testing.T) {
	dir := t.TempDir()
	w, e, _ := openDurable(t, 2, dir, DurableOptions{Dir: dir, CheckpointEvery: 1})
	applyMutation(t, e, "s", durableScript(1, 3)[0]) // checkpoint fires
	e.Close()
	w.Close()

	man := filepath.Join(dir, "MANIFEST")
	data, err := os.ReadFile(man)
	if err != nil {
		t.Fatalf("read manifest: %v", err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(man, data, 0o644); err != nil {
		t.Fatalf("rewrite manifest: %v", err)
	}

	w2 := ygm.MustWorld(2, ygm.Options{})
	defer w2.Close()
	seed := buildTemporal(w2, testEdges(60, 300, 42))
	e2 := New(TemporalRegistry(), EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }})
	defer e2.Close()
	_, _, err = e2.OpenDurableStream("s", seed, core.StreamOptions[uint64]{MergeEdgeMeta: minMergeU64}, core.TemporalPlan(), DurableOptions{Dir: dir})
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("corrupt manifest: err = %v, want ErrCorrupt", err)
	}
}

// TestAdmissionQueueSheds exercises MaxPending without the scheduler: an
// engine whose loop never starts accumulates pending jobs, so admission
// decisions are deterministic.
func TestAdmissionQueueSheds(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	g := buildTemporal(w, testEdges(40, 200, 6))

	e := &Engine[serialize.Unit, uint64]{
		reg:      TemporalRegistry(),
		opts:     EngineOptions[uint64]{Timestamps: func(ts uint64) uint64 { return ts }, MaxPending: 2},
		graphs:   map[string]*graphEntry[serialize.Unit, uint64]{},
		cache:    map[cacheKey]QueryResult{},
		loopDone: make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	e.graphs["g"] = &graphEntry[serialize.Unit, uint64]{name: "g", g: g}

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(ctx, Spec{Analysis: "count"}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := e.Submit(ctx, Spec{Analysis: "count"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Submit over MaxPending: err = %v, want ErrOverloaded", err)
	}
	if d := e.QueueDepth(); d != 2 {
		t.Errorf("QueueDepth = %d, want 2", d)
	}
	// SubmitAll is all-or-nothing: a batch that would overflow sheds
	// entirely, leaving the queue untouched.
	e.mu.Lock()
	e.pending = e.pending[:1]
	e.mu.Unlock()
	if _, err := e.SubmitAll(ctx, Spec{Analysis: "count"}, Spec{Analysis: "closure"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("SubmitAll overflow: err = %v, want ErrOverloaded", err)
	}
	if d := e.QueueDepth(); d != 1 {
		t.Errorf("QueueDepth after shed batch = %d, want 1", d)
	}
	if st := e.Stats(); st.Shed != 3 {
		t.Errorf("Stats.Shed = %d, want 3", st.Shed)
	}
}
