// The mutation seam. Traversals cross process boundaries through Fanout
// (remote.go); mutations cross through Mutator. The scheduler's mutation
// pipeline — preflight, WAL append, collective apply, epoch bump — is the
// same in both worlds; what differs is that a multi-process world must
// deliver the batch to every process and prove it applied before the next
// traversal fans out. The seam is deliberately narrow and byte-oriented:
// the driver ships the exact bytes the WAL logs (wal.EncodeBatch), so the
// write-ahead record and the broadcast are one encoding, and replaying the
// log after a crash re-broadcasts the same frames the lost run sent.
//
// Two-phase shape: the driver appends + fsyncs the record (the durability
// point), broadcasts the mutation with its WAL sequence number as the
// epoch, enters the collective apply with every worker, then collects one
// acknowledgement per worker (Commit). Only after every process has
// acknowledged does the epoch bump and the next traversal dispatch — a
// worker that dies mid-mutation fails the admission batch with a typed
// error instead of letting driver and survivors diverge silently.
package engine

import (
	"fmt"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/wal"
)

// Mutator mirrors Fanout for the mutation path of a multi-process world:
// it delivers stream mutations to every worker process so the collective
// apply runs world-wide. All methods are called from the scheduler
// goroutine only. Implemented by dist.Cluster.
type Mutator interface {
	// OpenStream directs every worker to open its side of a stream over
	// the named built graph; policy names the stream configuration
	// (options, plan, analyses) the worker binary maps back to code,
	// exactly as BuildSpec.Policy does for builds. The caller runs the
	// driver's core.OpenStream immediately after — stream construction is
	// itself a collective.
	OpenStream(graph, policy string) error
	// Ingest broadcasts one edge batch, encoded with wal.EncodeBatch, to
	// be applied at the given epoch (the batch's WAL sequence number).
	// The caller enters Stream.Ingest immediately after; the apply's own
	// collectives synchronize the processes.
	Ingest(graph string, epoch uint64, batch []byte) error
	// Advance broadcasts one expiry-watermark advance, same contract as
	// Ingest.
	Advance(graph string, epoch, cutoff uint64) error
	// Materialize directs every worker to re-materialize the stream's
	// queryable snapshot; the caller runs the driver's Materialize
	// immediately after (also a collective).
	Materialize(graph string) error
	// Commit collects one acknowledgement per worker for the mutation at
	// epoch — the second phase. An error (typically wrapping
	// dist.ErrWorkerLeft) means some process cannot prove it applied the
	// mutation; the engine fails the job and the cluster is poisoned for
	// further work.
	Commit(graph string, epoch uint64) error
}

// mutation is the typed half of a stream mutation job: pure data, so the
// local and distributed appliers (and the WAL record) all derive from one
// description instead of capturing closures.
type mutation[VM, EM any] struct {
	entry  *graphEntry[VM, EM]
	kind   wal.Kind
	batch  []graph.Edge[EM] // KindIngest
	cutoff uint64           // KindAdvance
}

// preflight validates the mutation against the live stream without
// applying it — the checks a replay would also pass, run before the WAL
// append so a rejected mutation is never logged.
func (m *mutation[VM, EM]) preflight() error {
	if m.kind == wal.KindAdvance {
		return m.entry.stream.CheckAdvance(m.cutoff)
	}
	return nil
}

// logAppend writes the mutation's write-ahead record.
func (m *mutation[VM, EM]) logAppend(l *wal.Log[EM]) (uint64, error) {
	if m.kind == wal.KindIngest {
		return l.AppendIngest(m.batch)
	}
	return l.AppendAdvance(m.cutoff)
}

// applyStream enters the mutation's collective apply on the local ranks.
func (m *mutation[VM, EM]) applyStream() (core.Result, error) {
	if m.kind == wal.KindIngest {
		return m.entry.stream.Ingest(m.batch)
	}
	return m.entry.stream.Advance(m.cutoff)
}

// applyLocal is the single-process mutation pipeline: preflight, WAL
// append (durable streams), apply. Returns the WAL sequence number (0 for
// plain streams).
func (e *Engine[VM, EM]) applyLocal(m *mutation[VM, EM]) (core.Result, uint64, error) {
	if err := m.preflight(); err != nil {
		return core.Result{}, 0, err
	}
	seq := uint64(0)
	if m.entry.dur != nil {
		s, err := m.entry.dur.append(m.logAppend)
		if err != nil {
			return core.Result{}, 0, fmt.Errorf("engine: wal append for %q: %w", m.entry.name, err)
		}
		seq = s
	}
	res, err := m.applyStream()
	return res, seq, err
}

// applyDist is the multi-process pipeline: preflight, WAL append + fsync
// (the durability point — driver-side only), broadcast with the record's
// sequence number as the epoch, collective apply, commit round. The WAL
// append precedes the broadcast, so a crash between them re-broadcasts
// the record at recovery instead of losing an acknowledged mutation.
func (e *Engine[VM, EM]) applyDist(m *mutation[VM, EM]) (core.Result, uint64, error) {
	if err := m.preflight(); err != nil {
		return core.Result{}, 0, err
	}
	seq, err := m.entry.dur.append(m.logAppend)
	if err != nil {
		return core.Result{}, 0, fmt.Errorf("engine: wal append for %q: %w", m.entry.name, err)
	}
	if err := e.broadcastMutation(m, seq); err != nil {
		return core.Result{}, seq, err
	}
	res, err := e.applyCollective(m)
	if err != nil {
		return core.Result{}, seq, err
	}
	if err := e.opts.Mutator.Commit(m.entry.name, seq); err != nil {
		return core.Result{}, seq, fmt.Errorf("engine: mutation commit for %q at epoch %d: %w", m.entry.name, seq, err)
	}
	return res, seq, nil
}

// broadcastMutation ships one logged mutation to every worker, encoding
// ingest batches exactly as the WAL does.
func (e *Engine[VM, EM]) broadcastMutation(m *mutation[VM, EM], seq uint64) error {
	var err error
	switch m.kind {
	case wal.KindIngest:
		err = e.opts.Mutator.Ingest(m.entry.name, seq, wal.EncodeBatch(m.entry.codec, m.batch))
	case wal.KindAdvance:
		err = e.opts.Mutator.Advance(m.entry.name, seq, m.cutoff)
	default:
		err = fmt.Errorf("unknown mutation kind %d", m.kind)
	}
	if err != nil {
		return fmt.Errorf("engine: mutation broadcast for %q: %w", m.entry.name, err)
	}
	return nil
}

// applyCollective enters the mutation's collective apply with the workers
// in the world. A worker dying mid-apply poisons the world and panics the
// driver's ranks (exactly as in execute); the recover converts that to a
// job error so the scheduler survives. The commit round is then skipped —
// the mutation is logged but unacknowledged, and recovery re-broadcasts
// it to a fresh world.
func (e *Engine[VM, EM]) applyCollective(m *mutation[VM, EM]) (res core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: distributed mutation failed: %v", p)
		}
	}()
	return m.applyStream()
}
