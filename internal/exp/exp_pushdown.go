package exp

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// TemporalDataset is a timestamped ablation stand-in. The Reddit-like
// stream carries its generator's bursty event times; the topology-only
// stand-ins get uniform pseudo-random timestamps over a fixed horizon, so
// a δ-window has a predictable selectivity (P[spread ≤ δ] ≈ small) on
// every graph shape.
type TemporalDataset struct {
	Name    string
	Analog  string
	Edges   []graph.TemporalEdge
	Horizon uint64 // max timestamp bound (exclusive for uniform times)
}

// pushdownHorizon is the uniform-timestamp horizon for the topology
// stand-ins; δ is chosen as a fixed fraction of it.
const pushdownHorizon = 1 << 20

// TemporalDatasets builds the timestamped stand-ins the pushdown ablation
// (and any future temporal workload) surveys.
func TemporalDatasets(cfg Config) []TemporalDataset {
	cfg = cfg.withDefaults()
	var out []TemporalDataset
	rp := redditParams(cfg)
	reddit := gen.RedditLike(rp)
	var rhorizon uint64
	for _, e := range reddit {
		if e.Time > rhorizon {
			rhorizon = e.Time
		}
	}
	out = append(out, TemporalDataset{Name: "reddit-like", Analog: "Reddit [5.2]", Edges: reddit, Horizon: rhorizon + 1})
	for _, d := range Datasets(cfg) {
		h := fnv.New64a()
		h.Write([]byte(d.Name))
		rng := rand.New(rand.NewSource(int64(h.Sum64())))
		edges := make([]graph.TemporalEdge, len(d.Edges))
		for i, e := range d.Edges {
			edges[i] = graph.TemporalEdge{U: e[0], V: e[1], Time: uint64(rng.Int63n(pushdownHorizon))}
		}
		out = append(out, TemporalDataset{Name: d.Name, Analog: d.Analog, Edges: edges, Horizon: pushdownHorizon})
	}
	return out
}

// AblationPushdown measures what survey-plan predicate pushdown saves: a
// δ-windowed triangle count run twice over the same graph — once as the
// post-filter baseline (unplanned survey, Plan.MatchEdges applied in the
// callback) and once with the plan's predicates pushed into the push/pull
// phases — reporting transport messages, bytes, and wedge checks (the
// |W⁺|-work actually performed). Because message accounting sits at the
// transport seam (DESIGN.md §1), the prune claim is mechanical: the same
// count with strictly less communication, on every dataset and in both
// algorithms. The driver self-verifies both halves of that sentence.
func AblationPushdown(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "pushdown", Title: "Ablation: predicate pushdown vs post-filtering, δ-windowed count"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	tb := stats.NewTable(fmt.Sprintf("(%d ranks, δ = horizon/16; baseline filters in the callback)", n),
		"Graph", "mode", "strategy", "matched", "messages", "bytes", "wedge checks", "survey")

	for _, d := range TemporalDatasets(cfg) {
		delta := d.Horizon / 16
		plan := core.TemporalPlan().CloseWithin(delta)
		w, g := BuildTemporal(cfg, n, d.Edges)
		for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
			type outcome struct {
				matched uint64
				msgs    int64
				bytes   int64
				wedges  uint64
				dur     time.Duration
				m       Measured
			}
			run := func(pushdown bool) outcome {
				sp := BeginMeasure()
				if pushdown {
					res, err := core.WindowedCount(g, plan, core.Options{Mode: mode})
					if err != nil {
						panic("pushdown ablation: " + err.Error())
					}
					return outcome{res.Triangles, msgsOf(res), bytesOf(res), res.WedgeChecks, res.Total, sp.End()}
				}
				matched := make([]uint64, n)
				s := core.NewSurvey(g, core.Options{Mode: mode}, func(r *ygm.Rank, t *core.Triangle[serialize.Unit, uint64]) {
					if plan.MatchEdges(t.MetaPQ, t.MetaPR, t.MetaQR) {
						matched[r.ID()]++
					}
				})
				res := s.Run()
				var m uint64
				for _, c := range matched {
					m += c
				}
				return outcome{m, msgsOf(res), bytesOf(res), res.WedgeChecks, res.Total, sp.End()}
			}
			base := run(false)
			pd := run(true)
			for _, o := range []struct {
				strat string
				oc    outcome
			}{{"post-filter", base}, {"pushdown", pd}} {
				tb.AddRow(d.Name, mode.String(), o.strat,
					stats.FormatCount(o.oc.matched),
					stats.FormatCount(uint64(o.oc.msgs)),
					stats.FormatBytes(o.oc.bytes),
					stats.FormatCount(o.oc.wedges),
					stats.FormatDuration(o.oc.dur))
				prefix := fmt.Sprintf("pushdown/%s/%s/%s", d.Name, mode.String(), o.strat)
				extra := fmt.Sprintf("dataset=%s ranks=%d mode=%s delta=%d", d.Name, n, mode.String(), delta)
				rep.metric(prefix+"/messages", float64(o.oc.msgs), "msgs", extra)
				rep.metric(prefix+"/bytes", float64(o.oc.bytes), "bytes", extra)
				rep.metric(prefix+"/wedge_checks", float64(o.oc.wedges), "wedges", extra)
				rep.metricM(prefix+"/survey_ns", float64(o.oc.dur.Nanoseconds()), "ns/op", extra, o.oc.m)
			}
			switch {
			case pd.matched != base.matched:
				rep.notef("COUNT MISMATCH on %s/%s: pushdown matched %d, post-filter %d",
					d.Name, mode, pd.matched, base.matched)
			case pd.msgs >= base.msgs || pd.bytes >= base.bytes:
				rep.notef("UNEXPECTED: pushdown did not strictly reduce traffic on %s/%s: %d→%d msgs, %d→%d bytes",
					d.Name, mode, base.msgs, pd.msgs, base.bytes, pd.bytes)
			default:
				rep.notef("%s/%s: messages %s→%s (−%.1f%%), bytes %s→%s (−%.1f%%), wedge checks −%.1f%%",
					d.Name, mode,
					stats.FormatCount(uint64(base.msgs)), stats.FormatCount(uint64(pd.msgs)),
					100*(1-float64(pd.msgs)/float64(base.msgs)),
					stats.FormatBytes(base.bytes), stats.FormatBytes(pd.bytes),
					100*(1-float64(pd.bytes)/float64(base.bytes)),
					100*(1-float64(pd.wedges)/float64(max64(base.wedges, 1))))
			}
		}
		w.Close()
	}
	rep.Output = tb.Render()
	rep.notef("δ-windows prune per wedge at the source (two of three timestamps are known before enqueue); identical matched counts are the pushdown ≡ post-filter property, also unit-tested in internal/core")
	return rep
}

func msgsOf(res core.Result) int64 {
	return res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
}

func bytesOf(res core.Result) int64 {
	return res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
}
