package exp

import (
	"strings"
	"testing"
)

func compareFixture() BenchRecord {
	rec := NewBenchRecord(BenchCommit{ID: "test"}, 1, nil)
	rec.Benches = []Metric{
		{Name: "hotpath/pushonly/run", Value: 1_000_000, Unit: "ns/op",
			WallNs: 1_000_000, Allocs: 22, AllocBytes: 616},
		{Name: "hotpath/pushonly/push_bytes", Value: 50_000, Unit: "bytes"},
		{Name: "hotpath/stream/ingest", Value: 40_000, Unit: "ns/op",
			WallNs: 40_000, Allocs: 34, AllocBytes: 1_140},
	}
	return rec
}

func findReg(regs []Regression, name, field string) *Regression {
	for i := range regs {
		if regs[i].Name == name && regs[i].Field == field {
			return &regs[i]
		}
	}
	return nil
}

func TestCompareRecordsIdenticalPasses(t *testing.T) {
	rec := compareFixture()
	if regs := CompareRecords(rec, rec, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("identical records produced regressions: %v", regs)
	}
}

// The CI gate's core promise: a 2× wall regression fails the default
// comparison, and -skip-wall waves the same regression through (the
// cross-machine mode) while still holding the line on allocator numbers.
func TestCompareRecordsWallRegression(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()
	newRec.Benches[0].Value *= 2
	newRec.Benches[0].WallNs *= 2

	regs := CompareRecords(oldRec, newRec, CompareOptions{})
	if findReg(regs, "hotpath/pushonly/run", "value") == nil {
		t.Errorf("2x ns/op value regression not flagged: %v", regs)
	}
	if findReg(regs, "hotpath/pushonly/run", "wall_ns") == nil {
		t.Errorf("2x wall_ns regression not flagged: %v", regs)
	}

	if regs := CompareRecords(oldRec, newRec, CompareOptions{SkipWall: true}); len(regs) != 0 {
		t.Errorf("SkipWall still flagged wall-only regressions: %v", regs)
	}

	// SkipWall is not a blanket waiver: an alloc regression in the same
	// record still fails.
	newRec.Benches[2].Allocs = 500
	regs = CompareRecords(oldRec, newRec, CompareOptions{SkipWall: true})
	if findReg(regs, "hotpath/stream/ingest", "allocs") == nil {
		t.Errorf("SkipWall suppressed an alloc regression: %v", regs)
	}
}

// Wall noise floor: a regression that is large in ratio but tiny in
// absolute ns is jitter, not a regression.
func TestCompareRecordsWallNoiseFloor(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()
	oldRec.Benches[0].WallNs = 10_000 // 10 µs baseline
	oldRec.Benches[0].Value = 10_000
	newRec.Benches[0].WallNs = 60_000 // 6x, but only +50 µs — under the floor
	newRec.Benches[0].Value = 60_000
	if regs := CompareRecords(oldRec, newRec, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("sub-floor wall jitter flagged as regression: %v", regs)
	}
}

func TestCompareRecordsAllocTolerance(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()

	// Inside ratio+slack: 22 -> 38 is within 22*1.10+16.
	newRec.Benches[0].Allocs = 38
	if regs := CompareRecords(oldRec, newRec, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("allocs within slack flagged: %v", regs)
	}
	// Just beyond: fails.
	newRec.Benches[0].Allocs = 41
	regs := CompareRecords(oldRec, newRec, CompareOptions{})
	r := findReg(regs, "hotpath/pushonly/run", "allocs")
	if r == nil {
		t.Fatalf("allocs beyond slack not flagged: %v", regs)
	}
	if r.Limit < 40 || r.Limit > 41 {
		t.Errorf("alloc limit = %v, want 22*1.10+16 = 40.2", r.Limit)
	}
}

// Whole-experiment roll-up metrics ("<id>/wall_ns") carry process-wide
// alloc brackets that swing with GC timing between identical sessions:
// their brackets gate at the wall tolerance and vanish under -skip-wall,
// while per-op driver brackets keep the tight ratio.
func TestCompareRecordsRollupBracketsAreWallGrade(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()
	rollup := Metric{Name: "hotpath/wall_ns", Value: 5e9, Unit: "ns/op",
		WallNs: 5e9, Allocs: 7_000_000, AllocBytes: 1.4e8}
	oldRec.Benches = append(oldRec.Benches, rollup)
	grown := rollup
	grown.Allocs *= 1.3 // session drift: over 1.10, under 1.5
	grown.AllocBytes *= 1.3
	newRec.Benches = append(newRec.Benches, grown)

	if regs := CompareRecords(oldRec, newRec, CompareOptions{}); len(regs) != 0 {
		t.Errorf("1.3x roll-up bracket drift flagged at the tight ratio: %v", regs)
	}
	grown.Allocs = rollup.Allocs * 2 // beyond even the wall ratio
	newRec.Benches[len(newRec.Benches)-1] = grown
	if regs := CompareRecords(oldRec, newRec, CompareOptions{}); findReg(regs, "hotpath/wall_ns", "allocs") == nil {
		t.Errorf("2x roll-up bracket regression not flagged: %v", regs)
	}
	if regs := CompareRecords(oldRec, newRec, CompareOptions{SkipWall: true}); len(regs) != 0 {
		t.Errorf("-skip-wall still gated a roll-up bracket: %v", regs)
	}
}

func TestCompareRecordsCounterRegression(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()
	// Non-time counters are deterministic: +10% wire bytes fails at 1.05.
	newRec.Benches[1].Value = 55_000
	regs := CompareRecords(oldRec, newRec, CompareOptions{})
	if findReg(regs, "hotpath/pushonly/push_bytes", "value") == nil {
		t.Fatalf("counter regression not flagged: %v", regs)
	}
	// Counters never hit the wall floor: the same +10% expressed in a
	// wall-sized value would pass, a bytes counter must not.
	if findReg(regs, "hotpath/pushonly/push_bytes", "value").Limit != 50_000*1.05 {
		t.Errorf("counter limit should be old*CountRatio")
	}
}

func TestCompareRecordsImprovementsPass(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()
	for i := range newRec.Benches {
		newRec.Benches[i].Value /= 2
		newRec.Benches[i].WallNs /= 2
		newRec.Benches[i].Allocs /= 2
		newRec.Benches[i].AllocBytes /= 2
	}
	if regs := CompareRecords(oldRec, newRec, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("one-sided gate flagged improvements: %v", regs)
	}
}

func TestCompareRecordsMissingAndNewMetrics(t *testing.T) {
	oldRec, newRec := compareFixture(), compareFixture()
	// Dropped metric: coverage loss, fails.
	newRec.Benches = newRec.Benches[:2]
	regs := CompareRecords(oldRec, newRec, CompareOptions{})
	r := findReg(regs, "hotpath/stream/ingest", "missing")
	if r == nil {
		t.Fatalf("dropped metric not flagged: %v", regs)
	}
	if !strings.Contains(r.String(), "missing") {
		t.Errorf("missing-metric message unclear: %q", r.String())
	}

	// New-only metric: new instrumentation, passes.
	oldRec2, newRec2 := compareFixture(), compareFixture()
	newRec2.Benches = append(newRec2.Benches, Metric{Name: "hotpath/new/thing", Value: 9, Unit: "count"})
	if regs := CompareRecords(oldRec2, newRec2, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("new-only metric flagged: %v", regs)
	}
}

func TestIsWallUnit(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": true, "ns": true, "ms": true,
		"bytes": false, "count": false, "allocs/op": false, "": false,
	} {
		if got := isWallUnit(unit); got != want {
			t.Errorf("isWallUnit(%q) = %v, want %v", unit, got, want)
		}
	}
}
