package exp

import (
	"fmt"
	"runtime"

	"tripoll/internal/core"
	"tripoll/internal/rmat"
	"tripoll/internal/stats"
)

// Table1 regenerates the dataset-overview table: |V|, |E| (directed,
// symmetrized), |T|, dmax and dmax⁺ for every stand-in dataset.
func Table1(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "table1", Title: "Datasets used for experiments (stand-ins for Tab. 1)"}
	tb := stats.NewTable("", "Graph", "stands in for", "|V|", "|E|", "|T|", "dmax", "dmax+")
	for _, ds := range Datasets(cfg) {
		w, g := BuildUnit(cfg, 4, ds.Edges)
		res := core.Count(g, core.Options{})
		tb.AddRow(ds.Name, ds.Analog,
			stats.FormatCount(g.NumVertices()),
			stats.FormatCount(g.NumDirectedEdges()),
			stats.FormatCount(res.Triangles),
			stats.FormatCount(uint64(g.MaxDegree())),
			stats.FormatCount(uint64(g.MaxOutDegree())))
		if g.MaxOutDegree() >= g.MaxDegree() && g.MaxDegree() > 8 {
			rep.notef("%s: dmax+ (%d) not ≪ dmax (%d) — DODGr should shrink hubs", ds.Name, g.MaxOutDegree(), g.MaxDegree())
		}
		w.Close()
	}
	rep.Output = tb.Render()
	rep.notef("paper shape: dmax+ is orders of magnitude below dmax on every graph (Tab. 1)")
	return rep
}

// Fig4 regenerates the strong-scaling study of push-pull triangle counting.
//
// The ranks here are goroutines sharing this host's physical cores, so
// wall-clock speedup is bounded by runtime.NumCPU(), not by the algorithm.
// The scaling claim of Fig. 4 is therefore judged on the critical-path work
// measure: the maximum per-rank wedge-check count, whose inverse is the
// speedup a physical deployment realizes. Wall time and per-phase times
// are reported for reference; communication volume shows the §5.4 cost of
// scaling (lost aggregation opportunities).
func Fig4(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fig4", Title: "Strong scaling of each phase of the Push-Pull algorithm (Fig. 4)"}
	tb := stats.NewTable("", "Graph", "ranks", "max rank work", "work speedup", "balance", "comm volume", "dry-run", "push", "pull", "wall", "triangles")
	for _, ds := range Datasets(cfg) {
		var baseWork uint64
		var firstCount uint64
		var volumes []int64
		for _, n := range cfg.rankSweep() {
			w, g := BuildUnit(cfg, n, ds.Edges)
			res := core.Count(g, core.Options{Mode: core.PushPull})
			if n == 1 {
				baseWork = res.MaxRankWedgeChecks
				firstCount = res.Triangles
			} else if res.Triangles != firstCount {
				rep.notef("COUNT MISMATCH on %s at %d ranks: %d vs %d", ds.Name, n, res.Triangles, firstCount)
			}
			vol := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
			volumes = append(volumes, vol)
			tb.AddRow(ds.Name, fmt.Sprintf("%d", n),
				stats.FormatCount(res.MaxRankWedgeChecks),
				fmt.Sprintf("%.2fx", float64(baseWork)/float64(max64(res.MaxRankWedgeChecks, 1))),
				fmt.Sprintf("%.2f", res.WorkBalance),
				stats.FormatBytes(vol),
				stats.FormatDuration(res.DryRun.Duration),
				stats.FormatDuration(res.Push.Duration),
				stats.FormatDuration(res.Pull.Duration),
				stats.FormatDuration(res.Total),
				stats.FormatCount(res.Triangles))
			w.Close()
		}
		last := len(volumes) - 1
		if last > 0 && volumes[last] <= volumes[0] {
			rep.notef("UNEXPECTED: %s communication volume did not grow with rank count", ds.Name)
		}
	}
	rep.Output = tb.Render()
	rep.notef("host has %d CPU core(s); ranks are simulated, so wall time cannot parallelize — work speedup is the deployment-relevant curve", runtime.NumCPU())
	rep.notef("paper shape: near-linear work speedup with gradually rising communication volume as per-rank aggregation opportunities shrink (§5.4)")
	return rep
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Fig5 regenerates the R-MAT weak-scaling study: one fixed-scale R-MAT per
// rank. The paper's vertical axis is |W⁺|/(N·t); on a simulated-rank host
// the wall-clock rate is CPU-bound, so the §5.5 mechanism — shrinking
// aggregation opportunities as ranks grow — is additionally quantified as
// bytes moved per wedge check, which rises with rank count independent of
// scheduling.
func Fig5(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fig5", Title: "Weak scaling of triangle counting on R-MAT graphs (Fig. 5)"}
	// Paper: scale 24 per node. Stand-in: scale ~12 per rank at Scale=1.
	baseScale := 12
	if cfg.Scale < 0.25 {
		baseScale = 9
	}
	tb := stats.NewTable("", "ranks", "rmat scale", "|E| gen", "|W+|", "wall", "|W+|/(N*t) /s", "bytes/wedge", "balance", "triangles")
	var bytesPerWedge []float64
	for _, n := range cfg.rankSweep() {
		s := baseScale
		for m := n; m > 1; m /= 2 {
			s++
		}
		p := rmat.Params{Scale: s, Seed: 500, Scramble: true}
		w, g := BuildRMATRanged(cfg, n, p)
		res := core.Count(g, core.Options{Mode: core.PushPull})
		rate := float64(g.NumWedges()) / (float64(n) * res.Total.Seconds())
		vol := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
		bpw := float64(vol) / float64(max64(g.NumWedges(), 1))
		bytesPerWedge = append(bytesPerWedge, bpw)
		tb.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", s),
			stats.FormatCount(p.NumEdges()),
			stats.FormatCount(g.NumWedges()),
			stats.FormatDuration(res.Total),
			stats.FormatCount(uint64(rate)),
			fmt.Sprintf("%.3f", bpw),
			fmt.Sprintf("%.2f", res.WorkBalance),
			stats.FormatCount(res.Triangles))
		w.Close()
	}
	rep.Output = tb.Render()
	if len(bytesPerWedge) >= 2 && bytesPerWedge[len(bytesPerWedge)-1] > bytesPerWedge[0] {
		rep.notef("bytes moved per wedge rises %.3f → %.3f with rank count — the §5.5 aggregation-loss mechanism behind the paper's decaying work rate", bytesPerWedge[0], bytesPerWedge[len(bytesPerWedge)-1])
	}
	rep.notef("host has %d CPU core(s); the |W+|/(N*t) column is CPU-bound here, shape-comparable only on a real cluster", runtime.NumCPU())
	return rep
}

// Fig9 regenerates the metadata-impact study: weak scaling with dummy
// metadata (plain counting) versus vertex-degree metadata plus the
// log₂-degree-triple counting callback, for both algorithms.
func Fig9(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fig9", Title: "Effects of metadata inclusion on weak scaling (Fig. 9)"}
	baseScale := 11
	if cfg.Scale < 0.25 {
		baseScale = 8
	}
	tb := stats.NewTable("", "ranks", "algorithm", "metadata", "time", "|W+|/(N*t) /s", "triangles")
	type cell struct{ dummy, meta float64 }
	rates := map[string]map[int]*cell{"push-only": {}, "push-pull": {}}
	for _, n := range cfg.rankSweep() {
		s := baseScale
		for m := n; m > 1; m /= 2 {
			s++
		}
		p := rmat.Params{Scale: s, Seed: 900, Scramble: true}
		edges := make([][2]uint64, 0, p.NumEdges())
		p.Generate(0, p.NumEdges(), func(u, v uint64) { edges = append(edges, [2]uint64{u, v}) })
		for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
			// Dummy metadata: plain count.
			wU, gU := BuildUnit(cfg, n, edges)
			resU := core.Count(gU, core.Options{Mode: mode})
			rateU := float64(gU.NumWedges()) / (float64(n) * resU.Total.Seconds())
			tb.AddRow(fmt.Sprintf("%d", n), mode.String(), "dummy",
				stats.FormatDuration(resU.Total), stats.FormatCount(uint64(rateU)), stats.FormatCount(resU.Triangles))
			wU.Close()

			// Degree metadata + nontrivial callback.
			wD, gD := BuildDegreeMeta(cfg, n, edges)
			_, resD := core.DegreeTriples(gD, core.Options{Mode: mode})
			rateD := float64(gD.NumWedges()) / (float64(n) * resD.Total.Seconds())
			tb.AddRow(fmt.Sprintf("%d", n), mode.String(), "degree+callback",
				stats.FormatDuration(resD.Total), stats.FormatCount(uint64(rateD)), stats.FormatCount(resD.Triangles))
			wD.Close()

			c := &cell{dummy: rateU, meta: rateD}
			rates[mode.String()][n] = c
			if resU.Triangles != resD.Triangles {
				rep.notef("COUNT MISMATCH at %d ranks %s: %d vs %d", n, mode, resU.Triangles, resD.Triangles)
			}
		}
	}
	rep.Output = tb.Render()
	for _, m := range []string{"push-only", "push-pull"} {
		var ratio float64
		var cnt int
		for _, c := range rates[m] {
			if c.meta > 0 {
				ratio += c.dummy / c.meta
				cnt++
			}
		}
		if cnt > 0 {
			rep.notef("%s: metadata+callback cuts throughput by %.2fx on average (paper: just under 2x, §5.9)", m, ratio/float64(cnt))
		}
	}
	rep.notef("dummy-vs-metadata rows at the same rank count share one host, so their ratio is scheduling-independent (host: %d core(s))", runtime.NumCPU())
	return rep
}

// Table4 regenerates the push-only vs push-pull strong-scaling table with
// communication volumes.
func Table4(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "table4", Title: "Push-Only vs Push-Pull: runtime and communication volume (Tab. 4)"}
	tb := stats.NewTable("", "Graph", "ranks", "algorithm", "comm volume", "messages", "runtime", "triangles")
	ds := Datasets(cfg)
	// The paper's most communication-bound graph (web-cc12-hostgraph) is
	// our webhost; also include the rmat-social (Friendster analog), where
	// the paper found pull overhead can exceed its benefit.
	selected := []Dataset{ds[1], ds[3]}
	for _, d := range selected {
		type volRow struct{ po, pp int64 }
		vols := map[int]*volRow{}
		for _, n := range cfg.rankSweep() {
			if n < 2 {
				continue // single rank: trivial communication
			}
			w, g := BuildUnit(cfg, n, d.Edges)
			for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
				res := core.Count(g, core.Options{Mode: mode})
				bytes := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
				msgs := res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
				tb.AddRow(d.Name, fmt.Sprintf("%d", n), mode.String(),
					stats.FormatBytes(bytes), stats.FormatCount(uint64(msgs)),
					stats.FormatDuration(res.Total), stats.FormatCount(res.Triangles))
				v := vols[n]
				if v == nil {
					v = &volRow{}
					vols[n] = v
				}
				if mode == core.PushOnly {
					v.po = bytes
				} else {
					v.pp = bytes
				}
			}
			w.Close()
		}
		for _, n := range cfg.rankSweep() {
			if v := vols[n]; v != nil && v.pp > 0 {
				rep.notef("%s @%d ranks: push-pull moves %.2fx the bytes of push-only", d.Name, n, float64(v.pp)/float64(v.po))
			}
		}
	}
	rep.Output = tb.Render()
	rep.notef("paper shape: on the hub-heavy host graph push-pull slashes volume (>10x there); on Friendster-like graphs the dry-run overhead can erase the gain (§5.10)")
	return rep
}
