package exp

import (
	"fmt"
	"sort"
	"strings"

	"tripoll/internal/community"
	"tripoll/internal/container"
	"tripoll/internal/core"
	"tripoll/internal/gen"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

func redditParams(cfg Config) gen.RedditParams {
	p := gen.DefaultRedditParams()
	p.Users = uint64(cfg.scaled(30_000, 300))
	p.Events = cfg.scaled(250_000, 2_500)
	return p
}

// Fig6 regenerates the Reddit closure-time survey: the marginal closing-
// time distribution and the joint (opening, closing) distribution, both in
// ceil-log₂ buckets. The distributed result is cross-checked against an
// independent serial recomputation.
func Fig6(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fig6", Title: "Distribution of triangle closure times, Reddit-like graph (Fig. 6)"}
	edges := gen.RedditLike(redditParams(cfg))
	w, g := BuildTemporal(cfg, 4, edges)
	defer w.Close()
	joint, res := core.ClosureTimes(g, core.Options{})

	var sb strings.Builder
	fmt.Fprintf(&sb, "events=%d  reduced |E|=%s  triangles=%s  multi-edges merged=%s\n\n",
		len(edges), stats.FormatCount(g.NumUndirectedEdges()),
		stats.FormatCount(res.Triangles), stats.FormatCount(g.MultiEdgesMerged()))
	sb.WriteString(joint.MarginalY().Render("closing time distribution (log2 seconds buckets)", "log2(dt_close)", 48))
	sb.WriteByte('\n')
	sb.WriteString(joint.Render("joint distribution", "log2(dt_open)", "log2(dt_close)"))
	rep.Output = sb.String()

	// Verification: exact match against the serial reference (this is an
	// end-to-end integration check of generator + builder + survey).
	ref := gen.RedditReference(edges)
	var mismatches int
	var refTotal uint64
	for k, c := range ref {
		refTotal += c
		if joint.Count(k[0], k[1]) != c {
			mismatches++
		}
	}
	if mismatches == 0 && refTotal == joint.Total() {
		rep.notef("distributed joint distribution matches the serial reference exactly (%d pairs)", refTotal)
	} else {
		rep.notef("MISMATCH vs serial reference: %d cells differ", mismatches)
	}
	rep.notef("paper shape: wedges open fast; closure is not systematically rapid — mass spreads to large close buckets (§5.7)")
	return rep
}

// Fig7 regenerates the closure-survey strong-scaling study plus Table 3
// (average vertices pulled per rank, which collapses as ranks grow).
func Fig7(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fig7", Title: "Strong scaling of closure-time collection + avg pulls per rank (Fig. 7 / Tab. 3)"}
	edges := gen.RedditLike(redditParams(cfg))
	tb := stats.NewTable("", "ranks", "max rank work", "work speedup", "dry-run", "push", "pull", "wall", "avg pulls/rank")
	var baseWork uint64
	var pulls []float64
	for _, n := range cfg.rankSweep() {
		w, g := BuildTemporal(cfg, n, edges)
		_, res := core.ClosureTimes(g, core.Options{Mode: core.PushPull})
		if n == cfg.rankSweep()[0] {
			baseWork = res.MaxRankWedgeChecks
		}
		pulls = append(pulls, res.AvgPullsPerRank)
		tb.AddRow(fmt.Sprintf("%d", n),
			stats.FormatCount(res.MaxRankWedgeChecks),
			fmt.Sprintf("%.2fx", float64(baseWork)/float64(res.MaxRankWedgeChecks)),
			stats.FormatDuration(res.DryRun.Duration),
			stats.FormatDuration(res.Push.Duration),
			stats.FormatDuration(res.Pull.Duration),
			stats.FormatDuration(res.Total),
			fmt.Sprintf("%.1f", res.AvgPullsPerRank))
		w.Close()
	}
	rep.Output = tb.Render()
	if len(pulls) >= 2 && pulls[len(pulls)-1] < pulls[0] {
		rep.notef("avg pulls per rank decreases with rank count (%.1f → %.1f), the Tab. 3 shift toward an almost entirely push-based algorithm", pulls[0], pulls[len(pulls)-1])
	} else if len(pulls) >= 2 {
		rep.notef("UNEXPECTED: pulls per rank did not decrease: %v", pulls)
	}
	return rep
}

// fqdnTriple is a sorted 3-tuple of FQDN strings.
type fqdnTriple = serialize.Triple[string, string, string]

// Fig8 regenerates the FQDN survey on the web-host stand-in: count
// 3-tuples of distinct FQDNs across all triangles, condition on the hub
// domain ("amazon.example" playing amazon.com), order the co-occurring
// FQDNs by Louvain communities, and render the pair distribution.
func Fig8(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fig8", Title: "Distribution of FQDNs involved in triangles with the hub domain (Fig. 8)"}
	whp := gen.DefaultWebHostParams()
	whp.Pages = uint64(cfg.scaled(25_000, 600))
	whp.IntraEdges = cfg.scaled(100_000, 2_000)
	whp.InterEdges = cfg.scaled(160_000, 3_000)
	wh := gen.WebHostLike(whp)
	w, g := BuildFQDN(cfg, 4, wh)
	defer w.Close()

	tripleCodec := serialize.TripleCodec(serialize.StringCodec(), serialize.StringCodec(), serialize.StringCodec())
	counter := container.NewCounter[fqdnTriple](w, tripleCodec, container.CounterOptions{})
	s := core.NewSurvey(g, core.Options{}, func(r *ygm.Rank, t *core.Triangle[string, serialize.Unit]) {
		a, b, c := t.MetaP, t.MetaQ, t.MetaR
		if a == b || b == c || a == c {
			return
		}
		if a > b {
			a, b = b, a
		}
		if b > c {
			b, c = c, b
		}
		if a > b {
			a, b = b, a
		}
		counter.Inc(r, fqdnTriple{First: a, Second: b, Third: c})
	})
	res := s.Run()
	var triples map[fqdnTriple]uint64
	w.Parallel(func(r *ygm.Rank) {
		counter.Barrier(r)
		m := counter.Gather(r)
		if r.ID() == 0 {
			triples = m
		}
	})

	// Post-processing "on a single machine" (§5.8): select triples
	// containing the hub, build the co-occurrence pair distribution.
	hub := gen.HubFQDNs[0]
	type pair struct{ a, b string }
	pairCount := map[pair]uint64{}
	var distinctTriples, hubTriples uint64
	var surveyed uint64
	for t, c := range triples {
		distinctTriples++
		surveyed += c
		var others []string
		switch hub {
		case t.First:
			others = []string{t.Second, t.Third}
		case t.Second:
			others = []string{t.First, t.Third}
		case t.Third:
			others = []string{t.First, t.Second}
		default:
			continue
		}
		hubTriples += c
		pairCount[pair{others[0], others[1]}] += c
	}

	// Louvain ordering of the co-occurring FQDNs.
	names := map[string]int{}
	var nameList []string
	idOf := func(s string) int {
		if id, ok := names[s]; ok {
			return id
		}
		id := len(nameList)
		names[s] = id
		nameList = append(nameList, s)
		return id
	}
	for p := range pairCount {
		idOf(p.a)
		idOf(p.b)
	}
	cg := community.NewGraph(len(nameList))
	for p, c := range pairCount {
		cg.AddEdge(names[p.a], names[p.b], float64(c))
	}
	comm := community.Louvain(cg, 11)
	order := make([]int, len(nameList))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if comm[a] != comm[b] {
			return comm[a] < comm[b]
		}
		return nameList[a] < nameList[b]
	})
	pos := make([]int, len(nameList))
	for p, id := range order {
		pos[id] = p
	}
	joint := stats.NewJoint2D()
	for p, c := range pairCount {
		x, y := pos[names[p.a]], pos[names[p.b]]
		if x > y {
			x, y = y, x
		}
		joint.Add(x, y, c)
	}

	// Rank co-occurring FQDNs by total weight with the hub.
	weightOf := map[string]uint64{}
	for p, c := range pairCount {
		weightOf[p.a] += c
		weightOf[p.b] += c
	}
	type wn struct {
		name string
		w    uint64
	}
	var tops []wn
	for n, c := range weightOf {
		tops = append(tops, wn{n, c})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].w != tops[j].w {
			return tops[i].w > tops[j].w
		}
		return tops[i].name < tops[j].name
	})

	var sb strings.Builder
	fmt.Fprintf(&sb, "triangles=%s  distinct-FQDN triangles surveyed=%s  unique 3-tuples=%s\n",
		stats.FormatCount(res.Triangles), stats.FormatCount(surveyed), stats.FormatCount(distinctTriples))
	fmt.Fprintf(&sb, "triples involving %q: %s (%d FQDNs co-occur, %d Louvain communities)\n\n",
		hub, stats.FormatCount(hubTriples), len(nameList), 1+maxInt(comm))
	sb.WriteString("top FQDNs co-occurring with the hub:\n")
	for i, t := range tops {
		if i >= 8 {
			break
		}
		fmt.Fprintf(&sb, "  %-24s %s\n", t.name, stats.FormatCount(t.w))
	}
	sb.WriteByte('\n')
	sb.WriteString(joint.Render("hub-conditioned FQDN pair distribution (Louvain-ordered axes)", "fqdn idx", "fqdn idx"))
	rep.Output = sb.String()

	foundSatellite := false
	for i, t := range tops {
		if i >= 5 {
			break
		}
		for _, h := range gen.HubFQDNs[1:] {
			if t.name == h {
				foundSatellite = true
			}
		}
	}
	if foundSatellite {
		rep.notef("satellite/competitor domains dominate the hub's co-occurrence list — the Fig. 8 'abebooks.com' effect")
	} else {
		rep.notef("UNEXPECTED: no satellite domain in the top co-occurrences")
	}
	return rep
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
