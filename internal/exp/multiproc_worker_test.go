package exp

import (
	"os"
	"testing"

	"tripoll/internal/dist"
)

// TestMain makes the exp test binary worker-capable: the multiproc
// ablation self-launches copies of the running executable, and when that
// executable is this test binary the copy must serve as a dist worker
// instead of running the test suite.
func TestMain(m *testing.M) {
	if addr := dist.JoinAddrFromEnv(); addr != "" {
		os.Exit(MultiprocServeWorker(addr))
	}
	os.Exit(m.Run())
}
