package exp

import (
	"fmt"
	"strings"

	"tripoll/internal/ygm"
)

// Config controls experiment sizing so the same drivers serve quick tests
// (Scale ≪ 1), benchmarks (Scale = 1) and longer studies (Scale > 1).
type Config struct {
	// Scale multiplies dataset sizes. 1.0 is the default benchmark size
	// (each driver finishes in seconds on a laptop); tests use ~0.05.
	Scale float64
	// MaxRanks caps the rank counts used by scaling experiments (they
	// sweep 1, 2, 4, ... up to MaxRanks). Zero selects 8.
	MaxRanks int
	// Transport selects the ygm transport for all worlds.
	Transport ygm.TransportKind
	// Verbose adds per-step progress lines to the report output.
	Verbose bool
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.MaxRanks == 0 {
		c.MaxRanks = 8
	}
	return c
}

// rankSweep returns 1, 2, 4, ..., MaxRanks.
func (c Config) rankSweep() []int {
	var out []int
	for n := 1; n <= c.MaxRanks; n *= 2 {
		out = append(out, n)
	}
	return out
}

// scaled applies the size multiplier with a floor of lo.
func (c Config) scaled(base int, lo int) int {
	v := int(float64(base) * c.Scale)
	if v < lo {
		return lo
	}
	return v
}

// Report is one regenerated artifact.
type Report struct {
	// ID matches DESIGN.md's experiment index (e.g. "table2", "fig6").
	ID string
	// Title restates what the paper artifact shows.
	Title string
	// Output is the rendered table/figure text.
	Output string
	// Notes records shape observations for EXPERIMENTS.md.
	Notes []string
	// Metrics are the machine-readable data points this run produced, in
	// the gh-action-benchmark shape; cmd/tripoll-bench -json collects them
	// into the repo's BENCH_*.json trajectory files.
	Metrics []Metric
}

// Metric is one benchmark data point. The JSON field names follow the
// benches entries of benchmark-action/github-action-benchmark's data.js,
// so trajectory files can feed standard continuous-benchmarking tooling.
type Metric struct {
	// Name is "<experiment id>/<subject>/<measure>", e.g.
	// "ordering/rmat-social/degeneracy/wedges".
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// Unit is "ns/op" for times, otherwise the counted thing ("wedges",
	// "msgs", "bytes", "triangles").
	Unit string `json:"unit"`
	// WallNs/Allocs/AllocBytes carry the measurement bracket that produced
	// this point (see Measured): wall time and process-wide allocator
	// traffic. Zero-valued on metrics that only restate a counter.
	WallNs     float64 `json:"wall_ns,omitempty"`
	Allocs     float64 `json:"allocs,omitempty"`
	AllocBytes float64 `json:"alloc_bytes,omitempty"`
	// Extra carries free-form context (dataset, rank count, ordering).
	Extra string `json:"extra,omitempty"`
}

// metric appends one machine-readable data point to the report.
func (r *Report) metric(name string, value float64, unit, extra string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Value: value, Unit: unit, Extra: extra})
}

// metricM appends a data point together with its measurement bracket.
func (r *Report) metricM(name string, value float64, unit, extra string, m Measured) {
	r.Metrics = append(r.Metrics, Metric{
		Name: name, Value: value, Unit: unit, Extra: extra,
		WallNs: m.WallNs, Allocs: m.Allocs, AllocBytes: m.AllocBytes,
	})
}

// Render formats the full report.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "==== %s — %s ====\n", r.ID, r.Title)
	sb.WriteString(r.Output)
	if len(r.Notes) > 0 {
		sb.WriteString("notes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "  - %s\n", n)
		}
	}
	return sb.String()
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Runner names an experiment driver.
type Runner struct {
	ID   string
	Run  func(Config) *Report
	Desc string
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", Table1, "dataset overview: |V|, |E|, |T|, dmax, dmax+"},
		{"fig4", Fig4, "strong scaling of push-pull triangle counting"},
		{"fig5", Fig5, "weak scaling on R-MAT graphs"},
		{"table2", Table2, "end-to-end comparison with related work"},
		{"fig6", Fig6, "Reddit-like triangle closure time distributions"},
		{"fig7", Fig7, "closure survey strong scaling + Table 3 pulls/rank"},
		{"fig8", Fig8, "FQDN survey on the web-host graph"},
		{"fig9", Fig9, "impact of metadata on weak scaling"},
		{"table4", Table4, "push-only vs push-pull: runtime and comm volume"},
		{"pullfactor", AblationPullFactor, "ablation: pull decision threshold sweep"},
		{"buffer", AblationBuffer, "ablation: YGM buffer size sweep"},
		{"transport", AblationTransport, "ablation: channel vs TCP transport"},
		{"grouping", AblationGrouping, "ablation: node-level message aggregation"},
		{"partition", AblationPartition, "ablation: hash vs cyclic vertex partitioning"},
		{"ordering", AblationOrdering, "ablation: degree vs degeneracy vertex ordering"},
		{"pushdown", AblationPushdown, "ablation: survey-plan predicate pushdown vs post-filtering"},
		{"fusion", AblationFusion, "ablation: fused multi-analysis survey vs sequential passes"},
		{"stream", AblationStream, "ablation: incremental stream maintenance vs per-batch full recompute"},
		{"coalesce", AblationCoalesce, "ablation: coalesced concurrent queries vs sequential per-query runs"},
		{"wal", AblationWAL, "ablation: WAL-backed durable streams — overhead and crash recovery"},
		{"multiproc", AblationMultiproc, "ablation: one process vs a process-spanning world (internal/dist)"},
		{"diststream", AblationDistStream, "ablation: broadcast mutations on a durable stream, with kill-and-recover (1 vs N processes)"},
		{"truss", AblationTruss, "ablation: maintained triangle-span index vs per-query span-truss re-decomposition"},
		{"hotpath", HotPath, "hot-path microbenchmarks: encode, survey, intersection, stream ingest"},
	}
}

// ByID finds a runner.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}
