package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/stats"
)

// AblationCoalesce measures what the query engine's admission coalescing
// saves: N independent clients concurrently submit δ-windowed QuerySpecs
// against the same graph — the repeated-query / parameter-sweep workload
// of the span-constrained-triangle papers — once executed sequentially
// (one solo traversal per query, each under its own pushed-down plan) and
// once through the Engine, whose scheduler batches the concurrently
// pending jobs into a single fused traversal under the union plan with
// per-job residual filters. The driver self-verifies the two halves of
// the coalescing claim on every dataset and in both algorithms: every
// client's answer is byte-identical (JSON) between the strategies, and
// the coalesced run moved strictly fewer messages and bytes.
//
// The reduction is structural, not statistical: the union plan of the
// client specs equals the *loosest* member plan, so the one coalesced
// traversal costs about as much as the most expensive sequential member —
// while the sequential strategy additionally pays for every other member.
func AblationCoalesce(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "coalesce", Title: "Ablation: coalesced concurrent queries vs sequential per-query runs"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	tb := stats.NewTable(fmt.Sprintf("(%d ranks; 4 concurrent clients: count δ=h/16, closure δ=h/8, count δ=h/4, localcounts δ=h/4)", n),
		"Graph", "mode", "strategy", "traversals", "messages", "bytes", "survey")

	reg := engine.TemporalRegistry()
	identity := func(t uint64) uint64 { return t }
	ctx := context.Background()

	for _, d := range TemporalDatasets(cfg) {
		h := d.Horizon
		specs := []engine.Spec{
			{Analysis: "count", Delta: engine.Uint64(h / 16)},
			{Analysis: "closure", Delta: engine.Uint64(h / 8)},
			{Analysis: "count", Delta: engine.Uint64(h / 4)},
			{Analysis: "localcounts", Delta: engine.Uint64(h / 4)},
		}
		w, g := BuildTemporal(cfg, n, d.Edges)
		for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
			modeStr := "push-pull"
			if mode == core.PushOnly {
				modeStr = "push-only"
			}
			opts := core.Options{Mode: mode}

			// Sequential baseline: each client's query as its own solo
			// traversal under its own plan.
			var seqMsgs, seqBytes int64
			var seqDur time.Duration
			seqVals := make([]string, len(specs))
			seqSpan := BeginMeasure()
			for i, spec := range specs {
				factory, ok := reg.Lookup(spec.Analysis)
				if !ok {
					panic("coalesce ablation: unknown analysis " + spec.Analysis)
				}
				inst, err := factory(g, spec)
				if err != nil {
					panic("coalesce ablation: " + err.Error())
				}
				plan := core.NewPlan[uint64]().Timestamps(identity).CloseWithin(*spec.Delta)
				res, err := core.Run(g, opts, plan, inst.Attached)
				if err != nil {
					panic("coalesce ablation: " + err.Error())
				}
				seqMsgs += msgsOf(res)
				seqBytes += bytesOf(res)
				seqDur += res.Total
				seqVals[i] = mustJSON(engine.JSONValue(inst.Result()))
			}
			seqM := seqSpan.End()

			// Coalesced: the same four queries admitted as one concurrent
			// batch through the engine.
			eng := engine.New(reg, engine.EngineOptions[uint64]{Timestamps: identity})
			if err := eng.Register(d.Name, g); err != nil {
				panic("coalesce ablation: " + err.Error())
			}
			modeSpecs := make([]engine.Spec, len(specs))
			for i, spec := range specs {
				spec.Mode = modeStr
				modeSpecs[i] = spec
			}
			t0 := time.Now()
			coalSpan := BeginMeasure()
			jobs, err := eng.SubmitAll(ctx, modeSpecs...)
			if err != nil {
				panic("coalesce ablation: " + err.Error())
			}
			vals := make([]any, len(jobs))
			for i, j := range jobs {
				qr, err := j.Wait(ctx)
				if err != nil {
					panic("coalesce ablation: " + err.Error())
				}
				vals[i] = qr.Value
			}
			// Stop the clock before marshaling: the sequential half's timing
			// (res.Total) covers only traversals, so the comparison must not
			// charge JSON rendering to the coalesced side.
			coalM := coalSpan.End()
			coalDur := time.Since(t0)
			coalVals := make([]string, len(jobs))
			for i, v := range vals {
				coalVals[i] = mustJSON(engine.JSONValue(v))
			}
			est := eng.Stats()
			eng.Close()

			for _, o := range []struct {
				strat      string
				traversals uint64
				msgs       int64
				bytes      int64
				dur        time.Duration
				m          Measured
			}{
				{"sequential", uint64(len(specs)), seqMsgs, seqBytes, seqDur, seqM},
				{"coalesced", est.Traversals, est.TraversalMessages, est.TraversalBytes, coalDur, coalM},
			} {
				tb.AddRow(d.Name, modeStr, o.strat,
					fmt.Sprintf("%d", o.traversals),
					stats.FormatCount(uint64(o.msgs)),
					stats.FormatBytes(o.bytes),
					stats.FormatDuration(o.dur))
				prefix := fmt.Sprintf("coalesce/%s/%s/%s", d.Name, modeStr, o.strat)
				extra := fmt.Sprintf("dataset=%s ranks=%d mode=%s clients=%d", d.Name, n, modeStr, len(specs))
				rep.metric(prefix+"/traversals", float64(o.traversals), "traversals", extra)
				rep.metric(prefix+"/messages", float64(o.msgs), "msgs", extra)
				rep.metric(prefix+"/bytes", float64(o.bytes), "bytes", extra)
				rep.metricM(prefix+"/latency_ns", float64(o.dur.Nanoseconds()), "ns/op", extra, o.m)
			}

			identical := true
			for i := range specs {
				identical = identical && seqVals[i] == coalVals[i]
			}
			switch {
			case !identical:
				rep.notef("RESULT MISMATCH on %s/%s: coalesced per-job results are not byte-identical to solo runs",
					d.Name, modeStr)
			case est.Traversals != 1:
				rep.notef("UNEXPECTED: %d concurrent clients took %d traversals on %s/%s, want 1",
					len(specs), est.Traversals, d.Name, modeStr)
			case est.TraversalMessages >= seqMsgs || est.TraversalBytes >= seqBytes:
				rep.notef("UNEXPECTED: coalescing did not strictly reduce traffic on %s/%s: %d→%d msgs, %d→%d bytes",
					d.Name, modeStr, seqMsgs, est.TraversalMessages, seqBytes, est.TraversalBytes)
			default:
				rep.notef("%s/%s: messages %s→%s (−%.1f%%), bytes %s→%s (−%.1f%%) for %d clients in 1 traversal, byte-identical answers",
					d.Name, modeStr,
					stats.FormatCount(uint64(seqMsgs)), stats.FormatCount(uint64(est.TraversalMessages)),
					100*(1-float64(est.TraversalMessages)/float64(seqMsgs)),
					stats.FormatBytes(seqBytes), stats.FormatBytes(est.TraversalBytes),
					100*(1-float64(est.TraversalBytes)/float64(seqBytes)),
					len(specs))
			}
		}
		w.Close()
	}
	rep.Output = tb.Render()
	rep.notef("the engine executes a batch under the union of the member plans (here δ=h/4) with per-job residual filters, so the coalesced cost tracks the loosest member while sequential execution pays for every member — and answers stay exactly solo (engine property tests)")
	return rep
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("coalesce ablation: marshal: " + err.Error())
	}
	return string(b)
}
