package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/dist"
	"tripoll/internal/engine"
	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// AblationMultiproc quantifies the cost of spanning the world across OS
// processes: the same temporal survey on the same R total ranks, run as
// one process (all ranks local, loopback-TCP data plane) and as P
// processes of R/P ranks each (self-launched worker processes, the
// internal/dist rendezvous, every link round and remote batch crossing a
// real process boundary). Results must be byte-identical — the ablation
// measures what the process boundary costs, with correctness as a
// side-effect check.
func AblationMultiproc(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "multiproc", Title: "Ablation: one process vs a process-spanning world (internal/dist)"}

	// R total ranks, split across 1, 2, (4) processes. R stays fixed so the
	// algorithmic work and message counts are identical; only the process
	// count moves.
	ranks := cfg.MaxRanks
	if ranks < 2 {
		ranks = 2
	}
	procSweep := []int{1, 2}
	if ranks%4 == 0 {
		procSweep = append(procSweep, 4)
	}

	edges := gen.RedditLike(redditParams(cfg))
	var maxT uint64
	for _, e := range edges {
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	specs := []engine.Spec{
		{Graph: "g", Analysis: "count"},
		{Graph: "g", Analysis: "closure", Delta: engine.Uint64(maxT/2 + 1)},
		{Graph: "g", Analysis: "cc"},
	}
	opts := core.Options{Mode: core.PushPull}

	tb := stats.NewTable(fmt.Sprintf("(reddit-like graph, %d total ranks, fused count+closure+cc; procs=1 is the baseline)", ranks),
		"processes", "ranks/proc", "build", "survey", "comm volume", "messages", "triangles")
	var baseVals []string
	var baseTriangles uint64
	for _, procs := range procSweep {
		res, vals, buildWall, err := multiprocRun(cfg, procs, ranks, edges, opts, specs)
		if err != nil {
			rep.notef("UNEXPECTED: %d-process run failed: %v", procs, err)
			continue
		}
		if procs == procSweep[0] {
			baseVals, baseTriangles = vals, res.Triangles
		} else {
			if res.Triangles != baseTriangles {
				rep.notef("COUNT MISMATCH at %d processes: %d vs %d", procs, res.Triangles, baseTriangles)
			}
			for i := range vals {
				if vals[i] != baseVals[i] {
					rep.notef("VALUE MISMATCH at %d processes: %q diverged from the 1-process run", procs, specs[i].Analysis)
				}
			}
		}
		vol := res.DryRun.Bytes + res.Push.Bytes + res.Pull.Bytes
		msgs := res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
		tb.AddRow(fmt.Sprintf("%d", procs), fmt.Sprintf("%d", ranks/procs),
			stats.FormatDuration(buildWall),
			stats.FormatDuration(res.Total),
			stats.FormatBytes(vol),
			stats.FormatCount(uint64(msgs)),
			stats.FormatCount(res.Triangles))
		rep.metric(fmt.Sprintf("multiproc/%dproc/survey_ns", procs), float64(res.Total.Nanoseconds()), "ns/op",
			fmt.Sprintf("ranks=%d procs=%d", ranks, procs))
		rep.metric(fmt.Sprintf("multiproc/%dproc/comm_bytes", procs), float64(vol), "bytes",
			fmt.Sprintf("ranks=%d procs=%d", ranks, procs))
	}
	rep.Output = tb.Render()
	rep.notef("results are checked byte-identical across process counts (the PR 8 acceptance property)")
	rep.notef("expected shape: identical message counts (the algorithm cannot see the process boundary); wall rises with procs on one host — every link round pays a real syscall round-trip")
	return rep
}

// multiprocRun answers the fused spec list on a procs-process world of
// ranks total ranks (procs == 1 means a plain local world) and returns the
// survey result, each spec's value in canonical JSON, and the build wall
// time.
func multiprocRun(cfg Config, procs, ranks int, edges []graph.TemporalEdge, opts core.Options, specs []engine.Spec) (core.Result, []string, time.Duration, error) {
	timeOf := func(ts uint64) uint64 { return ts }
	wopts := ygm.Options{Transport: ygm.TransportTCP, ListenAddr: "127.0.0.1:0"}
	if procs == 1 {
		w := ygm.MustWorld(ranks, wopts)
		defer w.Close()
		start := time.Now()
		g := buildTemporalSpan(w, edges)
		buildWall := time.Since(start)
		res, vals, err := engine.ExecuteFused(engine.TemporalRegistry(), timeOf, g, opts, specs)
		return res, canonicalValues(vals), buildWall, err
	}

	co, err := dist.Listen(dist.Config{Procs: procs, RanksPerProc: ranks / procs, Opts: wopts})
	if err != nil {
		return core.Result{}, nil, 0, err
	}
	workers, err := dist.SelfLaunch(co.Addr(), procs-1)
	if err != nil {
		co.Close()
		return core.Result{}, nil, 0, err
	}
	cl, err := co.Accept()
	if err != nil {
		dist.KillAll(workers)
		return core.Result{}, nil, 0, err
	}
	defer func() {
		cl.Close()
		dist.StopAll(workers, 10*time.Second)
	}()
	if err := cl.Build("g", dist.BuildSpec{Policy: "temporal"}); err != nil {
		return core.Result{}, nil, 0, err
	}
	start := time.Now()
	g := buildTemporalSpan(cl.World(), edges)
	buildWall := time.Since(start)
	if err := cl.Traverse("g", 0, opts, specs); err != nil {
		return core.Result{}, nil, 0, err
	}
	res, vals, err := engine.ExecuteFused(engine.TemporalRegistry(), timeOf, g, opts, specs)
	return res, canonicalValues(vals), buildWall, err
}

// canonicalValues renders each analysis value as canonical JSON, the same
// normalization the query API serves, so map-backed accumulators compare
// deterministically.
func canonicalValues(vals []any) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		raw, err := json.Marshal(engine.JSONValue(v))
		if err != nil {
			out[i] = fmt.Sprintf("unmarshalable: %v", err)
			continue
		}
		out[i] = string(raw)
	}
	return out
}

// buildTemporalSpan is the collective temporal build of a possibly
// process-spanning world: this process's ranks stride over the local span
// (in the driver that covers every edge; in a worker the edge slice is
// empty), merging multi-edges keep-chronologically-first as BuildTemporal
// does.
func buildTemporalSpan(w *ygm.World, edges []graph.TemporalEdge) *graph.DODGr[serialize.Unit, uint64] {
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	})
	var g *graph.DODGr[serialize.Unit, uint64]
	first, count := w.LocalSpan()
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID() - first; i < len(edges); i += count {
			b.AddEdge(r, edges[i].U, edges[i].V, edges[i].Time)
		}
		gg := b.Build(r)
		if r.ID() == w.LeaderID() {
			g = gg
		}
	})
	return g
}

// MultiprocServeWorker is the worker-process side of the multiproc
// ablation: binaries that support self-launched workers (cmd/tripoll-bench,
// the exp test binary) call it first thing in main when
// dist.JoinAddrFromEnv reports a coordinator to join. Returns the process
// exit code.
func MultiprocServeWorker(addr string) int {
	wk, err := dist.Join(addr, "127.0.0.1:0", 60*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exp worker: join %s: %v\n", addr, err)
		return 1
	}
	hooks := dist.Hooks[serialize.Unit, uint64]{
		Registry:   engine.TemporalRegistry(),
		Timestamps: func(ts uint64) uint64 { return ts },
		Build: func(w *ygm.World, name string, spec dist.BuildSpec) (*graph.DODGr[serialize.Unit, uint64], error) {
			if spec.Policy != "temporal" {
				return nil, fmt.Errorf("exp worker: unknown build policy %q", spec.Policy)
			}
			return buildTemporalSpan(w, nil), nil
		},
		// The diststream ablation broadcasts durable mutations: this is the
		// worker's side of the driver's OpenDurableStream (same options, no
		// WAL — durability stays driver-side).
		OpenStream: func(g *graph.DODGr[serialize.Unit, uint64], policy string) (*core.Stream[serialize.Unit, uint64], error) {
			if policy != "temporal" {
				return nil, fmt.Errorf("exp worker: unknown stream policy %q", policy)
			}
			return core.OpenStream(g, core.StreamOptions[uint64]{MergeEdgeMeta: minU64}, core.TemporalPlan())
		},
	}
	if err := dist.Serve(wk, hooks, nil); err != nil {
		fmt.Fprintf(os.Stderr, "exp worker: serve: %v\n", err)
		return 1
	}
	return 0
}
