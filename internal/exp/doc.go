// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation (§5) on the synthetic stand-in
// datasets, plus ablation studies of TriPoll's design choices (pull
// threshold, buffer size, transport, grouping, partitioning, vertex
// ordering, predicate pushdown, analysis fusion, stream maintenance, query
// coalescing). Each driver is a pure function from a sizing Config to a
// Report whose Output is the rendered table/figure; cmd/tripoll-bench
// prints them, bench_test.go wraps them in testing.B benchmarks, and the
// CI smoke job runs them at Scale ≪ 1.
//
// Drivers self-verify the claims they measure — a pushdown run must move
// strictly fewer bytes than its post-filter baseline, a coalesced batch
// must answer byte-identically to solo runs — and mark violations with
// MISMATCH/UNEXPECTED notes that fail the bench command. Reports also
// carry machine-readable Metrics in the github-action-benchmark shape;
// `tripoll-bench -json` collects them into the repo's BENCH_PR*.json
// trajectory files (DESIGN.md §6), whose per-PR deltas the CI smoke job
// asserts.
//
// DESIGN.md's experiment index maps paper artifact → driver; EXPERIMENTS.md
// records paper-vs-measured shape for each.
package exp
