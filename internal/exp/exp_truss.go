package exp

import (
	"encoding/json"
	"fmt"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/truss"
	"tripoll/internal/ygm"
)

// AblationTruss measures what the maintained triangle-span index saves on
// repeated span-truss queries: each temporal dataset is fed to two
// identical streams as the same batches (with one window advance to
// exercise expiry). One stream carries a truss.Index as its sink, so
// spantruss queries answer from span-bucketed support via ServeQuery —
// the engine's index seam — with zero traversals; the other answers each
// query the only way possible without the index, by materializing the
// window and re-running the span-truss decomposition as a fused
// traversal. The driver reports transport messages and query wall for
// both strategies and self-verifies that (a) both give byte-identical
// answers after every batch, (b) index-served queries move zero
// messages, and (c) the maintained strategy is strictly cheaper in total
// messages and query wall, on every dataset and in both algorithms.
func AblationTruss(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "truss", Title: "Ablation: maintained triangle-span index vs per-query span-truss re-decomposition"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	const batches = 4
	const repeats = 3
	tb := stats.NewTable(fmt.Sprintf("(%d ranks, %d batches × %d repeated spantruss queries, k = 3, 3 spans, one window advance)", n, batches, repeats),
		"Graph", "mode", "strategy", "maintain msgs", "query msgs", "query wall", "total msgs")

	minMerge := func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	jsonOf := func(v any) string {
		raw, err := json.Marshal(v)
		if err != nil {
			panic("truss ablation: marshal: " + err.Error())
		}
		return string(raw)
	}

	for _, d := range TemporalDatasets(cfg) {
		spans := []truss.Window{
			{From: 0, Until: d.Horizon / 3},
			{From: d.Horizon / 4, Until: 3 * d.Horizon / 4},
			{From: 0, Until: d.Horizon},
		}
		rawArgs, err := json.Marshal(truss.SpanTrussArgs{K: 3, Spans: spans})
		if err != nil {
			panic("truss ablation: args: " + err.Error())
		}
		k, nspans, err := truss.SpanTrussArgs{K: 3, Spans: spans}.Normalize(truss.WholeWindow())
		if err != nil {
			panic("truss ablation: normalize: " + err.Error())
		}

		for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
			opts := core.Options{Mode: mode}
			type arm struct {
				maintainMsgs, maintainBytes int64
				queryMsgs, queryBytes       int64
				queryDur                    time.Duration
				qm                          Measured
			}
			var maintained, reindex arm

			// The maintained arm: the index rides the stream's sink seam.
			wIx, seedIx := BuildTemporal(cfg, n, nil)
			ix := truss.NewIndex[serialize.Unit](truss.IndexOptions{MergeTimestamp: minMerge})
			sIx, err := core.OpenStreamSinks(seedIx, core.StreamOptions[uint64]{Survey: opts, MergeEdgeMeta: minMerge},
				core.TemporalPlan(), []core.StreamSink[serialize.Unit, uint64]{ix})
			if err != nil {
				panic("truss ablation: open maintained: " + err.Error())
			}
			// The re-decomposition arm: an identical stream, no sink; each
			// query materializes the window (once per epoch, as the engine
			// would) and re-runs the span-truss traversal.
			wRe, seedRe := BuildTemporal(cfg, n, nil)
			sRe, err := core.OpenStream(seedRe, core.StreamOptions[uint64]{Survey: opts, MergeEdgeMeta: minMerge}, core.TemporalPlan())
			if err != nil {
				panic("truss ablation: open baseline: " + err.Error())
			}

			mismatched := ""
			for b := 0; b < batches; b++ {
				lo, hi := b*len(d.Edges)/batches, (b+1)*len(d.Edges)/batches
				if lo >= hi {
					continue
				}
				batch := make([]graph.Edge[uint64], 0, hi-lo)
				for _, e := range d.Edges[lo:hi] {
					batch = append(batch, graph.Edge[uint64]{U: e.U, V: e.V, Meta: e.Time})
				}
				mutate := func(w *ygm.World, s *core.Stream[serialize.Unit, uint64], a *arm) {
					w.ResetStats()
					if _, err := s.Ingest(batch); err != nil {
						panic("truss ablation: ingest: " + err.Error())
					}
					if cut := d.Horizon / 8; b == 1 && cut > 0 {
						if _, err := s.Advance(cut); err != nil {
							panic("truss ablation: advance: " + err.Error())
						}
					}
					st := w.Stats()
					a.maintainMsgs += st.MessagesSent
					a.maintainBytes += st.BytesSent
				}
				mutate(wIx, sIx, &maintained)
				mutate(wRe, sRe, &reindex)

				// The repeated-query phase. Index side: ServeQuery, no
				// traversal, repeats hit the memo.
				wIx.ResetStats()
				span := BeginMeasure()
				t0 := time.Now()
				var ixAns string
				for q := 0; q < repeats; q++ {
					val, handled, err := ix.ServeQuery("spantruss", rawArgs, nil, nil, nil)
					if err != nil || !handled {
						panic(fmt.Sprintf("truss ablation: ServeQuery: handled=%v err=%v", handled, err))
					}
					if q == 0 {
						ixAns = jsonOf(val)
					}
				}
				maintained.queryDur += time.Since(t0)
				maintained.qm = maintained.qm.Add(span.End())
				ist := wIx.Stats()
				maintained.queryMsgs += ist.MessagesSent
				maintained.queryBytes += ist.BytesSent

				wRe.ResetStats()
				span = BeginMeasure()
				t0 = time.Now()
				var reAns string
				gSnap := sRe.Materialize()
				for q := 0; q < repeats; q++ {
					var out *truss.Accum
					if _, err := core.Run(gSnap, opts, core.TemporalPlan(),
						truss.SpanTrussAnalysis(gSnap, truss.WholeWindow(), k, nspans).Bind(&out)); err != nil {
						panic("truss ablation: re-decomposition: " + err.Error())
					}
					if q == 0 {
						reAns = jsonOf(out.Outcome())
					}
				}
				reindex.queryDur += time.Since(t0)
				reindex.qm = reindex.qm.Add(span.End())
				rst := wRe.Stats()
				reindex.queryMsgs += rst.MessagesSent
				reindex.queryBytes += rst.BytesSent

				if mismatched == "" && ixAns != reAns {
					mismatched = fmt.Sprintf("batch %d", b)
				}
			}

			for _, o := range []struct {
				strat string
				a     *arm
			}{{"reindex", &reindex}, {"maintained", &maintained}} {
				total := o.a.maintainMsgs + o.a.queryMsgs
				tb.AddRow(d.Name, mode.String(), o.strat,
					stats.FormatCount(uint64(o.a.maintainMsgs)),
					stats.FormatCount(uint64(o.a.queryMsgs)),
					stats.FormatDuration(o.a.queryDur),
					stats.FormatCount(uint64(total)))
				prefix := fmt.Sprintf("truss/%s/%s/%s", d.Name, mode.String(), o.strat)
				extra := fmt.Sprintf("dataset=%s ranks=%d mode=%s batches=%d repeats=%d k=3 spans=%d",
					d.Name, n, mode.String(), batches, repeats, len(spans))
				rep.metric(prefix+"/messages", float64(total), "msgs", extra)
				rep.metric(prefix+"/query_messages", float64(o.a.queryMsgs), "msgs", extra)
				rep.metric(prefix+"/bytes", float64(o.a.maintainBytes+o.a.queryBytes), "bytes", extra)
				rep.metricM(prefix+"/query_ns", float64(o.a.queryDur.Nanoseconds()), "ns/op", extra, o.a.qm)
			}
			ixSt := ix.Stats()
			switch {
			case mismatched != "":
				rep.notef("RESULT MISMATCH on %s/%s (%s): index answer disagrees with the re-decomposition",
					d.Name, mode, mismatched)
			case maintained.queryMsgs != 0:
				rep.notef("UNEXPECTED: index-served queries moved %d messages on %s/%s, want 0",
					maintained.queryMsgs, d.Name, mode)
			case maintained.maintainMsgs+maintained.queryMsgs >= reindex.maintainMsgs+reindex.queryMsgs ||
				maintained.queryDur >= reindex.queryDur:
				rep.notef("UNEXPECTED: maintained index did not strictly win on %s/%s: %d→%d total msgs, %s→%s query wall",
					d.Name, mode,
					reindex.maintainMsgs+reindex.queryMsgs, maintained.maintainMsgs+maintained.queryMsgs,
					stats.FormatDuration(reindex.queryDur), stats.FormatDuration(maintained.queryDur))
			default:
				rep.notef("%s/%s: total messages %s→%s (−%.1f%%), query wall %s→%s; memo served %d of %d queries without recompute",
					d.Name, mode,
					stats.FormatCount(uint64(reindex.maintainMsgs+reindex.queryMsgs)),
					stats.FormatCount(uint64(maintained.maintainMsgs+maintained.queryMsgs)),
					100*(1-float64(maintained.maintainMsgs+maintained.queryMsgs)/float64(reindex.maintainMsgs+reindex.queryMsgs)),
					stats.FormatDuration(reindex.queryDur), stats.FormatDuration(maintained.queryDur),
					ixSt.Served-ixSt.Recomputed, ixSt.Served)
			}
			wIx.Close()
			wRe.Close()
		}
	}
	rep.Output = tb.Render()
	rep.notef("the index pays span-bucketed support maintenance inside the stream's mutation collectives (AllGather at sink commit), then answers every spantruss query by peeling its local store — zero traversals, zero transport; the baseline re-materializes the window each epoch and re-runs the decomposition per query")
	return rep
}
