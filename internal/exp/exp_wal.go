package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/wal"
)

// AblationWAL measures what serving-path durability costs and proves what
// it buys. Each temporal dataset is replayed as the same chronological
// schedule of ingest/advance mutations through two engines: a plain
// in-memory stream, and a WAL-backed durable stream (per fsync policy)
// that is crash-stopped halfway — the process "dies" leaving a torn,
// partially-written record at the log's tail — recovered from its
// snapshot + log, and driven through the rest of the schedule. The driver
// reports mutation wall time for both strategies alongside the log's
// byte/record/checkpoint footprint, and self-verifies the recovery
// contract end to end: the recovered engine resumes at exactly the epoch
// the first life acknowledged, and after the full schedule all three
// fused analyses (count, closure, localcounts) answer byte-identically
// (JSON) to the never-crashed reference.
func AblationWAL(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "wal", Title: "Ablation: WAL-backed durable streams — overhead and crash recovery"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	const batches = 8
	tb := stats.NewTable(fmt.Sprintf("(%d ranks, %d chronological batches, crash + torn tail after batch %d, checkpoint every 3 mutations)", n, batches, batches/2),
		"Graph", "strategy", "mutations", "maintenance", "wal live", "checkpoints", "recovered")

	reg := engine.TemporalRegistry()
	identity := func(t uint64) uint64 { return t }
	ctx := context.Background()
	minMerge := func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	specs := []engine.Spec{
		{Analysis: "count"},
		{Analysis: "closure"},
		{Analysis: "localcounts", Args: json.RawMessage(`{"top":8}`)},
	}

	for _, d := range TemporalDatasets(cfg) {
		window := d.Horizon / 2
		edges := make([]graph.TemporalEdge, len(d.Edges))
		copy(edges, d.Edges)
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })

		// The mutation schedule both engines replay: per batch an optional
		// window advance followed by the batch's ingest.
		type mut struct {
			advance bool
			cutoff  uint64
			batch   []graph.Edge[uint64]
		}
		var muts []mut
		cutoff := uint64(0)
		for b := 0; b < batches; b++ {
			lo, hi := b*len(edges)/batches, (b+1)*len(edges)/batches
			if lo >= hi {
				continue
			}
			if start := edges[lo].Time; b > 0 && start > window && start-window > cutoff {
				cutoff = start - window
				muts = append(muts, mut{advance: true, cutoff: cutoff})
			}
			batch := make([]graph.Edge[uint64], 0, hi-lo)
			for _, e := range edges[lo:hi] {
				batch = append(batch, graph.Edge[uint64]{U: e.U, V: e.V, Meta: e.Time})
			}
			muts = append(muts, mut{batch: batch})
		}
		apply := func(eng *engine.Engine[serialize.Unit, uint64], from, to int) time.Duration {
			t0 := time.Now()
			for _, m := range muts[from:to] {
				var err error
				if m.advance {
					_, err = eng.Advance(ctx, d.Name, m.cutoff)
				} else {
					_, err = eng.Ingest(ctx, d.Name, m.batch)
				}
				if err != nil {
					panic("wal ablation: " + err.Error())
				}
			}
			return time.Since(t0)
		}

		// Plain reference: the same engine surface, no durability.
		wRef, gRef := BuildTemporal(cfg, n, nil)
		engRef := engine.New(reg, engine.EngineOptions[uint64]{Timestamps: identity})
		sRef, err := core.OpenStream(gRef, core.StreamOptions[uint64]{Survey: core.Options{}, MergeEdgeMeta: minMerge}, core.TemporalPlan())
		if err != nil {
			panic("wal ablation: " + err.Error())
		}
		if err := engRef.RegisterStream(d.Name, sRef); err != nil {
			panic("wal ablation: " + err.Error())
		}
		plainDur := apply(engRef, 0, len(muts))
		refAns := queryAll(ctx, engRef, d.Name, specs)
		engRef.Close()
		wRef.Close()
		tb.AddRow(d.Name, "plain", fmt.Sprint(len(muts)), stats.FormatDuration(plainDur), "-", "-", "-")
		rep.metric("wal/"+d.Name+"/plain/maintenance_ns", float64(plainDur.Nanoseconds()), "ns/op",
			fmt.Sprintf("dataset=%s ranks=%d batches=%d", d.Name, n, batches))

		for _, pol := range []struct {
			name string
			sync wal.SyncPolicy
		}{{"wal-fsync", wal.SyncAlways}, {"wal-nosync", wal.SyncNever}} {
			dir, err := os.MkdirTemp("", "tripoll-exp-wal-*")
			if err != nil {
				panic("wal ablation: " + err.Error())
			}
			dopts := engine.DurableOptions{Dir: dir, Sync: pol.sync, CheckpointEvery: 3}

			// First life: half the schedule, then a crash that tears the
			// log's final record mid-write.
			wA, gA := BuildTemporal(cfg, n, nil)
			engA := engine.New(reg, engine.EngineOptions[uint64]{Timestamps: identity})
			if _, _, err := engA.OpenDurableStream(d.Name, gA,
				core.StreamOptions[uint64]{MergeEdgeMeta: minMerge}, core.TemporalPlan(), dopts); err != nil {
				panic("wal ablation: " + err.Error())
			}
			half := len(muts) / 2
			durDur := apply(engA, 0, half)
			acked, _ := engA.Epoch(d.Name)
			engA.Close()
			wA.Close()
			tearLastSegment(dir)

			// Second life: recover and finish.
			wB, gB := BuildTemporal(cfg, n, nil)
			engB := engine.New(reg, engine.EngineOptions[uint64]{Timestamps: identity})
			_, epoch, err := engB.OpenDurableStream(d.Name, gB,
				core.StreamOptions[uint64]{MergeEdgeMeta: minMerge}, core.TemporalPlan(), dopts)
			if err != nil {
				panic("wal ablation: recover: " + err.Error())
			}
			recovered := epoch == acked
			durDur += apply(engB, half, len(muts))
			ans := queryAll(ctx, engB, d.Name, specs)
			st, _ := engB.DurableStatus(d.Name)
			engB.Close()
			wB.Close()
			os.RemoveAll(dir)

			match := len(ans) == len(refAns)
			for i := range refAns {
				match = match && ans[i] == refAns[i]
			}
			verdict := "yes"
			if !recovered || !match {
				verdict = "NO"
			}
			tb.AddRow(d.Name, pol.name, fmt.Sprint(len(muts)), stats.FormatDuration(durDur),
				stats.FormatBytes(st.WAL.Bytes), fmt.Sprint(st.WAL.Checkpoints), verdict)
			extra := fmt.Sprintf("dataset=%s ranks=%d batches=%d sync=%s", d.Name, n, batches, pol.name)
			rep.metric("wal/"+d.Name+"/"+pol.name+"/maintenance_ns", float64(durDur.Nanoseconds()), "ns/op", extra)
			rep.metric("wal/"+d.Name+"/"+pol.name+"/bytes", float64(st.WAL.Bytes), "bytes", extra)
			switch {
			case !recovered:
				rep.notef("RECOVERY FAILED on %s/%s: resumed at epoch %d, first life acknowledged %d", d.Name, pol.name, epoch, acked)
			case !match:
				rep.notef("RESULT MISMATCH on %s/%s: post-recovery analyses disagree with the never-crashed reference", d.Name, pol.name)
			default:
				overhead := 100 * (float64(durDur)/float64(plainDur) - 1)
				rep.notef("%s/%s: recovered at epoch %d through a torn tail; analyses identical to reference; maintenance overhead %+.1f%%",
					d.Name, pol.name, acked, overhead)
			}
		}
	}
	rep.Output = tb.Render()
	rep.notef("every mutation is framed, CRC-checked and (per policy) fsynced before it is applied, so the log never acknowledges an epoch it cannot replay; recovery = last snapshot + replay of the records past it, with a torn final record truncated (DESIGN.md §11)")
	return rep
}

// queryAll answers the specs against one graph and returns their
// canonical-JSON values, for byte-identical comparison across engines.
func queryAll(ctx context.Context, eng *engine.Engine[serialize.Unit, uint64], name string, specs []engine.Spec) []string {
	out := make([]string, len(specs))
	for i, spec := range specs {
		spec.Graph = name
		j, err := eng.Submit(ctx, spec)
		if err != nil {
			panic("wal ablation: submit: " + err.Error())
		}
		qr, err := j.Wait(ctx)
		if err != nil {
			panic("wal ablation: wait: " + err.Error())
		}
		out[i] = mustJSON(engine.JSONValue(qr.Value))
	}
	return out
}

// tearLastSegment simulates a crash mid-append: the newest WAL segment
// gains a partial record (a plausible length prefix with too few payload
// bytes behind it), exactly what a power loss leaves on disk.
func tearLastSegment(dir string) {
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.tpw"))
	if err != nil || len(segs) == 0 {
		return // nothing to tear (e.g. freshly truncated log): still a valid crash
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		panic("wal ablation: tear: " + err.Error())
	}
	defer f.Close()
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe}); err != nil {
		panic("wal ablation: tear: " + err.Error())
	}
}
