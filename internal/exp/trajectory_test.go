package exp

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// goldenBenchJSON is the frozen BENCH_*.json schema: field names and
// nesting must not drift, because the trajectory is only useful if every
// PR's record stays comparable (and feedable to gh-action-benchmark).
const goldenBenchJSON = `{
  "commit": {
    "id": "0123456789abcdef0123456789abcdef01234567",
    "message": "test commit",
    "timestamp": "2026-01-02T03:04:05Z"
  },
  "date": 1767323045000,
  "tool": "go",
  "benches": [
    {
      "name": "ordering/rmat-social/degree/wedges",
      "value": 39750,
      "unit": "wedges",
      "extra": "dataset=rmat-social ranks=4 ordering=degree"
    },
    {
      "name": "ordering/rmat-social/degeneracy/wedges",
      "value": 39684,
      "unit": "wedges",
      "extra": "dataset=rmat-social ranks=4 ordering=degeneracy"
    },
    {
      "name": "ordering/rmat-social/degree/survey_ns",
      "value": 1202108,
      "unit": "ns/op",
      "wall_ns": 1202108,
      "allocs": 54,
      "alloc_bytes": 2008,
      "extra": "dataset=rmat-social ranks=4 ordering=degree"
    }
  ],
  "env": {
    "go_version": "go1.24.0",
    "goos": "linux",
    "goarch": "amd64",
    "num_cpu": 8,
    "gomaxprocs": 8
  }
}
`

func goldenRecord() BenchRecord {
	return BenchRecord{
		Commit: BenchCommit{
			ID:        "0123456789abcdef0123456789abcdef01234567",
			Message:   "test commit",
			Timestamp: "2026-01-02T03:04:05Z",
		},
		Date: 1767323045000,
		Tool: "go",
		Benches: []Metric{
			{Name: "ordering/rmat-social/degree/wedges", Value: 39750, Unit: "wedges",
				Extra: "dataset=rmat-social ranks=4 ordering=degree"},
			{Name: "ordering/rmat-social/degeneracy/wedges", Value: 39684, Unit: "wedges",
				Extra: "dataset=rmat-social ranks=4 ordering=degeneracy"},
			{Name: "ordering/rmat-social/degree/survey_ns", Value: 1202108, Unit: "ns/op",
				WallNs: 1202108, Allocs: 54, AllocBytes: 2008,
				Extra: "dataset=rmat-social ranks=4 ordering=degree"},
		},
		Env: &BenchEnv{
			GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64",
			NumCPU: 8, GOMAXPROCS: 8,
		},
	}
}

// TestBenchJSONGolden freezes the serialized schema byte-for-byte.
func TestBenchJSONGolden(t *testing.T) {
	raw, err := json.MarshalIndent(goldenRecord(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw) + "\n"
	if got != goldenBenchJSON {
		t.Errorf("BENCH_*.json schema drifted.\ngot:\n%s\nwant:\n%s", got, goldenBenchJSON)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBenchFile(path, goldenRecord()); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Commit.ID != goldenRecord().Commit.ID || len(rec.Benches) != 3 {
		t.Errorf("round trip mangled record: %+v", rec)
	}
}

func TestBenchRecordValidate(t *testing.T) {
	bad := []func(*BenchRecord){
		func(r *BenchRecord) { r.Tool = "rust" },
		func(r *BenchRecord) { r.Commit.ID = "" },
		func(r *BenchRecord) { r.Date = 0 },
		func(r *BenchRecord) { r.Benches = nil },
		func(r *BenchRecord) { r.Benches[0].Name = "" },
		func(r *BenchRecord) { r.Benches[0].Unit = "" },
		func(r *BenchRecord) { r.Benches[0].Value = -1 },
		func(r *BenchRecord) { r.Benches[1].Name = r.Benches[0].Name },
		func(r *BenchRecord) { r.Benches[2].WallNs = -1 },
		func(r *BenchRecord) { r.Benches[2].Allocs = math.NaN() },
		func(r *BenchRecord) { r.Benches[2].AllocBytes = math.Inf(1) },
		func(r *BenchRecord) { r.Env.GoVersion = "" },
		func(r *BenchRecord) { r.Env.GOOS = "" },
		func(r *BenchRecord) { r.Env.NumCPU = 0 },
		func(r *BenchRecord) { r.Env.GOMAXPROCS = -1 },
	}
	for i, mutate := range bad {
		rec := goldenRecord()
		mutate(&rec)
		if err := rec.Validate(); err == nil {
			t.Errorf("mutation %d: invalid record passed validation", i)
		}
	}
	rec := goldenRecord()
	if err := rec.Validate(); err != nil {
		t.Errorf("golden record invalid: %v", err)
	}
}

// TestOrderingAblationMetrics runs the ordering driver and checks the
// acceptance properties of the trajectory: a degree/degeneracy pair exists
// for the RMAT benchmark graph and the degeneracy order generates no more
// wedges than the degree order there.
func TestOrderingAblationMetrics(t *testing.T) {
	rep := AblationOrdering(tinyConfig())
	assertClean(t, rep)
	byName := map[string]Metric{}
	for _, m := range rep.Metrics {
		if byName[m.Name] != (Metric{}) {
			t.Errorf("duplicate metric %q", m.Name)
		}
		byName[m.Name] = m
	}
	deg, okDeg := byName["ordering/rmat-social/degree/wedges"]
	dgn, okDgn := byName["ordering/rmat-social/degeneracy/wedges"]
	if !okDeg || !okDgn {
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		t.Fatalf("missing rmat-social ordering pair; have: %s", strings.Join(names, ", "))
	}
	if dgn.Value > deg.Value {
		t.Errorf("degeneracy wedges %v > degree wedges %v on rmat-social", dgn.Value, deg.Value)
	}
	for _, suffix := range []string{"survey_ns", "build_ns", "messages"} {
		for _, ord := range []string{"degree", "degeneracy"} {
			name := "ordering/rmat-social/" + ord + "/" + suffix
			if _, ok := byName[name]; !ok {
				t.Errorf("missing metric %q", name)
			}
		}
	}
}

// TestPushdownAblationMetrics runs the pushdown driver and checks the
// trajectory's acceptance property: for every dataset/mode pair the
// pushdown strategy reports strictly fewer transport messages and bytes
// than the post-filter baseline (matched-count equality is enforced by
// the driver's own MISMATCH sentinel, which assertClean catches).
func TestPushdownAblationMetrics(t *testing.T) {
	rep := AblationPushdown(tinyConfig())
	assertClean(t, rep)
	byName := map[string]float64{}
	for _, m := range rep.Metrics {
		byName[m.Name] = m.Value
	}
	pairs := 0
	for name := range byName {
		const tail = "/pushdown/messages"
		if !strings.HasPrefix(name, "pushdown/") || !strings.HasSuffix(name, tail) {
			continue
		}
		stem := strings.TrimSuffix(name, tail)
		for _, measure := range []string{"messages", "bytes"} {
			pd, okPd := byName[stem+"/pushdown/"+measure]
			base, okBase := byName[stem+"/post-filter/"+measure]
			if !okPd || !okBase {
				t.Fatalf("%s: missing %s pair", stem, measure)
			}
			if pd >= base {
				t.Errorf("%s: pushdown %s %v >= baseline %v", stem, measure, pd, base)
			}
		}
		pairs++
	}
	// 5 temporal datasets × 2 modes.
	if pairs != 10 {
		t.Errorf("found %d pushdown comparison pairs, want 10", pairs)
	}
}

// TestCommittedTrajectoryFilesValid reads every BENCH_PR*.json committed
// at the repo root through the validating reader, so a PR can't land a
// malformed trajectory point; the PR 2 point must carry the pushdown
// reduction it claims.
func TestCommittedTrajectoryFilesValid(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "BENCH_PR*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no committed BENCH_PR*.json found (err=%v)", err)
	}
	for _, f := range files {
		rec, err := ReadBenchFile(f)
		if err != nil {
			t.Errorf("%s: %v", filepath.Base(f), err)
			continue
		}
		if strings.HasSuffix(f, "BENCH_PR2.json") {
			byName := map[string]float64{}
			for _, m := range rec.Benches {
				byName[m.Name] = m.Value
			}
			pd := byName["pushdown/rmat-social/push-pull/pushdown/bytes"]
			base := byName["pushdown/rmat-social/push-pull/post-filter/bytes"]
			if pd == 0 || base == 0 || pd >= base {
				t.Errorf("BENCH_PR2.json does not record the pushdown byte reduction: pushdown=%v baseline=%v", pd, base)
			}
		}
	}
}
