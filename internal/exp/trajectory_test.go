package exp

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// goldenBenchJSON is the frozen BENCH_*.json schema: field names and
// nesting must not drift, because the trajectory is only useful if every
// PR's record stays comparable (and feedable to gh-action-benchmark).
const goldenBenchJSON = `{
  "commit": {
    "id": "0123456789abcdef0123456789abcdef01234567",
    "message": "test commit",
    "timestamp": "2026-01-02T03:04:05Z"
  },
  "date": 1767323045000,
  "tool": "go",
  "benches": [
    {
      "name": "ordering/rmat-social/degree/wedges",
      "value": 39750,
      "unit": "wedges",
      "extra": "dataset=rmat-social ranks=4 ordering=degree"
    },
    {
      "name": "ordering/rmat-social/degeneracy/wedges",
      "value": 39684,
      "unit": "wedges",
      "extra": "dataset=rmat-social ranks=4 ordering=degeneracy"
    }
  ]
}
`

func goldenRecord() BenchRecord {
	return BenchRecord{
		Commit: BenchCommit{
			ID:        "0123456789abcdef0123456789abcdef01234567",
			Message:   "test commit",
			Timestamp: "2026-01-02T03:04:05Z",
		},
		Date: 1767323045000,
		Tool: "go",
		Benches: []Metric{
			{Name: "ordering/rmat-social/degree/wedges", Value: 39750, Unit: "wedges",
				Extra: "dataset=rmat-social ranks=4 ordering=degree"},
			{Name: "ordering/rmat-social/degeneracy/wedges", Value: 39684, Unit: "wedges",
				Extra: "dataset=rmat-social ranks=4 ordering=degeneracy"},
		},
	}
}

// TestBenchJSONGolden freezes the serialized schema byte-for-byte.
func TestBenchJSONGolden(t *testing.T) {
	raw, err := json.MarshalIndent(goldenRecord(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := string(raw) + "\n"
	if got != goldenBenchJSON {
		t.Errorf("BENCH_*.json schema drifted.\ngot:\n%s\nwant:\n%s", got, goldenBenchJSON)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteBenchFile(path, goldenRecord()); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Commit.ID != goldenRecord().Commit.ID || len(rec.Benches) != 2 {
		t.Errorf("round trip mangled record: %+v", rec)
	}
}

func TestBenchRecordValidate(t *testing.T) {
	bad := []func(*BenchRecord){
		func(r *BenchRecord) { r.Tool = "rust" },
		func(r *BenchRecord) { r.Commit.ID = "" },
		func(r *BenchRecord) { r.Date = 0 },
		func(r *BenchRecord) { r.Benches = nil },
		func(r *BenchRecord) { r.Benches[0].Name = "" },
		func(r *BenchRecord) { r.Benches[0].Unit = "" },
		func(r *BenchRecord) { r.Benches[0].Value = -1 },
		func(r *BenchRecord) { r.Benches[1].Name = r.Benches[0].Name },
	}
	for i, mutate := range bad {
		rec := goldenRecord()
		mutate(&rec)
		if err := rec.Validate(); err == nil {
			t.Errorf("mutation %d: invalid record passed validation", i)
		}
	}
	rec := goldenRecord()
	if err := rec.Validate(); err != nil {
		t.Errorf("golden record invalid: %v", err)
	}
}

// TestOrderingAblationMetrics runs the ordering driver and checks the
// acceptance properties of the trajectory: a degree/degeneracy pair exists
// for the RMAT benchmark graph and the degeneracy order generates no more
// wedges than the degree order there.
func TestOrderingAblationMetrics(t *testing.T) {
	rep := AblationOrdering(tinyConfig())
	assertClean(t, rep)
	byName := map[string]Metric{}
	for _, m := range rep.Metrics {
		if byName[m.Name] != (Metric{}) {
			t.Errorf("duplicate metric %q", m.Name)
		}
		byName[m.Name] = m
	}
	deg, okDeg := byName["ordering/rmat-social/degree/wedges"]
	dgn, okDgn := byName["ordering/rmat-social/degeneracy/wedges"]
	if !okDeg || !okDgn {
		names := make([]string, 0, len(byName))
		for n := range byName {
			names = append(names, n)
		}
		t.Fatalf("missing rmat-social ordering pair; have: %s", strings.Join(names, ", "))
	}
	if dgn.Value > deg.Value {
		t.Errorf("degeneracy wedges %v > degree wedges %v on rmat-social", dgn.Value, deg.Value)
	}
	for _, suffix := range []string{"survey_ns", "build_ns", "messages"} {
		for _, ord := range []string{"degree", "degeneracy"} {
			name := "ordering/rmat-social/" + ord + "/" + suffix
			if _, ok := byName[name]; !ok {
				t.Errorf("missing metric %q", name)
			}
		}
	}
}
