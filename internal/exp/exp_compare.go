package exp

import (
	"fmt"

	"tripoll/internal/baseline"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// Table2 regenerates the end-to-end comparison with related work: TriPoll
// (push-pull) against the re-implemented communication patterns of Pearce
// et al. (wedge queries), Tom et al. (full replication) and TriC
// (edge-centric with fetches), all over the same runtime and graphs.
func Table2(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "table2", Title: "End-to-end runtime comparison with related work (Tab. 2)"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	tb := stats.NewTable(fmt.Sprintf("(all systems on %d ranks)", n),
		"Graph", "system", "runtime", "comm volume", "messages", "triangles")
	for _, ds := range Datasets(cfg) {
		w, g := BuildUnit(cfg, n, ds.Edges)
		want := core.Count(g, core.Options{Mode: core.PushPull})
		tb.AddRow(ds.Name, "TriPoll (push-pull)",
			stats.FormatDuration(want.Total),
			stats.FormatBytes(want.DryRun.Bytes+want.Push.Bytes+want.Pull.Bytes),
			stats.FormatCount(uint64(want.DryRun.Messages+want.Push.Messages+want.Pull.Messages)),
			stats.FormatCount(want.Triangles))

		type sys struct {
			name string
			run  func() baseline.Result
		}
		for _, s := range []sys{
			{"Pearce et al. (wedge queries)", func() baseline.Result { return baseline.WedgeQueryCount(g) }},
			{"Tom et al. (replicated)", func() baseline.Result { return baseline.ReplicatedCount(g) }},
			{"TriC (edge-centric)", func() baseline.Result { return baseline.EdgeCentricCount(g) }},
		} {
			res := s.run()
			tb.AddRow(ds.Name, s.name,
				stats.FormatDuration(res.Duration),
				stats.FormatBytes(res.Bytes),
				stats.FormatCount(uint64(res.Messages)),
				stats.FormatCount(res.Triangles))
			if res.Triangles != want.Triangles {
				rep.notef("COUNT MISMATCH on %s: %s found %d, TriPoll %d", ds.Name, s.name, res.Triangles, want.Triangles)
			}
		}
		w.Close()
	}
	rep.Output = tb.Render()
	rep.notef("paper shape: TriPoll beats the wedge-query pattern (1.8–6.8x there); the replicated system is fast but its volume scales with ranks (§5.6)")
	return rep
}

// AblationPullFactor sweeps the pull-decision threshold — the design knob
// behind §4.4's inequality — on the hub-heavy host graph.
func AblationPullFactor(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "pullfactor", Title: "Ablation: pull-decision threshold (PullFactor sweep)"}
	ds := Datasets(cfg)[3] // webhost: the graph where pulling matters most
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	w, g := BuildUnit(cfg, n, ds.Edges)
	defer w.Close()
	tb := stats.NewTable(fmt.Sprintf("(webhost graph, %d ranks; factor=1 is the paper's rule; tiny=always pull, huge=push-only+overhead)", n),
		"pull factor", "pulls granted", "comm volume", "runtime", "triangles")
	var want uint64
	for _, pf := range []float64{1e-9, 0.25, 0.5, 1.0, 2.0, 4.0, 1e9} {
		res := core.Count(g, core.Options{Mode: core.PushPull, PullFactor: pf})
		if want == 0 {
			want = res.Triangles
		} else if res.Triangles != want {
			rep.notef("COUNT MISMATCH at factor %g", pf)
		}
		tb.AddRow(fmt.Sprintf("%g", pf),
			stats.FormatCount(res.PullsGranted),
			stats.FormatBytes(res.DryRun.Bytes+res.Push.Bytes+res.Pull.Bytes),
			stats.FormatDuration(res.Total),
			stats.FormatCount(res.Triangles))
	}
	rep.Output = tb.Render()
	rep.notef("expected shape: volume is minimized near factor 1 (the paper's rule); extreme factors degenerate to always-pull / push-only-with-dry-run-overhead")
	return rep
}

// AblationBuffer sweeps the YGM message-buffer threshold, quantifying the
// aggregation benefit §4.1.1 claims.
func AblationBuffer(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "buffer", Title: "Ablation: YGM buffer size (message aggregation, §4.1.1)"}
	ds := Datasets(cfg)[0]
	tb := stats.NewTable("(ba-social graph, 4 ranks)",
		"buffer bytes", "batches", "msgs/batch", "runtime", "triangles")
	for _, buf := range []int{256, 4 << 10, 64 << 10, 1 << 20} {
		w := ygm.MustWorld(4, ygm.Options{BufferBytes: buf, Transport: cfg.Transport})
		g := BuildUnitOn(w, ds.Edges)
		res := core.Count(g, core.Options{Mode: core.PushOnly})
		st := w.Stats()
		perBatch := float64(st.MessagesSent) / float64(maxI64(st.BatchesSent, 1))
		tb.AddRow(stats.FormatBytes(int64(buf)),
			stats.FormatCount(uint64(st.BatchesSent)),
			fmt.Sprintf("%.1f", perBatch),
			stats.FormatDuration(res.Total),
			stats.FormatCount(res.Triangles))
		w.Close()
	}
	rep.Output = tb.Render()
	rep.notef("expected shape: larger buffers mean fewer, fuller batches; runtime improves until batches stop being the bottleneck")
	return rep
}

// AblationTransport runs the same counting workload over the in-memory and
// loopback-TCP transports.
func AblationTransport(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "transport", Title: "Ablation: channel vs loopback-TCP transport"}
	ds := Datasets(cfg)[0]
	tb := stats.NewTable("(ba-social graph, 4 ranks, push-pull)",
		"transport", "runtime", "comm volume", "triangles")
	var counts []uint64
	for _, tk := range []ygm.TransportKind{ygm.TransportChannel, ygm.TransportTCP} {
		c := cfg
		c.Transport = tk
		w, g := BuildUnit(c, 4, ds.Edges)
		res := core.Count(g, core.Options{})
		tb.AddRow(tk.String(), stats.FormatDuration(res.Total),
			stats.FormatBytes(res.DryRun.Bytes+res.Push.Bytes+res.Pull.Bytes),
			stats.FormatCount(res.Triangles))
		counts = append(counts, res.Triangles)
		w.Close()
	}
	rep.Output = tb.Render()
	if counts[0] == counts[1] {
		rep.notef("transports agree on the count — the RPC port is semantically transparent")
	} else {
		rep.notef("COUNT MISMATCH across transports: %v", counts)
	}
	return rep
}

// AblationGrouping measures node-level message aggregation (§5.4's
// proposed remedy for strong-scaling collapse): grouping ranks into
// simulated compute nodes relays inter-group messages through gateways,
// trading an extra intra-group hop for fewer, fuller inter-group batches.
func AblationGrouping(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "grouping", Title: "Ablation: node-level message aggregation (§5.4 remedy)"}
	ds := Datasets(cfg)[3]
	n := cfg.MaxRanks
	if n < 4 {
		n = 4
	}
	tb := stats.NewTable(fmt.Sprintf("(webhost graph, %d ranks, push-only, 8KB buffers)", n),
		"group size", "inter-group batches", "inter-group bytes", "fill (msgs/batch)", "forwards", "runtime", "triangles")
	var remoteBatches []int64
	var want uint64
	for _, gs := range []int{1, 2, 4} {
		if gs > n {
			continue
		}
		w := ygm.MustWorld(n, ygm.Options{GroupSize: gs, BufferBytes: 8 << 10, Transport: cfg.Transport})
		g := BuildUnitOn(w, ds.Edges)
		w.ResetStats()
		res := core.Count(g, core.Options{Mode: core.PushOnly})
		st := w.Stats()
		if want == 0 {
			want = res.Triangles
		} else if res.Triangles != want {
			rep.notef("COUNT MISMATCH at group size %d", gs)
		}
		remoteBatches = append(remoteBatches, st.RemoteBatches)
		tb.AddRow(fmt.Sprintf("%d", gs),
			stats.FormatCount(uint64(st.RemoteBatches)),
			stats.FormatBytes(st.RemoteBytes),
			fmt.Sprintf("%.1f", float64(st.MessagesSent)/float64(maxI64(st.BatchesSent, 1))),
			stats.FormatCount(uint64(st.MessagesForwarded)),
			stats.FormatDuration(res.Total),
			stats.FormatCount(res.Triangles))
		w.Close()
	}
	rep.Output = tb.Render()
	if len(remoteBatches) >= 2 && remoteBatches[len(remoteBatches)-1] < remoteBatches[0] {
		rep.notef("inter-group batch count drops %d → %d with node-level aggregation — the mechanism §5.4 predicts would fix the 256-node regression", remoteBatches[0], remoteBatches[len(remoteBatches)-1])
	} else {
		rep.notef("UNEXPECTED: grouping did not reduce inter-group batches: %v", remoteBatches)
	}
	return rep
}

// AblationPartition compares the vertex partitionings §4.2 mentions
// ("random or cyclic"): work balance and runtime under hash vs cyclic
// placement on a hub-heavy graph.
func AblationPartition(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "partition", Title: "Ablation: hash vs cyclic vertex partitioning (§4.2)"}
	ds := Datasets(cfg)[1] // rmat-social: skewed degrees stress placement
	n := cfg.MaxRanks
	if n < 4 {
		n = 4
	}
	tb := stats.NewTable(fmt.Sprintf("(rmat-social graph, %d ranks, push-pull)", n),
		"partitioner", "work balance", "max rank work", "comm volume", "runtime", "triangles")
	var counts []uint64
	for _, part := range []graph.Partitioner{graph.HashPartition{}, graph.CyclicPartition{}} {
		w := ygm.MustWorld(n, ygm.Options{Transport: cfg.Transport})
		b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(),
			graph.BuilderOptions[serialize.Unit]{Partitioner: part})
		var g *graph.DODGr[serialize.Unit, serialize.Unit]
		w.Parallel(func(r *ygm.Rank) {
			for i := r.ID(); i < len(ds.Edges); i += r.Size() {
				b.AddEdge(r, ds.Edges[i][0], ds.Edges[i][1], serialize.Unit{})
			}
			gg := b.Build(r)
			if r.ID() == 0 {
				g = gg
			}
		})
		res := core.Count(g, core.Options{Mode: core.PushPull})
		counts = append(counts, res.Triangles)
		tb.AddRow(part.Name(),
			fmt.Sprintf("%.2f", res.WorkBalance),
			stats.FormatCount(res.MaxRankWedgeChecks),
			stats.FormatBytes(res.DryRun.Bytes+res.Push.Bytes+res.Pull.Bytes),
			stats.FormatDuration(res.Total),
			stats.FormatCount(res.Triangles))
		w.Close()
	}
	rep.Output = tb.Render()
	if counts[0] != counts[1] {
		rep.notef("COUNT MISMATCH across partitioners: %v", counts)
	} else {
		rep.notef("partitioners agree on the count; §4.2's claim is that DODGr hub-shrinking makes cheap partitionings palatable — balance should be comparable")
	}
	return rep
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
