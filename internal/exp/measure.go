package exp

import (
	"runtime"
	"time"
)

// Wall-clock and allocation measurement for the benchmark trajectory.
// Every timed metric can carry the wall time and the allocator traffic of
// the bracket that produced it, so BENCH_*.json diffs surface both "got
// slower" and "started allocating" regressions (the latter being machine
// independent, and therefore the part a cross-machine CI gate can enforce
// strictly).

// BenchEnv stamps the environment a trajectory point was measured in. Wall
// times are only comparable within one env; alloc counts travel across.
type BenchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentBenchEnv captures the running process's environment stamp.
func CurrentBenchEnv() BenchEnv {
	return BenchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Measured is what one measurement bracket observed: wall time plus the
// process-wide allocator delta (objects and bytes). The allocator numbers
// include every goroutine — for the single-process simulated-rank runtime
// that is exactly the cost being tracked.
type Measured struct {
	WallNs     float64
	Allocs     float64
	AllocBytes float64
}

// Span is an open measurement bracket; close it with End.
type Span struct {
	start   time.Time
	mallocs uint64
	bytes   uint64
}

// BeginMeasure opens a bracket. It reads runtime.MemStats, which briefly
// stops the world — bracket phases, not inner loops.
func BeginMeasure() Span {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Span{start: time.Now(), mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// End closes the bracket.
func (sp Span) End() Measured {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return Measured{
		WallNs:     float64(time.Since(sp.start).Nanoseconds()),
		Allocs:     float64(ms.Mallocs - sp.mallocs),
		AllocBytes: float64(ms.TotalAlloc - sp.bytes),
	}
}

// Add accumulates another bracket, for per-batch loops reporting totals.
func (m Measured) Add(o Measured) Measured {
	return Measured{WallNs: m.WallNs + o.WallNs, Allocs: m.Allocs + o.Allocs, AllocBytes: m.AllocBytes + o.AllocBytes}
}

// Per divides the bracket by n operations, for per-op metrics.
func (m Measured) Per(n int) Measured {
	if n <= 0 {
		return m
	}
	f := float64(n)
	return Measured{WallNs: m.WallNs / f, Allocs: m.Allocs / f, AllocBytes: m.AllocBytes / f}
}
