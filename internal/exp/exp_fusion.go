package exp

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
)

// AblationFusion measures what the unified analysis API saves: k stock
// analyses (count, closure times, per-vertex counts) asked of the same
// graph — once sequentially, one traversal per analysis, and once fused
// into a single Run — reporting transport messages, bytes and wall time.
// Because a fused run performs exactly one dry run/push/pull regardless of
// how many analyses are attached, k analyses should cost ~1/k of the
// sequential enumeration traffic. The driver self-verifies that every
// per-analysis result is identical between the two strategies and that the
// fused run moved strictly fewer messages and bytes, on every dataset and
// in both algorithms.
func AblationFusion(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "fusion", Title: "Ablation: fused multi-analysis survey vs sequential passes"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	tb := stats.NewTable(fmt.Sprintf("(%d ranks; analyses: count, closure, vertexcounts)", n),
		"Graph", "mode", "strategy", "traversals", "messages", "bytes", "survey")

	for _, d := range TemporalDatasets(cfg) {
		w, g := BuildTemporal(cfg, n, d.Edges)
		for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
			opts := core.Options{Mode: mode}
			type outcome struct {
				count      uint64
				joint      *stats.Joint2D
				verts      map[uint64]uint64
				msgs       int64
				bytes      int64
				dur        time.Duration
				m          Measured
				traversals int
				analyses   []string
			}
			mustRun := func(out *outcome, analyses ...core.Attached[serialize.Unit, uint64]) core.Result {
				sp := BeginMeasure()
				res, err := core.Run(g, opts, nil, analyses...)
				if err != nil {
					panic("fusion ablation: " + err.Error())
				}
				out.m = out.m.Add(sp.End())
				out.msgs += msgsOf(res)
				out.bytes += bytesOf(res)
				out.dur += res.Total
				out.traversals++
				out.analyses = append(out.analyses, res.Analyses...)
				return res
			}
			var seq outcome
			mustRun(&seq, core.CountAnalysis[serialize.Unit, uint64]().Bind(&seq.count))
			mustRun(&seq, core.ClosureTimeAnalysis[serialize.Unit]().Bind(&seq.joint))
			mustRun(&seq, core.VertexCountAnalysis[serialize.Unit, uint64]().Bind(&seq.verts))

			var fus outcome
			mustRun(&fus,
				core.CountAnalysis[serialize.Unit, uint64]().Bind(&fus.count),
				core.ClosureTimeAnalysis[serialize.Unit]().Bind(&fus.joint),
				core.VertexCountAnalysis[serialize.Unit, uint64]().Bind(&fus.verts))

			for _, o := range []struct {
				strat string
				oc    *outcome
			}{{"sequential", &seq}, {"fused", &fus}} {
				tb.AddRow(d.Name, mode.String(), o.strat,
					fmt.Sprintf("%d", o.oc.traversals),
					stats.FormatCount(uint64(o.oc.msgs)),
					stats.FormatBytes(o.oc.bytes),
					stats.FormatDuration(o.oc.dur))
				prefix := fmt.Sprintf("fusion/%s/%s/%s", d.Name, mode.String(), o.strat)
				extra := fmt.Sprintf("dataset=%s ranks=%d mode=%s analyses=%s",
					d.Name, n, mode.String(), strings.Join(o.oc.analyses, "+"))
				rep.metric(prefix+"/messages", float64(o.oc.msgs), "msgs", extra)
				rep.metric(prefix+"/bytes", float64(o.oc.bytes), "bytes", extra)
				rep.metricM(prefix+"/survey_ns", float64(o.oc.dur.Nanoseconds()), "ns/op", extra, o.oc.m)
			}
			switch {
			case fus.count != seq.count ||
				!reflect.DeepEqual(fus.verts, seq.verts) ||
				!reflect.DeepEqual(*fus.joint, *seq.joint):
				rep.notef("RESULT MISMATCH on %s/%s: fused analyses disagree with sequential runs",
					d.Name, mode)
			case fus.msgs >= seq.msgs || fus.bytes >= seq.bytes:
				rep.notef("UNEXPECTED: fusion did not strictly reduce traffic on %s/%s: %d→%d msgs, %d→%d bytes",
					d.Name, mode, seq.msgs, fus.msgs, seq.bytes, fus.bytes)
			default:
				rep.notef("%s/%s: messages %s→%s (−%.1f%%), bytes %s→%s (−%.1f%%) for %d analyses in 1 traversal",
					d.Name, mode,
					stats.FormatCount(uint64(seq.msgs)), stats.FormatCount(uint64(fus.msgs)),
					100*(1-float64(fus.msgs)/float64(seq.msgs)),
					stats.FormatBytes(seq.bytes), stats.FormatBytes(fus.bytes),
					100*(1-float64(fus.bytes)/float64(seq.bytes)),
					len(fus.analyses))
			}
		}
		w.Close()
	}
	rep.Output = tb.Render()
	rep.notef("a fused run performs one dry run/push/pull regardless of attached analyses, and analysis accumulators stay rank-local until the tree reduction — identical per-analysis results are the fusion ≡ sequential property, also unit-tested in internal/core")
	return rep
}
