package exp

import (
	"strings"
	"testing"
)

func tinyConfig() Config {
	return Config{Scale: 0.02, MaxRanks: 2}
}

// assertClean fails on the sentinel strings drivers emit when a
// cross-check fails, making every experiment a self-verifying integration
// test.
func assertClean(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Output == "" {
		t.Fatalf("%s: empty output", rep.ID)
	}
	full := rep.Render()
	for _, bad := range []string{"MISMATCH", "UNEXPECTED"} {
		if strings.Contains(full, bad) {
			t.Errorf("%s: verification failure:\n%s", rep.ID, full)
		}
	}
}

func TestAllExperimentsTiny(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			rep := r.Run(tinyConfig())
			if rep.ID != r.ID {
				t.Errorf("report id %q != runner id %q", rep.ID, r.ID)
			}
			assertClean(t, rep)
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table2"); !ok {
		t.Error("table2 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestDatasetsScaleDown(t *testing.T) {
	small := Datasets(Config{Scale: 0.02, MaxRanks: 2})
	if len(small) != 4 {
		t.Fatalf("datasets = %d", len(small))
	}
	for _, d := range small {
		if len(d.Edges) == 0 {
			t.Errorf("%s: empty", d.Name)
		}
		if len(d.Edges) > 200_000 {
			t.Errorf("%s: %d edges at tiny scale", d.Name, len(d.Edges))
		}
		if d.Analog == "" {
			t.Errorf("%s: missing paper analog", d.Name)
		}
	}
}

func TestRankSweep(t *testing.T) {
	c := Config{MaxRanks: 8}.withDefaults()
	got := c.rankSweep()
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v", got)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.MaxRanks != 8 {
		t.Errorf("defaults = %+v", c)
	}
	if c.scaled(100, 5) != 100 {
		t.Error("scaled at 1.0")
	}
	if (Config{Scale: 0.001}).withDefaults().scaled(100, 5) != 5 {
		t.Error("floor not applied")
	}
}

func TestReportRender(t *testing.T) {
	rep := &Report{ID: "x", Title: "T", Output: "body\n"}
	rep.notef("note %d", 1)
	out := rep.Render()
	for _, want := range []string{"==== x — T ====", "body", "note 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
