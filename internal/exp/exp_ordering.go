package exp

import (
	"fmt"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// AblationOrdering compares the two vertex-ordering strategies on the
// survey hot path: the paper's degree order (§3) against the degeneracy
// order of a distributed k-core peel (the Pashanasangi–Seshadhri
// refinement). The orderings change which endpoint owns each undirected
// edge in G⁺ and therefore |W⁺| = Σ C(d⁺, 2), the number of wedge checks
// the push phase performs — the algorithm's unit of work. Build time is
// reported separately because the peel is extra construction work the
// degree order does not pay.
//
// Every row emits machine-readable metrics, so BENCH_*.json carries a
// degree-vs-degeneracy pair per dataset for the benchmark trajectory.
func AblationOrdering(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "ordering", Title: "Ablation: degree vs degeneracy vertex ordering"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	tb := stats.NewTable(fmt.Sprintf("(%d ranks, push-pull; |W+| is the push phase's work bound)", n),
		"Graph", "ordering", "|W+|", "dmax+", "degeneracy", "build", "survey", "messages", "triangles")

	ds := Datasets(cfg)
	// rmat-social is the acceptance graph: skewed degrees, where the
	// stronger order should prune the most wedges.
	selected := []Dataset{ds[0], ds[1], ds[3]}
	for _, d := range selected {
		type row struct {
			wedges    uint64
			triangles uint64
		}
		byOrd := map[graph.Ordering]row{}
		for _, ord := range []graph.Ordering{graph.OrderDegree, graph.OrderDegeneracy} {
			w := ygm.MustWorld(n, ygm.Options{Transport: cfg.Transport})
			b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(),
				graph.BuilderOptions[serialize.Unit]{Ordering: ord})
			var g *graph.DODGr[serialize.Unit, serialize.Unit]
			buildStart := time.Now()
			buildSpan := BeginMeasure()
			w.Parallel(func(r *ygm.Rank) {
				for i := r.ID(); i < len(d.Edges); i += r.Size() {
					b.AddEdge(r, d.Edges[i][0], d.Edges[i][1], serialize.Unit{})
				}
				gg := b.Build(r)
				if r.ID() == 0 {
					g = gg
				}
			})
			buildM := buildSpan.End()
			buildTime := time.Since(buildStart)
			surveySpan := BeginMeasure()
			res := core.Count(g, core.Options{Mode: core.PushPull})
			surveyM := surveySpan.End()
			msgs := res.DryRun.Messages + res.Push.Messages + res.Pull.Messages
			byOrd[ord] = row{wedges: g.NumWedges(), triangles: res.Triangles}
			tb.AddRow(d.Name, ord.String(),
				stats.FormatCount(g.NumWedges()),
				stats.FormatCount(uint64(g.MaxOutDegree())),
				stats.FormatCount(uint64(g.Degeneracy())),
				stats.FormatDuration(buildTime),
				stats.FormatDuration(res.Total),
				stats.FormatCount(uint64(msgs)),
				stats.FormatCount(res.Triangles))

			prefix := fmt.Sprintf("ordering/%s/%s", d.Name, ord.String())
			extra := fmt.Sprintf("dataset=%s ranks=%d ordering=%s", d.Name, n, ord.String())
			rep.metricM(prefix+"/survey_ns", float64(res.Total.Nanoseconds()), "ns/op", extra, surveyM)
			rep.metricM(prefix+"/build_ns", float64(buildTime.Nanoseconds()), "ns/op", extra, buildM)
			rep.metric(prefix+"/wedges", float64(g.NumWedges()), "wedges", extra)
			rep.metric(prefix+"/messages", float64(msgs), "msgs", extra)
			w.Close()
		}
		deg, dgn := byOrd[graph.OrderDegree], byOrd[graph.OrderDegeneracy]
		if deg.triangles != dgn.triangles {
			rep.notef("COUNT MISMATCH on %s: degree found %d, degeneracy %d", d.Name, deg.triangles, dgn.triangles)
		}
		if dgn.wedges > deg.wedges {
			rep.notef("UNEXPECTED: degeneracy order widens |W+| on %s: %d > %d", d.Name, dgn.wedges, deg.wedges)
		} else {
			rep.notef("%s: degeneracy order prunes |W+| %d → %d (%.1f%%)", d.Name,
				deg.wedges, dgn.wedges, 100*(1-float64(dgn.wedges)/float64(max64(deg.wedges, 1))))
		}
	}
	rep.Output = tb.Render()
	rep.notef("degeneracy bounds every out-degree (dmax+ ≤ k), so pushed suffixes — the wedge batches of Alg. 1 — shrink; the peel's build-time cost is the price")
	return rep
}
