package exp

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// HotPath measures the serving hot path — survey runs, the zero-copy
// push-phase encode, and stream ingest — at a FIXED size regardless of
// cfg.Scale/MaxRanks, so its numbers are comparable point-to-point across
// the BENCH_*.json trajectory. It is the workload the CI bench gate diffs:
// its alloc counts are deterministic per commit, and every timed metric
// carries a wall_ns/allocs bracket via testing.Benchmark.
//
// Each mode also re-runs on a CopyEncode world (the pre-zero-copy
// reference encode path) and cross-checks results byte-for-byte at the
// counter level, so a framing bug in the pooled path shows up here as a
// MISMATCH before the gate ever looks at numbers.

const (
	hotVerts      = 600
	hotEdgeDraws  = 4000
	hotRanks      = 4
	hotSeed       = 7
	hotStreamSeed = 11
	hotBatchEdges = 64
	hotWarmBatch  = 50
)

func hotEdgeList() [][2]uint64 {
	rng := rand.New(rand.NewSource(hotSeed))
	edges := make([][2]uint64, 0, hotEdgeDraws)
	for i := 0; i < hotEdgeDraws; i++ {
		u, v := uint64(rng.Intn(hotVerts)), uint64(rng.Intn(hotVerts))
		if u == v {
			continue
		}
		edges = append(edges, [2]uint64{u, v})
	}
	return edges
}

// measureBench runs fn under testing.Benchmark and reports the per-op
// bracket alongside the raw result.
func measureBench(fn func(b *testing.B)) (testing.BenchmarkResult, Measured) {
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	return br, Measured{
		WallNs:     float64(br.NsPerOp()),
		Allocs:     float64(br.AllocsPerOp()),
		AllocBytes: float64(br.AllocedBytesPerOp()),
	}
}

// surveyCounters is the machine-independent face of a Result; two encode
// disciplines must agree on all of it.
func surveyCounters(res core.Result) [6]uint64 {
	return [6]uint64{
		res.Triangles, res.WedgeChecks,
		uint64(res.Push.Bytes), uint64(res.Push.Messages),
		uint64(res.Pull.Bytes), uint64(res.Pull.Messages),
	}
}

// HotPath is the "hotpath" experiment driver.
func HotPath(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "hotpath", Title: "Hot-path microbenchmarks (fixed: 600 vertices, ~4000 edge draws, 4 ranks)"}
	edges := hotEdgeList()
	extra := fmt.Sprintf("verts=%d draws=%d ranks=%d transport=%s", hotVerts, hotEdgeDraws, hotRanks, cfg.Transport)

	w, g := BuildUnit(cfg, hotRanks, edges)
	defer w.Close()
	wRef := ygm.MustWorld(hotRanks, ygm.Options{Transport: cfg.Transport, CopyEncode: true})
	defer wRef.Close()
	gRef := BuildUnitOn(wRef, edges)

	tb := stats.NewTable("(per survey run / per ingested batch)",
		"subject", "wall", "allocs/op", "bytes/op", "triangles")
	var wantTriangles uint64
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"pushonly", core.PushOnly}, {"pushpull", core.PushPull}} {
		s := core.NewSurvey(g, core.Options{Mode: mode.m}, nil)
		res := s.Run() // warm pools; capture counters
		sRef := core.NewSurvey(gRef, core.Options{Mode: mode.m}, nil)
		resRef := sRef.Run()
		if surveyCounters(res) != surveyCounters(resRef) {
			rep.notef("MISMATCH: %s zero-copy counters %v != copy-encode reference %v",
				mode.name, surveyCounters(res), surveyCounters(resRef))
		}
		if mode.name == "pushonly" {
			wantTriangles = res.Triangles
		} else if res.Triangles != wantTriangles {
			rep.notef("MISMATCH: pushpull triangles %d != pushonly %d", res.Triangles, wantTriangles)
		}

		br, m := measureBench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Run()
			}
		})
		rep.metricM("hotpath/"+mode.name+"/run", float64(br.NsPerOp()), "ns/op", extra, m)
		rep.metric("hotpath/"+mode.name+"/push_bytes", float64(res.Push.Bytes), "bytes", extra)
		rep.metric("hotpath/"+mode.name+"/push_msgs", float64(res.Push.Messages), "msgs", extra)
		rep.metric("hotpath/"+mode.name+"/wedge_checks", float64(res.WedgeChecks), "wedges", extra)
		tb.AddRow("survey "+mode.name, stats.FormatDuration(time.Duration(br.NsPerOp())),
			fmt.Sprintf("%d", br.AllocsPerOp()), stats.FormatBytes(br.AllocedBytesPerOp()),
			stats.FormatCount(res.Triangles))

		// The reference discipline rides along in the trajectory so the
		// zero-copy win stays visible (and a silent fallback to copying
		// would show as an alloc regression on the zero-copy rows, not
		// here).
		brRef, mRef := measureBench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sRef.Run()
			}
		})
		rep.metricM("hotpath/"+mode.name+"/run_copyencode", float64(brRef.NsPerOp()), "ns/op", extra, mRef)
		tb.AddRow("  copy-encode ref", stats.FormatDuration(time.Duration(brRef.NsPerOp())),
			fmt.Sprintf("%d", brRef.AllocsPerOp()), stats.FormatBytes(brRef.AllocedBytesPerOp()), "")
	}

	// Stream ingest: a temporal stream warmed with hotWarmBatch batches,
	// then one steady-state batch ingested per op (duplicate inserts take
	// the merge path — the serving regime).
	wS := ygm.MustWorld(hotRanks, ygm.Options{Transport: cfg.Transport})
	defer wS.Close()
	bld := graph.NewBuilder(wS, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{})
	var gS *graph.DODGr[serialize.Unit, uint64]
	wS.Parallel(func(r *ygm.Rank) {
		gg := bld.Build(r)
		if r.ID() == 0 {
			gS = gg
		}
	})
	var count uint64
	st, err := core.OpenStream(gS,
		core.StreamOptions[uint64]{Survey: core.Options{Mode: core.PushOnly}, MergeEdgeMeta: func(a, b uint64) uint64 {
			if a < b {
				return a
			}
			return b
		}},
		core.TemporalPlan(), core.StreamCountAnalysis[serialize.Unit, uint64]().Bind(&count))
	if err != nil {
		rep.notef("UNEXPECTED: OpenStream failed: %v", err)
		rep.Output = tb.Render()
		return rep
	}
	rng := rand.New(rand.NewSource(hotStreamSeed))
	mkBatch := func() []graph.Edge[uint64] {
		batch := make([]graph.Edge[uint64], 0, hotBatchEdges)
		for i := 0; i < hotBatchEdges; i++ {
			u, v := uint64(rng.Intn(400)), uint64(rng.Intn(400))
			batch = append(batch, graph.Edge[uint64]{U: u, V: v, Meta: uint64(i)})
		}
		return batch
	}
	for i := 0; i < hotWarmBatch; i++ {
		if _, err := st.Ingest(mkBatch()); err != nil {
			rep.notef("UNEXPECTED: warm ingest failed: %v", err)
			rep.Output = tb.Render()
			return rep
		}
	}
	batch := mkBatch()
	brI, mI := measureBench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := st.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.metricM("hotpath/stream/ingest", float64(brI.NsPerOp()), "ns/op",
		fmt.Sprintf("batch=%d warm=%d ranks=%d transport=%s", hotBatchEdges, hotWarmBatch, hotRanks, cfg.Transport), mI)
	tb.AddRow("stream ingest", stats.FormatDuration(time.Duration(brI.NsPerOp())),
		fmt.Sprintf("%d", brI.AllocsPerOp()), stats.FormatBytes(brI.AllocedBytesPerOp()),
		stats.FormatCount(st.Stats().Triangles))

	rep.Output = tb.Render()
	rep.notef("fixed-size driver: ignores -scale and -max-ranks by design (trajectory comparability)")
	return rep
}
