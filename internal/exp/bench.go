package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// The repo's benchmark trajectory: every PR runs cmd/tripoll-bench -json
// and commits a BENCH_<PR>.json so performance claims are diffable across
// the repo's history. The file is one BenchRecord in the shape of a single
// entry of benchmark-action/github-action-benchmark's data.js ("Go
// Benchmark" entries: commit, date, tool, benches), so the trajectory can
// be concatenated into that tooling unchanged.

// BenchCommit identifies the commit a benchmark record measures.
type BenchCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message,omitempty"`
	Timestamp string `json:"timestamp,omitempty"`
}

// BenchRecord is one benchmark trajectory point: every metric emitted by
// the experiment drivers of one tripoll-bench run.
type BenchRecord struct {
	Commit BenchCommit `json:"commit"`
	// Date is the run time in Unix milliseconds (gh-action-benchmark's
	// convention).
	Date int64 `json:"date"`
	// Tool is always "go".
	Tool    string   `json:"tool"`
	Benches []Metric `json:"benches"`
	// Env stamps the environment the record was measured in. A pointer so
	// trajectory files from before the stamp existed still parse.
	Env *BenchEnv `json:"env,omitempty"`
}

// NewBenchRecord collects the metrics of the given reports, in report
// order, into a trajectory point stamped with the current environment.
func NewBenchRecord(commit BenchCommit, dateMillis int64, reports []*Report) BenchRecord {
	env := CurrentBenchEnv()
	rec := BenchRecord{Commit: commit, Date: dateMillis, Tool: "go", Env: &env}
	for _, rep := range reports {
		rec.Benches = append(rec.Benches, rep.Metrics...)
	}
	return rec
}

// WriteBenchFile writes the record as indented JSON to path.
func WriteBenchFile(path string, rec BenchRecord) error {
	raw, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	return os.WriteFile(path, raw, 0o644)
}

// ReadBenchFile parses a trajectory point back, validating the schema
// invariants future tooling depends on: tool is "go", every bench has a
// name, a unit and a finite value.
func ReadBenchFile(path string) (BenchRecord, error) {
	var rec BenchRecord
	raw, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		return rec, fmt.Errorf("exp: %s is not a bench record: %w", path, err)
	}
	if err := rec.Validate(); err != nil {
		return rec, fmt.Errorf("exp: %s: %w", path, err)
	}
	return rec, nil
}

// Validate checks the schema invariants of a trajectory point.
func (rec *BenchRecord) Validate() error {
	if rec.Tool != "go" {
		return fmt.Errorf("tool = %q, want \"go\"", rec.Tool)
	}
	if rec.Commit.ID == "" {
		return fmt.Errorf("missing commit.id")
	}
	if rec.Date <= 0 {
		return fmt.Errorf("missing date")
	}
	if len(rec.Benches) == 0 {
		return fmt.Errorf("no benches")
	}
	seen := map[string]bool{}
	for i, b := range rec.Benches {
		if b.Name == "" {
			return fmt.Errorf("bench %d: empty name", i)
		}
		if b.Unit == "" {
			return fmt.Errorf("bench %q: empty unit", b.Name)
		}
		if math.IsNaN(b.Value) || math.IsInf(b.Value, 0) || b.Value < 0 {
			return fmt.Errorf("bench %q: bad value %v", b.Name, b.Value)
		}
		for _, f := range [...]struct {
			name string
			v    float64
		}{{"wall_ns", b.WallNs}, {"allocs", b.Allocs}, {"alloc_bytes", b.AllocBytes}} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
				return fmt.Errorf("bench %q: bad %s %v", b.Name, f.name, f.v)
			}
		}
		if seen[b.Name] {
			return fmt.Errorf("bench %q: duplicate name", b.Name)
		}
		seen[b.Name] = true
	}
	if rec.Env != nil {
		if rec.Env.GoVersion == "" || rec.Env.GOOS == "" || rec.Env.GOARCH == "" {
			return fmt.Errorf("env: missing go_version/goos/goarch")
		}
		if rec.Env.NumCPU <= 0 || rec.Env.GOMAXPROCS <= 0 {
			return fmt.Errorf("env: bad cpu counts %d/%d", rec.Env.NumCPU, rec.Env.GOMAXPROCS)
		}
	}
	return nil
}
