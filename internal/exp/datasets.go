package exp

import (
	"math"

	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/rmat"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Dataset is a named stand-in for one of the paper's real graphs (Tab. 1).
type Dataset struct {
	// Name is the stand-in's name; Analog names the paper dataset whose
	// regime it substitutes (documented in DESIGN.md §2).
	Name   string
	Analog string
	Edges  [][2]uint64
}

// Datasets builds the four topology-only stand-ins used by the counting
// experiments (Fig. 4, Tab. 2, Tab. 4), smallest first as in Tab. 1.
func Datasets(cfg Config) []Dataset {
	cfg = cfg.withDefaults()
	// R-MAT scale shifts with the global size multiplier.
	shift := 0
	if cfg.Scale > 0 {
		shift = int(math.Round(math.Log2(cfg.Scale)))
	}
	clampScale := func(s int) int {
		if s < 7 {
			return 7
		}
		if s > 24 {
			return 24
		}
		return s
	}
	lj := gen.BarabasiAlbert(uint64(cfg.scaled(24_000, 500)), 8, 101)
	frP := rmat.Params{Scale: clampScale(13 + shift), Seed: 102, Scramble: true}
	fr := make([][2]uint64, 0, frP.NumEdges())
	frP.Generate(0, frP.NumEdges(), func(u, v uint64) { fr = append(fr, [2]uint64{u, v}) })
	// Twitter-like: more skew (larger A) → a few extreme hubs.
	twP := rmat.Params{Scale: clampScale(13 + shift), A: 0.65, B: 0.15, C: 0.15, D: 0.05, Seed: 103, Scramble: true}
	tw := make([][2]uint64, 0, twP.NumEdges())
	twP.Generate(0, twP.NumEdges(), func(u, v uint64) { tw = append(tw, [2]uint64{u, v}) })
	whp := gen.DefaultWebHostParams()
	whp.Pages = uint64(cfg.scaled(30_000, 600))
	whp.IntraEdges = cfg.scaled(120_000, 2_000)
	whp.InterEdges = cfg.scaled(200_000, 3_000)
	wh := gen.WebHostLike(whp)
	return []Dataset{
		{Name: "ba-social", Analog: "LiveJournal [8]", Edges: lj},
		{Name: "rmat-social", Analog: "Friendster [53]", Edges: fr},
		{Name: "rmat-skewed", Analog: "Twitter [33]", Edges: tw},
		{Name: "webhost", Analog: "Web Data Commons 2012 [3]", Edges: wh.Edges},
	}
}

// BuildUnit constructs a metadata-free DODGr (boolean-style dummy metadata
// replaced by the zero-byte Unit — §5.3) over nranks ranks.
func BuildUnit(cfg Config, nranks int, edges [][2]uint64) (*ygm.World, *graph.DODGr[serialize.Unit, serialize.Unit]) {
	w := ygm.MustWorld(nranks, ygm.Options{Transport: cfg.Transport})
	return w, BuildUnitOn(w, edges)
}

// BuildUnitOn is BuildUnit over a caller-configured world (used by the
// buffer-size ablation, which tunes ygm.Options itself).
func BuildUnitOn(w *ygm.World, edges [][2]uint64) *graph.DODGr[serialize.Unit, serialize.Unit] {
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[serialize.Unit, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(edges); i += r.Size() {
			b.AddEdge(r, edges[i][0], edges[i][1], serialize.Unit{})
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return g
}

// BuildTemporal constructs a DODGr with timestamp edge metadata, merging
// multi-edges keep-chronologically-first (§5.2's Reddit reduction).
func BuildTemporal(cfg Config, nranks int, edges []graph.TemporalEdge) (*ygm.World, *graph.DODGr[serialize.Unit, uint64]) {
	w := ygm.MustWorld(nranks, ygm.Options{Transport: cfg.Transport})
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(edges); i += r.Size() {
			b.AddEdge(r, edges[i].U, edges[i].V, edges[i].Time)
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

// BuildFQDN constructs the §5.8 configuration: FQDN strings as vertex
// metadata, no edge metadata.
func BuildFQDN(cfg Config, nranks int, wh *gen.WebHost) (*ygm.World, *graph.DODGr[string, serialize.Unit]) {
	w := ygm.MustWorld(nranks, ygm.Options{Transport: cfg.Transport})
	b := graph.NewBuilder(w, serialize.StringCodec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[string, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(wh.Edges); i += r.Size() {
			b.AddEdge(r, wh.Edges[i][0], wh.Edges[i][1], serialize.Unit{})
		}
		for v := r.ID(); v < len(wh.FQDN); v += r.Size() {
			b.SetVertexMeta(r, uint64(v), wh.FQDN[v])
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

// BuildDegreeMeta constructs the §5.9 configuration: each vertex's degree
// attached as its metadata (replacing the dummy metadata).
func BuildDegreeMeta(cfg Config, nranks int, edges [][2]uint64) (*ygm.World, *graph.DODGr[uint64, serialize.Unit]) {
	// Degrees of the deduplicated simple graph, computed identically on
	// every rank from the shared edge list.
	deg := map[uint64]uint32{}
	seen := map[[2]uint64]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]uint64{u, v}] {
			seen[[2]uint64{u, v}] = true
			deg[u]++
			deg[v]++
		}
	}
	w := ygm.MustWorld(nranks, ygm.Options{Transport: cfg.Transport})
	b := graph.NewBuilder(w, serialize.Uint64Codec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[uint64, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(edges); i += r.Size() {
			b.AddEdge(r, edges[i][0], edges[i][1], serialize.Unit{})
		}
		for v, d := range deg {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, uint64(d))
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

// BuildRMATRanged constructs a DODGr from an R-MAT stream with each rank
// generating only its own slice — the distributed generation weak-scaling
// experiments rely on.
func BuildRMATRanged(cfg Config, nranks int, p rmat.Params) (*ygm.World, *graph.DODGr[serialize.Unit, serialize.Unit]) {
	w := ygm.MustWorld(nranks, ygm.Options{Transport: cfg.Transport})
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[serialize.Unit, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		start, end := p.RankRange(r.ID(), r.Size())
		p.Generate(start, end, func(u, v uint64) {
			b.AddEdge(r, u, v, serialize.Unit{})
		})
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}
