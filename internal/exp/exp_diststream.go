package exp

import (
	"context"
	"fmt"
	"os"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/dist"
	"tripoll/internal/engine"
	"tripoll/internal/gen"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// AblationDistStream measures the broadcast mutation seam (DESIGN.md §14):
// the same durable mutation script — seed build, interleaved edge-batch
// ingests and watermark advances, all WAL-logged — run on one process and
// on a process-spanning world where every mutation is broadcast to worker
// processes, collectively applied, and two-phase committed. Both worlds
// are then killed and recovered from their logs (the multi-process
// recovery re-broadcasts every record). Analyses must agree at the final
// epoch and across the kill, both per process count and between counts —
// the PR 9 acceptance property, here with the cost attached: what one
// logged mutation and one log replay cost when the group spans processes.
func AblationDistStream(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "diststream", Title: "Ablation: broadcast mutations on a durable stream (1 vs N processes)"}

	ranks := cfg.MaxRanks
	if ranks < 2 {
		ranks = 2
	}
	procSweep := []int{1, 2}

	edges := gen.RedditLike(redditParams(cfg))
	var maxT uint64
	for _, e := range edges {
		if e.Time > maxT {
			maxT = e.Time
		}
	}
	// Two thirds of the trace seeds the graph; the rest arrives as four
	// logged ingest batches with a watermark advance after each pair.
	seedN := len(edges) * 2 / 3
	seed, live := edges[:seedN], edges[seedN:]
	var script []streamStep
	for i := 0; i < 4; i++ {
		lo, hi := i*len(live)/4, (i+1)*len(live)/4
		batch := make([]graph.Edge[uint64], 0, hi-lo)
		for _, e := range live[lo:hi] {
			batch = append(batch, graph.Edge[uint64]{U: e.U, V: e.V, Meta: e.Time})
		}
		script = append(script, streamStep{batch: batch})
		if i%2 == 1 {
			script = append(script, streamStep{cutoff: maxT * uint64(i+1) / 8})
		}
	}
	specs := []engine.Spec{
		{Graph: "g", Analysis: "count"},
		{Graph: "g", Analysis: "closure", Delta: engine.Uint64(maxT/2 + 1)},
		{Graph: "g", Analysis: "cc"},
	}

	table := stats.NewTable(
		fmt.Sprintf("(reddit-like trace, %d total ranks, %d logged mutations, kill-and-recover; procs=1 is the baseline)", ranks, len(script)),
		"processes", "ranks/proc", "seed build", "mutations", "recover", "wal records", "rebroadcasts")
	var baseVals []string
	for _, procs := range procSweep {
		vals, m, err := distStreamRun(cfg, procs, ranks, seed, script, specs)
		if err != nil {
			rep.notef("UNEXPECTED: %d-process run failed: %v", procs, err)
			continue
		}
		if procs == procSweep[0] {
			baseVals = vals
		} else {
			for i := range vals {
				if vals[i] != baseVals[i] {
					rep.notef("VALUE MISMATCH at %d processes: %q diverged from the 1-process run after recovery", procs, specs[i].Analysis)
				}
			}
		}
		table.AddRow(fmt.Sprintf("%d", procs), fmt.Sprintf("%d", ranks/procs),
			stats.FormatDuration(m.buildWall), stats.FormatDuration(m.mutateWall), stats.FormatDuration(m.recoverWall),
			fmt.Sprintf("%d", m.walRecords), fmt.Sprintf("%d", m.rebroadcasts))
		rep.metric(fmt.Sprintf("diststream/%dproc/mutate_ns", procs), float64(m.mutateWall.Nanoseconds()), "ns/op",
			fmt.Sprintf("ranks=%d procs=%d steps=%d", ranks, procs, len(script)))
		rep.metric(fmt.Sprintf("diststream/%dproc/recover_ns", procs), float64(m.recoverWall.Nanoseconds()), "ns/op",
			fmt.Sprintf("ranks=%d procs=%d", ranks, procs))
		rep.metric(fmt.Sprintf("diststream/%dproc/wal_records", procs), float64(m.walRecords), "records",
			"mutation log length — deterministic per commit")
		rep.metric(fmt.Sprintf("diststream/%dproc/replay_rebroadcasts", procs), float64(m.rebroadcasts), "records",
			"recovery re-broadcasts to worker processes (0 when procs=1)")
	}
	rep.Output = table.Render()
	rep.notef("analyses are checked identical across process counts AND across the kill-and-recover (canonical JSON at the final epoch)")
	rep.notef("expected shape: identical WAL records (the log cannot see the process boundary); multi-process mutation wall adds one broadcast + one ack round per record; recovery re-broadcasts the whole tail")
	return rep
}

// streamStep is one scripted durable mutation: an ingest (batch non-nil)
// or a watermark advance.
type streamStep struct {
	batch  []graph.Edge[uint64]
	cutoff uint64
}

type distStreamMeasure struct {
	buildWall    time.Duration
	mutateWall   time.Duration
	recoverWall  time.Duration
	walRecords   uint64
	rebroadcasts uint64
}

// distStreamIncarnation is one process group serving a durable stream: a
// world (possibly process-spanning), its engine, and the teardown.
type distStreamIncarnation struct {
	e     *engine.Engine[serialize.Unit, uint64]
	close func()
}

func distStreamRun(cfg Config, procs, ranks int, seed []graph.TemporalEdge, script []streamStep, specs []engine.Spec) ([]string, distStreamMeasure, error) {
	var m distStreamMeasure
	dir, err := os.MkdirTemp("", "tripoll-diststream-*")
	if err != nil {
		return nil, m, err
	}
	defer os.RemoveAll(dir)

	inc, buildWall, err := startDistStream(cfg, procs, ranks, seed, dir)
	if err != nil {
		return nil, m, err
	}
	m.buildWall = buildWall

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	start := time.Now()
	for _, st := range script {
		if st.batch != nil {
			_, err = inc.e.Ingest(ctx, "g", st.batch)
		} else {
			_, err = inc.e.Advance(ctx, "g", st.cutoff)
		}
		if err != nil {
			inc.close()
			return nil, m, fmt.Errorf("mutation: %w", err)
		}
	}
	m.mutateWall = time.Since(start)
	if st, ok := inc.e.DurableStatus("g"); ok {
		m.walRecords = st.WAL.Records
	}
	before, err := distStreamValues(ctx, inc.e, specs)
	if err != nil {
		inc.close()
		return nil, m, err
	}

	// Kill the whole incarnation — worker streams are memory-only, so from
	// their side this is a crash at a record boundary — and recover a fresh
	// group from the log alone.
	inc.close()
	start = time.Now()
	inc, _, err = startDistStream(cfg, procs, ranks, seed, dir)
	if err != nil {
		return nil, m, fmt.Errorf("recover: %w", err)
	}
	m.recoverWall = time.Since(start)
	defer inc.close()
	if st, ok := inc.e.DurableStatus("g"); ok {
		m.rebroadcasts = st.ReplayRebroadcasts
	}
	after, err := distStreamValues(ctx, inc.e, specs)
	if err != nil {
		return nil, m, err
	}
	for i := range after {
		if after[i] != before[i] {
			return nil, m, fmt.Errorf("recovery changed %q: %s -> %s", specs[i].Analysis, before[i], after[i])
		}
	}
	return after, m, nil
}

// startDistStream assembles one incarnation: a procs-process world of
// ranks total ranks, the collective seed build, and a durable stream
// rooted at dir (replaying, and for procs>1 re-broadcasting, whatever
// history dir already holds).
func startDistStream(cfg Config, procs, ranks int, seed []graph.TemporalEdge, dir string) (*distStreamIncarnation, time.Duration, error) {
	timeOf := func(ts uint64) uint64 { return ts }
	sopts := core.StreamOptions[uint64]{MergeEdgeMeta: minU64}
	wopts := ygm.Options{Transport: ygm.TransportTCP, ListenAddr: "127.0.0.1:0"}
	if procs == 1 {
		w := ygm.MustWorld(ranks, wopts)
		start := time.Now()
		g := buildTemporalSpan(w, seed)
		buildWall := time.Since(start)
		e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{Timestamps: timeOf})
		if _, _, err := e.OpenDurableStream("g", g, sopts, core.TemporalPlan(),
			engine.DurableOptions{Dir: dir, Policy: "temporal"}); err != nil {
			e.Close()
			w.Close()
			return nil, 0, err
		}
		return &distStreamIncarnation{e: e, close: func() { e.Close(); w.Close() }}, buildWall, nil
	}

	co, err := dist.Listen(dist.Config{Procs: procs, RanksPerProc: ranks / procs, Opts: wopts})
	if err != nil {
		return nil, 0, err
	}
	workers, err := dist.SelfLaunch(co.Addr(), procs-1)
	if err != nil {
		co.Close()
		return nil, 0, err
	}
	cl, err := co.Accept()
	if err != nil {
		dist.KillAll(workers)
		return nil, 0, err
	}
	teardown := func() {
		cl.Close()
		dist.StopAll(workers, 10*time.Second)
	}
	if err := cl.Build("g", dist.BuildSpec{Policy: "temporal"}); err != nil {
		teardown()
		return nil, 0, err
	}
	start := time.Now()
	g := buildTemporalSpan(cl.World(), seed)
	buildWall := time.Since(start)
	e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: timeOf,
		Fanout:     cl,
		Mutator:    cl,
	})
	if _, _, err := e.OpenDurableStream("g", g, sopts, core.TemporalPlan(),
		engine.DurableOptions{Dir: dir, Policy: "temporal"}); err != nil {
		e.Close()
		teardown()
		return nil, 0, err
	}
	return &distStreamIncarnation{e: e, close: func() { e.Close(); teardown() }}, buildWall, nil
}

// distStreamValues answers the spec list through the engine (so the
// traversal takes the same fan-out path tripolld serves) and renders each
// value canonically.
func distStreamValues(ctx context.Context, e *engine.Engine[serialize.Unit, uint64], specs []engine.Spec) ([]string, error) {
	jobs, err := e.SubmitAll(ctx, specs...)
	if err != nil {
		return nil, err
	}
	vals := make([]any, len(jobs))
	for i, j := range jobs {
		qr, err := j.Wait(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", specs[i].Analysis, err)
		}
		vals[i] = qr.Value
	}
	return canonicalValues(vals), nil
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
