package exp

import (
	"fmt"
	"reflect"
	"sort"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/ygm"
)

// AblationStream measures what incremental survey maintenance saves: each
// temporal dataset is replayed as a chronological stream of batches over a
// sliding window, and three invertible analyses (count, closure times,
// per-vertex counts) are kept current two ways — incrementally, via the
// stream's delta-scoped traversal (DESIGN.md §9), and by rebuilding the
// window snapshot and re-running a full fused survey after every batch
// (the only option before the Stream subsystem existed). The driver
// reports transport messages, bytes and wall time for both strategies and
// self-verifies that (a) every per-analysis result is identical after
// every batch, (b) the incremental path never fell back to an epoch
// rebuild on this chronological input, and (c) it moved strictly fewer
// messages and bytes in total, on every dataset and in both algorithms.
func AblationStream(cfg Config) *Report {
	cfg = cfg.withDefaults()
	rep := &Report{ID: "stream", Title: "Ablation: incremental stream maintenance vs per-batch full recompute"}
	n := cfg.MaxRanks
	if n < 2 {
		n = 2
	}
	const batches = 8
	tb := stats.NewTable(fmt.Sprintf("(%d ranks, %d chronological batches, window = horizon/2; analyses: count, closure, vertexcounts)", n, batches),
		"Graph", "mode", "strategy", "messages", "bytes", "maintenance")

	minMerge := func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}

	for _, d := range TemporalDatasets(cfg) {
		window := d.Horizon / 2
		edges := make([]graph.TemporalEdge, len(d.Edges))
		copy(edges, d.Edges)
		sort.SliceStable(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })

		for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
			opts := core.Options{Mode: mode}
			type outcome struct {
				msgs  int64
				bytes int64
				dur   time.Duration
				m     Measured
			}
			type answers struct {
				count uint64
				verts map[uint64]uint64
				joint *stats.Joint2D
			}

			// Incremental: one stream over an empty seed, fed batch by batch.
			wInc, seedG := BuildTemporal(cfg, n, nil)
			var inc outcome
			var incAns answers
			plan := core.TemporalPlan()
			s, err := core.OpenStream(seedG, core.StreamOptions[uint64]{Survey: opts, MergeEdgeMeta: minMerge}, plan,
				core.StreamCountAnalysis[serialize.Unit, uint64]().Bind(&incAns.count),
				core.StreamClosureTimeAnalysis[serialize.Unit]().Bind(&incAns.joint),
				core.StreamVertexCountAnalysis[serialize.Unit, uint64]().Bind(&incAns.verts))
			if err != nil {
				panic("stream ablation: " + err.Error())
			}

			// Full recompute baseline: the live window tracked explicitly, a
			// fresh build + fused run per batch on its own world.
			wFull := ygm.MustWorld(n, ygm.Options{Transport: cfg.Transport})
			live := map[[2]uint64]uint64{}
			var full outcome

			rebuilt := false
			mismatched := ""
			cutoff := uint64(0)
			for b := 0; b < batches; b++ {
				lo, hi := b*len(edges)/batches, (b+1)*len(edges)/batches
				if lo >= hi {
					continue
				}
				// Slide the window: retire everything more than `window`
				// behind this batch's first event.
				if start := edges[lo].Time; b > 0 && start > window && start-window > cutoff {
					cutoff = start - window
					advSpan := BeginMeasure()
					ares, err := s.Advance(cutoff)
					if err != nil {
						panic("stream ablation: advance: " + err.Error())
					}
					inc.m = inc.m.Add(advSpan.End())
					inc.msgs += streamMsgs(ares)
					inc.bytes += streamBytes(ares)
					inc.dur += ares.Total
					rebuilt = rebuilt || ares.Rebuilt
					for k, t := range live {
						if t < cutoff {
							delete(live, k)
						}
					}
				}
				batch := make([]graph.Edge[uint64], 0, hi-lo)
				for _, e := range edges[lo:hi] {
					batch = append(batch, graph.Edge[uint64]{U: e.U, V: e.V, Meta: e.Time})
					u, v := e.U, e.V
					if u == v {
						continue
					}
					if u > v {
						u, v = v, u
					}
					k := [2]uint64{u, v}
					if old, ok := live[k]; ok {
						live[k] = minMerge(old, e.Time)
					} else {
						live[k] = e.Time
					}
				}
				ingSpan := BeginMeasure()
				res, err := s.Ingest(batch)
				if err != nil {
					panic("stream ablation: ingest: " + err.Error())
				}
				inc.m = inc.m.Add(ingSpan.End())
				inc.msgs += streamMsgs(res)
				inc.bytes += streamBytes(res)
				inc.dur += res.Total
				rebuilt = rebuilt || res.Rebuilt
				s.Snapshot()

				// Full recompute of the same window state.
				keys := make([][2]uint64, 0, len(live))
				for k := range live {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool {
					if keys[i][0] != keys[j][0] {
						return keys[i][0] < keys[j][0]
					}
					return keys[i][1] < keys[j][1]
				})
				t0 := time.Now()
				fullSpan := BeginMeasure()
				wFull.ResetStats()
				bld := graph.NewBuilder(wFull, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{MergeEdgeMeta: minMerge})
				var gFull *graph.DODGr[serialize.Unit, uint64]
				wFull.Parallel(func(r *ygm.Rank) {
					for i := r.ID(); i < len(keys); i += r.Size() {
						bld.AddEdge(r, keys[i][0], keys[i][1], live[keys[i]])
					}
					gg := bld.Build(r)
					if r.ID() == 0 {
						gFull = gg
					}
				})
				buildStats := wFull.Stats()
				var fullAns answers
				fres, err := core.Run(gFull, opts, plan,
					core.StreamCountAnalysis[serialize.Unit, uint64]().Analysis.Bind(&fullAns.count),
					core.StreamClosureTimeAnalysis[serialize.Unit]().Analysis.Bind(&fullAns.joint),
					core.StreamVertexCountAnalysis[serialize.Unit, uint64]().Analysis.Bind(&fullAns.verts))
				if err != nil {
					panic("stream ablation: full run: " + err.Error())
				}
				full.m = full.m.Add(fullSpan.End())
				full.msgs += buildStats.MessagesSent + msgsOf(fres)
				full.bytes += buildStats.BytesSent + bytesOf(fres)
				full.dur += time.Since(t0)

				if mismatched == "" &&
					(incAns.count != fullAns.count ||
						!reflect.DeepEqual(incAns.verts, fullAns.verts) ||
						!reflect.DeepEqual(incAns.joint, fullAns.joint) ||
						s.Triangles() != fres.Triangles) {
					mismatched = fmt.Sprintf("batch %d", b)
				}
			}

			for _, o := range []struct {
				strat string
				oc    *outcome
			}{{"full", &full}, {"incremental", &inc}} {
				tb.AddRow(d.Name, mode.String(), o.strat,
					stats.FormatCount(uint64(o.oc.msgs)),
					stats.FormatBytes(o.oc.bytes),
					stats.FormatDuration(o.oc.dur))
				prefix := fmt.Sprintf("stream/%s/%s/%s", d.Name, mode.String(), o.strat)
				extra := fmt.Sprintf("dataset=%s ranks=%d mode=%s batches=%d window=%d",
					d.Name, n, mode.String(), batches, window)
				rep.metric(prefix+"/messages", float64(o.oc.msgs), "msgs", extra)
				rep.metric(prefix+"/bytes", float64(o.oc.bytes), "bytes", extra)
				rep.metricM(prefix+"/maintenance_ns", float64(o.oc.dur.Nanoseconds()), "ns/op", extra, o.oc.m)
			}
			switch {
			case mismatched != "":
				rep.notef("RESULT MISMATCH on %s/%s (%s): incremental analyses disagree with the full recompute",
					d.Name, mode, mismatched)
			case rebuilt:
				rep.notef("UNEXPECTED: incremental path fell back to an epoch rebuild on chronological input (%s/%s)",
					d.Name, mode)
			case inc.msgs >= full.msgs || inc.bytes >= full.bytes:
				rep.notef("UNEXPECTED: incremental maintenance did not strictly reduce traffic on %s/%s: %d→%d msgs, %d→%d bytes",
					d.Name, mode, full.msgs, inc.msgs, full.bytes, inc.bytes)
			default:
				rep.notef("%s/%s: messages %s→%s (−%.1f%%), bytes %s→%s (−%.1f%%) across %d batches",
					d.Name, mode,
					stats.FormatCount(uint64(full.msgs)), stats.FormatCount(uint64(inc.msgs)),
					100*(1-float64(inc.msgs)/float64(full.msgs)),
					stats.FormatBytes(full.bytes), stats.FormatBytes(inc.bytes),
					100*(1-float64(inc.bytes)/float64(full.bytes)),
					batches)
			}
			wFull.Close()
			wInc.Close()
		}
	}
	rep.Output = tb.Render()
	rep.notef("each batch's delta traversal completes only the wedges its changed edges open or close (|N(u)∩N(v)| work per edge), while the baseline rebuilds and re-surveys the whole window; identical per-batch results are the stream ≡ rebuild property, also property-tested in internal/core")
	return rep
}

// streamMsgs/streamBytes total a stream batch's traffic across the
// structural mutation phase and the delta traversal.
func streamMsgs(res core.Result) int64 {
	return res.Mutate.Messages + msgsOf(res)
}

func streamBytes(res core.Result) int64 {
	return res.Mutate.Bytes + bytesOf(res)
}
