package exp

import (
	"fmt"
	"strings"
)

// Trajectory comparison: the CI bench gate diffs a fresh BenchRecord
// against the committed one and fails on regressions. Two tolerance
// classes exist because the two kinds of numbers travel differently:
//
//   - wall-clock (ns units, wall_ns fields) is machine-dependent and
//     noisy, so it gets a wide ratio plus an absolute noise floor, and
//     can be skipped entirely for cross-machine comparisons;
//   - allocator traffic and work counters (allocs, bytes, messages,
//     wedge checks) are deterministic per commit, so they get tight
//     ratios — these are what a cross-machine gate actually enforces.
//
// Improvements always pass: the gate is one-sided.

// CompareOptions tunes the regression thresholds. Zero values select the
// defaults documented on each field.
type CompareOptions struct {
	// WallRatio is the allowed new/old ratio for wall-clock numbers
	// (metric values in ns units and wall_ns brackets). Default 1.5.
	WallRatio float64
	// WallFloorNs is an absolute noise floor: wall regressions under this
	// many ns are ignored regardless of ratio. Default 100_000 (0.1 ms).
	WallFloorNs float64
	// AllocRatio is the allowed ratio for allocs/alloc_bytes brackets.
	// Default 1.10.
	AllocRatio float64
	// AllocSlack/ByteSlack are absolute headroom on the alloc brackets so
	// near-zero baselines don't fail on scheduler jitter. Defaults 16
	// allocs and 4096 bytes.
	AllocSlack float64
	ByteSlack  float64
	// CountRatio is the allowed ratio for non-time metric values
	// (messages, bytes on the wire, wedge checks). Default 1.05.
	CountRatio float64
	// SkipWall drops all wall-clock checks — the cross-machine mode.
	SkipWall bool
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.WallRatio == 0 {
		o.WallRatio = 1.5
	}
	if o.WallFloorNs == 0 {
		o.WallFloorNs = 100_000
	}
	if o.AllocRatio == 0 {
		o.AllocRatio = 1.10
	}
	if o.AllocSlack == 0 {
		o.AllocSlack = 16
	}
	if o.ByteSlack == 0 {
		o.ByteSlack = 4096
	}
	if o.CountRatio == 0 {
		o.CountRatio = 1.05
	}
	return o
}

// Regression is one failed comparison.
type Regression struct {
	// Name is the metric name; Field is which number regressed: "value",
	// "wall_ns", "allocs", "alloc_bytes", or "missing" when the metric
	// disappeared from the new record.
	Name  string
	Field string
	Old   float64
	New   float64
	// Limit is the largest New that would have passed.
	Limit float64
}

func (r Regression) String() string {
	if r.Field == "missing" {
		return fmt.Sprintf("%s: present in old record, missing from new", r.Name)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g exceeds limit %.4g (%+.1f%%)",
		r.Name, r.Field, r.Old, r.New, r.Limit, 100*(r.New-r.Old)/max(r.Old, 1))
}

// CompareRecords diffs newRec against oldRec and returns every regression.
// Metrics only present in the new record pass (new instrumentation is not
// a regression); metrics that disappeared fail, so a driver silently
// dropping coverage is caught.
func CompareRecords(oldRec, newRec BenchRecord, opts CompareOptions) []Regression {
	opts = opts.withDefaults()
	byName := make(map[string]Metric, len(newRec.Benches))
	for _, b := range newRec.Benches {
		byName[b.Name] = b
	}
	var regs []Regression
	for _, ob := range oldRec.Benches {
		nb, ok := byName[ob.Name]
		if !ok {
			regs = append(regs, Regression{Name: ob.Name, Field: "missing", Old: ob.Value})
			continue
		}
		if isWallUnit(ob.Unit) {
			regs = appendWall(regs, ob.Name, "value", ob.Value, nb.Value, opts)
		} else if lim := ob.Value * opts.CountRatio; nb.Value > lim {
			regs = append(regs, Regression{Name: ob.Name, Field: "value", Old: ob.Value, New: nb.Value, Limit: lim})
		}
		regs = appendWall(regs, ob.Name, "wall_ns", ob.WallNs, nb.WallNs, opts)
		allocRatio, skipAllocs := opts.AllocRatio, false
		if strings.HasSuffix(ob.Name, "/wall_ns") {
			// The "<id>/wall_ns" roll-ups cmd/tripoll-bench stamps around a
			// whole experiment carry a process-wide bracket: one-time setup
			// plus GC-timing-dependent pool recycling, which swings ~1.3x
			// between otherwise identical sessions. Those brackets are
			// wall-grade, not deterministic; only per-op driver brackets get
			// the tight ratio.
			allocRatio, skipAllocs = opts.WallRatio, opts.SkipWall
		}
		if !skipAllocs {
			if lim := ob.Allocs*allocRatio + opts.AllocSlack; nb.Allocs > lim {
				regs = append(regs, Regression{Name: ob.Name, Field: "allocs", Old: ob.Allocs, New: nb.Allocs, Limit: lim})
			}
			if lim := ob.AllocBytes*allocRatio + opts.ByteSlack; nb.AllocBytes > lim {
				regs = append(regs, Regression{Name: ob.Name, Field: "alloc_bytes", Old: ob.AllocBytes, New: nb.AllocBytes, Limit: lim})
			}
		}
	}
	return regs
}

func appendWall(regs []Regression, name, field string, old, new float64, opts CompareOptions) []Regression {
	if opts.SkipWall || old == 0 {
		return regs
	}
	lim := old*opts.WallRatio + opts.WallFloorNs
	if new > lim {
		regs = append(regs, Regression{Name: name, Field: field, Old: old, New: new, Limit: lim})
	}
	return regs
}

// isWallUnit reports whether a metric value is a wall-clock time ("ns/op",
// "ns", "ms") rather than a deterministic counter.
func isWallUnit(unit string) bool {
	return strings.HasPrefix(unit, "ns") || strings.HasPrefix(unit, "ms")
}
