// Package rmat implements the recursive-matrix (R-MAT) generator of
// Chakrabarti et al. [13], the synthetic scale-free workload the paper's
// weak-scaling experiments use (§5.5: "a scale 24 R-MAT per compute node").
//
// Generation is embarrassingly parallel and deterministic: every edge index
// seeds its own tiny PRNG, so any rank can generate any contiguous slice of
// the edge stream without coordination — the property distributed weak
// scaling needs.
package rmat

import (
	"fmt"

	"tripoll/internal/graph"
)

// Params configures a generator.
type Params struct {
	// Scale gives |V| = 2^Scale.
	Scale int
	// EdgeFactor gives |E| = EdgeFactor · |V| generated edges (before any
	// deduplication downstream). Zero selects the Graph500 default of 16.
	EdgeFactor int
	// A, B, C, D are the recursive quadrant probabilities. Zeros select
	// the Graph500 defaults (0.57, 0.19, 0.19, 0.05).
	A, B, C, D float64
	// Seed makes the stream reproducible.
	Seed int64
	// Scramble applies a hash permutation to vertex ids, destroying the
	// locality-by-id artifact of the recursive construction (Graph500's
	// vertex scrambling).
	Scramble bool
}

func (p Params) withDefaults() Params {
	if p.EdgeFactor == 0 {
		p.EdgeFactor = 16
	}
	if p.A == 0 && p.B == 0 && p.C == 0 && p.D == 0 {
		p.A, p.B, p.C, p.D = 0.57, 0.19, 0.19, 0.05
	}
	return p
}

// Validate checks the parameters.
func (p Params) Validate() error {
	p = p.withDefaults()
	if p.Scale < 1 || p.Scale > 40 {
		return fmt.Errorf("rmat: scale %d out of range [1, 40]", p.Scale)
	}
	if p.EdgeFactor < 1 {
		return fmt.Errorf("rmat: edge factor %d < 1", p.EdgeFactor)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("rmat: quadrant probabilities sum to %v, want 1", sum)
	}
	return nil
}

// NumVertices returns 2^Scale.
func (p Params) NumVertices() uint64 { return 1 << uint(p.Scale) }

// NumEdges returns the number of generated edges.
func (p Params) NumEdges() uint64 {
	return p.withDefaults().NumVertices() * uint64(p.withDefaults().EdgeFactor)
}

// xorshift128+ is the per-edge PRNG; 2·Scale draws per edge keeps state
// tiny and seeding cheap.
type xorshift struct{ s0, s1 uint64 }

func newXorshift(seed uint64) xorshift {
	// Two rounds of splitmix64 expansion; avoid the all-zero state.
	a := graph.Mix64(seed)
	b := graph.Mix64(seed ^ 0x9e3779b97f4a7c15)
	if a == 0 && b == 0 {
		a = 1
	}
	return xorshift{s0: a, s1: b}
}

func (x *xorshift) next() uint64 {
	a, b := x.s0, x.s1
	x.s0 = b
	a ^= a << 23
	a ^= a >> 17
	a ^= b ^ (b >> 26)
	x.s1 = a
	return a + b
}

// float64 in [0, 1).
func (x *xorshift) float() float64 {
	return float64(x.next()>>11) / float64(1<<53)
}

// Edge returns the i-th edge of the stream — identical no matter which
// rank asks.
func (p Params) Edge(i uint64) (u, v uint64) {
	q := p.withDefaults()
	rng := newXorshift(uint64(q.Seed) ^ graph.Mix64(i+0x5851f42d4c957f2d))
	for level := 0; level < q.Scale; level++ {
		r := rng.float()
		u <<= 1
		v <<= 1
		switch {
		case r < q.A:
			// top-left: neither bit set
		case r < q.A+q.B:
			v |= 1
		case r < q.A+q.B+q.C:
			u |= 1
		default:
			u |= 1
			v |= 1
		}
	}
	if q.Scramble {
		mask := q.NumVertices() - 1
		u = graph.Mix64(u^uint64(q.Seed)) & mask
		v = graph.Mix64(v^uint64(q.Seed)) & mask
	}
	return u, v
}

// Generate emits edges [start, end) of the stream.
func (p Params) Generate(start, end uint64, emit func(u, v uint64)) {
	for i := start; i < end; i++ {
		u, v := p.Edge(i)
		emit(u, v)
	}
}

// RankRange splits the edge stream evenly among n ranks and returns rank
// r's half-open slice.
func (p Params) RankRange(rank, n int) (start, end uint64) {
	total := p.NumEdges()
	per := total / uint64(n)
	rem := total % uint64(n)
	ur := uint64(rank)
	start = per*ur + min64(ur, rem)
	end = start + per
	if ur < rem {
		end++
	}
	return start, end
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
