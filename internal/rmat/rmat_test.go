package rmat

import (
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Scale: 10}).Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	if err := (Params{Scale: 0}).Validate(); err == nil {
		t.Error("scale 0 should fail")
	}
	if err := (Params{Scale: 10, A: 0.9, B: 0.3, C: 0.1, D: 0.1}).Validate(); err == nil {
		t.Error("bad probabilities should fail")
	}
	if err := (Params{Scale: 10, EdgeFactor: -1}).Validate(); err == nil {
		t.Error("negative edge factor should fail")
	}
}

func TestSizes(t *testing.T) {
	p := Params{Scale: 8, EdgeFactor: 16}
	if p.NumVertices() != 256 {
		t.Errorf("vertices = %d", p.NumVertices())
	}
	if p.NumEdges() != 4096 {
		t.Errorf("edges = %d", p.NumEdges())
	}
	if (Params{Scale: 8}).NumEdges() != 4096 {
		t.Error("default edge factor not applied")
	}
}

func TestDeterministicAcrossCalls(t *testing.T) {
	p := Params{Scale: 10, Seed: 5}
	for i := uint64(0); i < 500; i++ {
		u1, v1 := p.Edge(i)
		u2, v2 := p.Edge(i)
		if u1 != u2 || v1 != v2 {
			t.Fatalf("edge %d not deterministic", i)
		}
	}
}

func TestEdgesInRange(t *testing.T) {
	for _, scramble := range []bool{false, true} {
		p := Params{Scale: 9, Seed: 3, Scramble: scramble}
		n := p.NumVertices()
		p.Generate(0, 2000, func(u, v uint64) {
			if u >= n || v >= n {
				t.Fatalf("edge (%d,%d) out of range %d (scramble=%v)", u, v, n, scramble)
			}
		})
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := Params{Scale: 10, Seed: 1}
	b := Params{Scale: 10, Seed: 2}
	same := 0
	for i := uint64(0); i < 200; i++ {
		au, av := a.Edge(i)
		bu, bv := b.Edge(i)
		if au == bu && av == bv {
			same++
		}
	}
	if same > 20 {
		t.Errorf("%d/200 identical edges across seeds", same)
	}
}

func TestSkewedDegreeDistribution(t *testing.T) {
	// R-MAT with Graph500 parameters concentrates edges on low ids; the
	// max-degree vertex must dominate the mean by a large factor.
	p := Params{Scale: 12, Seed: 9}
	deg := map[uint64]int{}
	p.Generate(0, p.NumEdges(), func(u, v uint64) {
		deg[u]++
		deg[v]++
	})
	var max, total int
	for _, d := range deg {
		total += d
		if d > max {
			max = d
		}
	}
	mean := float64(total) / float64(len(deg))
	if float64(max) < 20*mean {
		t.Errorf("max degree %d vs mean %.1f: not scale-free-ish", max, mean)
	}
}

func TestRankRangePartition(t *testing.T) {
	f := func(scaleSeed uint8, nRanks uint8) bool {
		scale := 4 + int(scaleSeed%6)
		n := 1 + int(nRanks%9)
		p := Params{Scale: scale}
		var covered uint64
		prevEnd := uint64(0)
		for r := 0; r < n; r++ {
			s, e := p.RankRange(r, n)
			if s != prevEnd || e < s {
				return false
			}
			covered += e - s
			prevEnd = e
		}
		return covered == p.NumEdges() && prevEnd == p.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScrambleChangesIDsNotCount(t *testing.T) {
	plain := Params{Scale: 8, Seed: 4}
	scr := Params{Scale: 8, Seed: 4, Scramble: true}
	diff := 0
	for i := uint64(0); i < 200; i++ {
		pu, pv := plain.Edge(i)
		su, sv := scr.Edge(i)
		if pu != su || pv != sv {
			diff++
		}
	}
	if diff < 150 {
		t.Errorf("scramble changed only %d/200 edges", diff)
	}
}
