package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"tripoll/internal/engine"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// The acceptance property of the multi-process runtime: an N≥2-process
// world produces byte-identical survey results to a single-process world
// of the same rank count, across traversal modes, vertex orderings, and
// planned/unplanned queries, driven through the full engine path (driver
// scheduler + Fanout on one side, worker Serve + ExecuteFused on the
// other). "Byte-identical" is checked on the canonical JSON of every
// analysis value plus the deterministic survey figures: triangle counts
// and per-phase message/byte traffic. (Batch counts and wall-clock are
// excluded — batch boundaries depend on flush timing, wall on the host.)

type U = serialize.Unit

func mergeMin(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// buildTemporalOrdered is the collective temporal build both sides run:
// the driver's local ranks feed all edges, worker ranks feed none, and the
// transport ships every edge to its owner.
func buildTemporalOrdered(w *ygm.World, edges []graph.TemporalEdge, ord graph.Ordering) *graph.DODGr[U, uint64] {
	b := graph.NewBuilder[U, uint64](w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{
		Ordering:      ord,
		MergeEdgeMeta: mergeMin,
	})
	var g *graph.DODGr[U, uint64]
	first, count := w.LocalSpan()
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID() - first; i < len(edges); i += count {
			b.AddEdge(r, edges[i].U, edges[i].V, edges[i].Time)
		}
		gg := b.Build(r)
		if r.ID() == w.LeaderID() {
			g = gg
		}
	})
	return g
}

func randomTemporalEdges(seed int64, verts, count int) []graph.TemporalEdge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.TemporalEdge, 0, count)
	for i := 0; i < count; i++ {
		u := uint64(rng.Intn(verts))
		v := uint64(rng.Intn(verts))
		edges = append(edges, graph.TemporalEdge{U: u, V: v, Time: uint64(rng.Intn(32))})
	}
	return edges
}

// answer is the comparable digest of one job: the analysis value in
// canonical JSON plus the deterministic survey figures.
type answer struct {
	Value     string
	Triangles uint64
	Traffic   [3][2]int64 // per phase (dry-run, push, pull): messages, bytes
}

func digest(res engine.QueryResult) answer {
	v, err := json.Marshal(engine.JSONValue(res.Value))
	if err != nil {
		v = []byte(fmt.Sprintf("unmarshalable: %v", err))
	}
	s := res.Survey
	return answer{
		Value:     string(v),
		Triangles: s.Triangles,
		Traffic: [3][2]int64{
			{s.DryRun.Messages, s.DryRun.Bytes},
			{s.Push.Messages, s.Push.Bytes},
			{s.Pull.Messages, s.Pull.Bytes},
		},
	}
}

// equivalenceSpecs covers planned/unplanned × push-pull/push-only and a
// spread of analyses whose accumulators exercise every wire type: scalar,
// histogram grid, maps, and the clustering composite.
func equivalenceSpecs() []engine.Spec {
	return []engine.Spec{
		{Graph: "g", Analysis: "count"},
		{Graph: "g", Analysis: "count", Mode: "push-only"},
		{Graph: "g", Analysis: "closure", Delta: engine.Uint64(6)},
		{Graph: "g", Analysis: "closure", Mode: "push-only", Delta: engine.Uint64(6)},
		{Graph: "g", Analysis: "localcounts", From: engine.Uint64(4), Until: engine.Uint64(28)},
		{Graph: "g", Analysis: "cc"},
		{Graph: "g", Analysis: "edgecounts", Delta: engine.Uint64(10)},
	}
}

func submitAll(t *testing.T, e *engine.Engine[U, uint64], specs []engine.Spec) []answer {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out := make([]answer, 0, len(specs))
	for _, s := range specs {
		job, err := e.Submit(ctx, s)
		if err != nil {
			t.Fatalf("submit %+v: %v", s, err)
		}
		res, err := job.Wait(ctx)
		if err != nil {
			t.Fatalf("job %q: %v", s.Analysis, err)
		}
		out = append(out, digest(res))
	}
	return out
}

// runSingleProcess answers the spec list on a single-process TCP world.
func runSingleProcess(t *testing.T, ranks int, edges []graph.TemporalEdge, ord graph.Ordering, specs []engine.Spec) []answer {
	t.Helper()
	w, err := ygm.NewWorld(ranks, tcpOpts())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	defer w.Close()
	g := buildTemporalOrdered(w, edges, ord)
	e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
	})
	defer e.Close()
	if err := e.Register("g", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	return submitAll(t, e, specs)
}

// runMultiProcess answers the same list on a procs-process world with the
// same total rank count, workers running the production Serve loop.
func runMultiProcess(t *testing.T, procs, perProc int, edges []graph.TemporalEdge, ord graph.Ordering, specs []engine.Spec) []answer {
	t.Helper()
	cl, wks := startCluster(t, procs, perProc, tcpOpts())
	hooks := Hooks[U, uint64]{
		Registry:   engine.TemporalRegistry(),
		Timestamps: func(ts uint64) uint64 { return ts },
		Build: func(w *ygm.World, name string, spec BuildSpec) (*graph.DODGr[U, uint64], error) {
			return buildTemporalOrdered(w, nil, graph.Ordering(spec.Ordering)), nil
		},
	}
	served := make(chan error, len(wks))
	for _, wk := range wks {
		go func(wk *Worker) { served <- Serve(wk, hooks, nil) }(wk)
	}

	if err := cl.Build("g", BuildSpec{Ordering: int(ord), Policy: "temporal"}); err != nil {
		t.Fatalf("Build broadcast: %v", err)
	}
	g := buildTemporalOrdered(cl.World(), edges, ord)
	e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
		Fanout:     cl,
	})
	if err := e.Register("g", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	out := submitAll(t, e, specs)
	e.Close()
	if err := cl.Close(); err != nil {
		t.Errorf("cluster close: %v", err)
	}
	for range wks {
		if err := <-served; err != nil {
			t.Errorf("worker serve: %v", err)
		}
	}
	return out
}

func TestCrossProcessEquivalence(t *testing.T) {
	const ranks = 4
	specs := equivalenceSpecs()
	for _, ord := range []graph.Ordering{graph.OrderDegree, graph.OrderDegeneracy} {
		for seed := int64(1); seed <= 2; seed++ {
			name := fmt.Sprintf("%s/seed%d", ord, seed)
			t.Run(name, func(t *testing.T) {
				edges := randomTemporalEdges(seed, 48, 160)
				single := runSingleProcess(t, ranks, edges, ord, specs)
				multi := runMultiProcess(t, 2, ranks/2, edges, ord, specs)
				for i := range specs {
					if single[i] != multi[i] {
						t.Errorf("spec %q diverged:\n  1-process: %+v\n  2-process: %+v",
							specs[i].Analysis, single[i], multi[i])
					}
				}
			})
		}
	}
}

// TestWorkerLeaveFailsJobsNotServer: after a worker drains out (SIGTERM
// semantics), in-flight and new traversals fail with an error — but the
// driver's engine survives, and cached answers keep being served.
func TestWorkerLeaveFailsJobsNotServer(t *testing.T) {
	cl, wks := startCluster(t, 2, 1, tcpOpts())
	hooks := Hooks[U, uint64]{
		Registry:   engine.TemporalRegistry(),
		Timestamps: func(ts uint64) uint64 { return ts },
		Build: func(w *ygm.World, name string, spec BuildSpec) (*graph.DODGr[U, uint64], error) {
			return buildTemporalOrdered(w, nil, graph.OrderDegree), nil
		},
	}
	stop := make(chan struct{})
	served := make(chan error, 1)
	go func() { served <- Serve(wks[0], hooks, stop) }()

	edges := randomTemporalEdges(7, 24, 60)
	if err := cl.Build("g", BuildSpec{Policy: "temporal"}); err != nil {
		t.Fatalf("Build broadcast: %v", err)
	}
	g := buildTemporalOrdered(cl.World(), edges, graph.OrderDegree)
	e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
		Fanout:     cl,
	})
	defer e.Close()
	if err := e.Register("g", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	warm := engine.Spec{Graph: "g", Analysis: "count"}
	job, err := e.Submit(ctx, warm)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	first, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("warm job: %v", err)
	}

	// Drain the worker out and wait for its departure to land.
	close(stop)
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}

	// A fresh traversal must fail — cleanly, as a job error.
	job, err = e.Submit(ctx, engine.Spec{Graph: "g", Analysis: "count", Delta: engine.Uint64(3)})
	if err == nil {
		if _, err = job.Wait(ctx); err == nil {
			t.Fatal("traversal succeeded with no worker in the world")
		}
	}

	// The cached answer is still served: the engine outlives the world.
	job, err = e.Submit(ctx, warm)
	if err != nil {
		t.Fatalf("cached submit: %v", err)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("cached job after worker loss: %v", err)
	}
	if !res.Cached || res.Survey.Triangles != first.Survey.Triangles {
		t.Errorf("cached replay = {cached:%v triangles:%d}, want {true %d}",
			res.Cached, res.Survey.Triangles, first.Survey.Triangles)
	}
	cl.Close()
}
