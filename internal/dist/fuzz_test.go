package dist

import (
	"bytes"
	"encoding/gob"
	"testing"

	"tripoll/internal/serialize"
)

// frameBytes encodes one control message exactly the way ctrlConn.send
// does: gob behind a 4-byte length prefix.
func frameBytes(t testing.TB, m *ctrlMsg) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		t.Fatalf("encode %v frame: %v", m.Kind, err)
	}
	var frame bytes.Buffer
	if err := serialize.WriteFrame(&frame, payload.Bytes()); err != nil {
		t.Fatalf("frame %v: %v", m.Kind, err)
	}
	return frame.Bytes()
}

// FuzzCtrlFrame feeds arbitrary bytes through the control-plane receive
// path (length-prefixed frame, then gob into ctrlMsg) — the exact code a
// coordinator or worker runs on bytes that crossed a network. Damage must
// surface as an error, never a panic or an oversized allocation. Seeds
// cover the v2 mutation frames (kStream/kIngest/kAdvance/kMutDone) so the
// fuzzer starts from structurally valid protocol traffic.
func FuzzCtrlFrame(f *testing.F) {
	seeds := []*ctrlMsg{
		{Kind: kJoin, Magic: joinMagic, Version: protoVersion},
		{Kind: kStream, Graph: "g", Policy: "temporal"},
		{Kind: kIngest, Graph: "g", Epoch: 3, Batch: []byte{2, 0, 1, 7, 1, 2, 9}},
		{Kind: kAdvance, Graph: "g", Epoch: 4, Cutoff: 12},
		{Kind: kMutDone, Epoch: 4, Applied: 2},
		{Kind: kMutDone, Epoch: 5, Err: "apply failed"},
	}
	for _, m := range seeds {
		f.Add(frameBytes(f, m))
	}
	// Truncations and raw damage.
	whole := frameBytes(f, seeds[2])
	f.Add(whole[:len(whole)-3])
	f.Add(whole[:2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GiB declared length
	f.Add([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := serialize.ReadFrame(bytes.NewReader(data), maxCtrlFrame)
		if err != nil {
			return // rejected at the framing layer — fine
		}
		var m ctrlMsg
		_ = gob.NewDecoder(bytes.NewReader(payload)).Decode(&m)
	})
}

// TestCtrlFrameRoundTrip pins the wire form of the v2 mutation frames:
// every field a mutation broadcast depends on must survive the
// encode/frame/decode cycle bit-exactly.
func TestCtrlFrameRoundTrip(t *testing.T) {
	msgs := []*ctrlMsg{
		{Kind: kStream, Graph: "reddit", Policy: "temporal"},
		{Kind: kIngest, Graph: "reddit", Epoch: 17, Batch: []byte{3, 1, 2, 5, 2, 3, 6, 3, 4, 7}},
		{Kind: kAdvance, Graph: "reddit", Epoch: 18, Cutoff: 99},
		{Kind: kMutDone, Epoch: 18, Applied: 12},
		{Kind: kMutDone, Epoch: 19, Err: "dist: worker 1: apply: boom"},
	}
	for _, want := range msgs {
		payload, err := serialize.ReadFrame(bytes.NewReader(frameBytes(t, want)), maxCtrlFrame)
		if err != nil {
			t.Fatalf("%v: read frame: %v", want.Kind, err)
		}
		var got ctrlMsg
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&got); err != nil {
			t.Fatalf("%v: decode: %v", want.Kind, err)
		}
		if got.Kind != want.Kind || got.Graph != want.Graph || got.Policy != want.Policy ||
			got.Epoch != want.Epoch || got.Cutoff != want.Cutoff ||
			got.Applied != want.Applied || got.Err != want.Err ||
			!bytes.Equal(got.Batch, want.Batch) {
			t.Errorf("%v: round trip mismatch:\n  want %+v\n  got  %+v", want.Kind, want, got)
		}
	}
}
