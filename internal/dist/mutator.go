package dist

import (
	"fmt"
	"time"
)

// The cluster's side of the mutation seam (engine.Mutator): stream opens,
// mutation broadcasts and the commit round all travel the coordinator
// star as v2 control frames. The driver's engine calls these from its
// scheduler goroutine, interleaved with Traverse, so no extra locking
// beyond bcast's is needed — except the stats, which /metrics reads
// concurrently.

// MutationStats counts the cluster's mutation-path activity; the tripolld
// /metrics dist section is this JSON shape.
type MutationStats struct {
	// Mutations counts mutation broadcasts sent (ingests + advances,
	// including recovery re-broadcasts).
	Mutations uint64 `json:"mutations"`
	// BroadcastNS is the cumulative wall time spent fanning mutation
	// frames out to the workers (the send side only; the collective apply
	// is accounted by the mutation's own Result).
	BroadcastNS int64 `json:"broadcast_ns_total"`
	// CommitNS is the cumulative wall time spent collecting kMutDone
	// acknowledgements.
	CommitNS int64 `json:"commit_ns_total"`
	// WorkerApplied is each worker's own count of applied mutations, as
	// echoed in its most recent acknowledgement (index 0 = worker 1).
	WorkerApplied []uint64 `json:"worker_applied"`
}

// MutationStats returns a snapshot of the mutation-path counters.
func (c *Cluster) MutationStats() MutationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.mutStats
	st.WorkerApplied = append([]uint64(nil), c.mutStats.WorkerApplied...)
	return st
}

// OpenStream implements engine.Mutator: every worker opens its side of a
// durable stream over the named built graph, under the policy's stream
// configuration. The engine runs the driver's core.OpenStream right after.
func (c *Cluster) OpenStream(graph, policy string) error {
	return c.bcast(&ctrlMsg{Kind: kStream, Graph: graph, Policy: policy})
}

// Ingest implements engine.Mutator: broadcast one logged edge batch
// (wal.EncodeBatch bytes) to apply at epoch.
func (c *Cluster) Ingest(graph string, epoch uint64, batch []byte) error {
	return c.mutBcast(&ctrlMsg{Kind: kIngest, Graph: graph, Epoch: epoch, Batch: batch})
}

// Advance implements engine.Mutator: broadcast one logged watermark
// advance to apply at epoch.
func (c *Cluster) Advance(graph string, epoch, cutoff uint64) error {
	return c.mutBcast(&ctrlMsg{Kind: kAdvance, Graph: graph, Epoch: epoch, Cutoff: cutoff})
}

// Materialize implements engine.Mutator: every worker re-materializes the
// stream's queryable snapshot; the engine runs the driver's collective
// Materialize right after.
func (c *Cluster) Materialize(graph string) error {
	return c.bcast(&ctrlMsg{Kind: kMat, Graph: graph})
}

// mutBcast is bcast plus the mutation-path accounting.
func (c *Cluster) mutBcast(m *ctrlMsg) error {
	t0 := time.Now()
	if err := c.bcast(m); err != nil {
		return err
	}
	c.mu.Lock()
	c.mutStats.Mutations++
	c.mutStats.BroadcastNS += time.Since(t0).Nanoseconds()
	c.mu.Unlock()
	return nil
}

// Commit implements engine.Mutator: the second phase of a mutation. It
// collects one kMutDone per worker echoing epoch; a worker that left,
// died, or reported an apply failure yields a typed error (wrapping
// ErrWorkerLeft for departures) and poisons the cluster — a worker that
// missed a mutation can never rejoin the lockstep. The collective apply
// has already synchronized every process when Commit runs, so the
// acknowledgement is at most one frame away; the rendezvous timeout
// bounds the wait so a wedged worker fails the batch instead of hanging
// the scheduler.
func (c *Cluster) Commit(graph string, epoch uint64) error {
	t0 := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("dist: cluster is closed")
	}
	workers := c.workers
	c.mu.Unlock()

	deadline := time.Now().Add(c.cfg.timeout())
	var ferr error
	applied := make([]uint64, len(workers))
	for i, cc := range workers {
		if ferr != nil {
			break
		}
		cc.setDeadline(deadline)
		m, err := cc.recv()
		cc.setDeadline(time.Time{})
		switch {
		case err != nil:
			ferr = fmt.Errorf("dist: worker %d mutation ack for %q epoch %d: %w", i+1, graph, epoch, err)
		case m.Kind == kLeave:
			ferr = fmt.Errorf("dist: worker %d left before committing %q epoch %d: %w", i+1, graph, epoch, ErrWorkerLeft)
		case m.Kind != kMutDone:
			ferr = fmt.Errorf("dist: worker %d mutation ack: %w", i+1, &ProtocolError{Got: m.Kind, Want: kMutDone})
		case m.Err != "":
			ferr = fmt.Errorf("dist: worker %d failed to apply %q epoch %d: %s", i+1, graph, epoch, m.Err)
		case m.Epoch != epoch:
			ferr = fmt.Errorf("dist: worker %d acknowledged epoch %d, want %d (replicas diverged)", i+1, m.Epoch, epoch)
		default:
			applied[i] = m.Applied
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ferr != nil {
		c.closed = true
		return ferr
	}
	c.mutStats.CommitNS += time.Since(t0).Nanoseconds()
	c.mutStats.WorkerApplied = applied
	return nil
}
