package dist

import (
	"fmt"
)

// The star-topology ProcLink. Every process's leader rank calls its link
// in the same order at the same logical points (ygm splices link rounds
// into barriers and collectives in strict SPMD lockstep), so the protocol
// needs no demultiplexing: the coordinator reads exactly one frame of the
// expected kind per worker per round, then answers every worker.

// coordLink is the coordinator's side: collect one contribution from each
// worker, fold in the local one, broadcast the outcome.
type coordLink struct {
	workers []*ctrlConn // index p-1 holds process p
	perProc int
	n       int
}

// collect reads one round's frame from every worker, in process order. A
// leave frame (SIGTERM drain) or a dead connection surfaces as an error,
// which ygm turns into a region-poisoning panic on the driver.
func (l *coordLink) collect(k kind) ([]*ctrlMsg, error) {
	ms := make([]*ctrlMsg, len(l.workers))
	for i, cc := range l.workers {
		m, err := cc.recv()
		if err != nil {
			return nil, fmt.Errorf("dist: worker %d: %w", i+1, err)
		}
		if m.Kind == kLeave {
			return nil, fmt.Errorf("dist: worker %d: %w", i+1, ErrWorkerLeft)
		}
		if m.Kind != k {
			return nil, fmt.Errorf("dist: worker %d: %w", i+1, &ProtocolError{Got: m.Kind, Want: k})
		}
		ms[i] = m
	}
	return ms, nil
}

func (l *coordLink) bcast(m *ctrlMsg) error {
	for i, cc := range l.workers {
		if err := cc.send(m); err != nil {
			return fmt.Errorf("dist: worker %d: %w", i+1, err)
		}
	}
	return nil
}

func (l *coordLink) Sync() error {
	if _, err := l.collect(kSync); err != nil {
		return err
	}
	return l.bcast(&ctrlMsg{Kind: kSync})
}

func (l *coordLink) Quiesce(sent, processed int64) (bool, error) {
	ms, err := l.collect(kQuiesce)
	if err != nil {
		return false, err
	}
	ts, tp := sent, processed
	for _, m := range ms {
		ts += m.Sent
		tp += m.Processed
	}
	// One global verdict, computed once: an in-flight cross-process batch
	// is counted by its sender but not yet by its receiver, so the totals
	// only match when the whole world is quiet.
	quiet := ts == tp
	if err := l.bcast(&ctrlMsg{Kind: kQuiesce, Quiet: quiet}); err != nil {
		return false, err
	}
	return quiet, nil
}

func (l *coordLink) Exchange(local []any) ([]any, error) {
	ms, err := l.collect(kExchange)
	if err != nil {
		return nil, err
	}
	full := make([]wireVal, l.n)
	copy(full[:l.perProc], wrapVals(local))
	for i, m := range ms {
		if len(m.Vals) != l.perProc {
			return nil, fmt.Errorf("dist: worker %d sent %d collective slots, want %d", i+1, len(m.Vals), l.perProc)
		}
		copy(full[(i+1)*l.perProc:], m.Vals)
	}
	if err := l.bcast(&ctrlMsg{Kind: kExchange, Vals: full}); err != nil {
		return nil, err
	}
	return unwrapVals(full), nil
}

// workerLink is a worker's side: contribute, then wait for the
// coordinator's answer through the read pump.
type workerLink struct {
	wk *Worker
}

func (l *workerLink) round(m *ctrlMsg) (*ctrlMsg, error) {
	if err := l.wk.cc.send(m); err != nil {
		return nil, err
	}
	return l.wk.awaitLink(m.Kind)
}

func (l *workerLink) Sync() error {
	_, err := l.round(&ctrlMsg{Kind: kSync})
	return err
}

func (l *workerLink) Quiesce(sent, processed int64) (bool, error) {
	m, err := l.round(&ctrlMsg{Kind: kQuiesce, Sent: sent, Processed: processed})
	if err != nil {
		return false, err
	}
	return m.Quiet, nil
}

func (l *workerLink) Exchange(local []any) ([]any, error) {
	m, err := l.round(&ctrlMsg{Kind: kExchange, Vals: wrapVals(local)})
	if err != nil {
		return nil, err
	}
	if len(m.Vals) != l.wk.world {
		return nil, fmt.Errorf("dist: coordinator sent %d collective slots, want %d", len(m.Vals), l.wk.world)
	}
	return unwrapVals(m.Vals), nil
}
