package dist

import (
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"time"
)

// Process launching. Two styles: Launch starts an explicit worker binary
// (tripolld -workers does this with cmd/tripoll-worker), SelfLaunch
// re-executes the current binary with WorkerEnv set (tests and
// tripoll-bench use this so one binary plays every role).

// WorkerEnv, when present in a process's environment, carries a
// coordinator control address the process should join as a worker instead
// of doing its normal work. Binaries that support self-launched workers
// check it first thing in main (see cmd/tripoll-bench).
const WorkerEnv = "TRIPOLL_DIST_JOIN"

// JoinAddrFromEnv returns the control address a parent process asked this
// one to join, or "" when the process was started normally.
func JoinAddrFromEnv() string { return os.Getenv(WorkerEnv) }

// Launch starts count worker processes running name with args. Worker
// output goes to this process's stderr. On partial failure the already
// started processes are killed.
func Launch(name string, args []string, count int) ([]*exec.Cmd, error) {
	procs := make([]*exec.Cmd, 0, count)
	for i := 0; i < count; i++ {
		cmd := exec.Command(name, args...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			KillAll(procs)
			return nil, fmt.Errorf("dist: start worker %d (%s): %w", i, name, err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

// SelfLaunch starts count copies of the current executable with WorkerEnv
// pointing at ctrlAddr, inheriting this process's arguments and
// environment.
func SelfLaunch(ctrlAddr string, count int) ([]*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("dist: locate executable: %w", err)
	}
	procs := make([]*exec.Cmd, 0, count)
	for i := 0; i < count; i++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(), WorkerEnv+"="+ctrlAddr)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			KillAll(procs)
			return nil, fmt.Errorf("dist: start self-worker %d: %w", i, err)
		}
		procs = append(procs, cmd)
	}
	return procs, nil
}

// WaitAll waits for every process and returns the first failure.
func WaitAll(procs []*exec.Cmd) error {
	var first error
	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil && first == nil {
			first = fmt.Errorf("dist: worker %d: %w", i, err)
		}
	}
	return first
}

// StopAll asks every process to shut down gracefully (SIGTERM), waits up
// to grace for each, then kills stragglers. It returns the first unclean
// exit.
func StopAll(procs []*exec.Cmd, grace time.Duration) error {
	for _, cmd := range procs {
		if cmd.Process != nil {
			cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	var first error
	for i, cmd := range procs {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && first == nil {
				first = fmt.Errorf("dist: worker %d: %w", i, err)
			}
		case <-time.After(grace):
			cmd.Process.Kill()
			<-done
			if first == nil {
				first = fmt.Errorf("dist: worker %d did not exit within %v of SIGTERM", i, grace)
			}
		}
	}
	return first
}

// KillAll force-kills every started process (cleanup on setup failure).
func KillAll(procs []*exec.Cmd) {
	for _, cmd := range procs {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}
}
