package dist

import (
	"fmt"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/graph"
	"tripoll/internal/wal"
	"tripoll/internal/ygm"
)

// Worker is one joined worker process: its view of the world plus the
// control connection to the coordinator. A read pump owns the connection's
// read side and feeds a channel; the serve loop and the link rounds take
// turns consuming it (the protocol's lockstep guarantees exactly one
// consumer per frame), which is what lets Serve select on a stop signal
// without a read blocking it.
type Worker struct {
	cc     *ctrlConn
	w      *ygm.World
	proc   int
	first  int
	count  int
	world  int
	frames chan frameOrErr
}

type frameOrErr struct {
	m   *ctrlMsg
	err error
}

// World returns the worker's view of the process-spanning world.
func (wk *Worker) World() *ygm.World { return wk.w }

// Proc returns this process's index (1-based among workers; the
// coordinator is process 0).
func (wk *Worker) Proc() int { return wk.proc }

// Close releases the world and the control connection without the
// departure protocol; Serve's normal return paths have already left.
func (wk *Worker) Close() {
	wk.cc.close()
	wk.w.Close()
}

// pump owns the connection's read side: every inbound frame (job or link
// round) lands on the channel in order. On a read error it delivers the
// error once and closes the channel, so every later consumer sees the
// link as down rather than blocking forever.
func (wk *Worker) pump() {
	for {
		m, err := wk.cc.recv()
		if err != nil {
			wk.frames <- frameOrErr{err: err}
			close(wk.frames)
			return
		}
		wk.frames <- frameOrErr{m: m}
	}
}

// awaitLink consumes the next frame for a link round.
func (wk *Worker) awaitLink(k kind) (*ctrlMsg, error) {
	fe, ok := <-wk.frames
	if !ok {
		return nil, errLinkDown
	}
	if fe.err != nil {
		return nil, fe.err
	}
	if fe.m.Kind != k {
		return nil, &ProtocolError{Got: fe.m.Kind, Want: k}
	}
	return fe.m, nil
}

// Hooks binds a worker's serve loop to a concrete graph/analysis
// configuration (the metadata type parameters and the non-serializable
// pieces: codecs, merge functions, analysis factories). Driver and worker
// binaries must agree on these — they are the replicated program.
type Hooks[VM, EM any] struct {
	// Registry resolves analysis names, exactly as the driver's engine
	// does.
	Registry *engine.Registry[VM, EM]
	// Timestamps extracts a timestamp from edge metadata for temporal
	// plans; nil if the configuration has none.
	Timestamps func(EM) uint64
	// Build runs this process's side of a collective graph build for the
	// given spec, feeding no edges (the driver's ranks feed all of them).
	// For replicated graphs (spec.Replicas > 1) it must partition over the
	// replica's rank span exactly as the driver does (graph.SpanPartition).
	Build func(w *ygm.World, name string, spec BuildSpec) (*graph.DODGr[VM, EM], error)
	// OpenStream runs this process's side of a collective stream open
	// (stream job) over the built graph g, mapping the policy back to the
	// same StreamOptions/plan/analyses the driver's OpenDurableStream
	// uses. nil rejects stream jobs.
	OpenStream func(g *graph.DODGr[VM, EM], policy string) (*core.Stream[VM, EM], error)
}

// Serve runs the worker's job loop until the coordinator dismisses it
// (stop job), the process is asked to quit (stop channel, e.g. SIGTERM),
// or the world breaks. Shutdown via the stop channel is graceful: a job in
// flight — including every parallel region of a traversal — completes
// first, then the worker announces departure with a leave frame and
// returns nil.
//
// Jobs execute synchronously in arrival order, mirroring the driver's
// scheduler, so the processes enter every parallel region in the same
// sequence with identically numbered handlers. Mutation jobs (v2: stream,
// ingest, advance, mat) are jobs like any other, so the SIGTERM drain
// point between jobs covers them too: an in-flight mutation completes —
// collective apply, acknowledgement and all — before the worker leaves.
func Serve[VM, EM any](wk *Worker, h Hooks[VM, EM], stop <-chan struct{}) error {
	// graphs holds one slot per replica (plain graphs are a single slot);
	// streams holds the worker's side of every open durable stream, and
	// applied counts the mutations this worker has acknowledged.
	graphs := make(map[string][]*graph.DODGr[VM, EM])
	streams := make(map[string]*core.Stream[VM, EM])
	var applied uint64
	for {
		// A pending stop outranks a pending job: the drain point is
		// between jobs.
		select {
		case <-stop:
			return wk.leave()
		default:
		}
		select {
		case <-stop:
			return wk.leave()
		case fe, ok := <-wk.frames:
			if !ok {
				return errLinkDown
			}
			if fe.err != nil {
				return fmt.Errorf("dist: coordinator link: %w", fe.err)
			}
			m := fe.m
			switch m.Kind {
			case kBuild:
				if h.Build == nil {
					return fmt.Errorf("dist: build job %q but the worker has no Build hook", m.Graph)
				}
				g, err := h.Build(wk.w, m.Graph, m.Build)
				if err != nil {
					return fmt.Errorf("dist: build job %q: %w", m.Graph, err)
				}
				slots := graphs[m.Graph]
				if n := max(m.Build.Replicas, 1); len(slots) < n {
					slots = append(slots, make([]*graph.DODGr[VM, EM], n-len(slots))...)
				}
				slots[m.Build.Replica] = g
				graphs[m.Graph] = slots
			case kRun:
				slots := graphs[m.Graph]
				if m.Run.Replica < 0 || m.Run.Replica >= len(slots) || slots[m.Run.Replica] == nil {
					return fmt.Errorf("dist: run job names unbuilt graph %q (replica %d)", m.Graph, m.Run.Replica)
				}
				opts := core.Options{Mode: core.Mode(m.Run.Mode), PullFactor: m.Run.PullFactor}
				if _, _, err := engine.ExecuteFused(h.Registry, h.Timestamps, slots[m.Run.Replica], opts, m.Run.Specs); err != nil {
					return fmt.Errorf("dist: traversal job: %w", err)
				}
			case kStream:
				if h.OpenStream == nil {
					return fmt.Errorf("dist: stream job %q but the worker has no OpenStream hook", m.Graph)
				}
				slots := graphs[m.Graph]
				if len(slots) == 0 || slots[0] == nil {
					return fmt.Errorf("dist: stream job names unbuilt graph %q", m.Graph)
				}
				s, err := h.OpenStream(slots[0], m.Policy)
				if err != nil {
					return fmt.Errorf("dist: stream job %q: %w", m.Graph, err)
				}
				streams[m.Graph] = s
			case kIngest, kAdvance:
				s, open := streams[m.Graph]
				if !open {
					return fmt.Errorf("dist: %v job names unopened stream %q", m.Kind, m.Graph)
				}
				// The collective apply, then the acknowledgement — the
				// driver's commit round reads one ack per worker after its
				// own apply returns. A failed apply is acknowledged with
				// the error (so the driver fails the job rather than time
				// out) and then fatal here: the replicas have diverged.
				err := applyMutation(s, graphs[m.Graph][0], m)
				ack := &ctrlMsg{Kind: kMutDone, Graph: m.Graph, Epoch: m.Epoch}
				if err != nil {
					ack.Err = err.Error()
				} else {
					applied++
				}
				ack.Applied = applied
				if serr := wk.cc.send(ack); serr != nil {
					return fmt.Errorf("dist: mutation ack: %w", serr)
				}
				if err != nil {
					return fmt.Errorf("dist: %v job %q epoch %d: %w", m.Kind, m.Graph, m.Epoch, err)
				}
			case kMat:
				s, open := streams[m.Graph]
				if !open {
					return fmt.Errorf("dist: materialize job names unopened stream %q", m.Graph)
				}
				graphs[m.Graph][0] = s.Materialize()
			case kStop:
				return wk.leave()
			default:
				return &ProtocolError{Got: m.Kind, Want: kRun}
			}
		}
	}
}

// applyMutation enters one broadcast mutation's collective apply: the
// batch bytes decode under the built graph's own edge codec (the exact
// encoding the driver's WAL logged), so driver and workers apply
// byte-identical batches.
func applyMutation[VM, EM any](s *core.Stream[VM, EM], base *graph.DODGr[VM, EM], m *ctrlMsg) error {
	switch m.Kind {
	case kIngest:
		batch, err := wal.DecodeBatch(base.EdgeCodec(), m.Batch)
		if err != nil {
			return err
		}
		_, err = s.Ingest(batch)
		return err
	default: // kAdvance
		_, err := s.Advance(m.Cutoff)
		return err
	}
}

// leave announces orderly departure. The coordinator sees the frame at its
// next interaction with this worker: during Close it is the expected
// goodbye; during a link round it surfaces as ErrWorkerLeft and poisons
// the in-flight job.
func (wk *Worker) leave() error {
	wk.cc.send(&ctrlMsg{Kind: kLeave})
	wk.Close()
	return nil
}
