package dist

import (
	"fmt"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// Worker is one joined worker process: its view of the world plus the
// control connection to the coordinator. A read pump owns the connection's
// read side and feeds a channel; the serve loop and the link rounds take
// turns consuming it (the protocol's lockstep guarantees exactly one
// consumer per frame), which is what lets Serve select on a stop signal
// without a read blocking it.
type Worker struct {
	cc     *ctrlConn
	w      *ygm.World
	proc   int
	first  int
	count  int
	world  int
	frames chan frameOrErr
}

type frameOrErr struct {
	m   *ctrlMsg
	err error
}

// World returns the worker's view of the process-spanning world.
func (wk *Worker) World() *ygm.World { return wk.w }

// Proc returns this process's index (1-based among workers; the
// coordinator is process 0).
func (wk *Worker) Proc() int { return wk.proc }

// Close releases the world and the control connection without the
// departure protocol; Serve's normal return paths have already left.
func (wk *Worker) Close() {
	wk.cc.close()
	wk.w.Close()
}

// pump owns the connection's read side: every inbound frame (job or link
// round) lands on the channel in order. On a read error it delivers the
// error once and closes the channel, so every later consumer sees the
// link as down rather than blocking forever.
func (wk *Worker) pump() {
	for {
		m, err := wk.cc.recv()
		if err != nil {
			wk.frames <- frameOrErr{err: err}
			close(wk.frames)
			return
		}
		wk.frames <- frameOrErr{m: m}
	}
}

// awaitLink consumes the next frame for a link round.
func (wk *Worker) awaitLink(k kind) (*ctrlMsg, error) {
	fe, ok := <-wk.frames
	if !ok {
		return nil, errLinkDown
	}
	if fe.err != nil {
		return nil, fe.err
	}
	if fe.m.Kind != k {
		return nil, &ProtocolError{Got: fe.m.Kind, Want: k}
	}
	return fe.m, nil
}

// Hooks binds a worker's serve loop to a concrete graph/analysis
// configuration (the metadata type parameters and the non-serializable
// pieces: codecs, merge functions, analysis factories). Driver and worker
// binaries must agree on these — they are the replicated program.
type Hooks[VM, EM any] struct {
	// Registry resolves analysis names, exactly as the driver's engine
	// does.
	Registry *engine.Registry[VM, EM]
	// Timestamps extracts a timestamp from edge metadata for temporal
	// plans; nil if the configuration has none.
	Timestamps func(EM) uint64
	// Build runs this process's side of a collective graph build for the
	// given spec, feeding no edges (the driver's ranks feed all of them).
	Build func(w *ygm.World, name string, spec BuildSpec) (*graph.DODGr[VM, EM], error)
}

// Serve runs the worker's job loop until the coordinator dismisses it
// (stop job), the process is asked to quit (stop channel, e.g. SIGTERM),
// or the world breaks. Shutdown via the stop channel is graceful: a job in
// flight — including every parallel region of a traversal — completes
// first, then the worker announces departure with a leave frame and
// returns nil.
//
// Jobs execute synchronously in arrival order, mirroring the driver's
// scheduler, so the processes enter every parallel region in the same
// sequence with identically numbered handlers.
func Serve[VM, EM any](wk *Worker, h Hooks[VM, EM], stop <-chan struct{}) error {
	graphs := make(map[string]*graph.DODGr[VM, EM])
	for {
		// A pending stop outranks a pending job: the drain point is
		// between jobs.
		select {
		case <-stop:
			return wk.leave()
		default:
		}
		select {
		case <-stop:
			return wk.leave()
		case fe, ok := <-wk.frames:
			if !ok {
				return errLinkDown
			}
			if fe.err != nil {
				return fmt.Errorf("dist: coordinator link: %w", fe.err)
			}
			m := fe.m
			switch m.Kind {
			case kBuild:
				if h.Build == nil {
					return fmt.Errorf("dist: build job %q but the worker has no Build hook", m.Graph)
				}
				g, err := h.Build(wk.w, m.Graph, m.Build)
				if err != nil {
					return fmt.Errorf("dist: build job %q: %w", m.Graph, err)
				}
				graphs[m.Graph] = g
			case kRun:
				g, built := graphs[m.Graph]
				if !built {
					return fmt.Errorf("dist: run job names unbuilt graph %q", m.Graph)
				}
				opts := core.Options{Mode: core.Mode(m.Run.Mode), PullFactor: m.Run.PullFactor}
				if _, _, err := engine.ExecuteFused(h.Registry, h.Timestamps, g, opts, m.Run.Specs); err != nil {
					return fmt.Errorf("dist: traversal job: %w", err)
				}
			case kStop:
				return wk.leave()
			default:
				return &ProtocolError{Got: m.Kind, Want: kRun}
			}
		}
	}
}

// leave announces orderly departure. The coordinator sees the frame at its
// next interaction with this worker: during Close it is the expected
// goodbye; during a link round it surfaces as ErrWorkerLeft and poisons
// the in-flight job.
func (wk *Worker) leave() error {
	wk.cc.send(&ctrlMsg{Kind: kLeave})
	wk.Close()
	return nil
}
