package dist

import (
	"fmt"
	"sync"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/ygm"
)

// Cluster is the coordinator's handle on an assembled multi-process world:
// the local World (ranks [0, RanksPerProc)), the worker control
// connections, and the job-broadcast methods. It implements engine.Fanout,
// so handing it to EngineOptions.Fanout makes every admitted traversal a
// whole-world collective.
//
// Methods are not safe for concurrent use with each other; the engine's
// single scheduler goroutine already serializes Traverse, and Build/Close
// belong to setup and teardown.
type Cluster struct {
	cfg     Config
	w       *ygm.World
	workers []*ctrlConn
	link    *coordLink

	mu       sync.Mutex
	closed   bool
	mutStats MutationStats
}

// World returns the coordinator's view of the process-spanning world.
func (c *Cluster) World() *ygm.World { return c.w }

// Procs returns the total process count, coordinator included.
func (c *Cluster) Procs() int { return c.cfg.Procs }

// bcast sends one job frame to every worker; the first failure poisons the
// cluster for subsequent jobs (a worker that missed a job can never rejoin
// the lockstep).
func (c *Cluster) bcast(m *ctrlMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("dist: cluster is closed")
	}
	for i, cc := range c.workers {
		if err := cc.send(m); err != nil {
			c.closed = true
			return fmt.Errorf("dist: broadcasting %v job to worker %d: %w", m.Kind, i+1, err)
		}
	}
	return nil
}

// Build broadcasts a graph-build job, after which the caller must run its
// own side of the collective build (feed every edge from the local ranks
// and call the builder) — the workers enter theirs on receipt, feeding no
// edges, and the ygm transport ships each edge to its owner rank.
func (c *Cluster) Build(name string, spec BuildSpec) error {
	return c.bcast(&ctrlMsg{Kind: kBuild, Graph: name, Build: spec})
}

// Traverse broadcasts one fused traversal (engine.Fanout). The caller runs
// its side immediately after; the traversal's own collectives synchronize
// the processes, so no acknowledgement round exists. replica selects the
// copy of a replicated graph to traverse (0 for plain graphs).
func (c *Cluster) Traverse(graph string, replica int, opts core.Options, specs []engine.Spec) error {
	return c.bcast(&ctrlMsg{
		Kind: kRun, Graph: graph,
		Run: RunSpec{Mode: int(opts.Mode), PullFactor: opts.PullFactor, Replica: replica, Specs: specs},
	})
}

// Close dismisses the workers (stop, then wait briefly for each leave so
// their exit is orderly), closes the control connections and the world.
func (c *Cluster) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		for _, cc := range c.workers {
			cc.send(&ctrlMsg{Kind: kStop})
		}
		grace := time.Now().Add(5 * time.Second)
		for _, cc := range c.workers {
			cc.setDeadline(grace)
			for {
				m, err := cc.recv()
				if err != nil || m.Kind == kLeave {
					break
				}
			}
		}
	}
	for _, cc := range c.workers {
		cc.close()
	}
	c.w.Close()
	return nil
}
