package dist

import (
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func tcpOpts() ygm.Options {
	return ygm.Options{Transport: ygm.TransportTCP}
}

// startCluster assembles a procs×perProc world inside this test process:
// the test goroutine is the coordinator, each worker runs as a goroutine
// with its own World — real TCP between all of them, so the wire path is
// the production one even though the address spaces are shared.
func startCluster(t *testing.T, procs, perProc int, opts ygm.Options) (*Cluster, []*Worker) {
	t.Helper()
	co, err := Listen(Config{Procs: procs, RanksPerProc: perProc, Opts: opts, Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	type joined struct {
		wk  *Worker
		err error
	}
	ch := make(chan joined, procs-1)
	for i := 1; i < procs; i++ {
		go func() {
			wk, err := Join(co.Addr(), "", 30*time.Second)
			ch <- joined{wk, err}
		}()
	}
	cl, err := co.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}
	wks := make([]*Worker, 0, procs-1)
	for i := 1; i < procs; i++ {
		j := <-ch
		if j.err != nil {
			cl.Close()
			t.Fatalf("Join: %v", j.err)
		}
		wks = append(wks, j.wk)
	}
	return cl, wks
}

// TestRendezvousCollectives assembles a 2-process × 2-rank world and runs
// the full ygm repertoire across the process boundary: async messaging
// with termination detection, AllReduce, AllGather, Broadcast from a
// remote root, and Rendezvous — then a clean stop/leave shutdown.
func TestRendezvousCollectives(t *testing.T) {
	cl, wks := startCluster(t, 2, 2, tcpOpts())
	wk := wks[0]
	n := cl.World().Size()
	if n != 4 {
		t.Fatalf("world size = %d, want 4", n)
	}
	if f, c := wk.World().LocalSpan(); f != 2 || c != 2 {
		t.Fatalf("worker span = [%d, %d), want [2, 4)", f, f+c)
	}

	region := func(w *ygm.World) func() {
		first, count := w.LocalSpan()
		got := make([]uint64, count) // messages received per local rank
		h := w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
			got[r.ID()-first] += d.Uvarint()
		})
		return func() {
			w.Parallel(func(r *ygm.Rank) {
				// Every rank sends its id+1 to every other rank.
				for dst := 0; dst < n; dst++ {
					if dst == r.ID() {
						continue
					}
					e := r.Begin(dst, h)
					e.PutUvarint(uint64(r.ID() + 1))
					r.Commit(e)
				}
				r.Barrier()
				want := uint64(n*(n+1)/2) - uint64(r.ID()+1)
				if g := got[r.ID()-first]; g != want {
					t.Errorf("rank %d received sum %d, want %d", r.ID(), g, want)
				}
				if s := ygm.AllReduceSum(r, uint64(r.ID()+1)); s != uint64(n*(n+1)/2) {
					t.Errorf("rank %d AllReduceSum = %d, want %d", r.ID(), s, n*(n+1)/2)
				}
				gathered := ygm.AllGather(r, uint64(r.ID()*10))
				for i, v := range gathered {
					if v != uint64(i*10) {
						t.Errorf("rank %d AllGather[%d] = %d, want %d", r.ID(), i, v, i*10)
					}
				}
				if b := ygm.Broadcast(r, uint64(r.ID()+100), 3); b != 103 {
					t.Errorf("rank %d Broadcast from 3 = %d, want 103", r.ID(), b)
				}
				ygm.Rendezvous(r)
			})
		}
	}

	// Both processes must register handlers and enter the region; run the
	// worker's side on its own goroutine, lockstep with the driver's.
	driverRegion := region(cl.World())
	workerRegion := region(wk.World())
	done := make(chan struct{})
	go func() {
		defer close(done)
		workerRegion()
	}()
	driverRegion()
	<-done

	// Orderly shutdown: worker serves, driver dismisses it.
	served := make(chan error, 1)
	go func() {
		served <- Serve(wk, Hooks[serialize.Unit, uint64]{}, nil)
	}()
	if err := cl.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := <-served; err != nil {
		t.Errorf("Serve: %v", err)
	}
}

// TestWorkerDeathMidRendezvous speaks the control protocol as a worker
// that dies after advertising unusable addresses: the coordinator must
// fail its Accept cleanly (no hang, no panic) and release its resources.
func TestWorkerDeathMidRendezvous(t *testing.T) {
	before := runtime.NumGoroutine()
	co, err := Listen(Config{Procs: 2, RanksPerProc: 2, Opts: tcpOpts(), Timeout: 15 * time.Second})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		conn, err := net.Dial("tcp", co.Addr())
		if err != nil {
			return
		}
		cc := newCtrlConn(conn)
		cc.send(&ctrlMsg{Kind: kJoin, Magic: joinMagic, Version: protoVersion})
		if _, err := cc.expect(kAssign); err != nil {
			return
		}
		// Bind listeners just long enough to learn addresses, then close
		// them before advertising — the addresses the coordinator will try
		// to dial are already dead, simulating a crash between advertising
		// and world construction.
		lns, addrs, err := listenLocal("", 2)
		if err != nil {
			return
		}
		for _, ln := range lns {
			ln.Close()
		}
		cc.send(&ctrlMsg{Kind: kAddrs, Addrs: addrs})
		cc.expect(kTable)
		conn.Close() // dead: never builds, never reports ready
	}()
	if _, err := co.Accept(); err == nil {
		t.Fatal("Accept succeeded despite the worker dying mid-rendezvous")
	}
	// Everything the coordinator started must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines leaked across failed rendezvous: %d before, %d after", before, g)
	}
}

// TestJoinVersionSkew: a worker from a different protocol generation is
// rejected with the typed error, before any world state exists.
func TestJoinVersionSkew(t *testing.T) {
	co, err := Listen(Config{Procs: 2, RanksPerProc: 1, Opts: tcpOpts(), Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		conn, err := net.Dial("tcp", co.Addr())
		if err != nil {
			return
		}
		cc := newCtrlConn(conn)
		cc.send(&ctrlMsg{Kind: kJoin, Magic: joinMagic, Version: protoVersion + 7})
		cc.recv() // wait for the rejection / close
		conn.Close()
	}()
	_, err = co.Accept()
	var verr *JoinVersionError
	if !errors.As(err, &verr) {
		t.Fatalf("Accept error = %v, want JoinVersionError", err)
	}
	if verr.Got != protoVersion+7 || verr.Want != protoVersion {
		t.Errorf("JoinVersionError = %+v", verr)
	}
}

func TestJoinBadMagic(t *testing.T) {
	co, err := Listen(Config{Procs: 2, RanksPerProc: 1, Opts: tcpOpts(), Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		conn, err := net.Dial("tcp", co.Addr())
		if err != nil {
			return
		}
		cc := newCtrlConn(conn)
		cc.send(&ctrlMsg{Kind: kJoin, Magic: "HTTP", Version: protoVersion})
		cc.recv()
		conn.Close()
	}()
	_, err = co.Accept()
	var merr *JoinMagicError
	if !errors.As(err, &merr) {
		t.Fatalf("Accept error = %v, want JoinMagicError", err)
	}
}
