package dist

import (
	"fmt"
	"net"
	"time"

	"tripoll/internal/ygm"
)

// Config describes the world a rendezvous assembles.
type Config struct {
	// Procs is the total process count, coordinator included; >= 2.
	Procs int
	// RanksPerProc is each process's contiguous rank span; the world has
	// Procs * RanksPerProc ranks.
	RanksPerProc int
	// ControlAddr is the coordinator's control listen address; empty
	// defaults to 127.0.0.1:0 (ephemeral; read it back from
	// Coordinator.Addr before launching workers).
	ControlAddr string
	// ListenAddr is this process's data-plane bind address, passed to the
	// ygm TCP transport; empty defaults to 127.0.0.1:0.
	ListenAddr string
	// Opts seeds the world's ygm options. The coordinator's values for
	// BufferBytes, PollEvery and GroupSize are dictated to every worker
	// (message batching must agree across processes for the equivalence
	// guarantees); Transport is forced to TCP.
	Opts ygm.Options
	// Timeout bounds the whole rendezvous (accepting workers, address
	// exchange, the ready/go round); zero means 60s. World construction
	// itself is additionally bounded by the ygm transport setup deadline.
	Timeout time.Duration
}

func (cfg *Config) timeout() time.Duration {
	if cfg.Timeout <= 0 {
		return defaultTimeout
	}
	return cfg.Timeout
}

// Coordinator is a bound control socket waiting for workers; split from
// Accept so the caller can learn the control address first and hand it to
// the worker processes it launches.
type Coordinator struct {
	cfg Config
	ln  net.Listener
}

// Listen validates cfg and binds the control socket.
func Listen(cfg Config) (*Coordinator, error) {
	if cfg.Procs < 2 {
		return nil, fmt.Errorf("dist: a multi-process world needs >= 2 processes, got %d", cfg.Procs)
	}
	if cfg.RanksPerProc < 1 {
		return nil, fmt.Errorf("dist: ranks per process must be >= 1, got %d", cfg.RanksPerProc)
	}
	addr := cfg.ControlAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: bind control socket on %q: %w", addr, err)
	}
	return &Coordinator{cfg: cfg, ln: ln}, nil
}

// Addr returns the bound control address workers should Join.
func (co *Coordinator) Addr() string { return co.ln.Addr().String() }

// Close abandons the rendezvous before Accept completes.
func (co *Coordinator) Close() error { return co.ln.Close() }

// Accept admits Procs-1 workers, runs the rendezvous, constructs the
// coordinator's world (ranks [0, RanksPerProc)) and returns the assembled
// cluster. The control listener is closed either way: membership is fixed
// at construction.
func (co *Coordinator) Accept() (c *Cluster, err error) {
	cfg := co.cfg
	perProc := cfg.RanksPerProc
	n := cfg.Procs * perProc
	deadline := time.Now().Add(cfg.timeout())
	defer co.ln.Close()

	if d, ok := co.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(deadline)
	}

	var workers []*ctrlConn
	var listeners []net.Listener
	var w *ygm.World
	defer func() {
		if err == nil {
			return
		}
		for _, cc := range workers {
			cc.close()
		}
		for _, ln := range listeners {
			ln.Close()
		}
		if w != nil {
			w.Close()
		}
	}()

	// Admit workers in connection order; the p-th to join owns ranks
	// [p*perProc, (p+1)*perProc).
	for p := 1; p < cfg.Procs; p++ {
		conn, aerr := co.ln.Accept()
		if aerr != nil {
			return nil, fmt.Errorf("dist: waiting for worker %d of %d: %w", p, cfg.Procs-1, aerr)
		}
		cc := newCtrlConn(conn)
		cc.setDeadline(deadline)
		workers = append(workers, cc)
		m, jerr := cc.expect(kJoin)
		if jerr != nil {
			return nil, fmt.Errorf("dist: worker %d join: %w", p, jerr)
		}
		if m.Magic != joinMagic {
			return nil, &JoinMagicError{Got: m.Magic}
		}
		if m.Version != protoVersion {
			return nil, &JoinVersionError{Got: m.Version, Want: protoVersion}
		}
		if err := cc.send(&ctrlMsg{
			Kind: kAssign, Proc: p, First: p * perProc, Count: perProc, World: n,
			Opts: WireOptions{BufferBytes: cfg.Opts.BufferBytes, PollEvery: cfg.Opts.PollEvery, GroupSize: cfg.Opts.GroupSize},
		}); err != nil {
			return nil, fmt.Errorf("dist: worker %d assign: %w", p, err)
		}
	}

	// Bind the local data listeners, collect every worker's, and publish
	// the full table. Binding before broadcasting guarantees every address
	// in the table accepts connections before anyone dials.
	var addrs []string
	listeners, addrs, err = listenLocal(cfg.ListenAddr, perProc)
	if err != nil {
		return nil, err
	}
	peers := make([]string, n)
	copy(peers[:perProc], addrs)
	for i, cc := range workers {
		m, aerr := cc.expect(kAddrs)
		if aerr != nil {
			return nil, fmt.Errorf("dist: worker %d addrs: %w", i+1, aerr)
		}
		if len(m.Addrs) != perProc {
			return nil, fmt.Errorf("dist: worker %d advertised %d listeners, want %d", i+1, len(m.Addrs), perProc)
		}
		copy(peers[(i+1)*perProc:], m.Addrs)
	}
	for i, cc := range workers {
		if serr := cc.send(&ctrlMsg{Kind: kTable, Addrs: peers}); serr != nil {
			return nil, fmt.Errorf("dist: worker %d table: %w", i+1, serr)
		}
	}

	// All processes now construct their worlds concurrently; the dials
	// and accepts of the full data mesh interleave across processes.
	opts := cfg.Opts
	opts.Transport = ygm.TransportTCP
	opts.ListenAddr = cfg.ListenAddr
	link := &coordLink{workers: workers, perProc: perProc, n: n}
	var werr error
	w, werr = ygm.NewDistWorld(n, opts, ygm.Topology{
		First: 0, Count: perProc, Peers: peers, Listeners: listeners, Link: link,
	})
	if werr == nil {
		listeners = nil // the world owns them now
	}

	// Ready/go: every process reports its construction outcome and learns
	// everyone else's, so either all hold a working world or all tear down.
	var failures []string
	if werr != nil {
		failures = append(failures, fmt.Sprintf("coordinator: %v", werr))
	}
	for i, cc := range workers {
		m, rerr := cc.expect(kReady)
		if rerr != nil {
			failures = append(failures, fmt.Sprintf("worker %d: %v", i+1, rerr))
			continue
		}
		if m.Err != "" {
			failures = append(failures, fmt.Sprintf("worker %d: %s", i+1, m.Err))
		}
	}
	verdict := ""
	if len(failures) > 0 {
		verdict = fmt.Sprintf("world construction failed: %v", failures)
	}
	for _, cc := range workers {
		cc.send(&ctrlMsg{Kind: kGo, Err: verdict})
	}
	if verdict != "" {
		return nil, fmt.Errorf("dist: %s", verdict)
	}
	for _, cc := range workers {
		cc.setDeadline(time.Time{})
	}
	return &Cluster{cfg: cfg, w: w, workers: workers, link: link}, nil
}

// Join connects to a coordinator at ctrlAddr, completes the rendezvous and
// returns the worker's view of the world. listenAddr is this process's
// data-plane bind address ("" = 127.0.0.1:0); timeout bounds the
// rendezvous (0 = 60s).
func Join(ctrlAddr, listenAddr string, timeout time.Duration) (wk *Worker, err error) {
	if timeout <= 0 {
		timeout = defaultTimeout
	}
	deadline := time.Now().Add(timeout)
	conn, err := net.DialTimeout("tcp", ctrlAddr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dist: dial coordinator %q: %w", ctrlAddr, err)
	}
	cc := newCtrlConn(conn)
	cc.setDeadline(deadline)
	var listeners []net.Listener
	var w *ygm.World
	defer func() {
		if err == nil {
			return
		}
		cc.close()
		for _, ln := range listeners {
			ln.Close()
		}
		if w != nil {
			w.Close()
		}
	}()

	if err := cc.send(&ctrlMsg{Kind: kJoin, Magic: joinMagic, Version: protoVersion}); err != nil {
		return nil, fmt.Errorf("dist: join: %w", err)
	}
	assign, err := cc.expect(kAssign)
	if err != nil {
		return nil, fmt.Errorf("dist: awaiting assignment: %w", err)
	}
	if assign.Count < 1 || assign.First < 0 || assign.First+assign.Count > assign.World {
		return nil, fmt.Errorf("dist: coordinator assigned invalid span [%d, %d) of %d",
			assign.First, assign.First+assign.Count, assign.World)
	}

	var addrs []string
	listeners, addrs, err = listenLocal(listenAddr, assign.Count)
	if err != nil {
		return nil, err
	}
	if err := cc.send(&ctrlMsg{Kind: kAddrs, Addrs: addrs}); err != nil {
		return nil, fmt.Errorf("dist: advertising listeners: %w", err)
	}
	table, err := cc.expect(kTable)
	if err != nil {
		return nil, fmt.Errorf("dist: awaiting peer table: %w", err)
	}
	if len(table.Addrs) != assign.World {
		return nil, fmt.Errorf("dist: peer table has %d entries, want %d", len(table.Addrs), assign.World)
	}

	wk = &Worker{
		cc:     cc,
		proc:   assign.Proc,
		first:  assign.First,
		count:  assign.Count,
		world:  assign.World,
		frames: make(chan frameOrErr, 1),
	}
	opts := ygm.Options{
		BufferBytes: assign.Opts.BufferBytes,
		PollEvery:   assign.Opts.PollEvery,
		GroupSize:   assign.Opts.GroupSize,
		Transport:   ygm.TransportTCP,
		ListenAddr:  listenAddr,
	}
	var werr error
	w, werr = ygm.NewDistWorld(assign.World, opts, ygm.Topology{
		First: assign.First, Count: assign.Count, Peers: table.Addrs,
		Listeners: listeners, Link: &workerLink{wk: wk},
	})
	if werr == nil {
		listeners = nil
	}
	ready := &ctrlMsg{Kind: kReady}
	if werr != nil {
		ready.Err = werr.Error()
	}
	if err := cc.send(ready); err != nil {
		return nil, fmt.Errorf("dist: reporting readiness: %w", err)
	}
	g, err := cc.expect(kGo)
	if err != nil {
		return nil, fmt.Errorf("dist: awaiting go: %w", err)
	}
	if g.Err != "" {
		return nil, fmt.Errorf("dist: %s", g.Err)
	}
	if werr != nil {
		// Can't happen without g.Err also set, but don't trust the wire.
		return nil, werr
	}
	cc.setDeadline(time.Time{})
	wk.w = w
	go wk.pump()
	return wk, nil
}
