// Package dist turns the ygm runtime's single-process world into a
// process-spanning one: a rendezvous protocol that assembles N OS
// processes into one World, a star-topology control plane implementing
// ygm.ProcLink, and a small job protocol that lets a driver process fan
// graph builds and fused traversals out to worker processes.
//
// # Roles
//
// One process is the coordinator (in tripolld terms, the driver): it
// binds a control socket with Listen, hands its address to the workers
// (via the launcher or an operator), and Accept assembles the world. Every
// other process calls Join with that address. Rank spans are uniform and
// contiguous: with P processes and R ranks per process, process p owns
// ranks [p·R, (p+1)·R), the coordinator being process 0. Data-plane
// traffic (ygm batches) flows directly between every pair of processes
// over the TCP transport; only control traffic (barrier syncs, quiescence
// votes, collective exchanges, jobs) passes through the coordinator.
//
// # Rendezvous
//
// Each worker dials the coordinator and the two run a five-step versioned
// sequence over length-prefixed gob frames:
//
//	worker → join    magic + protocol version
//	coord  → assign  process index, rank span, world size, ygm options
//	worker → addrs   the worker's bound data-plane listener addresses
//	coord  → table   the full rank→address table
//	worker → ready   world construction outcome
//	coord  → go      world construction outcome, all processes
//
// Both sides bind their data listeners before advertising (the transport
// adopts pre-bound listeners), so by the time the table is broadcast every
// advertised address accepts connections; the processes then construct
// their worlds concurrently, which wires the full data mesh. The ready/go
// exchange ensures either every process holds a working world or every
// process learns of the failure — a process that cannot build tears down,
// and the ygm transport's setup deadline unblocks the peers that were
// waiting on its dials.
//
// # Failure model
//
// Fail-stop, detected at interaction points: a worker that dies drops its
// TCP connections, which surfaces as an error on the next control-plane
// round (or data-plane read) and poisons the world in every surviving
// process — there is no membership change or recovery, matching the MPI
// original where a lost rank ends the job. A hung (not dead) process is
// not detected after setup, also like MPI. The engine layer contains the
// damage on the driver: a poisoned parallel region fails the in-flight
// jobs, not the serving process.
package dist
