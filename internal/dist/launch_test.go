package dist

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"tripoll/internal/engine"
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// TestMain doubles this test binary as a worker process: when SelfLaunch
// re-executes it with the join env var set, it runs the production
// join/serve/SIGTERM path instead of the test suite — the same shape as
// cmd/tripoll-worker, so the launcher tests exercise real processes, real
// signals, and real exit codes.
func TestMain(m *testing.M) {
	if addr := JoinAddrFromEnv(); addr != "" {
		os.Exit(runTestWorker(addr))
	}
	os.Exit(m.Run())
}

func runTestWorker(addr string) int {
	wk, err := Join(addr, "127.0.0.1:0", 30*time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "test worker: join: %v\n", err)
		return 1
	}
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() { <-sig; close(stop) }()
	hooks := Hooks[U, uint64]{
		Registry:   engine.TemporalRegistry(),
		Timestamps: func(ts uint64) uint64 { return ts },
		Build: func(w *ygm.World, name string, spec BuildSpec) (*graph.DODGr[U, uint64], error) {
			return buildTemporalOrdered(w, nil, graph.Ordering(spec.Ordering)), nil
		},
	}
	if err := Serve(wk, hooks, stop); err != nil {
		fmt.Fprintf(os.Stderr, "test worker: serve: %v\n", err)
		return 1
	}
	return 0
}

// TestSigtermGracefulDrain is the end-to-end shutdown regression: a worker
// OS process launched through the real launcher joins the world, serves a
// build and a traversal, then receives SIGTERM — it must drain, send its
// leave frame, and exit 0 within the grace window.
func TestSigtermGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	co, err := Listen(Config{Procs: 2, RanksPerProc: 2, Opts: tcpOpts()})
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	procs, err := SelfLaunch(co.Addr(), 1)
	if err != nil {
		co.Close()
		t.Fatalf("SelfLaunch: %v", err)
	}
	defer KillAll(procs)
	cl, err := co.Accept()
	if err != nil {
		t.Fatalf("Accept: %v", err)
	}

	if err := cl.Build("g", BuildSpec{Ordering: int(graph.OrderDegree), Policy: "temporal"}); err != nil {
		t.Fatalf("Build broadcast: %v", err)
	}
	g := buildTemporalOrdered(cl.World(), randomTemporalEdges(11, 32, 90), graph.OrderDegree)
	e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
		Fanout:     cl,
	})
	defer e.Close()
	if err := e.Register("g", g); err != nil {
		t.Fatalf("register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job, err := e.Submit(ctx, engine.Spec{Graph: "g", Analysis: "count"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatalf("traversal across a launched worker process: %v", err)
	}
	t.Logf("cross-process count: %d triangles", res.Survey.Triangles)

	// The regression under test: SIGTERM → drain → deregister → exit 0.
	if err := StopAll(procs, 10*time.Second); err != nil {
		t.Fatalf("worker did not drain out cleanly on SIGTERM: %v", err)
	}
	cl.Close()
}
