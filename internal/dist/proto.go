package dist

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/serialize"
	"tripoll/internal/stats"
	"tripoll/internal/truss"
)

// Control-plane wire protocol: every frame is a gob-encoded ctrlMsg behind
// a 4-byte length prefix (serialize.WriteFrame). One message type with a
// kind tag keeps the codec trivial and lets a reader reject an unexpected
// frame with a protocol error instead of a gob decode failure.

const (
	// joinMagic/protoVersion version the control plane, independently of
	// the ygm data-plane hello (which has its own magic and version): the
	// two evolve separately, and a worker from a different build is
	// rejected at join time with a typed error before any world state
	// exists.
	joinMagic    = "TPDZ"
	protoVersion = 2 // v2: mutation jobs (stream/ingest/advance/mutdone/mat) and graph replicas

	// maxCtrlFrame bounds a control frame. Graph shards never cross the
	// control plane (the data mesh carries them); what does is specs,
	// quiescence votes, and collective payloads (analysis accumulators),
	// so a quarter gigabyte is already generous.
	maxCtrlFrame = 256 << 20

	defaultTimeout = 60 * time.Second
)

type kind uint8

const (
	kJoin kind = 1 + iota
	kAssign
	kAddrs
	kTable
	kReady
	kGo
	kSync
	kQuiesce
	kExchange
	kBuild
	kRun
	kStop
	kLeave
	// v2: the mutation path. kStream opens a worker's side of a durable
	// stream over a built graph; kIngest/kAdvance broadcast one logged
	// mutation (the collective apply follows immediately); kMutDone is the
	// worker's per-mutation acknowledgement — the commit phase; kMat asks
	// workers to re-materialize a stream's queryable snapshot.
	kStream
	kIngest
	kAdvance
	kMutDone
	kMat
)

func (k kind) String() string {
	names := [...]string{"invalid", "join", "assign", "addrs", "table", "ready",
		"go", "sync", "quiesce", "exchange", "build", "run", "stop", "leave",
		"stream", "ingest", "advance", "mutdone", "mat"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ErrWorkerLeft reports that a worker announced departure (SIGTERM drain)
// and the world can no longer run collectives.
var ErrWorkerLeft = errors.New("dist: worker left the world")

// errLinkDown reports a control connection whose read pump already
// delivered its terminal error to an earlier consumer.
var errLinkDown = errors.New("dist: control link is down")

// JoinMagicError reports a join frame from something that is not a tripoll
// worker at all.
type JoinMagicError struct{ Got string }

func (e *JoinMagicError) Error() string {
	return fmt.Sprintf("dist: join magic %q, want %q (not a tripoll worker?)", e.Got, joinMagic)
}

// JoinVersionError reports a worker built against a different control
// protocol version.
type JoinVersionError struct{ Got, Want uint16 }

func (e *JoinVersionError) Error() string {
	return fmt.Sprintf("dist: worker speaks control protocol v%d, coordinator wants v%d", e.Got, e.Want)
}

// ProtocolError reports a frame of the wrong kind for the current phase.
type ProtocolError struct{ Got, Want kind }

func (e *ProtocolError) Error() string {
	return fmt.Sprintf("dist: protocol error: got %v frame, want %v", e.Got, e.Want)
}

// WireOptions is the subset of ygm.Options the coordinator dictates to
// every process; transport is always TCP and ListenAddr stays per-process.
type WireOptions struct {
	BufferBytes int
	PollEvery   int
	GroupSize   int
}

// BuildSpec is the wire form of a graph-build job. Merge functions are not
// serializable, so the spec names a policy each worker binary maps back to
// code; driver and workers must agree on the mapping (they ship in the
// same binary or build).
type BuildSpec struct {
	// Ordering is the graph.Ordering value to build with.
	Ordering int
	// Policy names the builder configuration: codecs and the
	// MergeEdgeMeta reduction (e.g. "temporal" = uint64 timestamps merged
	// by min, the §5.2 reduction).
	Policy string
	// Replica/Replicas, when Replicas > 1, build one copy of a replicated
	// graph partitioned over the rank span [Replica*(n/Replicas), ...)
	// (graph.SpanPartition); the driver sends one build job per replica.
	Replica  int
	Replicas int
}

// RunSpec is the wire form of one fused traversal: the driver's post-cache
// admission group, already deduplicated, in leader order.
type RunSpec struct {
	Mode       int
	PullFactor float64
	// Replica selects which copy of a replicated graph to traverse; 0 for
	// plain graphs.
	Replica int
	Specs   []engine.Spec
}

// wireVal wraps one collective slot for gob: encoding/gob refuses nil
// interface values inside a slice, and untyped-nil slots are meaningful to
// the collectives (non-root Broadcast slots, non-leader AllGather parts).
type wireVal struct {
	Nil bool
	V   any
}

func wrapVals(vals []any) []wireVal {
	out := make([]wireVal, len(vals))
	for i, v := range vals {
		if v == nil {
			out[i].Nil = true
			continue
		}
		out[i].V = v
	}
	return out
}

func unwrapVals(ws []wireVal) []any {
	out := make([]any, len(ws))
	for i := range ws {
		if !ws[i].Nil {
			out[i] = ws[i].V
		}
	}
	return out
}

// ctrlMsg is the one frame shape; Kind selects which fields matter.
type ctrlMsg struct {
	Kind kind

	// join
	Magic   string
	Version uint16

	// assign
	Proc  int
	First int
	Count int
	World int
	Opts  WireOptions

	// addrs (worker's local listeners) / table (full rank→addr table)
	Addrs []string

	// ready / go / leave
	Err string

	// quiesce: worker → per-process contributions; coord → verdict
	Sent      int64
	Processed int64
	Quiet     bool

	// exchange: worker → local span's slots; coord → all n slots
	Vals []wireVal

	// jobs
	Graph string
	Build BuildSpec
	Run   RunSpec

	// mutation jobs (v2). stream: Policy names the worker's stream
	// configuration. ingest: Batch is the wal.EncodeBatch payload, Epoch
	// the record's WAL sequence number. advance: Cutoff + Epoch. mutdone
	// (worker → coord): Epoch echoes the mutation, Applied counts the
	// mutations this worker has applied in total, Err reports a failed
	// apply (shared field above).
	Policy  string
	Batch   []byte
	Epoch   uint64
	Cutoff  uint64
	Applied uint64
}

// The concrete types that cross the control plane inside collective slots
// (wireVal.V): every stock analysis accumulator and the scalar collective
// payloads. Programs whose analyses reduce custom types over a
// multi-process world must gob.Register those types themselves.
func init() {
	gob.Register(uint64(0))
	gob.Register(int64(0))
	gob.Register(int(0))
	gob.Register(uint32(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
	gob.Register([]uint64(nil))
	gob.Register([]string(nil))
	gob.Register(map[uint64]uint64(nil))
	gob.Register(map[core.EdgeKey]uint64(nil))
	gob.Register(map[core.DegreeTriple]uint64(nil))
	gob.Register(core.ClusteringAccum{})
	gob.Register(&stats.Joint2D{})
	gob.Register(&truss.Accum{})
}

// ctrlConn frames gob messages over one TCP connection. Sends are
// mutex-serialized (job broadcasts from the scheduler goroutine interleave
// with link-round replies from the ygm leader goroutine); reads have a
// single consumer at a time by protocol phase, so they are unlocked.
type ctrlConn struct {
	c   net.Conn
	br  *bufio.Reader
	wmu sync.Mutex
}

func newCtrlConn(c net.Conn) *ctrlConn {
	return &ctrlConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

func (cc *ctrlConn) send(m *ctrlMsg) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return fmt.Errorf("dist: encode %v frame: %w", m.Kind, err)
	}
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	return serialize.WriteFrame(cc.c, buf.Bytes())
}

func (cc *ctrlConn) recv() (*ctrlMsg, error) {
	payload, err := serialize.ReadFrame(cc.br, maxCtrlFrame)
	if err != nil {
		return nil, err
	}
	var m ctrlMsg
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("dist: decode control frame: %w", err)
	}
	return &m, nil
}

// expect receives one frame and demands its kind.
func (cc *ctrlConn) expect(k kind) (*ctrlMsg, error) {
	m, err := cc.recv()
	if err != nil {
		return nil, err
	}
	if m.Kind != k {
		return nil, &ProtocolError{Got: m.Kind, Want: k}
	}
	return m, nil
}

func (cc *ctrlConn) setDeadline(t time.Time) {
	cc.c.SetDeadline(t)
}

func (cc *ctrlConn) close() error { return cc.c.Close() }

// listenLocal binds count data-plane listeners on addr ("host:0" forms
// pick ephemeral ports) and returns them with their bound addresses,
// cleaning up on partial failure. The bound addresses go verbatim into the
// peer table every other process dials, so addr must carry a host its
// peers can reach: the empty default is loopback (single-machine), and a
// multi-machine deployment passes this machine's routable address.
// Unspecified hosts (":0", "0.0.0.0", "[::]") are rejected — they would
// bind fine here and then advertise an address nobody can dial.
func listenLocal(addr string, count int) ([]net.Listener, []string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	if err := checkAdvertisable(addr); err != nil {
		return nil, nil, err
	}
	lns := make([]net.Listener, 0, count)
	addrs := make([]string, 0, count)
	for i := 0; i < count; i++ {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, nil, fmt.Errorf("dist: bind data listener %d on %q: %w", i, addr, err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	return lns, addrs, nil
}

// checkAdvertisable rejects listen addresses whose host no peer could
// dial back.
func checkAdvertisable(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("dist: listen address %q: %w", addr, err)
	}
	if host == "" {
		return fmt.Errorf("dist: listen address %q has no host: peers dial the advertised address, so it must name this machine (e.g. 127.0.0.1:0 single-machine, or this host's routable address)", addr)
	}
	if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
		return fmt.Errorf("dist: listen address %q binds the unspecified host %s: peers dial the advertised address, so it must name this machine (e.g. 127.0.0.1:0 single-machine, or this host's routable address)", addr, host)
	}
	return nil
}
