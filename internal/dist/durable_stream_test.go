package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"tripoll/internal/core"
	"tripoll/internal/engine"
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// The acceptance property of the broadcast mutation seam (DESIGN.md §14):
// a durable stream served by an N≥2-process world — WAL driver-side,
// every ingest/advance broadcast for a collective apply, two-phase
// committed — produces byte-identical analyses to a single-process
// durable stream at EVERY epoch of the mutation history, including after
// killing the whole process group at a record boundary and recovering a
// fresh one from the log (the replay re-broadcast path).

// durableHooks is the worker side of the durable-stream configuration the
// tests drive: the exact Build/OpenStream mapping cmd/tripoll-worker ships
// for the "temporal" policy.
func durableHooks() Hooks[U, uint64] {
	return Hooks[U, uint64]{
		Registry:   engine.TemporalRegistry(),
		Timestamps: func(ts uint64) uint64 { return ts },
		Build: func(w *ygm.World, name string, spec BuildSpec) (*graph.DODGr[U, uint64], error) {
			return buildTemporalOrdered(w, nil, graph.Ordering(spec.Ordering)), nil
		},
		OpenStream: func(g *graph.DODGr[U, uint64], policy string) (*core.Stream[U, uint64], error) {
			if policy != "temporal" {
				return nil, fmt.Errorf("unknown stream policy %q", policy)
			}
			return core.OpenStream(g, core.StreamOptions[uint64]{MergeEdgeMeta: mergeMin}, core.TemporalPlan())
		},
	}
}

// durableWorld is one incarnation of the process group: cluster, serving
// workers, and a driver engine over a durable stream rooted at dir.
type durableWorld struct {
	cl     *Cluster
	e      *engine.Engine[U, uint64]
	served chan error
	nwk    int
}

// startDurableMulti assembles a procs×perProc world, runs the collective
// seed build, and opens the durable stream over dir — replaying (and
// re-broadcasting) whatever history dir already holds.
func startDurableMulti(t *testing.T, procs, perProc int, seedEdges []graph.TemporalEdge, dir string) *durableWorld {
	t.Helper()
	cl, wks := startCluster(t, procs, perProc, tcpOpts())
	served := make(chan error, len(wks))
	for _, wk := range wks {
		go func(wk *Worker) { served <- Serve(wk, durableHooks(), nil) }(wk)
	}
	if err := cl.Build("g", BuildSpec{Policy: "temporal"}); err != nil {
		t.Fatalf("Build broadcast: %v", err)
	}
	g := buildTemporalOrdered(cl.World(), seedEdges, graph.OrderDegree)
	e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
		Fanout:     cl,
		Mutator:    cl,
	})
	if _, _, err := e.OpenDurableStream("g", g,
		core.StreamOptions[uint64]{MergeEdgeMeta: mergeMin}, core.TemporalPlan(),
		engine.DurableOptions{Dir: dir, Policy: "temporal"}); err != nil {
		t.Fatalf("OpenDurableStream (multi): %v", err)
	}
	return &durableWorld{cl: cl, e: e, served: served, nwk: len(wks)}
}

// stop tears the incarnation down. The workers' in-memory streams die with
// it — from their perspective this IS a crash at a record boundary: the
// next incarnation's workers start blank and live entirely off the
// driver's WAL re-broadcast.
func (d *durableWorld) stop(t *testing.T) {
	t.Helper()
	d.e.Close()
	if err := d.cl.Close(); err != nil {
		t.Errorf("cluster close: %v", err)
	}
	for i := 0; i < d.nwk; i++ {
		if err := <-d.served; err != nil {
			t.Errorf("worker serve: %v", err)
		}
	}
}

// durableMutation is one step of the shared mutation script: an edge batch
// to ingest, or (batch nil) a watermark advance.
type durableMutation struct {
	batch  []graph.Edge[uint64]
	cutoff uint64
}

func applyDurable(t *testing.T, e *engine.Engine[U, uint64], m durableMutation) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var err error
	if m.batch != nil {
		_, err = e.Ingest(ctx, "g", m.batch)
	} else {
		_, err = e.Advance(ctx, "g", m.cutoff)
	}
	if err != nil {
		t.Fatalf("mutation %+v: %v", m, err)
	}
}

func TestCrossProcessDurableStream(t *testing.T) {
	const ranks = 4
	seedEdges := randomTemporalEdges(3, 40, 120)
	extra := randomTemporalEdges(4, 40, 36)
	specs := []engine.Spec{
		{Graph: "g", Analysis: "count"},
		{Graph: "g", Analysis: "closure", Delta: engine.Uint64(6)},
		{Graph: "g", Analysis: "cc"},
		{Graph: "g", Analysis: "edgecounts", Delta: engine.Uint64(10)},
	}
	// The script interleaves ingests (12 edges each) with advances; the
	// group is killed and recovered after step killAfter.
	var script []durableMutation
	for i := 0; i < len(extra); i += 12 {
		b := make([]graph.Edge[uint64], 0, 12)
		for _, e := range extra[i : i+12] {
			b = append(b, graph.Edge[uint64]{U: e.U, V: e.V, Meta: e.Time})
		}
		script = append(script, durableMutation{batch: b})
		script = append(script, durableMutation{cutoff: uint64(4 * (i/12 + 1))})
	}
	const killAfter = 3

	// Single-process reference: same seed, same script, its own WAL.
	refW, err := ygm.NewWorld(ranks, tcpOpts())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	defer refW.Close()
	ref := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
		Timestamps: func(ts uint64) uint64 { return ts },
	})
	defer ref.Close()
	if _, _, err := ref.OpenDurableStream("g", buildTemporalOrdered(refW, seedEdges, graph.OrderDegree),
		core.StreamOptions[uint64]{MergeEdgeMeta: mergeMin}, core.TemporalPlan(),
		engine.DurableOptions{Dir: t.TempDir(), Policy: "temporal"}); err != nil {
		t.Fatalf("OpenDurableStream (ref): %v", err)
	}

	// Byte counts are excluded from this comparison (unlike the static
	// equivalence test): a message's handler-id varint width depends on how
	// many handlers its world has registered over its lifetime, and the
	// never-restarted reference accumulates registrations the recovered
	// group does not. Message counts and canonical values remain exact.
	stripBytes := func(a answer) answer {
		for i := range a.Traffic {
			a.Traffic[i][1] = 0
		}
		return a
	}
	check := func(step string, multi *durableWorld) {
		t.Helper()
		re, _ := ref.Epoch("g")
		me, _ := multi.e.Epoch("g")
		if re != me {
			t.Fatalf("%s: epoch diverged: ref=%d multi=%d", step, re, me)
		}
		want := submitAll(t, ref, specs)
		got := submitAll(t, multi.e, specs)
		for i := range specs {
			if stripBytes(want[i]) != stripBytes(got[i]) {
				t.Errorf("%s: spec %q diverged at epoch %d:\n  1-process: %+v\n  %d-process: %+v",
					step, specs[i].Analysis, re, want[i], 2, got[i])
			}
		}
	}

	dir := t.TempDir()
	multi := startDurableMulti(t, 2, ranks/2, seedEdges, dir)
	check("seed", multi)
	for i, m := range script[:killAfter] {
		applyDurable(t, ref, m)
		applyDurable(t, multi.e, m)
		check(fmt.Sprintf("step %d", i), multi)
	}

	// Kill the whole group at the record boundary and recover a fresh one
	// from the WAL: the replay must re-broadcast every logged mutation to
	// the new (blank) workers before serving.
	multi.stop(t)
	multi = startDurableMulti(t, 2, ranks/2, seedEdges, dir)
	defer multi.stop(t)
	st, ok := multi.e.DurableStatus("g")
	if !ok {
		t.Fatal("no durable status after recovery")
	}
	if st.ReplayRebroadcasts != killAfter {
		t.Errorf("replay re-broadcasts = %d, want %d", st.ReplayRebroadcasts, killAfter)
	}
	check("recovered", multi)

	// The recovered group keeps accepting the rest of the script in
	// lockstep with the never-restarted reference.
	for i, m := range script[killAfter:] {
		applyDurable(t, ref, m)
		applyDurable(t, multi.e, m)
		check(fmt.Sprintf("post-recovery step %d", i), multi)
	}
}

// TestWorkerDeathMidMutation: a worker that leaves or dies between a
// mutation's collective apply and its acknowledgement must fail the
// mutation with a typed error — never hang the driver's scheduler.
func TestWorkerDeathMidMutation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		leave bool // kLeave before closing vs raw connection death
	}{
		{name: "leave", leave: true},
		{name: "die", leave: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl, wks := startCluster(t, 2, 1, tcpOpts())
			wk := wks[0]
			hooks := durableHooks()
			// A hand-rolled serve loop: correct through the build and the
			// stream open, enters the first mutation's collective apply in
			// lockstep (the driver's own apply needs the whole world) — and
			// then departs without ever acknowledging it.
			wkErr := make(chan error, 1)
			go func() {
				var g *graph.DODGr[U, uint64]
				var s *core.Stream[U, uint64]
				var err error
				for fe := range wk.frames {
					if fe.err != nil {
						wkErr <- fmt.Errorf("link: %w", fe.err)
						return
					}
					m := fe.m
					switch m.Kind {
					case kBuild:
						if g, err = hooks.Build(wk.w, m.Graph, m.Build); err != nil {
							wkErr <- fmt.Errorf("build: %w", err)
							return
						}
					case kStream:
						if s, err = hooks.OpenStream(g, m.Policy); err != nil {
							wkErr <- fmt.Errorf("stream: %w", err)
							return
						}
					case kIngest:
						applyMutation(s, g, m)
						if tc.leave {
							wk.cc.send(&ctrlMsg{Kind: kLeave})
						}
						wk.cc.close()
						wkErr <- nil
						return
					default:
						wkErr <- fmt.Errorf("unexpected %v frame", m.Kind)
						return
					}
				}
			}()

			if err := cl.Build("g", BuildSpec{Policy: "temporal"}); err != nil {
				t.Fatalf("Build broadcast: %v", err)
			}
			g := buildTemporalOrdered(cl.World(), randomTemporalEdges(9, 24, 60), graph.OrderDegree)
			e := engine.New(engine.TemporalRegistry(), engine.EngineOptions[uint64]{
				Timestamps: func(ts uint64) uint64 { return ts },
				Fanout:     cl,
				Mutator:    cl,
			})
			defer e.Close()
			if _, _, err := e.OpenDurableStream("g", g,
				core.StreamOptions[uint64]{MergeEdgeMeta: mergeMin}, core.TemporalPlan(),
				engine.DurableOptions{Dir: t.TempDir(), Policy: "temporal"}); err != nil {
				t.Fatalf("OpenDurableStream: %v", err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			done := make(chan error, 1)
			go func() {
				_, err := e.Ingest(ctx, "g", []graph.Edge[uint64]{{U: 1, V: 2, Meta: 3}})
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("ingest succeeded with a worker dead mid-mutation")
				}
				if tc.leave {
					if !errors.Is(err, ErrWorkerLeft) {
						t.Errorf("error = %v, want wrapping ErrWorkerLeft", err)
					}
				} else if !strings.Contains(err.Error(), "mutation ack") {
					t.Errorf("error = %v, want a mutation-ack failure", err)
				}
			case <-time.After(25 * time.Second):
				t.Fatal("ingest hung on a dead worker instead of failing")
			}
			if err := <-wkErr; err != nil {
				t.Errorf("fake worker: %v", err)
			}
			cl.Close()
			wk.w.Close()
		})
	}
}

// TestCheckAdvertisable pins the -listen/-rendezvous validation: hosts no
// peer could dial back are rejected with an actionable error before any
// listener binds (S1 of PR 9).
func TestCheckAdvertisable(t *testing.T) {
	for _, addr := range []string{"127.0.0.1:0", "localhost:9000", "192.168.1.5:0", "[::1]:0", "node7.cluster:8372"} {
		if err := checkAdvertisable(addr); err != nil {
			t.Errorf("checkAdvertisable(%q) = %v, want nil", addr, err)
		}
	}
	for _, addr := range []string{":0", "0.0.0.0:0", "[::]:0", "no-port", ""} {
		if err := checkAdvertisable(addr); err == nil {
			t.Errorf("checkAdvertisable(%q) = nil, want error", addr)
		} else if addr == ":0" && !strings.Contains(err.Error(), "advertised") {
			t.Errorf("checkAdvertisable(%q) error %q does not explain advertising", addr, err)
		}
	}
	// The empty default of listenLocal stays loopback (and therefore legal).
	lns, addrs, err := listenLocal("", 1)
	if err != nil {
		t.Fatalf("listenLocal default: %v", err)
	}
	for _, ln := range lns {
		ln.Close()
	}
	if !strings.HasPrefix(addrs[0], "127.0.0.1:") {
		t.Errorf("default listen address = %q, want loopback", addrs[0])
	}
}
