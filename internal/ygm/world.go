package ygm

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"tripoll/internal/serialize"
)

// HandlerID names a registered remote procedure. Registration order is
// deterministic and shared by all ranks, mirroring how YGM resolves lambda
// offsets across address spaces.
type HandlerID uint32

// Handler is the procedure executed at the destination rank. It runs on the
// destination rank's goroutine; it may freely touch that rank's local state
// and may send further async messages, but must not call Barrier.
type Handler func(r *Rank, d *serialize.Decoder)

// TransportKind selects how batches move between ranks.
type TransportKind int

const (
	// TransportChannel moves batches through in-memory mailboxes.
	TransportChannel TransportKind = iota
	// TransportTCP moves batches through loopback TCP sockets.
	TransportTCP
)

func (k TransportKind) String() string {
	switch k {
	case TransportChannel:
		return "channel"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// Options configures a World.
type Options struct {
	// BufferBytes is the per-destination flush threshold (§4.1.1). Batches
	// are sent when they exceed this size or at a flush point.
	BufferBytes int
	// Transport selects the batch transport.
	Transport TransportKind
	// PollEvery processes pending inbound batches after this many Async
	// calls, bounding mailbox growth while a rank is send-heavy. Zero uses
	// the default.
	PollEvery int
	// GroupSize enables node-level message aggregation (§5.4's remedy):
	// ranks are grouped into simulated compute nodes of this many
	// consecutive ranks, and inter-group messages are relayed through a
	// gateway rank in the destination group so each sender keeps one
	// buffer per remote group instead of one per remote rank. 0 or 1
	// disables grouping.
	GroupSize int
	// CopyEncode switches Rank.Begin/Commit to the pre-zero-copy reference
	// discipline: payloads are built in pooled standalone encoders and
	// copied behind their length prefix. The wire bytes, message counts and
	// results are identical to the zero-copy path by construction — the
	// property the encode-identity tests verify — so this knob exists only
	// for those differential tests and for alloc/time ablations.
	CopyEncode bool
	// ListenAddr is the host:port the TCP transport listens on, one
	// listener per local rank (":0" forms pick ephemeral ports; the bound
	// addresses are surfaced by World.ListenAddrs). Empty defaults to
	// "127.0.0.1:0", the historical single-process loopback.
	ListenAddr string
}

// ProcLink bridges the local process's share of a world to the other
// processes of a multi-process world. The three operations mirror the three
// global synchronization needs of the runtime: Sync backs Rendezvous,
// Quiesce backs the Barrier's termination verdict (callers pass their
// process-local sent/processed totals and get the global verdict), and
// Exchange backs the collectives (callers pass their local ranks'
// contribution slots, in rank order, and get the full world's slot array).
//
// Only the process leader rank calls into the link, and every process's
// leader calls the same operation in the same order (the SPMD discipline
// collectives already demand), so implementations may be strict
// request/response protocols with no demultiplexing.
type ProcLink interface {
	Sync() error
	Quiesce(sent, processed int64) (quiet bool, err error)
	Exchange(local []any) ([]any, error)
}

// Topology describes one process's slice of a multi-process world: which
// contiguous rank span is local, where every rank in the world listens,
// pre-bound listeners for the local span (in rank order; the transport
// takes ownership), and the control-plane link to the peer processes.
type Topology struct {
	First int
	Count int
	// Peers maps every rank to its dial address. Entries for local ranks
	// must match the corresponding Listeners' bound addresses.
	Peers []string
	// Listeners are the local span's pre-bound listeners (one per local
	// rank, rank order). Binding before world construction is what lets a
	// rendezvous advertise addresses first and build the world second.
	Listeners []net.Listener
	// Link is the cross-process control plane.
	Link ProcLink
}

const (
	defaultBufferBytes = 64 << 10
	defaultPollEvery   = 512
)

// World is the communicator: a fixed set of ranks plus the handler registry
// and the shared machinery for barriers and collectives.
//
// A world is either single-process (every rank is a local goroutine — the
// historical simulated-MPI mode) or one process's view of a multi-process
// world built by NewDistWorld: ranks [first, first+local) run here, the
// rest run in peer processes reached through the TCP transport, and the
// barrier/collective machinery splices in a ProcLink round wherever global
// agreement is needed.
type World struct {
	n     int
	opts  Options
	ranks []*Rank

	// Multi-process span: local ranks are [first, first+local). In a
	// single-process world first is 0, local is n and link is nil.
	first     int
	local     int
	link      ProcLink
	distQuiet bool // leader-written verdict of the last link Quiesce round

	mu           sync.Mutex
	handlers     []Handler
	handlerNames []string
	inRegion     atomic.Bool

	// Message counters for termination detection, sharded per rank (each
	// rank touches only its own cache line; the barrier sums them at a
	// point where they are provably stable).
	slots []counterSlot

	barrier *cyclicBarrier
	shared  []any // collective exchange slots, one per rank

	batchPool sync.Pool
	boxPool   sync.Pool // spare *[]byte headers so putBatch never re-boxes
	transport transport
	hForward  HandlerID

	failed   atomic.Bool
	failedMu sync.Mutex
	failure  any
}

// NewWorld creates a single-process communicator with n ranks. n must be
// at least 1.
func NewWorld(n int, opts Options) (*World, error) {
	return newWorld(n, opts, nil)
}

// NewDistWorld creates this process's view of a multi-process world of n
// ranks. The topology's local span, peer table, pre-bound listeners and
// process link come from a rendezvous (see internal/dist). The transport
// must be TCP: remote ranks are only reachable through sockets.
//
// Collectives on a distributed world move their contributions between
// processes with encoding/gob, so any value type handed to AllReduce,
// AllGather or Broadcast must be gob-encodable (and registered with
// gob.Register when passed through an interface).
func NewDistWorld(n int, opts Options, topo Topology) (*World, error) {
	if topo.First < 0 || topo.Count < 1 || topo.First+topo.Count > n {
		return nil, fmt.Errorf("ygm: local span [%d, %d) outside world of %d", topo.First, topo.First+topo.Count, n)
	}
	if topo.Count < n {
		if opts.Transport != TransportTCP {
			return nil, fmt.Errorf("ygm: a multi-process world requires the TCP transport, got %v", opts.Transport)
		}
		if len(topo.Peers) != n {
			return nil, fmt.Errorf("ygm: peer table has %d entries, want %d", len(topo.Peers), n)
		}
		if topo.Link == nil {
			return nil, fmt.Errorf("ygm: a multi-process world requires a process link")
		}
	}
	return newWorld(n, opts, &topo)
}

func newWorld(n int, opts Options, topo *Topology) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("ygm: world size must be >= 1, got %d", n)
	}
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = defaultBufferBytes
	}
	if opts.PollEvery <= 0 {
		opts.PollEvery = defaultPollEvery
	}
	first, local := 0, n
	var link ProcLink
	if topo != nil {
		first, local, link = topo.First, topo.Count, topo.Link
		if local == n {
			link = nil // a one-process "distributed" world degenerates cleanly
		}
	}
	w := &World{
		n:       n,
		opts:    opts,
		first:   first,
		local:   local,
		link:    link,
		barrier: newCyclicBarrier(local),
		shared:  make([]any, n),
		slots:   make([]counterSlot, n),
	}
	w.batchPool.New = func() any {
		b := make([]byte, 0, opts.BufferBytes+4<<10)
		return &b
	}
	if opts.GroupSize < 0 {
		return nil, fmt.Errorf("ygm: negative group size %d", opts.GroupSize)
	}
	if opts.GroupSize > n {
		opts.GroupSize = n // one group spanning the world: no relaying
	}
	w.opts = opts
	w.ranks = make([]*Rank, n)
	for i := 0; i < n; i++ {
		w.ranks[i] = newRank(w, i)
	}
	// The relay handler always occupies id 0 so handler ids are stable
	// whether or not grouping is enabled.
	w.hForward = w.RegisterHandler(w.forwardHandler)
	switch opts.Transport {
	case TransportChannel:
		if w.Distributed() {
			return nil, fmt.Errorf("ygm: channel transport cannot span processes")
		}
		w.transport = newChannelTransport(w)
	case TransportTCP:
		tr, err := newTCPTransport(w, topo)
		if err != nil {
			return nil, fmt.Errorf("ygm: tcp transport: %w", err)
		}
		w.transport = tr
	default:
		return nil, fmt.Errorf("ygm: unknown transport %v", opts.Transport)
	}
	return w, nil
}

// MustWorld is NewWorld that panics on error; convenient in tests and
// examples.
func MustWorld(n int, opts Options) *World {
	w, err := NewWorld(n, opts)
	if err != nil {
		panic(err)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// LocalSpan returns the contiguous rank span hosted by this process. In a
// single-process world it is (0, Size).
func (w *World) LocalSpan() (first, count int) { return w.first, w.local }

// LeaderID returns the lowest local rank — the rank that creates and
// publishes process-shared objects. Code that historically gated shared
// construction on rank 0 must gate on the leader instead so every process
// of a multi-process world builds its own copy. In a single-process world
// the leader is rank 0, preserving the historical behavior exactly.
func (w *World) LeaderID() int { return w.first }

// Local reports whether rank id runs in this process.
func (w *World) Local(id int) bool { return id >= w.first && id < w.first+w.local }

// Distributed reports whether this world spans more than one OS process.
func (w *World) Distributed() bool { return w.link != nil }

// ListenAddrs returns the bound listener address of each local rank, in
// rank order. Only TCP-transport worlds have listeners; other transports
// return nil.
func (w *World) ListenAddrs() []string {
	if t, ok := w.transport.(*tcpTransport); ok {
		return append([]string(nil), t.addrs...)
	}
	return nil
}

// Options returns the options the world was created with.
func (w *World) Options() Options { return w.opts }

// Close releases transport resources (sockets for TCP). The world must not
// be used afterwards.
func (w *World) Close() error { return w.transport.close() }

// RegisterHandler adds a procedure to the registry and returns its id.
// Handlers must be registered outside parallel regions so every rank sees an
// identical registry.
func (w *World) RegisterHandler(h Handler) HandlerID {
	if w.inRegion.Load() {
		panic("ygm: RegisterHandler called inside a parallel region")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.handlers = append(w.handlers, h)
	return HandlerID(len(w.handlers) - 1)
}

// Parallel runs fn concurrently on every local rank (the SPMD region) and
// returns when all of them have finished. An implicit Barrier runs at the
// end of the region, so no message is left unprocessed when Parallel
// returns. In a multi-process world every process must enter the same
// regions in the same order; together they form one world-wide SPMD
// region, with the remote ranks executing in their own processes.
//
// If any rank panics, the barrier is poisoned so the remaining ranks unwind
// instead of deadlocking, and Parallel re-panics with the first failure.
func (w *World) Parallel(fn func(r *Rank)) {
	if w.inRegion.Swap(true) {
		panic("ygm: nested Parallel regions are not supported")
	}
	defer w.inRegion.Store(false)

	var wg sync.WaitGroup
	wg.Add(w.local)
	for i := w.first; i < w.first+w.local; i++ {
		r := w.ranks[i]
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if p == errWorldPoisoned {
						return // secondary failure from a poisoned barrier
					}
					w.recordFailure(fmt.Sprintf("ygm: rank %d panicked: %v", r.id, p))
				}
			}()
			fn(r)
			r.Barrier()
		}()
	}
	wg.Wait()
	if w.failed.Load() {
		w.failedMu.Lock()
		f := w.failure
		w.failed.Store(false)
		w.failure = nil
		w.failedMu.Unlock()
		w.barrier.reset()
		panic(f)
	}
}

// linkFail surfaces a process-link error on the leader rank's goroutine.
// The panic is recovered by Parallel, which poisons the barrier so the
// other local ranks unwind instead of deadlocking — the same failure
// discipline as any rank panic.
func (w *World) linkFail(err error) {
	panic(fmt.Errorf("ygm: process link: %w", err))
}

// syncRanks is the rendezvous primitive behind Rendezvous and the
// collectives' release phase. Single-process: one local barrier round.
// Multi-process: the local ranks rendezvous, the leader runs a link Sync
// round with the peer processes, and a second local round releases
// everyone — no rank on any process passes until all ranks everywhere
// have arrived.
func (w *World) syncRanks(r *Rank) {
	if w.link == nil {
		w.barrier.await()
		return
	}
	w.barrier.await()
	if r.id == w.first {
		if err := w.link.Sync(); err != nil {
			w.linkFail(err)
		}
	}
	w.barrier.await()
}

// gatherSlots completes a collective's exchange phase: callers have written
// their contribution into w.shared[r.id]; on return every slot in
// [0, Size) is populated on every process. Values crossing processes ride
// gob through the link.
func (w *World) gatherSlots(r *Rank) {
	w.barrier.await()
	if w.link == nil {
		return
	}
	if r.id == w.first {
		local := make([]any, w.local)
		copy(local, w.shared[w.first:w.first+w.local])
		full, err := w.link.Exchange(local)
		if err != nil {
			w.linkFail(err)
		}
		if len(full) != w.n {
			w.linkFail(fmt.Errorf("exchange returned %d slots, want %d", len(full), w.n))
		}
		copy(w.shared, full)
	}
	w.barrier.await()
}

// quiesceVerdict is the Barrier's global termination check: between its
// two rendezvous no rank sends or processes, so the sharded counters are
// stable and every rank — on every process — reads the same verdict. In a
// multi-process world each process leader contributes its local totals and
// the link's coordinator sums them; a message in flight between processes
// is counted by its sender but not yet by its receiver, so the verdict
// stays false until the wire drains.
func (w *World) quiesceVerdict(r *Rank) bool {
	w.barrier.await()
	if w.link == nil {
		quiet := w.totalSent() == w.totalProcessed()
		w.barrier.await()
		return quiet
	}
	if r.id == w.first {
		quiet, err := w.link.Quiesce(w.totalSent(), w.totalProcessed())
		if err != nil {
			w.linkFail(err)
		}
		w.distQuiet = quiet
	}
	w.barrier.await()
	return w.distQuiet
}

func (w *World) recordFailure(f any) {
	w.failedMu.Lock()
	if w.failure == nil {
		w.failure = f
	}
	w.failedMu.Unlock()
	w.failed.Store(true)
	w.barrier.poison()
}

// counterSlot holds one rank's contribution to the global sent/processed
// totals, padded so neighboring ranks never share a cache line.
type counterSlot struct {
	sent      atomic.Int64
	processed atomic.Int64
	_         [48]byte
}

func (w *World) totalSent() int64 {
	var s int64
	for i := range w.slots {
		s += w.slots[i].sent.Load()
	}
	return s
}

func (w *World) totalProcessed() int64 {
	var s int64
	for i := range w.slots {
		s += w.slots[i].processed.Load()
	}
	return s
}

// InFlight reports the number of injected-but-unprocessed messages. It is
// only stable outside parallel regions or between the two phases of a
// barrier round.
func (w *World) InFlight() int64 { return w.totalSent() - w.totalProcessed() }

// Stats aggregates per-rank communication statistics. Call it between
// parallel regions for a consistent snapshot.
func (w *World) Stats() Stats {
	var s Stats
	for _, r := range w.ranks {
		s.add(&r.stats)
	}
	s.MessagesSent = w.totalSent()
	s.MessagesProcessed = w.totalProcessed()
	return s
}

// TransportCounters returns the atomic-backed message counters — unlike
// Stats, safe to read concurrently with a running parallel region, which
// is what a monitoring endpoint needs (the full Stats reads per-rank
// counters and is only consistent between regions).
func (w *World) TransportCounters() (sent, processed int64) {
	return w.totalSent(), w.totalProcessed()
}

// ResetStats zeroes all per-rank counters. Experiments call this between
// phases to attribute communication volume per phase.
func (w *World) ResetStats() {
	for _, r := range w.ranks {
		r.stats = RankStats{}
	}
	for i := range w.slots {
		w.slots[i].sent.Store(0)
		w.slots[i].processed.Store(0)
	}
}

// Rank returns the rank object with the given id; useful for inspecting
// per-rank statistics after a region.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// getBatch and putBatch recycle both the byte buffers and the *[]byte
// headers that sync.Pool forces them through. Boxing with a fresh &b on
// every Put would heap-allocate a slice header per recycled batch — one
// allocation per frame on the TCP receive path — so emptied boxes park in
// boxPool (pointer-to-interface conversions are allocation-free) and are
// refilled on the next put.
func (w *World) getBatch() []byte {
	bp := w.batchPool.Get().(*[]byte)
	b := (*bp)[:0]
	*bp = nil
	w.boxPool.Put(bp)
	return b
}

func (w *World) putBatch(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp, _ := w.boxPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	*bp = b[:0]
	w.batchPool.Put(bp)
}
