package ygm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tripoll/internal/serialize"
)

// HandlerID names a registered remote procedure. Registration order is
// deterministic and shared by all ranks, mirroring how YGM resolves lambda
// offsets across address spaces.
type HandlerID uint32

// Handler is the procedure executed at the destination rank. It runs on the
// destination rank's goroutine; it may freely touch that rank's local state
// and may send further async messages, but must not call Barrier.
type Handler func(r *Rank, d *serialize.Decoder)

// TransportKind selects how batches move between ranks.
type TransportKind int

const (
	// TransportChannel moves batches through in-memory mailboxes.
	TransportChannel TransportKind = iota
	// TransportTCP moves batches through loopback TCP sockets.
	TransportTCP
)

func (k TransportKind) String() string {
	switch k {
	case TransportChannel:
		return "channel"
	case TransportTCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", int(k))
	}
}

// Options configures a World.
type Options struct {
	// BufferBytes is the per-destination flush threshold (§4.1.1). Batches
	// are sent when they exceed this size or at a flush point.
	BufferBytes int
	// Transport selects the batch transport.
	Transport TransportKind
	// PollEvery processes pending inbound batches after this many Async
	// calls, bounding mailbox growth while a rank is send-heavy. Zero uses
	// the default.
	PollEvery int
	// GroupSize enables node-level message aggregation (§5.4's remedy):
	// ranks are grouped into simulated compute nodes of this many
	// consecutive ranks, and inter-group messages are relayed through a
	// gateway rank in the destination group so each sender keeps one
	// buffer per remote group instead of one per remote rank. 0 or 1
	// disables grouping.
	GroupSize int
	// CopyEncode switches Rank.Begin/Commit to the pre-zero-copy reference
	// discipline: payloads are built in pooled standalone encoders and
	// copied behind their length prefix. The wire bytes, message counts and
	// results are identical to the zero-copy path by construction — the
	// property the encode-identity tests verify — so this knob exists only
	// for those differential tests and for alloc/time ablations.
	CopyEncode bool
}

const (
	defaultBufferBytes = 64 << 10
	defaultPollEvery   = 512
)

// World is the communicator: a fixed set of ranks plus the handler registry
// and the shared machinery for barriers and collectives.
type World struct {
	n     int
	opts  Options
	ranks []*Rank

	mu           sync.Mutex
	handlers     []Handler
	handlerNames []string
	inRegion     atomic.Bool

	// Message counters for termination detection, sharded per rank (each
	// rank touches only its own cache line; the barrier sums them at a
	// point where they are provably stable).
	slots []counterSlot

	barrier *cyclicBarrier
	shared  []any // collective exchange slots, one per rank

	batchPool sync.Pool
	boxPool   sync.Pool // spare *[]byte headers so putBatch never re-boxes
	transport transport
	hForward  HandlerID

	failed   atomic.Bool
	failedMu sync.Mutex
	failure  any
}

// NewWorld creates a communicator with n ranks. n must be at least 1.
func NewWorld(n int, opts Options) (*World, error) {
	if n < 1 {
		return nil, fmt.Errorf("ygm: world size must be >= 1, got %d", n)
	}
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = defaultBufferBytes
	}
	if opts.PollEvery <= 0 {
		opts.PollEvery = defaultPollEvery
	}
	w := &World{
		n:       n,
		opts:    opts,
		barrier: newCyclicBarrier(n),
		shared:  make([]any, n),
		slots:   make([]counterSlot, n),
	}
	w.batchPool.New = func() any {
		b := make([]byte, 0, opts.BufferBytes+4<<10)
		return &b
	}
	if opts.GroupSize < 0 {
		return nil, fmt.Errorf("ygm: negative group size %d", opts.GroupSize)
	}
	if opts.GroupSize > n {
		opts.GroupSize = n // one group spanning the world: no relaying
	}
	w.opts = opts
	w.ranks = make([]*Rank, n)
	for i := 0; i < n; i++ {
		w.ranks[i] = newRank(w, i)
	}
	// The relay handler always occupies id 0 so handler ids are stable
	// whether or not grouping is enabled.
	w.hForward = w.RegisterHandler(w.forwardHandler)
	switch opts.Transport {
	case TransportChannel:
		w.transport = newChannelTransport(w)
	case TransportTCP:
		tr, err := newTCPTransport(w)
		if err != nil {
			return nil, fmt.Errorf("ygm: tcp transport: %w", err)
		}
		w.transport = tr
	default:
		return nil, fmt.Errorf("ygm: unknown transport %v", opts.Transport)
	}
	return w, nil
}

// MustWorld is NewWorld that panics on error; convenient in tests and
// examples.
func MustWorld(n int, opts Options) *World {
	w, err := NewWorld(n, opts)
	if err != nil {
		panic(err)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Options returns the options the world was created with.
func (w *World) Options() Options { return w.opts }

// Close releases transport resources (sockets for TCP). The world must not
// be used afterwards.
func (w *World) Close() error { return w.transport.close() }

// RegisterHandler adds a procedure to the registry and returns its id.
// Handlers must be registered outside parallel regions so every rank sees an
// identical registry.
func (w *World) RegisterHandler(h Handler) HandlerID {
	if w.inRegion.Load() {
		panic("ygm: RegisterHandler called inside a parallel region")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.handlers = append(w.handlers, h)
	return HandlerID(len(w.handlers) - 1)
}

// Parallel runs fn concurrently on every rank (the SPMD region) and returns
// when all ranks have finished. An implicit Barrier runs at the end of the
// region, so no message is left unprocessed when Parallel returns.
//
// If any rank panics, the barrier is poisoned so the remaining ranks unwind
// instead of deadlocking, and Parallel re-panics with the first failure.
func (w *World) Parallel(fn func(r *Rank)) {
	if w.inRegion.Swap(true) {
		panic("ygm: nested Parallel regions are not supported")
	}
	defer w.inRegion.Store(false)

	var wg sync.WaitGroup
	wg.Add(w.n)
	for i := 0; i < w.n; i++ {
		r := w.ranks[i]
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if p == errWorldPoisoned {
						return // secondary failure from a poisoned barrier
					}
					w.recordFailure(fmt.Sprintf("ygm: rank %d panicked: %v", r.id, p))
				}
			}()
			fn(r)
			r.Barrier()
		}()
	}
	wg.Wait()
	if w.failed.Load() {
		w.failedMu.Lock()
		f := w.failure
		w.failed.Store(false)
		w.failure = nil
		w.failedMu.Unlock()
		w.barrier.reset()
		panic(f)
	}
}

func (w *World) recordFailure(f any) {
	w.failedMu.Lock()
	if w.failure == nil {
		w.failure = f
	}
	w.failedMu.Unlock()
	w.failed.Store(true)
	w.barrier.poison()
}

// counterSlot holds one rank's contribution to the global sent/processed
// totals, padded so neighboring ranks never share a cache line.
type counterSlot struct {
	sent      atomic.Int64
	processed atomic.Int64
	_         [48]byte
}

func (w *World) totalSent() int64 {
	var s int64
	for i := range w.slots {
		s += w.slots[i].sent.Load()
	}
	return s
}

func (w *World) totalProcessed() int64 {
	var s int64
	for i := range w.slots {
		s += w.slots[i].processed.Load()
	}
	return s
}

// InFlight reports the number of injected-but-unprocessed messages. It is
// only stable outside parallel regions or between the two phases of a
// barrier round.
func (w *World) InFlight() int64 { return w.totalSent() - w.totalProcessed() }

// Stats aggregates per-rank communication statistics. Call it between
// parallel regions for a consistent snapshot.
func (w *World) Stats() Stats {
	var s Stats
	for _, r := range w.ranks {
		s.add(&r.stats)
	}
	s.MessagesSent = w.totalSent()
	s.MessagesProcessed = w.totalProcessed()
	return s
}

// TransportCounters returns the atomic-backed message counters — unlike
// Stats, safe to read concurrently with a running parallel region, which
// is what a monitoring endpoint needs (the full Stats reads per-rank
// counters and is only consistent between regions).
func (w *World) TransportCounters() (sent, processed int64) {
	return w.totalSent(), w.totalProcessed()
}

// ResetStats zeroes all per-rank counters. Experiments call this between
// phases to attribute communication volume per phase.
func (w *World) ResetStats() {
	for _, r := range w.ranks {
		r.stats = RankStats{}
	}
	for i := range w.slots {
		w.slots[i].sent.Store(0)
		w.slots[i].processed.Store(0)
	}
}

// Rank returns the rank object with the given id; useful for inspecting
// per-rank statistics after a region.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// getBatch and putBatch recycle both the byte buffers and the *[]byte
// headers that sync.Pool forces them through. Boxing with a fresh &b on
// every Put would heap-allocate a slice header per recycled batch — one
// allocation per frame on the TCP receive path — so emptied boxes park in
// boxPool (pointer-to-interface conversions are allocation-free) and are
// refilled on the next put.
func (w *World) getBatch() []byte {
	bp := w.batchPool.Get().(*[]byte)
	b := (*bp)[:0]
	*bp = nil
	w.boxPool.Put(bp)
	return b
}

func (w *World) putBatch(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp, _ := w.boxPool.Get().(*[]byte)
	if bp == nil {
		bp = new([]byte)
	}
	*bp = b[:0]
	w.batchPool.Put(bp)
}
