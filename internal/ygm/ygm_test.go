package ygm

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"

	"tripoll/internal/serialize"
)

// runOnTransports runs the same scenario over both transports so every
// semantic test doubles as a transport-equivalence test.
func runOnTransports(t *testing.T, name string, fn func(t *testing.T, opts Options)) {
	t.Helper()
	for _, kind := range []TransportKind{TransportChannel, TransportTCP} {
		kind := kind
		t.Run(fmt.Sprintf("%s/%v", name, kind), func(t *testing.T) {
			fn(t, Options{Transport: kind})
		})
	}
}

func TestAllToAllDelivery(t *testing.T) {
	runOnTransports(t, "all2all", func(t *testing.T, opts Options) {
		const n, perPair = 4, 1000
		w := MustWorld(n, opts)
		defer w.Close()

		recv := make([]int64, n)
		sum := make([]uint64, n)
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			recv[r.ID()]++
			sum[r.ID()] += d.Uvarint()
			if d.Err() != nil {
				t.Error(d.Err())
			}
		})

		w.Parallel(func(r *Rank) {
			for dest := 0; dest < n; dest++ {
				for k := 0; k < perPair; k++ {
					e := r.Enc()
					e.PutUvarint(uint64(k))
					r.Async(dest, h, e)
				}
			}
		})

		wantSum := uint64(n * perPair * (perPair - 1) / 2)
		for i := 0; i < n; i++ {
			if recv[i] != n*perPair {
				t.Errorf("rank %d received %d, want %d", i, recv[i], n*perPair)
			}
			if sum[i] != wantSum {
				t.Errorf("rank %d sum %d, want %d", i, sum[i], wantSum)
			}
		}
		if got := w.InFlight(); got != 0 {
			t.Errorf("in flight after region = %d", got)
		}
	})
}

func TestBarrierWaitsForMessageChains(t *testing.T) {
	runOnTransports(t, "chains", func(t *testing.T, opts Options) {
		const n, depth = 4, 50
		w := MustWorld(n, opts)
		defer w.Close()

		var hops atomic.Int64
		var h HandlerID
		h = w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			ttl := d.Uvarint()
			hops.Add(1)
			if ttl > 0 {
				e := r.Enc()
				e.PutUvarint(ttl - 1)
				r.Async((r.ID()+1)%r.Size(), h, e)
			}
		})

		w.Parallel(func(r *Rank) {
			e := r.Enc()
			e.PutUvarint(depth)
			r.Async((r.ID()+1)%r.Size(), h, e)
			r.Barrier()
			// The chain spawned by every rank must be fully unwound before
			// Barrier returns anywhere.
			if got := hops.Load(); got != int64(n*(depth+1)) {
				t.Errorf("rank %d saw %d hops after barrier, want %d", r.ID(), got, n*(depth+1))
			}
		})
	})
}

func TestSelfSend(t *testing.T) {
	runOnTransports(t, "self", func(t *testing.T, opts Options) {
		w := MustWorld(3, opts)
		defer w.Close()
		got := make([]uint64, 3)
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			got[r.ID()] += d.Uvarint()
		})
		w.Parallel(func(r *Rank) {
			e := r.Enc()
			e.PutUvarint(uint64(r.ID() + 1))
			r.Async(r.ID(), h, e)
		})
		for i, g := range got {
			if g != uint64(i+1) {
				t.Errorf("rank %d self-send got %d", i, g)
			}
		}
	})
}

func TestSmallBufferForcesManyBatches(t *testing.T) {
	w := MustWorld(2, Options{BufferBytes: 16})
	defer w.Close()
	var recv atomic.Int64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		_ = d.String()
		recv.Add(1)
	})
	w.Parallel(func(r *Rank) {
		for k := 0; k < 500; k++ {
			e := r.Enc()
			e.PutString("payload string that exceeds the tiny buffer")
			r.Async(1-r.ID(), h, e)
		}
	})
	if recv.Load() != 1000 {
		t.Errorf("received %d, want 1000", recv.Load())
	}
	st := w.Stats()
	if st.BatchesSent < 900 {
		t.Errorf("expected ~1 batch per message with a 16B buffer, got %d batches", st.BatchesSent)
	}
}

func TestLargeBufferAggregates(t *testing.T) {
	w := MustWorld(2, Options{BufferBytes: 1 << 20})
	defer w.Close()
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { _ = d.Uvarint() })
	w.Parallel(func(r *Rank) {
		for k := 0; k < 1000; k++ {
			e := r.Enc()
			e.PutUvarint(uint64(k))
			r.Async(1-r.ID(), h, e)
		}
	})
	st := w.Stats()
	// 2000 tiny messages should travel in a handful of batches.
	if st.BatchesSent > 32 {
		t.Errorf("expected aggregation, got %d batches for %d msgs", st.BatchesSent, st.MessagesSent)
	}
	if st.MessagesSent != 2000 {
		t.Errorf("MessagesSent = %d", st.MessagesSent)
	}
}

func TestCollectives(t *testing.T) {
	w := MustWorld(5, Options{})
	defer w.Close()
	w.Parallel(func(r *Rank) {
		id := uint64(r.ID())
		if got := AllReduceSum(r, id+1); got != 15 {
			t.Errorf("AllReduceSum = %d, want 15", got)
		}
		if got := AllReduceMax(r, id); got != 4 {
			t.Errorf("AllReduceMax = %d, want 4", got)
		}
		g := AllGather(r, fmt.Sprintf("r%d", r.ID()))
		if len(g) != 5 || g[3] != "r3" {
			t.Errorf("AllGather = %v", g)
		}
		if got := Broadcast(r, id*100, 2); got != 200 {
			t.Errorf("Broadcast = %d, want 200", got)
		}
		min := AllReduce(r, int64(r.ID())-2, func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		})
		if min != -2 {
			t.Errorf("AllReduce min = %d", min)
		}
	})
}

func TestMultipleRegionsReuseWorld(t *testing.T) {
	w := MustWorld(3, Options{})
	defer w.Close()
	var total atomic.Int64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { total.Add(int64(d.Uvarint())) })
	for round := 1; round <= 4; round++ {
		w.Parallel(func(r *Rank) {
			e := r.Enc()
			e.PutUvarint(uint64(round))
			r.Async((r.ID()+1)%3, h, e)
		})
	}
	if total.Load() != 3*(1+2+3+4) {
		t.Errorf("total = %d", total.Load())
	}
}

func TestParallelPanicPropagates(t *testing.T) {
	w := MustWorld(4, Options{})
	defer w.Close()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic from Parallel")
		}
		if !strings.Contains(fmt.Sprint(p), "rank 2 panicked: boom") {
			t.Errorf("unexpected panic payload: %v", p)
		}
	}()
	w.Parallel(func(r *Rank) {
		if r.ID() == 2 {
			panic("boom")
		}
		r.Barrier() // other ranks park here; poisoning must release them
	})
}

func TestWorldUsableAfterPanic(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	func() {
		defer func() { _ = recover() }()
		w.Parallel(func(r *Rank) { panic("first") })
	}()
	// The world must be reusable for a clean region afterwards.
	ok := make([]bool, 2)
	w.Parallel(func(r *Rank) { ok[r.ID()] = true })
	if !ok[0] || !ok[1] {
		t.Error("world not reusable after failure")
	}
}

func TestRegisterHandlerInsideRegionPanics(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			w.RegisterHandler(func(*Rank, *serialize.Decoder) {})
		}
	})
}

func TestHandlerCannotCallBarrier(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		r.Barrier()
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when handler calls Barrier")
		}
	}()
	w.Parallel(func(r *Rank) {
		e := r.Enc()
		r.Async(1-r.ID(), h, e)
	})
}

func TestStatsResetAndDelta(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { _ = d.Uvarint() })
	send := func() {
		w.Parallel(func(r *Rank) {
			e := r.Enc()
			e.PutUvarint(7)
			r.Async(1-r.ID(), h, e)
		})
	}
	send()
	first := w.Stats()
	if first.BytesSent == 0 || first.MessagesSent != 2 {
		t.Fatalf("first stats: %+v", first)
	}
	send()
	delta := w.Stats().Sub(first)
	if delta.MessagesSent != 2 {
		t.Errorf("delta messages = %d", delta.MessagesSent)
	}
	w.ResetStats()
	if s := w.Stats(); s.BytesSent != 0 || s.MessagesSent != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
}

func TestEncoderPoolReuse(t *testing.T) {
	w := MustWorld(1, Options{})
	defer w.Close()
	w.Parallel(func(r *Rank) {
		e1 := r.Enc()
		r.ReleaseEnc(e1)
		e2 := r.Enc()
		if e1 != e2 {
			t.Error("expected encoder reuse from pool")
		}
		if e2.Len() != 0 {
			t.Error("pooled encoder not reset")
		}
		r.ReleaseEnc(e2)
	})
}

func TestHeterogeneousMessagesInterleave(t *testing.T) {
	// §4.1.2: messages with payloads of different types in arbitrary order.
	runOnTransports(t, "hetero", func(t *testing.T, opts Options) {
		w := MustWorld(3, opts)
		defer w.Close()
		var strSum atomic.Int64
		var numSum atomic.Int64
		hStr := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			strSum.Add(int64(len(d.String())))
		})
		hNum := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			numSum.Add(int64(d.Uvarint()) - d.Varint())
		})
		w.Parallel(func(r *Rank) {
			for k := 0; k < 100; k++ {
				e := r.Enc()
				e.PutString(strings.Repeat("x", k%7))
				r.Async(k%3, hStr, e)
				e = r.Enc()
				e.PutUvarint(uint64(k))
				e.PutVarint(int64(-k))
				r.Async((k+1)%3, hNum, e)
			}
		})
		// Per rank: Σ_{k=0..99} len = 14 full 0..6 cycles (294) plus k=98,99 → 0+1.
		if want := int64(3 * 295); strSum.Load() != want {
			t.Errorf("strSum = %d, want %d", strSum.Load(), want)
		}
		// Per message: uvarint(k) - varint(-k) = 2k; per rank Σ 2k = 9900.
		if want := int64(3 * 9900); numSum.Load() != want {
			t.Errorf("numSum = %d, want %d", numSum.Load(), want)
		}
	})
}

func TestRandomTrafficMatrixProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		w := MustWorld(n, Options{BufferBytes: 1 << uint(4+rng.Intn(10))})
		defer w.Close()
		want := make([][]int64, n)
		got := make([][]int64, n)
		for i := range want {
			want[i] = make([]int64, n)
			got[i] = make([]int64, n)
			for j := range want[i] {
				want[i][j] = int64(rng.Intn(200))
			}
		}
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			src := d.Uvarint()
			got[r.ID()][src]++
		})
		w.Parallel(func(r *Rank) {
			for j := 0; j < n; j++ {
				for k := int64(0); k < want[j][r.ID()]; k++ {
					e := r.Enc()
					e.PutUvarint(uint64(r.ID()))
					r.Async(j, h, e)
				}
			}
		})
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(0, Options{}); err == nil {
		t.Error("expected error for size 0")
	}
	if _, err := NewWorld(2, Options{Transport: TransportKind(99)}); err == nil {
		t.Error("expected error for unknown transport")
	}
}

func TestAsyncOutOfRangePanics(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			e := r.Enc()
			r.Async(5, 0, e)
		}
	})
}

func TestTransportKindString(t *testing.T) {
	if TransportChannel.String() != "channel" || TransportTCP.String() != "tcp" {
		t.Error("TransportKind.String")
	}
	if !strings.Contains(TransportKind(9).String(), "9") {
		t.Error("unknown TransportKind.String")
	}
}
