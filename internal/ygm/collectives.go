package ygm

// Collectives provide the small set of synchronous operations the paper's
// algorithms need around the asynchronous core: the All_Reduce of Alg. 2
// line 4, gathers for result collection, and broadcasts of configuration.
//
// All ranks must call a collective in the same order (standard SPMD
// discipline). Collectives must not be called from handlers.
//
// Within a process the ranks share an address space, so the implementation
// exchanges values through a slot array guarded by rendezvous. In a
// multi-process world the process leaders additionally run one link
// Exchange round so every process sees every slot (remote values ride gob
// — see NewDistWorld). Each rank then computes the reduction independently
// over the same slot order, so results are bit-identical across ranks and
// processes regardless of scheduling.

// AllReduce combines every rank's contribution with op and returns the
// result on all ranks. op must be associative; evaluation order is fixed
// (rank 0 upward) so non-commutative ops are still deterministic.
func AllReduce[T any](r *Rank, x T, op func(a, b T) T) T {
	w := r.world
	w.shared[r.id] = x
	w.gatherSlots(r)
	acc := w.shared[0].(T)
	for i := 1; i < w.n; i++ {
		acc = op(acc, w.shared[i].(T))
	}
	w.barrier.await()
	return acc
}

// AllReduceSum is AllReduce with addition for the common counter case.
func AllReduceSum(r *Rank, x uint64) uint64 {
	return AllReduce(r, x, func(a, b uint64) uint64 { return a + b })
}

// AllReduceMax returns the maximum across ranks.
func AllReduceMax(r *Rank, x uint64) uint64 {
	return AllReduce(r, x, func(a, b uint64) uint64 {
		if a > b {
			return a
		}
		return b
	})
}

// AllGather returns every rank's contribution, indexed by rank, on all
// ranks.
func AllGather[T any](r *Rank, x T) []T {
	w := r.world
	w.shared[r.id] = x
	w.gatherSlots(r)
	out := make([]T, w.n)
	for i := 0; i < w.n; i++ {
		// An any-typed gather may legitimately carry nil contributions
		// (e.g. non-leader ranks in a cross-process reduction); a bare
		// assertion would panic converting untyped nil even to `any`.
		if v := w.shared[i]; v != nil {
			out[i] = v.(T)
		}
	}
	w.barrier.await()
	return out
}

// Broadcast returns root's value on every rank. In a multi-process world
// only root's slot carries a value across the link; other ranks contribute
// nothing.
func Broadcast[T any](r *Rank, x T, root int) T {
	w := r.world
	if r.id == root {
		w.shared[root] = x
	} else if w.link != nil {
		// A distributed exchange ships every local slot; a stale value from
		// a previous collective must not ride along (it may not even be
		// gob-encodable).
		w.shared[r.id] = nil
	}
	w.gatherSlots(r)
	out := w.shared[root].(T)
	w.barrier.await()
	return out
}

// Rendezvous is a plain synchronization barrier with no quiescence
// semantics: it does not flush buffers or process messages. Use Barrier for
// the termination-detecting variant. In a multi-process world it
// synchronizes every rank of every process.
func Rendezvous(r *Rank) {
	r.world.syncRanks(r)
}
