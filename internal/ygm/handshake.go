package ygm

import (
	"encoding/binary"
	"fmt"
)

// The TCP transport's connection hello. Before PR 8 a dialer identified
// itself with a bare 4-byte rank id; a world spanning OS processes needs
// more: a magic so a stray client can't wedge a listener, a protocol
// version so mixed builds fail loudly instead of mis-framing, the world
// size so two rendezvous that disagree about N cannot half-connect, and
// both endpoint ranks so each accepted connection binds a (from, to) pair
// without trusting dial order.
//
// Layout (18 bytes, little-endian):
//
//	[0:4)   magic "TPYG"
//	[4:6)   protocol version (uint16)
//	[6:10)  world size (uint32)
//	[10:14) sender rank (uint32)
//	[14:18) destination rank (uint32)
const (
	helloMagic   = "TPYG"
	helloVersion = 1
	helloSize    = 4 + 2 + 4 + 4 + 4
)

// hello is the decoded connection preamble.
type hello struct {
	Version uint16
	World   uint32
	From    uint32
	To      uint32
}

// HelloMagicError reports a connection preamble that is not a ygm hello at
// all (wrong magic bytes).
type HelloMagicError struct {
	Got [4]byte
}

func (e *HelloMagicError) Error() string {
	return fmt.Sprintf("ygm: tcp hello: bad magic %q (want %q)", e.Got[:], helloMagic)
}

// HelloVersionError reports a protocol version skew between the dialer and
// the acceptor.
type HelloVersionError struct {
	Got, Want uint16
}

func (e *HelloVersionError) Error() string {
	return fmt.Sprintf("ygm: tcp hello: protocol version %d (want %d)", e.Got, e.Want)
}

// HelloTruncatedError reports a hello shorter than the fixed frame.
type HelloTruncatedError struct {
	Got int
}

func (e *HelloTruncatedError) Error() string {
	return fmt.Sprintf("ygm: tcp hello: truncated at %d bytes (want %d)", e.Got, helloSize)
}

// HelloWorldSizeError reports a dialer that believes in a different world
// size than the acceptor.
type HelloWorldSizeError struct {
	Got, Want uint32
}

func (e *HelloWorldSizeError) Error() string {
	return fmt.Sprintf("ygm: tcp hello: world size %d (want %d)", e.Got, e.Want)
}

// HelloRankError reports an out-of-range or mismatched rank pair.
type HelloRankError struct {
	From, To uint32
	World    uint32
	Reason   string
}

func (e *HelloRankError) Error() string {
	return fmt.Sprintf("ygm: tcp hello: rank pair (%d -> %d) in world of %d: %s", e.From, e.To, e.World, e.Reason)
}

// encodeHello writes the fixed-size preamble for a connection from rank
// `from` to rank `to` in a world of size `world`.
func encodeHello(world, from, to uint32) [helloSize]byte {
	var b [helloSize]byte
	copy(b[0:4], helloMagic)
	binary.LittleEndian.PutUint16(b[4:6], helloVersion)
	binary.LittleEndian.PutUint32(b[6:10], world)
	binary.LittleEndian.PutUint32(b[10:14], from)
	binary.LittleEndian.PutUint32(b[14:18], to)
	return b
}

// decodeHello parses and validates a connection preamble. Every failure is
// a typed error (never a panic), so the accept path can attribute setup
// failures precisely and fuzzing can assert robustness against byte soup.
// Validation order is magic, version, length, world, ranks: a stray client
// is reported as "not ygm" before anything else is believed.
func decodeHello(b []byte) (hello, error) {
	if len(b) >= 4 && string(b[0:4]) != helloMagic {
		var e HelloMagicError
		copy(e.Got[:], b[0:4])
		return hello{}, &e
	}
	if len(b) < helloSize {
		return hello{}, &HelloTruncatedError{Got: len(b)}
	}
	h := hello{
		Version: binary.LittleEndian.Uint16(b[4:6]),
		World:   binary.LittleEndian.Uint32(b[6:10]),
		From:    binary.LittleEndian.Uint32(b[10:14]),
		To:      binary.LittleEndian.Uint32(b[14:18]),
	}
	if h.Version != helloVersion {
		return hello{}, &HelloVersionError{Got: h.Version, Want: helloVersion}
	}
	return h, nil
}

// validateHello checks a decoded hello against the acceptor's view of the
// world: the expected size, the rank the listener serves, and range/self
// constraints on the sender.
func validateHello(h hello, world uint32, to int) error {
	if h.World != world {
		return &HelloWorldSizeError{Got: h.World, Want: world}
	}
	if h.To != uint32(to) {
		return &HelloRankError{From: h.From, To: h.To, World: world, Reason: fmt.Sprintf("dialed listener for rank %d", to)}
	}
	if h.From >= world {
		return &HelloRankError{From: h.From, To: h.To, World: world, Reason: "sender rank out of range"}
	}
	if h.From == h.To {
		return &HelloRankError{From: h.From, To: h.To, World: world, Reason: "self-dial (self-sends never cross the transport)"}
	}
	return nil
}
