package ygm

import (
	"sync/atomic"
	"testing"
	"time"

	"tripoll/internal/serialize"
)

// TestTCPZeroLengthFrameSkipped: a zero-length frame on the wire must not
// enqueue anything at the destination. Before the fix, the read loop cycled
// a pooled buffer through the mailbox for every frame including empty ones,
// so an idle-flush of an empty batch made the receiver spin on contentless
// wakeups. The frame itself must still be tolerated — the connection stays
// usable for real traffic afterwards.
func TestTCPZeroLengthFrameSkipped(t *testing.T) {
	w := MustWorld(2, Options{Transport: TransportTCP})
	defer w.Close()
	var got atomic.Uint64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		got.Add(d.Uvarint())
	})

	tr, ok := w.transport.(*tcpTransport)
	if !ok {
		t.Fatalf("transport is %T, want *tcpTransport", w.transport)
	}
	// Write an empty frame straight through the transport, outside any
	// parallel region, and give the reader goroutine time to consume it.
	tr.deliver(0, 1, w.getBatch())
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n := w.ranks[1].inbox.len(); n != 0 {
			t.Fatalf("zero-length frame enqueued %d batch(es) at the destination", n)
		}
		time.Sleep(5 * time.Millisecond)
		if time.Since(deadline.Add(-2*time.Second)) > 100*time.Millisecond {
			break // long enough: the frame has certainly been read
		}
	}
	if n := w.ranks[1].inbox.len(); n != 0 {
		t.Fatalf("zero-length frame enqueued %d batch(es) at the destination", n)
	}

	// The stream must still be framed correctly after the empty frame:
	// normal traffic decodes and is delivered.
	w.Parallel(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		for i := uint64(1); i <= 100; i++ {
			e := r.Begin(1, h)
			e.PutUvarint(i)
			r.Commit(e)
		}
	})
	if got.Load() != 100*101/2 {
		t.Fatalf("after zero-length frame: delivered sum %d, want %d", got.Load(), 100*101/2)
	}
}
