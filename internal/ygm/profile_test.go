package ygm

import (
	"strings"
	"testing"

	"tripoll/internal/serialize"
)

func TestHandlerProfiles(t *testing.T) {
	w := MustWorld(3, Options{})
	defer w.Close()
	hBig := w.RegisterHandlerNamed("big-payload", func(r *Rank, d *serialize.Decoder) {
		_ = d.String()
	})
	hSmall := w.RegisterHandlerNamed("small-payload", func(r *Rank, d *serialize.Decoder) {
		_ = d.Uvarint()
	})
	w.Parallel(func(r *Rank) {
		for k := 0; k < 50; k++ {
			e := r.Enc()
			e.PutString(strings.Repeat("x", 100))
			r.Async(k%3, hBig, e)
			e = r.Enc()
			e.PutUvarint(uint64(k))
			r.Async(k%3, hSmall, e)
		}
	})
	ps := w.HandlerProfiles()
	if len(ps) != 2 {
		t.Fatalf("profiles = %+v", ps)
	}
	// Sorted by bytes: big first.
	if ps[0].Name != "big-payload" || ps[1].Name != "small-payload" {
		t.Errorf("order/names: %+v", ps)
	}
	if ps[0].Messages != 150 || ps[1].Messages != 150 {
		t.Errorf("messages: %+v", ps)
	}
	if ps[0].Bytes <= ps[1].Bytes || ps[0].Bytes < 150*100 {
		t.Errorf("bytes: %+v", ps)
	}
	out := FormatProfiles(ps)
	if !strings.Contains(out, "big-payload") || !strings.Contains(out, "messages") {
		t.Errorf("FormatProfiles:\n%s", out)
	}
}

func TestHandlerNameFallbacks(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {})
	if name := w.HandlerName(h); !strings.Contains(name, "handler-") {
		t.Errorf("unnamed handler = %q", name)
	}
	if w.HandlerName(w.hForward) != "ygm.forward" {
		t.Errorf("forward handler = %q", w.HandlerName(w.hForward))
	}
}

func TestProfileCountsForwarding(t *testing.T) {
	w := MustWorld(4, Options{GroupSize: 2})
	defer w.Close()
	h := w.RegisterHandlerNamed("payload", func(r *Rank, d *serialize.Decoder) {})
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			for k := 0; k < 20; k++ {
				e := r.Enc()
				r.Async(3, h, e) // crosses group boundary → relayed
			}
		}
	})
	ps := w.HandlerProfiles()
	var sawForward, sawPayload bool
	for _, p := range ps {
		switch p.Name {
		case "ygm.forward":
			sawForward = p.Messages == 20
		case "payload":
			sawPayload = p.Messages == 20
		}
	}
	if !sawForward || !sawPayload {
		t.Errorf("profiles missing relay accounting: %+v", ps)
	}
}
