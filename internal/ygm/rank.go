package ygm

import (
	"tripoll/internal/serialize"
)

// Rank is one simulated MPI rank: an id, per-destination send buffers, a
// mailbox of inbound batches, and an encoder pool. All methods must be
// called from the goroutine executing this rank's portion of a parallel
// region (or from handlers running on that goroutine).
type Rank struct {
	world *World
	id    int

	out   [][]byte // per-destination batch under construction
	inbox inbox
	encs  []*serialize.Encoder // encoder free list
	dec   serialize.Decoder    // reused for message payloads
	frame serialize.Decoder    // reused for batch framing
	stats RankStats

	// Per-handler execution counts and payload bytes (profiling).
	hMsgs  []int64
	hBytes []int64

	processing   bool // reentrancy guard: a handler is running
	asyncCounter int  // Async calls since the last poll

	// Zero-copy message construction state (Begin/Commit).
	wire     serialize.Encoder // wraps the open destination batch buffer
	wireDest int               // routed destination of the open frame
	wireMark int               // frame mark of the open frame
	wireOpen bool              // a Begin without its Commit is in flight
	copyDest int               // CopyEncode reference path: final destination
	copyH    HandlerID         // CopyEncode reference path: handler
	copyEnc  *serialize.Encoder
}

func newRank(w *World, id int) *Rank {
	r := &Rank{world: w, id: id, out: make([][]byte, w.n)}
	r.inbox.init()
	return r
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.world.n }

// World returns the owning world.
func (r *Rank) World() *World { return r.world }

// Stats returns this rank's communication counters.
func (r *Rank) Stats() RankStats { return r.stats }

// Enc returns a pooled encoder, reset and ready for payload construction.
// It must be handed back through Async (which recycles it) or ReleaseEnc.
func (r *Rank) Enc() *serialize.Encoder {
	if n := len(r.encs); n > 0 {
		e := r.encs[n-1]
		r.encs = r.encs[:n-1]
		e.Reset()
		return e
	}
	return serialize.NewEncoder(256)
}

// ReleaseEnc returns an encoder to the pool without sending it.
func (r *Rank) ReleaseEnc(e *serialize.Encoder) { r.encs = append(r.encs, e) }

// Async queues a fire-and-forget RPC for execution at rank dest: handler h
// will run there with the encoder's payload as its argument stream. The
// encoder is consumed (recycled into the pool).
//
// Async may opportunistically process inbound messages to bound mailbox
// growth, so rank-local state shared with handlers must tolerate handler
// execution at Async call sites (the same progress semantics as YGM).
func (r *Rank) Async(dest int, h HandlerID, e *serialize.Encoder) {
	r.AsyncBytes(dest, h, e.Bytes())
	r.ReleaseEnc(e)
}

// AsyncBytes is Async for a pre-serialized payload.
func (r *Rank) AsyncBytes(dest int, h HandlerID, payload []byte) {
	if dest < 0 || dest >= r.world.n {
		panic("ygm: Async destination out of range")
	}
	if r.wireOpen {
		panic("ygm: Async while a Begin frame is open")
	}
	if gw, relay := r.world.routeVia(r.id, dest); relay {
		// Node-level aggregation: wrap for the destination group's gateway.
		e := r.Enc()
		e.PutUvarint(uint64(dest))
		e.PutUvarint(uint64(h))
		e.PutRaw(payload)
		wrapped := e.Bytes()
		r.enqueue(gw, r.world.hForward, wrapped)
		r.ReleaseEnc(e)
		return
	}
	r.enqueue(dest, h, payload)
}

// enqueue frames the message into dest's batch buffer and applies the
// flush and poll policies.
func (r *Rank) enqueue(dest int, h HandlerID, payload []byte) {
	buf := r.out[dest]
	if buf == nil {
		buf = r.world.getBatch()
	}
	var hdr [2 * 10]byte
	n := putUvarint(hdr[:0], uint64(h))
	n = putUvarint(n, uint64(len(payload)))
	buf = append(buf, n...)
	buf = append(buf, payload...)
	r.out[dest] = buf
	r.sent(dest, buf)
}

// sent applies the post-append bookkeeping shared by enqueue and Commit:
// termination-detection and stats counters, the flush threshold, and the
// poll cadence. buf is dest's batch buffer after the append.
func (r *Rank) sent(dest int, buf []byte) {
	r.world.slots[r.id].sent.Add(1)
	r.stats.MessagesSent++
	if len(buf) >= r.world.opts.BufferBytes {
		r.flushDest(dest)
	}
	r.asyncCounter++
	if r.asyncCounter >= r.world.opts.PollEvery {
		r.asyncCounter = 0
		r.Poll()
	}
}

// Begin opens a zero-copy message for handler h at rank dest: the returned
// encoder appends the payload directly into the destination's batch buffer
// (relayed messages write their forwarding wrapper the same way), so
// steady-state encoding allocates nothing and copies nothing. Every Begin
// must be paired with a Commit before any other send from this rank —
// Async, AsyncBytes or another Begin between the two panics, because the
// open frame owns the batch buffer's tail.
//
// Under Options.CopyEncode the message is built in a pooled standalone
// encoder and copied behind its length prefix on Commit instead — the
// pre-zero-copy discipline, kept as a byte-identical reference path for
// differential tests and ablations.
func (r *Rank) Begin(dest int, h HandlerID) *serialize.Encoder {
	if dest < 0 || dest >= r.world.n {
		panic("ygm: Begin destination out of range")
	}
	if r.wireOpen {
		panic("ygm: Begin while another frame is open")
	}
	if r.world.opts.CopyEncode {
		r.copyDest, r.copyH = dest, h
		r.copyEnc = r.Enc()
		r.wireOpen = true
		return r.copyEnc
	}
	route, hdr := dest, h
	relay := false
	if gw, rel := r.world.routeVia(r.id, dest); rel {
		route, hdr, relay = gw, r.world.hForward, true
	}
	buf := r.out[route]
	if buf == nil {
		buf = r.world.getBatch()
	}
	e := &r.wire
	e.SetBuf(buf)
	e.PutUvarint(uint64(hdr))
	r.wireDest = route
	r.wireOpen = true
	r.wireMark = e.BeginFrame()
	if relay {
		e.PutUvarint(uint64(dest))
		e.PutUvarint(uint64(h))
	}
	return e
}

// Commit seals a Begin frame: the length prefix is patched, the batch
// buffer is returned to the send queue, and the usual flush and poll
// policies run. e must be the encoder Begin returned.
func (r *Rank) Commit(e *serialize.Encoder) {
	if !r.wireOpen {
		panic("ygm: Commit without a matching Begin")
	}
	r.wireOpen = false
	if r.world.opts.CopyEncode {
		if e != r.copyEnc {
			panic("ygm: Commit of a foreign encoder")
		}
		r.copyEnc = nil
		r.AsyncBytes(r.copyDest, r.copyH, e.Bytes())
		r.ReleaseEnc(e)
		return
	}
	if e != &r.wire {
		panic("ygm: Commit of a foreign encoder")
	}
	e.EndFrame(r.wireMark)
	buf := e.TakeBuf()
	r.out[r.wireDest] = buf
	r.sent(r.wireDest, buf)
}

func putUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

// flushDest sends the batch under construction for dest, if any.
func (r *Rank) flushDest(dest int) {
	buf := r.out[dest]
	if len(buf) == 0 {
		return
	}
	r.out[dest] = nil
	r.stats.BatchesSent++
	r.stats.BytesSent += int64(len(buf))
	if r.world.group(dest) != r.world.group(r.id) {
		// Inter-group traffic: the "network" cost in the two-level model.
		r.stats.RemoteBatches++
		r.stats.RemoteBytes += int64(len(buf))
	}
	r.world.transport.deliver(r.id, dest, buf)
}

// FlushAll sends every partially filled batch.
func (r *Rank) FlushAll() {
	for dest := range r.out {
		r.flushDest(dest)
	}
}

// Poll processes all currently queued inbound batches without blocking.
// It is a no-op when called reentrantly from a handler.
func (r *Rank) Poll() {
	if r.processing {
		return
	}
	for r.drainOnce() {
	}
}

// drainOnce processes a single inbound batch; it reports whether one was
// available.
func (r *Rank) drainOnce() bool {
	batch, ok := r.inbox.tryPop()
	if !ok {
		return false
	}
	r.processBatch(batch)
	return true
}

func (r *Rank) processBatch(batch []byte) {
	r.processing = true
	defer func() { r.processing = false }()
	f := &r.frame
	f.Reset(batch)
	handlers := r.world.handlers
	for f.Remaining() > 0 {
		h := f.Uvarint()
		n := f.Uvarint()
		payload := f.Raw(int(n))
		if f.Err() != nil {
			panic("ygm: corrupt batch framing: " + f.Err().Error())
		}
		if h >= uint64(len(handlers)) {
			panic("ygm: message for unregistered handler")
		}
		// The r.processing guard prevents nested batch processing, so the
		// single per-rank payload decoder can be reused for every message.
		r.profile(h, len(payload))
		r.dec.Reset(payload)
		handlers[h](r, &r.dec)
		r.world.slots[r.id].processed.Add(1)
		r.stats.MessagesProcessed++
	}
	r.world.putBatch(batch)
}

// Barrier flushes all buffers and blocks until global quiescence: every
// message injected anywhere in the world — including messages spawned by
// handlers during the barrier — has been processed. This is the
// termination-detecting barrier of Alg. 1 line 6.
//
// All ranks must call Barrier collectively. Handlers must never call it.
func (r *Rank) Barrier() {
	if r.processing {
		panic("ygm: Barrier called from inside a handler")
	}
	w := r.world
	for {
		// Local quiescence: process everything available, flush what that
		// produced, repeat until nothing is queued locally.
		for {
			for r.drainOnce() {
			}
			r.FlushAll()
			if r.inbox.empty() {
				break
			}
		}
		// Global quiescence check: see quiesceVerdict. In a multi-process
		// world the verdict spans every process's counters, so a Barrier
		// returns only when the whole world — wires included — is quiet.
		if w.quiesceVerdict(r) {
			return
		}
	}
}
