package ygm

import "tripoll/internal/serialize"

// Node-level message aggregation — the remedy §5.4 of the paper proposes
// for strong-scaling collapse at thousands of ranks ("adding extra
// aggregation of messages at the level of compute nodes, similar to
// [34, 44]").
//
// With Options.GroupSize = g > 1, ranks are grouped into simulated
// "compute nodes" of g consecutive ranks. A message to a rank in another
// group is not sent directly: it is buffered toward a deterministic
// gateway rank inside the destination group and forwarded from there.
// All of a sender's traffic to one remote group therefore shares a single
// buffer, producing fewer, fuller inter-group batches — at the cost of one
// extra intra-group hop. Inter-group traffic (the "network" in the
// two-level model; intra-group stands for intra-node shared memory) is
// tracked separately in RankStats.RemoteBatches/RemoteBytes so the effect
// is measurable.

// group returns the node-group index of a rank.
func (w *World) group(rank int) int {
	if w.opts.GroupSize <= 1 {
		return rank
	}
	return rank / w.opts.GroupSize
}

// gatewayFor picks the rank inside dest's group that relays src's traffic.
// Spreading gateways by source rank balances forwarding load across the
// group's members.
func (w *World) gatewayFor(src, dest int) int {
	gs := w.opts.GroupSize
	start := (dest / gs) * gs
	size := gs
	if start+size > w.n {
		size = w.n - start
	}
	return start + src%size
}

// forwardHandler is registered at world construction (handler id 0 when
// grouping is enabled): it unwraps a relayed message and re-injects it for
// its final destination. Termination detection covers the extra hop
// automatically — the relay is processed, the re-injection is a new send.
func (w *World) forwardHandler(r *Rank, d *serialize.Decoder) {
	finalDest := int(d.Uvarint())
	h := HandlerID(d.Uvarint())
	payload := d.Raw(d.Remaining())
	if d.Err() != nil {
		panic("ygm: corrupt forwarded message: " + d.Err().Error())
	}
	r.stats.MessagesForwarded++
	r.AsyncBytes(finalDest, h, payload)
}

// routeVia reports whether a message from src to dest must be relayed, and
// through which gateway.
func (w *World) routeVia(src, dest int) (gateway int, relay bool) {
	if w.opts.GroupSize <= 1 || w.group(src) == w.group(dest) {
		return dest, false
	}
	gw := w.gatewayFor(src, dest)
	if gw == dest {
		return dest, false // the gateway is the destination; skip the wrap
	}
	return gw, true
}
