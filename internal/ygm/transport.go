package ygm

// transport moves a serialized batch from one rank's send buffer to another
// rank's mailbox. Ownership of the batch slice passes to the transport.
type transport interface {
	deliver(from, to int, batch []byte)
	close() error
}

// channelTransport hands batches directly to the destination mailbox. This
// is the fast in-memory path; it performs no copies, but the data still only
// crosses rank boundaries as serialized bytes, so message and byte counts
// are identical to a networked run.
type channelTransport struct {
	w *World
}

func newChannelTransport(w *World) *channelTransport { return &channelTransport{w: w} }

func (t *channelTransport) deliver(from, to int, batch []byte) {
	t.w.ranks[to].inbox.push(batch)
}

func (t *channelTransport) close() error { return nil }
