package ygm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpTransport routes every batch through a loopback TCP socket with
// uvarint length framing. It exists to demonstrate that the simulated-rank
// runtime is a faithful RPC port of the MPI original: the data path crosses
// a real network stack, only the failure model (single process) is shared.
//
// Topology: every rank owns a listener; every ordered pair (i, j) gets a
// dedicated connection dialed from i to j, written only by rank i's
// goroutine and drained by a reader goroutine that pushes frames into rank
// j's mailbox. Self-sends short-circuit to the mailbox.
//
// Lifecycle: every connection is registered (under mu) the moment it
// exists — dialed conns before their hello write, accepted conns before
// their hello read — so a mid-setup failure can close the lot exactly
// once, unblock every goroutine parked in Accept/ReadFull, and surface the
// root-cause error to the caller (close errors never mask it).
type tcpTransport struct {
	w         *World
	listeners []net.Listener
	writers   [][]*bufio.Writer
	hdrs      [][]byte // per-sender varint scratch; a stack hdr would escape into bufio.Write and cost one heap alloc per frame
	readersWG sync.WaitGroup

	mu     sync.Mutex
	conns  []net.Conn // all connections, for teardown
	closed bool       // set by close(); late registrations are closed on the spot

	closeOnce sync.Once
	closeErr  error
}

// tcpDialHook lets lifecycle tests inject a dial failure for a specific
// (from, to) pair; nil outside tests.
var tcpDialHook func(from, to int) error

func (t *tcpTransport) registerConn(c net.Conn) {
	t.mu.Lock()
	if t.closed {
		// Teardown already swept the registry: an accept that raced past
		// the listener close must not leak its connection.
		t.mu.Unlock()
		c.Close()
		return
	}
	t.conns = append(t.conns, c)
	t.mu.Unlock()
}

type tcpAccepted struct {
	to   int
	conn net.Conn
	from int
	err  error
}

func newTCPTransport(w *World) (*tcpTransport, error) {
	n := w.n
	t := &tcpTransport{
		w:         w,
		listeners: make([]net.Listener, n),
		writers:   make([][]*bufio.Writer, n),
		hdrs:      make([][]byte, n),
	}
	for i := range t.writers {
		t.writers[i] = make([]*bufio.Writer, n)
		t.hdrs[i] = make([]byte, binary.MaxVarintLen64)
	}
	for j := 0; j < n; j++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.close()
			return nil, err
		}
		t.listeners[j] = ln
	}
	// Accept loop per listener: the dialer identifies itself with a 4-byte
	// rank id so teardown and debugging can attribute connections. Accepted
	// conns are registered before the hello read, so an abort's close()
	// unblocks ReadFull and the goroutine exits; acceptWG lets the abort
	// path wait for that before draining the channel.
	acceptCh := make(chan tcpAccepted, n*n)
	var acceptWG sync.WaitGroup
	for j := 0; j < n; j++ {
		j := j
		acceptWG.Add(1)
		go func() {
			defer acceptWG.Done()
			for k := 0; k < n-1; k++ { // every rank but j dials in
				conn, err := t.listeners[j].Accept()
				if err != nil {
					acceptCh <- tcpAccepted{to: j, err: err}
					return
				}
				t.registerConn(conn)
				var hello [4]byte
				if _, err := io.ReadFull(conn, hello[:]); err != nil {
					acceptCh <- tcpAccepted{to: j, err: err}
					return
				}
				acceptCh <- tcpAccepted{to: j, conn: conn, from: int(binary.LittleEndian.Uint32(hello[:]))}
			}
		}()
	}
	// abort tears down a partially built transport: close everything
	// registered so far (which unblocks Accept and ReadFull), wait for the
	// accept goroutines, and drain their channel. The triggering error is
	// what the caller reports; nothing here can mask it.
	abort := func() {
		t.close()
		acceptWG.Wait()
		for {
			select {
			case <-acceptCh:
			default:
				return
			}
		}
	}
	// Dial all peers.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if tcpDialHook != nil {
				if err := tcpDialHook(i, j); err != nil {
					abort()
					return nil, err
				}
			}
			conn, err := net.Dial("tcp", t.listeners[j].Addr().String())
			if err != nil {
				abort()
				return nil, err
			}
			t.registerConn(conn)
			var hello [4]byte
			binary.LittleEndian.PutUint32(hello[:], uint32(i))
			if _, err := conn.Write(hello[:]); err != nil {
				abort()
				return nil, err
			}
			t.writers[i][j] = bufio.NewWriterSize(conn, 64<<10)
		}
	}
	// Collect accepted connections and start a reader per (from, to) pair.
	for k := 0; k < n*(n-1); k++ {
		a := <-acceptCh
		if a.err != nil {
			abort()
			return nil, a.err
		}
		if a.from < 0 || a.from >= n {
			abort()
			return nil, fmt.Errorf("ygm: tcp hello from invalid rank %d", a.from)
		}
		t.readersWG.Add(1)
		go t.readLoop(a.conn, a.to)
	}
	return t, nil
}

func (t *tcpTransport) readLoop(conn net.Conn, to int) {
	defer t.readersWG.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return // connection closed during teardown
		}
		if size == 0 {
			// An empty batch carries no messages: nothing to read, and no
			// reason to cycle a pooled buffer through the mailbox for it.
			continue
		}
		batch := t.w.getBatch()
		if cap(batch) < int(size) {
			// Swap the undersized pooled buffer for a right-sized one; it
			// flows back into the pool after processing, so the pool grows
			// to the frame-size high-water mark and steady-state receives
			// stop allocating.
			t.w.putBatch(batch)
			batch = make([]byte, size, int(size)+4<<10)
		} else {
			batch = batch[:size]
		}
		if _, err := io.ReadFull(br, batch); err != nil {
			return
		}
		t.w.ranks[to].inbox.push(batch)
	}
}

func (t *tcpTransport) deliver(from, to int, batch []byte) {
	if from == to {
		t.w.ranks[to].inbox.push(batch)
		return
	}
	bw := t.writers[from][to]
	// hdrs[from] is owned by the sending rank's goroutine for the duration
	// of the write (self-delivery never reaches here, and each rank flushes
	// its own destinations serially).
	hdr := t.hdrs[from]
	n := binary.PutUvarint(hdr, uint64(len(batch)))
	if _, err := bw.Write(hdr[:n]); err != nil {
		panic(fmt.Sprintf("ygm: tcp write %d->%d: %v", from, to, err))
	}
	if _, err := bw.Write(batch); err != nil {
		panic(fmt.Sprintf("ygm: tcp write %d->%d: %v", from, to, err))
	}
	// Flush eagerly: Barrier's termination detection requires that a sent
	// message is observable at the destination without further local action.
	if err := bw.Flush(); err != nil {
		panic(fmt.Sprintf("ygm: tcp flush %d->%d: %v", from, to, err))
	}
	t.w.putBatch(batch)
}

func (t *tcpTransport) close() error {
	t.closeOnce.Do(func() {
		for _, ln := range t.listeners {
			if ln != nil {
				if err := ln.Close(); err != nil && t.closeErr == nil {
					t.closeErr = err
				}
			}
		}
		t.mu.Lock()
		conns := t.conns
		t.conns = nil
		t.closed = true
		t.mu.Unlock()
		for _, c := range conns {
			if err := c.Close(); err != nil && t.closeErr == nil {
				t.closeErr = err
			}
		}
		t.readersWG.Wait()
	})
	return t.closeErr
}
