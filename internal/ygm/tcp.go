package ygm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpTransport routes every batch through a TCP socket with uvarint length
// framing. Historically it proved the simulated-rank runtime is a faithful
// RPC port of the MPI original — every rank local, loopback sockets. Since
// PR 8 the same machinery carries a world across OS processes: each process
// listens for its local span and dials every other rank in the world, local
// or remote, using the peer table a rendezvous distributed.
//
// Topology: every local rank owns a listener; every ordered pair (i, j)
// with i local gets a dedicated connection dialed from i to j, written only
// by rank i's goroutine. Each local listener j accepts one connection from
// every other rank in the world (remote processes dial in the same way),
// drained by a reader goroutine that pushes frames into rank j's mailbox.
// Self-sends short-circuit to the mailbox.
//
// Handshake: the dialer opens with the versioned hello of handshake.go
// (magic, protocol version, world size, (from, to) rank pair), so the
// acceptor binds the pair without trusting dial order and mismatched
// builds or worlds fail with typed errors instead of mis-framing.
//
// Lifecycle: every connection is registered (under mu) the moment it
// exists — dialed conns before their hello write, accepted conns before
// their hello read — so a mid-setup failure can close the lot exactly
// once, unblock every goroutine parked in Accept/ReadFull, and surface the
// root-cause error to the caller (close errors never mask it). Setup
// deadlines bound the wait for a peer process that registered with the
// rendezvous and then died: Accept and the hello reads/writes time out
// instead of wedging the surviving processes.
type tcpTransport struct {
	w         *World
	listeners []net.Listener
	addrs     []string // bound address per local rank, rank order
	writers   [][]*bufio.Writer
	hdrs      [][]byte // per-sender varint scratch; a stack hdr would escape into bufio.Write and cost one heap alloc per frame
	readersWG sync.WaitGroup

	mu     sync.Mutex
	conns  []net.Conn // all connections, for teardown
	closed bool       // set by close(); late registrations are closed on the spot

	closeOnce sync.Once
	closeErr  error
}

// tcpSetupTimeout bounds the construction phase: how long an accept loop
// waits for the world's remaining dials and how long a handshake read or
// write may take. A peer process that dies mid-rendezvous therefore fails
// every surviving process within this bound rather than deadlocking it.
const tcpSetupTimeout = 30 * time.Second

// tcpDialHook lets lifecycle tests inject a dial failure for a specific
// (from, to) pair; nil outside tests.
var tcpDialHook func(from, to int) error

func (t *tcpTransport) registerConn(c net.Conn) {
	t.mu.Lock()
	if t.closed {
		// Teardown already swept the registry: an accept that raced past
		// the listener close must not leak its connection.
		t.mu.Unlock()
		c.Close()
		return
	}
	t.conns = append(t.conns, c)
	t.mu.Unlock()
}

type tcpAccepted struct {
	to   int
	conn net.Conn
	from int
	err  error
}

// deadliner is the subset of net.TCPListener teardown needs to bound
// Accept; all stdlib TCP listeners implement it.
type deadliner interface {
	SetDeadline(time.Time) error
}

func newTCPTransport(w *World, topo *Topology) (*tcpTransport, error) {
	n := w.n
	first, local := w.first, w.local
	t := &tcpTransport{
		w:       w,
		addrs:   make([]string, local),
		writers: make([][]*bufio.Writer, n),
		hdrs:    make([][]byte, n),
	}
	for i := first; i < first+local; i++ {
		t.writers[i] = make([]*bufio.Writer, n)
		t.hdrs[i] = make([]byte, binary.MaxVarintLen64)
	}
	// Listen phase: adopt the rendezvous's pre-bound listeners, or bind one
	// per local rank on the configured address (default loopback).
	if topo != nil && len(topo.Listeners) > 0 {
		if len(topo.Listeners) != local {
			return nil, fmt.Errorf("ygm: %d pre-bound listeners for a local span of %d", len(topo.Listeners), local)
		}
		t.listeners = append([]net.Listener(nil), topo.Listeners...)
	} else {
		addr := w.opts.ListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		t.listeners = make([]net.Listener, local)
		for j := 0; j < local; j++ {
			ln, err := net.Listen("tcp", addr)
			if err != nil {
				t.close()
				return nil, err
			}
			t.listeners[j] = ln
		}
	}
	for j, ln := range t.listeners {
		t.addrs[j] = ln.Addr().String()
	}
	// The dial table: where every rank in the world listens. A
	// single-process world dials its own listeners; a multi-process world
	// dials the rendezvous's peer table.
	peers := t.addrs
	peerAddr := func(j int) string { return peers[j] }
	if topo != nil && len(topo.Peers) == n {
		peerAddr = func(j int) string { return topo.Peers[j] }
	} else if local != n {
		t.close()
		return nil, fmt.Errorf("ygm: local span [%d, %d) of world %d without a peer table", first, first+local, n)
	}
	// Accept loop per local listener: every other rank in the world dials
	// in exactly once, identifying itself with the versioned hello.
	// Accepted conns are registered before the hello read, so an abort's
	// close() unblocks ReadFull and the goroutine exits; acceptWG lets the
	// abort path wait for that before draining the channel. The listener
	// deadline bounds the wait for peers that died after registering.
	acceptCh := make(chan tcpAccepted, local*(n-1))
	var acceptWG sync.WaitGroup
	deadline := time.Now().Add(tcpSetupTimeout)
	for idx, ln := range t.listeners {
		to := first + idx
		ln := ln
		if d, ok := ln.(deadliner); ok {
			d.SetDeadline(deadline)
		}
		acceptWG.Add(1)
		go func() {
			defer acceptWG.Done()
			for k := 0; k < n-1; k++ { // every rank but `to` dials in
				conn, err := ln.Accept()
				if err != nil {
					acceptCh <- tcpAccepted{to: to, err: err}
					return
				}
				t.registerConn(conn)
				conn.SetReadDeadline(deadline)
				var buf [helloSize]byte
				if _, err := io.ReadFull(conn, buf[:]); err != nil {
					acceptCh <- tcpAccepted{to: to, err: fmt.Errorf("hello read for rank %d: %w", to, err)}
					return
				}
				h, err := decodeHello(buf[:])
				if err == nil {
					err = validateHello(h, uint32(n), to)
				}
				if err != nil {
					acceptCh <- tcpAccepted{to: to, err: err}
					return
				}
				conn.SetReadDeadline(time.Time{})
				acceptCh <- tcpAccepted{to: to, conn: conn, from: int(h.From)}
			}
		}()
	}
	// abort tears down a partially built transport: close everything
	// registered so far (which unblocks Accept and ReadFull), wait for the
	// accept goroutines, and drain their channel. The triggering error is
	// what the caller reports; nothing here can mask it.
	abort := func() {
		t.close()
		acceptWG.Wait()
		for {
			select {
			case <-acceptCh:
			default:
				return
			}
		}
	}
	// Connect phase: every local rank dials every other rank in the world.
	for i := first; i < first+local; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if tcpDialHook != nil {
				if err := tcpDialHook(i, j); err != nil {
					abort()
					return nil, err
				}
			}
			conn, err := net.DialTimeout("tcp", peerAddr(j), tcpSetupTimeout)
			if err != nil {
				abort()
				return nil, fmt.Errorf("dial rank %d at %s: %w", j, peerAddr(j), err)
			}
			t.registerConn(conn)
			conn.SetWriteDeadline(deadline)
			hello := encodeHello(uint32(n), uint32(i), uint32(j))
			if _, err := conn.Write(hello[:]); err != nil {
				abort()
				return nil, fmt.Errorf("hello write %d->%d: %w", i, j, err)
			}
			conn.SetWriteDeadline(time.Time{})
			t.writers[i][j] = bufio.NewWriterSize(conn, 64<<10)
		}
	}
	// Collect accepted connections and start a reader per (from, to) pair.
	for k := 0; k < local*(n-1); k++ {
		a := <-acceptCh
		if a.err != nil {
			abort()
			return nil, a.err
		}
		t.readersWG.Add(1)
		go t.readLoop(a.conn, a.to)
	}
	// Setup is complete: further Accept calls would block forever anyway,
	// but clear the deadlines so nothing fires spuriously at close time.
	for _, ln := range t.listeners {
		if d, ok := ln.(deadliner); ok {
			d.SetDeadline(time.Time{})
		}
	}
	return t, nil
}

func (t *tcpTransport) readLoop(conn net.Conn, to int) {
	defer t.readersWG.Done()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return // connection closed during teardown
		}
		if size == 0 {
			// An empty batch carries no messages: nothing to read, and no
			// reason to cycle a pooled buffer through the mailbox for it.
			continue
		}
		batch := t.w.getBatch()
		if cap(batch) < int(size) {
			// Swap the undersized pooled buffer for a right-sized one; it
			// flows back into the pool after processing, so the pool grows
			// to the frame-size high-water mark and steady-state receives
			// stop allocating.
			t.w.putBatch(batch)
			batch = make([]byte, size, int(size)+4<<10)
		} else {
			batch = batch[:size]
		}
		if _, err := io.ReadFull(br, batch); err != nil {
			return
		}
		t.w.ranks[to].inbox.push(batch)
	}
}

func (t *tcpTransport) deliver(from, to int, batch []byte) {
	if from == to {
		t.w.ranks[to].inbox.push(batch)
		return
	}
	bw := t.writers[from][to]
	// hdrs[from] is owned by the sending rank's goroutine for the duration
	// of the write (self-delivery never reaches here, and each rank flushes
	// its own destinations serially).
	hdr := t.hdrs[from]
	n := binary.PutUvarint(hdr, uint64(len(batch)))
	if _, err := bw.Write(hdr[:n]); err != nil {
		panic(fmt.Sprintf("ygm: tcp write %d->%d: %v", from, to, err))
	}
	if _, err := bw.Write(batch); err != nil {
		panic(fmt.Sprintf("ygm: tcp write %d->%d: %v", from, to, err))
	}
	// Flush eagerly: Barrier's termination detection requires that a sent
	// message is observable at the destination without further local action.
	if err := bw.Flush(); err != nil {
		panic(fmt.Sprintf("ygm: tcp flush %d->%d: %v", from, to, err))
	}
	t.w.putBatch(batch)
}

func (t *tcpTransport) close() error {
	t.closeOnce.Do(func() {
		for _, ln := range t.listeners {
			if ln != nil {
				if err := ln.Close(); err != nil && t.closeErr == nil {
					t.closeErr = err
				}
			}
		}
		t.mu.Lock()
		conns := t.conns
		t.conns = nil
		t.closed = true
		t.mu.Unlock()
		for _, c := range conns {
			if err := c.Close(); err != nil && t.closeErr == nil {
				t.closeErr = err
			}
		}
		t.readersWG.Wait()
	})
	return t.closeErr
}
