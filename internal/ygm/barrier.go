package ygm

import (
	"errors"
	"sync"
)

// errWorldPoisoned unwinds ranks stuck at a barrier after another rank has
// panicked, so a single failure does not deadlock the whole region.
var errWorldPoisoned = errors.New("ygm: world poisoned by a rank failure")

// cyclicBarrier is a reusable rendezvous for n goroutines. Generations make
// back-to-back barriers safe: a rank cannot lap another.
type cyclicBarrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	n        int
	count    int
	gen      uint64
	poisoned bool
}

func newCyclicBarrier(n int) *cyclicBarrier {
	b := &cyclicBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all n participants have arrived. If the barrier is
// poisoned it panics with errWorldPoisoned instead of blocking forever.
func (b *cyclicBarrier) await() {
	b.mu.Lock()
	if b.poisoned {
		b.mu.Unlock()
		panic(errWorldPoisoned)
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	poisoned := b.poisoned
	b.mu.Unlock()
	if poisoned {
		panic(errWorldPoisoned)
	}
}

// poison wakes all waiters with a failure; subsequent awaits fail fast.
func (b *cyclicBarrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// reset clears poisoning so the world can be reused after the failure has
// been reported (primarily for tests that exercise failure paths).
func (b *cyclicBarrier) reset() {
	b.mu.Lock()
	b.poisoned = false
	b.count = 0
	b.mu.Unlock()
}
