package ygm

import (
	"encoding/binary"
	"errors"
	"testing"
)

func TestHelloRoundTrip(t *testing.T) {
	b := encodeHello(7, 3, 5)
	h, err := decodeHello(b[:])
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if h.Version != helloVersion || h.World != 7 || h.From != 3 || h.To != 5 {
		t.Fatalf("decoded %+v", h)
	}
	if err := validateHello(h, 7, 5); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestHelloTypedErrors(t *testing.T) {
	good := encodeHello(4, 1, 2)

	t.Run("magic", func(t *testing.T) {
		b := good
		copy(b[:4], "HTTP")
		var want *HelloMagicError
		if _, err := decodeHello(b[:]); !errors.As(err, &want) {
			t.Fatalf("err = %v, want HelloMagicError", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		var want *HelloTruncatedError
		if _, err := decodeHello(good[:10]); !errors.As(err, &want) {
			t.Fatalf("err = %v, want HelloTruncatedError", err)
		}
		if want.Got != 10 {
			t.Errorf("truncated length = %d, want 10", want.Got)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		b := good
		binary.LittleEndian.PutUint16(b[4:6], helloVersion+3)
		var want *HelloVersionError
		if _, err := decodeHello(b[:]); !errors.As(err, &want) {
			t.Fatalf("err = %v, want HelloVersionError", err)
		}
		if want.Got != helloVersion+3 || want.Want != helloVersion {
			t.Errorf("version error = %+v", want)
		}
	})
	t.Run("world-size", func(t *testing.T) {
		h, err := decodeHello(good[:])
		if err != nil {
			t.Fatal(err)
		}
		var want *HelloWorldSizeError
		if err := validateHello(h, 8, 2); !errors.As(err, &want) {
			t.Fatalf("err = %v, want HelloWorldSizeError", err)
		}
	})
	t.Run("rank", func(t *testing.T) {
		h, err := decodeHello(good[:])
		if err != nil {
			t.Fatal(err)
		}
		var want *HelloRankError
		if err := validateHello(h, 4, 3); !errors.As(err, &want) {
			t.Fatalf("wrong-listener err = %v, want HelloRankError", err)
		}
		self := hello{Version: helloVersion, World: 4, From: 2, To: 2}
		if err := validateHello(self, 4, 2); !errors.As(err, &want) {
			t.Fatalf("self-dial err = %v, want HelloRankError", err)
		}
		oob := hello{Version: helloVersion, World: 4, From: 9, To: 2}
		if err := validateHello(oob, 4, 2); !errors.As(err, &want) {
			t.Fatalf("out-of-range err = %v, want HelloRankError", err)
		}
	})
}

// FuzzHandshake drives the hello decoder with arbitrary byte soup: it must
// never panic, must accept exactly the frames the encoder produces, and
// must classify every rejection as one of the typed hello errors.
func FuzzHandshake(f *testing.F) {
	good := encodeHello(16, 2, 11)
	f.Add(good[:])
	f.Add(good[:4])
	f.Add([]byte{})
	f.Add([]byte("GET / HTTP/1.1\r\n"))
	skew := good
	binary.LittleEndian.PutUint16(skew[4:6], 0xFFFF)
	f.Add(skew[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHello(data)
		if err == nil {
			// Whatever decodes must re-encode to the identical frame:
			// decode is the inverse of encode on its accepted set.
			back := encodeHello(h.World, h.From, h.To)
			if string(back[:]) != string(data[:helloSize]) {
				t.Fatalf("decode/encode mismatch: %x -> %+v -> %x", data[:helloSize], h, back)
			}
			// And validation must never panic, whatever the field values.
			validateHello(h, h.World, int(h.To))
			validateHello(h, 3, 0)
			return
		}
		var magicErr *HelloMagicError
		var versionErr *HelloVersionError
		var truncErr *HelloTruncatedError
		if !errors.As(err, &magicErr) && !errors.As(err, &versionErr) && !errors.As(err, &truncErr) {
			t.Fatalf("decodeHello(%x) returned untyped error %v", data, err)
		}
	})
}
