package ygm

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"tripoll/internal/serialize"
)

func TestCloseIdempotent(t *testing.T) {
	for _, kind := range []TransportKind{TransportChannel, TransportTCP} {
		w := MustWorld(3, Options{Transport: kind})
		if err := w.Close(); err != nil {
			t.Errorf("%v: first close: %v", kind, err)
		}
		if err := w.Close(); err != nil {
			t.Errorf("%v: second close: %v", kind, err)
		}
	}
}

func TestManyWorldsSequentially(t *testing.T) {
	// Worlds must not leak goroutines or sockets that break later worlds.
	for i := 0; i < 20; i++ {
		w := MustWorld(2, Options{Transport: TransportTCP})
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {})
		w.Parallel(func(r *Rank) {
			e := r.Enc()
			r.Async(1-r.ID(), h, e)
		})
		if err := w.Close(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestTCPDialFailureTearsDownCleanly injects a dial failure partway
// through TCP setup and verifies the abort path: the root-cause error is
// surfaced (not masked by close errors), every goroutine the half-built
// transport spawned unwinds, and the ports are free for the next world.
func TestTCPDialFailureTearsDownCleanly(t *testing.T) {
	injected := errors.New("injected dial failure")
	defer func() { tcpDialHook = nil }() // a Fatalf below must not poison later TCP tests
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		// Fail at different points of the dial sweep: first dial, mid-row,
		// and deep into the matrix (several accepts already completed).
		failFrom, failTo := i%3, (i+1)%3
		tcpDialHook = func(from, to int) error {
			if from == failFrom && to == failTo {
				return injected
			}
			return nil
		}
		w, err := NewWorld(3, Options{Transport: TransportTCP})
		if err == nil {
			w.Close()
			t.Fatalf("iteration %d: setup succeeded despite injected dial failure", i)
		}
		if !errors.Is(err, injected) {
			t.Fatalf("iteration %d: root cause masked: %v", i, err)
		}
	}
	tcpDialHook = nil
	// All accept/read goroutines of the failed setups must have unwound.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked by failed setups: %d -> %d", before, n)
	}
	// And a fresh TCP world must come up and communicate normally.
	w := MustWorld(3, Options{Transport: TransportTCP})
	defer w.Close()
	got := make([]int, 3)
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { got[r.ID()]++ })
	w.Parallel(func(r *Rank) {
		e := r.Enc()
		r.Async((r.ID()+1)%r.Size(), h, e)
	})
	if got[0]+got[1]+got[2] != 3 {
		t.Errorf("post-failure world dropped messages: %v", got)
	}
}

func TestSingleRankWorldFullApi(t *testing.T) {
	// Degenerate world: everything must still work through self-sends.
	w := MustWorld(1, Options{GroupSize: 1})
	defer w.Close()
	total := 0
	h := w.RegisterHandlerNamed("self", func(r *Rank, d *serialize.Decoder) {
		total += int(d.Uvarint())
	})
	w.Parallel(func(r *Rank) {
		for k := 0; k < 100; k++ {
			e := r.Enc()
			e.PutUvarint(uint64(k))
			r.Async(0, h, e)
		}
		r.Barrier()
		if got := AllReduceSum(r, 7); got != 7 {
			t.Errorf("1-rank allreduce = %d", got)
		}
		if g := AllGather(r, "x"); len(g) != 1 || g[0] != "x" {
			t.Errorf("1-rank allgather = %v", g)
		}
	})
	if total != 4950 {
		t.Errorf("total = %d", total)
	}
	ps := w.HandlerProfiles()
	if len(ps) != 1 || ps[0].Messages != 100 {
		t.Errorf("profiles = %+v", ps)
	}
}

func TestPollMakesProgressWithoutBarrier(t *testing.T) {
	w := MustWorld(2, Options{BufferBytes: 32})
	defer w.Close()
	got := make([]int, 2)
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { got[r.ID()]++ })
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			for k := 0; k < 100; k++ {
				e := r.Enc()
				e.PutUvarint(uint64(k))
				r.Async(1, h, e)
			}
			r.FlushAll()
		}
		// Rank 1 polls explicitly; the implicit end-of-region barrier
		// guarantees the rest.
		r.Poll()
	})
	if got[1] != 100 {
		t.Errorf("rank 1 processed %d", got[1])
	}
}
