package ygm

import (
	"testing"

	"tripoll/internal/serialize"
)

func TestCloseIdempotent(t *testing.T) {
	for _, kind := range []TransportKind{TransportChannel, TransportTCP} {
		w := MustWorld(3, Options{Transport: kind})
		if err := w.Close(); err != nil {
			t.Errorf("%v: first close: %v", kind, err)
		}
		if err := w.Close(); err != nil {
			t.Errorf("%v: second close: %v", kind, err)
		}
	}
}

func TestManyWorldsSequentially(t *testing.T) {
	// Worlds must not leak goroutines or sockets that break later worlds.
	for i := 0; i < 20; i++ {
		w := MustWorld(2, Options{Transport: TransportTCP})
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {})
		w.Parallel(func(r *Rank) {
			e := r.Enc()
			r.Async(1-r.ID(), h, e)
		})
		if err := w.Close(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestSingleRankWorldFullApi(t *testing.T) {
	// Degenerate world: everything must still work through self-sends.
	w := MustWorld(1, Options{GroupSize: 1})
	defer w.Close()
	total := 0
	h := w.RegisterHandlerNamed("self", func(r *Rank, d *serialize.Decoder) {
		total += int(d.Uvarint())
	})
	w.Parallel(func(r *Rank) {
		for k := 0; k < 100; k++ {
			e := r.Enc()
			e.PutUvarint(uint64(k))
			r.Async(0, h, e)
		}
		r.Barrier()
		if got := AllReduceSum(r, 7); got != 7 {
			t.Errorf("1-rank allreduce = %d", got)
		}
		if g := AllGather(r, "x"); len(g) != 1 || g[0] != "x" {
			t.Errorf("1-rank allgather = %v", g)
		}
	})
	if total != 4950 {
		t.Errorf("total = %d", total)
	}
	ps := w.HandlerProfiles()
	if len(ps) != 1 || ps[0].Messages != 100 {
		t.Errorf("profiles = %+v", ps)
	}
}

func TestPollMakesProgressWithoutBarrier(t *testing.T) {
	w := MustWorld(2, Options{BufferBytes: 32})
	defer w.Close()
	got := make([]int, 2)
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { got[r.ID()]++ })
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			for k := 0; k < 100; k++ {
				e := r.Enc()
				e.PutUvarint(uint64(k))
				r.Async(1, h, e)
			}
			r.FlushAll()
		}
		// Rank 1 polls explicitly; the implicit end-of-region barrier
		// guarantees the rest.
		r.Poll()
	})
	if got[1] != 100 {
		t.Errorf("rank 1 processed %d", got[1])
	}
}
