//go:build !race

package ygm

import (
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"

	"tripoll/internal/serialize"
)

// Steady-state allocation discipline of the hot send/receive paths. These
// tests pin the PR's pooling work: once buffers, encoders and mailbox
// arrays are warm, pushing messages must not touch the allocator. Excluded
// under -race because race instrumentation inserts its own allocations.

// TestSteadyStateEncodeZeroAllocs: the zero-copy Begin/Commit encode —
// including the periodic batch flush and mailbox hand-off it triggers —
// runs at exactly 0 allocs/op once warm.
func TestSteadyStateEncodeZeroAllocs(t *testing.T) {
	w := MustWorld(2, Options{})
	defer w.Close()
	var sink atomic.Uint64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		sink.Add(d.Uvarint())
	})
	var avg float64
	w.Parallel(func(r *Rank) {
		if r.ID() != 0 {
			return
		}
		send := func() {
			e := r.Begin(1, h)
			e.PutUvarint(7)
			r.Commit(e)
		}
		// Warm everything: batch pool to the flush high-water mark, the
		// peer mailbox's backing array, poll cadence state.
		for i := 0; i < 50_000; i++ {
			send()
		}
		avg = testing.AllocsPerRun(50_000, send)
	})
	if avg > 0 {
		t.Errorf("steady-state Begin/Commit encode: %.4f allocs/op, want 0", avg)
	}
	if sink.Load() == 0 {
		t.Fatal("no messages were delivered")
	}
}

// TestTCPReceiveSteadyStateAllocs: the TCP frame receive path (read frame
// length, borrow a pooled buffer, ReadFull, mailbox push) must not allocate
// per frame once the pool has grown to the frame-size high-water mark.
// Measured process-wide with GC disabled; the budget is far below one
// allocation per frame, so a regression to per-frame buffer allocation
// (the pre-pool behavior) fails by two orders of magnitude.
func TestTCPReceiveSteadyStateAllocs(t *testing.T) {
	// Small buffers force many frames: ~64-byte messages over 1 KiB
	// batches → a frame roughly every 16 messages.
	w := MustWorld(2, Options{Transport: TransportTCP, BufferBytes: 1 << 10})
	defer w.Close()
	var got atomic.Uint64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		d.Bytes()
		got.Add(1)
	})
	payload := make([]byte, 60)
	const perRound = 20_000
	round := func() {
		w.Parallel(func(r *Rank) {
			if r.ID() != 0 {
				return
			}
			for i := 0; i < perRound; i++ {
				e := r.Begin(1, h)
				e.PutBytes(payload)
				r.Commit(e)
			}
		})
	}
	round() // warm: pools, mailbox arrays, bufio, barrier machinery

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	round()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs

	frames := perRound * 64 / (1 << 10) // lower bound on frames sent
	if allocs > uint64(frames)/4 {
		t.Errorf("TCP receive round: %d allocs for ≥%d frames (%d messages); want ≪ 1 alloc/frame",
			allocs, frames, perRound)
	}
	if got.Load() < 2*perRound {
		t.Fatalf("delivered %d messages, want %d", got.Load(), 2*perRound)
	}
}
