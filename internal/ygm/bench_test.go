package ygm

import (
	"fmt"
	"testing"

	"tripoll/internal/serialize"
)

// benchMessageThroughput measures raw async message rate: every rank
// streams small messages round-robin to all peers, then one barrier.
func benchMessageThroughput(b *testing.B, n int, opts Options, perRank int) {
	b.Helper()
	w := MustWorld(n, opts)
	defer w.Close()
	var sink uint64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		sink += d.Uvarint()
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Parallel(func(r *Rank) {
			for k := 0; k < perRank; k++ {
				e := r.Enc()
				e.PutUvarint(uint64(k))
				r.Async((r.ID()+1+k%(n-1))%n, h, e)
			}
		})
	}
	b.StopTimer()
	b.ReportMetric(float64(perRank*n), "msgs/op")
	_ = sink
}

func BenchmarkThroughput4RanksChannel(b *testing.B) {
	benchMessageThroughput(b, 4, Options{}, 50_000)
}

func BenchmarkThroughput4RanksTCP(b *testing.B) {
	benchMessageThroughput(b, 4, Options{Transport: TransportTCP}, 50_000)
}

func BenchmarkThroughputGrouped8Ranks(b *testing.B) {
	benchMessageThroughput(b, 8, Options{GroupSize: 4}, 25_000)
}

func BenchmarkBufferSizes(b *testing.B) {
	for _, buf := range []int{1 << 10, 16 << 10, 256 << 10} {
		b.Run(fmt.Sprintf("buf%dKB", buf>>10), func(b *testing.B) {
			benchMessageThroughput(b, 4, Options{BufferBytes: buf}, 50_000)
		})
	}
}

func BenchmarkBarrierLatency(b *testing.B) {
	w := MustWorld(4, Options{})
	defer w.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Parallel(func(r *Rank) {
			for k := 0; k < 10; k++ {
				r.Barrier()
			}
		})
	}
}

func BenchmarkCollectives(b *testing.B) {
	w := MustWorld(8, Options{})
	defer w.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Parallel(func(r *Rank) {
			for k := 0; k < 100; k++ {
				_ = AllReduceSum(r, uint64(r.ID()))
			}
		})
	}
}
