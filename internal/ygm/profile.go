package ygm

import (
	"fmt"
	"sort"
	"strings"
)

// Per-handler profiling: the runtime counts executions and payload bytes
// per registered handler, attributing traffic to protocol steps (graph
// construction vs dry-run vs push vs pull vs counter flushes) without any
// instrumentation in application code. Cheap enough to stay always-on —
// two array increments per message.

// HandlerProfile is one handler's aggregate activity.
type HandlerProfile struct {
	ID       HandlerID
	Name     string
	Messages int64
	Bytes    int64
}

// RegisterHandlerNamed is RegisterHandler with a label for profiles.
func (w *World) RegisterHandlerNamed(name string, h Handler) HandlerID {
	id := w.RegisterHandler(h)
	w.mu.Lock()
	for len(w.handlerNames) <= int(id) {
		w.handlerNames = append(w.handlerNames, "")
	}
	w.handlerNames[id] = name
	w.mu.Unlock()
	return id
}

// HandlerName returns the label of a handler (or "handler-<id>").
func (w *World) HandlerName(id HandlerID) string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if int(id) < len(w.handlerNames) && w.handlerNames[id] != "" {
		return w.handlerNames[id]
	}
	if id == w.hForward {
		return "ygm.forward"
	}
	return fmt.Sprintf("handler-%d", id)
}

// HandlerProfiles aggregates per-handler activity across ranks, sorted by
// bytes descending. Call between parallel regions.
func (w *World) HandlerProfiles() []HandlerProfile {
	w.mu.Lock()
	numHandlers := len(w.handlers)
	w.mu.Unlock()
	agg := make([]HandlerProfile, numHandlers)
	for _, r := range w.ranks {
		for id := 0; id < len(r.hMsgs) && id < numHandlers; id++ {
			agg[id].Messages += r.hMsgs[id]
			agg[id].Bytes += r.hBytes[id]
		}
	}
	out := agg[:0]
	for id := range agg {
		if agg[id].Messages == 0 {
			continue
		}
		agg[id].ID = HandlerID(id)
		agg[id].Name = w.HandlerName(HandlerID(id))
		out = append(out, agg[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// FormatProfiles renders profiles as an aligned table.
func FormatProfiles(ps []HandlerProfile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %14s %14s\n", "handler", "messages", "bytes")
	for _, p := range ps {
		fmt.Fprintf(&sb, "%-28s %14d %14d\n", p.Name, p.Messages, p.Bytes)
	}
	return sb.String()
}

func (r *Rank) profile(h uint64, payloadLen int) {
	for uint64(len(r.hMsgs)) <= h {
		r.hMsgs = append(r.hMsgs, 0)
		r.hBytes = append(r.hBytes, 0)
	}
	r.hMsgs[h]++
	r.hBytes[h] += int64(payloadLen)
}
