package ygm

import (
	"sync/atomic"
	"testing"

	"tripoll/internal/serialize"
)

func TestGroupingPreservesDelivery(t *testing.T) {
	for _, gs := range []int{0, 1, 2, 3, 4, 8} {
		gs := gs
		const n, perPair = 8, 300
		w := MustWorld(n, Options{GroupSize: gs})
		recv := make([]int64, n)
		sums := make([]uint64, n)
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
			recv[r.ID()]++
			sums[r.ID()] += d.Uvarint()
		})
		w.Parallel(func(r *Rank) {
			for dest := 0; dest < n; dest++ {
				for k := 0; k < perPair; k++ {
					e := r.Enc()
					e.PutUvarint(uint64(k))
					r.Async(dest, h, e)
				}
			}
		})
		wantSum := uint64(n * perPair * (perPair - 1) / 2)
		for i := 0; i < n; i++ {
			if recv[i] != n*perPair {
				t.Errorf("gs=%d rank %d received %d, want %d", gs, i, recv[i], n*perPair)
			}
			if sums[i] != wantSum {
				t.Errorf("gs=%d rank %d sum %d, want %d", gs, i, sums[i], wantSum)
			}
		}
		w.Close()
	}
}

func TestGroupingForwardsOnlyRemote(t *testing.T) {
	w := MustWorld(8, Options{GroupSize: 4})
	defer w.Close()
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {})
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			e := r.Enc()
			r.Async(1, h, e) // same group: no relay
		}
	})
	if st := w.Stats(); st.MessagesForwarded != 0 {
		t.Errorf("intra-group send was forwarded: %+v", st)
	}
	w.Parallel(func(r *Rank) {
		if r.ID() == 0 {
			for k := 0; k < 10; k++ {
				e := r.Enc()
				r.Async(5, h, e) // remote group
			}
		}
	})
	st := w.Stats()
	// Gateway for src 0 into group 1 is rank 4 (4 + 0%4); unless the
	// gateway equals the destination, every message is relayed once.
	if st.MessagesForwarded != 10 {
		t.Errorf("forwarded = %d, want 10", st.MessagesForwarded)
	}
}

func TestGatewayEqualsDestSkipsRelay(t *testing.T) {
	w := MustWorld(8, Options{GroupSize: 4})
	defer w.Close()
	var hits atomic.Int64
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { hits.Add(1) })
	w.Parallel(func(r *Rank) {
		if r.ID() == 1 {
			e := r.Enc()
			r.Async(5, h, e) // gateway for src 1 into group 1 is 4+1 = 5 = dest
		}
	})
	st := w.Stats()
	if st.MessagesForwarded != 0 {
		t.Errorf("gateway==dest should not wrap: %+v", st)
	}
	if hits.Load() != 1 {
		t.Errorf("hits = %d", hits.Load())
	}
}

func TestGroupingReducesRemoteBatches(t *testing.T) {
	// Sparse all-to-all with a small buffer: without grouping every
	// (src, dest) pair flushes its own inter-group batches; with grouping
	// a sender's traffic to one remote group shares a buffer.
	run := func(gs int) Stats {
		const n = 8
		w := MustWorld(n, Options{GroupSize: gs, BufferBytes: 1 << 10})
		defer w.Close()
		h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) { _ = d.Uvarint() })
		w.Parallel(func(r *Rank) {
			for k := 0; k < 2000; k++ {
				e := r.Enc()
				e.PutUvarint(uint64(k))
				r.Async((r.ID()+1+k%(n-1))%n, h, e)
			}
		})
		return w.Stats()
	}
	flat := run(1)
	grouped := run(4)
	if grouped.RemoteBatches >= flat.RemoteBatches {
		t.Errorf("grouping did not reduce inter-group batches: flat %d, grouped %d",
			flat.RemoteBatches, grouped.RemoteBatches)
	}
	// Messages delivered identically (forwarding adds sends, but the
	// original payload count at handlers is fixed by construction above).
	if grouped.MessagesForwarded == 0 {
		t.Error("no forwarding happened at group size 4")
	}
}

func TestGroupingWithChains(t *testing.T) {
	// Termination detection must cover relay hops spawned by handlers.
	const n, depth = 6, 30
	w := MustWorld(n, Options{GroupSize: 2})
	defer w.Close()
	var hops atomic.Int64
	var h HandlerID
	h = w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {
		ttl := d.Uvarint()
		hops.Add(1)
		if ttl > 0 {
			e := r.Enc()
			e.PutUvarint(ttl - 1)
			r.Async((r.ID()+3)%n, h, e) // always crosses a group boundary
		}
	})
	w.Parallel(func(r *Rank) {
		e := r.Enc()
		e.PutUvarint(depth)
		r.Async((r.ID()+3)%n, h, e)
	})
	if got := hops.Load(); got != int64(n*(depth+1)) {
		t.Errorf("hops = %d, want %d", got, n*(depth+1))
	}
}

func TestGroupSizeValidation(t *testing.T) {
	if _, err := NewWorld(4, Options{GroupSize: -1}); err == nil {
		t.Error("negative group size accepted")
	}
	// Oversized group sizes clamp to a single world-spanning group.
	wBig := MustWorld(2, Options{GroupSize: 5})
	if wBig.Options().GroupSize != 2 {
		t.Errorf("oversized group not clamped: %d", wBig.Options().GroupSize)
	}
	wBig.Close()
	// Group size that does not divide n: last group is partial but valid.
	w := MustWorld(5, Options{GroupSize: 2})
	defer w.Close()
	h := w.RegisterHandler(func(r *Rank, d *serialize.Decoder) {})
	w.Parallel(func(r *Rank) {
		for dest := 0; dest < 5; dest++ {
			e := r.Enc()
			r.Async(dest, h, e)
		}
	})
	if got := w.InFlight(); got != 0 {
		t.Errorf("in flight = %d", got)
	}
}
