package ygm

import "fmt"

// RankStats counts one rank's traffic. Only the owning rank mutates it.
type RankStats struct {
	MessagesSent      int64
	MessagesProcessed int64
	BatchesSent       int64
	BytesSent         int64
	// MessagesForwarded counts relays performed as a node-group gateway.
	MessagesForwarded int64
	// RemoteBatches/RemoteBytes count traffic crossing node-group
	// boundaries (with GroupSize ≤ 1, every rank is its own group, so
	// these count everything except self-sends).
	RemoteBatches int64
	RemoteBytes   int64
}

// Stats aggregates traffic across the world. BytesSent is the communication
// volume figure reported in Table 4 of the paper. The JSON shape is part
// of tripolld's /metrics surface.
type Stats struct {
	MessagesSent      int64 `json:"messages_sent"`
	MessagesProcessed int64 `json:"messages_processed"`
	BatchesSent       int64 `json:"batches_sent"`
	BytesSent         int64 `json:"bytes_sent"`
	MessagesForwarded int64 `json:"messages_forwarded"`
	RemoteBatches     int64 `json:"remote_batches"`
	RemoteBytes       int64 `json:"remote_bytes"`
}

func (s *Stats) add(r *RankStats) {
	s.BatchesSent += r.BatchesSent
	s.BytesSent += r.BytesSent
	s.MessagesForwarded += r.MessagesForwarded
	s.RemoteBatches += r.RemoteBatches
	s.RemoteBytes += r.RemoteBytes
}

// Sub returns the component-wise difference s - o; experiments use it to
// attribute traffic to a phase.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		MessagesSent:      s.MessagesSent - o.MessagesSent,
		MessagesProcessed: s.MessagesProcessed - o.MessagesProcessed,
		BatchesSent:       s.BatchesSent - o.BatchesSent,
		BytesSent:         s.BytesSent - o.BytesSent,
		MessagesForwarded: s.MessagesForwarded - o.MessagesForwarded,
		RemoteBatches:     s.RemoteBatches - o.RemoteBatches,
		RemoteBytes:       s.RemoteBytes - o.RemoteBytes,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("msgs=%d batches=%d bytes=%d remote-batches=%d remote-bytes=%d",
		s.MessagesSent, s.BatchesSent, s.BytesSent, s.RemoteBatches, s.RemoteBytes)
}
