package ygm

import "sync"

// inbox is an unbounded multi-producer single-consumer queue of serialized
// batches. Producers are transports (peer ranks or TCP reader goroutines);
// the consumer is the owning rank. Unboundedness removes the classic
// buffered-channel deadlock where a rank blocks sending while its own
// mailbox is full.
// The queue keeps its backing array across drain cycles (head indexes into
// q instead of re-slicing it away): a rank's mailbox empties and refills
// thousands of times per traversal, and handing the array back to the GC on
// every drain put one slice allocation on every subsequent push.
type inbox struct {
	mu   sync.Mutex
	q    [][]byte
	head int
}

func (b *inbox) init() {}

func (b *inbox) push(batch []byte) {
	b.mu.Lock()
	b.q = append(b.q, batch)
	b.mu.Unlock()
}

func (b *inbox) tryPop() ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.head == len(b.q) {
		return nil, false
	}
	batch := b.q[b.head]
	b.q[b.head] = nil // drop the reference; the batch returns via putBatch
	b.head++
	if b.head == len(b.q) {
		b.q = b.q[:0]
		b.head = 0
	}
	return batch, true
}

func (b *inbox) empty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.head == len(b.q)
}

func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q) - b.head
}
