package ygm

import "sync"

// inbox is an unbounded multi-producer single-consumer queue of serialized
// batches. Producers are transports (peer ranks or TCP reader goroutines);
// the consumer is the owning rank. Unboundedness removes the classic
// buffered-channel deadlock where a rank blocks sending while its own
// mailbox is full.
type inbox struct {
	mu sync.Mutex
	q  [][]byte
}

func (b *inbox) init() {}

func (b *inbox) push(batch []byte) {
	b.mu.Lock()
	b.q = append(b.q, batch)
	b.mu.Unlock()
}

func (b *inbox) tryPop() ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.q) == 0 {
		return nil, false
	}
	batch := b.q[0]
	b.q[0] = nil
	b.q = b.q[1:]
	if len(b.q) == 0 {
		b.q = nil // allow the backing array to be reclaimed
	}
	return batch, true
}

func (b *inbox) empty() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q) == 0
}

func (b *inbox) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q)
}
