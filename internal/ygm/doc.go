// Package ygm is a Go re-implementation of the asynchronous communication
// layer TriPoll builds on (YGM, "You've Got Mail"; §4.1 of the paper).
//
// A World owns a fixed set of simulated MPI ranks. Each rank is a goroutine
// with a private mailbox; rank-local data is only ever touched by the rank
// that owns it, preserving MPI's locality discipline. All inter-rank
// communication flows through explicit serialized messages with
// fire-and-forget RPC semantics:
//
//   - messages are (handler id, serialized arguments) pairs;
//   - small messages destined for the same rank are opaquely buffered and
//     concatenated into large batches (§4.1.1);
//   - payloads are variable-length byte arrays produced by the serialize
//     package (§4.1.2), so strings and containers travel without padding;
//   - no responses are sent on completion — a handler that needs to answer
//     sends a fresh async message (§4.1.3);
//   - Barrier performs asynchronous termination detection: it returns only
//     when every buffered, in-flight and unprocessed message in the world
//     has been handled, including messages spawned by handlers.
//
// Two transports are provided: an in-memory transport that moves batches
// between mailboxes directly, and a loopback TCP transport that pushes every
// batch through a real socket (length-framed), exercising an actual network
// stack. Both present identical semantics.
//
// The layering (handler registry → per-destination buffering → transport →
// optional node-level grouping → collectives; DESIGN.md §3) keeps every
// paper mechanism separately testable and ablatable. Message, batch and
// byte counts are recorded at the transport seam (stats.go), which is what
// makes communication-volume claims — including the survey planner's
// predicate-pushdown savings — mechanical rather than simulated.
package ygm
