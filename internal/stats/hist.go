package stats

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"
)

// Hist is a sparse integer-bucketed histogram.
type Hist struct {
	counts map[int]uint64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{counts: make(map[int]uint64)} }

// Add increments bucket by delta.
func (h *Hist) Add(bucket int, delta uint64) { h.counts[bucket] += delta }

// Count returns the count in bucket.
func (h *Hist) Count(bucket int) uint64 { return h.counts[bucket] }

// Total returns the sum of all counts.
func (h *Hist) Total() uint64 {
	var t uint64
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Buckets returns the populated buckets in ascending order.
func (h *Hist) Buckets() []int {
	out := make([]int, 0, len(h.counts))
	for b := range h.counts {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

// Render draws a horizontal text bar chart, the stand-in for the paper's
// log-scale histogram figures. width is the maximum bar length.
func (h *Hist) Render(title, bucketLabel string, width int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (total %d)\n", title, h.Total())
	buckets := h.Buckets()
	if len(buckets) == 0 {
		sb.WriteString("  (empty)\n")
		return sb.String()
	}
	var max uint64
	for _, b := range buckets {
		if c := h.counts[b]; c > max {
			max = c
		}
	}
	for _, b := range buckets {
		c := h.counts[b]
		barLen := int(float64(width) * float64(c) / float64(max))
		if c > 0 && barLen == 0 {
			barLen = 1
		}
		fmt.Fprintf(&sb, "  %s=%4d │%-*s│ %d\n", bucketLabel, b, width, strings.Repeat("█", barLen), c)
	}
	return sb.String()
}

// Joint2D is a sparse 2D bucket grid, used for the joint (open, close)
// distribution of Fig. 6 and the FQDN pair distribution of Fig. 8.
type Joint2D struct {
	counts map[[2]int]uint64
}

// NewJoint2D returns an empty grid.
func NewJoint2D() *Joint2D { return &Joint2D{counts: make(map[[2]int]uint64)} }

// Add increments cell (x, y) by delta.
func (j *Joint2D) Add(x, y int, delta uint64) { j.counts[[2]int{x, y}] += delta }

// Count returns the count at (x, y).
func (j *Joint2D) Count(x, y int) uint64 { return j.counts[[2]int{x, y}] }

// Sub decrements cell (x, y) by delta with wrapping arithmetic, deleting
// the cell when it reaches exactly zero. Wrapping is deliberate: a
// streaming analysis may retire a triangle on a different rank than the
// one that observed it, so a per-rank grid can hold the group inverse of a
// count (a huge wrapped value) that cancels at Merge time — only the
// merged grid is meaningful, and Prune removes its cancelled cells.
func (j *Joint2D) Sub(x, y int, delta uint64) {
	k := [2]int{x, y}
	c := j.counts[k] - delta
	if c == 0 {
		delete(j.counts, k)
		return
	}
	j.counts[k] = c
}

// JointCell is one populated cell of a Joint2D in the exported, wire-
// friendly form Cells returns (the grid's own map is keyed by [2]int,
// which encoding/json cannot marshal).
type JointCell struct {
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Count uint64 `json:"count"`
}

// Cells returns the populated cells sorted by (x, y) — a deterministic,
// JSON-serializable snapshot of the grid; tripolld ships closure-time
// results this way.
func (j *Joint2D) Cells() []JointCell {
	out := make([]JointCell, 0, len(j.counts))
	for k, c := range j.counts {
		out = append(out, JointCell{X: k[0], Y: k[1], Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].X != out[b].X {
			return out[a].X < out[b].X
		}
		return out[a].Y < out[b].Y
	})
	return out
}

// GobEncode serializes the grid as its sorted cell list, so Joint2D
// accumulators can ride encoding/gob across process boundaries (the
// multi-process collective path) despite the unexported map. Sorting keeps
// the wire form canonical.
func (j *Joint2D) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(j.Cells()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode rebuilds the grid from its cell list.
func (j *Joint2D) GobDecode(b []byte) error {
	var cells []JointCell
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&cells); err != nil {
		return err
	}
	j.counts = make(map[[2]int]uint64, len(cells))
	for _, c := range cells {
		j.counts[[2]int{c.X, c.Y}] = c.Count
	}
	return nil
}

// Prune removes zero-count cells (left behind when merged ranks cancel),
// making a fully reversed grid deeply equal to a fresh one — the
// invertible-accumulator contract streaming analyses rely on.
func (j *Joint2D) Prune() *Joint2D {
	for k, c := range j.counts {
		if c == 0 {
			delete(j.counts, k)
		}
	}
	return j
}

// Clone returns an independent copy of the grid.
func (j *Joint2D) Clone() *Joint2D {
	c := &Joint2D{counts: make(map[[2]int]uint64, len(j.counts))}
	for k, v := range j.counts {
		c.counts[k] = v
	}
	return c
}

// Merge adds every cell of o into j and returns j — the commutative
// combination fused-analysis reduction needs.
func (j *Joint2D) Merge(o *Joint2D) *Joint2D {
	for k, c := range o.counts {
		j.counts[k] += c
	}
	return j
}

// Total returns the sum of all cells.
func (j *Joint2D) Total() uint64 {
	var t uint64
	for _, c := range j.counts {
		t += c
	}
	return t
}

// MarginalX collapses the grid onto the x axis.
func (j *Joint2D) MarginalX() *Hist {
	h := NewHist()
	for k, c := range j.counts {
		h.Add(k[0], c)
	}
	return h
}

// MarginalY collapses the grid onto the y axis.
func (j *Joint2D) MarginalY() *Hist {
	h := NewHist()
	for k, c := range j.counts {
		h.Add(k[1], c)
	}
	return h
}

// Render draws the grid as a log-density character heat map (x across, y
// down), the stand-in for the paper's joint-distribution plot. Grids wider
// or taller than a terminal can show are coarsened by integer binning, so
// a 39-billion-cell FQDN distribution and a 20-bucket time grid both
// render usefully.
func (j *Joint2D) Render(title, xLabel, yLabel string) string {
	const maxCols, maxRows = 100, 48
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (total %d)\n", title, j.Total())
	if len(j.counts) == 0 {
		sb.WriteString("  (empty)\n")
		return sb.String()
	}
	minX, maxX := 1<<30, -(1 << 30)
	minY, maxY := 1<<30, -(1 << 30)
	for k := range j.counts {
		if k[0] < minX {
			minX = k[0]
		}
		if k[0] > maxX {
			maxX = k[0]
		}
		if k[1] < minY {
			minY = k[1]
		}
		if k[1] > maxY {
			maxY = k[1]
		}
	}
	binX := 1 + (maxX-minX)/maxCols
	binY := 1 + (maxY-minY)/maxRows
	// Coarsened grid with bin-local sums.
	binned := map[[2]int]uint64{}
	var maxC uint64
	for k, c := range j.counts {
		bk := [2]int{(k[0] - minX) / binX, (k[1] - minY) / binY}
		binned[bk] += c
		if binned[bk] > maxC {
			maxC = binned[bk]
		}
	}
	cols := (maxX-minX)/binX + 1
	rows := (maxY-minY)/binY + 1
	shades := []rune(" .:-=+*#%@")
	fmt.Fprintf(&sb, "  rows: %s %d..%d, cols: %s %d..%d, shade ~ log(count)", yLabel, minY, maxY, xLabel, minX, maxX)
	if binX > 1 || binY > 1 {
		fmt.Fprintf(&sb, " (cells binned %dx%d)", binX, binY)
	}
	sb.WriteByte('\n')
	for by := rows - 1; by >= 0; by-- {
		fmt.Fprintf(&sb, "  %6d │", minY+by*binY)
		for bx := 0; bx < cols; bx++ {
			c := binned[[2]int{bx, by}]
			if c == 0 {
				sb.WriteRune(' ')
				continue
			}
			// Map log(count)/log(max) onto the shade ramp.
			idx := 1 + int(float64(len(shades)-2)*logRatio(c, maxC))
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			sb.WriteRune(shades[idx])
		}
		sb.WriteString("│\n")
	}
	return sb.String()
}

func logRatio(c, max uint64) float64 {
	if max <= 1 {
		return 1
	}
	return float64(FloorLog2(c)+1) / float64(FloorLog2(max)+1)
}
