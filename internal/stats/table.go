package stats

import (
	"fmt"
	"strings"
	"time"
)

// Table renders aligned experiment output in the style of the paper's
// tables. Cells are strings; numeric columns should be pre-formatted.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it must match the header arity.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("stats: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatCount renders n with thousands separators for readability.
func FormatCount(n uint64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var sb strings.Builder
	lead := len(s) % 3
	if lead > 0 {
		sb.WriteString(s[:lead])
	}
	for i := lead; i < len(s); i += 3 {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(s[i : i+3])
	}
	return sb.String()
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%cB", float64(n)/float64(div), "KMGTPE"[exp])
}

// FormatDuration renders a duration with millisecond precision for tables.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
