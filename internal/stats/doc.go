// Package stats holds the small statistics and rendering toolkit the
// survey results and experiment drivers share: sparse integer-bucketed
// histograms (Hist), the sparse 2D bucket grid behind the paper's joint
// closure-time and FQDN-pair distributions (Joint2D, with group-inverse
// Sub/Prune semantics so streaming analyses can retire observations), the
// ceil/floor log₂ bucketing helpers those figures bin by, fixed-width
// text tables for the regenerated paper tables, and human-readable
// count/byte/duration formatting used by both CLIs.
//
// Rendering is deliberately terminal-grade (bar charts and log-density
// character heat maps), standing in for the paper's plots without pulling
// a plotting dependency into the module; Joint2D.Cells exports the same
// grids in a deterministic, JSON-friendly form for tripolld responses and
// byte-identity checks.
package stats
