package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestCeilLog2(t *testing.T) {
	cases := map[uint64]int{0: -1, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := CeilLog2(x); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", x, got, want)
		}
	}
	// Cross-check against float math for a range of values.
	for x := uint64(1); x < 100000; x += 37 {
		want := int(math.Ceil(math.Log2(float64(x))))
		if got := CeilLog2(x); got != want {
			t.Fatalf("CeilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestFloorLog2(t *testing.T) {
	cases := map[uint64]int{0: -1, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3}
	for x, want := range cases {
		if got := FloorLog2(x); got != want {
			t.Errorf("FloorLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist()
	h.Add(3, 10)
	h.Add(-1, 2)
	h.Add(3, 5)
	if h.Count(3) != 15 || h.Count(-1) != 2 || h.Count(99) != 0 {
		t.Error("counts wrong")
	}
	if h.Total() != 17 {
		t.Errorf("total = %d", h.Total())
	}
	b := h.Buckets()
	if len(b) != 2 || b[0] != -1 || b[1] != 3 {
		t.Errorf("buckets = %v", b)
	}
}

func TestHistRender(t *testing.T) {
	h := NewHist()
	h.Add(0, 1)
	h.Add(1, 100)
	out := h.Render("closing times", "log2", 20)
	if !strings.Contains(out, "closing times") || !strings.Contains(out, "100") {
		t.Errorf("render missing content:\n%s", out)
	}
	// Small nonzero buckets still draw at least one bar cell.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "=   0") && strings.Contains(l, "█") {
			found = true
		}
	}
	if !found {
		t.Errorf("tiny bucket invisible:\n%s", out)
	}
	if !strings.Contains(NewHist().Render("empty", "b", 10), "(empty)") {
		t.Error("empty render")
	}
}

func TestJoint2D(t *testing.T) {
	j := NewJoint2D()
	j.Add(1, 2, 5)
	j.Add(1, 2, 1)
	j.Add(-1, 4, 7)
	if j.Count(1, 2) != 6 || j.Count(-1, 4) != 7 || j.Count(0, 0) != 0 {
		t.Error("counts wrong")
	}
	if j.Total() != 13 {
		t.Errorf("total = %d", j.Total())
	}
	mx := j.MarginalX()
	if mx.Count(1) != 6 || mx.Count(-1) != 7 {
		t.Errorf("marginal X wrong")
	}
	my := j.MarginalY()
	if my.Count(2) != 6 || my.Count(4) != 7 {
		t.Errorf("marginal Y wrong")
	}
	out := j.Render("joint", "open", "close")
	if !strings.Contains(out, "joint") || !strings.Contains(out, "close") {
		t.Errorf("render:\n%s", out)
	}
	if !strings.Contains(NewJoint2D().Render("e", "x", "y"), "(empty)") {
		t.Error("empty render")
	}
}

func TestJoint2DRenderBinsWideGrids(t *testing.T) {
	j := NewJoint2D()
	for x := 0; x < 500; x++ {
		j.Add(x, x%60, uint64(1+x%7))
	}
	out := j.Render("wide", "x", "y")
	if !strings.Contains(out, "binned") {
		t.Errorf("wide grid not binned:\n%s", out[:200])
	}
	// No rendered row may exceed a terminal-ish width.
	for _, line := range strings.Split(out, "\n") {
		if len([]rune(line)) > 120 {
			t.Fatalf("row too wide (%d runes)", len([]rune(line)))
		}
	}
	// Small grids stay unbinned.
	small := NewJoint2D()
	small.Add(1, 2, 3)
	if strings.Contains(small.Render("s", "x", "y"), "binned") {
		t.Error("small grid should not bin")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 2: runtimes", "Graph", "TriPoll", "Pearce")
	tb.AddRow("LiveJournal", "1.01s", "1.08s")
	tb.AddRow("Friendster", "38.62s", "69.79s")
	out := tb.Render()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Friendster") {
		t.Errorf("render:\n%s", out)
	}
	// Columns align: every data line has the header's column positions.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	idx := strings.Index(lines[1], "TriPoll")
	if !strings.HasPrefix(lines[3][idx:], "1.01s") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("t", "a", "b").AddRow("only-one")
}

func TestFormatCount(t *testing.T) {
	cases := map[uint64]string{0: "0", 999: "999", 1000: "1,000", 1234567: "1,234,567", 69000000: "69,000,000"}
	for n, want := range cases {
		if got := FormatCount(n); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	if FormatBytes(512) != "512B" {
		t.Error(FormatBytes(512))
	}
	if FormatBytes(2048) != "2.0KB" {
		t.Error(FormatBytes(2048))
	}
	if FormatBytes(3<<20) != "3.0MB" {
		t.Error(FormatBytes(3 << 20))
	}
	if FormatBytes(5<<30) != "5.0GB" {
		t.Error(FormatBytes(5 << 30))
	}
}

func TestFormatDuration(t *testing.T) {
	if FormatDuration(2500*time.Millisecond) != "2.50s" {
		t.Error(FormatDuration(2500 * time.Millisecond))
	}
	if FormatDuration(1500*time.Microsecond) != "1.5ms" {
		t.Error(FormatDuration(1500 * time.Microsecond))
	}
	if FormatDuration(900*time.Microsecond) != "900µs" {
		t.Error(FormatDuration(900 * time.Microsecond))
	}
}
