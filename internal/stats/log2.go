// Package stats provides the small numerical helpers TriPoll's surveys and
// experiment harness share: log₂ bucketing (Alg. 4 and §5.9 count
// ⌈log₂·⌉-bucketed quantities), histograms, joint distributions, and ASCII
// rendering of the paper's tables and figures.
package stats

import "math/bits"

// CeilLog2 returns ⌈log₂(x)⌉ for x ≥ 1. x = 0 (e.g. two edges with the
// same timestamp) maps to -1, a dedicated "instantaneous" bucket below
// every positive duration.
func CeilLog2(x uint64) int {
	if x == 0 {
		return -1
	}
	return bits.Len64(x - 1)
}

// FloorLog2 returns ⌊log₂(x)⌋ for x ≥ 1, and -1 for x = 0.
func FloorLog2(x uint64) int {
	if x == 0 {
		return -1
	}
	return bits.Len64(x) - 1
}
