// Package baseline implements the comparison systems of Table 2 and the
// reference implementations used to validate TriPoll:
//
//   - Serial / SharedMem: exact single-node counters (ground truth; the
//     shared-memory variant mirrors the multicore systems of §2);
//   - WedgeQuery: the Pearce et al. [42] communication pattern — per-wedge
//     existence queries against the closing edge's owner;
//   - Replicated: the Tom et al. [58] stand-in — full replication,
//     throughput-oriented, memory-unscalable;
//   - EdgeCentric: the TriC [20] stand-in — edge-balanced partitions that
//     fetch adjacency lists on demand with caching;
//   - Doulion / WedgeSample: approximate counters (the sparsification and
//     sampling families the paper's introduction cites as sufficient when
//     per-triangle processing is not required).
//
// All distributed baselines run on the same ygm runtime as TriPoll so
// Table 2 compares communication patterns, not toolchains.
package baseline

import (
	"sort"

	"tripoll/internal/graph"
)

// adjGraph is a compact in-memory DODGr used by the serial baselines.
type adjGraph struct {
	ids []uint64            // sorted vertex ids
	deg map[uint64]uint32   // full degree
	out map[uint64][]uint64 // Adj⁺, sorted by <+ order key of target
}

// buildAdj constructs the degree-ordered out-adjacency from an undirected
// edge list (duplicates and self-loops tolerated).
func buildAdj(edges [][2]uint64) *adjGraph {
	und := make(map[[2]uint64]struct{}, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		und[[2]uint64{u, v}] = struct{}{}
	}
	g := &adjGraph{deg: make(map[uint64]uint32), out: make(map[uint64][]uint64)}
	for e := range und {
		g.deg[e[0]]++
		g.deg[e[1]]++
	}
	for e := range und {
		u, v := e[0], e[1]
		if graph.Less(g.deg[u], u, g.deg[v], v) {
			g.out[u] = append(g.out[u], v)
		} else {
			g.out[v] = append(g.out[v], u)
		}
	}
	for u := range g.deg {
		g.ids = append(g.ids, u)
		adj := g.out[u]
		sort.Slice(adj, func(i, j int) bool {
			return graph.KeyOf(g.deg[adj[i]], adj[i]).Less(graph.KeyOf(g.deg[adj[j]], adj[j]))
		})
	}
	sort.Slice(g.ids, func(i, j int) bool { return g.ids[i] < g.ids[j] })
	return g
}

// SerialCount counts triangles exactly with the single-threaded
// node-iterator algorithm over the degree-ordered graph. It is the ground
// truth every distributed implementation is validated against.
func SerialCount(edges [][2]uint64) uint64 {
	g := buildAdj(edges)
	var count uint64
	for _, p := range g.ids {
		adj := g.out[p]
		for i := 0; i+1 < len(adj); i++ {
			count += intersectCount(g, adj[i], adj[i+1:])
		}
	}
	return count
}

func intersectCount(g *adjGraph, q uint64, candidates []uint64) uint64 {
	qa := g.out[q]
	var n uint64
	k := 0
	for _, c := range candidates {
		ck := graph.KeyOf(g.deg[c], c)
		for k < len(qa) && graph.KeyOf(g.deg[qa[k]], qa[k]).Less(ck) {
			k++
		}
		if k < len(qa) && qa[k] == c {
			n++
			k++
		}
	}
	return n
}

// SerialTriangles enumerates every triangle as (p, q, r) with p <+ q <+ r,
// sorted lexicographically — exact multiset comparison material for tests.
func SerialTriangles(edges [][2]uint64) [][3]uint64 {
	g := buildAdj(edges)
	var out [][3]uint64
	for _, p := range g.ids {
		adj := g.out[p]
		for i := 0; i+1 < len(adj); i++ {
			q := adj[i]
			qa := g.out[q]
			k := 0
			for _, c := range adj[i+1:] {
				ck := graph.KeyOf(g.deg[c], c)
				for k < len(qa) && graph.KeyOf(g.deg[qa[k]], qa[k]).Less(ck) {
					k++
				}
				if k < len(qa) && qa[k] == c {
					out = append(out, [3]uint64{p, q, c})
					k++
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return out
}

// SerialLocalCounts returns per-vertex triangle participation counts.
func SerialLocalCounts(edges [][2]uint64) map[uint64]uint64 {
	counts := make(map[uint64]uint64)
	for _, t := range SerialTriangles(edges) {
		counts[t[0]]++
		counts[t[1]]++
		counts[t[2]]++
	}
	return counts
}
