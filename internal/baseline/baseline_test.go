package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func randomEdges(rng *rand.Rand, nv, ne int) [][2]uint64 {
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))}
	}
	return edges
}

func TestSerialCountKnown(t *testing.T) {
	k4 := [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if got := SerialCount(k4); got != 4 {
		t.Errorf("K4 = %d, want 4", got)
	}
	if got := SerialCount([][2]uint64{{0, 1}, {1, 2}}); got != 0 {
		t.Errorf("path = %d, want 0", got)
	}
	// Duplicates and self-loops are tolerated.
	if got := SerialCount([][2]uint64{{0, 1}, {1, 0}, {1, 2}, {0, 2}, {2, 2}}); got != 1 {
		t.Errorf("dirty K3 = %d, want 1", got)
	}
	if got := SerialCount(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestSerialTrianglesEnumeration(t *testing.T) {
	tris := SerialTriangles([][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	if len(tris) != 2 {
		t.Fatalf("bowtie: %d triangles", len(tris))
	}
	for _, tri := range tris {
		set := map[uint64]bool{tri[0]: true, tri[1]: true, tri[2]: true}
		if len(set) != 3 {
			t.Errorf("degenerate triangle %v", tri)
		}
	}
}

func TestSerialLocalCounts(t *testing.T) {
	counts := SerialLocalCounts([][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	if counts[2] != 2 || counts[0] != 1 || counts[4] != 1 {
		t.Errorf("bowtie local counts = %v", counts)
	}
}

func TestSharedMemMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		edges := randomEdges(rng, 5+rng.Intn(50), rng.Intn(400))
		return SharedMemCount(edges, 1+rng.Intn(8)) == SerialCount(edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func buildUnit(t testing.TB, nranks int, edges [][2]uint64) (*ygm.World, *graph.DODGr[serialize.Unit, serialize.Unit]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(), graph.BuilderOptions[serialize.Unit]{})
	var g *graph.DODGr[serialize.Unit, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		for i, e := range edges {
			if i%r.Size() == r.ID() {
				b.AddEdge(r, e[0], e[1], serialize.Unit{})
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

func TestDistributedBaselinesMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 4; trial++ {
		edges := randomEdges(rng, 20+rng.Intn(40), 100+rng.Intn(300))
		want := SerialCount(edges)
		for _, nranks := range []int{1, 3} {
			w, g := buildUnit(t, nranks, edges)
			if got := WedgeQueryCount(g); got.Triangles != want {
				t.Errorf("trial %d WedgeQuery/%d: %d, want %d", trial, nranks, got.Triangles, want)
			}
			if got := ReplicatedCount(g); got.Triangles != want {
				t.Errorf("trial %d Replicated/%d: %d, want %d", trial, nranks, got.Triangles, want)
			}
			if got := EdgeCentricCount(g); got.Triangles != want {
				t.Errorf("trial %d EdgeCentric/%d: %d, want %d", trial, nranks, got.Triangles, want)
			}
			w.Close()
		}
	}
}

func TestWedgeQuerySendsPerWedgeMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	edges := randomEdges(rng, 30, 300)
	w, g := buildUnit(t, 2, edges)
	defer w.Close()
	res := WedgeQueryCount(g)
	if res.Messages != int64(g.NumWedges()) {
		t.Errorf("messages = %d, want |W+| = %d", res.Messages, g.NumWedges())
	}
	if res.Bytes == 0 || res.Duration <= 0 {
		t.Errorf("missing stats: %+v", res)
	}
}

func TestReplicatedVolumeScalesWithRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	edges := randomEdges(rng, 40, 400)
	w2, g2 := buildUnit(t, 2, edges)
	defer w2.Close()
	w4, g4 := buildUnit(t, 4, edges)
	defer w4.Close()
	r2, r4 := ReplicatedCount(g2), ReplicatedCount(g4)
	// Full replication: broadcast volume must grow ~linearly with ranks.
	if r4.Bytes < r2.Bytes*3/2 {
		t.Errorf("replication volume did not scale: 2 ranks %d bytes, 4 ranks %d bytes", r2.Bytes, r4.Bytes)
	}
}

func TestDoulionUnbiasedAtP1(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	edges := randomEdges(rng, 30, 300)
	want := float64(SerialCount(edges))
	if got := DoulionCount(edges, 1.0, 7); got != want {
		t.Errorf("DOULION p=1 = %v, want %v", got, want)
	}
}

func TestDoulionApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	// A dense-ish graph so the estimate concentrates.
	edges := randomEdges(rng, 60, 2500)
	want := float64(SerialCount(edges))
	if want < 100 {
		t.Fatalf("test graph too sparse: %v triangles", want)
	}
	// Average several seeds: the estimator is unbiased.
	var sum float64
	const runs = 30
	for s := int64(0); s < runs; s++ {
		sum += DoulionCount(edges, 0.7, s)
	}
	got := sum / runs
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("DOULION mean estimate %v too far from %v", got, want)
	}
}

func TestDoulionPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DoulionCount([][2]uint64{{0, 1}}, 0, 1)
}

func TestWedgeSampleApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	edges := randomEdges(rng, 60, 2500)
	want := float64(SerialCount(edges))
	var sum float64
	const runs = 20
	for s := int64(0); s < runs; s++ {
		sum += WedgeSampleCount(edges, 4000, s)
	}
	got := sum / runs
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("wedge-sample mean estimate %v too far from %v", got, want)
	}
}

func TestWedgeSampleDegenerate(t *testing.T) {
	if got := WedgeSampleCount([][2]uint64{{0, 1}}, 100, 1); got != 0 {
		t.Errorf("no wedges → %v", got)
	}
	if got := WedgeSampleCount(nil, 0, 1); got != 0 {
		t.Errorf("empty → %v", got)
	}
}
