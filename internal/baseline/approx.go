package baseline

import (
	"math/rand"
	"sort"
)

// Approximate counters. The paper's introduction notes that approximation
// often suffices when per-triangle processing is not required ([6]); these
// two classic estimators make that trade-off concrete and serve as ablation
// baselines for "how much work does exactness cost".

// DoulionCount estimates the triangle count by DOULION sparsification:
// keep each undirected edge independently with probability p, count
// triangles exactly on the sample, and scale by p⁻³. The estimator is
// unbiased; variance shrinks as p → 1.
func DoulionCount(edges [][2]uint64, p float64, seed int64) float64 {
	if p <= 0 || p > 1 {
		panic("baseline: DOULION probability must be in (0, 1]")
	}
	rng := rand.New(rand.NewSource(seed))
	und := make(map[[2]uint64]struct{}, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		und[[2]uint64{u, v}] = struct{}{}
	}
	// Deterministic iteration order for a reproducible sample.
	keys := make([][2]uint64, 0, len(und))
	for e := range und {
		keys = append(keys, e)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	sample := make([][2]uint64, 0, int(float64(len(keys))*p)+1)
	for _, e := range keys {
		if rng.Float64() < p {
			sample = append(sample, e)
		}
	}
	exact := SerialCount(sample)
	scale := 1 / (p * p * p)
	return float64(exact) * scale
}

// WedgeSampleCount estimates the triangle count by uniform wedge sampling:
// draw k wedges (paths q—p—r) uniformly, measure the fraction that close,
// and return closureFraction × |W| / 3 (each triangle closes three wedges).
func WedgeSampleCount(edges [][2]uint64, k int, seed int64) float64 {
	g := buildAdj(edges)
	// Wedge counts per center vertex in G (undirected degree choose 2).
	ids := g.ids
	cum := make([]uint64, len(ids)+1)
	for i, u := range ids {
		d := uint64(g.deg[u])
		cum[i+1] = cum[i] + d*(d-1)/2
	}
	totalWedges := cum[len(ids)]
	if totalWedges == 0 || k <= 0 {
		return 0
	}
	// Undirected adjacency for wedge endpoints and closure checks.
	und := make(map[uint64][]uint64, len(ids))
	for u, outs := range g.out {
		for _, v := range outs {
			und[u] = append(und[u], v)
			und[v] = append(und[v], u)
		}
	}
	for u := range und {
		sort.Slice(und[u], func(i, j int) bool { return und[u][i] < und[u][j] })
	}
	contains := func(u, v uint64) bool {
		a := und[u]
		i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
		return i < len(a) && a[i] == v
	}
	rng := rand.New(rand.NewSource(seed))
	closed := 0
	for s := 0; s < k; s++ {
		// Pick a wedge uniformly: a center weighted by its wedge count,
		// then a uniform unordered neighbor pair.
		w := uint64(rng.Int63n(int64(totalWedges)))
		i := sort.Search(len(ids), func(i int) bool { return cum[i+1] > w })
		center := ids[i]
		nbrs := und[center]
		a := rng.Intn(len(nbrs))
		b := rng.Intn(len(nbrs) - 1)
		if b >= a {
			b++
		}
		if contains(nbrs[a], nbrs[b]) {
			closed++
		}
	}
	return float64(closed) / float64(k) * float64(totalWedges) / 3
}
