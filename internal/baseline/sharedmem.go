package baseline

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tripoll/internal/graph"
)

// csr is a compact shared-memory CSR of the degree-ordered directed graph,
// the data structure the multicore triangle counters of §2 ([63]) operate
// on.
type csr struct {
	ids     []uint64         // vertex ids, CSR order
	keys    []graph.OrderKey // order key per vertex (CSR order)
	offs    []int32          // CSR row offsets
	tgts    []int32          // out-targets as CSR indices, sorted by order key
	degOf   map[uint64]uint32
	indexOf map[uint64]int32
}

func buildCSR(edges [][2]uint64) *csr {
	und := make(map[[2]uint64]struct{}, len(edges))
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		und[[2]uint64{u, v}] = struct{}{}
	}
	deg := map[uint64]uint32{}
	for e := range und {
		deg[e[0]]++
		deg[e[1]]++
	}
	ids := make([]uint64, 0, len(deg))
	for u := range deg {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	index := make(map[uint64]int32, len(ids))
	keys := make([]graph.OrderKey, len(ids))
	for i, u := range ids {
		index[u] = int32(i)
		keys[i] = graph.KeyOf(deg[u], u)
	}
	counts := make([]int32, len(ids)+1)
	orient := func(e [2]uint64) (src, dst int32) {
		iu, iv := index[e[0]], index[e[1]]
		if keys[iu].Less(keys[iv]) {
			return iu, iv
		}
		return iv, iu
	}
	for e := range und {
		s, _ := orient(e)
		counts[s+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	offs := counts
	tgts := make([]int32, len(und))
	cursor := make([]int32, len(ids))
	for e := range und {
		s, d := orient(e)
		tgts[offs[s]+cursor[s]] = d
		cursor[s]++
	}
	for i := range ids {
		row := tgts[offs[i]:offs[i+1]]
		sort.Slice(row, func(a, b int) bool { return keys[row[a]].Less(keys[row[b]]) })
	}
	return &csr{ids: ids, keys: keys, offs: offs, tgts: tgts, degOf: deg, indexOf: index}
}

func (g *csr) row(i int32) []int32 { return g.tgts[g.offs[i]:g.offs[i+1]] }

// SharedMemCount counts triangles with goroutine parallelism over a
// shared-memory CSR — the multicore-CPU baseline family. workers ≤ 0 uses
// GOMAXPROCS.
func SharedMemCount(edges [][2]uint64, workers int) uint64 {
	g := buildCSR(edges)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var total atomic.Uint64
	var next atomic.Int64
	const chunk = 256
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var local uint64
			for {
				start := next.Add(chunk) - chunk
				if start >= int64(len(g.ids)) {
					break
				}
				end := start + chunk
				if end > int64(len(g.ids)) {
					end = int64(len(g.ids))
				}
				for p := int32(start); p < int32(end); p++ {
					adj := g.row(p)
					for i := 0; i+1 < len(adj); i++ {
						local += g.intersectRows(adj[i], adj[i+1:])
					}
				}
			}
			total.Add(local)
		}()
	}
	wg.Wait()
	return total.Load()
}

func (g *csr) intersectRows(q int32, candidates []int32) uint64 {
	qa := g.row(q)
	var n uint64
	k := 0
	for _, c := range candidates {
		ck := g.keys[c]
		for k < len(qa) && g.keys[qa[k]].Less(ck) {
			k++
		}
		if k < len(qa) && qa[k] == c {
			n++
			k++
		}
	}
	return n
}
