package baseline

import (
	"sort"
	"time"

	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Result summarizes a distributed baseline run in the units Table 2 and
// Table 4 report.
type Result struct {
	Triangles uint64
	Duration  time.Duration
	Bytes     int64
	Messages  int64
}

// WedgeQueryCount reproduces the communication pattern of Pearce et al.
// [42]: vertices are degree-ordered, and every wedge (p; q, r) becomes an
// individual closure query sent to Rank(q) asking whether the directed edge
// (q, r) exists. Message count is Θ(|W⁺|) — the pattern TriPoll's batched
// adjacency pushes improve on.
func WedgeQueryCount[VM, EM any](g *graph.DODGr[VM, EM]) Result {
	w := g.World()
	counts := make([]uint64, w.Size())
	h := w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		q := d.Uvarint()
		rid := d.Uvarint()
		rdeg := uint32(d.Uvarint())
		if d.Err() != nil {
			panic("baseline: corrupt wedge query: " + d.Err().Error())
		}
		v, ok := g.Lookup(r, q)
		if !ok {
			panic("baseline: wedge query for unknown vertex")
		}
		key := graph.KeyOf(rdeg, rid)
		adj := v.Adj
		i := sort.Search(len(adj), func(i int) bool { return !adj[i].Key().Less(key) })
		if i < len(adj) && adj[i].Target == rid {
			counts[r.ID()]++
		}
	})
	w.ResetStats()
	start := time.Now()
	w.Parallel(func(r *ygm.Rank) {
		for vi := range g.LocalVertices(r) {
			p := &g.LocalVertices(r)[vi]
			for i := 0; i+1 < len(p.Adj); i++ {
				q := p.Adj[i].Target
				owner := g.Owner(q)
				for _, c := range p.Adj[i+1:] {
					e := r.Enc()
					e.PutUvarint(q)
					e.PutUvarint(c.Target)
					e.PutUvarint(uint64(c.TOrd))
					r.Async(owner, h, e)
				}
			}
		}
	})
	dur := time.Since(start)
	var total uint64
	for _, c := range counts {
		total += c
	}
	st := w.Stats()
	return Result{Triangles: total, Duration: dur, Bytes: st.BytesSent, Messages: st.MessagesSent}
}

// ReplicatedCount reproduces the throughput-oriented design attributed to
// Tom et al. [58] in §5.6: every rank receives a full replica of G⁺
// (broadcast over the wire, so the replication cost is visible as
// communication volume), then counts a disjoint slice of pivots with zero
// further communication. Fast at small scale; memory and broadcast volume
// grow linearly with world size — the scalability ceiling the paper
// observed ("unable to get their code to run with more than 1024 ranks").
func ReplicatedCount[VM, EM any](g *graph.DODGr[VM, EM]) Result {
	w := g.World()
	n := w.Size()
	type repVert struct {
		adj []graph.OrderKey
	}
	replicas := make([]map[uint64]*repVert, n)
	for i := range replicas {
		replicas[i] = make(map[uint64]*repVert)
	}
	h := w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		id := d.Uvarint()
		cnt := int(d.Uvarint())
		rv := &repVert{adj: make([]graph.OrderKey, 0, cnt)}
		for i := 0; i < cnt; i++ {
			tid := d.Uvarint()
			tdeg := uint32(d.Uvarint())
			rv.adj = append(rv.adj, graph.KeyOf(tdeg, tid))
		}
		if d.Err() != nil {
			panic("baseline: corrupt replica message: " + d.Err().Error())
		}
		replicas[r.ID()][id] = rv
	})
	w.ResetStats()
	start := time.Now()

	// Broadcast phase: each rank ships every local adjacency list to all
	// ranks (including itself, for uniform accounting).
	w.Parallel(func(r *ygm.Rank) {
		for vi := range g.LocalVertices(r) {
			v := &g.LocalVertices(r)[vi]
			for dest := 0; dest < n; dest++ {
				e := r.Enc()
				e.PutUvarint(v.ID)
				e.PutUvarint(uint64(len(v.Adj)))
				for k := range v.Adj {
					e.PutUvarint(v.Adj[k].Target)
					e.PutUvarint(uint64(v.Adj[k].TOrd))
				}
				r.Async(dest, h, e)
			}
		}
	})

	// Local counting phase: rank i handles pivots with mix64(id) ≡ i.
	counts := make([]uint64, n)
	w.Parallel(func(r *ygm.Rank) {
		rep := replicas[r.ID()]
		var local uint64
		for id, rv := range rep {
			// Pivot ownership decorrelated from the storage partitioner.
			if int(graph.Mix64(id^0x5bd1e995)%uint64(n)) != r.ID() {
				continue
			}
			adj := rv.adj
			for i := 0; i+1 < len(adj); i++ {
				qv, ok := rep[adj[i].ID]
				if !ok {
					continue
				}
				local += intersectKeys(qv.adj, adj[i+1:])
			}
		}
		counts[r.ID()] = local
	})
	dur := time.Since(start)
	var total uint64
	for _, c := range counts {
		total += c
	}
	st := w.Stats()
	return Result{Triangles: total, Duration: dur, Bytes: st.BytesSent, Messages: st.MessagesSent}
}

func intersectKeys(qa []graph.OrderKey, candidates []graph.OrderKey) uint64 {
	var nmatch uint64
	k := 0
	for _, c := range candidates {
		for k < len(qa) && qa[k].Less(c) {
			k++
		}
		if k < len(qa) && qa[k] == c {
			nmatch++
			k++
		}
	}
	return nmatch
}

// EdgeCentricCount reproduces the TriC [20] pattern: G⁺ edges are
// redistributed into edge-balanced partitions; each rank resolves its edges
// (p, q) by fetching Adj⁺(p) and Adj⁺(q) from their owners (once per
// distinct vertex per rank — the batch-oriented fetch with caching), then
// counts |Adj⁺(p) ∩ Adj⁺(q)| locally. Every triangle is charged to its base
// edge (its two <+-smallest vertices), so each is counted exactly once.
func EdgeCentricCount[VM, EM any](g *graph.DODGr[VM, EM]) Result {
	w := g.World()
	n := w.Size()
	type fetchState struct {
		edges [][2]uint64                 // owned (p, q) pairs
		cache map[uint64][]graph.OrderKey // vertex → Adj⁺ keys
	}
	states := make([]*fetchState, n)
	for i := range states {
		states[i] = &fetchState{cache: make(map[uint64][]graph.OrderKey)}
	}

	// hEdge: receive an owned edge. hReq: adjacency request → reply with
	// hRep carrying the full out-list.
	hEdge := w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		p := d.Uvarint()
		q := d.Uvarint()
		if d.Err() != nil {
			panic("baseline: corrupt edge message: " + d.Err().Error())
		}
		states[r.ID()].edges = append(states[r.ID()].edges, [2]uint64{p, q})
	})
	var hRep ygm.HandlerID
	hReq := w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		id := d.Uvarint()
		home := int(d.Uvarint())
		if d.Err() != nil {
			panic("baseline: corrupt adjacency request: " + d.Err().Error())
		}
		v, ok := g.Lookup(r, id)
		if !ok {
			panic("baseline: adjacency request for unknown vertex")
		}
		e := r.Enc()
		e.PutUvarint(id)
		e.PutUvarint(uint64(len(v.Adj)))
		for k := range v.Adj {
			e.PutUvarint(v.Adj[k].Target)
			e.PutUvarint(uint64(v.Adj[k].TOrd))
		}
		r.Async(home, hRep, e)
	})
	hRep = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		id := d.Uvarint()
		cnt := int(d.Uvarint())
		adj := make([]graph.OrderKey, 0, cnt)
		for i := 0; i < cnt; i++ {
			tid := d.Uvarint()
			tdeg := uint32(d.Uvarint())
			adj = append(adj, graph.KeyOf(tdeg, tid))
		}
		if d.Err() != nil {
			panic("baseline: corrupt adjacency reply: " + d.Err().Error())
		}
		states[r.ID()].cache[id] = adj
	})

	w.ResetStats()
	start := time.Now()

	// Redistribute G⁺ edges round-robin for edge balance.
	w.Parallel(func(r *ygm.Rank) {
		i := 0
		for vi := range g.LocalVertices(r) {
			v := &g.LocalVertices(r)[vi]
			for k := range v.Adj {
				e := r.Enc()
				e.PutUvarint(v.ID)
				e.PutUvarint(v.Adj[k].Target)
				r.Async((r.ID()+i)%n, hEdge, e)
				i++
			}
		}
	})
	// Fetch phase: request each distinct endpoint's adjacency once.
	w.Parallel(func(r *ygm.Rank) {
		st := states[r.ID()]
		requested := make(map[uint64]bool)
		ask := func(v uint64) {
			if requested[v] {
				return
			}
			requested[v] = true
			e := r.Enc()
			e.PutUvarint(v)
			e.PutUvarint(uint64(r.ID()))
			r.Async(g.Owner(v), hReq, e)
		}
		for _, pq := range st.edges {
			ask(pq[0])
			ask(pq[1])
		}
	})
	// Count phase: purely local.
	counts := make([]uint64, n)
	w.Parallel(func(r *ygm.Rank) {
		st := states[r.ID()]
		var local uint64
		for _, pq := range st.edges {
			pa, qa := st.cache[pq[0]], st.cache[pq[1]]
			local += intersectKeys(qa, pa)
		}
		counts[r.ID()] = local
	})
	dur := time.Since(start)
	var total uint64
	for _, c := range counts {
		total += c
	}
	st := w.Stats()
	return Result{Triangles: total, Duration: dur, Bytes: st.BytesSent, Messages: st.MessagesSent}
}
