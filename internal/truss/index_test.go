package truss

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"tripoll/internal/analysis"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// The maintenance equivalence property: after every Ingest/Advance — seed
// events, whole-triangle batches, duplicates, timestamp-revising merges
// (epoch rebuild fallback) and window expiries — the maintained index's
// ServeQuery answer is byte-identical to a from-scratch decomposition of
// the equivalent live edge set, for every probed window and span set.

func applyLiveRecs(live map[analysis.Edge]uint64, batch []graph.Edge[uint64]) {
	for _, e := range batch {
		if e.U == e.V {
			continue
		}
		k := analysis.Canon(e.U, e.V)
		if old, ok := live[k]; ok {
			live[k] = minMerge(old, e.Meta)
		} else {
			live[k] = e.Meta
		}
	}
}

// checkIndex probes the index across windows and span sets against the
// serial reference over the tracked live set.
func checkIndex(t *testing.T, label string, ix *Index[serialize.Unit], live map[analysis.Edge]uint64, horizon uint64) {
	t.Helper()
	windows := []struct {
		from, until *uint64
		wn          Window
	}{
		{nil, nil, WholeWindow()},
		{ptr(uint64(0)), ptr(horizon / 2), Window{From: 0, Until: horizon / 2}},
		{ptr(horizon / 4), nil, Window{From: horizon / 4, Until: ^uint64(0)}},
	}
	for wi, probe := range windows {
		got, handled, err := ix.ServeQuery("trussness", nil, probe.from, probe.until, nil)
		if err != nil || !handled {
			t.Fatalf("%s: window %d: ServeQuery: handled=%v err=%v", label, wi, handled, err)
		}
		want := buildDecomp(serialDecomp(live, probe.wn))
		if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
			t.Errorf("%s: window %d: index diverges from rebuild\n got  %s\n want %s", label, wi, g, w)
		}
	}
	spans := []Window{{From: 0, Until: horizon / 3}, {From: horizon / 5, Until: horizon}}
	args, _ := json.Marshal(SpanTrussArgs{K: 3, Spans: spans})
	got, handled, err := ix.ServeQuery("spantruss", args, nil, nil, nil)
	if err != nil || !handled {
		t.Fatalf("%s: spantruss: handled=%v err=%v", label, handled, err)
	}
	want := SpanResult{K: 3, Spans: make([]SpanTruss, len(spans))}
	for i, sp := range spans {
		want.Spans[i] = buildSpanTruss(3, sp, serialDecomp(live, sp))
	}
	if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
		t.Errorf("%s: spantruss diverges from rebuild\n got  %s\n want %s", label, g, w)
	}
}

func ptr(v uint64) *uint64 { return &v }

func TestIndexEquivalenceProperty(t *testing.T) {
	const horizon = 1 << 10
	for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
		label := fmt.Sprintf("%v", mode)
		rng := rand.New(rand.NewSource(23))
		nv := uint64(32)
		edge := func() graph.Edge[uint64] {
			u, v := rng.Uint64()%nv, rng.Uint64()%nv
			return graph.Edge[uint64]{U: u, V: v, Meta: rng.Uint64() % horizon}
		}

		w := ygm.MustWorld(3, ygm.Options{})
		live := map[analysis.Edge]uint64{}

		var seed []graph.Edge[uint64]
		for i := 0; i < 80; i++ {
			seed = append(seed, edge())
		}
		applyLiveRecs(live, seed)
		var recs []edgeRec
		for e, ts := range live {
			recs = append(recs, edgeRec{e.U, e.V, ts})
		}
		g := buildGraph(w, recs, graph.OrderDegree)

		ix := NewIndex[serialize.Unit](IndexOptions{MergeTimestamp: minMerge})
		s, err := core.OpenStreamSinks(g, core.StreamOptions[uint64]{Survey: core.Options{Mode: mode}, MergeEdgeMeta: minMerge},
			core.TemporalPlan(), []core.StreamSink[serialize.Unit, uint64]{ix})
		if err != nil {
			t.Fatalf("%s: OpenStreamSinks: %v", label, err)
		}
		if ix.IndexEpoch() == 0 {
			t.Fatalf("%s: seed commit must bump the index epoch", label)
		}
		checkIndex(t, label+"/seed", ix, live, horizon)

		cutoffs := []uint64{horizon / 6, horizon / 3}
		for batchNo := 0; batchNo < 4; batchNo++ {
			var batch []graph.Edge[uint64]
			for i := 0; i < 40; i++ {
				batch = append(batch, edge())
			}
			// Whole triangle among fresh vertices, all three edges at once.
			base := nv + uint64(batchNo)*3 + 200
			for _, pr := range [][2]uint64{{base, base + 1}, {base + 1, base + 2}, {base, base + 2}} {
				batch = append(batch, graph.Edge[uint64]{U: pr[0], V: pr[1], Meta: uint64(batchNo+1) * 97 % horizon})
			}
			if _, err := s.Ingest(batch); err != nil {
				t.Fatalf("%s: batch %d: %v", label, batchNo, err)
			}
			applyLiveRecs(live, batch)
			checkIndex(t, fmt.Sprintf("%s/batch%d", label, batchNo), ix, live, horizon)

			if batchNo < len(cutoffs) {
				cut := cutoffs[batchNo]
				if _, err := s.Advance(cut); err != nil {
					t.Fatalf("%s: advance %d: %v", label, cut, err)
				}
				for k, tm := range live {
					if tm < cut {
						delete(live, k)
					}
				}
				checkIndex(t, fmt.Sprintf("%s/advance%d", label, cut), ix, live, horizon)
			}
		}

		// Timestamp-revising duplicate: pick a live edge and re-insert it
		// earlier. The revising merge forces an epoch rebuild, which resets
		// support and re-delivers every live triangle — the index must come
		// out identical to a from-scratch decomposition again.
		var revised bool
		for e, ts := range live {
			if ts == 0 {
				continue
			}
			batch := []graph.Edge[uint64]{{U: e.U, V: e.V, Meta: ts - 1}}
			res, err := s.Ingest(batch)
			if err != nil {
				t.Fatalf("%s: revising ingest: %v", label, err)
			}
			if !res.Rebuilt {
				t.Fatalf("%s: revising merge must force an epoch rebuild", label)
			}
			applyLiveRecs(live, batch)
			revised = true
			break
		}
		if !revised {
			t.Fatalf("%s: no revisable live edge", label)
		}
		checkIndex(t, label+"/rebuild", ix, live, horizon)

		w.Close()
	}
}

// TestIndexMemoInvalidation pins the memo discipline: a repeat query is
// served from cache (no recompute), a mutation overlapping the cached
// window invalidates it, and one outside leaves it valid.
func TestIndexMemoInvalidation(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	live := map[analysis.Edge]uint64{}
	seed := []graph.Edge[uint64]{
		{U: 1, V: 2, Meta: 10}, {U: 2, V: 3, Meta: 20}, {U: 1, V: 3, Meta: 30},
		{U: 3, V: 4, Meta: 500}, {U: 4, V: 5, Meta: 510}, {U: 3, V: 5, Meta: 520},
	}
	applyLiveRecs(live, seed)
	var recs []edgeRec
	for e, ts := range live {
		recs = append(recs, edgeRec{e.U, e.V, ts})
	}
	g := buildGraph(w, recs, graph.OrderDegree)
	ix := NewIndex[serialize.Unit](IndexOptions{MergeTimestamp: minMerge})
	s, err := core.OpenStreamSinks(g, core.StreamOptions[uint64]{MergeEdgeMeta: minMerge},
		core.TemporalPlan(), []core.StreamSink[serialize.Unit, uint64]{ix})
	if err != nil {
		t.Fatalf("OpenStreamSinks: %v", err)
	}

	query := func() {
		t.Helper()
		if _, handled, err := ix.ServeQuery("trussness", nil, ptr(uint64(0)), ptr(uint64(100)), nil); !handled || err != nil {
			t.Fatalf("ServeQuery: handled=%v err=%v", handled, err)
		}
	}
	query()
	st := ix.Stats()
	if st.Served != 1 || st.Recomputed != 1 {
		t.Fatalf("first query: served=%d recomputed=%d, want 1/1", st.Served, st.Recomputed)
	}
	query()
	if st = ix.Stats(); st.Served != 2 || st.Recomputed != 1 {
		t.Fatalf("repeat query must hit the memo: served=%d recomputed=%d", st.Served, st.Recomputed)
	}

	// A mutation far outside the cached window [0, 100] leaves it valid.
	if _, err := s.Ingest([]graph.Edge[uint64]{{U: 7, V: 8, Meta: 900}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	query()
	if st = ix.Stats(); st.Recomputed != 1 {
		t.Fatalf("out-of-window mutation must keep the memo: recomputed=%d", st.Recomputed)
	}

	// One inside invalidates it.
	if _, err := s.Ingest([]graph.Edge[uint64]{{U: 1, V: 4, Meta: 15}}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	query()
	if st = ix.Stats(); st.Recomputed != 2 {
		t.Fatalf("in-window mutation must invalidate the memo: recomputed=%d", st.Recomputed)
	}

	// Unknown analyses fall through to the traversal path.
	if _, handled, _ := ix.ServeQuery("count", nil, nil, nil, nil); handled {
		t.Fatal("non-truss analyses must not be index-handled")
	}
}
