package truss

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"tripoll/internal/analysis"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// The truss parity property: the distributed analyses — span-bucketed
// support accumulated over the fused traversal, peeled at Finalize — must
// produce byte-identical JSON to the single-machine reference
// (analysis.TrussDecomposition on the same windowed edge set), across
// orderings × transports × modes.

func minMerge(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

type edgeRec struct {
	u, v, ts uint64
}

// genEdges produces a random multigraph with duplicates; the canonical
// live set after min-merge is what both sides must agree on.
func genEdges(seed int64, n int, nv uint64, horizon uint64) []edgeRec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]edgeRec, 0, n)
	for i := 0; i < n; i++ {
		u, v := rng.Uint64()%nv, rng.Uint64()%nv
		if u == v {
			continue
		}
		out = append(out, edgeRec{u, v, rng.Uint64() % horizon})
	}
	return out
}

// liveSet folds the records into the canonical (min-merged) edge set.
func liveSet(recs []edgeRec) map[analysis.Edge]uint64 {
	live := map[analysis.Edge]uint64{}
	for _, e := range recs {
		k := analysis.Canon(e.u, e.v)
		if old, ok := live[k]; ok {
			live[k] = minMerge(old, e.ts)
		} else {
			live[k] = e.ts
		}
	}
	return live
}

func buildGraph(w *ygm.World, recs []edgeRec, ord graph.Ordering) *graph.DODGr[serialize.Unit, uint64] {
	b := graph.NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), graph.BuilderOptions[uint64]{Ordering: ord, MergeEdgeMeta: minMerge})
	var g *graph.DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(recs); i += r.Size() {
			b.AddEdge(r, recs[i].u, recs[i].v, recs[i].ts)
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return g
}

// serialDecomp is the reference: trussness of the subgraph of live edges
// timestamped inside the window.
func serialDecomp(live map[analysis.Edge]uint64, wn Window) map[analysis.Edge]int {
	var edges []analysis.Edge
	for e, ts := range live {
		if ts >= wn.From && ts <= wn.Until {
			edges = append(edges, e)
		}
	}
	return analysis.TrussDecomposition(edges)
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

func TestTrussParityProperty(t *testing.T) {
	const horizon = 1 << 10
	recs := genEdges(11, 420, 48, horizon)
	live := liveSet(recs)
	windows := []Window{
		WholeWindow(),
		{From: 0, Until: horizon / 2},
		{From: horizon / 4, Until: horizon - 1},
	}
	spans := []Window{
		{From: 0, Until: horizon / 3},
		{From: horizon / 4, Until: 3 * horizon / 4},
		{From: 0, Until: horizon},
	}
	for _, tr := range []ygm.TransportKind{ygm.TransportChannel, ygm.TransportTCP} {
		for _, ord := range []graph.Ordering{graph.OrderDegree, graph.OrderDegeneracy} {
			for _, mode := range []core.Mode{core.PushOnly, core.PushPull} {
				label := fmt.Sprintf("%v/%v/%v", tr, ord, mode)
				w := ygm.MustWorld(3, ygm.Options{Transport: tr})
				g := buildGraph(w, recs, ord)

				for wi, win := range windows {
					plan := core.TemporalPlan().Window(win.From, win.Until)
					var out *Accum
					if _, err := core.Run(g, core.Options{Mode: mode}, plan,
						TrussnessAnalysis(g, win).Bind(&out)); err != nil {
						t.Fatalf("%s: run trussness: %v", label, err)
					}
					ref := serialDecomp(live, win)
					want := mustJSON(t, buildDecomp(ref))
					got := mustJSON(t, out.Outcome())
					if got != want {
						t.Errorf("%s: window %d: trussness diverges\n got  %s\n want %s", label, wi, got, want)
					}

					var mout *Accum
					if _, err := core.Run(g, core.Options{Mode: mode}, plan,
						MaxTrussAnalysis(g, win).Bind(&mout)); err != nil {
						t.Fatalf("%s: run maxtruss: %v", label, err)
					}
					if got, want := mustJSON(t, mout.Outcome()), mustJSON(t, buildMax(ref)); got != want {
						t.Errorf("%s: window %d: maxtruss diverges\n got  %s\n want %s", label, wi, got, want)
					}
				}

				env := WholeWindow()
				k, sp, err := SpanTrussArgs{K: 3, Spans: spans}.Normalize(env)
				if err != nil {
					t.Fatalf("%s: normalize: %v", label, err)
				}
				var sout *Accum
				if _, err := core.Run(g, core.Options{Mode: mode}, core.TemporalPlan(),
					SpanTrussAnalysis(g, env, k, sp).Bind(&sout)); err != nil {
					t.Fatalf("%s: run spantruss: %v", label, err)
				}
				want := SpanResult{K: k, Spans: make([]SpanTruss, len(sp))}
				for i, s := range sp {
					want.Spans[i] = buildSpanTruss(k, s, serialDecomp(live, s))
				}
				if got, wantS := mustJSON(t, sout.Outcome()), mustJSON(t, want); got != wantS {
					t.Errorf("%s: spantruss diverges\n got  %s\n want %s", label, got, wantS)
				}

				w.Close()
			}
		}
	}
}

// TestSpanTrussArgsNormalize pins the argument defaults and rejections.
func TestSpanTrussArgsNormalize(t *testing.T) {
	env := Window{From: 10, Until: 90}
	k, spans, err := SpanTrussArgs{}.Normalize(env)
	if err != nil || k != 3 || len(spans) != 1 || spans[0] != env {
		t.Fatalf("zero args: got k=%d spans=%v err=%v, want k=3 spans=[env]", k, spans, err)
	}
	if _, _, err := (SpanTrussArgs{K: 1}).Normalize(env); err == nil {
		t.Fatal("k=1 must be rejected")
	}
	if _, _, err := (SpanTrussArgs{Spans: []Window{{From: 5, Until: 2}}}).Normalize(env); err == nil {
		t.Fatal("inverted span must be rejected")
	}
}
