package truss

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"tripoll/internal/analysis"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// Index is the maintained triangle-span index: a core.StreamSink that
// keeps a graph.TriSpanStore continuously consistent with a Stream's live
// window, so truss queries answer from the store instead of re-running
// the fused traversal.
//
// Maintenance discipline:
//
//   - edge state is maintained structurally: seed edges arrive via
//     SinkSeedEdge (rank-local, published at SinkCommit), batches via
//     SinkBatch (the premerged batch is process-identical, applied
//     locally), expiry via SinkExpire (everything below the cutoff
//     leaves, mirroring the shard tombstone pass). Re-insertions merge
//     timestamps through MergeTimestamp, which MUST equal the stream's
//     MergeEdgeMeta or the stored timestamps diverge from the shards;
//   - support state follows the triangle events: insertions bump the
//     [lo, hi] bucket on the triangle's three edges. Expiry deltas are
//     ignored (a triangle dies iff its minimum edge timestamp falls
//     below the watermark, so SinkExpire's drop-buckets-by-lo is exact,
//     and the Ingest delta path never emits negative signs — a revising
//     merge forces an epoch rebuild instead), and a rebuild resets
//     support before the full traversal re-delivers it;
//   - SinkCommit publishes the rank-local event buffers with one
//     AllGather per kind and applies them in global rank order — after
//     it, every process of a distributed world holds an identical store,
//     which is what lets the driver answer queries with zero messages.
//
// Queries go through ServeQuery, which also implements the engine's
// index-serving seam structurally (IndexEpoch + ServeQuery). Results are
// memoized; a commit invalidates only cached windows its dirty timestamp
// range overlaps. One goroutine must drive the sink and query methods (the
// engine's scheduler does); mu exists so Stats can read concurrently from
// observability endpoints.
type Index[VM any] struct {
	mu    sync.Mutex
	store *graph.TriSpanStore
	merge func(a, b uint64) uint64

	edgeBuf [][]uint64 // per global rank: (u, v, ts) seed-edge triples
	triBuf  [][]uint64 // per global rank: (p, q, r, lo, hi) triangle tuples

	epoch uint64

	// Pending dirty bounds for the commit in progress.
	pendingDirty bool
	pendingLo    uint64
	pendingHi    uint64
	pendingReset bool

	// Committed dirty ranges, ascending epoch, bounded; floor is the
	// newest epoch that has been trimmed off (cache entries at or below
	// it can no longer be validated).
	dirty []dirtyRange
	floor uint64

	cache map[string]cacheEntry

	// Serving statistics, exposed through Stats.
	served, recomputed, commits uint64
}

type dirtyRange struct {
	epoch, lo, hi uint64
}

type cacheEntry struct {
	epoch       uint64
	from, until uint64
	val         any
}

// IndexOptions configures NewIndex.
type IndexOptions struct {
	// MergeTimestamp combines stored and incoming timestamps on duplicate
	// edge insertion. Must equal the stream's MergeEdgeMeta (nil keeps
	// the stored value, like a nil merge there).
	MergeTimestamp func(a, b uint64) uint64
}

// NewIndex returns an empty index ready to be attached at stream open via
// core.OpenStreamSinks.
func NewIndex[VM any](opts IndexOptions) *Index[VM] {
	return &Index[VM]{
		store: graph.NewTriSpanStore(),
		merge: opts.MergeTimestamp,
		cache: make(map[string]cacheEntry),
	}
}

// Store exposes the underlying triangle-span store (snapshot encoding,
// direct inspection in tests).
func (ix *Index[VM]) Store() *graph.TriSpanStore { return ix.store }

// IndexStats is the index's observability surface.
type IndexStats struct {
	Epoch      uint64 `json:"epoch"`
	Edges      int    `json:"edges"`
	Buckets    int    `json:"buckets"`
	Served     uint64 `json:"served"`
	Recomputed uint64 `json:"recomputed"`
	Commits    uint64 `json:"commits"`
}

// Stats reports the index's current size and serving counters. Safe to
// call from any goroutine.
func (ix *Index[VM]) Stats() IndexStats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return IndexStats{
		Epoch:      ix.epoch,
		Edges:      ix.store.NumEdges(),
		Buckets:    ix.store.NumBuckets(),
		Served:     ix.served,
		Recomputed: ix.recomputed,
		Commits:    ix.commits,
	}
}

func (ix *Index[VM]) touch(lo, hi uint64) {
	if !ix.pendingDirty {
		ix.pendingDirty, ix.pendingLo, ix.pendingHi = true, lo, hi
		return
	}
	if lo < ix.pendingLo {
		ix.pendingLo = lo
	}
	if hi > ix.pendingHi {
		ix.pendingHi = hi
	}
}

// StreamSink implementation. VM is the stream's vertex metadata type; the
// edge metadata must be uint64 timestamps, like every temporal analysis.

// SinkName identifies the sink in diagnostics.
func (ix *Index[VM]) SinkName() string { return "truss-index" }

// SinkOpen sizes the per-rank event buffers.
func (ix *Index[VM]) SinkOpen(nranks int) {
	ix.edgeBuf = make([][]uint64, nranks)
	ix.triBuf = make([][]uint64, nranks)
}

// SinkSeedEdge buffers one seed edge on its observing rank.
func (ix *Index[VM]) SinkSeedEdge(r *ygm.Rank, u, v uint64, em uint64) {
	ix.edgeBuf[r.ID()] = append(ix.edgeBuf[r.ID()], u, v, em)
}

// SinkTriangle buffers one created triangle on its observing rank.
// Expiry deltas (sign < 0) are ignored; see the type comment.
func (ix *Index[VM]) SinkTriangle(r *ygm.Rank, t *core.Triangle[VM, uint64], sign int) {
	if sign < 0 {
		return
	}
	lo, hi := envelope(t.MetaPQ, t.MetaPR, t.MetaQR)
	ix.triBuf[r.ID()] = append(ix.triBuf[r.ID()], t.P, t.Q, t.R, lo, hi)
}

// SinkBatch applies one premerged Ingest batch to the edge state. The
// batch is identical on every process, so this needs no exchange.
func (ix *Index[VM]) SinkBatch(batch []graph.Edge[uint64]) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, e := range batch {
		if old, ok := ix.store.Edges[graph.CanonPair(e.U, e.V)]; ok {
			// A duplicate can revise the stored timestamp; both values
			// bound the affected windows.
			ix.touch(minU64(old, e.Meta), maxU64(old, e.Meta))
		} else {
			ix.touch(e.Meta, e.Meta)
		}
		ix.store.InsertEdge(e.U, e.V, e.Meta, ix.merge)
	}
}

// SinkExpire drops everything below the watermark, mirroring the shard
// tombstone pass.
func (ix *Index[VM]) SinkExpire(cutoff uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.store.ExpireBefore(cutoff)
	if cutoff > 0 {
		ix.touch(0, cutoff-1)
	}
}

// SinkReset clears support state ahead of an epoch rebuild; the rebuild's
// full traversal re-delivers every live-window triangle via SinkTriangle.
func (ix *Index[VM]) SinkReset() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.store.ResetSupport()
	ix.pendingReset = true
}

// SinkInvertible reports that the index tolerates the delta expiry path.
func (ix *Index[VM]) SinkInvertible() bool { return true }

// SinkCommit publishes the rank-local buffers collectively and applies
// them in global rank order, identically on every process.
func (ix *Index[VM]) SinkCommit(w *ygm.World) {
	var edges, tris [][]uint64
	w.Parallel(func(r *ygm.Rank) {
		ge := ygm.AllGather(r, ix.edgeBuf[r.ID()])
		gt := ygm.AllGather(r, ix.triBuf[r.ID()])
		if r.ID() == w.LeaderID() {
			edges, tris = ge, gt
		}
	})
	ix.mu.Lock()
	defer ix.mu.Unlock()
	changed := false
	for _, buf := range edges {
		for i := 0; i+3 <= len(buf); i += 3 {
			u, v, ts := buf[i], buf[i+1], buf[i+2]
			ix.store.InsertEdge(u, v, ts, ix.merge)
			ix.touch(ts, ts)
			changed = true
		}
	}
	for _, buf := range tris {
		for i := 0; i+5 <= len(buf); i += 5 {
			ix.store.AddSupport(buf[i], buf[i+1], buf[i+2], buf[i+3], buf[i+4], 1)
			ix.touch(buf[i+3], buf[i+4])
			changed = true
		}
	}
	for i := range ix.edgeBuf {
		ix.edgeBuf[i] = ix.edgeBuf[i][:0]
	}
	for i := range ix.triBuf {
		ix.triBuf[i] = ix.triBuf[i][:0]
	}
	if !changed && !ix.pendingDirty && !ix.pendingReset {
		return // empty commit: nothing moved, keep the epoch (and caches)
	}
	ix.epoch++
	ix.commits++
	if ix.pendingReset {
		// A rebuild replays every live triangle; invalidate wholesale.
		ix.cache = make(map[string]cacheEntry)
		ix.dirty = ix.dirty[:0]
		ix.floor = ix.epoch
	} else if ix.pendingDirty {
		ix.dirty = append(ix.dirty, dirtyRange{epoch: ix.epoch, lo: ix.pendingLo, hi: ix.pendingHi})
		const maxDirty = 64
		for len(ix.dirty) > maxDirty {
			ix.floor = ix.dirty[0].epoch
			ix.dirty = ix.dirty[1:]
		}
	}
	ix.pendingDirty, ix.pendingReset = false, false
}

// cacheGet returns a memoized answer still valid for its window: the
// entry survives every commit since it was stored whose dirty timestamp
// range misses the window.
func (ix *Index[VM]) cacheGet(key string) (any, bool) {
	ent, ok := ix.cache[key]
	if !ok {
		return nil, false
	}
	if ent.epoch < ix.floor {
		delete(ix.cache, key)
		return nil, false
	}
	for _, d := range ix.dirty {
		if d.epoch <= ent.epoch {
			continue
		}
		if d.lo <= ent.until && ent.from <= d.hi {
			delete(ix.cache, key)
			return nil, false
		}
	}
	return ent.val, true
}

func (ix *Index[VM]) cachePut(key string, from, until uint64, val any) {
	ix.cache[key] = cacheEntry{epoch: ix.epoch, from: from, until: until, val: val}
}

// decompose peels one window from the store: edges timestamped inside it,
// seeded with the window's (δ-constrained) bucket sums.
func (ix *Index[VM]) decompose(wn Window, hasDelta bool, delta uint64) map[analysis.Edge]int {
	pairs := ix.store.EdgesIn(wn.From, wn.Until)
	edges := make([]analysis.Edge, len(pairs))
	counts := make(map[analysis.Edge]uint64, len(pairs))
	for i, p := range pairs {
		edges[i] = analysis.Edge{U: p.First, V: p.Second}
		if c := ix.store.SupportIn(p.First, p.Second, wn.From, wn.Until, hasDelta, delta); c > 0 {
			counts[edges[i]] = c
		}
	}
	return analysis.TrussFromSupports(edges, counts)
}

// IndexEpoch returns the commit counter; the engine keys its own result
// cache on it so index-backed answers invalidate with the index.
func (ix *Index[VM]) IndexEpoch() uint64 { return ix.epoch }

// ServeQuery answers one truss analysis from the maintained index:
// handled reports whether the analysis is index-backed at all (false
// falls through to the traversal path); the answer is byte-identical to
// the corresponding Analysis's outcome on the materialized snapshot.
// from/until/delta carry the query's window exactly as the engine's
// traversal path would compile them into a plan.
func (ix *Index[VM]) ServeQuery(name string, args json.RawMessage, from, until, delta *uint64) (any, bool, error) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	env := WholeWindow()
	if from != nil {
		env.From = *from
	}
	if until != nil {
		env.Until = *until
	}
	hasDelta := delta != nil
	var d uint64
	if hasDelta {
		d = *delta
	}
	switch name {
	case "trussness", "maxtruss":
		key := fmt.Sprintf("%s|%d|%d|%v|%d", name, env.From, env.Until, hasDelta, d)
		if v, ok := ix.cacheGet(key); ok {
			ix.served++
			return v, true, nil
		}
		tr := ix.decompose(env, hasDelta, d)
		var out any
		if name == "trussness" {
			out = buildDecomp(tr)
		} else {
			out = buildMax(tr)
		}
		ix.cachePut(key, env.From, env.Until, out)
		ix.served++
		ix.recomputed++
		return out, true, nil
	case "spantruss":
		var sa SpanTrussArgs
		if len(args) > 0 {
			if err := json.Unmarshal(args, &sa); err != nil {
				return nil, true, fmt.Errorf("truss: bad spantruss args: %w", err)
			}
		}
		k, spans, err := sa.Normalize(env)
		if err != nil {
			return nil, true, err
		}
		var kb strings.Builder
		fmt.Fprintf(&kb, "spantruss|%d|%d|%v|%d|%d", env.From, env.Until, hasDelta, d, k)
		for _, sp := range spans {
			fmt.Fprintf(&kb, "|%d,%d", sp.From, sp.Until)
		}
		key := kb.String()
		if v, ok := ix.cacheGet(key); ok {
			ix.served++
			return v, true, nil
		}
		out := SpanResult{K: k, Spans: make([]SpanTruss, len(spans))}
		for i, sp := range spans {
			eff := sp.intersect(env)
			out.Spans[i] = buildSpanTruss(k, sp, ix.decompose(eff, hasDelta, d))
		}
		ix.cachePut(key, env.From, env.Until, out)
		ix.served++
		ix.recomputed++
		return out, true, nil
	default:
		return nil, false, nil
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
