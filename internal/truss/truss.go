// Package truss is the temporal truss subsystem: span-truss decomposition
// over time-windowed triangle support, in two complementary forms.
//
// The first form is a family of first-class Analysis values —
// TrussnessAnalysis, MaxTrussAnalysis, SpanTrussAnalysis — that ride the
// fused traversal exactly like the stock surveys: Observe folds each
// plan-matching triangle into per-edge support counters, the standard
// reduction merges them, and Finalize (which, per the ClusteringAnalysis
// precedent, may run collectives) gathers the window's edge set and peels
// it with analysis.TrussFromSupports. This is Lotito-style span-truss
// mining (PAPERS.md): the k-truss of the subgraph induced by a time span,
// under the plan's closed-window and close-within-δ semantics.
//
// The second form is a maintained triangle-span index (Index, in
// index.go) that keeps the same per-edge span-bucketed support current
// under Stream Ingest/Advance — Hu et al.'s dynamic-maintenance angle —
// so repeated queries answer without re-enumerating. Both forms funnel
// through the same peel and the same outcome builders, which is what
// makes their results byte-identical (property-tested).
//
// Decomposition semantics, shared by both paths, for a closed window
// [from, until] (optionally δ-constrained):
//
//   - the edge set is every live edge whose timestamp lies in the window;
//   - support(e) is the number of triangles containing e whose timestamp
//     envelope [lo, hi] (min/max of the three edge timestamps) satisfies
//     from ≤ lo ∧ hi ≤ until ∧ (hi − lo ≤ δ when constrained);
//   - trussness is the peel of that edge set seeded with those supports.
//
// With exact window supports the peel equals TrussDecomposition on the
// window subgraph whenever δ is absent; δ tightens support only, giving
// the span-constrained-triangle variant.
package truss

import (
	"fmt"
	"sort"

	"tripoll/internal/analysis"
	"tripoll/internal/core"
	"tripoll/internal/graph"
	"tripoll/internal/ygm"
)

// Window is a closed timestamp interval [From, Until] on edge timestamps.
type Window struct {
	From  uint64 `json:"from"`
	Until uint64 `json:"until"`
}

// WholeWindow spans every representable timestamp.
func WholeWindow() Window { return Window{From: 0, Until: ^uint64(0)} }

// contains reports whether the closed envelope [lo, hi] fits the window.
func (wn Window) contains(lo, hi uint64) bool { return wn.From <= lo && hi <= wn.Until }

// intersect clips wn to the envelope env.
func (wn Window) intersect(env Window) Window {
	out := wn
	if env.From > out.From {
		out.From = env.From
	}
	if env.Until < out.Until {
		out.Until = env.Until
	}
	return out
}

// SpanEdge keys the distributed accumulator: a span slot (0 for the
// analyses that use a single window) and a canonical edge.
type SpanEdge struct {
	Span uint32
	U, V uint64
}

// Accum is the cross-rank accumulator shared by all truss analyses:
// span-bucketed per-edge triangle support. It crosses process boundaries
// through the reduction's gob exchange (registered in internal/dist), so
// its exported surface must stay gob-friendly; the finalized outcome is
// unexported and computed after the reduce, on every process alike.
type Accum struct {
	Support map[SpanEdge]uint64

	outcome any
}

// Outcome returns the finalized result (one of Decomp, MaxResult,
// SpanResult), or nil before Finalize ran.
func (a *Accum) Outcome() any {
	if a == nil {
		return nil
	}
	return a.outcome
}

func newAccum() *Accum { return &Accum{Support: make(map[SpanEdge]uint64)} }

func mergeAccum(a, b *Accum) *Accum {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.Support == nil {
		a.Support = b.Support
		return a
	}
	for k, n := range b.Support {
		a.Support[k] += n
	}
	return a
}

func (a *Accum) bump(span uint32, x, y uint64) {
	if x > y {
		x, y = y, x
	}
	a.Support[SpanEdge{Span: span, U: x, V: y}]++
}

// envelope returns the min and max of a triangle's three edge timestamps.
func envelope(a, b, c uint64) (lo, hi uint64) {
	lo, hi = a, a
	if b < lo {
		lo = b
	}
	if b > hi {
		hi = b
	}
	if c < lo {
		lo = c
	}
	if c > hi {
		hi = c
	}
	return lo, hi
}

// Result types. All slices are sorted deterministically so that JSON
// output is byte-identical across ranks, transports and the two serving
// paths (traversal vs maintained index).

// EdgeTruss is one edge's trussness.
type EdgeTruss struct {
	U uint64 `json:"u"`
	V uint64 `json:"v"`
	K int    `json:"k"`
}

// Decomp is the full per-edge trussness decomposition of a window.
type Decomp struct {
	Edges []EdgeTruss `json:"edges"`
	Max   int         `json:"max"`
}

// TrussSize is the size of one k-truss level.
type TrussSize struct {
	K     int `json:"k"`
	Edges int `json:"edges"`
}

// MaxResult summarizes a window's decomposition: the maximum trussness
// and the size of every k-truss.
type MaxResult struct {
	Max   int         `json:"max"`
	Sizes []TrussSize `json:"sizes"`
}

// EdgePair is a canonical undirected edge.
type EdgePair struct {
	U uint64 `json:"u"`
	V uint64 `json:"v"`
}

// SpanTruss is the maximal k-truss of one time span: every edge whose
// trussness within the span reaches k.
type SpanTruss struct {
	From  uint64     `json:"from"`
	Until uint64     `json:"until"`
	Size  int        `json:"size"`
	Edges []EdgePair `json:"edges"`
}

// SpanResult is the Lotito-style span-truss answer: the k-truss per
// requested span.
type SpanResult struct {
	K     int         `json:"k"`
	Spans []SpanTruss `json:"spans"`
}

// sortedEdges returns the decomposition's edges in canonical (U, V) order.
func sortedEdges(tr map[analysis.Edge]int) []analysis.Edge {
	out := make([]analysis.Edge, 0, len(tr))
	for e := range tr {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

func buildDecomp(tr map[analysis.Edge]int) Decomp {
	d := Decomp{Edges: make([]EdgeTruss, 0, len(tr))}
	for _, e := range sortedEdges(tr) {
		k := tr[e]
		d.Edges = append(d.Edges, EdgeTruss{U: e.U, V: e.V, K: k})
		if k > d.Max {
			d.Max = k
		}
	}
	return d
}

func buildMax(tr map[analysis.Edge]int) MaxResult {
	m := MaxResult{Sizes: []TrussSize{}}
	m.Max = analysis.MaxTruss(tr)
	sizes := analysis.TrussSizes(tr)
	ks := make([]int, 0, len(sizes))
	for k := range sizes {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		m.Sizes = append(m.Sizes, TrussSize{K: k, Edges: sizes[k]})
	}
	return m
}

func buildSpanTruss(k int, wn Window, tr map[analysis.Edge]int) SpanTruss {
	st := SpanTruss{From: wn.From, Until: wn.Until, Edges: []EdgePair{}}
	for _, e := range sortedEdges(tr) {
		if tr[e] >= k {
			st.Edges = append(st.Edges, EdgePair{U: e.U, V: e.V})
		}
	}
	st.Size = len(st.Edges)
	return st
}

// SpanTrussArgs are the JSON arguments of the spantruss analysis.
type SpanTrussArgs struct {
	// K selects which k-truss to report per span; 0 defaults to 3.
	K int `json:"k"`
	// Spans are the time spans to decompose; empty defaults to the
	// query's whole window. Spans are clipped to the query window.
	Spans []Window `json:"spans"`
}

// Normalize validates the arguments against the query envelope, applying
// defaults. The returned spans preserve input order (they key the result).
func (a SpanTrussArgs) Normalize(env Window) (k int, spans []Window, err error) {
	k = a.K
	if k == 0 {
		k = 3
	}
	if k < 2 {
		return 0, nil, fmt.Errorf("truss: k must be ≥ 2 (got %d)", a.K)
	}
	spans = a.Spans
	if len(spans) == 0 {
		spans = []Window{env}
	}
	for i, sp := range spans {
		if sp.From > sp.Until {
			return 0, nil, fmt.Errorf("truss: span %d inverted: from %d > until %d", i, sp.From, sp.Until)
		}
	}
	return k, spans, nil
}

// edgeTS is one gathered window edge with its timestamp.
type edgeTS struct {
	u, v, ts uint64
}

// gatherWindowEdges assembles, identically on every process, the
// undirected edges of g whose timestamp lies in the window. Each edge is
// read once from its <+-source's adjacency (the DODGr stores G⁺, one
// directed copy per undirected edge), flattened rank-locally and
// exchanged with one AllGather — the same collective-in-Finalize
// discipline as ClusteringAnalysis's degree pass. Must be called outside
// parallel regions; collective.
func gatherWindowEdges[VM any](g *graph.DODGr[VM, uint64], win Window) []edgeTS {
	w := g.World()
	var all [][]uint64
	w.Parallel(func(r *ygm.Rank) {
		var flat []uint64
		for _, v := range g.LocalVertices(r) {
			for _, o := range v.Adj {
				if o.EMeta < win.From || o.EMeta > win.Until {
					continue
				}
				flat = append(flat, v.ID, o.Target, o.EMeta)
			}
		}
		gathered := ygm.AllGather(r, flat)
		if r.ID() == w.LeaderID() {
			all = gathered
		}
	})
	var out []edgeTS
	for _, buf := range all {
		for i := 0; i+3 <= len(buf); i += 3 {
			out = append(out, edgeTS{u: buf[i], v: buf[i+1], ts: buf[i+2]})
		}
	}
	return out
}

// spanDecompose peels one span: the gathered edges restricted to the
// span's window, seeded with the accumulated supports of that span slot.
func spanDecompose(acc *Accum, span uint32, wn Window, edges []edgeTS) map[analysis.Edge]int {
	var in []analysis.Edge
	for _, e := range edges {
		if e.ts < wn.From || e.ts > wn.Until {
			continue
		}
		in = append(in, analysis.Canon(e.u, e.v))
	}
	counts := make(map[analysis.Edge]uint64, len(in))
	for se, n := range acc.Support {
		if se.Span == span {
			counts[analysis.Edge{U: se.U, V: se.V}] = n
		}
	}
	return analysis.TrussFromSupports(in, counts)
}

// TrussnessAnalysis computes the per-edge trussness of the window's
// subgraph. Observe counts every triangle it is handed — window and δ
// filtering is the attached plan's job (the engine compiles the query's
// from/until/δ into the plan; standalone callers must pass a matching
// plan to Run/OpenStream). The constructor captures g because Finalize
// gathers the window's edge set collectively.
func TrussnessAnalysis[VM any](g *graph.DODGr[VM, uint64], win Window) core.Analysis[VM, uint64, *Accum] {
	return core.Analysis[VM, uint64, *Accum]{
		Name:     "trussness",
		NewAccum: newAccum,
		Observe:  observeWhole[VM],
		Merge:    mergeAccum,
		Finalize: func(acc *Accum) *Accum {
			acc.outcome = buildDecomp(spanDecompose(acc, 0, win, gatherWindowEdges(g, win)))
			return acc
		},
	}
}

// MaxTrussAnalysis computes the maximum trussness and k-truss sizes of
// the window's subgraph. Same observation and plan contract as
// TrussnessAnalysis.
func MaxTrussAnalysis[VM any](g *graph.DODGr[VM, uint64], win Window) core.Analysis[VM, uint64, *Accum] {
	return core.Analysis[VM, uint64, *Accum]{
		Name:     "maxtruss",
		NewAccum: newAccum,
		Observe:  observeWhole[VM],
		Merge:    mergeAccum,
		Finalize: func(acc *Accum) *Accum {
			acc.outcome = buildMax(spanDecompose(acc, 0, win, gatherWindowEdges(g, win)))
			return acc
		},
	}
}

func observeWhole[VM any](_ *ygm.Rank, acc *Accum, t *core.Triangle[VM, uint64]) *Accum {
	acc.bump(0, t.P, t.Q)
	acc.bump(0, t.P, t.R)
	acc.bump(0, t.Q, t.R)
	return acc
}

// SpanTrussAnalysis mines the maximal k-truss of each requested span
// (clipped to the query envelope env, which the plan must match): Observe
// routes each triangle's support to every span containing its timestamp
// envelope, and Finalize peels each span independently from one shared
// edge gather.
func SpanTrussAnalysis[VM any](g *graph.DODGr[VM, uint64], env Window, k int, spans []Window) core.Analysis[VM, uint64, *Accum] {
	clipped := make([]Window, len(spans))
	for i, sp := range spans {
		clipped[i] = sp.intersect(env)
	}
	return core.Analysis[VM, uint64, *Accum]{
		Name:     "spantruss",
		NewAccum: newAccum,
		Observe: func(_ *ygm.Rank, acc *Accum, t *core.Triangle[VM, uint64]) *Accum {
			lo, hi := envelope(t.MetaPQ, t.MetaPR, t.MetaQR)
			for i, sp := range clipped {
				if sp.contains(lo, hi) {
					acc.bump(uint32(i), t.P, t.Q)
					acc.bump(uint32(i), t.P, t.R)
					acc.bump(uint32(i), t.Q, t.R)
				}
			}
			return acc
		},
		Merge: mergeAccum,
		Finalize: func(acc *Accum) *Accum {
			edges := gatherWindowEdges(g, env)
			out := SpanResult{K: k, Spans: make([]SpanTruss, len(spans))}
			for i, sp := range spans {
				tr := spanDecompose(acc, uint32(i), clipped[i], edges)
				out.Spans[i] = buildSpanTruss(k, sp, tr)
			}
			acc.outcome = out
			return acc
		},
	}
}
