package serialize

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Length-prefixed frame IO for the distributed control plane. The data
// plane (ygm batches) frames with uvarints for density; the control plane
// (rendezvous, process links, job shipping) uses fixed 4-byte big-endian
// prefixes instead: frames are rare, and a fixed header lets a reader
// reject an insane length before allocating.

// MaxFrameSize is the largest control frame ReadFrame will accept. A
// length beyond it means a corrupt or hostile stream, not a big message.
const MaxFrameSize = 1 << 30

// FrameSizeError reports a frame whose declared length exceeds the limit.
type FrameSizeError struct {
	Size  uint32
	Limit int
}

func (e *FrameSizeError) Error() string {
	return fmt.Sprintf("serialize: frame of %d bytes exceeds limit %d", e.Size, e.Limit)
}

// WriteFrame writes payload as one length-prefixed frame. The header and
// payload are written in a single Write so a framing-aware conn (or a
// bufio writer) emits one packet.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return &FrameSizeError{Size: uint32(len(payload)), Limit: MaxFrameSize}
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(payload)))
	copy(buf[4:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting declared lengths
// beyond max (or MaxFrameSize if max <= 0) before allocating.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	if max <= 0 || max > MaxFrameSize {
		max = MaxFrameSize
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if int(size) > max {
		return nil, &FrameSizeError{Size: size, Limit: max}
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
