package serialize

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Decoder reads primitive values from a byte slice produced by Encoder.
//
// Malformed input (truncation, varint overflow) does not panic: the decoder
// latches an error, every subsequent Get returns a zero value, and the error
// is reported by Err. Message-processing loops check Err once per message
// rather than after every field.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder positioned at the start of buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Reset repoints the decoder at buf and clears any latched error.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.off = 0
	d.err = nil
}

// Err returns the first decoding error encountered, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int {
	if d.off >= len(d.buf) {
		return 0
	}
	return len(d.buf) - d.off
}

// Offset returns the current read position.
func (d *Decoder) Offset() int { return d.off }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("serialize: truncated or malformed %s at offset %d (len %d)", what, d.off, len(d.buf))
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail(what)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return x
}

// Varint reads a zig-zag signed varint.
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return x
}

// Uint8 reads a single byte.
func (d *Decoder) Uint8() uint8 {
	b := d.take(1, "uint8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Uint16 reads a fixed-width little-endian uint16.
func (d *Decoder) Uint16() uint16 {
	b := d.take(2, "uint16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// Uint32 reads a fixed-width little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4, "uint32")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed-width little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8, "uint64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Float64 reads IEEE-754 bits.
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// Bool reads a 0/1 byte.
func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

// String reads a uvarint-length-prefixed string.
func (d *Decoder) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string")
		return ""
	}
	b := d.take(int(n), "string")
	return string(b)
}

// Bytes reads a uvarint-length-prefixed byte slice. The returned slice
// aliases the decoder's buffer; callers that retain it must copy.
func (d *Decoder) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) {
		d.fail("bytes")
		return nil
	}
	return d.take(int(n), "bytes")
}

// Raw reads n bytes verbatim. The returned slice aliases the decoder's
// buffer.
func (d *Decoder) Raw(n int) []byte { return d.take(n, "raw") }
