package serialize

import (
	"testing"
)

// FuzzDecoderRobustness feeds arbitrary bytes through every decoding path;
// the decoder must never panic or read out of bounds, only latch an error.
// Runs the seed corpus under plain `go test`; fuzz with
// `go test -fuzz FuzzDecoderRobustness ./internal/serialize`.
func FuzzDecoderRobustness(f *testing.F) {
	var seed Encoder
	seed.PutUvarint(300)
	seed.PutString("seed")
	seed.PutUint64(42)
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{0x80})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		_ = d.Uvarint()
		_ = d.Varint()
		_ = d.String()
		_ = d.Bytes()
		_ = d.Uint8()
		_ = d.Uint16()
		_ = d.Uint32()
		_ = d.Uint64()
		_ = d.Float64()
		_ = d.Bool()
		_ = d.Raw(3)
		// Slice codec with adversarial counts must not over-allocate or
		// panic either.
		_ = SliceCodec(Uint64Codec()).Decode(NewDecoder(data))
		_ = SliceCodec(StringCodec()).Decode(NewDecoder(data))
		// After any of the above, remaining must be within bounds.
		if d.Remaining() < 0 || d.Remaining() > len(data) {
			t.Fatalf("Remaining out of bounds: %d of %d", d.Remaining(), len(data))
		}
	})
}

// FuzzRoundTrip checks that any (value-encoded) buffer decodes back to the
// values that produced it, even when followed by junk.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(7), "x", int64(-9), []byte{1, 2})
	f.Fuzz(func(t *testing.T, a uint64, s string, v int64, junk []byte) {
		var e Encoder
		e.PutUvarint(a)
		e.PutString(s)
		e.PutVarint(v)
		e.PutRaw(junk)
		d := NewDecoder(e.Bytes())
		if got := d.Uvarint(); got != a {
			t.Fatalf("uvarint %d != %d", got, a)
		}
		if got := d.String(); got != s {
			t.Fatalf("string %q != %q", got, s)
		}
		if got := d.Varint(); got != v {
			t.Fatalf("varint %d != %d", got, v)
		}
		if d.Err() != nil {
			t.Fatalf("unexpected error: %v", d.Err())
		}
		if d.Remaining() != len(junk) {
			t.Fatalf("remaining %d != %d", d.Remaining(), len(junk))
		}
	})
}
