package serialize

// Codec bundles the encode and decode halves for a metadata or key type.
// TriPoll is generic over vertex- and edge-metadata types; a Codec is the
// runtime evidence that a type can cross rank boundaries, playing the role
// cereal's serialize functions play in the C++ implementation.
type Codec[T any] struct {
	Encode func(*Encoder, T)
	Decode func(*Decoder) T
}

// RoundTrip encodes v and decodes it again; primarily useful in tests and
// for deep-copying metadata between rank-local stores.
func (c Codec[T]) RoundTrip(v T) T {
	var e Encoder
	c.Encode(&e, v)
	return c.Decode(NewDecoder(e.Bytes()))
}

// Unit carries no information; it is the "dummy metadata" the paper affixes
// to vertices and edges for simple triangle counting (§5.3 uses booleans; a
// zero-byte unit is the honest Go equivalent and we provide Bool too).
type Unit = struct{}

// UnitCodec encodes nothing.
func UnitCodec() Codec[Unit] {
	return Codec[Unit]{
		Encode: func(*Encoder, Unit) {},
		Decode: func(*Decoder) Unit { return Unit{} },
	}
}

// BoolCodec encodes a single byte, matching §5.3's boolean dummy metadata.
func BoolCodec() Codec[bool] {
	return Codec[bool]{
		Encode: func(e *Encoder, v bool) { e.PutBool(v) },
		Decode: func(d *Decoder) bool { return d.Bool() },
	}
}

// Uint8Codec encodes a byte label.
func Uint8Codec() Codec[uint8] {
	return Codec[uint8]{
		Encode: func(e *Encoder, v uint8) { e.PutUint8(v) },
		Decode: func(d *Decoder) uint8 { return d.Uint8() },
	}
}

// Uint32Codec encodes a fixed-width uint32.
func Uint32Codec() Codec[uint32] {
	return Codec[uint32]{
		Encode: func(e *Encoder, v uint32) { e.PutUint32(v) },
		Decode: func(d *Decoder) uint32 { return d.Uint32() },
	}
}

// Uint64Codec encodes a varint uint64 (ids, timestamps, counters).
func Uint64Codec() Codec[uint64] {
	return Codec[uint64]{
		Encode: func(e *Encoder, v uint64) { e.PutUvarint(v) },
		Decode: func(d *Decoder) uint64 { return d.Uvarint() },
	}
}

// Int64Codec encodes a zig-zag varint int64.
func Int64Codec() Codec[int64] {
	return Codec[int64]{
		Encode: func(e *Encoder, v int64) { e.PutVarint(v) },
		Decode: func(d *Decoder) int64 { return d.Varint() },
	}
}

// Float64Codec encodes IEEE-754 bits (ratings, weights).
func Float64Codec() Codec[float64] {
	return Codec[float64]{
		Encode: func(e *Encoder, v float64) { e.PutFloat64(v) },
		Decode: func(d *Decoder) float64 { return d.Float64() },
	}
}

// StringCodec encodes a length-prefixed string with no padding — the
// arbitrary-length metadata capability exercised by the FQDN survey (§5.8).
func StringCodec() Codec[string] {
	return Codec[string]{
		Encode: func(e *Encoder, v string) { e.PutString(v) },
		Decode: func(d *Decoder) string { return d.String() },
	}
}

// BytesCodec encodes a length-prefixed byte slice. Decoded slices are copied
// out of the message buffer so they may be retained.
func BytesCodec() Codec[[]byte] {
	return Codec[[]byte]{
		Encode: func(e *Encoder, v []byte) { e.PutBytes(v) },
		Decode: func(d *Decoder) []byte {
			b := d.Bytes()
			if b == nil {
				return nil
			}
			out := make([]byte, len(b))
			copy(out, b)
			return out
		},
	}
}

// Pair is a generic two-field composite; PairCodec serializes it
// field-by-field. Used by surveys that count pairs (e.g. the joint
// open/close-time distribution of Alg. 4).
type Pair[A, B any] struct {
	First  A
	Second B
}

// PairCodec composes codecs for the two fields.
func PairCodec[A, B any](a Codec[A], b Codec[B]) Codec[Pair[A, B]] {
	return Codec[Pair[A, B]]{
		Encode: func(e *Encoder, v Pair[A, B]) {
			a.Encode(e, v.First)
			b.Encode(e, v.Second)
		},
		Decode: func(d *Decoder) Pair[A, B] {
			return Pair[A, B]{First: a.Decode(d), Second: b.Decode(d)}
		},
	}
}

// Triple is a generic three-field composite (e.g. the log₂-degree triples of
// §5.9 or FQDN 3-tuples of §5.8).
type Triple[A, B, C any] struct {
	First  A
	Second B
	Third  C
}

// TripleCodec composes codecs for the three fields.
func TripleCodec[A, B, C any](a Codec[A], b Codec[B], c Codec[C]) Codec[Triple[A, B, C]] {
	return Codec[Triple[A, B, C]]{
		Encode: func(e *Encoder, v Triple[A, B, C]) {
			a.Encode(e, v.First)
			b.Encode(e, v.Second)
			c.Encode(e, v.Third)
		},
		Decode: func(d *Decoder) Triple[A, B, C] {
			return Triple[A, B, C]{First: a.Decode(d), Second: b.Decode(d), Third: c.Decode(d)}
		},
	}
}

// SliceCodec encodes a uvarint count followed by each element.
func SliceCodec[T any](elem Codec[T]) Codec[[]T] {
	return Codec[[]T]{
		Encode: func(e *Encoder, v []T) {
			e.PutUvarint(uint64(len(v)))
			for _, x := range v {
				elem.Encode(e, x)
			}
		},
		Decode: func(d *Decoder) []T {
			n := d.Uvarint()
			if d.Err() != nil {
				return nil
			}
			// Guard against adversarial counts: never pre-allocate more
			// elements than bytes remaining could possibly encode.
			capHint := int(n)
			if rem := d.Remaining(); capHint > rem {
				capHint = rem
			}
			out := make([]T, 0, capHint)
			for i := uint64(0); i < n; i++ {
				out = append(out, elem.Decode(d))
				if d.Err() != nil {
					return nil
				}
			}
			return out
		},
	}
}
