package serialize

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodePrimitives(t *testing.T) {
	var e Encoder
	e.PutUvarint(300)
	e.PutVarint(-7)
	e.PutUint8(0xAB)
	e.PutUint16(0xBEEF)
	e.PutUint32(0xDEADBEEF)
	e.PutUint64(0x0123456789ABCDEF)
	e.PutFloat64(3.14159)
	e.PutBool(true)
	e.PutBool(false)
	e.PutString("hello, 世界")
	e.PutBytes([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	if got := d.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d, want 300", got)
	}
	if got := d.Varint(); got != -7 {
		t.Errorf("Varint = %d, want -7", got)
	}
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x, want 0xAB", got)
	}
	if got := d.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x, want 0xBEEF", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := d.Uint64(); got != 0x0123456789ABCDEF {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := d.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := d.String(); got != "hello, 世界" {
		t.Errorf("String = %q", got)
	}
	b := d.Bytes()
	if len(b) != 3 || b[0] != 1 || b[1] != 2 || b[2] != 3 {
		t.Errorf("Bytes = %v", b)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", d.Remaining())
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
}

func TestDecoderTruncation(t *testing.T) {
	var e Encoder
	e.PutUint64(42)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		_ = d.Uint64()
		if d.Err() == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
		// After an error every further read stays zero and errors persist.
		if got := d.Uint32(); got != 0 {
			t.Errorf("cut=%d: post-error read = %d, want 0", cut, got)
		}
		if d.Err() == nil {
			t.Errorf("cut=%d: error did not latch", cut)
		}
	}
}

func TestDecoderMalformedString(t *testing.T) {
	var e Encoder
	e.PutUvarint(1 << 40) // huge claimed length
	d := NewDecoder(e.Bytes())
	if s := d.String(); s != "" || d.Err() == nil {
		t.Errorf("String on malformed input = %q, err = %v", s, d.Err())
	}
}

func TestSliceCodecAdversarialCount(t *testing.T) {
	var e Encoder
	e.PutUvarint(math.MaxUint32) // claims 4B elements with no payload
	c := SliceCodec(Uint64Codec())
	got := c.Decode(NewDecoder(e.Bytes()))
	if got != nil {
		t.Errorf("adversarial slice decode = %v, want nil", got)
	}
}

func TestDecoderReset(t *testing.T) {
	d := NewDecoder(nil)
	_ = d.Uint64()
	if d.Err() == nil {
		t.Fatal("expected error on empty buffer")
	}
	var e Encoder
	e.PutUvarint(9)
	d.Reset(e.Bytes())
	if d.Err() != nil {
		t.Fatalf("Reset did not clear error: %v", d.Err())
	}
	if got := d.Uvarint(); got != 9 {
		t.Errorf("after reset Uvarint = %d, want 9", got)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.PutUint64(1)
	if e.Len() != 8 {
		t.Fatalf("Len = %d, want 8", e.Len())
	}
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after reset = %d, want 0", e.Len())
	}
}

func TestPutRawAndRaw(t *testing.T) {
	var e Encoder
	e.PutRaw([]byte{9, 8, 7})
	d := NewDecoder(e.Bytes())
	got := d.Raw(3)
	if len(got) != 3 || got[2] != 7 {
		t.Errorf("Raw = %v", got)
	}
	if d.Raw(1) != nil || d.Err() == nil {
		t.Error("Raw past end should fail")
	}
}

func TestUvarintRoundTripProperty(t *testing.T) {
	f := func(x uint64, y int64, s string) bool {
		var e Encoder
		e.PutUvarint(x)
		e.PutVarint(y)
		e.PutString(s)
		d := NewDecoder(e.Bytes())
		return d.Uvarint() == x && d.Varint() == y && d.String() == s && d.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFloatRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		var e Encoder
		e.PutFloat64(x)
		got := NewDecoder(e.Bytes()).Float64()
		if math.IsNaN(x) {
			return math.IsNaN(got)
		}
		return got == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecRoundTrips(t *testing.T) {
	if got := Uint64Codec().RoundTrip(1 << 40); got != 1<<40 {
		t.Errorf("uint64 round trip = %d", got)
	}
	if got := Int64Codec().RoundTrip(-12345); got != -12345 {
		t.Errorf("int64 round trip = %d", got)
	}
	if got := StringCodec().RoundTrip("fqdn.example.com"); got != "fqdn.example.com" {
		t.Errorf("string round trip = %q", got)
	}
	if got := Float64Codec().RoundTrip(-0.5); got != -0.5 {
		t.Errorf("float round trip = %v", got)
	}
	if got := BoolCodec().RoundTrip(true); !got {
		t.Error("bool round trip")
	}
	if got := Uint8Codec().RoundTrip(200); got != 200 {
		t.Errorf("uint8 round trip = %d", got)
	}
	if got := Uint32Codec().RoundTrip(1 << 30); got != 1<<30 {
		t.Errorf("uint32 round trip = %d", got)
	}
	b := BytesCodec().RoundTrip([]byte{5, 6})
	if len(b) != 2 || b[0] != 5 {
		t.Errorf("bytes round trip = %v", b)
	}
	UnitCodec().RoundTrip(Unit{})
}

func TestPairTripleCodecs(t *testing.T) {
	pc := PairCodec(Uint64Codec(), StringCodec())
	p := Pair[uint64, string]{First: 7, Second: "x"}
	if got := pc.RoundTrip(p); got != p {
		t.Errorf("pair round trip = %+v", got)
	}
	tc := TripleCodec(StringCodec(), StringCodec(), StringCodec())
	tr := Triple[string, string, string]{"a.com", "b.com", "c.com"}
	if got := tc.RoundTrip(tr); got != tr {
		t.Errorf("triple round trip = %+v", got)
	}
}

func TestSliceCodecRoundTripProperty(t *testing.T) {
	c := SliceCodec(Uint64Codec())
	f := func(xs []uint64) bool {
		got := c.RoundTrip(xs)
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesCodecCopies(t *testing.T) {
	var e Encoder
	BytesCodec().Encode(&e, []byte{1, 2, 3})
	buf := e.Bytes()
	d := NewDecoder(buf)
	got := BytesCodec().Decode(d)
	buf[len(buf)-1] = 99 // mutate the underlying message buffer
	if got[2] != 3 {
		t.Error("BytesCodec.Decode must copy out of the message buffer")
	}
}

func TestLargeStringNoPadding(t *testing.T) {
	// A long string should cost exactly len + varint-length bytes: the
	// "no padding" property §4.1.2 calls out.
	s := strings.Repeat("x", 1000)
	var e Encoder
	e.PutString(s)
	if e.Len() != 1000+2 {
		t.Errorf("encoded size = %d, want 1002", e.Len())
	}
}
