package serialize

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
)

// The zero-copy framing contract: for any payload length — in particular
// across every uvarint width boundary, where EndFrame must shift the
// payload right to widen the length prefix — the buffer after EndFrame is
// byte-identical to writing uvarint(len) first and the payload after it,
// and bytes before the frame are untouched.
func TestEndFramePatchesEveryWidth(t *testing.T) {
	sizes := []int{0, 1, 5, 126, 127, 128, 129, 300, 16_382, 16_383, 16_384, 16_385, 70_000}
	prefix := []byte("batch-head")
	for _, n := range sizes {
		payload := make([]byte, n)
		rng := rand.New(rand.NewSource(int64(n) + 1))
		rng.Read(payload)

		var e Encoder
		buf := make([]byte, len(prefix), len(prefix)+n+binary.MaxVarintLen64)
		copy(buf, prefix)
		e.SetBuf(buf)
		mark := e.BeginFrame()
		e.PutRaw(payload)
		e.EndFrame(mark)
		got := e.TakeBuf()

		want := append([]byte{}, prefix...)
		want = binary.AppendUvarint(want, uint64(n))
		want = append(want, payload...)
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: frame bytes diverge from reference encoding (got %d bytes, want %d)",
				n, len(got), len(want))
		}
	}
}

// A sealed frame must decode with the standard uvarint reader and hand
// back exactly the payload — the property the ygm batch decode loop and
// the TCP read loop both rely on.
func TestEndFrameRoundTripsThroughDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var e Encoder
	var want [][]byte
	for i := 0; i < 200; i++ {
		payload := make([]byte, rng.Intn(400))
		rng.Read(payload)
		want = append(want, payload)
		mark := e.BeginFrame()
		e.PutRaw(payload)
		e.EndFrame(mark)
	}
	var d Decoder
	d.Reset(e.Bytes())
	for i, w := range want {
		n := d.Uvarint()
		got := d.Raw(int(n))
		if d.Err() != nil {
			t.Fatalf("frame %d: decode: %v", i, d.Err())
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(w))
		}
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d trailing bytes after the last frame", d.Remaining())
	}
}

// Frames written through the zero-copy path must match frames written by
// the copy path (encode standalone, prepend the length) for varint-rich
// content — the micro version of the CopyEncode differential test.
func TestFrameMatchesCopyDiscipline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		vals := make([]uint64, rng.Intn(64))
		for i := range vals {
			vals[i] = rng.Uint64() >> uint(rng.Intn(64))
		}

		var zc Encoder
		mark := zc.BeginFrame()
		for _, v := range vals {
			zc.PutUvarint(v)
		}
		zc.EndFrame(mark)

		var payload Encoder
		for _, v := range vals {
			payload.PutUvarint(v)
		}
		want := binary.AppendUvarint(nil, uint64(payload.Len()))
		want = append(want, payload.Bytes()...)

		if !bytes.Equal(zc.Bytes(), want) {
			t.Fatalf("trial %d: zero-copy frame diverges from copy discipline", trial)
		}
	}
}
