package serialize

import "testing"

func BenchmarkEncodeUvarint(b *testing.B) {
	e := NewEncoder(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for k := uint64(0); k < 1000; k++ {
			e.PutUvarint(k * 7919)
		}
	}
	b.SetBytes(int64(e.Len()))
}

func BenchmarkDecodeUvarint(b *testing.B) {
	e := NewEncoder(1 << 16)
	for k := uint64(0); k < 1000; k++ {
		e.PutUvarint(k * 7919)
	}
	buf := e.Bytes()
	d := NewDecoder(buf)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		d.Reset(buf)
		for k := 0; k < 1000; k++ {
			_ = d.Uvarint()
		}
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

func BenchmarkEncodeString(b *testing.B) {
	e := NewEncoder(1 << 16)
	s := "www.some-long-domain-name.example.com"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for k := 0; k < 100; k++ {
			e.PutString(s)
		}
	}
	b.SetBytes(int64(e.Len()))
}

func BenchmarkPushMessageRoundTrip(b *testing.B) {
	// The shape of one push-phase candidate entry: id, degree, edge meta.
	e := NewEncoder(1 << 16)
	d := NewDecoder(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for k := uint64(0); k < 64; k++ {
			e.PutUvarint(k * 104729)
			e.PutUvarint(k % 4096)
			e.PutUvarint(1600000000 + k)
		}
		d.Reset(e.Bytes())
		for k := 0; k < 64; k++ {
			_ = d.Uvarint()
			_ = d.Uvarint()
			_ = d.Uvarint()
		}
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}
