// Package serialize implements the binary serialization layer used for all
// inter-rank messages, mirroring the role the cereal C++ library plays in
// YGM (§4.1.2 of the TriPoll paper): structured, variable-length payloads
// (including strings without padding) are flattened to byte arrays that the
// communication layer concatenates into large batches.
//
// The format is a simple little-endian / unsigned-varint stream with no
// self-description; sender and receiver agree on layout through the handler
// they registered, exactly as RPC argument marshalling does in YGM.
package serialize

import (
	"encoding/binary"
	"math"
)

// Encoder appends primitive values to a growable byte buffer. The zero value
// is ready to use. Encoders are not safe for concurrent use; in practice each
// rank owns a small pool of them.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice is only valid until the next
// mutating call.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset discards the contents but keeps the underlying storage.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// PutUvarint appends x in unsigned-varint encoding.
func (e *Encoder) PutUvarint(x uint64) {
	e.buf = binary.AppendUvarint(e.buf, x)
}

// PutVarint appends x in zig-zag signed-varint encoding.
func (e *Encoder) PutVarint(x int64) {
	e.buf = binary.AppendVarint(e.buf, x)
}

// PutUint8 appends a single byte.
func (e *Encoder) PutUint8(x uint8) { e.buf = append(e.buf, x) }

// PutUint16 appends a fixed-width little-endian uint16.
func (e *Encoder) PutUint16(x uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, x)
}

// PutUint32 appends a fixed-width little-endian uint32.
func (e *Encoder) PutUint32(x uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, x)
}

// PutUint64 appends a fixed-width little-endian uint64.
func (e *Encoder) PutUint64(x uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, x)
}

// PutFloat64 appends the IEEE-754 bits of x.
func (e *Encoder) PutFloat64(x float64) { e.PutUint64(math.Float64bits(x)) }

// PutBool appends a single 0/1 byte.
func (e *Encoder) PutBool(x bool) {
	if x {
		e.PutUint8(1)
	} else {
		e.PutUint8(0)
	}
}

// PutString appends a uvarint length followed by the raw bytes — no padding,
// the capability §5.8 of the paper relies on for FQDN metadata.
func (e *Encoder) PutString(s string) {
	e.PutUvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// PutBytes appends a uvarint length followed by the raw bytes.
func (e *Encoder) PutBytes(b []byte) {
	e.PutUvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// PutRaw appends b verbatim with no length prefix. The decoder must know the
// length from context.
func (e *Encoder) PutRaw(b []byte) { e.buf = append(e.buf, b...) }

// --- Zero-copy length-prefixed framing ----------------------------------
//
// The communication layer frames every message as
//
//	uvarint(handler) uvarint(len(payload)) payload
//
// inside a large batch buffer. Historically payloads were built in a
// standalone encoder and copied behind their length; SetBuf/BeginFrame/
// EndFrame let a caller adopt the batch buffer itself and encode the
// payload in place. The length is not known until the payload is written,
// so BeginFrame reserves a single byte and EndFrame patches the real
// uvarint in: payloads under 128 bytes (the common case for per-wedge
// messages) are framed with zero copies, longer ones pay one in-buffer
// memmove — strictly less work than the unconditional copy they replace.

// SetBuf adopts buf as the encoder's storage; subsequent Puts append after
// its current contents. Pair with TakeBuf to hand the grown buffer back.
func (e *Encoder) SetBuf(buf []byte) { e.buf = buf }

// TakeBuf returns the encoder's buffer and detaches it, so the encoder can
// be reused without aliasing storage it no longer owns.
func (e *Encoder) TakeBuf() []byte {
	b := e.buf
	e.buf = nil
	return b
}

// BeginFrame reserves a one-byte uvarint length slot at the current
// position and returns its mark for EndFrame. Everything appended between
// the two calls becomes the frame's payload.
func (e *Encoder) BeginFrame() int {
	e.buf = append(e.buf, 0)
	return len(e.buf) - 1
}

// EndFrame patches the payload length of the frame opened at mark. If the
// length needs a multi-byte uvarint, the payload is shifted right by the
// difference first.
func (e *Encoder) EndFrame(mark int) {
	n := len(e.buf) - mark - 1
	if n < 0x80 {
		e.buf[mark] = byte(n)
		return
	}
	w := uvarintLen(uint64(n))
	e.buf = append(e.buf, make([]byte, w-1)...)
	copy(e.buf[mark+w:], e.buf[mark+1:mark+1+n])
	binary.PutUvarint(e.buf[mark:], uint64(n))
}

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
