// Package serialize is the codec layer under every rank boundary: a
// compact, allocation-conscious binary encoding (uvarint integers, raw
// little-endian fixed types, length-prefixed bytes) with typed Codec[T]
// values composing into pairs, triples and user metadata.
//
// The runtime moves *batches* of messages, so Encoder writes into the
// world's pooled batch buffers and Decoder reads them with deferred error
// checking (d.Err() once per message, not per field) — the survey inner
// loops decode millions of candidate entries and pay for no interface
// dispatch or reflection. Unit is the zero-byte metadata for topology-only
// graphs: a Codec[Unit] encodes nothing at all, which is what makes "no
// metadata" genuinely free in the push phase rather than an empty-struct
// tax.
//
// Codecs are the only thing a user must supply to survey custom metadata
// (NewGraphBuilder takes one per metadata type); everything else —
// message framing, handler ids, batch compaction — stays internal to
// internal/ygm. Fuzz and round-trip tests pin the wire format.
package serialize
