// Package graph implements TriPoll's distributed graph storage: ingestion
// of undirected metadata-carrying edge lists, and the degree-ordered
// directed graph (DODGr, §3 of the paper) with metadata-augmented adjacency
// lists Adj⁺ᵐ (§4.2) partitioned across ranks.
//
// The layout decisions that matter to the survey hot path:
//
//   - Orientation is a strategy (Ordering): the paper's degree order or a
//     degeneracy order from a distributed k-core peel. Both flow through
//     one per-vertex uint32 weight (Vertex.Ord, mirrored on out-edges as
//     OutEdge.TOrd) so merge-path intersection compares order keys without
//     dereferencing remote vertices. DESIGN.md §4 has the full argument.
//   - Each out-edge inlines the edge metadata and the *target's* vertex
//     metadata (§4.2's O(|E|) memory / zero-communication trade), which is
//     what lets survey plans prune wedges at the source: both timestamps
//     of a wedge's known edges sit in the pivot's adjacency list.
//   - After construction each rank's adjacency lists are compacted into a
//     single CSR-style arena in vertex storage order, so the push phase's
//     sweep walks memory linearly.
//   - Snapshots (format TPDG2, snapshot.go) persist vertices, metadata,
//     ordering strategy and weights, and rebuild the arena on load.
//
// Builders run collectively (Builder.AddEdge from any rank, one Build
// barrier); the resulting DODGr is immutable and surveyed concurrently.
//
// StreamShard (stream.go) is the package's one mutable structure: full
// symmetrized per-rank neighborhoods for streaming survey maintenance,
// seeded from a DODGr's CSR arenas, grown by sorted copy-on-grow
// insertion and retired by tombstones swept between batches. The
// immutable DODGr remains the survey substrate; shards feed the delta
// traversal of internal/core's Stream and can re-materialize a DODGr of
// the live edge set at any time.
package graph
