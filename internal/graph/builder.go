package graph

import (
	"sort"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Builder performs distributed graph construction. Usage (SPMD, inside one
// or more parallel regions):
//
//	b := graph.NewBuilder(w, vmCodec, emCodec, opts)   // outside regions
//	w.Parallel(func(r *ygm.Rank) {
//	    for each locally produced edge { b.AddEdge(r, u, v, em) }
//	    for each locally produced vertex { b.SetVertexMeta(r, v, vm) }
//	    g = b.Build(r)                                  // collective
//	})
//
// Build runs the construction pipeline of §4.2:
//
//  1. ingestion routes each undirected edge to both endpoint owners
//     (symmetrization), merging duplicate edges with MergeEdgeMeta — the
//     keep-chronologically-first reduction §5.2 applies to Reddit is
//     MergeEdgeMeta = min-by-timestamp;
//  2. every owner now knows d(u) for its vertices; each edge (u,v) is
//     walked once more, sending (v, u, d(u), meta(u,v), meta(u)) to
//     Rank(v), which appends u to Adj⁺ᵐ(v) iff v <+ u — every undirected
//     edge lands in G⁺ exactly once, at its <+-smaller endpoint;
//  3. adjacency lists are sorted by target order key, and global figures
//     (|V|, |E|, |W⁺|, d_max, d_max⁺) are reduced.
type Builder[VM, EM any] struct {
	w    *ygm.World
	part Partitioner
	vm   serialize.Codec[VM]
	em   serialize.Codec[EM]
	opts BuilderOptions[EM]

	ingest  []ingestState[VM, EM]
	hEdge   ygm.HandlerID
	hVMeta  ygm.HandlerID
	hOrient ygm.HandlerID

	built *DODGr[VM, EM] // assembled by Build; identical pointer on all ranks
}

// BuilderOptions configures construction.
type BuilderOptions[EM any] struct {
	// Partitioner places vertices on ranks; nil selects HashPartition.
	Partitioner Partitioner
	// MergeEdgeMeta combines metadata when the same undirected edge is
	// inserted more than once (multigraph reduction). It must be
	// commutative and associative so the result is independent of message
	// arrival order. Nil keeps an arbitrary duplicate's metadata.
	MergeEdgeMeta func(a, b EM) EM
}

type halfEdge[EM any] struct {
	nbr  uint64
	meta EM
}

type ingestState[VM, EM any] struct {
	half      map[uint64][]halfEdge[EM]
	vmeta     map[uint64]VM
	selfLoops uint64
	merged    uint64
}

// NewBuilder creates a builder; must be called outside parallel regions.
func NewBuilder[VM, EM any](w *ygm.World, vm serialize.Codec[VM], em serialize.Codec[EM], opts BuilderOptions[EM]) *Builder[VM, EM] {
	if opts.Partitioner == nil {
		opts.Partitioner = HashPartition{}
	}
	b := &Builder[VM, EM]{w: w, part: opts.Partitioner, vm: vm, em: em, opts: opts}
	b.ingest = make([]ingestState[VM, EM], w.Size())
	for i := range b.ingest {
		b.ingest[i].half = make(map[uint64][]halfEdge[EM])
		b.ingest[i].vmeta = make(map[uint64]VM)
	}
	b.hEdge = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		u := d.Uvarint()
		v := d.Uvarint()
		em := b.em.Decode(d)
		if d.Err() != nil {
			panic("graph: corrupt edge message: " + d.Err().Error())
		}
		st := &b.ingest[r.ID()]
		st.half[u] = append(st.half[u], halfEdge[EM]{nbr: v, meta: em})
	})
	b.hVMeta = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		vm := b.vm.Decode(d)
		if d.Err() != nil {
			panic("graph: corrupt vertex-meta message: " + d.Err().Error())
		}
		b.ingest[r.ID()].vmeta[v] = vm
	})
	// Orientation message: (v, u, d(u), meta(u,v), meta(u)) appended to
	// Adj⁺ᵐ(v) iff v <+ u. The DODGr local shards are filled in place.
	b.hOrient = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		u := d.Uvarint()
		du := uint32(d.Uvarint())
		em := b.em.Decode(d)
		vm := b.vm.Decode(d)
		if d.Err() != nil {
			panic("graph: corrupt orientation message: " + d.Err().Error())
		}
		rl := &b.built.local[r.ID()]
		i, ok := rl.index[v]
		if !ok {
			panic("graph: orientation message for unknown vertex")
		}
		rec := &rl.verts[i]
		if Less(rec.Deg, v, du, u) {
			rec.Adj = append(rec.Adj, OutEdge[VM, EM]{Target: u, TDeg: du, EMeta: em, TMeta: vm})
		}
	})
	return b
}

// AddEdge inserts the undirected edge {u, v} with metadata em. Self-loops
// are dropped (and counted). May be called from any rank; ownership routing
// is handled here.
func (b *Builder[VM, EM]) AddEdge(r *ygm.Rank, u, v uint64, em EM) {
	if u == v {
		b.ingest[r.ID()].selfLoops++
		return
	}
	b.sendHalf(r, u, v, em)
	b.sendHalf(r, v, u, em)
}

func (b *Builder[VM, EM]) sendHalf(r *ygm.Rank, u, v uint64, em EM) {
	e := r.Enc()
	e.PutUvarint(u)
	e.PutUvarint(v)
	b.em.Encode(e, em)
	r.Async(b.part.Owner(u, r.Size()), b.hEdge, e)
}

// SetVertexMeta records metadata for vertex v. Vertices never named by
// SetVertexMeta carry the zero value of VM.
func (b *Builder[VM, EM]) SetVertexMeta(r *ygm.Rank, v uint64, vm VM) {
	e := r.Enc()
	e.PutUvarint(v)
	b.vm.Encode(e, vm)
	r.Async(b.part.Owner(v, r.Size()), b.hVMeta, e)
}

// Build completes construction collectively and returns the immutable
// DODGr. All ranks must call it; every rank receives the same graph object.
// The builder must not be reused afterwards.
func (b *Builder[VM, EM]) Build(r *ygm.Rank) *DODGr[VM, EM] {
	r.Barrier() // ingestion settled everywhere

	if r.ID() == 0 {
		g := &DODGr[VM, EM]{w: b.w, part: b.part, vm: b.vm, em: b.em}
		g.local = make([]rankLocal[VM, EM], b.w.Size())
		b.built = g
	}
	ygm.Rendezvous(r)
	g := b.built

	// Local pass: collapse the half-edge multimap into deduplicated,
	// degree-known vertex records sorted by id (deterministic layout).
	st := &b.ingest[r.ID()]
	rl := &g.local[r.ID()]
	ids := make([]uint64, 0, len(st.half)+len(st.vmeta))
	for u := range st.half {
		ids = append(ids, u)
	}
	for u := range st.vmeta {
		if _, ok := st.half[u]; !ok {
			ids = append(ids, u) // isolated vertex with explicit metadata
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	rl.index = make(map[uint64]int32, len(ids))
	rl.verts = make([]Vertex[VM, EM], len(ids))
	var merged uint64
	for i, u := range ids {
		nbrs := st.half[u]
		sort.Slice(nbrs, func(a, c int) bool { return nbrs[a].nbr < nbrs[c].nbr })
		// Dedup-merge runs of the same neighbor.
		out := nbrs[:0]
		for _, h := range nbrs {
			if n := len(out); n > 0 && out[n-1].nbr == h.nbr {
				merged++
				if b.opts.MergeEdgeMeta != nil {
					out[n-1].meta = b.opts.MergeEdgeMeta(out[n-1].meta, h.meta)
				}
				continue
			}
			out = append(out, h)
		}
		st.half[u] = out
		rl.index[u] = int32(i)
		rl.verts[i] = Vertex[VM, EM]{ID: u, Deg: uint32(len(out)), Meta: st.vmeta[u]}
	}
	// Each undirected edge is seen at both endpoints, so merged duplicates
	// are double-counted across the world; the global sum is halved below.
	localSelf := st.selfLoops
	localMerged := merged
	ygm.Rendezvous(r) // all records exist before orientation messages fly

	// Orientation pass: walk every local half-edge once, shipping the
	// source's degree and metadata to the neighbor's owner.
	for i := range rl.verts {
		rec := &rl.verts[i]
		for _, h := range st.half[rec.ID] {
			e := r.Enc()
			e.PutUvarint(h.nbr)
			e.PutUvarint(rec.ID)
			e.PutUvarint(uint64(rec.Deg))
			b.em.Encode(e, h.meta)
			b.vm.Encode(e, rec.Meta)
			r.Async(b.part.Owner(h.nbr, r.Size()), b.hOrient, e)
		}
	}
	r.Barrier()

	// Release ingestion memory before sorting adjacency lists.
	st.half = nil
	st.vmeta = nil

	var localDirected, localPlus, localWedges uint64
	var localMaxDeg, localMaxOut uint32
	for i := range rl.verts {
		rec := &rl.verts[i]
		sort.Slice(rec.Adj, func(a, c int) bool { return rec.Adj[a].Key().Less(rec.Adj[c].Key()) })
		localDirected += uint64(rec.Deg)
		dp := uint64(len(rec.Adj))
		localPlus += dp
		localWedges += dp * (dp - 1) / 2
		if rec.Deg > localMaxDeg {
			localMaxDeg = rec.Deg
		}
		if uint32(dp) > localMaxOut {
			localMaxOut = uint32(dp)
		}
	}

	nv := ygm.AllReduceSum(r, uint64(len(rl.verts)))
	nd := ygm.AllReduceSum(r, localDirected)
	np := ygm.AllReduceSum(r, localPlus)
	nw := ygm.AllReduceSum(r, localWedges)
	md := ygm.AllReduceMax(r, uint64(localMaxDeg))
	mo := ygm.AllReduceMax(r, uint64(localMaxOut))
	sl := ygm.AllReduceSum(r, localSelf)
	mg := ygm.AllReduceSum(r, localMerged)
	if r.ID() == 0 {
		g.numVertices = nv
		g.numDirectedEdges = nd
		g.numPlusEdges = np
		g.numWedges = nw
		g.maxDeg = uint32(md)
		g.maxOutDeg = uint32(mo)
		g.selfLoopsDropped = sl
		g.multiEdgesMerged = mg / 2
	}
	ygm.Rendezvous(r)
	return g
}
