package graph

import (
	"sort"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Builder performs distributed graph construction. Usage (SPMD, inside one
// or more parallel regions):
//
//	b := graph.NewBuilder(w, vmCodec, emCodec, opts)   // outside regions
//	w.Parallel(func(r *ygm.Rank) {
//	    for each locally produced edge { b.AddEdge(r, u, v, em) }
//	    for each locally produced vertex { b.SetVertexMeta(r, v, vm) }
//	    g = b.Build(r)                                  // collective
//	})
//
// Build runs the construction pipeline of §4.2:
//
//  1. ingestion routes each undirected edge to both endpoint owners
//     (symmetrization), merging duplicate edges with MergeEdgeMeta — the
//     keep-chronologically-first reduction §5.2 applies to Reddit is
//     MergeEdgeMeta = min-by-timestamp;
//  2. every owner now knows d(u) for its vertices; each edge (u,v) is
//     walked once more, sending (v, u, d(u), meta(u,v), meta(u)) to
//     Rank(v), which appends u to Adj⁺ᵐ(v) iff v <+ u — every undirected
//     edge lands in G⁺ exactly once, at its <+-smaller endpoint;
//  3. adjacency lists are sorted by target order key, and global figures
//     (|V|, |E|, |W⁺|, d_max, d_max⁺) are reduced.
type Builder[VM, EM any] struct {
	w    *ygm.World
	part Partitioner
	vm   serialize.Codec[VM]
	em   serialize.Codec[EM]
	opts BuilderOptions[EM]

	ingest  []ingestState[VM, EM]
	peelSt  []peelState
	hEdge   ygm.HandlerID
	hVMeta  ygm.HandlerID
	hPeel   ygm.HandlerID
	hOrient ygm.HandlerID

	built *DODGr[VM, EM] // assembled by Build; identical pointer on all ranks
}

// BuilderOptions configures construction.
type BuilderOptions[EM any] struct {
	// Partitioner places vertices on ranks; nil selects HashPartition.
	Partitioner Partitioner
	// Ordering selects the vertex order <+ that orients G into G⁺. The
	// zero value is OrderDegree, the paper's choice; OrderDegeneracy runs
	// an extra distributed k-core peel during Build and bounds every
	// out-degree by the graph's degeneracy.
	Ordering Ordering
	// MergeEdgeMeta combines metadata when the same undirected edge is
	// inserted more than once (multigraph reduction). It must be
	// commutative and associative so the result is independent of message
	// arrival order. Nil keeps an arbitrary duplicate's metadata.
	MergeEdgeMeta func(a, b EM) EM
}

// peelState is one rank's working state for the distributed k-core peel:
// residual degrees (neighbors not yet removed) and removal flags, indexed
// like rankLocal.verts. Decrements arriving from neighbor owners are
// buffered in pending — Async may opportunistically run handlers while
// the strip scan is mid-flight, and applying them immediately would let
// one subround observe its own removals, breaking the elimination bound.
// They are applied between the subround's barrier and the next scan.
type peelState struct {
	residual []uint32
	removed  []bool
	pending  []int32
}

type halfEdge[EM any] struct {
	nbr  uint64
	meta EM
}

type ingestState[VM, EM any] struct {
	half      map[uint64][]halfEdge[EM]
	vmeta     map[uint64]VM
	selfLoops uint64
	merged    uint64
}

// NewBuilder creates a builder; must be called outside parallel regions.
func NewBuilder[VM, EM any](w *ygm.World, vm serialize.Codec[VM], em serialize.Codec[EM], opts BuilderOptions[EM]) *Builder[VM, EM] {
	if opts.Partitioner == nil {
		opts.Partitioner = HashPartition{}
	}
	b := &Builder[VM, EM]{w: w, part: opts.Partitioner, vm: vm, em: em, opts: opts}
	b.ingest = make([]ingestState[VM, EM], w.Size())
	b.peelSt = make([]peelState, w.Size())
	for i := range b.ingest {
		b.ingest[i].half = make(map[uint64][]halfEdge[EM])
		b.ingest[i].vmeta = make(map[uint64]VM)
	}
	b.hEdge = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		u := d.Uvarint()
		v := d.Uvarint()
		em := b.em.Decode(d)
		if d.Err() != nil {
			panic("graph: corrupt edge message: " + d.Err().Error())
		}
		st := &b.ingest[r.ID()]
		st.half[u] = append(st.half[u], halfEdge[EM]{nbr: v, meta: em})
	})
	b.hVMeta = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		vm := b.vm.Decode(d)
		if d.Err() != nil {
			panic("graph: corrupt vertex-meta message: " + d.Err().Error())
		}
		b.ingest[r.ID()].vmeta[v] = vm
	})
	// Peel decrement: a neighbor of v was removed this subround. Buffered,
	// not applied — see peelState.pending.
	b.hPeel = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		if d.Err() != nil {
			panic("graph: corrupt peel message: " + d.Err().Error())
		}
		i, ok := b.built.local[r.ID()].index[v]
		if !ok {
			panic("graph: peel decrement for unknown vertex")
		}
		ps := &b.peelSt[r.ID()]
		ps.pending = append(ps.pending, i)
	})
	// Orientation message: (v, u, ord(u), meta(u,v), meta(u)) appended to
	// Adj⁺ᵐ(v) iff v <+ u. The DODGr local shards are filled in place.
	b.hOrient = w.RegisterHandler(func(r *ygm.Rank, d *serialize.Decoder) {
		v := d.Uvarint()
		u := d.Uvarint()
		ou := uint32(d.Uvarint())
		em := b.em.Decode(d)
		vm := b.vm.Decode(d)
		if d.Err() != nil {
			panic("graph: corrupt orientation message: " + d.Err().Error())
		}
		rl := &b.built.local[r.ID()]
		i, ok := rl.index[v]
		if !ok {
			panic("graph: orientation message for unknown vertex")
		}
		rec := &rl.verts[i]
		if Less(rec.Ord, v, ou, u) {
			rec.Adj = append(rec.Adj, OutEdge[VM, EM]{Target: u, TOrd: ou, EMeta: em, TMeta: vm})
		}
	})
	return b
}

// AddEdge inserts the undirected edge {u, v} with metadata em. Self-loops
// are dropped (and counted). May be called from any rank; ownership routing
// is handled here.
func (b *Builder[VM, EM]) AddEdge(r *ygm.Rank, u, v uint64, em EM) {
	if u == v {
		b.ingest[r.ID()].selfLoops++
		return
	}
	b.sendHalf(r, u, v, em)
	b.sendHalf(r, v, u, em)
}

func (b *Builder[VM, EM]) sendHalf(r *ygm.Rank, u, v uint64, em EM) {
	e := r.Enc()
	e.PutUvarint(u)
	e.PutUvarint(v)
	b.em.Encode(e, em)
	r.Async(b.part.Owner(u, r.Size()), b.hEdge, e)
}

// SetVertexMeta records metadata for vertex v. Vertices never named by
// SetVertexMeta carry the zero value of VM.
func (b *Builder[VM, EM]) SetVertexMeta(r *ygm.Rank, v uint64, vm VM) {
	e := r.Enc()
	e.PutUvarint(v)
	b.vm.Encode(e, vm)
	r.Async(b.part.Owner(v, r.Size()), b.hVMeta, e)
}

// Build completes construction collectively and returns the immutable
// DODGr. All ranks must call it; every rank receives the same graph object.
// The builder must not be reused afterwards.
func (b *Builder[VM, EM]) Build(r *ygm.Rank) *DODGr[VM, EM] {
	r.Barrier() // ingestion settled everywhere

	// The process leader creates the shared graph object: in a
	// single-process world that is rank 0 (the historical behavior), in a
	// multi-process world every process builds its own DODGr holding its
	// local shards, with the global figures below identical everywhere by
	// virtue of coming from collectives.
	if r.ID() == b.w.LeaderID() {
		g := &DODGr[VM, EM]{w: b.w, part: b.part, vm: b.vm, em: b.em}
		g.local = make([]rankLocal[VM, EM], b.w.Size())
		b.built = g
	}
	ygm.Rendezvous(r)
	g := b.built

	// Local pass: collapse the half-edge multimap into deduplicated,
	// degree-known vertex records sorted by id (deterministic layout).
	st := &b.ingest[r.ID()]
	rl := &g.local[r.ID()]
	ids := make([]uint64, 0, len(st.half)+len(st.vmeta))
	for u := range st.half {
		ids = append(ids, u)
	}
	for u := range st.vmeta {
		if _, ok := st.half[u]; !ok {
			ids = append(ids, u) // isolated vertex with explicit metadata
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	rl.index = make(map[uint64]int32, len(ids))
	rl.verts = make([]Vertex[VM, EM], len(ids))
	var merged uint64
	for i, u := range ids {
		nbrs := st.half[u]
		sort.Slice(nbrs, func(a, c int) bool { return nbrs[a].nbr < nbrs[c].nbr })
		// Dedup-merge runs of the same neighbor.
		out := nbrs[:0]
		for _, h := range nbrs {
			if n := len(out); n > 0 && out[n-1].nbr == h.nbr {
				merged++
				if b.opts.MergeEdgeMeta != nil {
					out[n-1].meta = b.opts.MergeEdgeMeta(out[n-1].meta, h.meta)
				}
				continue
			}
			out = append(out, h)
		}
		st.half[u] = out
		rl.index[u] = int32(i)
		d := uint32(len(out))
		rl.verts[i] = Vertex[VM, EM]{ID: u, Deg: d, Ord: d, Meta: st.vmeta[u]}
	}
	// Each undirected edge is seen at both endpoints, so merged duplicates
	// are double-counted across the world; the global sum is halved below.
	localSelf := st.selfLoops
	localMerged := merged
	ygm.Rendezvous(r) // all records exist before orientation messages fly

	// Ordering pass: under OrderDegree every Ord already holds the degree;
	// OrderDegeneracy replaces Ord with the removal epoch of a distributed
	// k-core peel (the level reached is the graph's degeneracy).
	var degen uint32
	if b.opts.Ordering == OrderDegeneracy {
		degen = b.peel(r)
	}

	// Orientation pass: walk every local half-edge once, shipping the
	// source's ordering weight and metadata to the neighbor's owner.
	for i := range rl.verts {
		rec := &rl.verts[i]
		for _, h := range st.half[rec.ID] {
			e := r.Enc()
			e.PutUvarint(h.nbr)
			e.PutUvarint(rec.ID)
			e.PutUvarint(uint64(rec.Ord))
			b.em.Encode(e, h.meta)
			b.vm.Encode(e, rec.Meta)
			r.Async(b.part.Owner(h.nbr, r.Size()), b.hOrient, e)
		}
	}
	r.Barrier()

	// Release ingestion and peel memory before sorting adjacency lists.
	st.half = nil
	st.vmeta = nil
	b.peelSt[r.ID()] = peelState{}

	var localDirected, localPlus, localWedges uint64
	var localMaxDeg, localMaxOut uint32
	for i := range rl.verts {
		rec := &rl.verts[i]
		sort.Slice(rec.Adj, func(a, c int) bool { return rec.Adj[a].Key().Less(rec.Adj[c].Key()) })
		localDirected += uint64(rec.Deg)
		dp := uint64(len(rec.Adj))
		localPlus += dp
		localWedges += dp * (dp - 1) / 2
		if rec.Deg > localMaxDeg {
			localMaxDeg = rec.Deg
		}
		if uint32(dp) > localMaxOut {
			localMaxOut = uint32(dp)
		}
	}
	// Compact the shard's adjacency lists into one CSR-style arena so the
	// survey's sequential vertex sweep reads contiguous memory.
	rl.compact()

	nv := ygm.AllReduceSum(r, uint64(len(rl.verts)))
	nd := ygm.AllReduceSum(r, localDirected)
	np := ygm.AllReduceSum(r, localPlus)
	nw := ygm.AllReduceSum(r, localWedges)
	md := ygm.AllReduceMax(r, uint64(localMaxDeg))
	mo := ygm.AllReduceMax(r, uint64(localMaxOut))
	sl := ygm.AllReduceSum(r, localSelf)
	mg := ygm.AllReduceSum(r, localMerged)
	if r.ID() == b.w.LeaderID() {
		g.ordering = b.opts.Ordering
		g.numVertices = nv
		g.numDirectedEdges = nd
		g.numPlusEdges = np
		g.numWedges = nw
		g.maxDeg = uint32(md)
		g.maxOutDeg = uint32(mo)
		g.degeneracy = degen
		g.selfLoopsDropped = sl
		g.multiEdgesMerged = mg / 2
	}
	ygm.Rendezvous(r)
	return g
}

// Degeneracy ordering weights pack (removal epoch, capped full degree):
// the epoch in the high bits makes earlier-removed vertices sort
// <+-before later ones, and the degree in the low 8 bits breaks ties
// *within* one strip subround by the paper's degree heuristic. Any
// within-subround tie-break preserves the elimination bound (a vertex
// stripped at level k has ≤ k not-yet-removed neighbors, and all of its
// <+-later neighbors are drawn from those), but large strip batches on
// skewed graphs contain many internal edges, and orienting them toward
// the higher-degree endpoint prunes wedges exactly as the degree order
// does. Epochs saturate rather than overflow: past ~16M subrounds the
// order degrades to hash tie-breaks — surveys stay correct (any total
// order does), only the out-degree bound is lost.
const (
	peelDegBits  = 8
	peelEpochMax = (1 << (32 - peelDegBits)) - 1
	peelDegMax   = (1 << peelDegBits) - 1
)

func peelWeight(epoch, deg uint32) uint32 {
	if deg > peelDegMax {
		deg = peelDegMax
	}
	return epoch<<peelDegBits | deg
}

// peel runs the round-synchronous distributed k-core peel (Matula–Beck
// smallest-last ordering, bucketed by core level) and assigns every local
// vertex its removal-epoch weight. For increasing levels k = 0, 1, 2, ...
// it repeatedly strips every vertex whose residual degree (neighbors not
// yet removed) is ≤ k; each strip subround is one global epoch, so
// vertices removed earlier sort <+-before vertices removed later
// regardless of which rank stores them. A vertex removed at level k has at
// most k not-yet-removed neighbors, hence at most k out-neighbors in G⁺;
// the largest level reached is the graph's degeneracy, which peel returns
// (the value is identical on every rank, since levels advance in lockstep
// through global reductions).
func (b *Builder[VM, EM]) peel(r *ygm.Rank) uint32 {
	st := &b.ingest[r.ID()]
	rl := &b.built.local[r.ID()]
	ps := &b.peelSt[r.ID()]
	n := len(rl.verts)
	ps.residual = make([]uint32, n)
	ps.removed = make([]bool, n)
	for i := range rl.verts {
		ps.residual[i] = rl.verts[i].Deg
	}
	// Worklist of not-yet-removed local vertices, compacted on removal so
	// each subround scans survivors only.
	alive := make([]int32, n)
	for i := range alive {
		alive[i] = int32(i)
	}
	ygm.Rendezvous(r) // every rank's peel state exists before decrements fly

	remaining := ygm.AllReduceSum(r, uint64(n))
	var epoch, level, maxLevel uint32
	for remaining > 0 {
		var removedNow uint64
		kept := alive[:0]
		for _, i := range alive {
			if ps.residual[i] > level {
				kept = append(kept, i)
				continue
			}
			ps.removed[i] = true
			rl.verts[i].Ord = peelWeight(epoch, rl.verts[i].Deg)
			removedNow++
			for _, h := range st.half[rl.verts[i].ID] {
				e := r.Enc()
				e.PutUvarint(h.nbr)
				r.Async(b.part.Owner(h.nbr, r.Size()), b.hPeel, e)
			}
		}
		alive = kept
		r.Barrier() // every decrement of this subround is now buffered
		for _, i := range ps.pending {
			if !ps.removed[i] && ps.residual[i] > 0 {
				ps.residual[i]--
			}
		}
		ps.pending = ps.pending[:0]
		if epoch < peelEpochMax {
			epoch++
		}
		tot := ygm.AllReduceSum(r, removedNow)
		if tot > 0 {
			remaining -= tot
			maxLevel = level
			continue // same level until it stops stripping
		}
		// Level exhausted with vertices left: jump straight to the smallest
		// surviving residual degree (skipping guaranteed-empty levels; no
		// decrements were sent this subround, so residuals are settled and
		// the global minimum exceeds the current level).
		localMin := ^uint64(0)
		for _, i := range alive {
			if uint64(ps.residual[i]) < localMin {
				localMin = uint64(ps.residual[i])
			}
		}
		level = uint32(ygm.AllReduce(r, localMin, func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		}))
	}
	return maxLevel
}
