package graph

// Ordering selects the total vertex order <+ that orients G into G⁺. The
// order is realized as a per-vertex uint32 weight (Vertex.Ord): degree for
// OrderDegree (the paper's choice, §3), k-core peeling epoch for
// OrderDegeneracy. Ties are broken by hash then id, so every strategy
// yields a total order through the same OrderKey machinery.
type Ordering uint8

const (
	// OrderDegree is the paper's degree-based <+ order: lower-degree
	// vertices come first, shrinking hub adjacency in G⁺ (§3).
	OrderDegree Ordering = iota
	// OrderDegeneracy orders vertices by removal epoch of a distributed
	// k-core peel (Matula–Beck smallest-last order, round-synchronous
	// variant). Every vertex then has at most degeneracy(G) out-neighbors
	// in G⁺, a strictly stronger bound than the degree order gives —
	// the Pashanasangi–Seshadhri refinement of TriPoll's idea.
	OrderDegeneracy
)

// String names the ordering for experiment output and snapshots.
func (o Ordering) String() string {
	switch o {
	case OrderDegree:
		return "degree"
	case OrderDegeneracy:
		return "degeneracy"
	default:
		return "unknown"
	}
}

// OrderingByName is String's inverse, used by snapshot loading and CLIs.
func OrderingByName(name string) (Ordering, bool) {
	switch name {
	case "degree":
		return OrderDegree, true
	case "degeneracy":
		return OrderDegeneracy, true
	default:
		return OrderDegree, false
	}
}

// Mix64 is the splitmix64 finalizer, the deterministic hash used to break
// weight ties in the <+ vertex ordering (§3).
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Less reports u <+ v for vertices u, v with ordering weights du, dv
// (degrees under OrderDegree, peel epochs under OrderDegeneracy): weight
// first, then hash, then raw id as a final tiebreak so <+ is a total order
// even under (astronomically unlikely) hash collisions.
func Less(du uint32, u uint64, dv uint32, v uint64) bool {
	if du != dv {
		return du < dv
	}
	hu, hv := Mix64(u), Mix64(v)
	if hu != hv {
		return hu < hv
	}
	return u < v
}

// OrderKey is the sortable form of a vertex's position in <+; adjacency
// lists are kept sorted by the order key of their targets so merge-path
// intersection works on any suffix (§4.3). Deg holds the ordering weight
// of the active strategy, not necessarily a degree.
type OrderKey struct {
	Deg  uint32
	Hash uint64
	ID   uint64
}

// KeyOf builds the order key for a vertex with ordering weight deg.
func KeyOf(deg uint32, id uint64) OrderKey {
	return OrderKey{Deg: deg, Hash: Mix64(id), ID: id}
}

// Less reports whether k sorts before o in <+.
func (k OrderKey) Less(o OrderKey) bool {
	if k.Deg != o.Deg {
		return k.Deg < o.Deg
	}
	if k.Hash != o.Hash {
		return k.Hash < o.Hash
	}
	return k.ID < o.ID
}

// Compare returns -1, 0, or +1 ordering k against o.
func (k OrderKey) Compare(o OrderKey) int {
	switch {
	case k.Less(o):
		return -1
	case o.Less(k):
		return 1
	default:
		return 0
	}
}
