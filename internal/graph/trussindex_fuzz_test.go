package graph

import (
	"errors"
	"reflect"
	"testing"

	"tripoll/internal/serialize"
)

// trussIndexSeedCorpus encodes a small real store so the fuzzer starts
// from well-formed input.
func trussIndexSeedCorpus() []byte {
	st := NewTriSpanStore()
	st.InsertEdge(1, 2, 10, nil)
	st.InsertEdge(2, 3, 20, nil)
	st.InsertEdge(1, 3, 30, nil)
	st.InsertEdge(3, 4, 500, nil)
	st.AddSupport(1, 2, 3, 10, 30, 1)
	st.AddSupport(1, 2, 3, 10, 30, 1)
	return st.EncodeSnapshot()
}

// FuzzTrussIndexSnapshot feeds arbitrary bytes through the TPTI1
// triangle-span index decoder, in the snapshot-fuzzer mould: corrupt
// input must produce an error wrapping ErrTriSpanCorrupt — never a panic
// or an allocation sized by an attacker-chosen count — and input that
// does decode must re-encode and decode back to an identical store. Runs
// the seed corpus under plain `go test`; fuzz with
// `go test -fuzz FuzzTrussIndexSnapshot ./internal/graph`.
func FuzzTrussIndexSnapshot(f *testing.F) {
	f.Add(trussIndexSeedCorpus())
	f.Add([]byte{})
	f.Add([]byte("TPTI1"))
	// A huge claimed edge count in a tiny buffer.
	var e serialize.Encoder
	e.PutString("TPTI1")
	e.PutUvarint(1 << 60)
	f.Add(e.Bytes())
	// One edge claiming a huge bucket count.
	e.Reset()
	e.PutString("TPTI1")
	e.PutUvarint(1)
	e.PutUvarint(1)       // u
	e.PutUvarint(2)       // v
	e.PutUvarint(7)       // ts
	e.PutUvarint(1 << 40) // buckets
	f.Add(e.Bytes())
	// A bucket whose lo+width overflows uint64.
	e.Reset()
	e.PutString("TPTI1")
	e.PutUvarint(1)
	e.PutUvarint(1)
	e.PutUvarint(2)
	e.PutUvarint(7)
	e.PutUvarint(1)
	e.PutUvarint(^uint64(0)) // lo
	e.PutUvarint(5)          // width: overflows
	e.PutUvarint(1)
	f.Add(e.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeTriSpanSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrTriSpanCorrupt) {
				t.Fatalf("decode error does not wrap ErrTriSpanCorrupt: %v", err)
			}
			return
		}
		// The bytes decoded: they must round-trip to an identical store.
		// (Byte-identity with the input is not required — uvarint accepts
		// non-minimal encodings the canonical re-encode normalizes.)
		enc := st.EncodeSnapshot()
		st2, err := DecodeTriSpanSnapshot(enc)
		if err != nil {
			t.Fatalf("decode of re-encoded snapshot: %v", err)
		}
		if !reflect.DeepEqual(st.Edges, st2.Edges) || !reflect.DeepEqual(st.Supp, st2.Supp) {
			t.Fatalf("snapshot round trip diverged")
		}
	})
}

// TestTriSpanStoreSemantics pins the store's maintenance semantics the
// index relies on: merge-on-duplicate, bucket removal at zero, exact
// expiry by envelope Lo, and δ/window filtering in SupportIn.
func TestTriSpanStoreSemantics(t *testing.T) {
	st := NewTriSpanStore()
	st.InsertEdge(5, 4, 100, nil) // canonicalized to {4, 5}
	if ts, ok := st.Edges[CanonPair(4, 5)]; !ok || ts != 100 {
		t.Fatalf("insert not canonical: %v %v", ts, ok)
	}
	min := func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	st.InsertEdge(4, 5, 50, min)
	if ts := st.Edges[CanonPair(4, 5)]; ts != 50 {
		t.Fatalf("duplicate must merge: got %d", ts)
	}
	st.InsertEdge(4, 5, 200, nil)
	if ts := st.Edges[CanonPair(4, 5)]; ts != 50 {
		t.Fatalf("nil merge must keep stored: got %d", ts)
	}

	st.AddSupport(1, 2, 3, 10, 40, 1)
	st.AddSupport(1, 2, 3, 10, 40, 1)
	st.AddSupport(1, 2, 3, 20, 25, 1)
	if got := st.SupportIn(1, 2, 0, 100, false, 0); got != 3 {
		t.Fatalf("SupportIn whole: got %d, want 3", got)
	}
	if got := st.SupportIn(1, 2, 0, 100, true, 10); got != 1 {
		t.Fatalf("SupportIn δ=10 must keep only the [20,25] bucket: got %d", got)
	}
	if got := st.SupportIn(1, 2, 15, 100, false, 0); got != 1 {
		t.Fatalf("SupportIn from=15 must drop Lo=10 buckets: got %d", got)
	}
	st.AddSupport(1, 2, 3, 10, 40, -2)
	if got := st.SupportIn(1, 2, 0, 100, false, 0); got != 1 {
		t.Fatalf("negative delta must remove the bucket: got %d", got)
	}
	// Each AddSupport touches the triangle's three edges; the [20, 25]
	// bucket survives on all of them.
	st.AddSupport(7, 8, 9, 5, 6, -1)
	if st.NumBuckets() != 3 {
		t.Fatalf("negative delta on absent bucket must not create one: %d buckets", st.NumBuckets())
	}

	st.InsertEdge(1, 2, 12, nil)
	st.InsertEdge(1, 3, 30, nil)
	edges, buckets := st.ExpireBefore(25)
	if edges != 1 {
		t.Fatalf("expire must drop the ts=12 edge: dropped %d", edges)
	}
	if buckets != 3 {
		t.Fatalf("expire must drop the Lo=20 bucket on all three edges: dropped %d", buckets)
	}
	if st.NumBuckets() != 0 {
		t.Fatalf("store must have no buckets left: %d", st.NumBuckets())
	}
}
