package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Snapshots persist a built DODGr to disk so expensive construction
// (ingest, symmetrize, degree exchange, sort) runs once and many surveys
// can reload the result — the workflow the paper's FQDN study implies
// (§5.8 runs a 1694s survey over a graph that took long to build).
//
// Layout: <dir>/meta.tpg holds global figures and the partitioner name;
// <dir>/shard-<rank>.tpg holds one rank's vertices. World size and
// metadata codecs must match between Save and Load.

// snapshotMagic identifies the on-disk format. TPDG2 added the ordering
// strategy, the degeneracy bound, and per-vertex ordering weights; TPDG1
// snapshots (which always used the degree order) are not readable anymore —
// rebuild and re-save.
const snapshotMagic = "TPDG2"

// Save writes the graph to dir (created if needed). Collective over the
// graph's world; returns the first error from any rank.
func (g *DODGr[VM, EM]) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	errs := make([]error, g.w.Size())
	g.w.Parallel(func(r *ygm.Rank) {
		errs[r.ID()] = g.saveShard(r, dir)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return g.saveMeta(dir)
}

func (g *DODGr[VM, EM]) saveMeta(dir string) error {
	var e serialize.Encoder
	e.PutString(snapshotMagic)
	e.PutUvarint(uint64(g.w.Size()))
	e.PutString(g.part.Name())
	e.PutString(g.ordering.String())
	e.PutUvarint(g.numVertices)
	e.PutUvarint(g.numDirectedEdges)
	e.PutUvarint(g.numPlusEdges)
	e.PutUvarint(g.numWedges)
	e.PutUvarint(uint64(g.maxDeg))
	e.PutUvarint(uint64(g.maxOutDeg))
	e.PutUvarint(uint64(g.degeneracy))
	e.PutUvarint(g.selfLoopsDropped)
	e.PutUvarint(g.multiEdgesMerged)
	return os.WriteFile(filepath.Join(dir, "meta.tpg"), e.Bytes(), 0o644)
}

func (g *DODGr[VM, EM]) saveShard(r *ygm.Rank, dir string) error {
	f, err := os.Create(shardPath(dir, r.ID()))
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := g.encodeShard(r.ID(), bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// encodeShard streams one rank's vertices to w; the inverse of
// decodeShard.
func (g *DODGr[VM, EM]) encodeShard(rank int, w io.Writer) error {
	var e serialize.Encoder
	rl := &g.local[rank]
	e.PutUvarint(uint64(len(rl.verts)))
	for i := range rl.verts {
		v := &rl.verts[i]
		e.PutUvarint(v.ID)
		e.PutUvarint(uint64(v.Deg))
		e.PutUvarint(uint64(v.Ord))
		g.vm.Encode(&e, v.Meta)
		e.PutUvarint(uint64(len(v.Adj)))
		for k := range v.Adj {
			o := &v.Adj[k]
			e.PutUvarint(o.Target)
			e.PutUvarint(uint64(o.TOrd))
			g.em.Encode(&e, o.EMeta)
			g.vm.Encode(&e, o.TMeta)
		}
		// Flush per vertex to keep the encoder small on huge shards.
		if e.Len() > 1<<20 {
			if _, err := w.Write(e.Bytes()); err != nil {
				return err
			}
			e.Reset()
		}
	}
	_, err := w.Write(e.Bytes())
	return err
}

func shardPath(dir string, rank int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.tpg", rank))
}

// snapshotMeta is the decoded form of meta.tpg. The decoder is a pure
// function of the bytes (no world, no filesystem) so FuzzSnapshot can
// drive it directly.
type snapshotMeta struct {
	nranks           int
	part             Partitioner
	ordering         Ordering
	numVertices      uint64
	numDirectedEdges uint64
	numPlusEdges     uint64
	numWedges        uint64
	maxDeg           uint32
	maxOutDeg        uint32
	degeneracy       uint32
	selfLoopsDropped uint64
	multiEdgesMerged uint64
}

func decodeSnapshotMeta(raw []byte) (snapshotMeta, error) {
	var m snapshotMeta
	d := serialize.NewDecoder(raw)
	if magic := d.String(); magic != snapshotMagic {
		return m, fmt.Errorf("graph: not a DODGr snapshot (magic %q)", magic)
	}
	m.nranks = int(d.Uvarint())
	partName := d.String()
	ordName := d.String()
	m.numVertices = d.Uvarint()
	m.numDirectedEdges = d.Uvarint()
	m.numPlusEdges = d.Uvarint()
	m.numWedges = d.Uvarint()
	m.maxDeg = uint32(d.Uvarint())
	m.maxOutDeg = uint32(d.Uvarint())
	m.degeneracy = uint32(d.Uvarint())
	m.selfLoopsDropped = d.Uvarint()
	m.multiEdgesMerged = d.Uvarint()
	if d.Err() != nil {
		return m, fmt.Errorf("graph: corrupt snapshot meta: %w", d.Err())
	}
	// Name lookups only after the whole header decoded cleanly, so a
	// truncated buffer reports corruption rather than a garbage name.
	var ok bool
	if m.part, ok = PartitionerByName(partName); !ok {
		return m, fmt.Errorf("graph: unknown partitioner %q in snapshot", partName)
	}
	if m.ordering, ok = OrderingByName(ordName); !ok {
		return m, fmt.Errorf("graph: unknown ordering %q in snapshot", ordName)
	}
	if m.nranks < 1 {
		return m, fmt.Errorf("graph: snapshot claims %d ranks", m.nranks)
	}
	return m, nil
}

// Load reads a snapshot written by Save into a graph over w. The world
// size must match the snapshot's; codecs must be the ones used to save.
func Load[VM, EM any](w *ygm.World, dir string, vm serialize.Codec[VM], em serialize.Codec[EM]) (*DODGr[VM, EM], error) {
	metaRaw, err := os.ReadFile(filepath.Join(dir, "meta.tpg"))
	if err != nil {
		return nil, err
	}
	m, err := decodeSnapshotMeta(metaRaw)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, dir)
	}
	if m.nranks != w.Size() {
		return nil, fmt.Errorf("graph: snapshot has %d ranks, world has %d", m.nranks, w.Size())
	}
	g := &DODGr[VM, EM]{w: w, part: m.part, vm: vm, em: em, ordering: m.ordering}
	g.local = make([]rankLocal[VM, EM], w.Size())
	g.numVertices = m.numVertices
	g.numDirectedEdges = m.numDirectedEdges
	g.numPlusEdges = m.numPlusEdges
	g.numWedges = m.numWedges
	g.maxDeg = m.maxDeg
	g.maxOutDeg = m.maxOutDeg
	g.degeneracy = m.degeneracy
	g.selfLoopsDropped = m.selfLoopsDropped
	g.multiEdgesMerged = m.multiEdgesMerged

	errs := make([]error, w.Size())
	w.Parallel(func(r *ygm.Rank) {
		errs[r.ID()] = g.loadShard(r, dir)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (g *DODGr[VM, EM]) loadShard(r *ygm.Rank, dir string) error {
	raw, err := os.ReadFile(shardPath(dir, r.ID()))
	if err != nil {
		return err
	}
	return g.decodeShard(r.ID(), raw)
}

// decodeShard rebuilds one rank's vertices from shard bytes. Pure with
// respect to the world — only g.local[rank] and the codecs are touched —
// so FuzzSnapshot can drive it on arbitrary bytes. Every count decoded
// from the input is checked against the bytes actually remaining before
// any allocation it sizes: a vertex or adjacency entry costs at least one
// encoded byte each, so a count exceeding Remaining() is corruption, not
// a licence for a gigantic make.
func (g *DODGr[VM, EM]) decodeShard(rank int, raw []byte) error {
	d := serialize.NewDecoder(raw)
	n := int(d.Uvarint())
	if d.Err() != nil {
		return fmt.Errorf("graph: corrupt shard %d: %w", rank, d.Err())
	}
	if n < 0 || n > d.Remaining() {
		return fmt.Errorf("graph: corrupt shard %d: %d vertices in %d bytes", rank, n, d.Remaining())
	}
	rl := &g.local[rank]
	rl.index = make(map[uint64]int32, n)
	rl.verts = make([]Vertex[VM, EM], n)
	rl.arena = nil
	// Adjacency entries accumulate in one arena; per-vertex subslices are
	// re-pointed afterwards (appends may move the arena), reproducing the
	// CSR layout Build produces.
	adjLens := make([]int, n)
	for i := 0; i < n; i++ {
		v := &rl.verts[i]
		v.ID = d.Uvarint()
		v.Deg = uint32(d.Uvarint())
		v.Ord = uint32(d.Uvarint())
		v.Meta = g.vm.Decode(d)
		adjLen := int(d.Uvarint())
		if d.Err() != nil {
			return fmt.Errorf("graph: corrupt shard %d at vertex %d: %w", rank, i, d.Err())
		}
		if adjLen < 0 || adjLen > d.Remaining() {
			return fmt.Errorf("graph: corrupt shard %d at vertex %d: %d adjacencies in %d bytes", rank, i, adjLen, d.Remaining())
		}
		adjLens[i] = adjLen
		for k := 0; k < adjLen && d.Err() == nil; k++ {
			var o OutEdge[VM, EM]
			o.Target = d.Uvarint()
			o.TOrd = uint32(d.Uvarint())
			o.EMeta = g.em.Decode(d)
			o.TMeta = g.vm.Decode(d)
			rl.arena = append(rl.arena, o)
		}
		if d.Err() != nil {
			return fmt.Errorf("graph: corrupt shard %d at vertex %d: %w", rank, i, d.Err())
		}
		rl.index[v.ID] = int32(i)
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("graph: shard %d has %d trailing bytes", rank, d.Remaining())
	}
	off := 0
	for i := 0; i < n; i++ {
		end := off + adjLens[i]
		rl.verts[i].Adj = rl.arena[off:end:end]
		off = end
	}
	return nil
}
