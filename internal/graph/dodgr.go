package graph

import (
	"fmt"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Edge is one undirected input edge with metadata. Ingestion symmetrizes:
// adding {U, V} makes both (U, V) and (V, U) visible, per §3's convention.
type Edge[EM any] struct {
	U, V uint64
	Meta EM
}

// OutEdge is one entry of a metadata-augmented out-adjacency list Adj⁺ᵐ(u):
// the target vertex, its ordering weight (needed for <+ comparisons during
// merge-path intersection — the full degree under OrderDegree, the peel
// epoch under OrderDegeneracy), the edge metadata meta(u, target), and the
// target's vertex metadata meta(target) (§4.2: storing target metadata along
// edges trades O(|E|) memory for enumerating Δpqr without visiting r).
type OutEdge[VM, EM any] struct {
	Target uint64
	TOrd   uint32
	EMeta  EM
	TMeta  VM
}

// Key returns the target's position in the <+ order.
func (o OutEdge[VM, EM]) Key() OrderKey { return KeyOf(o.TOrd, o.Target) }

// Vertex is one locally stored vertex of the DODGr: its id, full degree in
// G, ordering weight, metadata, and Adj⁺ᵐ sorted by target order key.
type Vertex[VM, EM any] struct {
	ID   uint64
	Deg  uint32 // full degree in G (Tab. 1 statistics)
	Ord  uint32 // ordering weight in <+ (== Deg under OrderDegree)
	Meta VM
	Adj  []OutEdge[VM, EM]
}

// Key returns the vertex's position in the <+ order.
func (v *Vertex[VM, EM]) Key() OrderKey { return KeyOf(v.Ord, v.ID) }

// OutDeg returns d⁺(v).
func (v *Vertex[VM, EM]) OutDeg() int { return len(v.Adj) }

// rankLocal is one rank's shard. After construction the per-vertex Adj
// slices all alias one contiguous CSR-style arena (built by compact), so a
// survey's sequential sweep over vertices walks memory in order instead of
// chasing per-vertex allocations.
type rankLocal[VM, EM any] struct {
	index map[uint64]int32
	verts []Vertex[VM, EM]
	arena []OutEdge[VM, EM] // backing store for every verts[i].Adj
}

// compact moves every adjacency list into one arena allocation, in vertex
// storage order, and re-points the Adj subslices at it.
func (rl *rankLocal[VM, EM]) compact() {
	var total int
	for i := range rl.verts {
		total += len(rl.verts[i].Adj)
	}
	rl.arena = make([]OutEdge[VM, EM], 0, total)
	for i := range rl.verts {
		v := &rl.verts[i]
		start := len(rl.arena)
		rl.arena = append(rl.arena, v.Adj...)
		v.Adj = rl.arena[start:len(rl.arena):len(rl.arena)]
	}
}

// DODGr is the distributed degree-ordered directed graph G⁺ with inlined
// metadata. It is built once by a Builder and is immutable afterwards;
// surveys read it concurrently from all ranks.
type DODGr[VM, EM any] struct {
	w        *ygm.World
	part     Partitioner
	vm       serialize.Codec[VM]
	em       serialize.Codec[EM]
	ordering Ordering

	local []rankLocal[VM, EM]

	// Global figures cached at build time (identical on all ranks).
	numVertices      uint64
	numDirectedEdges uint64 // after symmetrization; Table 1's |E| convention
	numPlusEdges     uint64 // edges of G⁺ == undirected edge count
	numWedges        uint64 // |W⁺| = Σ_v C(d⁺(v), 2)
	maxDeg           uint32 // d_max
	maxOutDeg        uint32 // d_max⁺
	degeneracy       uint32 // peel level bound; 0 when built with OrderDegree
	selfLoopsDropped uint64
	multiEdgesMerged uint64
}

// World returns the communicator the graph is partitioned over.
func (g *DODGr[VM, EM]) World() *ygm.World { return g.w }

// Owner returns the rank storing vertex v.
func (g *DODGr[VM, EM]) Owner(v uint64) int { return g.part.Owner(v, g.w.Size()) }

// Partitioner returns the vertex placement the graph was built with, so
// derived structures (stream shards, rebuilt snapshots) colocate vertices
// with the original.
func (g *DODGr[VM, EM]) Partitioner() Partitioner { return g.part }

// VertexCodec returns the vertex-metadata codec.
func (g *DODGr[VM, EM]) VertexCodec() serialize.Codec[VM] { return g.vm }

// EdgeCodec returns the edge-metadata codec.
func (g *DODGr[VM, EM]) EdgeCodec() serialize.Codec[EM] { return g.em }

// LocalVertices returns rank r's vertices, sorted by id. Read-only.
func (g *DODGr[VM, EM]) LocalVertices(r *ygm.Rank) []Vertex[VM, EM] {
	return g.local[r.ID()].verts
}

// Lookup finds a locally stored vertex by id.
func (g *DODGr[VM, EM]) Lookup(r *ygm.Rank, id uint64) (*Vertex[VM, EM], bool) {
	rl := &g.local[r.ID()]
	i, ok := rl.index[id]
	if !ok {
		return nil, false
	}
	return &rl.verts[i], true
}

// LocalIndex returns the position of id within LocalVertices(r), or -1 if
// the vertex is not stored on rank r.
func (g *DODGr[VM, EM]) LocalIndex(r *ygm.Rank, id uint64) int32 {
	i, ok := g.local[r.ID()].index[id]
	if !ok {
		return -1
	}
	return i
}

// NumVertices returns |V|.
func (g *DODGr[VM, EM]) NumVertices() uint64 { return g.numVertices }

// NumDirectedEdges returns the symmetrized directed edge count (the |E|
// reported in Table 1: "the number of nonzeros in a symmetrized graph's
// adjacency matrix").
func (g *DODGr[VM, EM]) NumDirectedEdges() uint64 { return g.numDirectedEdges }

// NumUndirectedEdges returns |E|/2, which equals the number of directed
// edges in G⁺.
func (g *DODGr[VM, EM]) NumUndirectedEdges() uint64 { return g.numPlusEdges }

// NumWedges returns |W⁺|, the wedge-check work measure of §5.5.
func (g *DODGr[VM, EM]) NumWedges() uint64 { return g.numWedges }

// MaxDegree returns d_max.
func (g *DODGr[VM, EM]) MaxDegree() uint32 { return g.maxDeg }

// MaxOutDegree returns d_max⁺.
func (g *DODGr[VM, EM]) MaxOutDegree() uint32 { return g.maxOutDeg }

// Ordering returns the vertex-ordering strategy the graph was built with.
func (g *DODGr[VM, EM]) Ordering() Ordering { return g.ordering }

// Degeneracy returns the k-core peel bound measured during construction —
// the maximum level k at which any vertex was removed, an upper bound on
// every out-degree. It is 0 when the graph was built with OrderDegree (the
// peel never ran).
func (g *DODGr[VM, EM]) Degeneracy() uint32 { return g.degeneracy }

// SelfLoopsDropped reports how many self-loop insertions were discarded.
func (g *DODGr[VM, EM]) SelfLoopsDropped() uint64 { return g.selfLoopsDropped }

// MultiEdgesMerged reports how many duplicate edge insertions were merged.
func (g *DODGr[VM, EM]) MultiEdgesMerged() uint64 { return g.multiEdgesMerged }

// CheckInvariants validates the construction on rank r's shard:
// every out-edge points <+-upward, every adjacency list is sorted and
// duplicate-free, and every vertex is owned by the correct rank. It returns
// the number of local G⁺ edges so tests can cross-check totals.
func (g *DODGr[VM, EM]) CheckInvariants(r *ygm.Rank) (plusEdges uint64, err error) {
	rl := &g.local[r.ID()]
	for i := range rl.verts {
		v := &rl.verts[i]
		if g.Owner(v.ID) != r.ID() {
			return 0, errf("vertex %d stored on rank %d but owned by %d", v.ID, r.ID(), g.Owner(v.ID))
		}
		if g.ordering == OrderDegeneracy && uint32(len(v.Adj)) > g.degeneracy {
			return 0, errf("vertex %d has out-degree %d > degeneracy bound %d", v.ID, len(v.Adj), g.degeneracy)
		}
		vk := v.Key()
		for j := range v.Adj {
			o := &v.Adj[j]
			ok := o.Key()
			if !vk.Less(ok) {
				return 0, errf("edge (%d,%d) not <+ oriented", v.ID, o.Target)
			}
			if j > 0 {
				pk := v.Adj[j-1].Key()
				if !pk.Less(ok) {
					return 0, errf("Adj+(%d) not strictly sorted at position %d", v.ID, j)
				}
			}
		}
		plusEdges += uint64(len(v.Adj))
	}
	return plusEdges, nil
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
