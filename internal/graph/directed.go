package graph

import (
	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// Directed-input support (§4 of the paper): TriPoll's algorithms run on
// the symmetrized graph, so a directed input graph is handled by recording
// each edge's original directionality in "an additional two bits" of edge
// metadata, available to the callback when orientation matters.
//
// Directionality is stored relative to the edge's canonical form (smaller
// endpoint first): DirForward means the arc min→max existed in the input,
// DirBackward means max→min, DirBoth means both.

// Direction is the two-bit original-directionality tag.
type Direction uint8

const (
	// DirNone marks an edge inserted undirected.
	DirNone Direction = 0
	// DirForward is the arc from the smaller to the larger endpoint id.
	DirForward Direction = 1
	// DirBackward is the arc from the larger to the smaller endpoint id.
	DirBackward Direction = 2
	// DirBoth marks a bidirectional pair.
	DirBoth Direction = 3
)

func (d Direction) String() string {
	switch d {
	case DirNone:
		return "undirected"
	case DirForward:
		return "forward"
	case DirBackward:
		return "backward"
	case DirBoth:
		return "both"
	default:
		return "invalid"
	}
}

// Directed wraps edge metadata with the original directionality.
type Directed[EM any] struct {
	Dir  Direction
	Meta EM
}

// ArcMeta builds the Directed metadata for the input arc u→v (canonical
// direction bit chosen relative to min/max endpoint order).
func ArcMeta[EM any](u, v uint64, meta EM) Directed[EM] {
	d := DirForward
	if u > v {
		d = DirBackward
	}
	return Directed[EM]{Dir: d, Meta: meta}
}

// HasArc reports whether the original graph contained the arc from → to,
// given the Directed metadata of the undirected edge {from, to}.
func HasArc[EM any](d Directed[EM], from, to uint64) bool {
	if from < to {
		return d.Dir&DirForward != 0
	}
	return d.Dir&DirBackward != 0
}

// DirectedCodec serializes the directionality bits alongside the wrapped
// metadata.
func DirectedCodec[EM any](em serialize.Codec[EM]) serialize.Codec[Directed[EM]] {
	return serialize.Codec[Directed[EM]]{
		Encode: func(e *serialize.Encoder, v Directed[EM]) {
			e.PutUint8(uint8(v.Dir))
			em.Encode(e, v.Meta)
		},
		Decode: func(d *serialize.Decoder) Directed[EM] {
			return Directed[EM]{Dir: Direction(d.Uint8()), Meta: em.Decode(d)}
		},
	}
}

// MergeDirected builds the multi-edge merge function for directed inputs:
// directionality bits are OR-ed (a forward and a backward insertion of the
// same undirected edge become DirBoth) and the payloads are combined with
// mergeMeta (nil keeps the first payload).
func MergeDirected[EM any](mergeMeta func(a, b EM) EM) func(a, b Directed[EM]) Directed[EM] {
	return func(a, b Directed[EM]) Directed[EM] {
		out := Directed[EM]{Dir: a.Dir | b.Dir, Meta: a.Meta}
		if mergeMeta != nil {
			out.Meta = mergeMeta(a.Meta, b.Meta)
		}
		return out
	}
}

// AddArc inserts the directed arc u→v into a builder whose edge metadata
// is Directed[EM]. The edge is symmetrized for triangle identification
// (§3: algorithms operate on G⁺ of the symmetrized graph); the original
// orientation survives in the metadata. Builders used with AddArc should
// set MergeEdgeMeta to MergeDirected so opposing arcs combine into
// DirBoth.
func AddArc[VM, EM any](b *Builder[VM, Directed[EM]], r *ygm.Rank, u, v uint64, meta EM) {
	b.AddEdge(r, u, v, ArcMeta(u, v, meta))
}
