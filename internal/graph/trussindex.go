package graph

import (
	"errors"
	"fmt"
	"sort"

	"tripoll/internal/serialize"
)

// Triangle-span index storage: the structural half of internal/truss's
// maintained index. Per live-window edge it keeps the merged timestamp and
// the span-bucketed support — how many triangles through the edge have a
// given timestamp envelope [Lo, Hi]. Bucketing by envelope (rather than a
// flat count) is what lets a single maintained structure answer
// span-truss queries for *any* window [from, until] and close-within δ:
// a triangle contributes to the window iff from ≤ Lo ∧ Hi ≤ until ∧
// Hi−Lo ≤ δ, all decidable from the bucket key alone.
//
// The store itself is single-threaded and process-local; the distributed
// maintenance discipline (collective publication of rank-local deltas so
// every process holds an identical store) lives in internal/truss.

// TriSpan is the closed timestamp envelope [Lo, Hi] of a triangle: the
// min and max of its three edge timestamps.
type TriSpan struct {
	Lo, Hi uint64
}

// TriSpanStore maps each live undirected edge (canonical First < Second)
// to its merged timestamp, and each edge to its span-bucketed triangle
// support. Supp entries exist only for edges with at least one bucket;
// Edges is authoritative for membership.
type TriSpanStore struct {
	Edges map[serialize.Pair[uint64, uint64]]uint64
	Supp  map[serialize.Pair[uint64, uint64]]map[TriSpan]uint64
}

// NewTriSpanStore returns an empty store.
func NewTriSpanStore() *TriSpanStore {
	return &TriSpanStore{
		Edges: make(map[serialize.Pair[uint64, uint64]]uint64),
		Supp:  make(map[serialize.Pair[uint64, uint64]]map[TriSpan]uint64),
	}
}

// CanonPair returns the canonical undirected key for {u, v}.
func CanonPair(u, v uint64) serialize.Pair[uint64, uint64] {
	if u > v {
		u, v = v, u
	}
	return serialize.Pair[uint64, uint64]{First: u, Second: v}
}

// InsertEdge records edge {u, v} with timestamp ts. A re-insertion of a
// live edge merges timestamps through merge (nil keeps the stored value,
// mirroring StreamShard.Insert); insertion after expiry is a fresh edge.
func (st *TriSpanStore) InsertEdge(u, v, ts uint64, merge func(a, b uint64) uint64) {
	k := CanonPair(u, v)
	if old, ok := st.Edges[k]; ok {
		if merge != nil {
			st.Edges[k] = merge(old, ts)
		}
		return
	}
	st.Edges[k] = ts
}

// AddSupport bumps the [lo, hi] bucket on the three edges of triangle
// {p, q, r} by delta (negative deltas subtract; a bucket reaching zero is
// removed).
func (st *TriSpanStore) AddSupport(p, q, r, lo, hi uint64, delta int64) {
	sp := TriSpan{Lo: lo, Hi: hi}
	for _, k := range [3]serialize.Pair[uint64, uint64]{CanonPair(p, q), CanonPair(p, r), CanonPair(q, r)} {
		b, ok := st.Supp[k]
		if !ok {
			if delta <= 0 {
				continue
			}
			b = make(map[TriSpan]uint64)
			st.Supp[k] = b
		}
		n := int64(b[sp]) + delta
		switch {
		case n > 0:
			b[sp] = uint64(n)
		default:
			delete(b, sp)
			if len(b) == 0 {
				delete(st.Supp, k)
			}
		}
	}
}

// ExpireBefore drops every edge timestamped below the cutoff and every
// support bucket whose envelope opens below it. A triangle survives the
// watermark iff all three of its edges do, i.e. iff its minimum edge
// timestamp Lo ≥ cutoff — so dropping buckets by Lo alone is exact and
// needs no triangle identity. Returns the number of edges and buckets
// dropped.
func (st *TriSpanStore) ExpireBefore(cutoff uint64) (edges, buckets int) {
	for k, ts := range st.Edges {
		if ts < cutoff {
			delete(st.Edges, k)
			edges++
		}
	}
	for k, b := range st.Supp {
		for sp := range b {
			if sp.Lo < cutoff {
				delete(b, sp)
				buckets++
			}
		}
		if len(b) == 0 {
			delete(st.Supp, k)
		}
	}
	return edges, buckets
}

// ResetSupport clears all support buckets ahead of an epoch rebuild; the
// rebuild's full traversal re-delivers every live-window triangle. Edge
// state is maintained structurally and survives.
func (st *TriSpanStore) ResetSupport() {
	st.Supp = make(map[serialize.Pair[uint64, uint64]]map[TriSpan]uint64)
}

// NumEdges returns the number of live edges.
func (st *TriSpanStore) NumEdges() int { return len(st.Edges) }

// NumBuckets returns the total number of (edge, span) support buckets.
func (st *TriSpanStore) NumBuckets() int {
	n := 0
	for _, b := range st.Supp {
		n += len(b)
	}
	return n
}

// SupportIn sums the support of edge {u, v} restricted to triangles whose
// envelope fits the closed window [from, until] and, when hasDelta, whose
// width Hi−Lo is at most delta.
func (st *TriSpanStore) SupportIn(u, v, from, until uint64, hasDelta bool, delta uint64) uint64 {
	var sum uint64
	for sp, n := range st.Supp[CanonPair(u, v)] {
		if sp.Lo < from || sp.Hi > until {
			continue
		}
		if hasDelta && sp.Hi-sp.Lo > delta {
			continue
		}
		sum += n
	}
	return sum
}

// EdgesIn returns the live edges timestamped inside the closed window
// [from, until], sorted ascending by (First, Second).
func (st *TriSpanStore) EdgesIn(from, until uint64) []serialize.Pair[uint64, uint64] {
	out := make([]serialize.Pair[uint64, uint64], 0, len(st.Edges))
	for k, ts := range st.Edges {
		if ts < from || ts > until {
			continue
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].Second < out[j].Second
	})
	return out
}

// Snapshot codec (TPTI1), in the TPDG2 shard mould: magic + version,
// deterministic encode (edges sorted, buckets sorted per edge), decode
// that validates every claimed count against the bytes actually remaining
// before allocating, and typed errors — corrupt input must never panic.

const triSpanMagic = "TPTI1"

// ErrTriSpanCorrupt is wrapped by every decode failure of a triangle-span
// index snapshot.
var ErrTriSpanCorrupt = errors.New("graph: corrupt triangle-span index snapshot")

func triSpanCorrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTriSpanCorrupt, fmt.Sprintf(format, args...))
}

// EncodeSnapshot serializes the store deterministically: identical stores
// yield identical bytes regardless of map iteration order.
func (st *TriSpanStore) EncodeSnapshot() []byte {
	var e serialize.Encoder
	e.PutString(triSpanMagic)

	edges := make([]serialize.Pair[uint64, uint64], 0, len(st.Edges))
	for k := range st.Edges {
		edges = append(edges, k)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].First != edges[j].First {
			return edges[i].First < edges[j].First
		}
		return edges[i].Second < edges[j].Second
	})
	e.PutUvarint(uint64(len(edges)))
	for _, k := range edges {
		e.PutUvarint(k.First)
		e.PutUvarint(k.Second)
		e.PutUvarint(st.Edges[k])

		b := st.Supp[k]
		spans := make([]TriSpan, 0, len(b))
		for sp := range b {
			spans = append(spans, sp)
		}
		sort.Slice(spans, func(i, j int) bool {
			if spans[i].Lo != spans[j].Lo {
				return spans[i].Lo < spans[j].Lo
			}
			return spans[i].Hi < spans[j].Hi
		})
		e.PutUvarint(uint64(len(spans)))
		for _, sp := range spans {
			e.PutUvarint(sp.Lo)
			e.PutUvarint(sp.Hi - sp.Lo) // width, so Hi ≥ Lo is free to validate
			e.PutUvarint(b[sp])
		}
	}
	return e.Bytes()
}

// DecodeTriSpanSnapshot parses TPTI1 bytes back into a store. Corrupt or
// truncated input returns an error wrapping ErrTriSpanCorrupt; claimed
// counts are checked against the remaining buffer before any allocation
// is sized by them.
func DecodeTriSpanSnapshot(data []byte) (*TriSpanStore, error) {
	d := serialize.NewDecoder(data)
	if magic := d.String(); d.Err() != nil || magic != triSpanMagic {
		return nil, triSpanCorrupt("bad magic")
	}
	nEdges := d.Uvarint()
	if d.Err() != nil {
		return nil, triSpanCorrupt("truncated edge count")
	}
	// Each edge costs ≥ 4 bytes (three uvarints + bucket count).
	if nEdges > uint64(d.Remaining()) {
		return nil, triSpanCorrupt("edge count %d exceeds remaining %d bytes", nEdges, d.Remaining())
	}
	st := NewTriSpanStore()
	var prev serialize.Pair[uint64, uint64]
	for i := uint64(0); i < nEdges; i++ {
		u := d.Uvarint()
		v := d.Uvarint()
		ts := d.Uvarint()
		nb := d.Uvarint()
		if d.Err() != nil {
			return nil, triSpanCorrupt("truncated edge record %d", i)
		}
		if u >= v {
			return nil, triSpanCorrupt("edge %d not canonical: {%d, %d}", i, u, v)
		}
		k := serialize.Pair[uint64, uint64]{First: u, Second: v}
		if i > 0 && !(prev.First < u || (prev.First == u && prev.Second < v)) {
			return nil, triSpanCorrupt("edge %d out of order", i)
		}
		prev = k
		if nb > uint64(d.Remaining()) {
			return nil, triSpanCorrupt("edge %d bucket count %d exceeds remaining %d bytes", i, nb, d.Remaining())
		}
		st.Edges[k] = ts
		if nb == 0 {
			continue
		}
		b := make(map[TriSpan]uint64, nb)
		var prevSp TriSpan
		for j := uint64(0); j < nb; j++ {
			lo := d.Uvarint()
			width := d.Uvarint()
			n := d.Uvarint()
			if d.Err() != nil {
				return nil, triSpanCorrupt("truncated bucket %d of edge %d", j, i)
			}
			if n == 0 {
				return nil, triSpanCorrupt("zero-count bucket %d of edge %d", j, i)
			}
			hi := lo + width
			if hi < lo {
				return nil, triSpanCorrupt("bucket %d of edge %d overflows", j, i)
			}
			sp := TriSpan{Lo: lo, Hi: hi}
			if j > 0 && !(prevSp.Lo < lo || (prevSp.Lo == lo && prevSp.Hi < hi)) {
				return nil, triSpanCorrupt("bucket %d of edge %d out of order", j, i)
			}
			prevSp = sp
			b[sp] = n
		}
		st.Supp[k] = b
	}
	if d.Remaining() != 0 {
		return nil, triSpanCorrupt("%d trailing bytes", d.Remaining())
	}
	return st, nil
}
