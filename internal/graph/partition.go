package graph

// Partitioner assigns each vertex id to the rank that stores its adjacency
// list, metadata, and computation (the Rank(u) of §3). The paper uses
// "random or cyclic partitionings of vertices across MPI ranks" (§4.2); both
// are provided.
type Partitioner interface {
	// Owner returns the rank in [0, n) responsible for vertex v.
	Owner(v uint64, n int) int
	// Name identifies the partitioner in experiment output.
	Name() string
}

// HashPartition places v on rank mix64(v) mod n — the "random" partitioning.
type HashPartition struct{}

// Owner implements Partitioner.
func (HashPartition) Owner(v uint64, n int) int { return int(Mix64(v) % uint64(n)) }

// Name implements Partitioner.
func (HashPartition) Name() string { return "hash" }

// CyclicPartition places v on rank v mod n.
type CyclicPartition struct{}

// Owner implements Partitioner.
func (CyclicPartition) Owner(v uint64, n int) int { return int(v % uint64(n)) }

// Name implements Partitioner.
func (CyclicPartition) Name() string { return "cyclic" }

// PartitionerByName is Name's inverse, used by snapshot loading and CLIs.
func PartitionerByName(name string) (Partitioner, bool) {
	switch name {
	case HashPartition{}.Name():
		return HashPartition{}, true
	case CyclicPartition{}.Name():
		return CyclicPartition{}, true
	default:
		return nil, false
	}
}
