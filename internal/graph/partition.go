package graph

import "fmt"

// Partitioner assigns each vertex id to the rank that stores its adjacency
// list, metadata, and computation (the Rank(u) of §3). The paper uses
// "random or cyclic partitionings of vertices across MPI ranks" (§4.2); both
// are provided.
type Partitioner interface {
	// Owner returns the rank in [0, n) responsible for vertex v.
	Owner(v uint64, n int) int
	// Name identifies the partitioner in experiment output.
	Name() string
}

// HashPartition places v on rank mix64(v) mod n — the "random" partitioning.
type HashPartition struct{}

// Owner implements Partitioner.
func (HashPartition) Owner(v uint64, n int) int { return int(Mix64(v) % uint64(n)) }

// Name implements Partitioner.
func (HashPartition) Name() string { return "hash" }

// CyclicPartition places v on rank v mod n.
type CyclicPartition struct{}

// Owner implements Partitioner.
func (CyclicPartition) Owner(v uint64, n int) int { return int(v % uint64(n)) }

// Name implements Partitioner.
func (CyclicPartition) Name() string { return "cyclic" }

// SpanPartition confines ownership to the rank span [First, First+Count):
// Base decides placement within the span, every rank outside it holds an
// empty shard. Replicated graphs (engine.RegisterReplicated) build one
// copy per span, so each replica's traversal exchanges messages only among
// its own ranks while the collective still covers the whole world.
type SpanPartition struct {
	Base  Partitioner // nil = HashPartition
	First int
	Count int
}

// Owner implements Partitioner.
func (p SpanPartition) Owner(v uint64, n int) int {
	base := p.Base
	if base == nil {
		base = HashPartition{}
	}
	count := p.Count
	if count <= 0 || p.First+count > n {
		count = n - p.First
	}
	return p.First + base.Owner(v, count)
}

// Name implements Partitioner.
func (p SpanPartition) Name() string {
	base := p.Base
	if base == nil {
		base = HashPartition{}
	}
	return fmt.Sprintf("span:%d:%d:%s", p.First, p.Count, base.Name())
}

// PartitionerByName is Name's inverse, used by snapshot loading and CLIs.
func PartitionerByName(name string) (Partitioner, bool) {
	switch name {
	case HashPartition{}.Name():
		return HashPartition{}, true
	case CyclicPartition{}.Name():
		return CyclicPartition{}, true
	default:
		return nil, false
	}
}
