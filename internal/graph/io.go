package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// TemporalEdge is the on-disk edge form used by the command-line tools:
// two endpoints and an optional integer timestamp (0 when absent). The
// text format is one edge per line, whitespace-separated, '#' comments.
type TemporalEdge struct {
	U, V uint64
	Time uint64
}

// ParseEdgeLine parses "u v [t]". It returns ok=false for blank and
// comment lines.
func ParseEdgeLine(line string) (e TemporalEdge, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
		return TemporalEdge{}, false, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return TemporalEdge{}, false, fmt.Errorf("graph: bad edge line %q", line)
	}
	u, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return TemporalEdge{}, false, fmt.Errorf("graph: bad source in %q: %w", line, err)
	}
	v, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return TemporalEdge{}, false, fmt.Errorf("graph: bad target in %q: %w", line, err)
	}
	var t uint64
	if len(fields) >= 3 {
		t, err = strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return TemporalEdge{}, false, fmt.Errorf("graph: bad timestamp in %q: %w", line, err)
		}
	}
	return TemporalEdge{U: u, V: v, Time: t}, true, nil
}

// ReadEdgeList reads a whole edge-list stream.
func ReadEdgeList(rd io.Reader) ([]TemporalEdge, error) {
	var edges []TemporalEdge
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		e, ok, err := ParseEdgeLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if ok {
			edges = append(edges, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return edges, nil
}

// ReadEdgeListFile reads an edge-list file.
func ReadEdgeListFile(path string) ([]TemporalEdge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes edges in the text format, with timestamps when any
// edge has a nonzero one.
func WriteEdgeList(w io.Writer, edges []TemporalEdge) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	temporal := false
	for _, e := range edges {
		if e.Time != 0 {
			temporal = true
			break
		}
	}
	for _, e := range edges {
		var err error
		if temporal {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.Time)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes edges to path.
func WriteEdgeListFile(path string, edges []TemporalEdge) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, edges); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
