package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// snapshotSeedCorpus saves a small real graph and returns its meta and
// shard-0 bytes, so the fuzzer starts from well-formed inputs.
func snapshotSeedCorpus(f *testing.F) (meta, shard []byte) {
	f.Helper()
	w := ygm.MustWorld(1, ygm.Options{})
	defer w.Close()
	b := NewBuilder(w, serialize.Uint64Codec(), serialize.Uint64Codec(), BuilderOptions[uint64]{})
	var g *DODGr[uint64, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for _, e := range [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}} {
			b.AddEdge(r, e[0], e[1], e[0]*100+e[1])
		}
		g = b.Build(r)
	})
	dir := f.TempDir()
	if err := g.Save(dir); err != nil {
		f.Fatal(err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, "meta.tpg"))
	if err != nil {
		f.Fatal(err)
	}
	shard, err = os.ReadFile(shardPath(dir, 0))
	if err != nil {
		f.Fatal(err)
	}
	return meta, shard
}

// FuzzSnapshot feeds arbitrary bytes through both TPDG2 snapshot decoders
// (meta header and shard), mirroring internal/serialize's
// FuzzDecoderRobustness: corrupt input must produce a clean error — never
// a panic, a runaway loop, or an allocation sized by an attacker-chosen
// count — and input that does decode must re-encode and decode back to an
// identical shard. Runs the seed corpus under plain `go test`; fuzz with
// `go test -fuzz FuzzSnapshot ./internal/graph`.
func FuzzSnapshot(f *testing.F) {
	meta, shard := snapshotSeedCorpus(f)
	f.Add(meta)
	f.Add(shard)
	f.Add([]byte{})
	// A huge claimed vertex count in a tiny buffer.
	var e serialize.Encoder
	e.PutUvarint(1 << 60)
	f.Add(e.Bytes())
	// One vertex claiming a huge adjacency list.
	e.Reset()
	e.PutUvarint(1)
	e.PutUvarint(7)     // ID
	e.PutUvarint(3)     // Deg
	e.PutUvarint(3)     // Ord
	e.PutUvarint(9)     // Meta (uint64 codec)
	e.PutUvarint(1 << 40)
	f.Add(e.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Meta path: decode must only ever return (value, nil) or an error.
		_, _ = decodeSnapshotMeta(data)

		// Shard path, against a world-free single-rank graph shell.
		g := &DODGr[uint64, uint64]{
			vm:    serialize.Uint64Codec(),
			em:    serialize.Uint64Codec(),
			local: make([]rankLocal[uint64, uint64], 1),
		}
		if err := g.decodeShard(0, data); err != nil {
			return
		}
		// The bytes decoded: they must round-trip to an equal shard.
		var buf bytes.Buffer
		if err := g.encodeShard(0, &buf); err != nil {
			t.Fatalf("re-encode of decoded shard: %v", err)
		}
		g2 := &DODGr[uint64, uint64]{
			vm:    serialize.Uint64Codec(),
			em:    serialize.Uint64Codec(),
			local: make([]rankLocal[uint64, uint64], 1),
		}
		if err := g2.decodeShard(0, buf.Bytes()); err != nil {
			t.Fatalf("decode of re-encoded shard: %v", err)
		}
		if !reflect.DeepEqual(g.local[0].verts, g2.local[0].verts) {
			t.Fatalf("shard round trip diverged:\n%+v\nvs\n%+v", g.local[0].verts, g2.local[0].verts)
		}
		if !reflect.DeepEqual(g.local[0].index, g2.local[0].index) {
			t.Fatalf("shard index round trip diverged")
		}
	})
}

// FuzzSnapshotMetaRoundTrip: a well-formed meta header always decodes to
// the figures that produced it, for arbitrary figures.
func FuzzSnapshotMetaRoundTrip(f *testing.F) {
	f.Add(uint64(10), uint64(20), uint64(15), uint64(30), uint64(5), uint64(4), uint64(3))
	f.Fuzz(func(t *testing.T, nv, nde, npe, nw, maxDeg, maxOut, degen uint64) {
		var e serialize.Encoder
		e.PutString(snapshotMagic)
		e.PutUvarint(3)
		e.PutString(HashPartition{}.Name())
		e.PutString(OrderDegree.String())
		e.PutUvarint(nv)
		e.PutUvarint(nde)
		e.PutUvarint(npe)
		e.PutUvarint(nw)
		e.PutUvarint(maxDeg)
		e.PutUvarint(maxOut)
		e.PutUvarint(degen)
		e.PutUvarint(1)
		e.PutUvarint(2)
		m, err := decodeSnapshotMeta(e.Bytes())
		if err != nil {
			t.Fatalf("well-formed meta rejected: %v", err)
		}
		if m.nranks != 3 || m.numVertices != nv || m.numDirectedEdges != nde ||
			m.numPlusEdges != npe || m.numWedges != nw ||
			m.maxDeg != uint32(maxDeg) || m.maxOutDeg != uint32(maxOut) ||
			m.degeneracy != uint32(degen) ||
			m.selfLoopsDropped != 1 || m.multiEdgesMerged != 2 {
			t.Fatalf("meta round trip diverged: %+v", m)
		}
	})
}
