package graph

import "testing"

func shardLiveTargets(s *StreamShard[uint64, uint64], id uint64) []uint64 {
	vi, ok := s.Index[id]
	if !ok {
		return nil
	}
	var out []uint64
	for _, e := range s.Verts[vi].Adj {
		if !e.Dead {
			out = append(out, e.Target)
		}
	}
	return out
}

func TestStreamShardInsertTombstoneResurrect(t *testing.T) {
	s := NewStreamShard[uint64, uint64]()
	eq := func(a, b uint64) bool { return a == b }
	min := func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	}
	vi := s.Ensure(7)
	if created, _ := s.Insert(vi, 9, 100, 0, 1, min, eq); !created {
		t.Fatal("first insert not created")
	}
	if created, changed := s.Insert(vi, 9, 150, 0, 1, min, eq); created || changed {
		t.Fatalf("later duplicate under min-merge: created=%v changed=%v", created, changed)
	}
	if created, changed := s.Insert(vi, 9, 50, 0, 2, min, eq); created || !changed {
		t.Fatalf("earlier duplicate under min-merge must revise: created=%v changed=%v", created, changed)
	}
	if s.Live() != 1 {
		t.Fatalf("live = %d", s.Live())
	}
	if !s.Tombstone(vi, 9) {
		t.Fatal("tombstone missed live entry")
	}
	if s.Tombstone(vi, 9) {
		t.Fatal("tombstone not idempotent")
	}
	if s.Live() != 0 || s.Dead() != 1 {
		t.Fatalf("live=%d dead=%d", s.Live(), s.Dead())
	}
	if created, _ := s.Insert(vi, 9, 200, 0, 3, min, eq); !created {
		t.Fatal("resurrection must report created")
	}
	if got := s.Verts[vi].Adj[0].EMeta; got != 200 {
		t.Fatalf("resurrected meta = %d, want 200 (no merge with the corpse)", got)
	}
	if s.Verts[vi].Adj[0].Epoch != 3 {
		t.Fatalf("resurrected epoch = %d", s.Verts[vi].Adj[0].Epoch)
	}
}

func TestStreamShardSealSortsAndSharesArena(t *testing.T) {
	s := NewStreamShard[uint64, uint64]()
	a := s.Ensure(1)
	b := s.Ensure(2)
	// Seed out of order; Seal must sort by target.
	s.Verts[a].Adj = []StreamEntry[uint64, uint64]{{Target: 9}, {Target: 3}, {Target: 5}}
	s.Verts[b].Adj = []StreamEntry[uint64, uint64]{{Target: 4}}
	s.Seal()
	if got := shardLiveTargets(s, 1); len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
		t.Fatalf("sealed adjacency = %v", got)
	}
	if s.Live() != 4 {
		t.Fatalf("live after seal = %d", s.Live())
	}
	// Growth after sealing must not clobber the neighbor's arena extent.
	if created, _ := s.Insert(a, 7, 0, 0, 1, nil, nil); !created {
		t.Fatal("post-seal insert")
	}
	if got := shardLiveTargets(s, 2); len(got) != 1 || got[0] != 4 {
		t.Fatalf("neighbor adjacency disturbed by growth: %v", got)
	}
	if got := shardLiveTargets(s, 1); len(got) != 4 || got[1] != 5 || got[2] != 7 {
		t.Fatalf("sorted insert broke order: %v", got)
	}
}

func TestStreamShardCompaction(t *testing.T) {
	s := NewStreamShard[uint64, uint64]()
	vi := s.Ensure(1)
	for n := uint64(2); n < 12; n++ {
		s.Insert(vi, n, 0, 0, 1, nil, nil)
	}
	for n := uint64(2); n < 10; n++ {
		s.Tombstone(vi, n)
	}
	if s.Dead() != 8 || s.Live() != 2 {
		t.Fatalf("dead=%d live=%d", s.Dead(), s.Live())
	}
	s.MaybeCompact()
	if s.Dead() != 0 {
		t.Fatalf("dead after compact = %d", s.Dead())
	}
	if got := shardLiveTargets(s, 1); len(got) != 2 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("compacted adjacency = %v", got)
	}
	if len(s.Verts[vi].Adj) != 2 {
		t.Fatalf("adjacency length after compact = %d", len(s.Verts[vi].Adj))
	}
}
