package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// buildOrdered constructs a metadata-free DODGr with the given ordering
// strategy over nranks ranks.
func buildOrdered(t testing.TB, nranks int, edges [][2]uint64, ord Ordering) (*ygm.World, *DODGr[serialize.Unit, serialize.Unit]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(),
		BuilderOptions[serialize.Unit]{Ordering: ord})
	var g *DODGr[serialize.Unit, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		for i := r.ID(); i < len(edges); i += r.Size() {
			b.AddEdge(r, edges[i][0], edges[i][1], serialize.Unit{})
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

// serialDegeneracy computes the degeneracy of the simple graph induced by
// edges with the textbook sequential smallest-last peel.
func serialDegeneracy(edges [][2]uint64) uint32 {
	adj := map[uint64]map[uint64]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v {
			continue
		}
		if adj[u] == nil {
			adj[u] = map[uint64]bool{}
		}
		if adj[v] == nil {
			adj[v] = map[uint64]bool{}
		}
		adj[u][v] = true
		adj[v][u] = true
	}
	var degen uint32
	for len(adj) > 0 {
		// Find a minimum-degree vertex.
		var best uint64
		bestDeg := -1
		for v, nb := range adj {
			if bestDeg < 0 || len(nb) < bestDeg || (len(nb) == bestDeg && v < best) {
				best, bestDeg = v, len(nb)
			}
		}
		if uint32(bestDeg) > degen {
			degen = uint32(bestDeg)
		}
		for u := range adj[best] {
			delete(adj[u], best)
			if len(adj[u]) == 0 {
				delete(adj, u)
			}
		}
		delete(adj, best)
	}
	return degen
}

// orderedVertex is a (key, id) pair gathered from all ranks to reconstruct
// the global <+ order in tests.
type orderedVertex struct {
	key OrderKey
	id  uint64
}

// globalOrder gathers every vertex's order key across ranks and returns
// vertex id → position in the global <+ order.
func globalOrder(w *ygm.World, g *DODGr[serialize.Unit, serialize.Unit]) map[uint64]int {
	perRank := make([][]orderedVertex, w.Size())
	w.Parallel(func(r *ygm.Rank) {
		for _, v := range g.LocalVertices(r) {
			v := v
			perRank[r.ID()] = append(perRank[r.ID()], orderedVertex{key: v.Key(), id: v.ID})
		}
	})
	var all []orderedVertex
	for _, vs := range perRank {
		all = append(all, vs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key.Less(all[j].key) })
	pos := make(map[uint64]int, len(all))
	for i, v := range all {
		pos[v.id] = i
	}
	return pos
}

func TestDegeneracyKnownGraphs(t *testing.T) {
	cases := []struct {
		name  string
		edges [][2]uint64
		want  uint32
	}{
		{"K3", [][2]uint64{{0, 1}, {1, 2}, {0, 2}}, 2},
		{"K5", [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4}}, 4},
		{"star", [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}, 1},
		{"path", [][2]uint64{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, 1},
		// K4 with a long pendant path: degeneracy stays 3 despite the path.
		{"K4+tail", [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {5, 6}}, 3},
	}
	for _, c := range cases {
		for _, nranks := range []int{1, 2, 3} {
			w, g := buildOrdered(t, nranks, c.edges, OrderDegeneracy)
			if g.Ordering() != OrderDegeneracy {
				t.Errorf("%s@%d: ordering = %v", c.name, nranks, g.Ordering())
			}
			if g.Degeneracy() != c.want {
				t.Errorf("%s@%d: degeneracy = %d, want %d", c.name, nranks, g.Degeneracy(), c.want)
			}
			w.Parallel(func(r *ygm.Rank) {
				if _, err := g.CheckInvariants(r); err != nil {
					t.Errorf("%s@%d: %v", c.name, nranks, err)
				}
			})
			w.Close()
		}
	}
}

// TestDegeneracyIsValidEliminationOrder verifies the defining property of a
// degeneracy ordering on random graphs: every vertex has at most
// degeneracy(G) neighbors later in the order, and the measured degeneracy
// matches a sequential smallest-last peel.
func TestDegeneracyIsValidEliminationOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nranks := 1 + rng.Intn(4)
		nv := 2 + rng.Intn(40)
		ne := rng.Intn(160)
		edges := make([][2]uint64, 0, ne)
		for i := 0; i < ne; i++ {
			edges = append(edges, [2]uint64{uint64(rng.Intn(nv)), uint64(rng.Intn(nv))})
		}
		w, g := buildOrdered(t, nranks, edges, OrderDegeneracy)
		defer w.Close()

		want := serialDegeneracy(edges)
		if g.Degeneracy() != want {
			t.Logf("seed %d: degeneracy = %d, want %d", seed, g.Degeneracy(), want)
			return false
		}

		// Undirected neighbor sets of the deduplicated simple graph.
		nbrs := map[uint64]map[uint64]bool{}
		for _, e := range edges {
			u, v := e[0], e[1]
			if u == v {
				continue
			}
			if nbrs[u] == nil {
				nbrs[u] = map[uint64]bool{}
			}
			if nbrs[v] == nil {
				nbrs[v] = map[uint64]bool{}
			}
			nbrs[u][v] = true
			nbrs[v][u] = true
		}
		pos := globalOrder(w, g)
		for u, nb := range nbrs {
			later := 0
			for v := range nb {
				if pos[v] > pos[u] {
					later++
				}
			}
			if uint32(later) > want {
				t.Logf("seed %d: vertex %d has %d later neighbors > degeneracy %d", seed, u, later, want)
				return false
			}
		}

		// The DODGr's out-lists must realize exactly those later-neighbors.
		bad := false
		w.Parallel(func(r *ygm.Rank) {
			if _, err := g.CheckInvariants(r); err != nil {
				t.Log(err)
				bad = true
			}
		})
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestDegeneracyNeverWidensWedges checks the optimization target on a
// skewed graph: |W⁺| under the degeneracy order is no larger than under
// the degree order (this is the acceptance gate the RMAT ablation also
// enforces), and both orders agree on the basic graph figures.
func TestDegeneracyNeverWidensWedges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Hub-heavy graph: a few hubs connected to everything plus random noise.
	var edges [][2]uint64
	for hub := uint64(0); hub < 4; hub++ {
		for v := uint64(4); v < 120; v++ {
			edges = append(edges, [2]uint64{hub, v})
		}
	}
	for i := 0; i < 300; i++ {
		edges = append(edges, [2]uint64{uint64(rng.Intn(120)), uint64(rng.Intn(120))})
	}
	wDeg, gDeg := buildOrdered(t, 3, edges, OrderDegree)
	defer wDeg.Close()
	wDgn, gDgn := buildOrdered(t, 3, edges, OrderDegeneracy)
	defer wDgn.Close()
	if gDeg.NumVertices() != gDgn.NumVertices() || gDeg.NumUndirectedEdges() != gDgn.NumUndirectedEdges() {
		t.Fatalf("orderings disagree on graph size: |V| %d vs %d, |E+| %d vs %d",
			gDeg.NumVertices(), gDgn.NumVertices(), gDeg.NumUndirectedEdges(), gDgn.NumUndirectedEdges())
	}
	if gDgn.NumWedges() > gDeg.NumWedges() {
		t.Errorf("degeneracy order generates more wedges (%d) than degree order (%d)",
			gDgn.NumWedges(), gDeg.NumWedges())
	}
	if gDgn.MaxOutDegree() > gDgn.Degeneracy() {
		t.Errorf("dmax+ %d exceeds degeneracy %d", gDgn.MaxOutDegree(), gDgn.Degeneracy())
	}
}

func TestOrderingNames(t *testing.T) {
	for _, o := range []Ordering{OrderDegree, OrderDegeneracy} {
		back, ok := OrderingByName(o.String())
		if !ok || back != o {
			t.Errorf("OrderingByName(%q) = %v, %v", o.String(), back, ok)
		}
	}
	if _, ok := OrderingByName("nope"); ok {
		t.Error("bogus ordering name resolved")
	}
	if PartitionerName := (HashPartition{}).Name(); PartitionerName != "hash" {
		t.Errorf("hash partition name = %q", PartitionerName)
	}
	if p, ok := PartitionerByName("cyclic"); !ok || p.Name() != "cyclic" {
		t.Error("PartitionerByName(cyclic) failed")
	}
}
