package graph

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Error("Mix64 not deterministic")
	}
	if Mix64(1) == Mix64(2) {
		t.Error("suspicious collision")
	}
	if Mix64(0) == 0 {
		t.Error("Mix64(0) should not be 0")
	}
}

func TestLessIsTotalOrder(t *testing.T) {
	type vert struct {
		d  uint32
		id uint64
	}
	vs := []vert{{1, 5}, {1, 9}, {3, 2}, {3, 7}, {2, 2}, {7, 0}, {1, 1}}
	// Antisymmetry + totality on distinct vertices.
	for i, a := range vs {
		for j, b := range vs {
			if i == j {
				continue
			}
			ab := Less(a.d, a.id, b.d, b.id)
			ba := Less(b.d, b.id, a.d, a.id)
			if ab == ba {
				t.Errorf("Less not antisymmetric for %v vs %v", a, b)
			}
		}
	}
	// Degree dominates.
	if !Less(1, 100, 2, 1) {
		t.Error("lower degree must sort first")
	}
	// Equal everything → not less.
	if Less(3, 9, 3, 9) {
		t.Error("irreflexive violated")
	}
}

func TestOrderKeyCompare(t *testing.T) {
	a, b := KeyOf(2, 10), KeyOf(5, 3)
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Error("Compare inconsistent")
	}
	if !a.Less(b) || b.Less(a) {
		t.Error("Less inconsistent")
	}
}

func TestPartitioners(t *testing.T) {
	for _, p := range []Partitioner{HashPartition{}, CyclicPartition{}} {
		counts := make([]int, 7)
		for v := uint64(0); v < 7000; v++ {
			o := p.Owner(v, 7)
			if o < 0 || o >= 7 {
				t.Fatalf("%s: owner out of range", p.Name())
			}
			counts[o]++
		}
		for i, c := range counts {
			if c < 500 || c > 1500 {
				t.Errorf("%s: rank %d owns %d of 7000 (imbalanced)", p.Name(), i, c)
			}
		}
	}
	if (CyclicPartition{}).Owner(15, 4) != 3 {
		t.Error("cyclic owner wrong")
	}
}

// buildTestGraph constructs a DODGr over nranks from an explicit edge list
// with meta(v) = v*3+1 and meta(u,v) = min(u,v)*1000 + max(u,v).
func buildTestGraph(t *testing.T, nranks int, edges [][2]uint64) (*ygm.World, *DODGr[uint64, uint64]) {
	t.Helper()
	w := ygm.MustWorld(nranks, ygm.Options{})
	b := NewBuilder(w, serialize.Uint64Codec(), serialize.Uint64Codec(), BuilderOptions[uint64]{})
	var g *DODGr[uint64, uint64]
	w.Parallel(func(r *ygm.Rank) {
		for i, e := range edges {
			if i%r.Size() == r.ID() { // spread insertion across ranks
				u, v := e[0], e[1]
				lo, hi := u, v
				if lo > hi {
					lo, hi = hi, lo
				}
				b.AddEdge(r, u, v, lo*1000+hi)
			}
		}
		vset := map[uint64]bool{}
		for _, e := range edges {
			vset[e[0]] = true
			vset[e[1]] = true
		}
		for v := range vset {
			if v%uint64(r.Size()) == uint64(r.ID()) {
				b.SetVertexMeta(r, v, v*3+1)
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	return w, g
}

func TestBuildTriangleGraph(t *testing.T) {
	// K3 plus a pendant: vertices 0,1,2 forming a triangle, 3 hanging off 2.
	w, g := buildTestGraph(t, 3, [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	defer w.Close()
	if g.NumVertices() != 4 {
		t.Errorf("|V| = %d, want 4", g.NumVertices())
	}
	if g.NumDirectedEdges() != 8 {
		t.Errorf("|E| directed = %d, want 8", g.NumDirectedEdges())
	}
	if g.NumUndirectedEdges() != 4 {
		t.Errorf("G+ edges = %d, want 4", g.NumUndirectedEdges())
	}
	if g.MaxDegree() != 3 { // vertex 2
		t.Errorf("dmax = %d, want 3", g.MaxDegree())
	}
	w.Parallel(func(r *ygm.Rank) {
		plus, err := g.CheckInvariants(r)
		if err != nil {
			t.Error(err)
		}
		total := ygm.AllReduceSum(r, plus)
		if total != 4 {
			t.Errorf("sum of local G+ edges = %d, want 4", total)
		}
	})
}

func TestBuildMetadataPlacement(t *testing.T) {
	w, g := buildTestGraph(t, 4, [][2]uint64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 0}})
	defer w.Close()
	w.Parallel(func(r *ygm.Rank) {
		for _, v := range g.LocalVertices(r) {
			if v.Meta != v.ID*3+1 {
				t.Errorf("vertex %d has meta %d, want %d", v.ID, v.Meta, v.ID*3+1)
			}
			for _, o := range v.Adj {
				if o.TMeta != o.Target*3+1 {
					t.Errorf("edge (%d,%d): target meta %d, want %d", v.ID, o.Target, o.TMeta, o.Target*3+1)
				}
				lo, hi := v.ID, o.Target
				if lo > hi {
					lo, hi = hi, lo
				}
				if o.EMeta != lo*1000+hi {
					t.Errorf("edge (%d,%d): edge meta %d, want %d", v.ID, o.Target, o.EMeta, lo*1000+hi)
				}
			}
		}
	})
}

func TestSelfLoopsDropped(t *testing.T) {
	w, g := buildTestGraph(t, 2, [][2]uint64{{0, 1}, {1, 1}, {2, 2}, {1, 2}})
	defer w.Close()
	if g.SelfLoopsDropped() != 2 {
		t.Errorf("self loops = %d, want 2", g.SelfLoopsDropped())
	}
	if g.NumUndirectedEdges() != 2 {
		t.Errorf("G+ edges = %d, want 2", g.NumUndirectedEdges())
	}
}

func TestMultiEdgeMergeKeepsMin(t *testing.T) {
	// Reddit-style reduction: duplicate edges keep the earliest timestamp.
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	b := NewBuilder(w, serialize.UnitCodec(), serialize.Uint64Codec(), BuilderOptions[uint64]{
		MergeEdgeMeta: func(a, c uint64) uint64 {
			if a < c {
				return a
			}
			return c
		},
	})
	var g *DODGr[serialize.Unit, uint64]
	w.Parallel(func(r *ygm.Rank) {
		// Every rank inserts the same edge with a different timestamp; the
		// merged edge must carry the global minimum.
		b.AddEdge(r, 7, 9, uint64(100+r.ID()*10))
		b.AddEdge(r, 7, 8, uint64(50-r.ID()))
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	if g.NumUndirectedEdges() != 2 {
		t.Fatalf("G+ edges = %d, want 2", g.NumUndirectedEdges())
	}
	if g.MultiEdgesMerged() != 4 { // 3 copies each of 2 edges → 4 merges
		t.Errorf("merged = %d, want 4", g.MultiEdgesMerged())
	}
	w.Parallel(func(r *ygm.Rank) {
		for _, v := range g.LocalVertices(r) {
			for _, o := range v.Adj {
				lo, hi := v.ID, o.Target
				if lo > hi {
					lo, hi = hi, lo
				}
				switch {
				case lo == 7 && hi == 9:
					if o.EMeta != 100 {
						t.Errorf("edge (7,9) meta %d, want 100", o.EMeta)
					}
				case lo == 7 && hi == 8:
					if o.EMeta != 48 {
						t.Errorf("edge (7,8) meta %d, want 48", o.EMeta)
					}
				}
			}
		}
	})
}

func TestIsolatedVertexWithMeta(t *testing.T) {
	w := ygm.MustWorld(2, ygm.Options{})
	defer w.Close()
	b := NewBuilder(w, serialize.StringCodec(), serialize.UnitCodec(), BuilderOptions[serialize.Unit]{})
	var g *DODGr[string, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			b.AddEdge(r, 1, 2, serialize.Unit{})
			b.SetVertexMeta(r, 99, "lonely.example")
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	if g.NumVertices() != 3 {
		t.Errorf("|V| = %d, want 3", g.NumVertices())
	}
	found := false
	w.Parallel(func(r *ygm.Rank) {
		if v, ok := g.Lookup(r, 99); ok {
			if v.Meta != "lonely.example" || v.Deg != 0 {
				t.Errorf("isolated vertex: %+v", v)
			}
			found = true
		}
		r.Barrier()
	})
	if !found {
		t.Error("isolated vertex not stored anywhere")
	}
}

func TestWedgeCount(t *testing.T) {
	// Star K1,4 has no G+ wedges at the hub (hub is highest degree, all
	// edges point toward it). Leaves have d+=1 → 0 wedges. Total |W+|=0.
	w, g := buildTestGraph(t, 2, [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	defer w.Close()
	if g.NumWedges() != 0 {
		t.Errorf("star wedges = %d, want 0", g.NumWedges())
	}
	// K4: each vertex degree 3. G+ out-degrees are 3,2,1,0 in <+ order →
	// wedges = C(3,2)+C(2,2)+0+0 = 3+1 = 4.
	w2, g2 := buildTestGraph(t, 3, [][2]uint64{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	defer w2.Close()
	if g2.NumWedges() != 4 {
		t.Errorf("K4 wedges = %d, want 4", g2.NumWedges())
	}
}

func TestDODGrInvariantsRandomGraphsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		nv := 2 + rng.Intn(40)
		ne := rng.Intn(150)
		edges := make([][2]uint64, 0, ne)
		undirected := map[[2]uint64]bool{}
		for i := 0; i < ne; i++ {
			u, v := uint64(rng.Intn(nv)), uint64(rng.Intn(nv))
			edges = append(edges, [2]uint64{u, v})
			if u != v {
				lo, hi := u, v
				if lo > hi {
					lo, hi = hi, lo
				}
				undirected[[2]uint64{lo, hi}] = true
			}
		}
		w, g := buildTestGraph(t, n, edges)
		defer w.Close()
		if g.NumUndirectedEdges() != uint64(len(undirected)) {
			return false
		}
		bad := false
		w.Parallel(func(r *ygm.Rank) {
			plus, err := g.CheckInvariants(r)
			if err != nil {
				bad = true
			}
			if total := ygm.AllReduceSum(r, plus); total != uint64(len(undirected)) {
				bad = true
			}
			// Degree sanity: Σ deg == 2 × undirected edges.
			var degSum uint64
			for _, v := range g.LocalVertices(r) {
				degSum += uint64(v.Deg)
			}
			if got := ygm.AllReduceSum(r, degSum); got != 2*uint64(len(undirected)) {
				bad = true
			}
		})
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCyclicPartitionBuild(t *testing.T) {
	w := ygm.MustWorld(4, ygm.Options{})
	defer w.Close()
	b := NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(), BuilderOptions[serialize.Unit]{
		Partitioner: CyclicPartition{},
	})
	var g *DODGr[serialize.Unit, serialize.Unit]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			for v := uint64(0); v < 16; v++ {
				b.AddEdge(r, v, (v+1)%16, serialize.Unit{})
			}
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	w.Parallel(func(r *ygm.Rank) {
		for _, v := range g.LocalVertices(r) {
			if v.ID%4 != uint64(r.ID()) {
				t.Errorf("vertex %d on rank %d under cyclic partition", v.ID, r.ID())
			}
		}
	})
}

func TestLocalVerticesSortedByID(t *testing.T) {
	w, g := buildTestGraph(t, 2, [][2]uint64{{5, 1}, {9, 2}, {3, 8}, {1, 9}, {2, 3}})
	defer w.Close()
	w.Parallel(func(r *ygm.Rank) {
		vs := g.LocalVertices(r)
		if !sort.SliceIsSorted(vs, func(i, j int) bool { return vs[i].ID < vs[j].ID }) {
			t.Errorf("rank %d vertices not sorted", r.ID())
		}
	})
}

func TestParseEdgeLine(t *testing.T) {
	cases := []struct {
		in   string
		want TemporalEdge
		ok   bool
		err  bool
	}{
		{"1 2", TemporalEdge{1, 2, 0}, true, false},
		{"1 2 300", TemporalEdge{1, 2, 300}, true, false},
		{"  7\t8  ", TemporalEdge{7, 8, 0}, true, false},
		{"# comment", TemporalEdge{}, false, false},
		{"% matrix market", TemporalEdge{}, false, false},
		{"", TemporalEdge{}, false, false},
		{"1", TemporalEdge{}, false, true},
		{"a b", TemporalEdge{}, false, true},
		{"1 b", TemporalEdge{}, false, true},
		{"1 2 x", TemporalEdge{}, false, true},
	}
	for _, c := range cases {
		e, ok, err := ParseEdgeLine(c.in)
		if (err != nil) != c.err {
			t.Errorf("%q: err = %v", c.in, err)
			continue
		}
		if ok != c.ok || e != c.want {
			t.Errorf("%q: got %+v ok=%v", c.in, e, ok)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	edges := []TemporalEdge{{1, 2, 10}, {2, 3, 20}, {3, 1, 30}}
	var sb strings.Builder
	if err := WriteEdgeList(&sb, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != edges[2] {
		t.Errorf("round trip = %v", got)
	}
	// Non-temporal graphs omit the timestamp column.
	var sb2 strings.Builder
	if err := WriteEdgeList(&sb2, []TemporalEdge{{4, 5, 0}}); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb2.String()) != "4 5" {
		t.Errorf("non-temporal output = %q", sb2.String())
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/edges.txt"
	edges := []TemporalEdge{{1, 2, 5}, {9, 8, 7}}
	if err := WriteEdgeListFile(path, edges); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != edges[0] || got[1] != edges[1] {
		t.Errorf("file round trip = %v", got)
	}
	if _, err := ReadEdgeListFile(path + ".missing"); err == nil {
		t.Error("expected error for missing file")
	}
}
