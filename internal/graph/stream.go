package graph

import "sort"

// Mutable shard storage for streaming surveys: the first mutation path in a
// package otherwise built around the immutable DODGr. A StreamShard holds
// one rank's *full* symmetrized neighborhoods (both directions of every
// undirected edge, unlike the DODGr's <+-upward lists: a delta traversal
// for an arriving edge {u,v} intersects whole neighborhoods, so both must
// be on hand at their owners). The layout mirrors the DODGr's CSR
// discipline where it can:
//
//   - Seal compacts the seeded adjacency lists into one contiguous arena,
//     exactly like rankLocal.compact, so the steady-state scan order of a
//     freshly opened stream matches the immutable graph's;
//   - later insertions append through ordinary slice growth — a vertex
//     whose list outgrows its arena extent migrates to its own backing
//     array on first growth (copy-on-grow), leaving the arena intact for
//     its neighbors;
//   - expiry never moves memory in place: retired entries are tombstoned
//     (Dead = true) so positions stay stable for any in-flight iteration,
//     and Compact sweeps tombstones out between batches once they dominate.
//
// Entries are sorted by Target id (not by <+ order key — a stream has no
// stable degree order), so neighborhood intersections are merge paths just
// like the survey's, keyed by id.
type StreamShard[VM, EM any] struct {
	Index map[uint64]int32
	Verts []StreamVert[VM, EM]

	arena []StreamEntry[VM, EM] // seed-time backing store (Seal)
	dead  int                   // tombstoned entries not yet compacted
	live  int                   // live entries (half-edges) on this shard
}

// StreamVert is one locally stored vertex of a stream shard: id, metadata
// (fixed at first sight — streams mutate edges, not vertex metadata), and
// the full live+tombstoned neighborhood sorted by Target.
type StreamVert[VM, EM any] struct {
	ID   uint64
	Meta VM
	Adj  []StreamEntry[VM, EM]
	Live int32 // live entries in Adj (the stream's degree of this vertex)
}

// StreamEntry is one half-edge of a stream shard. Epoch records the ingest
// batch that created (or resurrected) the edge — the delta traversal's
// "new this batch" membership test. TMeta inlines the target's vertex
// metadata, the same O(|E|) trade the DODGr makes so triangles can be
// surveyed without visiting their third vertex. Init marks the half whose
// owner initiates delta traversals for this edge (exactly one of the two
// halves carries it): the stream's analog of the DODGr's degree
// orientation, chosen toward the lower-degree endpoint so the shipped
// neighborhood is the small one.
type StreamEntry[VM, EM any] struct {
	Target uint64
	EMeta  EM
	TMeta  VM
	Epoch  uint32
	Dead   bool
	Init   bool
}

// NewStreamShard returns an empty shard.
func NewStreamShard[VM, EM any]() *StreamShard[VM, EM] {
	return &StreamShard[VM, EM]{Index: make(map[uint64]int32)}
}

// Ensure returns the local index of vertex id, creating an empty record
// (zero metadata) on first sight.
func (s *StreamShard[VM, EM]) Ensure(id uint64) int32 {
	if i, ok := s.Index[id]; ok {
		return i
	}
	i := int32(len(s.Verts))
	s.Index[id] = i
	s.Verts = append(s.Verts, StreamVert[VM, EM]{ID: id})
	return i
}

// EnsureMeta is Ensure for a vertex whose metadata is known (seeding).
// Metadata is set only when the record is created.
func (s *StreamShard[VM, EM]) EnsureMeta(id uint64, meta VM) int32 {
	if i, ok := s.Index[id]; ok {
		return i
	}
	i := s.Ensure(id)
	s.Verts[i].Meta = meta
	return i
}

// Seal sorts every seeded adjacency list and compacts them into one
// contiguous arena (the CSR layout), in vertex storage order. Call once
// after seeding, before the first batch; lists appended to afterwards
// migrate off the arena automatically on growth.
func (s *StreamShard[VM, EM]) Seal() {
	var total int
	for i := range s.Verts {
		v := &s.Verts[i]
		sort.Slice(v.Adj, func(a, b int) bool { return v.Adj[a].Target < v.Adj[b].Target })
		total += len(v.Adj)
	}
	s.arena = make([]StreamEntry[VM, EM], 0, total)
	for i := range s.Verts {
		v := &s.Verts[i]
		start := len(s.arena)
		s.arena = append(s.arena, v.Adj...)
		v.Adj = s.arena[start:len(s.arena):len(s.arena)]
		v.Live = int32(len(v.Adj))
	}
	s.live = total
	s.dead = 0
}

// Insert adds or revises the half-edge vi→nbr (vi a local index from
// Ensure). A structurally new or resurrected entry is created with the
// given epoch and reports created = true. An existing live entry is merged:
// merge combines stored and incoming edge metadata (nil keeps the stored
// value), and changed reports whether the stored metadata was revised by
// the merge (eq compares; nil eq treats every merge as unchanged) — the
// signal the stream layer uses to fall back to an epoch rebuild.
func (s *StreamShard[VM, EM]) Insert(vi int32, nbr uint64, em EM, tmeta VM, epoch uint32, merge func(a, b EM) EM, eq func(a, b EM) bool) (created, changed bool) {
	v := &s.Verts[vi]
	k := sort.Search(len(v.Adj), func(i int) bool { return v.Adj[i].Target >= nbr })
	if k < len(v.Adj) && v.Adj[k].Target == nbr {
		e := &v.Adj[k]
		if e.Dead {
			// Resurrection: the retired edge is gone from the live graph, so
			// the incoming metadata replaces (not merges with) the corpse's.
			*e = StreamEntry[VM, EM]{Target: nbr, EMeta: em, TMeta: tmeta, Epoch: epoch}
			s.dead--
			s.live++
			v.Live++
			return true, false
		}
		old := e.EMeta
		if merge != nil {
			e.EMeta = merge(old, em)
		}
		if eq != nil && !eq(old, e.EMeta) {
			return false, true
		}
		return false, false
	}
	v.Adj = append(v.Adj, StreamEntry[VM, EM]{})
	copy(v.Adj[k+1:], v.Adj[k:])
	v.Adj[k] = StreamEntry[VM, EM]{Target: nbr, EMeta: em, TMeta: tmeta, Epoch: epoch}
	s.live++
	v.Live++
	return true, false
}

// Find returns the entry vi→nbr (live or dead), or nil.
func (s *StreamShard[VM, EM]) Find(vi int32, nbr uint64) *StreamEntry[VM, EM] {
	v := &s.Verts[vi]
	k := sort.Search(len(v.Adj), func(i int) bool { return v.Adj[i].Target >= nbr })
	if k >= len(v.Adj) || v.Adj[k].Target != nbr {
		return nil
	}
	return &v.Adj[k]
}

// Tombstone marks the half-edge vi→nbr dead. It reports whether a live
// entry was found (idempotent on already-dead entries).
func (s *StreamShard[VM, EM]) Tombstone(vi int32, nbr uint64) bool {
	v := &s.Verts[vi]
	k := sort.Search(len(v.Adj), func(i int) bool { return v.Adj[i].Target >= nbr })
	if k >= len(v.Adj) || v.Adj[k].Target != nbr || v.Adj[k].Dead {
		return false
	}
	v.Adj[k].Dead = true
	s.live--
	s.dead++
	v.Live--
	return true
}

// Live returns the number of live half-edges stored on this shard.
func (s *StreamShard[VM, EM]) Live() int { return s.live }

// Dead returns the number of tombstoned entries awaiting compaction.
func (s *StreamShard[VM, EM]) Dead() int { return s.dead }

// LiveDeg returns the live degree of the vertex at local index vi.
func (s *StreamShard[VM, EM]) LiveDeg(vi int32) int { return int(s.Verts[vi].Live) }

// ExpireBefore tombstones every live entry whose metadata maps to a
// timestamp below cutoff, returning the number of half-edges retired.
// Both owners of an edge hold the same (merged) metadata, so symmetric
// scans retire both halves without communication.
func (s *StreamShard[VM, EM]) ExpireBefore(timeOf func(EM) uint64, cutoff uint64) int {
	n := 0
	for i := range s.Verts {
		v := &s.Verts[i]
		for j := range v.Adj {
			e := &v.Adj[j]
			if !e.Dead && timeOf(e.EMeta) < cutoff {
				e.Dead = true
				v.Live--
				n++
			}
		}
	}
	s.live -= n
	s.dead += n
	return n
}

// MaybeCompact sweeps tombstones out of every adjacency list once they
// outnumber live entries (amortized O(1) per retirement). Positions shift,
// so call it only between batches, never during a traversal.
func (s *StreamShard[VM, EM]) MaybeCompact() {
	if s.dead <= s.live {
		return
	}
	for i := range s.Verts {
		v := &s.Verts[i]
		out := v.Adj[:0]
		for j := range v.Adj {
			if !v.Adj[j].Dead {
				out = append(out, v.Adj[j])
			}
		}
		// Keep capacity (likely arena-backed) for future growth; the dead
		// suffix beyond len is unreachable.
		v.Adj = out
	}
	s.dead = 0
}
