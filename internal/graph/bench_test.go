package graph

import (
	"testing"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

// BenchmarkBuildDODGr measures distributed graph construction end to end
// (ingest, symmetrize, dedup, degree exchange, orientation, sort).
func BenchmarkBuildDODGr(b *testing.B) {
	// A deterministic pseudo-random edge list, heavy on duplicates.
	const nv, ne = 20_000, 200_000
	edges := make([][2]uint64, ne)
	for i := range edges {
		edges[i] = [2]uint64{Mix64(uint64(i)) % nv, Mix64(uint64(i)+ne) % nv}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := ygm.MustWorld(4, ygm.Options{})
		bl := NewBuilder(w, serialize.UnitCodec(), serialize.UnitCodec(), BuilderOptions[serialize.Unit]{})
		var g *DODGr[serialize.Unit, serialize.Unit]
		w.Parallel(func(r *ygm.Rank) {
			for j := r.ID(); j < len(edges); j += r.Size() {
				bl.AddEdge(r, edges[j][0], edges[j][1], serialize.Unit{})
			}
			gg := bl.Build(r)
			if r.ID() == 0 {
				g = gg
			}
		})
		if g.NumVertices() == 0 {
			b.Fatal("empty graph")
		}
		w.Close()
	}
	b.SetBytes(int64(ne * 16))
}

func BenchmarkMix64(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Mix64(uint64(i))
	}
	_ = acc
}

func BenchmarkOrderKeyLess(b *testing.B) {
	keys := make([]OrderKey, 1024)
	for i := range keys {
		keys[i] = KeyOf(uint32(i%64), uint64(i*2654435761))
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		a, c := keys[i%1024], keys[(i*7)%1024]
		if a.Less(c) {
			n++
		}
	}
	_ = n
}
