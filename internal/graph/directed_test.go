package graph

import (
	"testing"

	"tripoll/internal/serialize"
	"tripoll/internal/ygm"
)

func TestDirectionString(t *testing.T) {
	for d, want := range map[Direction]string{
		DirNone: "undirected", DirForward: "forward",
		DirBackward: "backward", DirBoth: "both", Direction(9): "invalid",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
}

func TestArcMetaAndHasArc(t *testing.T) {
	f := ArcMeta(2, 7, "x") // arc 2→7, canonical forward
	if f.Dir != DirForward || !HasArc(f, 2, 7) || HasArc(f, 7, 2) {
		t.Errorf("forward arc: %+v", f)
	}
	b := ArcMeta(7, 2, "y") // arc 7→2, canonical backward
	if b.Dir != DirBackward || !HasArc(b, 7, 2) || HasArc(b, 2, 7) {
		t.Errorf("backward arc: %+v", b)
	}
	both := MergeDirected[string](nil)(f, b)
	if both.Dir != DirBoth || !HasArc(both, 2, 7) || !HasArc(both, 7, 2) {
		t.Errorf("merged: %+v", both)
	}
	if both.Meta != "x" { // nil merge keeps the first payload
		t.Errorf("merged meta = %q", both.Meta)
	}
}

func TestMergeDirectedCombinesPayloads(t *testing.T) {
	m := MergeDirected(func(a, b uint64) uint64 {
		if a < b {
			return a
		}
		return b
	})
	got := m(Directed[uint64]{Dir: DirForward, Meta: 50}, Directed[uint64]{Dir: DirForward, Meta: 20})
	if got.Dir != DirForward || got.Meta != 20 {
		t.Errorf("merge = %+v", got)
	}
}

func TestDirectedCodecRoundTrip(t *testing.T) {
	c := DirectedCodec(serialize.StringCodec())
	v := Directed[string]{Dir: DirBoth, Meta: "edge payload"}
	if got := c.RoundTrip(v); got != v {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDirectedGraphBuild(t *testing.T) {
	// A directed triangle 0→1→2→0 plus a bidirectional chord 0↔3.
	w := ygm.MustWorld(3, ygm.Options{})
	defer w.Close()
	b := NewBuilder(w, serialize.UnitCodec(), DirectedCodec(serialize.UnitCodec()),
		BuilderOptions[Directed[serialize.Unit]]{
			MergeEdgeMeta: MergeDirected[serialize.Unit](nil),
		})
	var g *DODGr[serialize.Unit, Directed[serialize.Unit]]
	w.Parallel(func(r *ygm.Rank) {
		if r.ID() == 0 {
			AddArc(b, r, 0, 1, serialize.Unit{})
			AddArc(b, r, 1, 2, serialize.Unit{})
			AddArc(b, r, 2, 0, serialize.Unit{})
			AddArc(b, r, 0, 3, serialize.Unit{})
			AddArc(b, r, 3, 0, serialize.Unit{})
		}
		gg := b.Build(r)
		if r.ID() == 0 {
			g = gg
		}
	})
	if g.NumUndirectedEdges() != 4 {
		t.Fatalf("G+ edges = %d, want 4", g.NumUndirectedEdges())
	}
	// One pair of opposing arcs merged into DirBoth.
	if g.MultiEdgesMerged() != 1 {
		t.Errorf("merged = %d, want 1", g.MultiEdgesMerged())
	}
	// Inspect orientation bits on the stored edges.
	w.Parallel(func(r *ygm.Rank) {
		for _, v := range g.LocalVertices(r) {
			for _, o := range v.Adj {
				lo, hi := v.ID, o.Target
				if lo > hi {
					lo, hi = hi, lo
				}
				switch [2]uint64{lo, hi} {
				case [2]uint64{0, 1}:
					if !HasArc(o.EMeta, 0, 1) || HasArc(o.EMeta, 1, 0) {
						t.Errorf("edge (0,1) dir = %v", o.EMeta.Dir)
					}
				case [2]uint64{0, 2}:
					if !HasArc(o.EMeta, 2, 0) || HasArc(o.EMeta, 0, 2) {
						t.Errorf("edge (0,2) dir = %v", o.EMeta.Dir)
					}
				case [2]uint64{0, 3}:
					if o.EMeta.Dir != DirBoth {
						t.Errorf("edge (0,3) dir = %v, want both", o.EMeta.Dir)
					}
				}
			}
		}
	})
}
